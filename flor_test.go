package flor_test

import (
	"fmt"
	"strings"
	"testing"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// counterFactory builds a minimal training program through the public API:
// weights perturbed by a captured RNG inside a nested train loop.
func counterFactory(epochs, steps int) func() *flor.Program {
	return func() *flor.Program {
		train := &flor.Loop{ID: "train", IterVar: "step", Iters: steps, Body: []flor.Stmt{
			flor.AssignMethod([]string{"w"}, "rng", "perturb", []string{"w"}, func(e *flor.Env) error {
				w := e.MustGet("w").(*flor.TensorVal).T
				rng := e.MustGet("rng").(*flor.RNGVal).R
				for pass := 0; pass < 30; pass++ {
					for i := 0; i < w.Len(); i++ {
						w.Data()[i] += rng.Float64() * 0.001
					}
				}
				return nil
			}),
		}}
		return &flor.Program{
			Name: "api-quickstart",
			Setup: []flor.Stmt{
				flor.AssignFunc([]string{"w"}, "zeros", nil, func(e *flor.Env) error {
					e.Set("w", &flor.TensorVal{T: tensor.New(32)})
					return nil
				}),
				flor.AssignFunc([]string{"rng"}, "RNG", nil, func(e *flor.Env) error {
					e.Set("rng", &flor.RNGVal{R: xrand.New(11)})
					return nil
				}),
			},
			Main: &flor.Loop{ID: "main", IterVar: "epoch", Iters: epochs, Body: []flor.Stmt{
				flor.LoopStmt(train),
				flor.LogStmt("sum", func(e *flor.Env) (string, error) {
					return fmt.Sprintf("%.17g", e.MustGet("w").(*flor.TensorVal).T.Sum()), nil
				}),
			}},
		}
	}
}

func TestPublicAPIRecordReplay(t *testing.T) {
	dir := t.TempDir()
	factory := counterFactory(5, 4)
	rec, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoints != 5 {
		t.Fatalf("checkpoints = %d, want 5", rec.Checkpoints)
	}
	if rec.CheckpointBytes <= 0 || rec.WallNs <= 0 {
		t.Fatalf("missing record accounting: %+v", rec)
	}
	if len(rec.Logs) != 5 {
		t.Fatalf("record logs = %d lines", len(rec.Logs))
	}

	// Unprobed replay reproduces the record exactly.
	res, err := flor.Replay(dir, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	if len(res.ProbedLoops) != 0 {
		t.Fatalf("probed loops: %v", res.ProbedLoops)
	}
	if strings.Join(res.Logs, "|") != strings.Join(rec.Logs, "|") {
		t.Fatal("replay logs differ from record")
	}
}

func TestPublicAPIHindsightProbe(t *testing.T) {
	dir := t.TempDir()
	factory := counterFactory(6, 3)
	if _, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing()); err != nil {
		t.Fatal(err)
	}
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hindsight", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.6g", e.MustGet("w").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}
	res, err := flor.Replay(dir, probed, flor.Workers(3), flor.Init(flor.WeakInit))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	if res.Workers != 3 {
		t.Fatalf("workers = %d", res.Workers)
	}
	probeLines := 0
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "hindsight: ") {
			probeLines++
		}
	}
	if probeLines != 18 {
		t.Fatalf("hindsight lines = %d, want 18 (6 epochs x 3 steps)", probeLines)
	}
	found := false
	for _, id := range res.ProbedLoops {
		if id == "train" {
			found = true
		}
	}
	if !found {
		t.Fatalf("probed loops %v missing train", res.ProbedLoops)
	}
}

func TestPublicAPIVanilla(t *testing.T) {
	logs, wall, err := flor.Vanilla(counterFactory(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 3 || wall <= 0 {
		t.Fatalf("vanilla run: %d logs, %d ns", len(logs), wall)
	}
}

func TestPublicAPIValidate(t *testing.T) {
	good := counterFactory(2, 2)()
	if err := flor.Validate(good); err != nil {
		t.Fatal(err)
	}
	if err := flor.Validate(&flor.Program{Name: "no-main"}); err == nil {
		t.Fatal("program without main loop validated")
	}
	dup := counterFactory(2, 2)()
	dup.Main.Body[0].Loop.ID = "main"
	if err := flor.Validate(dup); err == nil {
		t.Fatal("duplicate loop ID validated")
	}
}

func TestValidateIterVarCollisions(t *testing.T) {
	// A nested loop reusing its ancestor's iteration variable clobbers the
	// outer counter; Validate must reject it at any nesting depth.
	clash := counterFactory(2, 2)()
	clash.Main.Body[0].Loop.IterVar = clash.Main.IterVar
	if err := flor.Validate(clash); err == nil {
		t.Fatal("nested loop sharing the main loop's IterVar validated")
	}

	deep := counterFactory(2, 2)()
	inner := &flor.Loop{ID: "inner", IterVar: deep.Main.IterVar, Iters: 2}
	train := deep.Main.Body[0].Loop
	train.Body = append(train.Body, flor.LoopStmt(inner))
	if err := flor.Validate(deep); err == nil {
		t.Fatal("grandchild loop sharing the main loop's IterVar validated")
	}

	// Sibling loops may share an IterVar: each runs to completion before
	// the variable is read again.
	siblings := counterFactory(2, 2)()
	extra := &flor.Loop{ID: "extra", IterVar: siblings.Main.Body[0].Loop.IterVar, Iters: 2}
	siblings.Main.Body = append(siblings.Main.Body, flor.LoopStmt(extra))
	if err := flor.Validate(siblings); err != nil {
		t.Fatalf("sibling loops sharing an IterVar rejected: %v", err)
	}
}

func TestPublicAPIRejectsCodeChange(t *testing.T) {
	dir := t.TempDir()
	factory := counterFactory(3, 2)
	if _, err := flor.Record(dir, factory); err != nil {
		t.Fatal(err)
	}
	changed := func() *flor.Program {
		p := factory()
		p.Main.Body = append(p.Main.Body, flor.ExprFunc("sneaky", nil, func(e *flor.Env) error { return nil }))
		return p
	}
	if _, err := flor.Replay(dir, changed); err == nil {
		t.Fatal("non-logging code change accepted")
	}
}

func TestEpsilonOptionControlsCheckpointDensity(t *testing.T) {
	factory := counterFactory(30, 2)
	// A tiny ε admits almost nothing; a huge ε admits everything.
	tight, err := flor.Record(t.TempDir(), factory, flor.Epsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := flor.Record(t.TempDir(), factory, flor.Epsilon(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Checkpoints > loose.Checkpoints {
		t.Fatalf("tight ε materialized more (%d) than loose ε (%d)",
			tight.Checkpoints, loose.Checkpoints)
	}
}

func TestPublicAPISchedulerOption(t *testing.T) {
	dir := t.TempDir()
	factory := counterFactory(12, 2)
	if _, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing()); err != nil {
		t.Fatal(err)
	}
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hindsight", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.6g", e.MustGet("w").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}
	baseline, err := flor.Replay(dir, probed, flor.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []flor.Scheduler{flor.SchedulerBalanced, flor.SchedulerStealing} {
		res, err := flor.Replay(dir, probed, flor.Workers(4),
			flor.Init(flor.WeakInit), flor.WithScheduler(sched))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Anomalies) != 0 {
			t.Fatalf("%v: anomalies: %v", sched, res.Anomalies)
		}
		if res.Scheduler != sched {
			t.Fatalf("result reports scheduler %v, want %v", res.Scheduler, sched)
		}
		if strings.Join(res.Logs, "\n") != strings.Join(baseline.Logs, "\n") {
			t.Fatalf("%v: merged logs differ from single-worker baseline", sched)
		}
	}
}
