package flor_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/store"
)

// TestMigrationMatrixByteIdenticalReplay is the layout-compatibility
// matrix: the same program recorded into a legacy v1 store, an unsharded v2
// store, a hash-prefix sharded v2 store, and a pooled store (shared chunk
// pool) must open through the same API — no flags, no layout hints — and
// replay byte-identical logs, with the record-phase logs as the reference.
// In particular the pooled run is the private-pack run's twin: same
// program, same probes, byte-identical replay output.
func TestMigrationMatrixByteIdenticalReplay(t *testing.T) {
	factory := counterFactory(6, 3)
	poolRoot := filepath.Join(t.TempDir(), "POOL")
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hs", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}

	variants := []struct {
		name   string
		record func(dir string) error
		layout string
	}{
		{"v1", func(dir string) error {
			_, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true, StoreFormat: store.FormatV1})
			return err
		}, "v1"},
		{"v2", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing())
			return err
		}, "v2"},
		{"v2-sharded", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Shards(16))
			return err
		}, "v2-sharded/16"},
		{"v2-pooled", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Pool(poolRoot), flor.Shards(16))
			return err
		}, "v2-pooled/16"},
	}

	type result struct {
		name string
		base []string
		hs   []string
	}
	var results []result
	for _, v := range variants {
		dir := t.TempDir()
		if err := v.record(dir); err != nil {
			t.Fatalf("%s: record: %v", v.name, err)
		}
		l, err := store.DetectLayout(dir)
		if err != nil {
			t.Fatalf("%s: detect layout: %v", v.name, err)
		}
		if l.String() != v.layout {
			t.Fatalf("%s: layout = %s, want %s", v.name, l, v.layout)
		}
		// Unprobed replay reproduces the record log; probed replay adds the
		// hindsight lines. Both go through the flag-free open path.
		base, err := flor.Replay(dir, factory, flor.Workers(2))
		if err != nil {
			t.Fatalf("%s: replay: %v", v.name, err)
		}
		if len(base.Anomalies) != 0 {
			t.Fatalf("%s: anomalies %v", v.name, base.Anomalies)
		}
		hs, err := flor.Replay(dir, probed, flor.Workers(3), flor.Init(flor.WeakInit))
		if err != nil {
			t.Fatalf("%s: probed replay: %v", v.name, err)
		}
		if len(hs.Anomalies) != 0 {
			t.Fatalf("%s: probed anomalies %v", v.name, hs.Anomalies)
		}
		results = append(results, result{name: v.name, base: base.Logs, hs: hs.Logs})
	}

	ref := results[0]
	for _, r := range results[1:] {
		if err := sameLogs(ref.base, r.base); err != nil {
			t.Fatalf("base replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
		if err := sameLogs(ref.hs, r.hs); err != nil {
			t.Fatalf("probed replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
	}
}

// TestUnknownFormatMarkersRefuseCleanly pins the forward-compatibility
// contract across the layout family: a FORMAT marker this build does not
// understand — a future layout or corruption — surfaces the typed
// store.ErrUnknownFormat through the flag-free open path instead of
// misparsing the manifest as a torn tail and truncating the run away. The
// markers below include shapes a future build might plausibly write.
func TestUnknownFormatMarkersRefuseCleanly(t *testing.T) {
	factory := counterFactory(3, 2)
	for _, marker := range []string{"3", "2 shards=banana", "2 pool", "2 pool shards=16 v3", "2 gc shards=16"} {
		dir := t.TempDir()
		if _, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "FORMAT"), []byte(marker+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := flor.Replay(dir, factory); !errors.Is(err, store.ErrUnknownFormat) {
			t.Fatalf("marker %q: replay error = %v, want ErrUnknownFormat", marker, err)
		}
		if _, err := store.DetectLayout(dir); !errors.Is(err, store.ErrUnknownFormat) {
			t.Fatalf("marker %q: detect error = %v, want ErrUnknownFormat", marker, err)
		}
		// The refusal destroyed nothing: restoring the real marker restores
		// the run.
		if err := os.WriteFile(filepath.Join(dir, "FORMAT"), []byte("2\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if res, err := flor.Replay(dir, factory); err != nil || len(res.Anomalies) != 0 {
			t.Fatalf("marker %q: replay after restore: %v anomalies=%v", marker, err, res)
		}
	}
}

func sameLogs(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("line %d: %q vs %q", i, a[i], b[i])
		}
	}
	return nil
}
