package flor_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/remote"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// TestMigrationMatrixByteIdenticalReplay is the layout-compatibility
// matrix: the same program recorded into a legacy v1 store, an unsharded v2
// store, a hash-prefix sharded v2 store, and a pooled store (shared chunk
// pool) must open through the same API — no flags, no layout hints — and
// replay byte-identical logs, with the record-phase logs as the reference.
// In particular the pooled run is the private-pack run's twin: same
// program, same probes, byte-identical replay output.
func TestMigrationMatrixByteIdenticalReplay(t *testing.T) {
	factory := counterFactory(6, 3)
	poolRoot := filepath.Join(t.TempDir(), "POOL")
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hs", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}

	variants := []struct {
		name   string
		record func(dir string) error
		layout string
	}{
		{"v1", func(dir string) error {
			_, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true, StoreFormat: store.FormatV1})
			return err
		}, "v1"},
		{"v2", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing())
			return err
		}, "v2"},
		{"v2-sharded", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Shards(16))
			return err
		}, "v2-sharded/16"},
		{"v2-pooled", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Pool(poolRoot), flor.Shards(16))
			return err
		}, "v2-pooled/16"},
	}

	type result struct {
		name string
		base []string
		hs   []string
	}
	var results []result
	for _, v := range variants {
		dir := t.TempDir()
		if err := v.record(dir); err != nil {
			t.Fatalf("%s: record: %v", v.name, err)
		}
		l, err := store.DetectLayout(dir)
		if err != nil {
			t.Fatalf("%s: detect layout: %v", v.name, err)
		}
		if l.String() != v.layout {
			t.Fatalf("%s: layout = %s, want %s", v.name, l, v.layout)
		}
		// Unprobed replay reproduces the record log; probed replay adds the
		// hindsight lines. Both go through the flag-free open path.
		base, err := flor.Replay(dir, factory, flor.Workers(2))
		if err != nil {
			t.Fatalf("%s: replay: %v", v.name, err)
		}
		if len(base.Anomalies) != 0 {
			t.Fatalf("%s: anomalies %v", v.name, base.Anomalies)
		}
		hs, err := flor.Replay(dir, probed, flor.Workers(3), flor.Init(flor.WeakInit))
		if err != nil {
			t.Fatalf("%s: probed replay: %v", v.name, err)
		}
		if len(hs.Anomalies) != 0 {
			t.Fatalf("%s: probed anomalies %v", v.name, hs.Anomalies)
		}
		results = append(results, result{name: v.name, base: base.Logs, hs: hs.Logs})
	}

	ref := results[0]
	for _, r := range results[1:] {
		if err := sameLogs(ref.base, r.base); err != nil {
			t.Fatalf("base replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
		if err := sameLogs(ref.hs, r.hs); err != nil {
			t.Fatalf("probed replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
	}
}

// compressibleFactory builds a program whose checkpoint payloads compress
// well: a mostly-zero embedding table with a handful of entries touched per
// step. Long zero runs give LZ4 real matches, so forced-LZ4 recordings
// commit actual LZ4 frames instead of falling back to raw — which is what
// the restore matrix needs to exercise the LZ4 decode path.
func compressibleFactory(epochs, steps int) func() *flor.Program {
	return func() *flor.Program {
		train := &flor.Loop{ID: "train", IterVar: "step", Iters: steps, Body: []flor.Stmt{
			flor.AssignMethod([]string{"emb"}, "rng", "touch", []string{"emb"}, func(e *flor.Env) error {
				emb := e.MustGet("emb").(*flor.TensorVal).T
				rng := e.MustGet("rng").(*flor.RNGVal).R
				base := (e.Int("epoch")*steps + e.Int("step")) * 8
				for i := 0; i < 8; i++ {
					emb.Data()[(base+i)%emb.Len()] = rng.Float64()
				}
				return nil
			}),
		}}
		return &flor.Program{
			Name: "compressible",
			Setup: []flor.Stmt{
				flor.AssignFunc([]string{"emb"}, "zeros", nil, func(e *flor.Env) error {
					e.Set("emb", &flor.TensorVal{T: tensor.New(4096)})
					return nil
				}),
				flor.AssignFunc([]string{"rng"}, "RNG", nil, func(e *flor.Env) error {
					e.Set("rng", &flor.RNGVal{R: xrand.New(23)})
					return nil
				}),
			},
			Main: &flor.Loop{ID: "main", IterVar: "epoch", Iters: epochs, Body: []flor.Stmt{
				flor.LoopStmt(train),
				flor.LogStmt("sum", func(e *flor.Env) (string, error) {
					return fmt.Sprintf("%.17g", e.MustGet("emb").(*flor.TensorVal).T.Sum()), nil
				}),
			}},
		}
	}
}

// TestRestoreMatrixByteIdentical is the frame-style × IO-path × parallelism
// matrix: the same program recorded under each frame style (adaptive,
// forced deflate, forced LZ4) must replay byte-identical logs whether the
// pack bytes arrive through memory-mapped views or streamed coalesced
// reads, and at any worker count. It also pins the LZ4 marker latch: only
// the store that committed LZ4 frames carries the "lz4" FORMAT token that
// makes older builds refuse it.
func TestRestoreMatrixByteIdentical(t *testing.T) {
	factory := compressibleFactory(5, 2)
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hs", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("emb").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}

	styles := []struct {
		name    string
		opts    []flor.Option
		wantLZ4 bool
	}{
		{"auto", nil, false},
		{"deflate", []flor.Option{flor.WithFrameStyle(flor.FrameStyleDeflate)}, false},
		{"lz4", []flor.Option{flor.WithFrameStyle(flor.FrameStyleLZ4)}, true},
	}

	var ref []string
	for _, sv := range styles {
		dir := t.TempDir()
		opts := append([]flor.Option{flor.DisableAdaptiveCheckpointing()}, sv.opts...)
		if _, err := flor.Record(dir, factory, opts...); err != nil {
			t.Fatalf("%s: record: %v", sv.name, err)
		}
		marker, err := os.ReadFile(filepath.Join(dir, "FORMAT"))
		if err != nil {
			t.Fatalf("%s: read marker: %v", sv.name, err)
		}
		if hasLZ4 := strings.Contains(string(marker), "lz4"); hasLZ4 != sv.wantLZ4 {
			t.Fatalf("%s: marker %q lz4 token = %v, want %v", sv.name, marker, hasLZ4, sv.wantLZ4)
		}
		for _, mmapOn := range []bool{true, false} {
			prev := store.SetMmapPackReads(mmapOn)
			for _, workers := range []int{1, 3} {
				res, err := flor.Replay(dir, probed, flor.Workers(workers), flor.Init(flor.WeakInit))
				if err != nil {
					store.SetMmapPackReads(prev)
					t.Fatalf("%s mmap=%v workers=%d: replay: %v", sv.name, mmapOn, workers, err)
				}
				if len(res.Anomalies) != 0 {
					store.SetMmapPackReads(prev)
					t.Fatalf("%s mmap=%v workers=%d: anomalies %v", sv.name, mmapOn, workers, res.Anomalies)
				}
				if ref == nil {
					ref = res.Logs
				} else if err := sameLogs(ref, res.Logs); err != nil {
					store.SetMmapPackReads(prev)
					t.Fatalf("%s mmap=%v workers=%d: logs diverge: %v", sv.name, mmapOn, workers, err)
				}
			}
			store.SetMmapPackReads(prev)
		}
	}
}

// TestUnknownFormatMarkersRefuseCleanly pins the forward-compatibility
// contract across the layout family: a FORMAT marker this build does not
// understand — a future layout or corruption — surfaces the typed
// store.ErrUnknownFormat through the flag-free open path instead of
// misparsing the manifest as a torn tail and truncating the run away. The
// markers below include shapes a future build might plausibly write.
func TestUnknownFormatMarkersRefuseCleanly(t *testing.T) {
	factory := counterFactory(3, 2)
	for _, marker := range []string{"3", "2 shards=banana", "2 pool", "2 pool shards=16 v3", "2 gc shards=16", "2 lz4 gc", "2 lz4x"} {
		dir := t.TempDir()
		if _, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "FORMAT"), []byte(marker+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := flor.Replay(dir, factory); !errors.Is(err, store.ErrUnknownFormat) {
			t.Fatalf("marker %q: replay error = %v, want ErrUnknownFormat", marker, err)
		}
		if _, err := store.DetectLayout(dir); !errors.Is(err, store.ErrUnknownFormat) {
			t.Fatalf("marker %q: detect error = %v, want ErrUnknownFormat", marker, err)
		}
		// The refusal destroyed nothing: restoring the real marker restores
		// the run.
		if err := os.WriteFile(filepath.Join(dir, "FORMAT"), []byte("2\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if res, err := flor.Replay(dir, factory); err != nil || len(res.Anomalies) != 0 {
			t.Fatalf("marker %q: replay after restore: %v anomalies=%v", marker, err, res)
		}
	}
}

// TestMigrationRemoteTwinByteIdentical is the local run's remote twin: the
// same recording uploaded to an object store and replayed statelessly —
// control plane fetched to a fresh directory, pack bytes arriving as ranged
// GETs through the chunk-cache tier — must produce byte-identical logs to
// the local replay. The cold pass (empty cache) and warm pass (populated
// cache) must agree with each other too, and the fetch-tier accounting must
// show the warm pass serving at least 90% of its pack bytes from the cache
// tier.
func TestMigrationRemoteTwinByteIdentical(t *testing.T) {
	factory := compressibleFactory(5, 2)
	dir := t.TempDir()
	if _, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Shards(8)); err != nil {
		t.Fatalf("record: %v", err)
	}
	local, err := flor.Replay(dir, factory, flor.Workers(2))
	if err != nil {
		t.Fatalf("local replay: %v", err)
	}
	if len(local.Anomalies) != 0 {
		t.Fatalf("local anomalies %v", local.Anomalies)
	}

	// Upload, then restore on a "different machine": only the control plane
	// is fetched locally; every pack byte travels a ranged GET.
	mem := remote.NewMemStore()
	if n, err := remote.UploadRun(mem, dir, "runs/twin"); err != nil || n == 0 {
		t.Fatalf("upload: n=%d err=%v", n, err)
	}
	ctl := filepath.Join(t.TempDir(), "ctl")
	if _, err := remote.FetchControlPlane(mem, "runs/twin", ctl); err != nil {
		t.Fatalf("fetch control plane: %v", err)
	}
	cache, err := cachetier.NewWithBlockSize("", 32<<20, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	open := func() (*replay.Recording, error) {
		backend := remote.NewObjectBackend(mem, remote.PacksPrefix("runs/twin"), cache)
		return core.LoadRecordingWith(ctl, store.Options{ReadOnly: true, Backend: backend})
	}
	run := func(label string) store.FetchSnapshot {
		rec, err := open()
		if err != nil {
			t.Fatalf("%s: open remote recording: %v", label, err)
		}
		res, err := replay.Replay(rec, factory, replay.Options{Workers: 2, Trace: obs.NewTrace()})
		if err != nil {
			t.Fatalf("%s: remote replay: %v", label, err)
		}
		if len(res.Anomalies) != 0 {
			t.Fatalf("%s: anomalies %v", label, res.Anomalies)
		}
		if err := sameLogs(local.Logs, res.Logs); err != nil {
			t.Fatalf("%s: remote logs diverge from local: %v", label, err)
		}
		var fetch store.FetchSnapshot
		for _, w := range res.Workers {
			fetch = fetch.Add(w.Fetch)
		}
		return fetch
	}

	cold := run("cold")
	if cold.RemoteBytes == 0 {
		t.Fatalf("cold replay fetched nothing remotely: %+v", cold)
	}
	warm := run("warm")
	total := warm.RemoteBytes + warm.CacheTierBytes
	if total == 0 || warm.CacheTierBytes*10 < total*9 {
		t.Fatalf("warm replay served %d of %d pack bytes from the cache tier, want >= 90%%", warm.CacheTierBytes, total)
	}
}

func sameLogs(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("line %d: %q vs %q", i, a[i], b[i])
		}
	}
	return nil
}
