package flor_test

import (
	"fmt"
	"testing"

	flor "flor.dev/flor"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/store"
)

// TestMigrationMatrixByteIdenticalReplay is the layout-compatibility
// matrix: the same program recorded into a legacy v1 store, an unsharded v2
// store, and a hash-prefix sharded v2 store must open through the same API
// — no flags, no layout hints — and replay byte-identical logs, with the
// record-phase logs as the reference.
func TestMigrationMatrixByteIdenticalReplay(t *testing.T) {
	factory := counterFactory(6, 3)
	probed := func() *flor.Program {
		p := factory()
		train := p.Main.Body[0].Loop
		train.Body = flor.AddLog(train.Body, 1, flor.LogStmt("hs", func(e *flor.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*flor.TensorVal).T.Norm()), nil
		}))
		return p
	}

	variants := []struct {
		name   string
		record func(dir string) error
		layout string
	}{
		{"v1", func(dir string) error {
			_, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true, StoreFormat: store.FormatV1})
			return err
		}, "v1"},
		{"v2", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing())
			return err
		}, "v2"},
		{"v2-sharded", func(dir string) error {
			_, err := flor.Record(dir, factory, flor.DisableAdaptiveCheckpointing(), flor.Shards(16))
			return err
		}, "v2-sharded/16"},
	}

	type result struct {
		name string
		base []string
		hs   []string
	}
	var results []result
	for _, v := range variants {
		dir := t.TempDir()
		if err := v.record(dir); err != nil {
			t.Fatalf("%s: record: %v", v.name, err)
		}
		l, err := store.DetectLayout(dir)
		if err != nil {
			t.Fatalf("%s: detect layout: %v", v.name, err)
		}
		if l.String() != v.layout {
			t.Fatalf("%s: layout = %s, want %s", v.name, l, v.layout)
		}
		// Unprobed replay reproduces the record log; probed replay adds the
		// hindsight lines. Both go through the flag-free open path.
		base, err := flor.Replay(dir, factory, flor.Workers(2))
		if err != nil {
			t.Fatalf("%s: replay: %v", v.name, err)
		}
		if len(base.Anomalies) != 0 {
			t.Fatalf("%s: anomalies %v", v.name, base.Anomalies)
		}
		hs, err := flor.Replay(dir, probed, flor.Workers(3), flor.Init(flor.WeakInit))
		if err != nil {
			t.Fatalf("%s: probed replay: %v", v.name, err)
		}
		if len(hs.Anomalies) != 0 {
			t.Fatalf("%s: probed anomalies %v", v.name, hs.Anomalies)
		}
		results = append(results, result{name: v.name, base: base.Logs, hs: hs.Logs})
	}

	ref := results[0]
	for _, r := range results[1:] {
		if err := sameLogs(ref.base, r.base); err != nil {
			t.Fatalf("base replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
		if err := sameLogs(ref.hs, r.hs); err != nil {
			t.Fatalf("probed replay logs diverge between %s and %s: %v", ref.name, r.name, err)
		}
	}
}

func sameLogs(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("line %d: %q vs %q", i, a[i], b[i])
		}
	}
	return nil
}
