package workloads_test

import (
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/analyze"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/workloads"
)

func TestRegistryMatchesTable3(t *testing.T) {
	want := []struct {
		name, bench, model, dataset, mode string
		epochs                            int
	}{
		{"RTE", "GLUE", "RoBERTa", "RTE", "Fine-Tune", 200},
		{"CoLA", "GLUE", "RoBERTa", "CoLA", "Fine-Tune", 80},
		{"Cifr", "Classic CV", "Squeezenet", "Cifar100", "Train", 200},
		{"RsNt", "Classic CV", "ResNet-152", "Cifar100", "Train", 200},
		{"Wiki", "GLUE", "RoBERTa", "Wiki", "Train", 12},
		{"Jasp", "MLPerf", "Jasper", "LibriSpeech", "Train", 4},
		{"ImgN", "Classic CV", "Squeezenet", "ImageNet", "Train", 8},
		{"RnnT", "MLPerf", "RNN w/ Attention", "WMT16", "Train", 8},
	}
	all := workloads.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d workloads, want %d", len(all), len(want))
	}
	for i, w := range want {
		s := all[i]
		if s.Name != w.name || s.Benchmark != w.bench || s.Model != w.model ||
			s.Dataset != w.dataset || s.Mode != w.mode || s.PaperEpochs != w.epochs {
			t.Fatalf("workload %d = %+v, want %+v", i, s, w)
		}
	}
}

func TestGetAndNames(t *testing.T) {
	if _, ok := workloads.Get("RsNt"); !ok {
		t.Fatal("Get(RsNt) failed")
	}
	if _, ok := workloads.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if len(workloads.Names()) != 8 || len(workloads.SortedNames()) != 8 {
		t.Fatal("name listings wrong")
	}
}

func TestSmokeEpochsCapped(t *testing.T) {
	for _, s := range workloads.All() {
		smoke := s.Epochs(workloads.Smoke)
		if smoke > 6 {
			t.Fatalf("%s smoke epochs = %d", s.Name, smoke)
		}
		if s.Epochs(workloads.Full) != s.PaperEpochs {
			t.Fatalf("%s full epochs = %d, want paper %d", s.Name, s.Epochs(workloads.Full), s.PaperEpochs)
		}
	}
}

func TestEveryWorkloadRunsVanilla(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			factory := s.Build(workloads.Smoke)
			logs, wall, err := core.Vanilla(factory)
			if err != nil {
				t.Fatal(err)
			}
			if wall <= 0 {
				t.Fatal("no wall time")
			}
			wantLines := s.Epochs(workloads.Smoke) + 1 // metrics per epoch + final
			if len(logs) != wantLines {
				t.Fatalf("logs = %d lines, want %d:\n%s", len(logs), wantLines, strings.Join(logs, "\n"))
			}
		})
	}
}

func TestEveryWorkloadLearns(t *testing.T) {
	// The training substrate must actually learn on each synthetic task: the
	// training loss at the last epoch is below the first epoch's. This
	// guards against degenerate workloads whose replay behaviour would be
	// trivially cheap.
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			logs, _, err := core.Vanilla(s.Build(workloads.Smoke))
			if err != nil {
				t.Fatal(err)
			}
			parseLoss := func(line string) float64 {
				var epoch int
				var loss, acc float64
				if _, err := fmt.Sscanf(line, "metrics: epoch=%d loss=%g acc=%g", &epoch, &loss, &acc); err != nil {
					t.Fatalf("cannot parse %q: %v", line, err)
				}
				return loss
			}
			first := parseLoss(logs[0])
			last := parseLoss(logs[len(logs)-2]) // line before "final:"
			if last >= first {
				t.Fatalf("%s loss did not decrease: %g -> %g", s.Name, first, last)
			}
		})
	}
}

func TestTrainLoopIsMemoizable(t *testing.T) {
	// Every workload's training loop must pass the side-effect analysis and
	// carry the model (directly or via augmentation).
	for _, s := range workloads.All() {
		p := s.Build(workloads.Smoke)()
		train, ok := p.FindLoop("train")
		if !ok {
			t.Fatalf("%s has no train loop", s.Name)
		}
		a := analyze.AnalyzeLoop(p, train)
		if !a.Memoizable {
			t.Fatalf("%s train loop refused: %s", s.Name, a.Refusal)
		}
		set := map[string]bool{}
		for _, n := range a.Changeset {
			set[n] = true
		}
		if !set["optimizer"] {
			t.Fatalf("%s changeset %v missing optimizer", s.Name, a.Changeset)
		}
		if !set["avg_loss"] {
			t.Fatalf("%s changeset %v missing avg_loss (read after loop)", s.Name, a.Changeset)
		}
	}
}

func TestRuleTwoWorkloadsNeedAugmentationForNet(t *testing.T) {
	// The CV and speech workloads use the Figure 6 pattern: net is NOT in
	// the static changeset and must come from augmentation.
	for _, name := range []string{"Cifr", "RsNt", "ImgN", "Jasp"} {
		s, _ := workloads.Get(name)
		p := s.Build(workloads.Smoke)()
		train, _ := p.FindLoop("train")
		a := analyze.AnalyzeLoop(p, train)
		for _, n := range a.Changeset {
			if n == "net" {
				t.Fatalf("%s: net in static changeset %v; should only arrive via augmentation", name, a.Changeset)
			}
		}
	}
	// The NLP workloads use rule 1: net is the receiver and appears
	// statically.
	for _, name := range []string{"RTE", "CoLA", "Wiki", "RnnT"} {
		s, _ := workloads.Get(name)
		p := s.Build(workloads.Smoke)()
		train, _ := p.FindLoop("train")
		a := analyze.AnalyzeLoop(p, train)
		found := false
		for _, n := range a.Changeset {
			if n == "net" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: net missing from static changeset %v", name, a.Changeset)
		}
	}
}

func TestRecordReplayEveryWorkload(t *testing.T) {
	// End-to-end: record at smoke scale, then (a) unprobed replay, (b)
	// inner-probed parallel replay. Both must pass the deferred check.
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			factory := s.Build(workloads.Smoke)
			rec, err := core.Record(t.TempDir(), factory, core.RecordOptions{DisableAdaptive: true})
			if err != nil {
				t.Fatal(err)
			}
			clean, err := replay.Replay(rec.Recording, factory, replay.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(clean.Anomalies) != 0 {
				t.Fatalf("unprobed replay anomalies: %v", clean.Anomalies)
			}
			if clean.Workers[0].Executed != 0 {
				t.Fatalf("unprobed replay executed %d train loops", clean.Workers[0].Executed)
			}

			probed, err := replay.Replay(rec.Recording, workloads.WithInnerProbe(factory),
				replay.Options{Workers: 2, Init: replay.Weak})
			if err != nil {
				t.Fatal(err)
			}
			if len(probed.Anomalies) != 0 {
				t.Fatalf("probed replay anomalies: %v", probed.Anomalies)
			}
			probeLines := 0
			for _, l := range probed.Logs {
				if strings.HasPrefix(l, "hindsight_grad_norm: ") {
					probeLines++
				}
			}
			if probeLines == 0 {
				t.Fatal("inner probe produced no hindsight logs")
			}
		})
	}
}

func TestOuterProbeSkipsTraining(t *testing.T) {
	s, _ := workloads.Get("Cifr")
	factory := s.Build(workloads.Smoke)
	rec, err := core.Record(t.TempDir(), factory, core.RecordOptions{DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.Replay(rec.Recording, workloads.WithOuterProbe(factory), replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	if res.Workers[0].Executed != 0 {
		t.Fatalf("outer probe executed %d train loops, want 0", res.Workers[0].Executed)
	}
	found := 0
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "hindsight_weight_norm: ") {
			found++
		}
	}
	if found != s.Epochs(workloads.Smoke) {
		t.Fatalf("weight-norm probe lines = %d, want %d", found, s.Epochs(workloads.Smoke))
	}
}

func TestFactoriesAreIndependent(t *testing.T) {
	// Two instances from the same factory must not share model state.
	s, _ := workloads.Get("Wiki")
	factory := s.Build(workloads.Smoke)
	p1, p2 := factory(), factory()
	env1, env2 := script.NewEnv(), script.NewEnv()
	if err := script.ExecStmts(&script.Ctx{Env: env1}, p1.Setup); err != nil {
		t.Fatal(err)
	}
	if err := script.ExecStmts(&script.Ctx{Env: env2}, p2.Setup); err != nil {
		t.Fatal(err)
	}
	if env1.MustGet("net") == env2.MustGet("net") {
		t.Fatal("factory instances share the model value")
	}
}
