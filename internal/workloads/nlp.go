package workloads

import (
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/data"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// seqClassTrainer fine-tunes a transformer on sentence classification.
type seqClassTrainer struct {
	ds    *data.TokenDataset
	model *nn.Transformer
}

func (st *seqClassTrainer) trainBatch(e *script.Env, epoch, step int) (float64, error) {
	seqs, labels := st.ds.Batch(epoch, step)
	nn.ZeroGrads(st.model)
	total := 0.0
	for i, seq := range seqs {
		tape := autograd.NewTape()
		logits := st.model.ClassifyLogits(tape, seq)
		loss := tape.SoftmaxCrossEntropy(logits, labels[i:i+1])
		tape.Backward(loss)
		total += loss.Value.Item()
	}
	return total / float64(len(seqs)), nil
}

func (st *seqClassTrainer) evaluate(e *script.Env) (float64, error) {
	seqs, labels := st.ds.Batch(evalEpoch, 0)
	correct := 0
	for i, seq := range seqs {
		tape := autograd.NewTape()
		logits := st.model.ClassifyLogits(tape, seq)
		if nn.Accuracy(logits.Value, labels[i:i+1]) == 1 {
			correct++
		}
	}
	return float64(correct) / float64(len(seqs)), nil
}

// fineTuneSpec builds the two GLUE fine-tuning workloads. The transformer
// backbone is frozen: epochs update only the head, so checkpoints (the full
// model) are enormous relative to per-epoch compute. computeRatio controls
// steps-per-epoch, which sets the M_i/C_i profile: RTE ≈ 0.9 (the 91%
// adaptivity-disabled overhead of Figure 7), CoLA ≈ 0.28.
func fineTuneSpec(name, task, dataset string, paperEpochs, fullSteps, fullBatch, dim, depth int, seed uint64) *Spec {
	return &Spec{
		Name: name, Benchmark: "GLUE", Task: task,
		Model: "RoBERTa", Dataset: dataset, Mode: "Fine-Tune", PaperEpochs: paperEpochs, SmokeEpochs: 6,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := paperEpochs, fullSteps, fullBatch
			vocab, seqLen, hidden, d, dp := 3000, 12, dim*2, dim, depth
			if sc == Smoke {
				epochs, steps, batch = 6, 1, 2
				vocab, seqLen, hidden, d, dp = 200, 8, 32, 16, 2
			}
			return assemble(parts{
				name: name, epochs: epochs, steps: steps,
				pattern: ruleOnePattern, hasSched: true,
				setup: func(e *script.Env) error {
					model := nn.NewTransformer(xrand.New(seed), vocab, seqLen, d, hidden, dp, 2)
					model.FreezeBackbone()
					st := &seqClassTrainer{
						ds:    data.NewTokenDataset(seed, vocab, seqLen, 2, batch, steps),
						model: model,
					}
					o := opt.NewAdamW(model, 2e-3, 0.01)
					sched := opt.NewCosineLR(o, epochs*steps)
					e.Set("net", &value.Model{M: model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("lr_sched", &value.Scheduler{S: sched})
					e.Set("trainer", newTrainerHandle(st.trainBatch, st.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}

func rteSpec() *Spec {
	return fineTuneSpec("RTE", "Recognizing Textual Entailment", "RTE", 200, 1, 7, 48, 3, 0x47E1)
}

func colaSpec() *Spec {
	return fineTuneSpec("CoLA", "Language Acceptability", "CoLA", 80, 20, 2, 52, 3, 0xC01A)
}

// lmTrainer trains a transformer language model (the Wiki workload).
type lmTrainer struct {
	ds    *data.LMDataset
	model *nn.Transformer
}

func (lt *lmTrainer) trainBatch(e *script.Env, epoch, step int) (float64, error) {
	seqs, targets := lt.ds.Batch(epoch, step)
	nn.ZeroGrads(lt.model)
	total := 0.0
	for i, seq := range seqs {
		tape := autograd.NewTape()
		logits := lt.model.LMLogits(tape, seq)
		loss := tape.SoftmaxCrossEntropy(logits, targets[i])
		tape.Backward(loss)
		total += loss.Value.Item()
	}
	return total / float64(len(seqs)), nil
}

func (lt *lmTrainer) evaluate(e *script.Env) (float64, error) {
	seqs, targets := lt.ds.Batch(evalEpoch, 0)
	// Next-token accuracy over the eval batch.
	correct, total := 0, 0
	for i, seq := range seqs {
		tape := autograd.NewTape()
		logits := lt.model.LMLogits(tape, seq)
		pred := logits.Value
		for pos, want := range targets[i] {
			total++
			best, bestJ := pred.At(pos, 0), 0
			for j := 1; j < pred.Dim(1); j++ {
				if v := pred.At(pos, j); v > best {
					best, bestJ = v, j
				}
			}
			if bestJ == want {
				correct++
			}
		}
	}
	return float64(correct) / float64(total), nil
}

// wikiSpec is the Wiki workload: training a transformer LM from scratch, 12
// long epochs.
func wikiSpec() *Spec {
	return &Spec{
		Name: "Wiki", Benchmark: "GLUE", Task: "Language Modeling",
		Model: "RoBERTa", Dataset: "Wiki", Mode: "Train", PaperEpochs: 12, SmokeEpochs: 4,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := 12, 20, 4
			vocab, seqLen, dim, hidden, depth := 800, 16, 32, 64, 3
			if sc == Smoke {
				epochs, steps, batch = 4, 2, 2
				vocab, seqLen, dim, hidden, depth = 120, 8, 16, 32, 2
			}
			return assemble(parts{
				name: "Wiki", epochs: epochs, steps: steps,
				pattern: ruleOnePattern, hasSched: false,
				setup: func(e *script.Env) error {
					model := nn.NewTransformer(xrand.New(0x3141), vocab, seqLen, dim, hidden, depth, vocab)
					lt := &lmTrainer{
						ds:    data.NewLMDataset(0x3141, vocab, seqLen, batch, steps),
						model: model,
					}
					o := opt.NewAdamW(model, 1e-3, 0.01)
					e.Set("net", &value.Model{M: model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("trainer", newTrainerHandle(lt.trainBatch, lt.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}
