package workloads

import (
	"fmt"

	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
)

func weightNorm(m nn.Module) float64 { return nn.WeightNorm(m) }
func gradNorm(m nn.Module) float64   { return nn.GradNorm(m) }

// trainPattern selects the statically visible statement shape of the
// training step, exercising the two paths through the side-effect analysis.
type trainPattern int

const (
	// ruleOnePattern writes "avg_loss = net.train_batch(step)": the model is
	// the receiver, so rule 1 places it in the changeset directly.
	ruleOnePattern trainPattern = iota
	// ruleTwoPattern writes "avg_loss = train_batch(net, step)": rule 2 adds
	// only the target, and the model enters the changeset solely through
	// runtime augmentation from the optimizer — the Figure 6 situation.
	ruleTwoPattern
)

// parts bundles everything assemble needs to build one workload's program.
type parts struct {
	name    string
	epochs  int
	steps   int
	pattern trainPattern
	// hasSched adds an "lr_sched.step()" statement to the training loop.
	hasSched bool
	// setup populates the environment: it must define "net"
	// (*value.Model), "optimizer" (*value.Optimizer), and, when hasSched,
	// "lr_sched" (*value.Scheduler).
	setup func(e *script.Env) error
	// trainBatch runs one forward/backward pass for (epoch, step),
	// returning the batch loss. It must not step the optimizer.
	trainBatch func(e *script.Env, epoch, step int) (float64, error)
	// evaluate computes the per-epoch validation metric from the model.
	evaluate func(e *script.Env) (float64, error)
}

// assemble builds the canonical Flor training program of the paper's
// Figure 2/Figure 6:
//
//	setup:
//	    net, optimizer[, lr_sched] = ...   ; avg_loss = 0 ; acc = 0
//	main loop (epochs):
//	    train loop (steps):
//	        avg_loss = <train-batch pattern>
//	        optimizer.step()
//	        [lr_sched.step()]
//	    acc = evaluate(net)
//	    log "metrics"
//	tail:
//	    log "final"
func assemble(p parts) func() *script.Program {
	return func() *script.Program {
		trainStmt := func() script.Stmt {
			do := func(e *script.Env) error {
				loss, err := p.trainBatch(e, e.Int("epoch"), e.Int("step"))
				if err != nil {
					return err
				}
				e.SetFloat("avg_loss", loss)
				return nil
			}
			if p.pattern == ruleOnePattern {
				return script.AssignMethod([]string{"avg_loss"}, "net", "train_batch", []string{"step"}, do)
			}
			return script.AssignFunc([]string{"avg_loss"}, "train_batch", []string{"net", "step"}, do)
		}()

		trainBody := []script.Stmt{
			trainStmt,
			script.ExprMethod("optimizer", "step", nil, func(e *script.Env) error {
				e.MustGet("optimizer").(*value.Optimizer).O.Step()
				return nil
			}),
		}
		if p.hasSched {
			trainBody = append(trainBody, script.ExprMethod("lr_sched", "step", nil, func(e *script.Env) error {
				e.MustGet("lr_sched").(*value.Scheduler).S.Step()
				return nil
			}))
		}

		train := &script.Loop{ID: "train", IterVar: "step", Iters: p.steps, Body: trainBody}

		setupTargets := []string{"net", "optimizer"}
		if p.hasSched {
			setupTargets = append(setupTargets, "lr_sched")
		}
		return &script.Program{
			Name: p.name,
			Setup: []script.Stmt{
				script.AssignFunc(setupTargets, "build_model", nil, p.setup),
				script.AssignExpr([]string{"avg_loss"}, nil, func(e *script.Env) error {
					e.SetFloat("avg_loss", 0)
					return nil
				}),
				script.AssignExpr([]string{"acc"}, nil, func(e *script.Env) error {
					e.SetFloat("acc", 0)
					return nil
				}),
			},
			Main: &script.Loop{
				ID:      "main",
				IterVar: "epoch",
				Iters:   p.epochs,
				Body: []script.Stmt{
					script.LoopStmt(train),
					script.AssignFunc([]string{"acc"}, "evaluate", []string{"net"}, func(e *script.Env) error {
						acc, err := p.evaluate(e)
						if err != nil {
							return err
						}
						e.SetFloat("acc", acc)
						return nil
					}),
					script.LogStmt("metrics", func(e *script.Env) (string, error) {
						return fmt.Sprintf("epoch=%d loss=%.12g acc=%.12g",
							e.Int("epoch"), e.Float("avg_loss"), e.Float("acc")), nil
					}),
				},
			},
			Tail: []script.Stmt{
				script.LogStmt("final", func(e *script.Env) (string, error) {
					return fmt.Sprintf("acc=%.12g", e.Float("acc")), nil
				}),
			},
		}
	}
}
