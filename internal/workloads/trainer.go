package workloads

import (
	"fmt"

	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
)

// trainerHandle carries a workload's train/eval closures through the
// environment, so that every program run (and every parallel replay worker)
// binds to the model and dataset instances its own setup constructed.
type trainerHandle struct {
	train func(e *script.Env, epoch, step int) (float64, error)
	eval  func(e *script.Env) (float64, error)
}

func newTrainerHandle(
	train func(e *script.Env, epoch, step int) (float64, error),
	eval func(e *script.Env) (float64, error),
) *value.Opaque {
	return &value.Opaque{V: &trainerHandle{train: train, eval: eval}}
}

func handleOf(e *script.Env) (*trainerHandle, error) {
	v, ok := e.Get("trainer")
	if !ok {
		return nil, fmt.Errorf("workloads: no trainer in environment (setup not executed?)")
	}
	h, ok := v.(*value.Opaque).V.(*trainerHandle)
	if !ok {
		return nil, fmt.Errorf("workloads: trainer has unexpected type")
	}
	return h, nil
}

// dispatchTrain forwards the assembled train statement to the run's trainer.
func dispatchTrain(e *script.Env, epoch, step int) (float64, error) {
	h, err := handleOf(e)
	if err != nil {
		return 0, err
	}
	return h.train(e, epoch, step)
}

// dispatchEval forwards the assembled evaluate statement to the run's
// trainer.
func dispatchEval(e *script.Env) (float64, error) {
	h, err := handleOf(e)
	if err != nil {
		return 0, err
	}
	return h.eval(e)
}
