package workloads

import (
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/data"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// speechTrainer trains the "Jasper" conv stack on audio-like frames.
type speechTrainer struct {
	ds    *data.FrameDataset
	model *nn.ConvSpeech
}

func (st *speechTrainer) trainBatch(e *script.Env, epoch, step int) (float64, error) {
	x, labels := st.ds.Batch(epoch, step)
	tape := autograd.NewTape()
	nn.ZeroGrads(st.model)
	logits := st.model.Forward(tape, autograd.NewConst(x))
	loss := tape.SoftmaxCrossEntropy(logits, labels)
	tape.Backward(loss)
	return loss.Value.Item(), nil
}

func (st *speechTrainer) evaluate(e *script.Env) (float64, error) {
	x, labels := st.ds.Batch(evalEpoch, 0)
	tape := autograd.NewTape()
	logits := st.model.Forward(tape, autograd.NewConst(x))
	return nn.Accuracy(logits.Value, labels), nil
}

// jaspSpec is the Jasp workload: speech recognition, 4 very long epochs.
func jaspSpec() *Spec {
	return &Spec{
		Name: "Jasp", Benchmark: "MLPerf", Task: "Speech Recognition",
		Model: "Jasper", Dataset: "LibriSpeech", Mode: "Train", PaperEpochs: 4, SmokeEpochs: 3,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := 4, 80, 8
			frameLen, kernels, klen, depth, hidden, classes := 96, 3, 7, 3, 96, 12
			if sc == Smoke {
				epochs, steps, batch = 3, 2, 2
				frameLen, kernels, klen, depth, hidden, classes = 32, 2, 5, 2, 16, 4
			}
			return assemble(parts{
				name: "Jasp", epochs: epochs, steps: steps,
				pattern: ruleTwoPattern, hasSched: false,
				setup: func(e *script.Env) error {
					st := &speechTrainer{
						ds:    data.NewFrameDataset(0x1A59, frameLen, classes, batch, steps),
						model: nn.NewConvSpeech(xrand.New(0x1A59), frameLen, kernels, klen, depth, hidden, classes),
					}
					o := opt.NewSGD(st.model, 0.02, 0.9, 1e-4)
					e.Set("net", &value.Model{M: st.model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("trainer", newTrainerHandle(st.trainBatch, st.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}

// seq2seqTrainer trains the RNN-with-attention translation model.
type seq2seqTrainer struct {
	ds    *data.Seq2SeqDataset
	model *nn.RNNAttention
}

func (st *seq2seqTrainer) trainBatch(e *script.Env, epoch, step int) (float64, error) {
	srcs, tgts := st.ds.Batch(epoch, step)
	nn.ZeroGrads(st.model)
	total := 0.0
	for i := range srcs {
		tape := autograd.NewTape()
		// Teacher forcing: position j's output predicts tgt[j+1].
		logits := st.model.Logits(tape, srcs[i], tgts[i][:len(tgts[i])-1])
		loss := tape.SoftmaxCrossEntropy(logits, tgts[i][1:])
		tape.Backward(loss)
		total += loss.Value.Item()
	}
	return total / float64(len(srcs)), nil
}

func (st *seq2seqTrainer) evaluate(e *script.Env) (float64, error) {
	srcs, tgts := st.ds.Batch(evalEpoch, 0)
	correct, total := 0, 0
	for i := range srcs {
		tape := autograd.NewTape()
		logits := st.model.Logits(tape, srcs[i], tgts[i][:len(tgts[i])-1])
		pred := logits.Value
		for pos := 0; pos < pred.Dim(0); pos++ {
			total++
			best, bestJ := pred.At(pos, 0), 0
			for j := 1; j < pred.Dim(1); j++ {
				if v := pred.At(pos, j); v > best {
					best, bestJ = v, j
				}
			}
			if bestJ == tgts[i][pos+1] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total), nil
}

// rnntSpec is the RnnT workload: language translation with an RNN and
// attention, 8 heavy epochs and a large model.
func rnntSpec() *Spec {
	return &Spec{
		Name: "RnnT", Benchmark: "MLPerf", Task: "Language Translation",
		Model: "RNN w/ Attention", Dataset: "WMT16", Mode: "Train", PaperEpochs: 8, SmokeEpochs: 4,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := 8, 24, 4
			vocab, dim, hidden, srcLen, tgtLen := 1000, 32, 48, 10, 10
			if sc == Smoke {
				epochs, steps, batch = 4, 8, 4
				vocab, dim, hidden, srcLen, tgtLen = 12, 16, 24, 5, 5
			}
			return assemble(parts{
				name: "RnnT", epochs: epochs, steps: steps,
				pattern: ruleOnePattern, hasSched: false,
				setup: func(e *script.Env) error {
					st := &seq2seqTrainer{
						ds:    data.NewSeq2SeqDataset(0x7447, vocab, srcLen, tgtLen, batch, steps),
						model: nn.NewRNNAttention(xrand.New(0x7447), vocab, dim, hidden),
					}
					o := opt.NewAdamW(st.model, 5e-3, 0)
					e.Set("net", &value.Model{M: st.model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("trainer", newTrainerHandle(st.trainBatch, st.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}

func init() {
	// Table 3 order.
	register(rteSpec())
	register(colaSpec())
	register(cifrSpec())
	register(rsntSpec())
	register(wikiSpec())
	register(jaspSpec())
	register(imgnSpec())
	register(rnntSpec())
}
