package workloads

import (
	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/data"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/opt"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// evalEpoch is the reserved epoch index for held-out evaluation batches:
// datasets are pure functions of (epoch, step), so a huge epoch index acts
// as a disjoint validation split.
const evalEpoch = 1 << 20

// vectorTrainer bundles a classification model over a vector dataset.
type vectorTrainer struct {
	ds    *data.VectorDataset
	model nn.Classifier
}

func (vt *vectorTrainer) trainBatch(e *script.Env, epoch, step int) (float64, error) {
	x, labels := vt.ds.Batch(epoch, step)
	tape := autograd.NewTape()
	nn.ZeroGrads(vt.model)
	logits := vt.model.Forward(tape, autograd.NewConst(x))
	loss := tape.SoftmaxCrossEntropy(logits, labels)
	tape.Backward(loss)
	return loss.Value.Item(), nil
}

func (vt *vectorTrainer) evaluate(e *script.Env) (float64, error) {
	x, labels := vt.ds.Batch(evalEpoch, 0)
	tape := autograd.NewTape()
	logits := vt.model.Forward(tape, autograd.NewConst(x))
	return nn.Accuracy(logits.Value, labels), nil
}

// cifrSpec is the Cifr workload: "Squeezenet" on a CIFAR-100-like synthetic
// task, trained from scratch for 200 epochs. Its checkpoints are small next
// to its compute, so every epoch memoizes.
func cifrSpec() *Spec {
	return &Spec{
		Name: "Cifr", Benchmark: "Classic CV", Task: "Image Classification",
		Model: "Squeezenet", Dataset: "Cifar100", Mode: "Train", PaperEpochs: 200, SmokeEpochs: 6,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := 200, 36, 8
			if sc == Smoke {
				epochs, steps, batch = 6, 3, 4
			}
			return assemble(parts{
				name: "Cifr", epochs: epochs, steps: steps,
				pattern: ruleTwoPattern, hasSched: true,
				setup: func(e *script.Env) error {
					vt := &vectorTrainer{
						ds:    data.NewVectorDataset(0xC1F4, 48, 10, batch, steps, 0.6),
						model: nn.NewConvNet(xrand.New(0xC1F4), 48, 4, 5, 4, 3, 10),
					}
					o := opt.NewSGD(vt.model, 0.05, 0.9, 1e-4)
					sched := opt.NewStepLR(o, 60*steps, 0.5)
					e.Set("net", &value.Model{M: vt.model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("lr_sched", &value.Scheduler{S: sched})
					e.Set("trainer", newTrainerHandle(vt.trainBatch, vt.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}

// rsntSpec is the RsNt workload: a deep "ResNet-152" analogue on the same
// synthetic task, 200 epochs. It has the paper's largest total checkpoint
// footprint: many epochs of a large model.
func rsntSpec() *Spec {
	return &Spec{
		Name: "RsNt", Benchmark: "Classic CV", Task: "Image Classification",
		Model: "ResNet-152", Dataset: "Cifar100", Mode: "Train", PaperEpochs: 200, SmokeEpochs: 6,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch, depth := 200, 48, 8, 8
			if sc == Smoke {
				epochs, steps, batch, depth = 6, 2, 4, 3
			}
			return assemble(parts{
				name: "RsNt", epochs: epochs, steps: steps,
				pattern: ruleTwoPattern, hasSched: false,
				setup: func(e *script.Env) error {
					vt := &vectorTrainer{
						ds:    data.NewVectorDataset(0x4E57, 64, 20, batch, steps, 0.7),
						model: nn.NewResidualMLP(xrand.New(0x4E57), 64, 32, 32, depth, 20),
					}
					o := opt.NewSGD(vt.model, 0.02, 0.9, 1e-4)
					e.Set("net", &value.Model{M: vt.model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("trainer", newTrainerHandle(vt.trainBatch, vt.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}

// imgnSpec is the ImgN workload: "Squeezenet" on an ImageNet-like synthetic
// task — a tiny model swamped by heavy per-epoch data (8 long epochs), so it
// has the smallest checkpoint footprint of Table 4.
func imgnSpec() *Spec {
	return &Spec{
		Name: "ImgN", Benchmark: "Classic CV", Task: "Image Classification",
		Model: "Squeezenet", Dataset: "ImageNet", Mode: "Train", PaperEpochs: 8, SmokeEpochs: 4,
		Build: func(sc Scale) func() *script.Program {
			epochs, steps, batch := 8, 140, 16
			if sc == Smoke {
				epochs, steps, batch = 4, 4, 4
			}
			return assemble(parts{
				name: "ImgN", epochs: epochs, steps: steps,
				pattern: ruleTwoPattern, hasSched: false,
				setup: func(e *script.Env) error {
					vt := &vectorTrainer{
						ds:    data.NewVectorDataset(0x1346, 64, 8, batch, steps, 0.8),
						model: nn.NewConvNet(xrand.New(0x1346), 64, 2, 5, 2, 3, 8),
					}
					o := opt.NewSGD(vt.model, 0.05, 0.9, 1e-4)
					e.Set("net", &value.Model{M: vt.model})
					e.Set("optimizer", &value.Optimizer{O: o})
					e.Set("trainer", newTrainerHandle(vt.trainBatch, vt.evaluate))
					return nil
				},
				trainBatch: dispatchTrain,
				evaluate:   dispatchEval,
			})
		},
	}
}
