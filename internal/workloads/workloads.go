// Package workloads defines the eight evaluation workloads of the paper's
// Table 3 as Flor training programs.
//
//	Name  Benchmark   Task                       Model          Mode       Epochs
//	RTE   GLUE        Textual entailment         RoBERTa        Fine-Tune  200
//	CoLA  GLUE        Language acceptability     RoBERTa        Fine-Tune  80
//	Cifr  Classic CV  Image classification       Squeezenet     Train      200
//	RsNt  Classic CV  Image classification       ResNet-152     Train      200
//	Wiki  GLUE        Language modeling          RoBERTa        Train      12
//	Jasp  MLPerf      Speech recognition         Jasper         Train      4
//	ImgN  Classic CV  Image classification       Squeezenet     Train      8
//	RnnT  MLPerf      Language translation       RNN+Attention  Train      8
//
// Models are laptop-scale analogues (see DESIGN.md §2): epoch counts match
// the paper exactly; per-epoch compute and checkpoint size are scaled
// together so each workload keeps its materialization-to-computation
// profile. The fine-tuning workloads freeze their transformer backbone, so
// their checkpoints are enormous relative to their epochs — the trigger for
// adaptive checkpointing's sparse mode (paper §5.3.4, Figure 7).
package workloads

import (
	"fmt"
	"sort"

	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
)

// Scale selects workload sizing.
type Scale int

// Smoke shrinks epoch counts for fast tests; Full uses the paper's Table 3
// epoch counts with scaled per-epoch compute.
const (
	Smoke Scale = iota
	Full
)

// Spec describes one Table 3 workload.
type Spec struct {
	Name      string
	Benchmark string
	Task      string
	Model     string
	Dataset   string
	Mode      string // "Train" or "Fine-Tune"
	// PaperEpochs is Table 3's epoch count (used at Full scale).
	PaperEpochs int
	// SmokeEpochs is the epoch count used at Smoke scale (tests).
	SmokeEpochs int
	// Build returns a program factory at the given scale. Every call to the
	// factory yields a fresh, independent program instance.
	Build func(sc Scale) func() *script.Program
}

// Epochs returns the main-loop iteration count at the given scale.
func (s *Spec) Epochs(sc Scale) int {
	if sc == Smoke {
		return s.SmokeEpochs
	}
	return s.PaperEpochs
}

var registry = map[string]*Spec{}
var registryOrder []string

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate spec %q", s.Name))
	}
	registry[s.Name] = s
	registryOrder = append(registryOrder, s.Name)
}

// Get returns the workload spec by Table 3 name.
func Get(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every workload in Table 3 order.
func All() []*Spec {
	out := make([]*Spec, 0, len(registryOrder))
	for _, n := range registryOrder {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the workload names in Table 3 order.
func Names() []string {
	return append([]string(nil), registryOrder...)
}

// SortedNames returns workload names alphabetically (for deterministic maps
// in reports).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// ---------- probe helpers ----------

// WithOuterProbe inserts a hindsight log statement into the main loop body
// (after the training loop): the weight-norm probe of the paper's §2.1
// scenario. Partial replay can satisfy it by skipping the training loop.
func WithOuterProbe(factory func() *script.Program) func() *script.Program {
	return func() *script.Program {
		p := factory()
		p.Main.Body = script.AddLog(p.Main.Body, 1, script.LogStmt("hindsight_weight_norm",
			func(e *script.Env) (string, error) {
				mv, ok := e.Get("net")
				if !ok {
					return "", fmt.Errorf("no net in environment")
				}
				m := mv.(*value.Model).M
				return fmt.Sprintf("epoch=%d norm=%.6g", e.Int("epoch"), weightNorm(m)), nil
			}))
		return p
	}
}

// WithInnerProbe inserts a hindsight log statement into the nested training
// loop: the gradient-magnitude probe of §2.1. The training loop must
// re-execute on replay to produce it.
func WithInnerProbe(factory func() *script.Program) func() *script.Program {
	return func() *script.Program {
		p := factory()
		train := findTrainLoop(p)
		train.Body = script.AddLog(train.Body, len(train.Body), script.LogStmt("hindsight_grad_norm",
			func(e *script.Env) (string, error) {
				mv, ok := e.Get("net")
				if !ok {
					return "", fmt.Errorf("no net in environment")
				}
				m := mv.(*value.Model).M
				return fmt.Sprintf("epoch=%d step=%d grad=%.6g", e.Int("epoch"), e.Int("step"), gradNorm(m)), nil
			}))
		return p
	}
}

func findTrainLoop(p *script.Program) *script.Loop {
	for i := range p.Main.Body {
		if l := p.Main.Body[i].Loop; l != nil {
			return l
		}
	}
	panic("workloads: program has no nested training loop")
}
