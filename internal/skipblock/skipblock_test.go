package skipblock

import (
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// tensorProgram is a miniature training script: setup defines a weight
// tensor and an RNG; the nested "train" loop perturbs the weights with
// RNG-dependent values (so both tensor and RNG state are side-effects).
func tensorProgram(epochs, steps int) *script.Program {
	train := &script.Loop{
		ID:      "train",
		IterVar: "step",
		Iters:   steps,
		Body: []script.Stmt{
			script.AssignMethod([]string{"w"}, "w", "update", []string{"rng"}, func(e *script.Env) error {
				w := e.MustGet("w").(*value.Tensor).T
				rng := e.MustGet("rng").(*value.RNG).R
				// Enough compute per step that the Joint Invariant always
				// admits materialization (M_i/C_i ≈ 0.01).
				for pass := 0; pass < 50; pass++ {
					for i := 0; i < w.Len(); i++ {
						w.Data()[i] += rng.Float64() * 0.0001
					}
				}
				return nil
			}),
			script.ExprMethod("rng", "advance", nil, func(e *script.Env) error {
				e.MustGet("rng").(*value.RNG).R.Uint64()
				return nil
			}),
		},
	}
	return &script.Program{
		Name: "tensorprog",
		Setup: []script.Stmt{
			script.AssignFunc([]string{"w"}, "zeros", nil, func(e *script.Env) error {
				e.Set("w", &value.Tensor{T: tensor.New(64)})
				return nil
			}),
			script.AssignFunc([]string{"rng"}, "RNG", nil, func(e *script.Env) error {
				e.Set("rng", &value.RNG{R: xrand.New(42)})
				return nil
			}),
		},
		Main: &script.Loop{
			ID:      "main",
			IterVar: "epoch",
			Iters:   epochs,
			Body: []script.Stmt{
				script.LoopStmt(train),
				script.LogStmt("wsum", func(e *script.Env) (string, error) {
					w := e.MustGet("w").(*value.Tensor).T
					return formatFloat(w.Sum()), nil
				}),
			},
		},
	}
}

// formatFloat renders with %.17g so log diffs catch bit-level divergence.
func formatFloat(f float64) string {
	return fmt.Sprintf("%.17g", f)
}

func newHarness(t *testing.T, p *script.Program, strat backmat.Strategy) (*Runtime, *store.Store, *backmat.Materializer, *adapt.Tracker) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tracker := adapt.New(adapt.DefaultEpsilon)
	// These tests assert memoization *correctness*, which assumes a
	// checkpoint exists for every execution. Leave the adaptive policy to
	// its own package's tests: on a host with slow enough file I/O the Joint
	// Invariant legitimately goes sparse, which is correct behaviour but
	// would make every assertion here timing-dependent.
	tracker.SetDisabled(true)
	mat := backmat.New(st, strat)
	mat.SetObserver(tracker.NoteMaterialized)
	return NewRuntime(p, tracker, mat, st), st, mat, tracker
}

func runProgram(t *testing.T, p *script.Program, rt *Runtime, logSink func(string)) *script.Env {
	t.Helper()
	ctx := &script.Ctx{Env: script.NewEnv(), Log: logSink, LoopHook: rt.Hook}
	if err := script.Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	return ctx.Env
}

func TestRecordMaterializesEveryEpoch(t *testing.T) {
	p := tensorProgram(3, 5)
	rt, st, mat, _ := newHarness(t, p, backmat.Fork)
	runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if !st.Has(store.Key{LoopID: "train", Exec: e}) {
			t.Fatalf("checkpoint for train@%d missing", e)
		}
	}
	b, _ := rt.Block("train")
	if b.Stats().Executed != 3 || b.Stats().Materialized != 3 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestMainLoopNotInstrumented(t *testing.T) {
	p := tensorProgram(2, 2)
	rt, _, mat, _ := newHarness(t, p, backmat.Fork)
	defer mat.Close()
	if _, ok := rt.Block("main"); ok {
		t.Fatal("main loop received a SkipBlock")
	}
	if _, ok := rt.Block("train"); !ok {
		t.Fatal("train loop not instrumented")
	}
}

// TestMemoizationCorrectness is the paper's core correctness claim: loading
// the side-effects of a loop from disk is equivalent to executing the loop.
func TestMemoizationCorrectness(t *testing.T) {
	p := tensorProgram(4, 6)

	// Record run.
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	var recordLogs []string
	recordEnv := runProgram(t, p, rt, func(l string) { recordLogs = append(recordLogs, l) })
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay run in init mode: every train execution restored from disk.
	p2 := tensorProgram(4, 6)
	rt2 := NewRuntime(p2, tracker, backmat.New(st, backmat.Fork), st)
	rt2.SetMode(ModeReplayInit)
	var replayLogs []string
	replayEnv := runProgram(t, p2, rt2, func(l string) { replayLogs = append(replayLogs, l) })

	// Bit-identical final state and logs.
	wr := recordEnv.MustGet("w").(*value.Tensor).T
	wp := replayEnv.MustGet("w").(*value.Tensor).T
	if !tensor.Equal(wr, wp) {
		t.Fatal("restored weights differ from executed weights")
	}
	rngR := recordEnv.MustGet("rng").(*value.RNG).R
	rngP := replayEnv.MustGet("rng").(*value.RNG).R
	if !rngR.Equal(rngP) {
		t.Fatal("restored RNG state differs")
	}
	if strings.Join(recordLogs, "|") != strings.Join(replayLogs, "|") {
		t.Fatalf("logs differ:\nrecord: %v\nreplay: %v", recordLogs, replayLogs)
	}
	b, _ := rt2.Block("train")
	if b.Stats().Executed != 0 || b.Stats().Restored != 4 {
		t.Fatalf("replay-init stats = %+v (loop should be fully skipped)", b.Stats())
	}
}

func TestReplayExecProbedLoopReExecutes(t *testing.T) {
	p := tensorProgram(3, 4)
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := tensorProgram(3, 4)
	rt2 := NewRuntime(p2, tracker, backmat.New(st, backmat.Fork), st)
	rt2.SetMode(ModeReplayExec)
	rt2.SetProbes(map[string]bool{"train": true, "main": true})
	env := runProgram(t, p2, rt2, nil)

	b, _ := rt2.Block("train")
	if b.Stats().Executed != 3 || b.Stats().Restored != 0 {
		t.Fatalf("probed loop stats = %+v, want full re-execution", b.Stats())
	}
	// Re-execution reproduces the same state as record (determinism).
	p3 := tensorProgram(3, 4)
	plain := &script.Ctx{Env: script.NewEnv()}
	if err := script.Run(plain, p3); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(env.MustGet("w").(*value.Tensor).T, plain.Env.MustGet("w").(*value.Tensor).T) {
		t.Fatal("probed re-execution diverged from vanilla execution")
	}
}

func TestReplayExecUnprobedLoopSkips(t *testing.T) {
	p := tensorProgram(3, 4)
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := tensorProgram(3, 4)
	rt2 := NewRuntime(p2, tracker, backmat.New(st, backmat.Fork), st)
	rt2.SetMode(ModeReplayExec)
	rt2.SetProbes(map[string]bool{"main": true}) // outer-loop probe only
	runProgram(t, p2, rt2, nil)
	b, _ := rt2.Block("train")
	if b.Stats().Restored != 3 || b.Stats().Executed != 0 {
		t.Fatalf("unprobed loop stats = %+v, want full skip", b.Stats())
	}
}

func TestSparseCheckpointFallbackToExecution(t *testing.T) {
	// Record with adaptivity disabled for epochs {0, 2}: delete checkpoint 1
	// to simulate sparseness, then replay-init must re-execute epoch 1.
	p := tensorProgram(3, 4)
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	recordEnv := runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the middle checkpoint from the index by GC trick: re-put under
	// a bogus key is complex; instead just verify fallback via a fresh store
	// holding only execs 0 and 2.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, exec := range []int{0, 2} {
		raw, err := st.Get(store.Key{LoopID: "train", Exec: exec})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st2.Put(store.Key{LoopID: "train", Exec: exec}, raw, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	p2 := tensorProgram(3, 4)
	rt2 := NewRuntime(p2, tracker, backmat.New(st2, backmat.Fork), st2)
	rt2.SetMode(ModeReplayInit)
	env := runProgram(t, p2, rt2, nil)
	b, _ := rt2.Block("train")
	if b.Stats().Restored != 2 || b.Stats().Executed != 1 {
		t.Fatalf("sparse replay stats = %+v, want 2 restores + 1 execution", b.Stats())
	}
	if !tensor.Equal(env.MustGet("w").(*value.Tensor).T, recordEnv.MustGet("w").(*value.Tensor).T) {
		t.Fatal("sparse replay diverged from record")
	}
}

func TestSetExecIndexPositionsBlock(t *testing.T) {
	p := tensorProgram(5, 3)
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	recordEnv := runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}

	// Jump straight to epoch 4: restore checkpoint 3's end state, then
	// replay epoch 4 logically — a miniature weak initialization.
	p2 := tensorProgram(5, 3)
	rt2 := NewRuntime(p2, tracker, backmat.New(st, backmat.Fork), st)
	ctx := &script.Ctx{Env: script.NewEnv(), LoopHook: rt2.Hook}
	if err := script.ExecStmts(ctx, p2.Setup); err != nil {
		t.Fatal(err)
	}
	b, _ := rt2.Block("train")
	b.SetExecIndex(3)
	rt2.SetMode(ModeReplayInit)
	ctx.Env.SetInt("epoch", 3)
	if err := script.ExecStmts(ctx, []script.Stmt{p2.Main.Body[0]}); err != nil {
		t.Fatal(err)
	}
	rt2.SetMode(ModeReplayExec)
	ctx.Env.SetInt("epoch", 4)
	if err := script.ExecStmts(ctx, p2.Main.Body); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(ctx.Env.MustGet("w").(*value.Tensor).T, recordEnv.MustGet("w").(*value.Tensor).T) {
		t.Fatal("jump-and-replay diverged from sequential record")
	}
}

func TestNestedCounterAdvanceOnSkip(t *testing.T) {
	// outer loop contains an inner loop; both memoizable. When outer is
	// skipped via checkpoint, inner's execution counter must advance.
	inner := &script.Loop{ID: "inner", IterVar: "j", Iters: 2, Body: []script.Stmt{
		script.ExprMethod("acc", "bump", nil, func(e *script.Env) error {
			e.MustGet("acc").(*value.Int).V++
			return nil
		}),
	}}
	outer := &script.Loop{ID: "outer", IterVar: "i", Iters: 3, Body: []script.Stmt{script.LoopStmt(inner)}}
	mk := func() *script.Program {
		return &script.Program{
			Name: "nested",
			Setup: []script.Stmt{
				script.AssignFunc([]string{"acc"}, "zero", nil, func(e *script.Env) error {
					e.Set("acc", &value.Int{V: 0})
					return nil
				}),
			},
			Main: &script.Loop{ID: "main", IterVar: "e", Iters: 2, Body: []script.Stmt{script.LoopStmt(outer)}},
		}
	}
	p := mk()
	rt, st, mat, tracker := newHarness(t, p, backmat.Fork)
	runProgram(t, p, rt, nil)
	if err := mat.Close(); err != nil {
		t.Fatal(err)
	}
	ib, _ := rt.Block("inner")
	if ib.ExecIndex() != 6 { // 2 epochs × 3 outer iters
		t.Fatalf("record inner exec index = %d, want 6", ib.ExecIndex())
	}

	p2 := mk()
	rt2 := NewRuntime(p2, tracker, backmat.New(st, backmat.Fork), st)
	rt2.SetMode(ModeReplayInit)
	env := runProgram(t, p2, rt2, nil)
	if env.MustGet("acc").(*value.Int).V != 12 {
		t.Fatalf("acc = %d, want 12", env.MustGet("acc").(*value.Int).V)
	}
	ib2, _ := rt2.Block("inner")
	if ib2.ExecIndex() != 6 {
		t.Fatalf("replay inner exec index = %d, want 6 after outer skips", ib2.ExecIndex())
	}
	ob2, _ := rt2.Block("outer")
	if ob2.Stats().Restored != 2 {
		t.Fatalf("outer stats = %+v", ob2.Stats())
	}
}

func TestExecsPerMainIteration(t *testing.T) {
	p := tensorProgram(2, 3)
	if got := ExecsPerMainIteration(p, "train"); got != 1 {
		t.Fatalf("train execs/main-iter = %d, want 1", got)
	}
	inner := &script.Loop{ID: "inner", IterVar: "j", Iters: 4}
	outer := &script.Loop{ID: "outer", IterVar: "i", Iters: 3, Body: []script.Stmt{script.LoopStmt(inner)}}
	p2 := &script.Program{Main: &script.Loop{ID: "main", IterVar: "e", Iters: 2,
		Body: []script.Stmt{script.LoopStmt(outer)}}}
	if got := ExecsPerMainIteration(p2, "outer"); got != 1 {
		t.Fatalf("outer = %d, want 1", got)
	}
	if got := ExecsPerMainIteration(p2, "inner"); got != 3 {
		t.Fatalf("inner = %d, want 3", got)
	}
	if got := ExecsPerMainIteration(p2, "ghost"); got != 0 {
		t.Fatalf("ghost = %d, want 0", got)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeRecord: "record", ModeReplayInit: "replay-init", ModeReplayExec: "replay-exec",
	} {
		if m.String() != want {
			t.Fatalf("Mode %d = %q", m, m.String())
		}
	}
}
