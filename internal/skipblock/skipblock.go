// Package skipblock implements the SkipBlock language construct (paper
// §4.2): parameterized branching, side-effect memoization, and side-effect
// restoration for loops.
//
// A SkipBlock always applies the side-effects of its enclosed loop to the
// program state, in one of two ways: by executing the loop, or by skipping
// it and loading the memoized side-effects from its Loop End Checkpoint.
// Which branch runs is parameterized by the execution state Flor is in:
//
//	ModeRecord      execute, then (subject to the adaptive-checkpointing
//	                Joint Invariant) materialize the Loop End Checkpoint
//	ModeReplayInit  skip: restore side-effects from the checkpoint
//	                (re-execute only if the checkpoint was never
//	                materialized — the sparse-checkpoint fallback)
//	ModeReplayExec  skip unless the loop is probed by a hindsight log
//	                statement, in which case re-execute to produce the logs
package skipblock

import (
	"fmt"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/analyze"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/store"
)

// Mode is the execution state a SkipBlock runtime is in.
type Mode int

// The paper's SkipBlock parameterizations: record execution, replay
// initialization, replay execution.
const (
	ModeRecord Mode = iota
	ModeReplayInit
	ModeReplayExec
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeRecord:
		return "record"
	case ModeReplayInit:
		return "replay-init"
	case ModeReplayExec:
		return "replay-exec"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Stats counts what a SkipBlock did over a run.
type Stats struct {
	Executed      int // loop ran logically
	Restored      int // loop skipped, side-effects loaded from checkpoint
	Materialized  int // checkpoints handed to the materializer
	ComputNs      int64
	RestoreNs     int64
	RestoredBytes int64 // logical payload bytes loaded by restores
}

// Block is the runtime state of one SkipBlock-enclosed loop.
type Block struct {
	Loop      *script.Loop
	Changeset []string // static changeset from analysis (pre-augmentation)
	Probed    bool     // set at replay time from the source diff

	execIndex int // which execution of this loop is next
	stats     Stats

	rt *Runtime
}

// ExecIndex returns the next execution number for this block's loop.
func (b *Block) ExecIndex() int { return b.execIndex }

// SetExecIndex positions the block at execution n; the replay generator uses
// this to jump workers to their segment start.
func (b *Block) SetExecIndex(n int) { b.execIndex = n }

// Stats returns a copy of the block's counters.
func (b *Block) Stats() Stats { return b.stats }

// Runtime manages all SkipBlocks of one program run and provides the loop
// hook that the script executor calls for every nested loop.
type Runtime struct {
	mode    Mode
	blocks  map[string]*Block
	tracker *adapt.Tracker
	mat     *backmat.Materializer
	st      *store.Store
	// cache memoizes decoded section payloads across restores: replay loads
	// largely identical state every epoch, so repeated content (frozen
	// layers, datasets) decodes once per run instead of once per restore.
	cache *backmat.PayloadCache
	// tr/worker/fetch: optional query-trace plumbing. When a trace is set,
	// every restore emits a "restore" span attributing its bytes to the
	// store fetch tier that served them; fetch accumulates the worker's
	// per-tier totals for the query-cost summary.
	tr     *obs.Trace
	worker int
	fetch  *store.FetchStats
}

// NewRuntime instruments a program's nested loops: every loop (other than
// the main loop) whose side-effect analysis is memoizable gets a SkipBlock.
// Refused loops are left intact, to be fully re-executed (paper §5.2.1).
func NewRuntime(p *script.Program, tracker *adapt.Tracker, mat *backmat.Materializer, st *store.Store) *Runtime {
	rt := &Runtime{
		mode:    ModeRecord,
		blocks:  map[string]*Block{},
		tracker: tracker,
		mat:     mat,
		st:      st,
		cache:   backmat.NewPayloadCache(0),
	}
	for _, l := range p.Loops() {
		if p.Main != nil && l.ID == p.Main.ID {
			continue // the main loop is handled by the generator, not a SkipBlock
		}
		a := analyze.AnalyzeLoop(p, l)
		if !a.Memoizable {
			continue
		}
		rt.blocks[l.ID] = &Block{Loop: l, Changeset: a.Changeset, rt: rt}
	}
	return rt
}

// SetMode switches every SkipBlock's parameterized branch (paper Figure 9,
// lines 3-4 and 7: the generator updates SkipBlock state between the init
// and work segments).
func (r *Runtime) SetMode(m Mode) { r.mode = m }

// SetCache replaces the runtime's private payload cache with a shared one.
// A serving daemon shares one cache per run store across every query's
// workers — and, for runs attached to a shared chunk pool, one cache per
// *pool*, so content decoded for one sibling run's replay (the family's
// frozen backbone) is served from memory to every other sibling's. The
// cache key is content identity, which is pool-wide by construction.
// (PayloadCache is safe for concurrent use, and cached payloads are
// immutable by contract.) Call before execution starts; a nil cache is
// ignored.
func (r *Runtime) SetCache(c *backmat.PayloadCache) {
	if c != nil {
		r.cache = c
	}
}

// SetTrace attaches a query trace to the runtime: subsequent restores emit
// tier-attributed "restore" spans under the given worker id, and per-tier
// fetch totals accumulate for FetchSnapshot. A nil trace disables both (the
// default — record-mode runtimes stay unobserved).
func (r *Runtime) SetTrace(tr *obs.Trace, worker int) {
	r.tr, r.worker = tr, worker
	if tr != nil && r.fetch == nil {
		r.fetch = &store.FetchStats{}
	}
}

// FetchSnapshot returns the runtime's accumulated per-tier fetch totals
// (zero when no trace was attached).
func (r *Runtime) FetchSnapshot() store.FetchSnapshot { return r.fetch.Snapshot() }

// Mode returns the current mode.
func (r *Runtime) Mode() Mode { return r.mode }

// Block returns the SkipBlock for a loop ID, if the loop was instrumented.
func (r *Runtime) Block(id string) (*Block, bool) {
	b, ok := r.blocks[id]
	return b, ok
}

// Blocks returns all instrumented loop IDs.
func (r *Runtime) Blocks() []string {
	out := make([]string, 0, len(r.blocks))
	for id := range r.blocks {
		out = append(out, id)
	}
	return out
}

// SetProbes marks the probed loops from a hindsight source diff.
func (r *Runtime) SetProbes(probes map[string]bool) {
	for id, b := range r.blocks {
		b.Probed = probes[id]
	}
}

// Hook is the script.Ctx.LoopHook adapter.
func (r *Runtime) Hook(ctx *script.Ctx, l *script.Loop) (bool, error) {
	b, ok := r.blocks[l.ID]
	if !ok {
		return false, nil // uninstrumented loop: execute logically
	}
	return true, b.Apply(ctx)
}

// Apply applies the loop's side-effects to the program state according to
// the current mode (the SkipBlock's parameterized branching).
func (b *Block) Apply(ctx *script.Ctx) error {
	switch b.rt.mode {
	case ModeRecord:
		return b.recordExec(ctx)
	case ModeReplayInit:
		return b.replayInit(ctx)
	case ModeReplayExec:
		return b.replayExec(ctx)
	default:
		return fmt.Errorf("skipblock: unknown mode %v", b.rt.mode)
	}
}

// recordExec executes the loop, then decides whether to memoize it.
func (b *Block) recordExec(ctx *script.Ctx) error {
	exec := b.execIndex
	b.execIndex++

	t0 := time.Now()
	if err := b.execute(ctx); err != nil {
		return err
	}
	computNs := time.Since(t0).Nanoseconds()
	b.stats.ComputNs += computNs

	// The Joint Invariant test happens after execution, before
	// materialization (paper §5.3.3).
	b.rt.tracker.NoteExecution(b.Loop.ID, computNs)
	vals, size, err := b.resolveChangeset(ctx)
	if err != nil {
		return err
	}
	if !b.rt.tracker.ShouldMaterialize(b.Loop.ID, size) {
		return nil
	}
	b.rt.mat.Materialize(store.Key{LoopID: b.Loop.ID, Exec: exec}, vals, computNs)
	b.stats.Materialized++
	return nil
}

// replayInit skips the loop by restoring its Loop End Checkpoint; if no
// checkpoint was materialized for this execution (sparse/periodic
// checkpointing), the loop is re-executed, which is always correct.
func (b *Block) replayInit(ctx *script.Ctx) error {
	exec := b.execIndex
	key := store.Key{LoopID: b.Loop.ID, Exec: exec}
	if !b.rt.st.Has(key) {
		b.execIndex++
		t0 := time.Now()
		if err := b.execute(ctx); err != nil {
			return err
		}
		b.stats.ComputNs += time.Since(t0).Nanoseconds()
		return nil
	}
	b.execIndex++
	return b.restore(ctx, key)
}

// replayExec re-executes the loop if it is probed (the hindsight log
// statements inside it must run); otherwise it skips via the checkpoint,
// falling back to execution when the checkpoint is missing.
func (b *Block) replayExec(ctx *script.Ctx) error {
	exec := b.execIndex
	key := store.Key{LoopID: b.Loop.ID, Exec: exec}
	if b.Probed || !b.rt.st.Has(key) {
		b.execIndex++
		t0 := time.Now()
		if err := b.execute(ctx); err != nil {
			return err
		}
		b.stats.ComputNs += time.Since(t0).Nanoseconds()
		return nil
	}
	b.execIndex++
	return b.restore(ctx, key)
}

// execute runs the loop logically (and advances nested SkipBlock execution
// counters implicitly, since their hooks fire).
func (b *Block) execute(ctx *script.Ctx) error {
	b.stats.Executed++
	return script.ExecLoop(ctx, b.Loop)
}

// restore loads the Loop End Checkpoint and applies its side-effects.
// Format-v2 checkpoints restore through the parallel path: chunk frames are
// read and decoded across the worker pool (store.GetSections), then bundle
// entries decode in parallel too (backmat.DecodeSections). Format-v1 and
// opaque checkpoints fall back to the monolithic decode.
func (b *Block) restore(ctx *script.Ctx, key store.Key) error {
	t0 := time.Now()
	spanStart := b.rt.tr.Now()
	fetchBefore := b.rt.fetch.Snapshot()
	var items []backmat.NamedPayload
	var restoredBytes int64
	secs, ok, err := b.rt.st.GetSectionsObserved(key, b.rt.cache.Contains, b.rt.fetch)
	if err != nil {
		return fmt.Errorf("skipblock: %s: %w", key, err)
	}
	if ok {
		for _, sec := range secs {
			restoredBytes += int64(sec.RawLen)
		}
		if items, err = backmat.DecodeSectionsCached(b.rt.cache, secs); err != nil {
			return fmt.Errorf("skipblock: %s: %w", key, err)
		}
	} else {
		raw, err := b.rt.st.Get(key)
		if err != nil {
			return fmt.Errorf("skipblock: %s: %w", key, err)
		}
		restoredBytes = int64(len(raw))
		if items, err = backmat.DecodeBundle(raw); err != nil {
			return fmt.Errorf("skipblock: %s: %w", key, err)
		}
	}
	for _, it := range items {
		v, ok := ctx.Env.Get(it.Name)
		if !ok {
			return fmt.Errorf("skipblock: %s: checkpointed variable %q missing from environment (setup must define it)", key, it.Name)
		}
		if err := v.Restore(it.Payload); err != nil {
			return fmt.Errorf("skipblock: %s: restore %q: %w", key, it.Name, err)
		}
	}
	restoreNs := time.Since(t0).Nanoseconds()
	b.stats.Restored++
	b.stats.RestoreNs += restoreNs
	b.stats.RestoredBytes += restoredBytes
	if b.rt.tr != nil {
		d := b.rt.fetch.Snapshot().Sub(fetchBefore)
		b.rt.tr.Add(obs.Span{Name: "restore", Worker: b.rt.worker, StartNs: spanStart, DurNs: restoreNs,
			Attrs: map[string]int64{
				"exec":           int64(key.Exec),
				"restored_bytes": restoredBytes,
				"mmap_bytes":     d.MmapBytes, "mmap_frames": d.MmapFrames,
				"scatter_bytes": d.ScatterBytes, "scatter_frames": d.ScatterFrames,
				"ranged_bytes": d.RangedBytes, "ranged_frames": d.RangedFrames,
				"cache_bytes": d.CacheBytes, "cache_frames": d.CacheFrames,
				"remote_bytes": d.RemoteBytes, "remote_frames": d.RemoteFrames,
				"cache_tier_bytes": d.CacheTierBytes, "cache_tier_frames": d.CacheTierFrames,
				"singleflight_bytes": d.SingleflightBytes, "singleflight_frames": d.SingleflightFrames,
			}})
	}
	if meta, ok := b.rt.st.Lookup(key); ok {
		b.rt.tracker.NoteRestoreLoop(b.Loop.ID, restoreNs, meta.MaterNs)
	}
	// Skipping the loop means nested SkipBlocks never saw their executions;
	// keep their counters aligned.
	b.rt.advanceNested(b.Loop, 1)
	return nil
}

// resolveChangeset augments the static changeset at runtime (optimizer →
// model, scheduler → optimizer; paper §5.2.1) and resolves it against the
// environment.
func (b *Block) resolveChangeset(ctx *script.Ctx) ([]backmat.NamedValue, int, error) {
	names := analyze.Augment(b.Changeset, ctx.Env)
	vals := make([]backmat.NamedValue, 0, len(names))
	size := 0
	for _, n := range names {
		v, ok := ctx.Env.Get(n)
		if !ok {
			return nil, 0, fmt.Errorf("skipblock: %s: changeset variable %q not defined at loop end", b.Loop.ID, n)
		}
		vals = append(vals, backmat.NamedValue{Name: n, V: v})
		size += v.SizeBytes()
	}
	return vals, size, nil
}

// advanceNested advances the execution counters of SkipBlocks nested inside
// loop l by the number of executions they would have performed during
// `times` executions of l.
func (r *Runtime) advanceNested(l *script.Loop, times int) {
	var walk func(body []script.Stmt, mult int)
	walk = func(body []script.Stmt, mult int) {
		for i := range body {
			if nested := body[i].Loop; nested != nil {
				if nb, ok := r.blocks[nested.ID]; ok {
					nb.execIndex += times * mult
				}
				walk(nested.Body, mult*nested.Iters)
			}
		}
	}
	walk(l.Body, l.Iters)
}

// ExecsPerMainIteration returns how many times the loop with the given ID
// executes during one iteration of the main loop; the replay generator uses
// it to position workers. It returns 0 when the loop is not found under the
// main loop.
func ExecsPerMainIteration(p *script.Program, loopID string) int {
	if p.Main == nil {
		return 0
	}
	var walk func(body []script.Stmt, mult int) int
	walk = func(body []script.Stmt, mult int) int {
		for i := range body {
			if nested := body[i].Loop; nested != nil {
				if nested.ID == loopID {
					return mult
				}
				if got := walk(nested.Body, mult*nested.Iters); got > 0 {
					return got
				}
			}
		}
		return 0
	}
	return walk(p.Main.Body, 1)
}
