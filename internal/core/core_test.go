package core_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/value"
)

// counter builds a trivial instrumentable program.
func counter(epochs, steps int) func() *script.Program {
	return func() *script.Program {
		train := &script.Loop{ID: "train", IterVar: "step", Iters: steps, Body: []script.Stmt{
			script.ExprMethod("total", "add", nil, func(e *script.Env) error {
				e.MustGet("total").(*value.Int).V++
				return nil
			}),
		}}
		return &script.Program{
			Name: "counter",
			Setup: []script.Stmt{
				script.AssignExpr([]string{"total"}, nil, func(e *script.Env) error {
					e.Set("total", &value.Int{V: 0})
					return nil
				}),
			},
			Main: &script.Loop{ID: "main", IterVar: "epoch", Iters: epochs, Body: []script.Stmt{
				script.LoopStmt(train),
				script.LogStmt("total", func(e *script.Env) (string, error) {
					return string(rune('0' + e.MustGet("total").(*value.Int).V%10)), nil
				}),
			}},
		}
	}
}

func TestRecordProducesArtifacts(t *testing.T) {
	dir := t.TempDir()
	res, err := core.Record(dir, counter(3, 2), core.RecordOptions{DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallNs <= 0 || len(res.Logs) != 3 {
		t.Fatalf("result = %+v", res)
	}
	for _, f := range []string{"PROGRAM", "record.log", "MANIFEST"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	if res.MatStats.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d", res.MatStats.Checkpoints)
	}
	if len(res.LoopStats) != 1 {
		t.Fatalf("loop stats = %v", res.LoopStats)
	}
	if st, ok := res.LoopStats["train"]; !ok || st.N != 3 {
		t.Fatalf("train stats = %+v", res.LoopStats)
	}
}

func TestRecordPropagatesProgramErrors(t *testing.T) {
	boom := errors.New("data loading failed")
	factory := func() *script.Program {
		return &script.Program{
			Name: "failing",
			Setup: []script.Stmt{
				script.ExprFunc("load", nil, func(e *script.Env) error { return boom }),
			},
			Main: &script.Loop{ID: "main", IterVar: "e", Iters: 1},
		}
	}
	if _, err := core.Record(t.TempDir(), factory, core.RecordOptions{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestLoadRecordingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec1, err := core.Record(dir, counter(4, 2), core.RecordOptions{DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := core.LoadRecording(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rec2.RecordLog, "|") != strings.Join(rec1.Logs, "|") {
		t.Fatal("reloaded record log differs")
	}
	if rec2.Shape.Name != "counter" || rec2.Shape.Main == nil {
		t.Fatalf("reloaded shape = %+v", rec2.Shape)
	}
	if len(rec2.Store.Metas()) != 4 {
		t.Fatalf("reloaded store has %d checkpoints", len(rec2.Store.Metas()))
	}
}

func TestLoadRecordingMissingDir(t *testing.T) {
	if _, err := core.LoadRecording(filepath.Join(t.TempDir(), "ghost")); err == nil {
		t.Fatal("loading an empty directory succeeded")
	}
}

func TestLoadRecordingCorruptProgram(t *testing.T) {
	dir := t.TempDir()
	if _, err := core.Record(dir, counter(2, 1), core.RecordOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "PROGRAM"), []byte{0xff, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadRecording(dir); err == nil {
		t.Fatal("corrupt PROGRAM accepted")
	}
}

func TestVanillaMatchesRecordLogs(t *testing.T) {
	factory := counter(5, 3)
	vlogs, _, err := core.Vanilla(factory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Record(t.TempDir(), factory, core.RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(vlogs, "|") != strings.Join(res.Logs, "|") {
		t.Fatal("instrumentation changed program output")
	}
}

func TestDisableBackgroundUsesBaseline(t *testing.T) {
	res, err := core.Record(t.TempDir(), counter(3, 2),
		core.RecordOptions{DisableAdaptive: true, DisableBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline strategy: all materialization on the caller, none behind.
	if res.MatStats.BackgroundNs != 0 {
		t.Fatalf("baseline record did background work: %+v", res.MatStats)
	}
	if res.MatStats.CallerNs <= 0 {
		t.Fatal("baseline record has no caller time")
	}
}

func TestStrategyOptionHonored(t *testing.T) {
	res, err := core.Record(t.TempDir(), counter(3, 2),
		core.RecordOptions{DisableAdaptive: true, Strategy: backmat.Queue})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatStats.Checkpoints != 3 {
		t.Fatalf("queue strategy checkpoints = %d", res.MatStats.Checkpoints)
	}
}
