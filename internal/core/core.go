// Package core orchestrates Flor record and replay sessions end-to-end
// (paper §3): instrumentation, the record phase with background
// materialization and adaptive checkpointing, persistence of the program
// structure and record log, and the entry point replay consumes.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
	"flor.dev/flor/internal/store"
)

// Program structure, record log, and iteration-timing file names inside a
// run directory.
const (
	programFile   = "PROGRAM"
	recordLogFile = "record.log"
	timingsFile   = "timings.log"
)

// RecordOptions configures a record run.
type RecordOptions struct {
	// Epsilon is the record overhead tolerance ε (adapt.DefaultEpsilon when
	// zero).
	Epsilon float64
	// Strategy selects the background materialization implementation
	// (backmat.Fork is the paper's default).
	Strategy backmat.Strategy
	// DisableAdaptive materializes every loop execution regardless of cost,
	// reproducing the "adaptivity disabled" configuration of Figure 7.
	DisableAdaptive bool
	// DisableBackground forces the Baseline strategy (serialization and
	// write on the training thread), reproducing §5.1's comparison.
	DisableBackground bool
	// StoreFormat forces the checkpoint store's segment format
	// (store.FormatV1 or store.FormatV2); 0 auto-detects (v2 for new runs).
	StoreFormat int
	// ShardFanout requests a hash-prefix sharded chunk store for new runs
	// (power of two in [2, 256]); 0 keeps the single-pack v2 layout.
	ShardFanout int
	// ShardDirs spreads the sharded store's packs over extra root
	// directories (persisted in the run directory, so replay and serving
	// find them without options).
	ShardDirs []string
	// Pool attaches the run to a shared chunk pool at this root (created on
	// first use; see store.Options.Pool). Runs of one project attached to
	// the same pool deduplicate chunks against each other — fine-tuning
	// families sharing a frozen backbone store it once. Replay needs no
	// matching option: the run's manifest records the attachment.
	Pool string
	// FrameStyle forces the chunk-frame encoding for new v2 checkpoints
	// (ckptfmt.StyleDeflate, ckptfmt.StyleLZ4, or ckptfmt.StyleAuto to make
	// the adaptive choice explicit); 0 keeps the adaptive default. See
	// store.Options.FrameStyle.
	FrameStyle byte
}

// RecordResult is the outcome of a record run.
type RecordResult struct {
	Recording *replay.Recording
	// WallNs is the end-to-end duration of the instrumented training run,
	// including waiting for background materialization to drain.
	WallNs int64
	// MatStats aggregates materialization cost accounting.
	MatStats backmat.Stats
	// C is the refined restore/materialize scaling factor after the run.
	C float64
	// LoopStats maps instrumented loop IDs to adaptive checkpointing state.
	LoopStats map[string]adapt.LoopStats
	// Logs is the record-phase run log.
	Logs []string
}

// Record executes the program with Flor instrumentation, materializing
// checkpoints into dir. The returned Recording is everything replay needs.
func Record(dir string, factory func() *script.Program, opts RecordOptions) (*RecordResult, error) {
	p := factory()
	st, err := store.OpenWith(dir, store.Options{
		Format:      opts.StoreFormat,
		ShardFanout: opts.ShardFanout,
		ShardDirs:   opts.ShardDirs,
		Pool:        opts.Pool,
		FrameStyle:  opts.FrameStyle,
	})
	if err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if opts.DisableBackground {
		strategy = backmat.Baseline
	}
	tracker := adapt.New(opts.Epsilon)
	tracker.SetDisabled(opts.DisableAdaptive)
	mat := backmat.New(st, strategy)
	mat.SetObserver(tracker.NoteMaterialized)
	rt := skipblock.NewRuntime(p, tracker, mat, st)

	lg := runlog.New()
	ctx := &script.Ctx{Env: script.NewEnv(), Log: lg.Append, LoopHook: rt.Hook}

	// Run the program phase by phase (same semantics as script.Run), timing
	// setup and every main-loop iteration: the timings feed the replay
	// scheduler's cost model (internal/sched), which balances and steals
	// segments by measured per-iteration cost.
	timings := &runlog.Timings{}
	t0 := time.Now()
	err = script.ExecStmts(ctx, p.Setup)
	timings.SetupNs = time.Since(t0).Nanoseconds()
	if err == nil && p.Main != nil {
		err = script.ExecLoopTimed(ctx, p.Main, func(_ int, ns int64) {
			timings.IterNs = append(timings.IterNs, ns)
		})
	}
	if err == nil {
		err = script.ExecStmts(ctx, p.Tail)
	}
	if err != nil {
		mat.Close()
		return nil, fmt.Errorf("core: record: %w", err)
	}
	if err := mat.Close(); err != nil {
		return nil, fmt.Errorf("core: record materialization: %w", err)
	}
	wall := time.Since(t0).Nanoseconds()

	// Persist the code copy (program structure), the record log, and the
	// per-iteration timings.
	shape := script.StructureOf(p)
	if err := os.WriteFile(filepath.Join(dir, programFile), shape.Encode(), 0o644); err != nil {
		return nil, fmt.Errorf("core: save program structure: %w", err)
	}
	if err := lg.WriteFile(filepath.Join(dir, recordLogFile)); err != nil {
		return nil, err
	}
	timings.C = tracker.C()
	if err := timings.WriteFile(filepath.Join(dir, timingsFile)); err != nil {
		return nil, err
	}

	loopStats := map[string]adapt.LoopStats{}
	for _, id := range rt.Blocks() {
		loopStats[id] = tracker.Stats(id)
	}
	return &RecordResult{
		Recording: &replay.Recording{Store: st, Shape: shape, RecordLog: lg.Lines(), Timings: timings},
		WallNs:    wall,
		MatStats:  mat.Stats(),
		C:         tracker.C(),
		LoopStats: loopStats,
		Logs:      lg.Lines(),
	}, nil
}

// Vanilla executes the program without any Flor instrumentation, returning
// its logs and wall time. The paper's baselines ("vanilla execution") log
// the same data but do no checkpointing.
func Vanilla(factory func() *script.Program) ([]string, int64, error) {
	p := factory()
	lg := runlog.New()
	ctx := &script.Ctx{Env: script.NewEnv(), Log: lg.Append}
	t0 := time.Now()
	if err := script.Run(ctx, p); err != nil {
		return nil, 0, fmt.Errorf("core: vanilla: %w", err)
	}
	return lg.Lines(), time.Since(t0).Nanoseconds(), nil
}

// IsRecording reports whether dir looks like a run directory produced by
// Record: the persisted program structure and record log exist. A checkpoint
// manifest is deliberately not required — an adaptive record run may have
// materialized zero checkpoints and still replay (by re-executing).
// Registration paths use this to reject unrelated directories eagerly.
func IsRecording(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, programFile)); err != nil {
		return false
	}
	if _, err := os.Stat(filepath.Join(dir, recordLogFile)); err != nil {
		return false
	}
	return true
}

// LoadRecording opens a run directory produced by Record.
func LoadRecording(dir string) (*replay.Recording, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return loadRecording(dir, st)
}

// LoadRecordingShared opens a run directory for shared read-only serving:
// the store rejects writes, the open touches nothing on disk, and the
// resulting Recording may be handed to many concurrent replay and sample
// queries (the daemon's open path — the manifest is replayed once here, not
// per query).
func LoadRecordingShared(dir string) (*replay.Recording, error) {
	st, err := store.OpenReadOnly(dir)
	if err != nil {
		return nil, err
	}
	return loadRecording(dir, st)
}

// LoadRecordingSharedPinned is LoadRecordingShared with the store's
// external roots pinned: the open fails unless the run directory's
// persisted SHARDS list still matches shardDirs (empty means "no extra
// roots") and its pool attachment still matches pool (empty means "not
// pooled"), so a server that validated both at registration time cannot be
// redirected by a later SHARDS or manifest rewrite.
func LoadRecordingSharedPinned(dir string, shardDirs []string, pool string) (*replay.Recording, error) {
	opts := store.Options{ReadOnly: true, Pool: pool, PinPool: true}
	if pool == "" {
		// ShardDirs and Pool are mutually exclusive on pooled stores; pin
		// whichever axis the layout actually has.
		opts.ShardDirs = shardDirs
		opts.PinShardDirs = true
	}
	st, err := store.OpenWith(dir, opts)
	if err != nil {
		return nil, err
	}
	return loadRecording(dir, st)
}

// LoadRecordingWith opens a run directory with explicit store options — the
// remote-backed serving path: the caller fetches the run's control plane
// into dir (remote.FetchControlPlane) and passes Options{ReadOnly: true,
// Backend: <ObjectBackend>} so every pack read routes through the remote
// object store and its cache tier.
func LoadRecordingWith(dir string, opts store.Options) (*replay.Recording, error) {
	st, err := store.OpenWith(dir, opts)
	if err != nil {
		return nil, err
	}
	return loadRecording(dir, st)
}

func loadRecording(dir string, st *store.Store) (*replay.Recording, error) {
	raw, err := os.ReadFile(filepath.Join(dir, programFile))
	if err != nil {
		return nil, fmt.Errorf("core: load program structure: %w", err)
	}
	shape, err := script.DecodeProgramShape(raw)
	if err != nil {
		return nil, fmt.Errorf("core: decode program structure: %w", err)
	}
	logs, err := runlog.ReadFile(filepath.Join(dir, recordLogFile))
	if err != nil {
		return nil, err
	}
	// Timings are optional: recordings made before timing capture replay
	// with a metadata-derived cost model instead.
	var timings *runlog.Timings
	if _, serr := os.Stat(filepath.Join(dir, timingsFile)); serr == nil {
		if timings, err = runlog.ReadTimingsFile(filepath.Join(dir, timingsFile)); err != nil {
			return nil, err
		}
	}
	return &replay.Recording{Store: st, Shape: shape, RecordLog: logs, Timings: timings}, nil
}
