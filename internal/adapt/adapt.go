// Package adapt implements adaptive checkpointing (paper §5.3).
//
// After a loop executes — and before its checkpoint is materialized — Flor
// tests the Joint Invariant (Eq. 4):
//
//	M_i / C_i  <  n_i / (k_i + 1) · min( 1/(1+c), ε )
//
// where M_i is the (estimated) time to materialize the loop's side-effects,
// C_i its computation time, n_i its executions so far, k_i its checkpoints
// so far, c the restore/materialize scaling factor, and ε the
// user-specifiable overhead tolerance. The k_i+1 accounts for the checkpoint
// about to be written. Passing the test simultaneously satisfies the Record
// Overhead invariant (Eq. 1: total materialization ≤ ε · total compute) and
// the Replay Latency invariant (Eq. 3: record+replay beats two vanilla
// executions even in the worst case, for any parallelism G ≥ 2).
//
// Loops whose checkpoints are cheap relative to their compute (all the
// paper's training workloads) are memoized every execution. Loops with
// enormous state and tiny epochs (the fine-tuning workloads RTE and CoLA)
// degrade gracefully to sparse periodic checkpointing with period ≈
// ⌈(M_i/C_i)/ε⌉, which is exactly the behaviour behind Figure 7's overhead
// drop.
package adapt

import (
	"sync"

	"flor.dev/flor/internal/store"
)

// DefaultEpsilon is the paper's overhead tolerance: 1/15 ≈ 6.67 %, chosen so
// that memoized loops compute at least 15× longer than they take to
// materialize.
const DefaultEpsilon = 1.0 / 15.0

// DefaultC is the initial restore/materialize scaling factor; the paper
// starts at 1.0 and refines it from observed record-replay timings (their
// measured average was 1.38).
const DefaultC = 1.0

// defaultThroughput seeds the materialization-cost model before any
// checkpoint has been observed: bytes per nanosecond (0.5 ≈ 500 MB/s).
const defaultThroughput = 0.5

// ewmaAlpha is the smoothing factor for all running estimates.
const ewmaAlpha = 0.3

// LoopStats tracks the adaptive-checkpointing state of one loop (the
// paper's Table 2 symbols).
type LoopStats struct {
	N            int     // n_i: executions so far
	K            int     // k_i: checkpoints so far
	EwmaComputNs float64 // running estimate of C_i
	EwmaMaterNs  float64 // running estimate of M_i (0 until first observed)
	LastComputNs int64
	// C and CSamples are the loop's own restore/materialize scaling
	// estimate. The factor is a property of the loop's payload shape — a
	// loop restoring one huge dedup-friendly tensor and a nested loop
	// restoring many small mutating buffers can sit on opposite sides of
	// the global average — so pricing both with one global c skews the
	// balanced partition whenever nested loops differ in per-iteration
	// overhead. Zero samples means no loop-local observation yet; queries
	// fall back to the tracker-wide estimate.
	C        float64
	CSamples int
}

// Tracker drives adaptive checkpointing decisions for all loops of a run.
// It is safe for concurrent use (the background materializer reports
// observations while the training thread queries decisions).
type Tracker struct {
	mu         sync.Mutex
	epsilon    float64
	c          float64
	cSamples   int
	throughput float64 // observed serialize+write throughput, bytes/ns
	loops      map[string]*LoopStats
	disabled   bool // when true, every execution is materialized (Fig 7's "adaptivity disabled")
}

// New returns a tracker with tolerance epsilon (DefaultEpsilon if <= 0).
func New(epsilon float64) *Tracker {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	return &Tracker{
		epsilon:    epsilon,
		c:          DefaultC,
		throughput: defaultThroughput,
		loops:      map[string]*LoopStats{},
	}
}

// SetDisabled turns adaptivity off: every loop execution is checkpointed
// regardless of cost. Used to reproduce the disabled bars of Figure 7.
func (t *Tracker) SetDisabled(d bool) {
	t.mu.Lock()
	t.disabled = d
	t.mu.Unlock()
}

// Epsilon returns the configured overhead tolerance.
func (t *Tracker) Epsilon() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epsilon
}

// C returns the current restore/materialize scaling estimate.
func (t *Tracker) C() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.c
}

func (t *Tracker) loop(id string) *LoopStats {
	ls, ok := t.loops[id]
	if !ok {
		ls = &LoopStats{}
		t.loops[id] = ls
	}
	return ls
}

// NoteExecution records that loop id completed one execution taking
// computNs; call it before ShouldMaterialize.
func (t *Tracker) NoteExecution(id string, computNs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.loop(id)
	ls.N++
	ls.LastComputNs = computNs
	if ls.EwmaComputNs == 0 {
		ls.EwmaComputNs = float64(computNs)
	} else {
		ls.EwmaComputNs = (1-ewmaAlpha)*ls.EwmaComputNs + ewmaAlpha*float64(computNs)
	}
}

// EstimateMaterNs predicts the materialization cost for a checkpoint of
// sizeBytes for loop id: the loop's own observed history when available,
// otherwise a throughput-based model fed by all observed checkpoints.
func (t *Tracker) EstimateMaterNs(id string, sizeBytes int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.estimateLocked(id, sizeBytes)
}

func (t *Tracker) estimateLocked(id string, sizeBytes int) float64 {
	ls := t.loop(id)
	if ls.EwmaMaterNs > 0 {
		return ls.EwmaMaterNs
	}
	return float64(sizeBytes) / t.throughput
}

// ShouldMaterialize evaluates the Joint Invariant for loop id given the
// estimated checkpoint size. It must be called after NoteExecution for the
// execution being considered.
func (t *Tracker) ShouldMaterialize(id string, sizeBytes int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.disabled {
		return true
	}
	ls := t.loop(id)
	ci := ls.EwmaComputNs
	if ci <= 0 {
		// No compute observation: materialize and let observations accrue.
		return true
	}
	mi := t.estimateLocked(id, sizeBytes)
	ratio := mi / ci
	bound := 1 / (1 + t.c)
	if t.epsilon < bound {
		bound = t.epsilon
	}
	threshold := float64(ls.N) / float64(ls.K+1) * bound
	return ratio < threshold
}

// NoteMaterialized records a committed checkpoint's observed cost,
// incrementing k_i and refining M_i and the global throughput model. Wire it
// to the materializer's observer.
func (t *Tracker) NoteMaterialized(meta *store.Meta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.loop(meta.Key.LoopID)
	ls.K++
	if meta.MaterNs > 0 {
		if ls.EwmaMaterNs == 0 {
			ls.EwmaMaterNs = float64(meta.MaterNs)
		} else {
			ls.EwmaMaterNs = (1-ewmaAlpha)*ls.EwmaMaterNs + ewmaAlpha*float64(meta.MaterNs)
		}
		if meta.Size > 0 {
			obs := float64(meta.Size) / float64(meta.MaterNs)
			t.throughput = (1-ewmaAlpha)*t.throughput + ewmaAlpha*obs
		}
	}
}

// NoteRestore refines the restore/materialize scaling factor c from an
// observed (restoreNs, materNs) pair; replay reports these (paper §5.3.2:
// "Flor gradually refines the scaling factor after observing materialization
// and restoration times from record-replay").
func (t *Tracker) NoteRestore(restoreNs, materNs int64) {
	t.NoteRestoreLoop("", restoreNs, materNs)
}

// NoteRestoreLoop is NoteRestore attributed to one loop: the observation
// refines both the loop's own scaling estimate and the tracker-wide one
// (which remains the fallback for loops not yet observed). An empty loopID
// refines only the global estimate.
func (t *Tracker) NoteRestoreLoop(loopID string, restoreNs, materNs int64) {
	if restoreNs <= 0 || materNs <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	obs := float64(restoreNs) / float64(materNs)
	t.cSamples++
	if t.cSamples == 1 {
		t.c = obs
	} else {
		t.c = (1-ewmaAlpha)*t.c + ewmaAlpha*obs
	}
	if loopID == "" {
		return
	}
	ls := t.loop(loopID)
	ls.CSamples++
	if ls.CSamples == 1 {
		ls.C = obs
		return
	}
	ls.C = (1-ewmaAlpha)*ls.C + ewmaAlpha*obs
}

// CLoop returns the restore/materialize scaling estimate for one loop: its
// own once observed, the tracker-wide estimate until then.
func (t *Tracker) CLoop(loopID string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ls, ok := t.loops[loopID]; ok && ls.CSamples > 0 {
		return ls.C
	}
	return t.c
}

// PredictRestoreNsLoop is PredictRestoreNs priced with the loop's own
// scaling estimate when one exists. The replay scheduler partitions and
// prices steal catch-up per loop, so nested loops with different
// per-iteration restore overheads stop contaminating each other's costs.
func (t *Tracker) PredictRestoreNsLoop(loopID string, materNs int64) int64 {
	if materNs <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.c
	if ls, ok := t.loops[loopID]; ok && ls.CSamples > 0 {
		c = ls.C
	}
	return int64(c * float64(materNs))
}

// SeedC initializes the restore/materialize scaling estimate from a
// previously measured value (e.g. one persisted with a recording's
// timings), replacing the DefaultC prior. Non-positive values are ignored.
// The seed counts as an observation: the next NoteRestore blends into it
// (EWMA) rather than discarding it, so one unrepresentative first sample —
// a cache-hot restore measuring near zero — cannot wipe out a measured
// prior.
func (t *Tracker) SeedC(c float64) {
	if c <= 0 {
		return
	}
	t.mu.Lock()
	t.c = c
	t.cSamples = 1
	t.mu.Unlock()
}

// PredictRestoreNs estimates how long restoring a checkpoint will take from
// how long it took to materialize, through the current restore/materialize
// scaling estimate c (paper §5.3.2). The replay scheduler prices weak-init
// catch-ups and steal profitability with it.
func (t *Tracker) PredictRestoreNs(materNs int64) int64 {
	if materNs <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.c * float64(materNs))
}

// Stats returns a copy of the stats for loop id.
func (t *Tracker) Stats(id string) LoopStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return *t.loop(id)
}
