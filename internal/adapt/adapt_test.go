package adapt

import (
	"math"
	"testing"

	"flor.dev/flor/internal/store"
)

// simulate runs n executions of one loop through the tracker, with fixed
// compute and materialization costs, and returns how many were checkpointed.
func simulate(t *Tracker, loopID string, n int, computNs, materNs int64, size int) int {
	materialized := 0
	for i := 0; i < n; i++ {
		t.NoteExecution(loopID, computNs)
		if t.ShouldMaterialize(loopID, size) {
			materialized++
			t.NoteMaterialized(&store.Meta{
				Key:      store.Key{LoopID: loopID, Exec: i},
				Size:     int64(size),
				MaterNs:  materNs,
				ComputNs: computNs,
			})
		}
	}
	return materialized
}

func TestCheapCheckpointsMaterializeEveryTime(t *testing.T) {
	// Training workloads: materialization is negligible next to compute
	// (paper: "The loops in model training workloads are memoized every time").
	tr := New(DefaultEpsilon)
	n := 100
	// Mi/Ci = 0.001, far below every threshold.
	got := simulate(tr, "train", n, 1_000_000, 1_000, 1000)
	if got != n {
		t.Fatalf("materialized %d of %d cheap checkpoints", got, n)
	}
}

func TestExpensiveCheckpointsGoPeriodic(t *testing.T) {
	// Fine-tuning workloads: Mi ≈ Ci. With ε = 1/15 and c = 1 the invariant
	// passes only when n/(k+1) > 15, i.e. roughly every 15th execution.
	tr := New(DefaultEpsilon)
	n := 200
	got := simulate(tr, "finetune", n, 1_000_000, 1_000_000, 1<<20)
	if got == 0 {
		t.Fatal("periodic checkpointing never materialized")
	}
	// Expected k ≈ n·ε ≈ 13; allow slack for estimate warm-up.
	if got > n/10 {
		t.Fatalf("materialized %d of %d; expected sparse (~%d)", got, n, int(float64(n)*DefaultEpsilon))
	}
}

func TestOverheadInvariantHolds(t *testing.T) {
	// Property (Eq. 1): total materialization time ≤ ε · total compute time,
	// with slack for the one checkpoint the test admits before refining
	// estimates.
	for _, ratio := range []float64{0.01, 0.1, 0.5, 1.0, 5.0} {
		tr := New(DefaultEpsilon)
		computNs := int64(1_000_000)
		materNs := int64(float64(computNs) * ratio)
		n := 300
		k := simulate(tr, "w", n, computNs, materNs, 1000)
		totalMater := float64(k) * float64(materNs)
		totalComput := float64(n) * float64(computNs)
		budget := DefaultEpsilon*totalComput + float64(materNs) // one-checkpoint slack
		if totalMater > budget {
			t.Fatalf("ratio %.2f: materialization %.0f exceeds budget %.0f (k=%d)",
				ratio, totalMater, budget, k)
		}
	}
}

func TestDisabledMaterializesAlways(t *testing.T) {
	tr := New(DefaultEpsilon)
	tr.SetDisabled(true)
	n := 50
	got := simulate(tr, "finetune", n, 1000, 1_000_000, 1<<20)
	if got != n {
		t.Fatalf("disabled tracker materialized %d of %d", got, n)
	}
}

func TestColdStartHugeStateUsesThroughputModel(t *testing.T) {
	// Before any observation, a checkpoint whose size-based estimate dwarfs
	// compute must be skipped on the very first test.
	tr := New(DefaultEpsilon)
	tr.NoteExecution("ft", 1_000) // 1µs epochs
	// 1 GB at the default 0.5 bytes/ns ≈ 2s estimated materialization.
	if tr.ShouldMaterialize("ft", 1<<30) {
		t.Fatal("cold-start invariant admitted a pathological checkpoint")
	}
}

func TestColdStartNoComputeObservationMaterializes(t *testing.T) {
	tr := New(DefaultEpsilon)
	// ShouldMaterialize without NoteExecution: no C_i estimate; default to
	// materializing so observations can accrue.
	if !tr.ShouldMaterialize("fresh", 10) {
		t.Fatal("tracker with no compute estimate refused to bootstrap")
	}
}

func TestEstimateUsesObservedHistoryOverModel(t *testing.T) {
	tr := New(DefaultEpsilon)
	tr.NoteExecution("l", 1000)
	tr.NoteMaterialized(&store.Meta{Key: store.Key{LoopID: "l"}, Size: 100, MaterNs: 12345})
	est := tr.EstimateMaterNs("l", 1<<30) // size should be ignored now
	if est != 12345 {
		t.Fatalf("estimate = %g, want observed 12345", est)
	}
}

func TestThroughputModelLearnsFromObservations(t *testing.T) {
	tr := New(DefaultEpsilon)
	before := tr.EstimateMaterNs("unseen", 1000)
	// Feed fast observations through a different loop: 10 bytes/ns.
	for i := 0; i < 50; i++ {
		tr.NoteMaterialized(&store.Meta{Key: store.Key{LoopID: "other"}, Size: 1_000_000, MaterNs: 100_000})
	}
	after := tr.EstimateMaterNs("unseen", 1000)
	if after >= before {
		t.Fatalf("throughput model did not learn: %g -> %g", before, after)
	}
}

func TestCEstimationConverges(t *testing.T) {
	tr := New(DefaultEpsilon)
	if tr.C() != DefaultC {
		t.Fatalf("initial c = %g", tr.C())
	}
	// Observe restores at 1.38× materialization cost — the paper's measured
	// average.
	for i := 0; i < 100; i++ {
		tr.NoteRestore(1380, 1000)
	}
	if math.Abs(tr.C()-1.38) > 0.01 {
		t.Fatalf("c = %g, want ~1.38", tr.C())
	}
}

func TestCIgnoresInvalidSamples(t *testing.T) {
	tr := New(DefaultEpsilon)
	tr.NoteRestore(0, 100)
	tr.NoteRestore(100, 0)
	tr.NoteRestore(-5, 100)
	if tr.C() != DefaultC {
		t.Fatalf("c changed on invalid samples: %g", tr.C())
	}
}

func TestLargerCMakesInvariantStricter(t *testing.T) {
	// 1/(1+c) shrinks as c grows; when it dips below ε it becomes the
	// binding constraint (Eq. 4 takes the min).
	mk := func(c float64) *Tracker {
		tr := New(0.9) // huge ε so the c term binds
		for i := 0; i < 200; i++ {
			tr.NoteRestore(int64(c*1000), 1000)
		}
		return tr
	}
	// Mi/Ci = 0.4: passes with c=1 (bound 0.5) and fails with c=3 (bound 0.25).
	loose := mk(1.0)
	loose.NoteExecution("l", 1000)
	strict := mk(3.0)
	strict.NoteExecution("l", 1000)
	// Estimated Mi = 400ns for a 200-byte checkpoint at 0.5 bytes/ns.
	if !loose.ShouldMaterialize("l", 200) {
		t.Fatal("c=1.0 should admit Mi/Ci=0.4 on first execution")
	}
	if strict.ShouldMaterialize("l", 200) {
		t.Fatal("c=3.0 should reject Mi/Ci=0.4 on first execution")
	}
}

func TestEpsilonDefaulting(t *testing.T) {
	if got := New(0).Epsilon(); got != DefaultEpsilon {
		t.Fatalf("Epsilon = %g", got)
	}
	if got := New(0.1).Epsilon(); got != 0.1 {
		t.Fatalf("Epsilon = %g", got)
	}
}

func TestStatsTracking(t *testing.T) {
	tr := New(DefaultEpsilon)
	simulate(tr, "w", 10, 1_000_000, 100, 10)
	st := tr.Stats("w")
	if st.N != 10 {
		t.Fatalf("N = %d", st.N)
	}
	if st.K != 10 {
		t.Fatalf("K = %d (cheap checkpoints should all materialize)", st.K)
	}
	if st.EwmaComputNs <= 0 || st.EwmaMaterNs <= 0 {
		t.Fatalf("estimates missing: %+v", st)
	}
}

func TestIndependentLoops(t *testing.T) {
	tr := New(DefaultEpsilon)
	simulate(tr, "cheap", 50, 1_000_000, 100, 10)
	simulate(tr, "dear", 50, 1_000, 1_000_000, 1<<20)
	if tr.Stats("cheap").K != 50 {
		t.Fatal("cheap loop should checkpoint every time")
	}
	if tr.Stats("dear").K >= 50/2 {
		t.Fatalf("expensive loop checkpointed %d/50 times", tr.Stats("dear").K)
	}
}

// TestPerLoopCIsolation pins the per-loop scaling fix: observations from a
// loop with an expensive restore path must not inflate (or deflate) the
// restore predictions of a sibling loop, while unobserved loops still fall
// back to the tracker-wide estimate.
func TestPerLoopCIsolation(t *testing.T) {
	tr := New(DefaultEpsilon)
	// Outer loop restores at 4x its materialization; inner at 0.5x.
	for i := 0; i < 20; i++ {
		tr.NoteRestoreLoop("outer", 4000, 1000)
		tr.NoteRestoreLoop("inner", 500, 1000)
	}
	if c := tr.CLoop("outer"); c < 3.5 || c > 4.5 {
		t.Fatalf("outer c = %g, want ~4", c)
	}
	if c := tr.CLoop("inner"); c < 0.4 || c > 0.6 {
		t.Fatalf("inner c = %g, want ~0.5", c)
	}
	// Predictions price each loop with its own factor.
	if got := tr.PredictRestoreNsLoop("outer", 1000); got < 3500 || got > 4500 {
		t.Fatalf("outer prediction = %d, want ~4000", got)
	}
	if got := tr.PredictRestoreNsLoop("inner", 1000); got < 400 || got > 600 {
		t.Fatalf("inner prediction = %d, want ~500", got)
	}
	// A loop never observed falls back to the global blend, which sits
	// strictly between the two per-loop estimates.
	g := tr.CLoop("unseen")
	if g <= 0.5 || g >= 4 {
		t.Fatalf("global fallback c = %g, want between 0.5 and 4", g)
	}
	if got, want := tr.PredictRestoreNsLoop("unseen", 1000), tr.PredictRestoreNs(1000); got != want {
		t.Fatalf("unseen loop prediction %d != global prediction %d", got, want)
	}
}

// TestNoteRestoreLoopFeedsGlobal pins that attributed observations still
// refine the tracker-wide estimate NoteRestore callers read.
func TestNoteRestoreLoopFeedsGlobal(t *testing.T) {
	tr := New(DefaultEpsilon)
	for i := 0; i < 10; i++ {
		tr.NoteRestoreLoop("l", 2000, 1000)
	}
	if c := tr.C(); c < 1.9 || c > 2.1 {
		t.Fatalf("global c = %g, want ~2", c)
	}
}
