package autograd

import (
	"fmt"

	"flor.dev/flor/internal/tensor"
)

// ReshapeVar returns x viewed with a new shape (same element count). The
// value is copied so downstream in-place mutation cannot alias the input.
func (t *Tape) ReshapeVar(x *Var, shape ...int) *Var {
	out := t.emit(x.Value.Clone().Reshape(shape...), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			x.accumulate(out.Grad.Clone().Reshape(x.Value.Shape()...))
		}
	}
	return out
}

// MeanRows reduces a (m×n) Var to its (1×n) column mean.
func (t *Tape) MeanRows(x *Var) *Var {
	m, n := x.Value.Dim(0), x.Value.Dim(1)
	val := tensor.New(1, n)
	vd, xd := val.Data(), x.Value.Data()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			vd[j] += xd[i*n+j]
		}
	}
	inv := 1 / float64(m)
	for j := range vd {
		vd[j] *= inv
	}
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(m, n)
			gd, od := g.Data(), out.Grad.Data()
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					gd[i*n+j] = od[j] * inv
				}
			}
			x.accumulate(g)
		}
	}
	return out
}

// MeanGroups reduces a (batch*group × n) Var to (batch × n) by averaging
// each consecutive block of group rows.
func (t *Tape) MeanGroups(x *Var, batch, group int) *Var {
	rows, n := x.Value.Dim(0), x.Value.Dim(1)
	if rows != batch*group {
		panic(fmt.Sprintf("autograd: MeanGroups rows %d != batch %d * group %d", rows, batch, group))
	}
	val := tensor.New(batch, n)
	vd, xd := val.Data(), x.Value.Data()
	inv := 1 / float64(group)
	for b := 0; b < batch; b++ {
		for g := 0; g < group; g++ {
			row := xd[(b*group+g)*n : (b*group+g+1)*n]
			for j := 0; j < n; j++ {
				vd[b*n+j] += row[j]
			}
		}
		for j := 0; j < n; j++ {
			vd[b*n+j] *= inv
		}
	}
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(rows, n)
			gd, od := g.Data(), out.Grad.Data()
			for b := 0; b < batch; b++ {
				for gi := 0; gi < group; gi++ {
					for j := 0; j < n; j++ {
						gd[(b*group+gi)*n+j] = od[b*n+j] * inv
					}
				}
			}
			x.accumulate(g)
		}
	}
	return out
}

// RowVar extracts row i of a (m×n) Var as a (1×n) Var.
func (t *Tape) RowVar(x *Var, i int) *Var {
	m, n := x.Value.Dim(0), x.Value.Dim(1)
	if i < 0 || i >= m {
		panic(fmt.Sprintf("autograd: RowVar index %d out of %d rows", i, m))
	}
	val := tensor.New(1, n)
	copy(val.Data(), x.Value.Data()[i*n:(i+1)*n])
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(m, n)
			copy(g.Data()[i*n:(i+1)*n], out.Grad.Data())
			x.accumulate(g)
		}
	}
	return out
}

// StackRows stacks k (1×n) Vars into a (k×n) Var.
func (t *Tape) StackRows(rows []*Var) *Var {
	if len(rows) == 0 {
		panic("autograd: StackRows on empty slice")
	}
	n := rows[0].Value.Dim(1)
	requires := false
	for _, r := range rows {
		if r.Value.Dim(0) != 1 || r.Value.Dim(1) != n {
			panic(fmt.Sprintf("autograd: StackRows row shape %v, want [1 %d]", r.Value.Shape(), n))
		}
		requires = requires || r.requiresGrad
	}
	val := tensor.New(len(rows), n)
	for i, r := range rows {
		copy(val.Data()[i*n:(i+1)*n], r.Value.Data())
	}
	out := t.emit(val, requires, nil)
	if out.requiresGrad {
		out.backward = func() {
			od := out.Grad.Data()
			for i, r := range rows {
				if !r.requiresGrad {
					continue
				}
				g := tensor.New(1, n)
				copy(g.Data(), od[i*n:(i+1)*n])
				r.accumulate(g)
			}
		}
	}
	return out
}
