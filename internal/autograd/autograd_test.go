package autograd

import (
	"math"
	"testing"

	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// numericGrad estimates d loss / d param via central differences, where
// forward rebuilds the computation from scratch each call.
func numericGrad(param *tensor.Tensor, forward func() float64) *tensor.Tensor {
	const h = 1e-6
	g := tensor.New(param.Shape()...)
	pd, gd := param.Data(), g.Data()
	for i := range pd {
		orig := pd[i]
		pd[i] = orig + h
		up := forward()
		pd[i] = orig - h
		down := forward()
		pd[i] = orig
		gd[i] = (up - down) / (2 * h)
	}
	return g
}

func checkGrad(t *testing.T, name string, param *Var, forward func() *Var) {
	t.Helper()
	tape := NewTape()
	param.ZeroGrad()
	// Run analytic backward once.
	build := func(tp *Tape) *Var { return forwardWith(tp, forward) }
	_ = build
	loss := runForward(forward)
	lossTape.Backward(loss)
	analytic := param.Grad.Clone()
	numeric := numericGrad(param.Value, func() float64 {
		return runForward(forward).Value.Item()
	})
	if !tensor.AllClose(analytic, numeric, 1e-4) {
		t.Fatalf("%s: analytic gradient disagrees with numeric.\nanalytic: %v\nnumeric:  %v",
			name, analytic.Data(), numeric.Data())
	}
	_ = tape
}

// lossTape is the tape used by runForward; tests rebuild it per forward call.
var lossTape *Tape

func runForward(forward func() *Var) *Var {
	lossTape = NewTape()
	return forward()
}

func forwardWith(tp *Tape, forward func() *Var) *Var {
	lossTape = tp
	return forward()
}

func TestMatMulGradient(t *testing.T) {
	rng := xrand.New(1)
	w := NewParam(tensor.Randn(rng, 0.5, 3, 4))
	x := NewConst(tensor.Randn(rng, 1, 2, 3))
	checkGrad(t, "matmul", w, func() *Var {
		return lossTape.MeanAll(lossTape.MatMul(x, w))
	})
}

func TestAddBiasGradient(t *testing.T) {
	rng := xrand.New(2)
	b := NewParam(tensor.Randn(rng, 0.5, 4))
	x := NewConst(tensor.Randn(rng, 1, 3, 4))
	checkGrad(t, "addbias", b, func() *Var {
		return lossTape.MeanAll(lossTape.AddBias(x, b))
	})
}

func TestReluGradient(t *testing.T) {
	rng := xrand.New(3)
	w := NewParam(tensor.Randn(rng, 1, 2, 5))
	checkGrad(t, "relu", w, func() *Var {
		return lossTape.MeanAll(lossTape.Relu(w))
	})
}

func TestTanhGradient(t *testing.T) {
	rng := xrand.New(4)
	w := NewParam(tensor.Randn(rng, 1, 2, 3))
	checkGrad(t, "tanh", w, func() *Var {
		return lossTape.MeanAll(lossTape.Tanh(w))
	})
}

func TestSigmoidGradient(t *testing.T) {
	rng := xrand.New(5)
	w := NewParam(tensor.Randn(rng, 1, 2, 3))
	checkGrad(t, "sigmoid", w, func() *Var {
		return lossTape.MeanAll(lossTape.Sigmoid(w))
	})
}

func TestGeluGradient(t *testing.T) {
	rng := xrand.New(6)
	w := NewParam(tensor.Randn(rng, 1, 2, 3))
	checkGrad(t, "gelu", w, func() *Var {
		return lossTape.MeanAll(lossTape.Gelu(w))
	})
}

func TestMulGradient(t *testing.T) {
	rng := xrand.New(7)
	w := NewParam(tensor.Randn(rng, 1, 3, 3))
	x := NewConst(tensor.Randn(rng, 1, 3, 3))
	checkGrad(t, "mul", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(w, x))
	})
}

func TestSubScaleGradient(t *testing.T) {
	rng := xrand.New(8)
	w := NewParam(tensor.Randn(rng, 1, 2, 2))
	x := NewConst(tensor.Randn(rng, 1, 2, 2))
	checkGrad(t, "sub-scale", w, func() *Var {
		return lossTape.MeanAll(lossTape.Scale(lossTape.Sub(w, x), 3))
	})
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := xrand.New(9)
	w := NewParam(tensor.Randn(rng, 1, 4, 5))
	labels := []int{1, 3, 0, 2}
	checkGrad(t, "xent", w, func() *Var {
		return lossTape.SoftmaxCrossEntropy(w, labels)
	})
}

func TestLookupGradient(t *testing.T) {
	rng := xrand.New(10)
	table := NewParam(tensor.Randn(rng, 1, 6, 3))
	ids := []int{0, 2, 2, 5}
	checkGrad(t, "lookup", table, func() *Var {
		return lossTape.MeanAll(lossTape.Lookup(table, ids))
	})
}

func TestLayerNormGradients(t *testing.T) {
	rng := xrand.New(11)
	x := NewParam(tensor.Randn(rng, 1, 3, 4))
	gain := NewParam(tensor.Full(1.2, 4))
	bias := NewParam(tensor.Full(0.1, 4))
	for _, tc := range []struct {
		name  string
		param *Var
	}{{"x", x}, {"gain", gain}, {"bias", bias}} {
		checkGrad(t, "layernorm-"+tc.name, tc.param, func() *Var {
			// Square the output so the x-gradient is non-trivial (mean of a
			// normalized row has near-zero gradient by construction).
			ln := lossTape.LayerNorm(x, gain, bias, 1e-5)
			return lossTape.MeanAll(lossTape.Mul(ln, ln))
		})
	}
}

func TestSoftmaxRowsGradient(t *testing.T) {
	rng := xrand.New(12)
	w := NewParam(tensor.Randn(rng, 1, 2, 4))
	mask := NewConst(tensor.Randn(rng, 1, 2, 4))
	checkGrad(t, "softmaxrows", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(lossTape.SoftmaxRows(w), mask))
	})
}

func TestConv1DGradients(t *testing.T) {
	rng := xrand.New(13)
	input := NewParam(tensor.Randn(rng, 1, 2, 7))
	kernels := NewParam(tensor.Randn(rng, 1, 3, 3))
	checkGrad(t, "conv1d-kernels", kernels, func() *Var {
		return lossTape.MeanAll(lossTape.Conv1D(input, kernels))
	})
	checkGrad(t, "conv1d-input", input, func() *Var {
		return lossTape.MeanAll(lossTape.Conv1D(input, kernels))
	})
}

func TestConcatRowsGradient(t *testing.T) {
	rng := xrand.New(14)
	a := NewParam(tensor.Randn(rng, 1, 2, 3))
	b := NewParam(tensor.Randn(rng, 1, 2, 2))
	mask := NewConst(tensor.Randn(rng, 1, 2, 5))
	for _, tc := range []struct {
		name  string
		param *Var
	}{{"a", a}, {"b", b}} {
		checkGrad(t, "concat-"+tc.name, tc.param, func() *Var {
			return lossTape.MeanAll(lossTape.Mul(lossTape.ConcatRows(a, b), mask))
		})
	}
}

func TestSumAllGradient(t *testing.T) {
	rng := xrand.New(15)
	w := NewParam(tensor.Randn(rng, 1, 2, 3))
	checkGrad(t, "sumall", w, func() *Var {
		return lossTape.Scale(lossTape.SumAll(w), 0.5)
	})
}

func TestDropoutDeterministicMask(t *testing.T) {
	x := NewConst(tensor.Full(1, 10, 10))
	a := NewTape().Dropout(x, 0.5, xrand.New(42))
	b := NewTape().Dropout(x, 0.5, xrand.New(42))
	if !tensor.Equal(a.Value, b.Value) {
		t.Fatal("dropout with identical RNG state produced different masks")
	}
}

func TestDropoutZeroProbIsIdentity(t *testing.T) {
	x := NewConst(tensor.Full(3, 2, 2))
	out := NewTape().Dropout(x, 0, xrand.New(1))
	if out != x {
		t.Fatal("Dropout(p=0) should return input unchanged")
	}
}

func TestDropoutScalesSurvivors(t *testing.T) {
	x := NewConst(tensor.Full(1, 100, 100))
	out := NewTape().Dropout(x, 0.25, xrand.New(7))
	for _, v := range out.Value.Data() {
		if v != 0 && math.Abs(v-1/0.75) > 1e-12 {
			t.Fatalf("survivor scaled to %g, want %g", v, 1/0.75)
		}
	}
	mean := out.Value.Mean()
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("dropout mean %g, want ~1 (inverted scaling)", mean)
	}
}

func TestConstDoesNotAccumulate(t *testing.T) {
	x := NewConst(tensor.Full(2, 2, 2))
	tape := NewTape()
	lossTape = tape
	loss := tape.MeanAll(tape.Mul(x, x))
	tape.Backward(loss)
	if x.Grad != nil {
		t.Fatal("const Var accumulated a gradient")
	}
	if loss.requiresGrad {
		t.Fatal("loss over constants should not require grad")
	}
}

func TestGradAccumulatesAcrossBackward(t *testing.T) {
	w := NewParam(tensor.Full(1, 2))
	for i := 0; i < 3; i++ {
		tape := NewTape()
		loss := tape.SumAll(w)
		tape.Backward(loss)
	}
	for _, v := range w.Grad.Data() {
		if v != 3 {
			t.Fatalf("gradient after 3 backwards = %g, want 3 (accumulation)", v)
		}
	}
	w.ZeroGrad()
	for _, v := range w.Grad.Data() {
		if v != 0 {
			t.Fatal("ZeroGrad did not clear gradient")
		}
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar did not panic")
		}
	}()
	w := NewParam(tensor.Full(1, 2, 2))
	tape := NewTape()
	out := tape.Relu(w)
	tape.Backward(out)
}

func TestTapeReset(t *testing.T) {
	w := NewParam(tensor.Full(1, 2))
	tape := NewTape()
	tape.SumAll(w)
	if tape.Len() == 0 {
		t.Fatal("tape recorded nothing")
	}
	tape.Reset()
	if tape.Len() != 0 {
		t.Fatal("Reset did not clear tape")
	}
}

func TestFreezeExcludesFromGraph(t *testing.T) {
	w := NewParam(tensor.Full(1, 2, 2))
	w.SetRequiresGrad(false)
	tape := NewTape()
	out := tape.MatMul(w, w)
	if out.RequiresGrad() {
		t.Fatal("output of frozen-only graph should not require grad")
	}
	if tape.Len() != 0 {
		t.Fatal("frozen ops should not be recorded on tape")
	}
}

func TestTwoLayerNetworkGradient(t *testing.T) {
	// End-to-end: a 2-layer MLP with every layer type chained.
	rng := xrand.New(20)
	w1 := NewParam(tensor.Randn(rng, 0.5, 3, 4))
	b1 := NewParam(tensor.Randn(rng, 0.5, 4))
	w2 := NewParam(tensor.Randn(rng, 0.5, 4, 2))
	b2 := NewParam(tensor.Randn(rng, 0.5, 2))
	x := NewConst(tensor.Randn(rng, 1, 5, 3))
	labels := []int{0, 1, 1, 0, 1}
	forward := func() *Var {
		h := lossTape.Relu(lossTape.AddBias(lossTape.MatMul(x, w1), b1))
		logits := lossTape.AddBias(lossTape.MatMul(h, w2), b2)
		return lossTape.SoftmaxCrossEntropy(logits, labels)
	}
	for _, tc := range []struct {
		name  string
		param *Var
	}{{"w1", w1}, {"b1", b1}, {"w2", w2}, {"b2", b2}} {
		checkGrad(t, "mlp-"+tc.name, tc.param, forward)
	}
}
