package autograd

import (
	"testing"

	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

func TestReshapeVarGradient(t *testing.T) {
	rng := xrand.New(30)
	w := NewParam(tensor.Randn(rng, 1, 2, 6))
	mask := NewConst(tensor.Randn(rng, 1, 3, 4))
	checkGrad(t, "reshape", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(lossTape.ReshapeVar(w, 3, 4), mask))
	})
}

func TestMeanRowsGradient(t *testing.T) {
	rng := xrand.New(31)
	w := NewParam(tensor.Randn(rng, 1, 4, 3))
	mask := NewConst(tensor.Randn(rng, 1, 1, 3))
	checkGrad(t, "meanrows", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(lossTape.MeanRows(w), mask))
	})
}

func TestMeanGroupsGradient(t *testing.T) {
	rng := xrand.New(32)
	w := NewParam(tensor.Randn(rng, 1, 6, 2))
	mask := NewConst(tensor.Randn(rng, 1, 3, 2))
	checkGrad(t, "meangroups", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(lossTape.MeanGroups(w, 3, 2), mask))
	})
}

func TestMeanGroupsValues(t *testing.T) {
	x := NewConst(tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 4, 2))
	out := NewTape().MeanGroups(x, 2, 2)
	want := []float64{2, 3, 20, 30}
	for i, w := range want {
		if out.Value.Data()[i] != w {
			t.Fatalf("MeanGroups[%d] = %g, want %g", i, out.Value.Data()[i], w)
		}
	}
}

func TestRowVarGradient(t *testing.T) {
	rng := xrand.New(33)
	w := NewParam(tensor.Randn(rng, 1, 4, 3))
	checkGrad(t, "rowvar", w, func() *Var {
		return lossTape.MeanAll(lossTape.RowVar(w, 2))
	})
}

func TestStackRowsGradient(t *testing.T) {
	rng := xrand.New(34)
	w := NewParam(tensor.Randn(rng, 1, 3, 4))
	mask := NewConst(tensor.Randn(rng, 1, 3, 4))
	checkGrad(t, "stackrows", w, func() *Var {
		rows := []*Var{
			lossTape.RowVar(w, 2),
			lossTape.RowVar(w, 0),
			lossTape.RowVar(w, 1),
		}
		return lossTape.MeanAll(lossTape.Mul(lossTape.StackRows(rows), mask))
	})
}

func TestTransposeVarGradient(t *testing.T) {
	rng := xrand.New(35)
	w := NewParam(tensor.Randn(rng, 1, 2, 5))
	mask := NewConst(tensor.Randn(rng, 1, 5, 2))
	checkGrad(t, "transpose", w, func() *Var {
		return lossTape.MeanAll(lossTape.Mul(lossTape.TransposeVar(w), mask))
	})
}

func TestStackRowsRejectsBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StackRows with mismatched widths did not panic")
		}
	}()
	tape := NewTape()
	tape.StackRows([]*Var{
		NewConst(tensor.New(1, 3)),
		NewConst(tensor.New(1, 4)),
	})
}
