// Package autograd implements reverse-mode automatic differentiation over
// tensor values.
//
// A Tape records operations in execution order; Backward replays the tape in
// reverse, accumulating gradients into every Var with RequiresGrad set. The
// design mirrors the define-by-run style of PyTorch's autograd, which is the
// training substrate the Flor paper assumes (§5.2.1): model parameters are
// leaf Vars, optimizers mutate them in place between tape runs, and each
// batch builds a fresh tape.
package autograd

import (
	"fmt"
	"math"

	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// Var is a node in the computation graph: a value, an optional gradient, and
// a backward closure that propagates the node's gradient to its inputs.
type Var struct {
	Value        *tensor.Tensor
	Grad         *tensor.Tensor
	requiresGrad bool
	backward     func()
}

// NewParam returns a leaf Var that participates in gradients (a trainable
// model parameter).
func NewParam(v *tensor.Tensor) *Var {
	return &Var{Value: v, requiresGrad: true}
}

// NewConst returns a leaf Var that is excluded from gradient computation
// (inputs, labels, frozen parameters).
func NewConst(v *tensor.Tensor) *Var {
	return &Var{Value: v}
}

// RequiresGrad reports whether gradients flow into this Var.
func (v *Var) RequiresGrad() bool { return v.requiresGrad }

// SetRequiresGrad toggles gradient participation; used to freeze and unfreeze
// parameters for fine-tuning workloads.
func (v *Var) SetRequiresGrad(b bool) { v.requiresGrad = b }

// ZeroGrad clears the accumulated gradient.
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

func (v *Var) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape()...)
	}
	return v.Grad
}

// accumulate adds g into v's gradient if v participates in gradients.
func (v *Var) accumulate(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	tensor.AddInPlace(v.ensureGrad(), g)
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; parallel replay workers each build their own.
type Tape struct {
	nodes []*Var
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards recorded operations so the tape can be reused for the next
// batch without reallocating.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded operations.
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) emit(value *tensor.Tensor, requires bool, backward func()) *Var {
	v := &Var{Value: value, requiresGrad: requires}
	if requires {
		v.backward = backward
		t.nodes = append(t.nodes, v)
	}
	return v
}

// Backward seeds root's gradient with 1 and propagates gradients through the
// tape in reverse execution order. Root must be a single-element Var produced
// by this tape.
func (t *Tape) Backward(root *Var) {
	if root.Value.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward root must be scalar, has %d elements", root.Value.Len()))
	}
	root.ensureGrad().Fill(1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Var) *Var {
	out := t.emit(tensor.Add(a.Value, b.Value), a.requiresGrad || b.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			a.accumulate(out.Grad)
			b.accumulate(out.Grad)
		}
	}
	return out
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Var) *Var {
	out := t.emit(tensor.Sub(a.Value, b.Value), a.requiresGrad || b.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			a.accumulate(out.Grad)
			b.accumulate(tensor.Scale(out.Grad, -1))
		}
	}
	return out
}

// Mul returns the element-wise product a * b.
func (t *Tape) Mul(a, b *Var) *Var {
	out := t.emit(tensor.Mul(a.Value, b.Value), a.requiresGrad || b.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			a.accumulate(tensor.Mul(out.Grad, b.Value))
			b.accumulate(tensor.Mul(out.Grad, a.Value))
		}
	}
	return out
}

// Scale returns a * s for a constant scalar s.
func (t *Tape) Scale(a *Var, s float64) *Var {
	out := t.emit(tensor.Scale(a.Value, s), a.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			a.accumulate(tensor.Scale(out.Grad, s))
		}
	}
	return out
}

// MatMul returns a (m×k) times b (k×n).
func (t *Tape) MatMul(a, b *Var) *Var {
	out := t.emit(tensor.MatMul(a.Value, b.Value), a.requiresGrad || b.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.accumulate(tensor.MatMulTransB(out.Grad, b.Value))
			}
			if b.requiresGrad {
				b.accumulate(tensor.MatMulTransA(a.Value, out.Grad))
			}
		}
	}
	return out
}

// AddBias adds a length-n bias row vector to every row of a (m×n) input.
func (t *Tape) AddBias(x, bias *Var) *Var {
	m, n := x.Value.Dim(0), x.Value.Dim(1)
	if bias.Value.Len() != n {
		panic(fmt.Sprintf("autograd: AddBias bias length %d != row width %d", bias.Value.Len(), n))
	}
	val := tensor.New(m, n)
	xd, bd, vd := x.Value.Data(), bias.Value.Data(), val.Data()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			vd[i*n+j] = xd[i*n+j] + bd[j]
		}
	}
	out := t.emit(val, x.requiresGrad || bias.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			if x.requiresGrad {
				x.accumulate(out.Grad)
			}
			if bias.requiresGrad {
				g := tensor.New(n)
				gd, od := g.Data(), out.Grad.Data()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						gd[j] += od[i*n+j]
					}
				}
				bias.accumulate(g.Reshape(bias.Value.Shape()...))
			}
		}
	}
	return out
}

// Relu returns max(0, x).
func (t *Tape) Relu(x *Var) *Var {
	out := t.emit(tensor.Relu(x.Value), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(x.Value.Shape()...)
			gd, od, xd := g.Data(), out.Grad.Data(), x.Value.Data()
			for i := range gd {
				if xd[i] > 0 {
					gd[i] = od[i]
				}
			}
			x.accumulate(g)
		}
	}
	return out
}

// Tanh returns tanh(x).
func (t *Tape) Tanh(x *Var) *Var {
	val := tensor.Tanh(x.Value)
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(x.Value.Shape()...)
			gd, od, vd := g.Data(), out.Grad.Data(), val.Data()
			for i := range gd {
				g2 := vd[i]
				gd[i] = od[i] * (1 - g2*g2)
			}
			x.accumulate(g)
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^-x).
func (t *Tape) Sigmoid(x *Var) *Var {
	val := tensor.Sigmoid(x.Value)
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(x.Value.Shape()...)
			gd, od, vd := g.Data(), out.Grad.Data(), val.Data()
			for i := range gd {
				gd[i] = od[i] * vd[i] * (1 - vd[i])
			}
			x.accumulate(g)
		}
	}
	return out
}

// Gelu returns the tanh-approximated GELU.
func (t *Tape) Gelu(x *Var) *Var {
	out := t.emit(tensor.Gelu(x.Value), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			const c = 0.7978845608028654
			g := tensor.New(x.Value.Shape()...)
			gd, od, xd := g.Data(), out.Grad.Data(), x.Value.Data()
			for i := range gd {
				v := xd[i]
				inner := c * (v + 0.044715*v*v*v)
				th := math.Tanh(inner)
				dInner := c * (1 + 3*0.044715*v*v)
				gd[i] = od[i] * (0.5*(1+th) + 0.5*v*(1-th*th)*dInner)
			}
			x.accumulate(g)
		}
	}
	return out
}

// Dropout zeroes each element with probability p, scaling survivors by
// 1/(1-p). Randomness is drawn from rng so that record and replay consume
// identical masks.
func (t *Tape) Dropout(x *Var, p float64, rng *xrand.RNG) *Var {
	if p <= 0 {
		return x
	}
	if p >= 1 {
		panic(fmt.Sprintf("autograd: Dropout probability %g >= 1", p))
	}
	mask := tensor.New(x.Value.Shape()...)
	md := mask.Data()
	keep := 1 / (1 - p)
	for i := range md {
		if rng.Float64() >= p {
			md[i] = keep
		}
	}
	out := t.emit(tensor.Mul(x.Value, mask), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			x.accumulate(tensor.Mul(out.Grad, mask))
		}
	}
	return out
}

// Lookup gathers rows of an embedding table: table is (V×d), ids selects m
// rows, producing (m×d). Backward scatters gradients back into the table.
func (t *Tape) Lookup(table *Var, ids []int) *Var {
	v, d := table.Value.Dim(0), table.Value.Dim(1)
	val := tensor.New(len(ids), d)
	td, vd := table.Value.Data(), val.Data()
	for i, id := range ids {
		if id < 0 || id >= v {
			panic(fmt.Sprintf("autograd: Lookup id %d out of vocabulary %d", id, v))
		}
		copy(vd[i*d:(i+1)*d], td[id*d:(id+1)*d])
	}
	out := t.emit(val, table.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.New(v, d)
			gd, od := g.Data(), out.Grad.Data()
			for i, id := range ids {
				for j := 0; j < d; j++ {
					gd[id*d+j] += od[i*d+j]
				}
			}
			table.accumulate(g)
		}
	}
	return out
}

// MeanAll returns the scalar mean of all elements.
func (t *Tape) MeanAll(x *Var) *Var {
	out := t.emit(tensor.Scalar(x.Value.Mean()), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			scale := out.Grad.Item() / float64(x.Value.Len())
			g := tensor.Full(scale, x.Value.Shape()...)
			x.accumulate(g)
		}
	}
	return out
}

// SumAll returns the scalar sum of all elements.
func (t *Tape) SumAll(x *Var) *Var {
	out := t.emit(tensor.Scalar(x.Value.Sum()), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			g := tensor.Full(out.Grad.Item(), x.Value.Shape()...)
			x.accumulate(g)
		}
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy between row-wise softmax
// of logits (m×k) and integer labels. The softmax and loss are fused so the
// backward pass is the numerically stable (softmax - onehot)/m.
func (t *Tape) SoftmaxCrossEntropy(logits *Var, labels []int) *Var {
	m, k := logits.Value.Dim(0), logits.Value.Dim(1)
	if len(labels) != m {
		panic(fmt.Sprintf("autograd: SoftmaxCrossEntropy %d labels for %d rows", len(labels), m))
	}
	probs := tensor.SoftmaxRows(logits.Value)
	loss := 0.0
	pd := probs.Data()
	for i, lab := range labels {
		if lab < 0 || lab >= k {
			panic(fmt.Sprintf("autograd: label %d out of range %d", lab, k))
		}
		p := pd[i*k+lab]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	loss /= float64(m)
	out := t.emit(tensor.Scalar(loss), logits.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			scale := out.Grad.Item() / float64(m)
			g := tensor.New(m, k)
			gd := g.Data()
			for i := 0; i < m; i++ {
				for j := 0; j < k; j++ {
					gd[i*k+j] = pd[i*k+j] * scale
				}
				gd[i*k+labels[i]] -= scale
			}
			logits.accumulate(g)
		}
	}
	return out
}

// LayerNorm normalizes each row of x (m×n) to zero mean and unit variance,
// then applies a learned per-column gain and bias.
func (t *Tape) LayerNorm(x, gain, bias *Var, eps float64) *Var {
	m, n := x.Value.Dim(0), x.Value.Dim(1)
	val := tensor.New(m, n)
	norm := tensor.New(m, n) // normalized pre-gain values, kept for backward
	invStd := make([]float64, m)
	xd, vd, nd := x.Value.Data(), val.Data(), norm.Data()
	gd, bd := gain.Value.Data(), bias.Value.Data()
	for i := 0; i < m; i++ {
		row := xd[i*n : (i+1)*n]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(n)
		is := 1 / math.Sqrt(variance+eps)
		invStd[i] = is
		for j, v := range row {
			h := (v - mean) * is
			nd[i*n+j] = h
			vd[i*n+j] = h*gd[j] + bd[j]
		}
	}
	out := t.emit(val, x.requiresGrad || gain.requiresGrad || bias.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			od := out.Grad.Data()
			if gain.requiresGrad {
				gg := tensor.New(n)
				ggd := gg.Data()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						ggd[j] += od[i*n+j] * nd[i*n+j]
					}
				}
				gain.accumulate(gg.Reshape(gain.Value.Shape()...))
			}
			if bias.requiresGrad {
				bg := tensor.New(n)
				bgd := bg.Data()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						bgd[j] += od[i*n+j]
					}
				}
				bias.accumulate(bg.Reshape(bias.Value.Shape()...))
			}
			if x.requiresGrad {
				xg := tensor.New(m, n)
				xgd := xg.Data()
				for i := 0; i < m; i++ {
					// dh = upstream * gain for this row
					var sumDh, sumDhH float64
					dh := make([]float64, n)
					for j := 0; j < n; j++ {
						dh[j] = od[i*n+j] * gd[j]
						sumDh += dh[j]
						sumDhH += dh[j] * nd[i*n+j]
					}
					is := invStd[i]
					for j := 0; j < n; j++ {
						h := nd[i*n+j]
						xgd[i*n+j] = is * (dh[j] - sumDh/float64(n) - h*sumDhH/float64(n))
					}
				}
				x.accumulate(xg)
			}
		}
	}
	return out
}

// SoftmaxRows applies a row-wise softmax with full Jacobian backward; used by
// attention layers.
func (t *Tape) SoftmaxRows(x *Var) *Var {
	val := tensor.SoftmaxRows(x.Value)
	out := t.emit(val, x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			m, n := val.Dim(0), val.Dim(1)
			g := tensor.New(m, n)
			gd, od, sd := g.Data(), out.Grad.Data(), val.Data()
			for i := 0; i < m; i++ {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += od[i*n+j] * sd[i*n+j]
				}
				for j := 0; j < n; j++ {
					gd[i*n+j] = sd[i*n+j] * (od[i*n+j] - dot)
				}
			}
			x.accumulate(g)
		}
	}
	return out
}

// Conv1D convolves each input row with each kernel row (valid mode); see
// tensor.Conv1D for the output layout.
func (t *Tape) Conv1D(input, kernels *Var) *Var {
	val := tensor.Conv1D(input.Value, kernels.Value)
	out := t.emit(val, input.requiresGrad || kernels.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			batch, inLen := input.Value.Dim(0), input.Value.Dim(1)
			nk, klen := kernels.Value.Dim(0), kernels.Value.Dim(1)
			outLen := inLen - klen + 1
			od := out.Grad.Data()
			if kernels.requiresGrad {
				kg := tensor.New(nk, klen)
				kgd, ind := kg.Data(), input.Value.Data()
				for b := 0; b < batch; b++ {
					in := ind[b*inLen : (b+1)*inLen]
					for kidx := 0; kidx < nk; kidx++ {
						orow := od[(b*nk+kidx)*outLen : (b*nk+kidx+1)*outLen]
						for j := 0; j < klen; j++ {
							sum := 0.0
							for o := 0; o < outLen; o++ {
								sum += orow[o] * in[o+j]
							}
							kgd[kidx*klen+j] += sum
						}
					}
				}
				kernels.accumulate(kg)
			}
			if input.requiresGrad {
				ig := tensor.New(batch, inLen)
				igd, kd := ig.Data(), kernels.Value.Data()
				for b := 0; b < batch; b++ {
					irow := igd[b*inLen : (b+1)*inLen]
					for kidx := 0; kidx < nk; kidx++ {
						ker := kd[kidx*klen : (kidx+1)*klen]
						orow := od[(b*nk+kidx)*outLen : (b*nk+kidx+1)*outLen]
						for o := 0; o < outLen; o++ {
							g := orow[o]
							if g == 0 {
								continue
							}
							for j := 0; j < klen; j++ {
								irow[o+j] += g * ker[j]
							}
						}
					}
				}
				input.accumulate(ig)
			}
		}
	}
	return out
}

// TransposeVar returns the transpose of a 2-D Var.
func (t *Tape) TransposeVar(x *Var) *Var {
	out := t.emit(tensor.Transpose(x.Value), x.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			x.accumulate(tensor.Transpose(out.Grad))
		}
	}
	return out
}

// ConcatRows concatenates 2-D Vars along columns: (m×n1), (m×n2) → (m×(n1+n2)).
func (t *Tape) ConcatRows(a, b *Var) *Var {
	m := a.Value.Dim(0)
	if b.Value.Dim(0) != m {
		panic(fmt.Sprintf("autograd: ConcatRows row mismatch %v vs %v", a.Value.Shape(), b.Value.Shape()))
	}
	n1, n2 := a.Value.Dim(1), b.Value.Dim(1)
	val := tensor.New(m, n1+n2)
	vd, ad, bd := val.Data(), a.Value.Data(), b.Value.Data()
	for i := 0; i < m; i++ {
		copy(vd[i*(n1+n2):i*(n1+n2)+n1], ad[i*n1:(i+1)*n1])
		copy(vd[i*(n1+n2)+n1:(i+1)*(n1+n2)], bd[i*n2:(i+1)*n2])
	}
	out := t.emit(val, a.requiresGrad || b.requiresGrad, nil)
	if out.requiresGrad {
		out.backward = func() {
			od := out.Grad.Data()
			if a.requiresGrad {
				g := tensor.New(m, n1)
				gd := g.Data()
				for i := 0; i < m; i++ {
					copy(gd[i*n1:(i+1)*n1], od[i*(n1+n2):i*(n1+n2)+n1])
				}
				a.accumulate(g)
			}
			if b.requiresGrad {
				g := tensor.New(m, n2)
				gd := g.Data()
				for i := 0; i < m; i++ {
					copy(gd[i*n2:(i+1)*n2], od[i*(n1+n2)+n1:(i+1)*(n1+n2)])
				}
				b.accumulate(g)
			}
		}
	}
	return out
}
