package store

import "sync/atomic"

// Fetch tiers, in the order the fetch path prefers them. Every chunk frame a
// restore touches is served by exactly one tier, so per-tier byte counts sum
// to the restore's encoded volume — the invariant the tier-attribution spans
// and the flor_store_fetch_* metrics rely on.
const (
	tierMmap         = iota // frame aliased out of the pack's memory mapping
	tierScatter             // vectored preadv straight into the destination buffer
	tierRanged              // private ranged read (large frames, coalesced spans)
	tierCache               // payload-cache hit: chunks never read at all
	tierRemote              // ranged GET against a remote object store
	tierCacheTier           // local chunk-cache hit in front of a remote store
	tierSingleflight        // bytes shared from another query's in-flight GET
	numTiers
)

// tierNames are the metric label values, indexed by tier.
var tierNames = [numTiers]string{"mmap", "scatter", "ranged", "cache", "remote", "cache-tier", "singleflight"}

// FetchStats accumulates per-tier fetch accounting for one observer — a
// query trace, a worker — across concurrent shard fetches. A nil *FetchStats
// no-ops, so the fetch path threads an optional observer without branching
// at call sites. Bytes are encoded pack bytes except for the cache tier,
// which counts the logical bytes a payload-cache hit avoided reading.
type FetchStats struct {
	bytes  [numTiers]atomic.Int64
	frames [numTiers]atomic.Int64
}

// note records frames frames totalling b bytes served by tier.
func (f *FetchStats) note(tier int, b, frames int64) {
	if f == nil {
		return
	}
	f.bytes[tier].Add(b)
	f.frames[tier].Add(frames)
}

// Snapshot returns the current per-tier totals (zero for nil).
func (f *FetchStats) Snapshot() FetchSnapshot {
	var s FetchSnapshot
	if f == nil {
		return s
	}
	s.MmapBytes, s.MmapFrames = f.bytes[tierMmap].Load(), f.frames[tierMmap].Load()
	s.ScatterBytes, s.ScatterFrames = f.bytes[tierScatter].Load(), f.frames[tierScatter].Load()
	s.RangedBytes, s.RangedFrames = f.bytes[tierRanged].Load(), f.frames[tierRanged].Load()
	s.CacheBytes, s.CacheFrames = f.bytes[tierCache].Load(), f.frames[tierCache].Load()
	s.RemoteBytes, s.RemoteFrames = f.bytes[tierRemote].Load(), f.frames[tierRemote].Load()
	s.CacheTierBytes, s.CacheTierFrames = f.bytes[tierCacheTier].Load(), f.frames[tierCacheTier].Load()
	s.SingleflightBytes, s.SingleflightFrames = f.bytes[tierSingleflight].Load(), f.frames[tierSingleflight].Load()
	return s
}

// FetchSnapshot is a point-in-time, plain-int copy of FetchStats — the form
// that travels in spans, worker reports, and query-cost summaries.
type FetchSnapshot struct {
	MmapBytes     int64 `json:"mmap_bytes"`
	MmapFrames    int64 `json:"mmap_frames"`
	ScatterBytes  int64 `json:"scatter_bytes"`
	ScatterFrames int64 `json:"scatter_frames"`
	RangedBytes   int64 `json:"ranged_bytes"`
	RangedFrames  int64 `json:"ranged_frames"`
	CacheBytes    int64 `json:"cache_bytes"`
	CacheFrames   int64 `json:"cache_frames"`
	// Remote, cache-tier, and singleflight attribution applies to
	// remote-backed stores only: remote counts encoded bytes that had to
	// travel a ranged GET this reader initiated, cache-tier counts encoded
	// bytes a local chunk-cache hit kept off the network, and singleflight
	// counts encoded bytes satisfied by waiting on another reader's
	// concurrent GET for the same block (one fetch fed several waiters).
	RemoteBytes        int64 `json:"remote_bytes"`
	RemoteFrames       int64 `json:"remote_frames"`
	CacheTierBytes     int64 `json:"cache_tier_bytes"`
	CacheTierFrames    int64 `json:"cache_tier_frames"`
	SingleflightBytes  int64 `json:"singleflight_bytes"`
	SingleflightFrames int64 `json:"singleflight_frames"`
}

// Sub returns the delta s - prev (both from the same FetchStats).
func (s FetchSnapshot) Sub(prev FetchSnapshot) FetchSnapshot {
	return FetchSnapshot{
		MmapBytes: s.MmapBytes - prev.MmapBytes, MmapFrames: s.MmapFrames - prev.MmapFrames,
		ScatterBytes: s.ScatterBytes - prev.ScatterBytes, ScatterFrames: s.ScatterFrames - prev.ScatterFrames,
		RangedBytes: s.RangedBytes - prev.RangedBytes, RangedFrames: s.RangedFrames - prev.RangedFrames,
		CacheBytes: s.CacheBytes - prev.CacheBytes, CacheFrames: s.CacheFrames - prev.CacheFrames,
		RemoteBytes: s.RemoteBytes - prev.RemoteBytes, RemoteFrames: s.RemoteFrames - prev.RemoteFrames,
		CacheTierBytes: s.CacheTierBytes - prev.CacheTierBytes, CacheTierFrames: s.CacheTierFrames - prev.CacheTierFrames,
		SingleflightBytes: s.SingleflightBytes - prev.SingleflightBytes, SingleflightFrames: s.SingleflightFrames - prev.SingleflightFrames,
	}
}

// Add returns the element-wise sum s + o.
func (s FetchSnapshot) Add(o FetchSnapshot) FetchSnapshot {
	return FetchSnapshot{
		MmapBytes: s.MmapBytes + o.MmapBytes, MmapFrames: s.MmapFrames + o.MmapFrames,
		ScatterBytes: s.ScatterBytes + o.ScatterBytes, ScatterFrames: s.ScatterFrames + o.ScatterFrames,
		RangedBytes: s.RangedBytes + o.RangedBytes, RangedFrames: s.RangedFrames + o.RangedFrames,
		CacheBytes: s.CacheBytes + o.CacheBytes, CacheFrames: s.CacheFrames + o.CacheFrames,
		RemoteBytes: s.RemoteBytes + o.RemoteBytes, RemoteFrames: s.RemoteFrames + o.RemoteFrames,
		CacheTierBytes: s.CacheTierBytes + o.CacheTierBytes, CacheTierFrames: s.CacheTierFrames + o.CacheTierFrames,
		SingleflightBytes: s.SingleflightBytes + o.SingleflightBytes, SingleflightFrames: s.SingleflightFrames + o.SingleflightFrames,
	}
}

// TotalBytes returns the snapshot's byte total across all tiers.
func (s FetchSnapshot) TotalBytes() int64 {
	return s.MmapBytes + s.ScatterBytes + s.RangedBytes + s.CacheBytes +
		s.RemoteBytes + s.CacheTierBytes + s.SingleflightBytes
}

// TotalFrames returns the snapshot's frame total across all tiers.
func (s FetchSnapshot) TotalFrames() int64 {
	return s.MmapFrames + s.ScatterFrames + s.RangedFrames + s.CacheFrames +
		s.RemoteFrames + s.CacheTierFrames + s.SingleflightFrames
}
