package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t)
	key := Key{LoopID: "train", Exec: 3}
	payload := []byte("epoch three side effects")
	if _, err := s.Put(key, payload, 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := openTemp(t)
	if _, err := s.Get(Key{LoopID: "train", Exec: 0}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
	if s.Has(Key{LoopID: "train", Exec: 0}) {
		t.Fatal("Has on empty store")
	}
}

func TestLatestWinsForSameKey(t *testing.T) {
	s := openTemp(t)
	key := Key{LoopID: "train", Exec: 1}
	s.Put(key, []byte("old"), 0, 0, 0)
	s.Put(key, []byte("new"), 0, 0, 0)
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("got %q, want latest", got)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := Key{LoopID: "train", Exec: i}
		if _, err := s.Put(key, []byte(fmt.Sprintf("payload-%d", i)), 1, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := s2.Get(Key{LoopID: "train", Exec: i})
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("exec %d payload = %q", i, got)
		}
	}
	if len(s2.Metas()) != 5 {
		t.Fatalf("reopened store has %d metas, want 5", len(s2.Metas()))
	}
}

func TestMetaTimingsPersist(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key{LoopID: "train", Exec: 0}
	s.Put(key, []byte("x"), 111, 222, 333)
	s2, _ := Open(dir)
	m, ok := s2.Lookup(key)
	if !ok {
		t.Fatal("lookup failed after reopen")
	}
	if m.SnapNs != 111 || m.ComputNs != 333 {
		t.Fatalf("timings lost: %+v", m)
	}
	// MaterNs = snapNs + serNs + measured write time, so it must be at least
	// the sum of the supplied components.
	if m.MaterNs < 111+222 {
		t.Fatalf("MaterNs = %d, want >= 333", m.MaterNs)
	}
	if m.Size != 1 {
		t.Fatalf("size = %d, want 1", m.Size)
	}
}

func TestTornManifestTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(Key{LoopID: "train", Exec: 0}, []byte("good"), 0, 0, 0)
	s.Put(Key{LoopID: "train", Exec: 1}, []byte("also good"), 0, 0, 0)
	// Simulate a crash mid-append: garbage at the manifest tail.
	f, err := os.OpenFile(filepath.Join(dir, "MANIFEST"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x07, 0xde, 0xad})
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(Key{LoopID: "train", Exec: 0}) || !s2.Has(Key{LoopID: "train", Exec: 1}) {
		t.Fatal("good records lost after torn tail")
	}
	// The store must remain writable after tail truncation.
	if _, err := s2.Put(Key{LoopID: "train", Exec: 2}, []byte("post-crash"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	s3, _ := Open(dir)
	if !s3.Has(Key{LoopID: "train", Exec: 2}) {
		t.Fatal("post-crash write lost")
	}
}

func TestCrashAtAnyManifestPrefixIsConsistent(t *testing.T) {
	// Property: truncating the manifest at any byte offset yields a store
	// that opens cleanly and serves only fully committed checkpoints.
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 4; i++ {
		s.Put(Key{LoopID: "L", Exec: i}, bytes.Repeat([]byte{byte(i)}, 50), 0, 0, 0)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(manifest); cut += 7 {
		cutDir := t.TempDir()
		// Copy segments and the truncated manifest.
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if e.Name() == "MANIFEST" {
				continue
			}
			data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
			os.WriteFile(filepath.Join(cutDir, e.Name()), data, 0o644)
		}
		os.WriteFile(filepath.Join(cutDir, "MANIFEST"), manifest[:cut], 0o644)
		sc, err := Open(cutDir)
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		for _, m := range sc.Metas() {
			got, err := sc.Get(m.Key)
			if err != nil {
				t.Fatalf("cut %d: indexed checkpoint unreadable: %v", cut, err)
			}
			want := bytes.Repeat([]byte{byte(m.Key.Exec)}, 50)
			if !bytes.Equal(got, want) {
				t.Fatalf("cut %d: wrong payload for %s", cut, m.Key)
			}
		}
	}
}

func TestCorruptSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key{LoopID: "train", Exec: 0}
	m, _ := s.Put(key, []byte("precious state"), 0, 0, 0)
	// Flip a byte in the segment payload region.
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%08d.bin", m.Seq))
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if _, err := s.Get(key); err == nil {
		t.Fatal("corrupt segment read succeeded")
	}
}

func TestMissingSegmentDroppedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	m, _ := s.Put(Key{LoopID: "train", Exec: 0}, []byte("x"), 0, 0, 0)
	s.Put(Key{LoopID: "train", Exec: 1}, []byte("y"), 0, 0, 0)
	os.Remove(filepath.Join(dir, fmt.Sprintf("ckpt-%08d.bin", m.Seq)))
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Has(Key{LoopID: "train", Exec: 0}) {
		t.Fatal("checkpoint with missing segment still indexed")
	}
	if !s2.Has(Key{LoopID: "train", Exec: 1}) {
		t.Fatal("intact checkpoint lost")
	}
}

func TestExecsForSorted(t *testing.T) {
	s := openTemp(t)
	for _, e := range []int{5, 1, 3} {
		s.Put(Key{LoopID: "train", Exec: e}, []byte("x"), 0, 0, 0)
	}
	s.Put(Key{LoopID: "other", Exec: 9}, []byte("x"), 0, 0, 0)
	got := s.ExecsFor("train")
	want := []int{1, 3, 5}
	if len(got) != 3 {
		t.Fatalf("ExecsFor = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExecsFor = %v, want %v", got, want)
		}
	}
}

func TestSpoolProducesCompressedSiblings(t *testing.T) {
	s := openTemp(t)
	payload := bytes.Repeat([]byte("weights "), 1000)
	m, _ := s.Put(Key{LoopID: "train", Exec: 0}, payload, 0, 0, 0)
	total, err := s.Spool()
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || total >= int64(len(payload)) {
		t.Fatalf("spooled size %d implausible for compressible payload %d", total, len(payload))
	}
	gzPath := filepath.Join(s.Dir(), fmt.Sprintf("ckpt-%08d.bin.gz", m.Seq))
	if _, err := os.Stat(gzPath); err != nil {
		t.Fatalf("spooled file missing: %v", err)
	}
	// In format v2 the total also covers the shared CHUNKS pack, so the
	// per-checkpoint GzSize (directory only) is a strict component of it.
	mm, _ := s.Lookup(Key{LoopID: "train", Exec: 0})
	if mm.GzSize <= 0 || mm.GzSize > total {
		t.Fatalf("GzSize %d implausible against spooled total %d", mm.GzSize, total)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "CHUNKS.gz")); err != nil {
		t.Fatalf("spooled pack missing: %v", err)
	}
}

func TestTotalSize(t *testing.T) {
	s := openTemp(t)
	s.Put(Key{LoopID: "a", Exec: 0}, make([]byte, 100), 0, 0, 0)
	s.Put(Key{LoopID: "b", Exec: 0}, make([]byte, 50), 0, 0, 0)
	if got := s.TotalSize(); got != 150 {
		t.Fatalf("TotalSize = %d, want 150", got)
	}
}

func TestGCRemovesSupersededSegments(t *testing.T) {
	s := openTemp(t)
	key := Key{LoopID: "train", Exec: 0}
	s.Put(key, []byte("v1"), 0, 0, 0)
	s.Put(key, []byte("v2"), 0, 0, 0)
	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d segments, want 1", removed)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != "v2" {
		t.Fatalf("latest checkpoint lost after GC: %q, %v", got, err)
	}
	if len(s.Metas()) != 1 {
		t.Fatalf("metas after GC = %d, want 1", len(s.Metas()))
	}
}

func TestQuickPutGetAnyPayload(t *testing.T) {
	s := openTemp(t)
	exec := 0
	f := func(payload []byte) bool {
		exec++
		key := Key{LoopID: "q", Exec: exec}
		if _, err := s.Put(key, payload, 0, 0, 0); err != nil {
			return false
		}
		got, err := s.Get(key)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
