package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/ckptfmt"
)

// testPayload builds n bytes of deterministic, incompressible data.
func testPayload(n int, seed uint64) []byte {
	b := make([]byte, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range b {
		x = x*2862933555777941757 + 3037000493
		b[i] = byte(x >> 56)
	}
	return b
}

// familySections builds a fine-tuning-family checkpoint: a large shared
// "backbone" (identical across runs) plus a small per-run "head".
func familySections(backboneSeed, headSeed uint64, epoch int) []Section {
	head := testPayload(4<<10, headSeed)
	head[0] = byte(epoch) // mutate per epoch
	return []Section{
		{Name: "backbone", Data: testPayload(1<<20, backboneSeed)},
		{Name: "head", Data: head},
	}
}

func openPooled(t *testing.T, dir, pool string) *Store {
	t.Helper()
	s, err := OpenWith(dir, Options{Pool: pool})
	if err != nil {
		t.Fatalf("open pooled %s: %v", dir, err)
	}
	return s
}

func TestPooledRoundTripAndReopen(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	runA := filepath.Join(base, "run-a")
	runB := filepath.Join(base, "run-b")

	a := openPooled(t, runA, pool)
	b := openPooled(t, runB, pool)
	for e := 0; e < 3; e++ {
		if _, err := a.PutSections(Key{LoopID: "train", Exec: e}, familySections(1, 100, e), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := b.PutSections(Key{LoopID: "train", Exec: e}, familySections(1, 200, e), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	// The shared backbone is stored once pool-wide: run B's checkpoints
	// added only head chunks.
	ps, ok := b.PoolStats()
	if !ok {
		t.Fatal("PoolStats not ok on pooled store")
	}
	backbone := int64(1 << 20)
	if ps.StoredRawBytes >= 2*backbone {
		t.Fatalf("pool stores %d raw bytes; want < 2 backbones (%d) — cross-run dedup broken", ps.StoredRawBytes, 2*backbone)
	}
	if b.Dedup().StoredRawBytes >= backbone {
		t.Fatalf("run B stored %d raw bytes; want < one backbone (dedup against sibling run A)", b.Dedup().StoredRawBytes)
	}

	// Layout and pool reference are detectable without opening.
	l, err := DetectLayout(runA)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Pooled || l.String() != fmt.Sprintf("v2-pooled/%d", DefaultShardFanout) {
		t.Fatalf("layout = %s (pooled=%v)", l, l.Pooled)
	}
	root, ok, err := PoolRef(runA)
	if err != nil || !ok {
		t.Fatalf("PoolRef: %v ok=%v", err, ok)
	}
	want, _ := resolvePoolRoot(pool)
	if root != want {
		t.Fatalf("PoolRef = %q, want %q", root, want)
	}

	// Reopen from disk in a "fresh process" (registry reset): the pool
	// INDEX and the runs' manifests must reconstruct everything, flag-free.
	resetPoolRegistry()
	for _, dir := range []string{runA, runB} {
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen %s: %v", dir, err)
		}
		for e := 0; e < 3; e++ {
			secs, ok, err := s.GetSections(Key{LoopID: "train", Exec: e}, nil)
			if err != nil || !ok {
				t.Fatalf("%s exec %d: ok=%v err=%v", dir, e, ok, err)
			}
			wantSeed := uint64(100)
			if dir == runB {
				wantSeed = 200
			}
			want := familySections(1, wantSeed, e)
			if len(secs) != len(want) {
				t.Fatalf("%s exec %d: %d sections", dir, e, len(secs))
			}
			for i := range secs {
				if !bytes.Equal(secs[i].Data, want[i].Data) {
					t.Fatalf("%s exec %d section %q: payload mismatch", dir, e, secs[i].Name)
				}
			}
		}
	}
}

func TestPooledReadOnlyOpen(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	run := filepath.Join(base, "run")
	s := openPooled(t, run, pool)
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, familySections(7, 8, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	resetPoolRegistry()
	ro, err := OpenReadOnly(run)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.GetSections(Key{LoopID: "train", Exec: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.PutSections(Key{LoopID: "train", Exec: 1}, familySections(7, 8, 1), 0, 0, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on read-only pooled store: %v", err)
	}
	if _, err := ro.Spool(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("spool on read-only pooled store: %v", err)
	}

	// A writable sibling can still attach while the read-only open is live
	// (the in-process pool upgrades to writable).
	sib := openPooled(t, filepath.Join(base, "run2"), pool)
	if _, err := sib.PutSections(Key{LoopID: "train", Exec: 0}, familySections(7, 9, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPooledOpenRefusals(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")

	// A recorded private-pack run cannot be relocated into a pool.
	private := filepath.Join(base, "private")
	s, err := Open(private)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, familySections(1, 2, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith(private, Options{Pool: pool}); err == nil {
		t.Fatal("attaching a recorded private run to a pool must be refused")
	}

	// Pool options compose with nothing that moves packs elsewhere.
	if _, err := OpenWith(filepath.Join(base, "x1"), Options{Pool: pool, ShardDirs: []string{filepath.Join(base, "extra")}}); err == nil {
		t.Fatal("Pool+ShardDirs must be refused")
	}
	if _, err := OpenWith(filepath.Join(base, "x2"), Options{Pool: pool, Format: FormatV1}); err == nil {
		t.Fatal("v1 cannot attach to a pool")
	}

	// Fanout conflicts with an existing pool are refused.
	if _, err := OpenWith(filepath.Join(base, "a"), Options{Pool: pool, ShardFanout: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith(filepath.Join(base, "b"), Options{Pool: pool, ShardFanout: 8}); err == nil {
		t.Fatal("conflicting pool fanout must be refused")
	}

	// A recorded pooled run cannot be repointed to a different pool, and a
	// pinned open must match the recorded attachment exactly.
	pooled := filepath.Join(base, "pooled")
	ps := openPooled(t, pooled, pool)
	if _, err := ps.PutSections(Key{LoopID: "train", Exec: 0}, familySections(1, 3, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(base, "POOL2")
	if _, err := OpenWith(filepath.Join(base, "c"), Options{Pool: other}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith(pooled, Options{Pool: other}); err == nil {
		t.Fatal("repointing a pooled run to another pool must be refused")
	}
	if _, err := OpenWith(pooled, Options{ReadOnly: true, PinPool: true}); err == nil {
		t.Fatal("pinning 'not pooled' onto a pooled run must be refused")
	}
	if _, err := OpenWith(pooled, Options{ReadOnly: true, Pool: pool, PinPool: true}); err != nil {
		t.Fatalf("pinning the recorded pool must succeed: %v", err)
	}
	if _, err := OpenWith(private, Options{ReadOnly: true, PinPool: true}); err != nil {
		t.Fatalf("pinning 'not pooled' onto a private run must succeed: %v", err)
	}
}

// TestPoolConcurrentSiblingRecordReplay is the pool-concurrency race test:
// several sibling runs record into one pool while other goroutines replay
// an already-committed sibling — the CI -race lane drives it.
func TestPoolConcurrentSiblingRecordReplay(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")

	seed := openPooled(t, filepath.Join(base, "run-seed"), pool)
	for e := 0; e < 4; e++ {
		if _, err := seed.PutSections(Key{LoopID: "train", Exec: e}, familySections(42, 1, e), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	const writers, readers, epochs = 3, 3, 4
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := OpenWith(filepath.Join(base, fmt.Sprintf("run-%d", w)), Options{Pool: pool})
			if err != nil {
				errs <- err
				return
			}
			for e := 0; e < epochs; e++ {
				if _, err := st.PutSections(Key{LoopID: "train", Exec: e}, familySections(42, uint64(10+w), e), 0, 0, 0); err != nil {
					errs <- err
					return
				}
			}
			if _, err := st.Spool(); err != nil {
				errs <- err
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ro, err := OpenReadOnly(filepath.Join(base, "run-seed"))
			if err != nil {
				errs <- err
				return
			}
			for pass := 0; pass < 3; pass++ {
				for e := 0; e < 4; e++ {
					secs, ok, err := ro.GetSections(Key{LoopID: "train", Exec: e}, nil)
					if err != nil || !ok {
						errs <- fmt.Errorf("reader exec %d: ok=%v err=%v", e, ok, err)
						return
					}
					want := familySections(42, 1, e)
					for i := range secs {
						if !bytes.Equal(secs[i].Data, want[i].Data) {
							errs <- fmt.Errorf("reader exec %d: section %q mismatch", e, secs[i].Name)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All writers' identical backbones deduplicated to one copy.
	ps, _ := PoolStatsAt(pool)
	if ps.StoredRawBytes >= 2<<20 {
		t.Fatalf("pool stored %d raw bytes under concurrency; want < 2 MB", ps.StoredRawBytes)
	}
}

func TestPoolLeaseLifecycle(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	run := filepath.Join(base, "run")
	s := openPooled(t, run, pool)
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, familySections(5, 6, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	leaseDir := filepath.Join(pool, poolLeaseDir)
	entries, err := os.ReadDir(leaseDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("lease entries = %v, err %v; want exactly one", entries, err)
	}

	if err := DeleteRun(run); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(run); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("run dir survived DeleteRun: %v", err)
	}
	entries, err = os.ReadDir(leaseDir)
	if err != nil || len(entries) != 0 {
		t.Fatalf("lease survived DeleteRun: %v, err %v", entries, err)
	}
}

// TestPoolRegistryKeyStableAcrossSymlinks pins the registry-key contract: a
// pool root named through a symlinked prefix before the root exists must
// resolve to the same in-process pool as the real path afterward — two
// instances over one INDEX would interleave corrupt offsets.
func TestPoolRegistryKeyStableAcrossSymlinks(t *testing.T) {
	base := t.TempDir()
	real := filepath.Join(base, "real")
	if err := os.Mkdir(real, 0o755); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(base, "link")
	if err := os.Symlink(real, link); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}

	// First attach goes through the symlink while POOL does not exist yet;
	// the sibling attaches via the real path once it does.
	a := openPooled(t, filepath.Join(base, "run-a"), filepath.Join(link, "POOL"))
	b := openPooled(t, filepath.Join(base, "run-b"), filepath.Join(real, "POOL"))
	if _, err := a.PutSections(Key{LoopID: "train", Exec: 0}, familySections(11, 1, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutSections(Key{LoopID: "train", Exec: 0}, familySections(11, 2, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if a.PoolRoot() != b.PoolRoot() {
		t.Fatalf("registry split-brain: %q vs %q", a.PoolRoot(), b.PoolRoot())
	}
	// One instance means cross-run dedup: one backbone pool-wide.
	ps, _ := a.PoolStats()
	if ps.StoredRawBytes >= 2<<20 {
		t.Fatalf("pool stored %d raw bytes; the symlinked sibling missed the dedup index", ps.StoredRawBytes)
	}
	// And both runs read back through either instance handle.
	for _, st := range []*Store{a, b} {
		if _, ok, err := st.GetSections(Key{LoopID: "train", Exec: 0}, nil); err != nil || !ok {
			t.Fatalf("read: ok=%v err=%v", ok, err)
		}
	}
}

// TestLeaseCollisionKeepsBothRunsPinned pins the content-checked lease
// protocol: two distinct entries forced onto one short-hash file name must
// not merge refcounts — deleting one run may not unpin the other.
func TestLeaseCollisionKeepsBothRunsPinned(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	runA := filepath.Join(base, "exp")
	a := openPooled(t, runA, pool)
	if _, err := a.PutSections(Key{LoopID: "train", Exec: 0}, familySections(21, 1, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	// Simulate a short-hash collision: plant run B's lease under run A's
	// short-hash file name (the adversarial 2^-32 case), then attach B so
	// writeLease must detect the occupied name and fall back.
	entryA, err := leaseEntry(pool, runA)
	if err != nil {
		t.Fatal(err)
	}
	runB := filepath.Join(base, "other", "exp")
	bStore := openPooled(t, runB, pool)
	if _, err := bStore.PutSections(Key{LoopID: "train", Exec: 0}, familySections(21, 2, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	entryB, err := leaseEntry(pool, runB)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite B's lease layout with the collision: remove its real lease,
	// then re-add it under A's short-hash name is impossible without hash
	// control — instead verify the content-checked probe directly: planting
	// B's entry under A's candidate name must not satisfy A's findLease,
	// and a fresh writeLease for A must restore A's pin.
	p, err := openSharedPool(pool, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	aPath, ok := findLease(pool, entryA)
	if !ok {
		t.Fatal("run A lease missing")
	}
	if err := os.WriteFile(aPath, []byte(entryB+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := findLease(pool, entryA); ok {
		t.Fatal("findLease matched a lease holding a different entry")
	}
	if err := p.writeLease(runA); err != nil {
		t.Fatal(err)
	}
	pathA2, ok := findLease(pool, entryA)
	if !ok || pathA2 == aPath {
		t.Fatalf("collision fallback not used: ok=%v path=%q", ok, pathA2)
	}
	// Both entries now resolve; GC keeps both runs' chunks.
	if _, err := GCPool(pool, GCOptions{PackRetention: time.Hour}); err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Store{a, bStore} {
		if _, ok, err := st.GetSections(Key{LoopID: "train", Exec: 0}, nil); err != nil || !ok {
			t.Fatalf("post-GC read: ok=%v err=%v", ok, err)
		}
	}
}

// TestPoolUpgradeAdoptsForeignAppends pins the read-only→writable upgrade
// against the documented sequential cross-process pattern: records and pack
// bytes appended by another process after this process's read-only open
// must be adopted — not truncated away — and pack lengths must resync, or
// the first local append would commit offsets short of the packs' real
// ends.
func TestPoolUpgradeAdoptsForeignAppends(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	run1 := filepath.Join(base, "run1")
	s1 := openPooled(t, run1, pool)
	if _, err := s1.PutSections(Key{LoopID: "train", Exec: 0}, familySections(31, 1, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	// This "process" opens the pool read-only.
	resetPoolRegistry()
	if _, err := OpenReadOnly(run1); err != nil {
		t.Fatal(err)
	}

	// Simulate the other process's sequential writes at the file level:
	// one fresh chunk appended to its shard pack plus its INDEX record.
	foreign := testPayload(64<<10, 999)
	frames := ckptfmt.EncodeChunks([][]byte{foreign})
	p, err := openSharedPool(pool, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	sh := p.shardTab[p.shardOf(frames[0].Hash)]
	packPath := filepath.Join(pool, sh.obj())
	f, err := os.OpenFile(packPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	wire := frames[0].Append(nil)
	if _, err := f.Write(wire); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loc := chunkLoc{Gen: sh.gen, Off: st.Size(), EncLen: len(wire), RawLen: frames[0].RawLen, Style: frames[0].Style}
	idx, err := os.OpenFile(filepath.Join(pool, poolIndexFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Write(frameTagged(recChunk, encodeChunkRecord(frames[0].Hash, loc))); err != nil {
		t.Fatal(err)
	}
	idx.Close()

	// Writable attach in this process: the registry pool upgrades and must
	// see the foreign chunk (dedup hit, no second copy) and the grown pack.
	run2 := filepath.Join(base, "run2")
	s2 := openPooled(t, run2, pool)
	key := Key{LoopID: "train", Exec: 0}
	if _, err := s2.PutSections(key, []Section{{Name: "w", Data: foreign}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := s2.Lookup(key); m.StoredBytes != 0 {
		t.Fatalf("foreign chunk re-stored (%d bytes); upgrade did not adopt the INDEX append", m.StoredBytes)
	}
	secs, ok, err := s2.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, foreign) {
		t.Fatalf("read foreign-dedup'd checkpoint: ok=%v err=%v", ok, err)
	}
	// A genuinely new chunk must land at the pack's REAL end.
	if _, err := s2.PutSections(Key{LoopID: "train", Exec: 1}, []Section{{Name: "w", Data: testPayload(32<<10, 1000)}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if secs, ok, err := s2.GetSections(Key{LoopID: "train", Exec: 1}, nil); err != nil || !ok || !bytes.Equal(secs[0].Data, testPayload(32<<10, 1000)) {
		t.Fatalf("read post-upgrade append: ok=%v err=%v (stale packLen?)", ok, err)
	}
	// Everything survives a fresh process.
	resetPoolRegistry()
	s3, err := Open(run2)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, ok, err := s3.GetSections(Key{LoopID: "train", Exec: e}, nil); err != nil || !ok {
			t.Fatalf("reopen exec %d: ok=%v err=%v", e, ok, err)
		}
	}
}
