package store_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/faultbackend"
	"flor.dev/flor/internal/store/remote"
)

// prefetchPayload is a deterministic payload for prefetch battery runs.
func prefetchPayload(n int, seed uint64) []byte {
	p := make([]byte, n)
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range p {
		if i%5 == 0 {
			x = x*6364136223846793005 + 1442695040888963407
			p[i] = byte(x >> 56)
		}
	}
	return p
}

// prefetchFixture writes nKeys checkpoints through a clean remote backend
// and returns the run directory, the backing object store, and the expected
// section bytes per exec.
func prefetchFixture(t *testing.T, nKeys, size int, seed uint64) (string, *remote.MemStore, map[int][]byte) {
	t.Helper()
	mem := remote.NewMemStore()
	backend := remote.NewObjectBackend(mem, "packs", nil)
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.Options{Backend: backend, ShardFanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{}
	for i := 0; i < nKeys; i++ {
		data := prefetchPayload(size, seed*100+uint64(i))
		want[i] = data
		key := store.Key{LoopID: "train", Exec: i}
		if _, err := s.PutSections(key, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return dir, mem, want
}

// TestPrefetchWarmClaimAccounting pins the happy path: hinted keys are
// warmed into the cache tier (Drain is the completion point), the warmed
// blocks serve the real restore as cache hits, and Claim settles every
// issued byte as used — nothing wasted when the plan ran to completion.
func TestPrefetchWarmClaimAccounting(t *testing.T) {
	const nKeys = 6
	dir, mem, want := prefetchFixture(t, nKeys, 48<<10, 1)
	cache, err := cachetier.NewWithBlockSize("", 4<<20, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	backend := remote.NewObjectBackend(mem, "packs", cache)
	ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}

	base := store.PrefetchTotals()
	pf := ro.NewPrefetcher(0, nil)
	if pf == nil {
		t.Fatal("NewPrefetcher returned nil for a remote-backed store")
	}
	keys := make([]store.Key, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		keys = append(keys, store.Key{LoopID: "train", Exec: i})
	}
	pf.Hint(keys...)
	pf.Drain()

	issued := store.PrefetchTotals().IssuedBytes - base.IssuedBytes
	if issued == 0 {
		t.Fatal("drained warm issued no bytes")
	}
	warm := cache.Stats()
	if warm.Admitted == 0 {
		t.Fatalf("warm admitted nothing to the cache tier: %+v", warm)
	}

	// The restore front arrives: warmed blocks serve as cache hits and the
	// sections come back byte-identical.
	for i, data := range want {
		secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
		if err != nil || !ok {
			t.Fatalf("restore %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(secs[0].Data, data) {
			t.Fatalf("restore %d: bytes differ after warming", i)
		}
	}
	if hot := cache.Stats(); hot.Hits <= warm.Hits {
		t.Fatalf("warmed blocks served no restore hits: warm=%+v hot=%+v", warm, hot)
	}

	for _, k := range keys {
		pf.Claim(k)
	}
	pf.Close()
	got := store.PrefetchTotals()
	if used := got.UsedBytes - base.UsedBytes; used != issued {
		t.Fatalf("claimed every hint but used=%d of issued=%d", used, issued)
	}
	if wasted := got.WastedBytes - base.WastedBytes; wasted != 0 {
		t.Fatalf("fully claimed plan still wasted %d bytes", wasted)
	}
}

// TestPrefetchLocalStoreNoop pins the zero-cost local contract: a store
// whose reads never leave the machine gets a nil prefetcher, and every
// method on nil is a safe no-op — replay wiring never branches on backend.
func TestPrefetchLocalStoreNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf := s.NewPrefetcher(4, nil)
	if pf != nil {
		t.Fatal("local store got a live prefetcher")
	}
	pf.Hint(store.Key{LoopID: "train", Exec: 0})
	pf.Claim(store.Key{LoopID: "train", Exec: 0})
	pf.Cancel(store.Key{LoopID: "train", Exec: 0})
	pf.Drain()
	pf.Close()
}

// TestPrefetchCancelAccounting pins the steal path: hints the plan no
// longer owns are dropped, their plan bytes count as cancelled, and a
// cancelled plan never wedges Drain. Every backend read carries latency so
// the queue is still backed up when the cancellation lands.
func TestPrefetchCancelAccounting(t *testing.T) {
	const nKeys = 6
	dir, mem, want := prefetchFixture(t, nKeys, 48<<10, 2)
	fb := faultbackend.WrapObject(mem, faultbackend.Config{Seed: 3, LatencyNth: 1, Latency: 20 * time.Millisecond})
	cache, err := cachetier.NewWithBlockSize("", 4<<20, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	backend := remote.NewObjectBackend(fb, "packs", cache)
	ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}

	base := store.PrefetchTotals()
	pf := ro.NewPrefetcher(2, nil)
	if pf == nil {
		t.Fatal("NewPrefetcher returned nil for a remote-backed store")
	}
	keys := make([]store.Key, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		keys = append(keys, store.Key{LoopID: "train", Exec: i})
	}
	pf.Hint(keys...)
	// Two workers are at most two keys deep when this lands; the rest of the
	// queue is cancelled before any worker reaches it.
	pf.Cancel(keys...)
	pf.Drain()
	pf.Close()

	got := store.PrefetchTotals()
	if cancelled := got.CancelledBytes - base.CancelledBytes; cancelled == 0 {
		t.Fatalf("cancelled a queued plan but no bytes counted cancelled: %+v", got)
	}
	// The thief still restores the iterations correctly.
	for i, data := range want {
		secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
		if err != nil || !ok || !bytes.Equal(secs[0].Data, data) {
			t.Fatalf("restore %d after cancel: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestPrefetchFaultBattery runs the prefetcher concurrently with restores
// over a fault-injecting object store, per fault class and seed. Warm
// failures must stay invisible — every restore byte-identical — and Close
// must reap every warm worker (no goroutine leaks), race-detector clean.
func TestPrefetchFaultBattery(t *testing.T) {
	classes := []struct {
		name string
		cfg  faultbackend.Config
	}{
		{"read-errors", faultbackend.Config{ReadErrNth: 3}},
		{"short-reads", faultbackend.Config{ShortReadNth: 2}},
		{"latency", faultbackend.Config{LatencyNth: 4, Latency: 2 * time.Millisecond}},
		{"everything", faultbackend.Config{ReadErrNth: 5, ShortReadNth: 7, LatencyNth: 6, Latency: time.Millisecond}},
	}
	policy := remote.Policy{Attempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Timeout: 5 * time.Second}
	for _, cl := range classes {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", cl.name, seed), func(t *testing.T) {
				const nKeys = 5
				dir, mem, want := prefetchFixture(t, nKeys, 48<<10, uint64(seed)*7)
				cfg := cl.cfg
				cfg.Seed = seed
				fb := faultbackend.WrapObject(mem, cfg)
				cache, err := cachetier.NewWithBlockSize("", 4<<20, 8<<10)
				if err != nil {
					t.Fatal(err)
				}
				backend := remote.NewObjectBackend(remote.Retry(fb, policy), "packs", cache)
				ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: backend})
				if err != nil {
					t.Fatal(err)
				}

				before := runtime.NumGoroutine()
				pf := ro.NewPrefetcher(3, nil)
				if pf == nil {
					t.Fatal("NewPrefetcher returned nil for a remote-backed store")
				}
				keys := make([]store.Key, 0, nKeys)
				for i := 0; i < nKeys; i++ {
					keys = append(keys, store.Key{LoopID: "train", Exec: i})
				}
				pf.Hint(keys...)

				// Restores race the warm front, exactly like a replay whose
				// readahead runs hotter than its decode.
				var wg sync.WaitGroup
				for i, data := range want {
					wg.Add(1)
					go func() {
						defer wg.Done()
						secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
						if err != nil || !ok {
							t.Errorf("restore %d through faults: ok=%v err=%v", i, ok, err)
							return
						}
						if !bytes.Equal(secs[0].Data, data) {
							t.Errorf("restore %d: bytes differ with warm racing restore", i)
						}
						pf.Claim(store.Key{LoopID: "train", Exec: i})
					}()
				}
				wg.Wait()
				pf.Drain()
				pf.Close()

				if fb.Injected() == 0 {
					t.Fatal("battery ran but no faults fired")
				}
				// Close reaps every warm worker; allow the runtime a moment
				// to retire exited goroutines before declaring a leak.
				deadline := time.Now().Add(2 * time.Second)
				for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}
				if n := runtime.NumGoroutine(); n > before {
					t.Fatalf("%d goroutines outlived Close (started with %d)", n-before, before)
				}
			})
		}
	}
}
