// Package store implements the on-disk checkpoint store backing Flor record
// and replay.
//
// Layout of a run directory (segment format v2, the default for new runs):
//
//	<dir>/FORMAT              format marker ("2"); absent in legacy v1 runs
//	<dir>/MANIFEST            append-only log of committed checkpoints and
//	                          dedup chunk-index records
//	<dir>/CHUNKS              append-only pack of content-addressed frames
//	<dir>/ckpt-<seq>.bin      one segment file per checkpoint
//	<dir>/ckpt-<seq>.bin.gz   optional spooled (gzip) copy, the "S3 object"
//
// In format v2 a segment file holds only a CRC-framed *directory* (package
// ckptfmt): the checkpoint's named sections and, per section, the ordered
// content hashes of the chunks holding its bytes. The chunk bytes themselves
// live in the CHUNKS pack as independent frames — style byte (raw or
// deflate), CRC-32C, 128-bit content hash — written once per distinct hash
// and shared by every checkpoint of the run that references them
// (cross-checkpoint dedup: frozen layers, datasets, and configuration are
// stored once). Frames encode and decode in parallel across a worker pool.
//
// The MANIFEST interleaves two record kinds, each individually CRC-framed:
//
//	'C' chunk record  hash, pack offset, encoded length, raw length, style —
//	                  an entry of the run's dedup chunk index
//	'M' meta record   a committed checkpoint (key, segment seq, sizes,
//	                  timings, format)
//
// Chunk records precede the meta record of the checkpoint that introduced
// them, and pack bytes are written before either, so a crash at any point
// leaves a prefix-consistent run: opening a store replays the manifest,
// verifying each record's CRC and ignoring any torn tail.
//
// Legacy format v1 (one monolithic CRC-framed blob per segment, untyped
// manifest records) is detected from the absence of the FORMAT marker; v1
// runs remain fully readable and writable in v1.
//
// The design follows write-ahead-log discipline adapted to a redo-only
// workload (paper §7, "Recovery and Replay Systems"): segment files and pack
// bytes are written first, then a manifest record commits them, so a crash
// mid-materialization never yields a checkpoint that replay could
// half-trust.
package store

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
)

// Format identifies a segment encoding.
const (
	// FormatV1 is the legacy single-blob-per-segment encoding.
	FormatV1 = 1
	// FormatV2 is the frame-based, deduplicated encoding (package ckptfmt).
	FormatV2 = 2
)

// Manifest record tags (format v2 manifests only).
const (
	recMeta  = 'M'
	recChunk = 'C'
)

// Key identifies a checkpoint: the side-effects of execution number Exec of
// the loop statically identified by LoopID. Exec counts every execution of
// the loop at runtime (paper §4.2: "A loop may generate zero or many Loop
// End Checkpoints").
type Key struct {
	LoopID string
	Exec   int
}

// String renders the key for logs and file names.
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.LoopID, k.Exec) }

// Meta describes a committed checkpoint.
type Meta struct {
	Key      Key
	Seq      int   // segment sequence number
	Size     int64 // uncompressed payload size in bytes
	GzSize   int64 // compressed (spooled) size; 0 until spooled
	MaterNs  int64 // observed materialization time (serialize+write), ns
	SnapNs   int64 // observed snapshot (training-thread) time, ns
	ComputNs int64 // observed loop computation time, ns
	Format   int   // segment format (FormatV1 or FormatV2)
	// StoredBytes is the number of pack bytes this checkpoint added (encoded
	// size of its previously unseen chunks). Dedup hits make it smaller than
	// Size; always equal to Size's framed encoding in format v1.
	StoredBytes int64
}

// Section is one named slice of a checkpoint payload — the encoded bytes of
// one environment entry. Materialization hands sections to PutSections so
// the store can chunk, dedup, and frame them independently. On reads the
// store also reports each section's content identity (the hash of its chunk
// hashes) and logical length, so restore caches can recognize repeated
// content — and ask the store not to load it at all.
type Section struct {
	Name string
	Data []byte
	// Hash is the section's content identity on read paths (zero on writes
	// and for format-v1 fallbacks).
	Hash ckptfmt.Hash
	// RawLen is the section's logical byte length, valid even when Data was
	// skipped at the caller's request.
	RawLen int
}

// DedupStats aggregates the run's chunk-level storage accounting.
type DedupStats struct {
	LogicalBytes   int64 // raw bytes referenced by all committed checkpoints
	StoredRawBytes int64 // raw bytes of distinct chunks actually stored
	StoredEncBytes int64 // encoded (post-style) bytes appended to the pack
	ChunkRefs      int64 // chunk references across all checkpoints
	ChunksStored   int64 // distinct chunks written to the pack
}

// Ratio returns the dedup ratio: logical bytes per stored raw byte. A run
// with no repeated state scores 1.0; frozen-layer workloads score higher.
func (d DedupStats) Ratio() float64 {
	if d.StoredRawBytes == 0 {
		return 1
	}
	return float64(d.LogicalBytes) / float64(d.StoredRawBytes)
}

// chunkLoc locates one content-addressed frame inside the CHUNKS pack.
type chunkLoc struct {
	Off    int64
	EncLen int
	RawLen int
	Style  byte
}

// Store is a checkpoint store rooted at a run directory. It is safe for
// concurrent use: record's background materializer writes while the training
// thread queries stats, and replay workers read in parallel.
type Store struct {
	dir      string
	format   int
	readOnly bool

	mu      sync.Mutex
	nextSeq int
	index   map[Key]*Meta // latest committed checkpoint per key
	metas   []*Meta       // commit order
	chunks  map[ckptfmt.Hash]chunkLoc
	dedup   DedupStats
	packLen int64 // current CHUNKS pack length
}

// ErrNotFound is returned when no checkpoint exists for a key.
var ErrNotFound = errors.New("store: checkpoint not found")

// ErrReadOnly is returned by write operations on a read-only store.
var ErrReadOnly = errors.New("store: read-only")

// Open opens (or creates) a store at dir, replaying the manifest to rebuild
// the checkpoint index and the dedup chunk index. Torn or corrupt manifest
// tails are truncated away; segments whose files are missing or corrupt are
// dropped from the index. New stores are created at format v2; directories
// recorded before the FORMAT marker existed open as v1.
func Open(dir string) (*Store, error) {
	return OpenFormat(dir, 0)
}

// OpenFormat opens a store forcing the given segment format for writes
// (FormatV1 or FormatV2); format 0 auto-detects: the FORMAT marker if
// present, v1 for pre-existing unmarked runs, v2 for new directories.
// Benchmarks use the explicit form to compare the two write paths.
func OpenFormat(dir string, format int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, index: map[Key]*Meta{}, chunks: map[ckptfmt.Hash]chunkLoc{}}
	if err := s.detectFormat(format); err != nil {
		return nil, err
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenReadOnly opens an existing recorded run for shared read-only use — the
// serving daemon's open path. It touches nothing on disk: the FORMAT marker
// is not (re)written, a torn manifest tail is skipped rather than truncated,
// and every write operation (Put, PutSections, Spool, GC) fails with
// ErrReadOnly. The returned store is safe for concurrent Get/GetSections
// from many goroutines.
func OpenReadOnly(dir string) (*Store, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("store: open read-only: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
	}
	s := &Store{dir: dir, readOnly: true, index: map[Key]*Meta{}, chunks: map[ckptfmt.Hash]chunkLoc{}}
	if err := s.detectFormat(0); err != nil {
		return nil, err
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadOnly reports whether the store rejects writes.
func (s *Store) ReadOnly() bool { return s.readOnly }

func (s *Store) detectFormat(force int) error {
	detected := 0
	raw, err := os.ReadFile(s.formatPath())
	switch {
	case err == nil:
		marker := strings.TrimSpace(string(raw))
		if marker != "2" {
			// An unknown marker means a newer (or corrupted) layout whose
			// manifest records this build would misparse as a torn tail and
			// truncate away — refuse rather than destroy.
			return fmt.Errorf("store: unsupported format marker %q in %s", marker, s.dir)
		}
		detected = FormatV2
	case errors.Is(err, os.ErrNotExist):
		if _, merr := os.Stat(s.manifestPath()); merr == nil {
			detected = FormatV1 // recorded before FORMAT markers existed
		} else {
			detected = FormatV2 // fresh directory
		}
	default:
		return fmt.Errorf("store: read format marker: %w", err)
	}
	// A forced format may only disagree with a directory that has no
	// committed state: opening a v2 manifest as v1 (or vice versa) would
	// misparse every record as a torn tail and truncate the whole run away.
	if force != 0 && force != detected {
		if _, merr := os.Stat(s.manifestPath()); merr == nil {
			return fmt.Errorf("store: cannot force format v%d on %s (recorded as v%d)", force, s.dir, detected)
		}
		detected = force
	}
	s.format = detected
	if s.format == FormatV2 && !s.readOnly {
		if err := os.WriteFile(s.formatPath(), []byte("2\n"), 0o644); err != nil {
			return fmt.Errorf("store: write format marker: %w", err)
		}
	}
	if st, err := os.Stat(s.packPath()); err == nil {
		s.packLen = st.Size()
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Format returns the segment format used for writes.
func (s *Store) Format() int { return s.format }

func (s *Store) formatPath() string   { return filepath.Join(s.dir, "FORMAT") }
func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }
func (s *Store) packPath() string     { return filepath.Join(s.dir, "CHUNKS") }

func (s *Store) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.bin", seq))
}

func (s *Store) replayManifest() error {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read manifest: %w", err)
	}
	off := 0
	validated := 0
	for off < len(raw) {
		payload, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			// Torn tail: truncate the manifest back to the last good record.
			break
		}
		if !s.applyRecord(payload) {
			break
		}
		off += consumed
		validated = off
	}
	if validated < len(raw) && !s.readOnly {
		if err := os.Truncate(s.manifestPath(), int64(validated)); err != nil {
			return fmt.Errorf("store: truncate torn manifest: %w", err)
		}
	}
	return nil
}

// applyRecord replays one manifest record payload into the in-memory state,
// returning false when the record is undecodable (treated as a torn tail).
func (s *Store) applyRecord(payload []byte) bool {
	body := payload
	tag := byte(recMeta)
	if s.format == FormatV2 {
		if len(payload) == 0 {
			return false
		}
		tag = payload[0]
		body = payload[1:]
	}
	switch tag {
	case recChunk:
		hash, loc, err := decodeChunkRecord(body)
		if err != nil {
			return false
		}
		// Defensive: a chunk record pointing past the pack's end would make
		// every referencing checkpoint unreadable; drop it (and let reads of
		// those checkpoints surface ErrCorrupt) rather than trust it.
		if loc.Off+int64(loc.EncLen) > s.packLen {
			return true
		}
		if _, dup := s.chunks[hash]; !dup {
			s.chunks[hash] = loc
			s.dedup.ChunksStored++
			s.dedup.StoredRawBytes += int64(loc.RawLen)
			s.dedup.StoredEncBytes += int64(loc.EncLen)
		}
	case recMeta:
		m, err := decodeMeta(body)
		if err != nil {
			return false
		}
		// A manifest record only counts if its segment survived intact.
		if _, statErr := os.Stat(s.segmentPath(m.Seq)); statErr == nil {
			s.commitLocked(m)
		}
		if m.Seq >= s.nextSeq {
			s.nextSeq = m.Seq + 1
		}
	default:
		return false
	}
	return true
}

// commitLocked installs a meta into the index and accumulates dedup stats.
func (s *Store) commitLocked(m *Meta) {
	s.index[m.Key] = m
	s.metas = append(s.metas, m)
	if m.Format == FormatV2 {
		s.dedup.LogicalBytes += m.Size
	}
}

func encodeMeta(m *Meta) []byte {
	w := codec.NewWriter()
	w.String(m.Key.LoopID)
	w.Int(m.Key.Exec)
	w.Int(m.Seq)
	w.Int(int(m.Size))
	w.Int(int(m.GzSize))
	w.Int(int(m.MaterNs))
	w.Int(int(m.SnapNs))
	w.Int(int(m.ComputNs))
	// Trailing fields added with format v2; v1 decoders never read this far.
	w.Int(m.Format)
	w.Int(int(m.StoredBytes))
	return w.Bytes()
}

func decodeMeta(b []byte) (*Meta, error) {
	r := codec.NewReader(b)
	m := &Meta{}
	var err error
	if m.Key.LoopID, err = r.String(); err != nil {
		return nil, err
	}
	fields := []*int64{nil, &m.Size, &m.GzSize, &m.MaterNs, &m.SnapNs, &m.ComputNs}
	if m.Key.Exec, err = r.Int(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Int(); err != nil {
		return nil, err
	}
	for _, f := range fields[1:] {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		*f = int64(v)
	}
	// Records written before format v2 end here.
	m.Format = FormatV1
	m.StoredBytes = m.Size
	if r.Remaining() > 0 {
		if m.Format, err = r.Int(); err != nil {
			return nil, err
		}
		sb, err := r.Int()
		if err != nil {
			return nil, err
		}
		m.StoredBytes = int64(sb)
	}
	return m, nil
}

func encodeChunkRecord(hash ckptfmt.Hash, loc chunkLoc) []byte {
	w := codec.NewWriter()
	w.RawBytes(hash[:])
	w.Int(int(loc.Off))
	w.Int(loc.EncLen)
	w.Int(loc.RawLen)
	w.Uvarint(uint64(loc.Style))
	return w.Bytes()
}

func decodeChunkRecord(b []byte) (hash ckptfmt.Hash, loc chunkLoc, err error) {
	r := codec.NewReader(b)
	hb, err := r.RawBytes()
	if err != nil {
		return hash, loc, err
	}
	if len(hb) != 16 {
		return hash, loc, fmt.Errorf("%w: chunk record hash length %d", codec.ErrCorrupt, len(hb))
	}
	copy(hash[:], hb)
	off, err := r.Int()
	if err != nil {
		return hash, loc, err
	}
	if loc.EncLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	if loc.RawLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	style, err := r.Uvarint()
	if err != nil {
		return hash, loc, err
	}
	loc.Off = int64(off)
	loc.Style = byte(style)
	return hash, loc, nil
}

// frameRecord wraps a manifest record payload with its type tag (v2) and CRC
// frame.
func (s *Store) frameRecord(tag byte, body []byte) []byte {
	if s.format != FormatV2 {
		return codec.Frame(body)
	}
	payload := make([]byte, 0, len(body)+1)
	payload = append(payload, tag)
	payload = append(payload, body...)
	return codec.Frame(payload)
}

// Put durably stores payload for key and commits it to the manifest.
// snapNs and serNs are the observed snapshot and serialization times for
// this checkpoint; Put measures its own write time and records
// MaterNs = snapNs + serNs + writeNs, the full materialization cost used by
// adaptive checkpointing (paper Table 2's M_i). computNs is the loop
// execution time being memoized (C_i).
//
// In format v2 the payload is stored as a single opaque section — chunked,
// content-addressed, and deduplicated like any other checkpoint, but with no
// per-entry structure. PutSections is the structured (and more parallel)
// write path.
func (s *Store) Put(key Key, payload []byte, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format == FormatV2 {
		return s.putV2(key, []Section{{Data: payload}}, true, snapNs, serNs, computNs)
	}

	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()
	framed := codec.Frame(payload)
	if err := s.writeSegment(seq, framed); err != nil {
		return nil, err
	}
	writeNs := time.Since(w0).Nanoseconds()

	m := &Meta{
		Key: key, Seq: seq, Size: int64(len(payload)),
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV1, StoredBytes: int64(len(framed)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendManifestLocked(s.frameRecord(recMeta, encodeMeta(m))); err != nil {
		return nil, err
	}
	s.commitLocked(m)
	return m, nil
}

// PutSections durably stores a checkpoint as named sections (format v2
// stores only). Sections are chunked, frames for previously unseen chunks
// are encoded in parallel and appended to the pack, and the segment
// directory plus manifest records commit the checkpoint. See Put for the
// timing parameters.
func (s *Store) PutSections(key Key, secs []Section, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format != FormatV2 {
		return nil, fmt.Errorf("store: PutSections requires format v2 (store is v%d)", s.format)
	}
	return s.putV2(key, secs, false, snapNs, serNs, computNs)
}

func (s *Store) putV2(key Key, secs []Section, opaque bool, snapNs, serNs, computNs int64) (*Meta, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()

	// Chunk every section and hash every chunk in parallel; the directory is
	// fully determined by content before any byte hits disk.
	dir := ckptfmt.Directory{Opaque: opaque, Sections: make([]ckptfmt.SectionRef, len(secs))}
	var flat [][]byte
	var refs []*ckptfmt.ChunkRef
	var logical int64
	for i, sec := range secs {
		chunks := codec.SplitChunks(sec.Data, ckptfmt.DefaultChunkSize)
		dir.Sections[i] = ckptfmt.SectionRef{Name: sec.Name, Chunks: make([]ckptfmt.ChunkRef, len(chunks))}
		for j, c := range chunks {
			dir.Sections[i].Chunks[j] = ckptfmt.ChunkRef{RawLen: len(c)}
			flat = append(flat, c)
			refs = append(refs, &dir.Sections[i].Chunks[j])
		}
		logical += int64(len(sec.Data))
	}
	hashes := make([]ckptfmt.Hash, len(flat))
	ckptfmt.ParallelDo(len(flat), func(i int) { hashes[i] = ckptfmt.HashChunk(flat[i]) })
	for i, h := range hashes {
		refs[i].Hash = h
	}

	// Select chunks the run has not stored yet (deduplicating within this
	// checkpoint too) and encode their frames in parallel. A concurrent put
	// racing on the same fresh chunk would store it twice — benign pack
	// bloat, last index entry wins — but materialization is single-writer in
	// practice.
	s.mu.Lock()
	var newIdx []int
	fresh := map[ckptfmt.Hash]bool{}
	for i, h := range hashes {
		if _, ok := s.chunks[h]; !ok && !fresh[h] {
			fresh[h] = true
			newIdx = append(newIdx, i)
		}
	}
	s.mu.Unlock()
	newChunks := make([][]byte, len(newIdx))
	for i, idx := range newIdx {
		newChunks[i] = flat[idx]
	}
	frames := ckptfmt.EncodeChunks(newChunks)
	var packBuf []byte
	wireLens := make([]int, len(frames))
	for i := range frames {
		before := len(packBuf)
		packBuf = frames[i].Append(packBuf)
		wireLens[i] = len(packBuf) - before
	}

	// Segment file: the CRC-framed directory. Written before the manifest
	// record so a crash never commits a directory-less checkpoint.
	if err := s.writeSegment(seq, codec.Frame(ckptfmt.EncodeDirectory(&dir))); err != nil {
		return nil, err
	}

	// Commit order under the lock: pack bytes, then chunk records, then the
	// meta record — the manifest never references bytes that aren't on disk.
	s.mu.Lock()
	defer s.mu.Unlock()
	packBase := s.packLen
	if len(packBuf) > 0 {
		pf, err := os.OpenFile(s.packPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open pack: %w", err)
		}
		if _, err := pf.Write(packBuf); err != nil {
			pf.Close()
			return nil, fmt.Errorf("store: append pack: %w", err)
		}
		if err := pf.Close(); err != nil {
			return nil, fmt.Errorf("store: close pack: %w", err)
		}
		s.packLen = packBase + int64(len(packBuf))
	}
	var record []byte
	var stored int64
	off := packBase
	for i := range frames {
		loc := chunkLoc{Off: off, EncLen: wireLens[i], RawLen: frames[i].RawLen, Style: frames[i].Style}
		off += int64(wireLens[i])
		stored += int64(wireLens[i])
		s.chunks[frames[i].Hash] = loc
		s.dedup.ChunksStored++
		s.dedup.StoredRawBytes += int64(loc.RawLen)
		s.dedup.StoredEncBytes += int64(loc.EncLen)
		record = append(record, s.frameRecord(recChunk, encodeChunkRecord(frames[i].Hash, loc))...)
	}
	s.dedup.ChunkRefs += int64(len(flat))
	writeNs := time.Since(w0).Nanoseconds()
	m := &Meta{
		Key: key, Seq: seq, Size: logical,
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV2, StoredBytes: stored,
	}
	record = append(record, s.frameRecord(recMeta, encodeMeta(m))...)
	if err := s.appendManifestLocked(record); err != nil {
		return nil, err
	}
	s.commitLocked(m)
	return m, nil
}

// writeSegment commits framed bytes to segment seq via write-then-rename.
func (s *Store) writeSegment(seq int, framed []byte) error {
	path := s.segmentPath(seq)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		return fmt.Errorf("store: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: commit segment: %w", err)
	}
	return nil
}

func (s *Store) appendManifestLocked(record []byte) error {
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record); err != nil {
		return fmt.Errorf("store: append manifest: %w", err)
	}
	return nil
}

// Get returns the payload of the latest committed checkpoint for key. For
// format v2 checkpoints the payload is reassembled from its frames (decoded
// in parallel) into the exact byte stream Put or the bundle encoder
// originally produced, so callers are format-agnostic.
func (s *Store) Get(key Key) ([]byte, error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, err
	}
	if m.Format != FormatV2 {
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
		}
		payload, _, err := codec.Unframe(raw)
		if err != nil {
			return nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
		}
		return payload, nil
	}
	secs, err := s.readSections(m, dir, nil)
	if err != nil {
		return nil, err
	}
	if dir.Opaque {
		if len(secs) == 1 {
			return secs[0].Data, nil
		}
		var out []byte
		for _, sec := range secs {
			out = append(out, sec.Data...)
		}
		return out, nil
	}
	// Reassemble the v1 bundle encoding: count, then (name, payload) pairs —
	// byte-identical to what the bundle encoder originally produced.
	w := codec.NewWriter()
	w.Uvarint(uint64(len(secs)))
	for _, sec := range secs {
		w.String(sec.Name)
		w.RawAppend(sec.Data)
	}
	return w.Bytes(), nil
}

// GetSections returns the named sections of a format-v2 checkpoint, decoded
// in parallel. ok is false when the checkpoint is stored in format v1 or as
// an opaque blob; callers fall back to Get + whole-payload decoding.
//
// When have is non-nil, sections whose content identity it reports as
// already held are returned with nil Data (Hash and RawLen still set) and
// their chunks are never read — the disk, CRC, and reassembly cost of
// repeated content (frozen layers restored epoch after epoch) drops to a
// directory read.
func (s *Store) GetSections(key Key, have func(ckptfmt.Hash) bool) (secs []Section, ok bool, err error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, false, err
	}
	if m.Format != FormatV2 || dir.Opaque {
		return nil, false, nil
	}
	secs, err = s.readSections(m, dir, have)
	if err != nil {
		return nil, false, err
	}
	return secs, true, nil
}

// segmentDir resolves key to its meta and, for v2 checkpoints, its decoded
// segment directory.
func (s *Store) segmentDir(key Key) (*Meta, *ckptfmt.Directory, error) {
	s.mu.Lock()
	m, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if m.Format != FormatV2 {
		return m, nil, nil
	}
	raw, err := os.ReadFile(s.segmentPath(m.Seq))
	if err != nil {
		return nil, nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
	}
	payload, _, err := codec.Unframe(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
	}
	dir, err := ckptfmt.DecodeDirectory(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d directory: %w", m.Seq, err)
	}
	return m, dir, nil
}

// readSections materializes sections of a v2 directory: chunk frames are
// read from the pack and decoded in parallel across the worker pool.
// Sections whose identity the optional have callback claims are skipped
// (returned with nil Data). Reads of chunks that sit contiguously in the
// pack — the common case, since a checkpoint's fresh chunks are appended
// together — coalesce into a single pread.
//
// The have callback is invoked without the store lock held, and the lock is
// taken only briefly to resolve chunk locations: concurrent readers from
// many server goroutines must not serialize on each other's cache probes.
func (s *Store) readSections(m *Meta, dir *ckptfmt.Directory, have func(ckptfmt.Hash) bool) ([]Section, error) {
	secs := make([]Section, len(dir.Sections))
	// Phase 1, lock-free: compute each section's content identity and ask
	// the caller which sections it already holds.
	var load []int
	for i := range dir.Sections {
		ds := &dir.Sections[i]
		hs := make([]ckptfmt.Hash, len(ds.Chunks))
		for j, ref := range ds.Chunks {
			hs[j] = ref.Hash
		}
		secs[i] = Section{Name: ds.Name, Hash: ckptfmt.HashOfHashes(hs), RawLen: ds.RawLen()}
		if have != nil && have(secs[i].Hash) {
			continue
		}
		load = append(load, i)
	}
	// Phase 2, under the lock: resolve chunk locations from the dedup index.
	type chunkJob struct {
		sec int
		dst []byte // decode destination (nil → alias raw frames, zero copy)
		loc chunkLoc
		ref ckptfmt.ChunkRef
	}
	var jobs []chunkJob
	s.mu.Lock()
	for _, i := range load {
		ds := &dir.Sections[i]
		// Multi-chunk sections decode straight into one preallocated buffer;
		// single-chunk sections let the frame alias its pack bytes.
		var buf []byte
		if len(ds.Chunks) > 1 {
			buf = make([]byte, secs[i].RawLen)
			secs[i].Data = buf
		} else {
			secs[i].Data = []byte{}
		}
		off := 0
		for _, ref := range ds.Chunks {
			loc, ok := s.chunks[ref.Hash]
			if !ok {
				s.mu.Unlock()
				return nil, fmt.Errorf("%w: segment %d references unknown chunk %s", codec.ErrCorrupt, m.Seq, ref.Hash)
			}
			j := chunkJob{sec: i, loc: loc, ref: ref}
			if buf != nil {
				j.dst = buf[off : off+ref.RawLen]
				off += ref.RawLen
			}
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	if len(jobs) == 0 {
		return secs, nil
	}

	pf, err := os.Open(s.packPath())
	if err != nil {
		return nil, fmt.Errorf("store: open pack: %w", err)
	}
	defer pf.Close()

	// Coalesce when the chunks occupy a mostly dense span of the pack.
	minOff, maxEnd, total := jobs[0].loc.Off, int64(0), int64(0)
	for _, j := range jobs {
		if j.loc.Off < minOff {
			minOff = j.loc.Off
		}
		if end := j.loc.Off + int64(j.loc.EncLen); end > maxEnd {
			maxEnd = end
		}
		total += int64(j.loc.EncLen)
	}
	var span []byte
	if maxEnd-minOff <= 2*total {
		span = make([]byte, maxEnd-minOff)
		if _, err := pf.ReadAt(span, minOff); err != nil {
			return nil, fmt.Errorf("%w: pack read span [%d,%d): %v", codec.ErrCorrupt, minOff, maxEnd, err)
		}
	}

	out := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	ckptfmt.ParallelDo(len(jobs), func(i int) {
		j := jobs[i]
		var buf []byte
		if span != nil {
			buf = span[j.loc.Off-minOff : j.loc.Off-minOff+int64(j.loc.EncLen)]
		} else {
			buf = make([]byte, j.loc.EncLen)
			if _, err := pf.ReadAt(buf, j.loc.Off); err != nil {
				errs[i] = fmt.Errorf("%w: pack read at %d: %v", codec.ErrCorrupt, j.loc.Off, err)
				return
			}
		}
		frame, _, err := ckptfmt.Parse(buf)
		if err != nil {
			errs[i] = fmt.Errorf("store: pack frame at %d: %w", j.loc.Off, err)
			return
		}
		if frame.Hash != j.ref.Hash {
			errs[i] = fmt.Errorf("%w: pack frame at %d holds %s, directory wants %s",
				codec.ErrCorrupt, j.loc.Off, frame.Hash, j.ref.Hash)
			return
		}
		out[i], err = frame.DecodeInto(j.dst)
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Multi-chunk sections were decoded in place; single-chunk sections
	// adopt their (possibly pack-aliasing) decode result.
	for i, j := range jobs {
		if j.dst == nil {
			secs[j.sec].Data = out[i]
		}
	}
	return secs, nil
}

// Has reports whether a committed checkpoint exists for key.
func (s *Store) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Lookup returns the metadata for key if committed. The returned Meta is a
// snapshot copy: the store's own record can be concurrently updated (Spool
// fills GzSize), and handing out the shared pointer would race readers
// against that write.
func (s *Store) Lookup(key Key) (*Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.index[key]
	if !ok {
		return nil, false
	}
	cp := *m
	return &cp, true
}

// Metas returns snapshot copies of all committed checkpoints' metadata in
// commit order (see Lookup for why copies).
func (s *Store) Metas() []*Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Meta, len(s.metas))
	for i, m := range s.metas {
		cp := *m
		out[i] = &cp
	}
	return out
}

// Dedup returns a copy of the run's chunk-dedup accounting. Only format v2
// checkpoints contribute.
func (s *Store) Dedup() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dedup
}

// ExecsFor returns the sorted execution indices with committed checkpoints
// for the loop; replay's partitioner aligns weak-initialization segment
// boundaries to these.
func (s *Store) ExecsFor(loopID string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for k := range s.index {
		if k.LoopID == loopID {
			out = append(out, k.Exec)
		}
	}
	sort.Ints(out)
	return out
}

// Spool compresses every committed segment to a .gz sibling (the simulated
// S3 spooling of paper §6; checkpoints were "compressed by a background
// process, before being spooled to an S3 bucket"). For format v2 the shared
// CHUNKS pack is spooled too, since segment files hold only directories. It
// returns the total compressed size in bytes and updates per-checkpoint
// GzSize metadata.
func (s *Store) Spool() (int64, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	var total int64
	for _, m := range s.Metas() {
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return 0, fmt.Errorf("store: spool read: %w", err)
		}
		gz, err := codec.Compress(raw)
		if err != nil {
			return 0, fmt.Errorf("store: spool compress: %w", err)
		}
		if err := os.WriteFile(s.segmentPath(m.Seq)+".gz", gz, 0o644); err != nil {
			return 0, fmt.Errorf("store: spool write: %w", err)
		}
		// Metas returned a snapshot; commit GzSize to the live record.
		s.mu.Lock()
		if live, ok := s.index[m.Key]; ok && live.Seq == m.Seq {
			live.GzSize = int64(len(gz))
		}
		s.mu.Unlock()
		total += int64(len(gz))
	}
	// The pack holds every distinct chunk of the run, so unlike segments it
	// can be far larger than any one checkpoint — stream it through gzip
	// instead of buffering it in memory.
	if pf, err := os.Open(s.packPath()); err == nil {
		defer pf.Close()
		gzPath := s.packPath() + ".gz"
		out, err := os.Create(gzPath)
		if err != nil {
			return 0, fmt.Errorf("store: spool pack create: %w", err)
		}
		zw := gzip.NewWriter(out)
		if _, err := io.Copy(zw, pf); err != nil {
			out.Close()
			return 0, fmt.Errorf("store: spool pack: %w", err)
		}
		if err := zw.Close(); err != nil {
			out.Close()
			return 0, fmt.Errorf("store: spool pack: %w", err)
		}
		if err := out.Close(); err != nil {
			return 0, fmt.Errorf("store: spool pack write: %w", err)
		}
		st, err := os.Stat(gzPath)
		if err != nil {
			return 0, fmt.Errorf("store: spool pack stat: %w", err)
		}
		total += st.Size()
	}
	return total, nil
}

// TotalSize returns the uncompressed byte total of all committed
// checkpoints.
func (s *Store) TotalSize() int64 {
	var total int64
	for _, m := range s.Metas() {
		total += m.Size
	}
	return total
}

// GC deletes segments that are no longer the latest checkpoint for their
// key, reclaiming space from superseded materializations. It returns the
// number of segments removed. The CHUNKS pack is append-only and shared
// between checkpoints, so GC never rewrites it; superseded v2 segments
// release only their (small) directory files, and their chunks remain
// available to later checkpoints that reference the same content.
func (s *Store) GC() (int, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	s.mu.Lock()
	live := map[int]bool{}
	for _, m := range s.index {
		live[m.Seq] = true
	}
	var kept []*Meta
	for _, m := range s.metas {
		if live[m.Seq] {
			kept = append(kept, m)
		}
	}
	s.metas = kept
	s.mu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "ckpt-%d.bin", &seq); err != nil {
			continue
		}
		if !live[seq] {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return removed, fmt.Errorf("store: gc remove: %w", err)
			}
			os.Remove(filepath.Join(s.dir, name+".gz"))
			removed++
		}
	}
	return removed, nil
}
