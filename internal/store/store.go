// Package store implements the on-disk checkpoint store backing Flor record
// and replay.
//
// Layout of a run directory:
//
//	<dir>/MANIFEST            append-only log of committed checkpoints
//	<dir>/ckpt-<seq>.bin      one segment file per checkpoint (CRC-framed)
//	<dir>/ckpt-<seq>.bin.gz   optional spooled (gzip) copy, the "S3 object"
//
// The design follows write-ahead-log discipline adapted to a redo-only
// workload (paper §7, "Recovery and Replay Systems"): segment files are
// written and fsynced first, then a manifest record commits them. Opening a
// store replays the manifest, verifying each record's CRC and ignoring any
// torn tail, so a crash mid-materialization never yields a checkpoint that
// replay could half-trust.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flor.dev/flor/internal/codec"
)

// Key identifies a checkpoint: the side-effects of execution number Exec of
// the loop statically identified by LoopID. Exec counts every execution of
// the loop at runtime (paper §4.2: "A loop may generate zero or many Loop
// End Checkpoints").
type Key struct {
	LoopID string
	Exec   int
}

// String renders the key for logs and file names.
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.LoopID, k.Exec) }

// Meta describes a committed checkpoint.
type Meta struct {
	Key      Key
	Seq      int   // segment sequence number
	Size     int64 // uncompressed payload size in bytes
	GzSize   int64 // compressed (spooled) size; 0 until spooled
	MaterNs  int64 // observed materialization time (serialize+write), ns
	SnapNs   int64 // observed snapshot (training-thread) time, ns
	ComputNs int64 // observed loop computation time, ns
}

// Store is a checkpoint store rooted at a run directory. It is safe for
// concurrent use: record's background materializer writes while the training
// thread queries stats.
type Store struct {
	dir string

	mu      sync.Mutex
	nextSeq int
	index   map[Key]*Meta // latest committed checkpoint per key
	metas   []*Meta       // commit order
}

// ErrNotFound is returned when no checkpoint exists for a key.
var ErrNotFound = errors.New("store: checkpoint not found")

// Open opens (or creates) a store at dir, replaying the manifest to rebuild
// the index. Torn or corrupt manifest tails are truncated away; segments
// whose files are missing or corrupt are dropped from the index.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, index: map[Key]*Meta{}}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }

func (s *Store) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.bin", seq))
}

func (s *Store) replayManifest() error {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read manifest: %w", err)
	}
	off := 0
	validated := 0
	for off < len(raw) {
		payload, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			// Torn tail: truncate the manifest back to the last good record.
			break
		}
		m, err := decodeMeta(payload)
		if err != nil {
			break
		}
		// A manifest record only counts if its segment survived intact.
		if _, statErr := os.Stat(s.segmentPath(m.Seq)); statErr == nil {
			s.index[m.Key] = m
			s.metas = append(s.metas, m)
			if m.Seq >= s.nextSeq {
				s.nextSeq = m.Seq + 1
			}
		}
		off += consumed
		validated = off
	}
	if validated < len(raw) {
		if err := os.Truncate(s.manifestPath(), int64(validated)); err != nil {
			return fmt.Errorf("store: truncate torn manifest: %w", err)
		}
	}
	return nil
}

func encodeMeta(m *Meta) []byte {
	w := codec.NewWriter()
	w.String(m.Key.LoopID)
	w.Int(m.Key.Exec)
	w.Int(m.Seq)
	w.Int(int(m.Size))
	w.Int(int(m.GzSize))
	w.Int(int(m.MaterNs))
	w.Int(int(m.SnapNs))
	w.Int(int(m.ComputNs))
	return w.Bytes()
}

func decodeMeta(b []byte) (*Meta, error) {
	r := codec.NewReader(b)
	m := &Meta{}
	var err error
	if m.Key.LoopID, err = r.String(); err != nil {
		return nil, err
	}
	fields := []*int64{nil, &m.Size, &m.GzSize, &m.MaterNs, &m.SnapNs, &m.ComputNs}
	if m.Key.Exec, err = r.Int(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Int(); err != nil {
		return nil, err
	}
	for _, f := range fields[1:] {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		*f = int64(v)
	}
	return m, nil
}

// Put durably stores payload for key and commits it to the manifest.
// snapNs and serNs are the observed snapshot and serialization times for
// this checkpoint; Put measures its own write time and records
// MaterNs = snapNs + serNs + writeNs, the full materialization cost used by
// adaptive checkpointing (paper Table 2's M_i). computNs is the loop
// execution time being memoized (C_i).
func (s *Store) Put(key Key, payload []byte, snapNs, serNs, computNs int64) (*Meta, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()
	framed := codec.Frame(payload)
	path := s.segmentPath(seq)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("store: commit segment: %w", err)
	}
	writeNs := time.Since(w0).Nanoseconds()

	m := &Meta{
		Key: key, Seq: seq, Size: int64(len(payload)),
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(codec.Frame(encodeMeta(m))); err != nil {
		return nil, fmt.Errorf("store: append manifest: %w", err)
	}
	s.index[key] = m
	s.metas = append(s.metas, m)
	return m, nil
}

// Get returns the payload of the latest committed checkpoint for key.
func (s *Store) Get(key Key) ([]byte, error) {
	s.mu.Lock()
	m, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	raw, err := os.ReadFile(s.segmentPath(m.Seq))
	if err != nil {
		return nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
	}
	payload, _, err := codec.Unframe(raw)
	if err != nil {
		return nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
	}
	return payload, nil
}

// Has reports whether a committed checkpoint exists for key.
func (s *Store) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Lookup returns the metadata for key if committed.
func (s *Store) Lookup(key Key) (*Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.index[key]
	return m, ok
}

// Metas returns metadata for all committed checkpoints in commit order.
func (s *Store) Metas() []*Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Meta, len(s.metas))
	copy(out, s.metas)
	return out
}

// ExecsFor returns the sorted execution indices with committed checkpoints
// for the loop; replay's partitioner aligns weak-initialization segment
// boundaries to these.
func (s *Store) ExecsFor(loopID string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for k := range s.index {
		if k.LoopID == loopID {
			out = append(out, k.Exec)
		}
	}
	sort.Ints(out)
	return out
}

// Spool compresses every committed segment to a .gz sibling (the simulated
// S3 spooling of paper §6; checkpoints were "compressed by a background
// process, before being spooled to an S3 bucket"). It returns the total
// compressed size in bytes and updates per-checkpoint GzSize metadata.
func (s *Store) Spool() (int64, error) {
	var total int64
	for _, m := range s.Metas() {
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return 0, fmt.Errorf("store: spool read: %w", err)
		}
		gz, err := codec.Compress(raw)
		if err != nil {
			return 0, fmt.Errorf("store: spool compress: %w", err)
		}
		if err := os.WriteFile(s.segmentPath(m.Seq)+".gz", gz, 0o644); err != nil {
			return 0, fmt.Errorf("store: spool write: %w", err)
		}
		s.mu.Lock()
		m.GzSize = int64(len(gz))
		s.mu.Unlock()
		total += int64(len(gz))
	}
	return total, nil
}

// TotalSize returns the uncompressed byte total of all committed
// checkpoints.
func (s *Store) TotalSize() int64 {
	var total int64
	for _, m := range s.Metas() {
		total += m.Size
	}
	return total
}

// GC deletes segments that are no longer the latest checkpoint for their
// key, reclaiming space from superseded materializations. It returns the
// number of segments removed.
func (s *Store) GC() (int, error) {
	s.mu.Lock()
	live := map[int]bool{}
	for _, m := range s.index {
		live[m.Seq] = true
	}
	var kept []*Meta
	for _, m := range s.metas {
		if live[m.Seq] {
			kept = append(kept, m)
		}
	}
	s.metas = kept
	s.mu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "ckpt-%d.bin", &seq); err != nil {
			continue
		}
		if !live[seq] {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return removed, fmt.Errorf("store: gc remove: %w", err)
			}
			os.Remove(filepath.Join(s.dir, name+".gz"))
			removed++
		}
	}
	return removed, nil
}
