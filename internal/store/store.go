// Package store implements the on-disk checkpoint store backing Flor record
// and replay: manifest-committed segments, content-addressed chunk packs
// (optionally sharded by hash prefix across pluggable backends), and the
// run-level dedup index.
//
// # Run-directory layout
//
// A run directory always holds the store's control plane:
//
//	<dir>/FORMAT              format marker; absent in legacy v1 runs
//	<dir>/MANIFEST            append-only log of committed checkpoints and
//	                          dedup chunk-index records
//	<dir>/ckpt-<seq>.bin      one segment file per checkpoint
//	<dir>/ckpt-<seq>.bin.gz   optional spooled (gzip) copy, the "S3 object"
//	<dir>/SHARDS              sharded stores only: extra backend root dirs
//	<dir>/SPOOL               incremental-spool state (pack coverage)
//
// Chunk bytes live in pack objects addressed through a Backend (local
// directories today; the interface is shaped so S3-style ranged backends
// slot in later):
//
//	CHUNKS                    unsharded v2: the single chunk pack
//	CHUNKS-00 .. CHUNKS-ff    sharded v2: one pack per hash-prefix shard
//
// # Formats
//
// Three layouts are readable (docs/FORMATS.md has the byte-level detail):
//
//   - v1 (legacy): one monolithic CRC-framed blob per segment, untyped
//     manifest records, no pack. Detected from the absence of the FORMAT
//     marker; v1 runs remain fully readable and writable in v1.
//   - v2 (marker "2"): a segment file holds only a CRC-framed *directory*
//     (package ckptfmt): the checkpoint's named sections and, per section,
//     the ordered content hashes of the chunks holding its bytes. The chunk
//     bytes themselves live in the CHUNKS pack as independent frames —
//     style byte (raw or deflate), CRC-32C, 128-bit content hash — written
//     once per distinct hash and shared by every checkpoint of the run that
//     references them (cross-checkpoint dedup: frozen layers, datasets, and
//     configuration are stored once). Frames encode and decode in parallel
//     across a worker pool.
//   - v2-sharded (marker "2 shards=N"): the v2 encoding with the pack and
//     the dedup index split into N shards (power of two, 2..256) by the top
//     byte of each chunk's content hash: chunk h lives in shard h[0] mod N,
//     pack object "CHUNKS-<shard in hex>". Because the shard is a pure
//     function of the hash, manifest chunk records are byte-identical to
//     unsharded v2 — only the interpretation of their offsets (relative to
//     the shard's pack, not one global pack) differs, which is why the
//     FORMAT marker changes: builds that predate sharding refuse the
//     marker instead of misreading shard-relative offsets.
//
// # Sharding and concurrency
//
// Each shard has its own append lock and its own dedup map (the two-level
// index: shard, then hash), so record-time spooling fans a checkpoint's
// fresh chunks out across shards concurrently, and replay-time restores of
// independent sections issue per-shard ranged reads instead of serializing
// on one file descriptor. Spooling to gzip is incremental per shard: only
// shards whose pack grew since the last spool are recompressed, so a
// background spool cadence touches the few shards a new checkpoint dirtied
// rather than one ever-growing pack.
//
// # Manifest and crash consistency
//
// The v2 MANIFEST interleaves two record kinds, each individually
// CRC-framed:
//
//	'C' chunk record  hash, pack offset (shard-relative when sharded),
//	                  encoded length, raw length, style — an entry of the
//	                  run's dedup chunk index
//	'M' meta record   a committed checkpoint (key, segment seq, sizes,
//	                  timings, format)
//
// Chunk records precede the meta record of the checkpoint that introduced
// them, and pack bytes are written before either, so a crash at any point
// leaves a prefix-consistent run: opening a store replays the manifest,
// verifying each record's CRC and ignoring any torn tail. The design
// follows write-ahead-log discipline adapted to a redo-only workload (paper
// §7, "Recovery and Replay Systems"): segment files and pack bytes are
// written first, then a manifest record commits them, so a crash
// mid-materialization never yields a checkpoint that replay could
// half-trust.
//
// # Compatibility guarantees
//
// Stores open without flags: the FORMAT marker (or its absence) selects the
// layout. v1 directories and unsharded v2 directories recorded by any
// earlier build open and replay byte-identically. Unknown or corrupt FORMAT
// markers surface ErrUnknownFormat (with the offending marker) rather than
// risking misparse-and-truncate of a future layout's manifest.
package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
)

// Format identifies a segment encoding.
const (
	// FormatV1 is the legacy single-blob-per-segment encoding.
	FormatV1 = 1
	// FormatV2 is the frame-based, deduplicated encoding (package ckptfmt),
	// with or without hash-prefix sharding.
	FormatV2 = 2
)

// Shard-fanout bounds for the v2-sharded layout.
const (
	// DefaultShardFanout is the shard count used when sharding is requested
	// without an explicit fanout.
	DefaultShardFanout = 16
	// maxShardFanout bounds the fanout to what one hash byte can address.
	maxShardFanout = 256
)

// Manifest record tags (format v2 manifests only).
const (
	recMeta  = 'M'
	recChunk = 'C'
)

// Control-plane file names inside a run directory.
const (
	formatFile     = "FORMAT"
	manifestFile   = "MANIFEST"
	packFile       = "CHUNKS"
	shardDirsFile  = "SHARDS"
	spoolStateFile = "SPOOL"
)

// Key identifies a checkpoint: the side-effects of execution number Exec of
// the loop statically identified by LoopID. Exec counts every execution of
// the loop at runtime (paper §4.2: "A loop may generate zero or many Loop
// End Checkpoints").
type Key struct {
	LoopID string
	Exec   int
}

// String renders the key for logs and file names.
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.LoopID, k.Exec) }

// Meta describes a committed checkpoint.
type Meta struct {
	Key      Key
	Seq      int   // segment sequence number
	Size     int64 // uncompressed payload size in bytes
	GzSize   int64 // compressed (spooled) size; 0 until spooled
	MaterNs  int64 // observed materialization time (serialize+write), ns
	SnapNs   int64 // observed snapshot (training-thread) time, ns
	ComputNs int64 // observed loop computation time, ns
	Format   int   // segment format (FormatV1 or FormatV2)
	// StoredBytes is the number of pack bytes this checkpoint added (encoded
	// size of its previously unseen chunks). Dedup hits make it smaller than
	// Size; always equal to Size's framed encoding in format v1.
	StoredBytes int64
}

// Section is one named slice of a checkpoint payload — the encoded bytes of
// one environment entry. Materialization hands sections to PutSections so
// the store can chunk, dedup, and frame them independently. On reads the
// store also reports each section's content identity (the hash of its chunk
// hashes) and logical length, so restore caches can recognize repeated
// content — and ask the store not to load it at all.
type Section struct {
	Name string
	Data []byte
	// Hash is the section's content identity on read paths (zero on writes
	// and for format-v1 fallbacks).
	Hash ckptfmt.Hash
	// RawLen is the section's logical byte length, valid even when Data was
	// skipped at the caller's request.
	RawLen int
}

// DedupStats aggregates the run's chunk-level storage accounting.
type DedupStats struct {
	LogicalBytes   int64 // raw bytes referenced by all committed checkpoints
	StoredRawBytes int64 // raw bytes of distinct chunks actually stored
	StoredEncBytes int64 // encoded (post-style) bytes appended to the packs
	ChunkRefs      int64 // chunk references across all checkpoints
	ChunksStored   int64 // distinct chunks written to the packs
}

// Ratio returns the dedup ratio: logical bytes per stored raw byte. A run
// with no repeated state scores 1.0; frozen-layer workloads score higher.
func (d DedupStats) Ratio() float64 {
	if d.StoredRawBytes == 0 {
		return 1
	}
	return float64(d.LogicalBytes) / float64(d.StoredRawBytes)
}

// chunkLoc locates one content-addressed frame inside its shard's pack.
type chunkLoc struct {
	Off    int64 // offset within the shard's pack object
	EncLen int
	RawLen int
	Style  byte
}

// shard is one hash-prefix slice of the chunk store: an independently
// appendable pack object plus its level-two dedup map. Every shard has its
// own lock, so appends and index probes on different shards never contend.
// Lock order: Store.mu may be held while taking shard.mu, never the
// reverse.
type shard struct {
	name string // pack object name within the backend

	mu         sync.Mutex
	chunks     map[ckptfmt.Hash]chunkLoc
	packLen    int64 // committed pack length
	spooledLen int64 // pack length covered by the last spool
	spooledGz  int64 // compressed size of that spool artifact
	// broken latches the first append failure whose length resync also
	// failed: packLen can no longer be trusted, and appending at an unknown
	// offset would commit wrong-offset chunk records into the manifest.
	// Reads stay valid (committed locations are unaffected).
	broken error
}

// Store is a checkpoint store rooted at a run directory. It is safe for
// concurrent use: record's background materializer (or several concurrent
// spoolers) write while the training thread queries stats, and replay
// workers read in parallel.
type Store struct {
	dir      string
	format   int
	fanout   int  // 0 for v1; 1 for unsharded v2; >1 for sharded v2
	recorded bool // a manifest existed at open (detectDir's Layout.Recorded)
	backend  Backend
	readOnly bool

	mu      sync.Mutex
	nextSeq int
	index   map[Key]*Meta // latest committed checkpoint per key
	metas   []*Meta       // commit order
	dedup   DedupStats

	// spoolMu serializes whole Spool passes: overlapping passes (a periodic
	// spool tick firing while a slow one still compresses) would race their
	// gz rewrites of shards that grew in between.
	spoolMu sync.Mutex

	shards []*shard // two-level dedup index: shards[shardOf(h)].chunks[h]
	// droppedShards names packs whose committed chunk records point past the
	// pack's real end (pack lost or truncated — never a crash artifact,
	// since pack bytes land before manifest records). Read-only opens
	// degrade gracefully; writable opens refuse, because appending to a
	// rewound pack would re-commit hashes at offsets the old records still
	// claim and poison the manifest permanently.
	droppedShards []string
}

// ErrNotFound is returned when no checkpoint exists for a key.
var ErrNotFound = errors.New("store: checkpoint not found")

// ErrReadOnly is returned by write operations on a read-only store.
var ErrReadOnly = errors.New("store: read-only")

// ErrUnknownFormat is returned (wrapped in an *UnknownFormatError carrying
// the offending marker) when a run directory's FORMAT marker names a layout
// this build does not understand — a future version or corruption. The
// store refuses rather than misparse the manifest as a torn tail and
// truncate the run away; servers surface it as a client error when a bad
// directory is registered.
var ErrUnknownFormat = errors.New("store: unknown store format")

// UnknownFormatError reports the unrecognized FORMAT marker of a run
// directory. errors.Is(err, ErrUnknownFormat) matches it.
type UnknownFormatError struct {
	Dir    string
	Marker string // the marker as found on disk, whitespace-trimmed
}

// Error implements error.
func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("store: unknown format marker %q in %s (newer layout or corrupt FORMAT file)", e.Marker, e.Dir)
}

// Is reports ErrUnknownFormat identity for errors.Is.
func (e *UnknownFormatError) Is(target error) bool { return target == ErrUnknownFormat }

// Options configures OpenWith. The zero value reproduces Open: auto-detect
// format, single local directory, read-write.
type Options struct {
	// Format forces the segment format for writes (FormatV1 or FormatV2);
	// 0 auto-detects. Forcing a format that disagrees with a recorded
	// directory is refused.
	Format int
	// ShardFanout selects the chunk-pack layout for new v2 stores: 0 keeps
	// the existing layout (single pack for new directories), 1 explicitly
	// requests the single pack, and a power of two in [2, 256] requests
	// hash-prefix sharding at that fanout. Opening an existing store with a
	// conflicting non-zero fanout is refused.
	ShardFanout int
	// ShardDirs adds extra root directories to the default local backend:
	// shard packs spread across the run directory plus these roots. The
	// list is persisted in the run directory's SHARDS file so later opens
	// (including OpenReadOnly) find the packs without options.
	ShardDirs []string
	// PinShardDirs makes ShardDirs authoritative even when empty: the open
	// fails unless the directory's persisted SHARDS list matches ShardDirs
	// exactly (resolved), instead of adopting whatever the file says.
	// Servers pin the roots they validated at registration so a later
	// SHARDS rewrite cannot redirect their reads.
	PinShardDirs bool
	// Backend overrides pack storage entirely (ShardDirs is then ignored).
	// The control plane (FORMAT, MANIFEST, segments) stays in the run
	// directory regardless.
	Backend Backend
	// ReadOnly opens the store for shared read-only use: nothing on disk is
	// touched and every write operation fails with ErrReadOnly.
	ReadOnly bool
}

// Open opens (or creates) a store at dir, replaying the manifest to rebuild
// the checkpoint index and the dedup chunk index. Torn or corrupt manifest
// tails are truncated away; segments whose files are missing or corrupt are
// dropped from the index. New stores are created at format v2; directories
// recorded before the FORMAT marker existed open as v1.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenFormat opens a store forcing the given segment format for writes
// (FormatV1 or FormatV2); format 0 auto-detects: the FORMAT marker if
// present, v1 for pre-existing unmarked runs, v2 for new directories.
// Benchmarks use the explicit form to compare the write paths.
func OpenFormat(dir string, format int) (*Store, error) {
	return OpenWith(dir, Options{Format: format})
}

// OpenReadOnly opens an existing recorded run for shared read-only use — the
// serving daemon's open path. It touches nothing on disk: the FORMAT marker
// is not (re)written, a torn manifest tail is skipped rather than truncated,
// and every write operation (Put, PutSections, Spool, GC) fails with
// ErrReadOnly. The returned store is safe for concurrent Get/GetSections
// from many goroutines.
func OpenReadOnly(dir string) (*Store, error) {
	return OpenWith(dir, Options{ReadOnly: true})
}

// OpenWith opens (or, unless o.ReadOnly, creates) a store at dir under the
// given options. See Options for the layout and backend knobs; Open,
// OpenFormat and OpenReadOnly are thin wrappers.
func OpenWith(dir string, o Options) (*Store, error) {
	if o.ReadOnly {
		// A read-only open must not mint an empty store out of a typo'd
		// path: the directory has to exist already.
		if st, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: open read-only: %w", err)
		} else if !st.IsDir() {
			return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	if o.ShardFanout < 0 || o.ShardFanout > maxShardFanout ||
		(o.ShardFanout > 1 && o.ShardFanout&(o.ShardFanout-1) != 0) {
		return nil, fmt.Errorf("store: shard fanout %d: want a power of two in [2, %d]", o.ShardFanout, maxShardFanout)
	}
	s := &Store{dir: dir, readOnly: o.ReadOnly, index: map[Key]*Meta{}}
	if err := s.detectLayout(o); err != nil {
		return nil, err
	}
	// Extra roots are a sharded-layout feature: relocating the unsharded
	// CHUNKS pack (or a v1 store) out of the run directory would leave the
	// plain "2" marker lying to pre-sharding builds, which would misread
	// the run (empty pack, dropped chunk records) instead of refusing.
	// (Pinning an empty root list onto an unsharded store is fine — that is
	// exactly what the layout declares.)
	if len(o.ShardDirs) > 0 && s.fanout <= 1 {
		return nil, fmt.Errorf("store: shard dirs require a sharded store (fanout %d); pass ShardFanout", s.fanout)
	}
	if err := s.initBackend(o); err != nil {
		return nil, err
	}
	if err := s.initShards(); err != nil {
		return nil, err
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	if !s.readOnly && len(s.droppedShards) > 0 {
		return nil, fmt.Errorf("%w: shard pack %s is missing or truncated (committed chunk records point past its end); writable open refused — repair or open read-only",
			codec.ErrCorrupt, strings.Join(s.droppedShards, ", "))
	}
	s.loadSpoolState()
	return s, nil
}

// ReadOnly reports whether the store rejects writes.
func (s *Store) ReadOnly() bool { return s.readOnly }

// Layout describes a run directory's on-disk store layout, detected without
// replaying its manifest.
type Layout struct {
	// Format is FormatV1 or FormatV2 (what a fresh open would use).
	Format int
	// ShardFanout is 0 for v1, 1 for unsharded v2, and the shard count for
	// sharded v2.
	ShardFanout int
	// Recorded reports whether the directory holds a committed run (a
	// manifest exists). False for fresh or unrelated directories, which a
	// plain open would happily initialize as an empty v2 store.
	Recorded bool
}

// Sharded reports whether the layout splits the pack by hash prefix.
func (l Layout) Sharded() bool { return l.ShardFanout > 1 }

// String renders the layout for listings ("v1", "v2", "v2-sharded/16").
func (l Layout) String() string {
	switch {
	case l.Format == FormatV1:
		return "v1"
	case l.Sharded():
		return fmt.Sprintf("v2-sharded/%d", l.ShardFanout)
	default:
		return "v2"
	}
}

// readShardDirsFile returns the SHARDS file's entries as persisted (not
// resolved); nil when the file is absent. The single parser behind both
// ShardRoots and the open path, so confinement checks and actual opens can
// never disagree about what the file says.
func readShardDirsFile(dir string) ([]string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, shardDirsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read shard dirs: %w", err)
	}
	var entries []string
	for _, ln := range strings.Split(string(raw), "\n") {
		if ln = strings.TrimSpace(ln); ln != "" {
			entries = append(entries, ln)
		}
	}
	return entries, nil
}

// resolveShardRoot resolves one SHARDS entry against the run directory.
func resolveShardRoot(dir, entry string) string {
	if !filepath.IsAbs(entry) {
		return filepath.Join(dir, entry)
	}
	return entry
}

// ShardRoots returns the extra backend root directories a plain open of dir
// would use (the persisted SHARDS list, relative entries resolved against
// dir); empty for unsharded and v1 stores. Registration paths that confine
// run directories use it to confine the shard roots too.
func ShardRoots(dir string) ([]string, error) {
	entries, err := readShardDirsFile(dir)
	if err != nil {
		return nil, err
	}
	roots := make([]string, len(entries))
	for i, e := range entries {
		roots[i] = resolveShardRoot(dir, e)
	}
	return roots, nil
}

// DetectLayout inspects a run directory's FORMAT marker (and, absent one,
// its manifest) and reports the layout a plain open would use, without
// opening the store. Unknown markers surface ErrUnknownFormat; registration
// paths use this to reject bad directories before any query touches them.
func DetectLayout(dir string) (Layout, error) {
	if st, err := os.Stat(dir); err != nil {
		return Layout{}, fmt.Errorf("store: detect layout: %w", err)
	} else if !st.IsDir() {
		return Layout{}, fmt.Errorf("store: detect layout: %s is not a directory", dir)
	}
	l, _, err := detectDir(dir)
	return l, err
}

// detectDir reads a directory's FORMAT marker (falling back on manifest
// presence) and reports the detected layout plus whether a marker was
// found — the shared core of DetectLayout and Store.detectLayout.
func detectDir(dir string) (Layout, bool, error) {
	recorded := false
	if _, merr := os.Stat(filepath.Join(dir, manifestFile)); merr == nil {
		recorded = true
	}
	raw, err := os.ReadFile(filepath.Join(dir, formatFile))
	switch {
	case err == nil:
		format, fanout, perr := parseFormatMarker(raw)
		if perr != nil {
			// An unknown marker means a newer (or corrupted) layout whose
			// manifest records this build would misparse as a torn tail and
			// truncate away — refuse rather than destroy.
			return Layout{}, true, &UnknownFormatError{Dir: dir, Marker: strings.TrimSpace(string(raw))}
		}
		return Layout{Format: format, ShardFanout: fanout, Recorded: recorded}, true, nil
	case errors.Is(err, os.ErrNotExist):
		if recorded {
			return Layout{Format: FormatV1, Recorded: true}, false, nil // pre-FORMAT-marker run
		}
		return Layout{Format: FormatV2, ShardFanout: 1}, false, nil // fresh directory
	default:
		return Layout{}, false, fmt.Errorf("store: read format marker: %w", err)
	}
}

// parseFormatMarker decodes a FORMAT file: "2" (unsharded v2) or
// "2 shards=N" (sharded v2, N a power of two in [2, 256]).
func parseFormatMarker(raw []byte) (format, fanout int, err error) {
	marker := strings.TrimSpace(string(raw))
	if marker == "2" {
		return FormatV2, 1, nil
	}
	if rest, ok := strings.CutPrefix(marker, "2 shards="); ok {
		n, perr := strconv.Atoi(rest)
		if perr == nil && n >= 2 && n <= maxShardFanout && n&(n-1) == 0 {
			return FormatV2, n, nil
		}
	}
	return 0, 0, fmt.Errorf("unknown format marker %q", marker)
}

func formatMarker(fanout int) []byte {
	if fanout > 1 {
		return []byte(fmt.Sprintf("2 shards=%d\n", fanout))
	}
	return []byte("2\n")
}

// detectLayout resolves the store's format and shard fanout from the FORMAT
// marker, the options, and (for unmarked directories) the presence of a
// manifest, writing the marker for new writable v2 stores.
func (s *Store) detectLayout(o Options) error {
	l, hasMarker, err := detectDir(s.dir)
	if err != nil {
		return err
	}
	detected, detFanout := l.Format, l.ShardFanout
	if !hasMarker && detected == FormatV2 && o.ShardFanout > 1 {
		detFanout = o.ShardFanout // fresh directory: honor the requested fanout
	}
	// A forced format or fanout may only disagree with a directory that has
	// no committed state: opening a v2 manifest as v1 (or a sharded one as
	// unsharded) would misparse records or misplace every chunk.
	s.recorded = l.Recorded
	recorded := l.Recorded
	if o.Format != 0 && o.Format != detected {
		if recorded {
			return fmt.Errorf("store: cannot force format v%d on %s (recorded as v%d)", o.Format, s.dir, detected)
		}
		detected = o.Format
		if detected == FormatV1 {
			detFanout = 0
		}
	}
	if o.ShardFanout != 0 && detected == FormatV2 && o.ShardFanout != detFanout {
		if recorded {
			return fmt.Errorf("store: cannot reshard %s to fanout %d (recorded at fanout %d)", s.dir, o.ShardFanout, detFanout)
		}
		detFanout = o.ShardFanout
	}
	if o.ShardFanout > 1 && detected == FormatV1 {
		return fmt.Errorf("store: format v1 cannot shard (fanout %d requested)", o.ShardFanout)
	}
	s.format = detected
	s.fanout = detFanout
	if s.format == FormatV2 && !s.readOnly {
		// Write the marker only when absent or different, and via
		// write-then-rename: rewriting it in place on every open would leave
		// a crash window in which a torn marker bricks an otherwise intact
		// run behind the UnknownFormatError refusal.
		want := formatMarker(s.fanout)
		if cur, err := os.ReadFile(s.formatPath()); err != nil || !bytes.Equal(cur, want) {
			if err := writeFileAtomic(s.formatPath(), want); err != nil {
				return fmt.Errorf("store: write format marker: %w", err)
			}
		}
	}
	return nil
}

// initBackend selects the pack backend: an explicit one from the options,
// or a local-directory backend over the run directory plus any extra shard
// roots (from the options for new stores, from the SHARDS file for
// reopens).
func (s *Store) initBackend(o Options) error {
	if o.Backend != nil {
		s.backend = o.Backend
		return nil
	}
	persisted, err := readShardDirsFile(s.dir)
	if err != nil {
		return err
	}
	extra := o.ShardDirs
	if len(extra) == 0 && !o.PinShardDirs {
		extra = persisted
	} else {
		// Pack placement is a function of the root list (order included), so
		// a recorded store's roots are immutable: silently adopting a
		// different list would relocate every lookup away from the real
		// packs — and rewriting SHARDS would make even plain opens stay
		// broken. Refuse, like a conflicting shard fanout. Comparison is on
		// resolved roots, so callers may pin the roots a registration-time
		// ShardRoots reported and a later SHARDS rewrite fails the open
		// instead of silently redirecting reads.
		resolve := func(entries []string) []string {
			out := make([]string, len(entries))
			for i, e := range entries {
				out[i] = resolveShardRoot(s.dir, e)
			}
			return out
		}
		same := slices.Equal(resolve(extra), resolve(persisted))
		if s.recorded && !same {
			return fmt.Errorf("store: cannot relocate shard packs of %s (recorded with shard dirs %q, got %q)",
				s.dir, persisted, extra)
		}
		if !s.readOnly && !same {
			// Persist the extra roots so later plain opens find the packs.
			if err := writeFileAtomic(s.shardDirsPath(), []byte(strings.Join(extra, "\n")+"\n")); err != nil {
				return fmt.Errorf("store: write shard dirs: %w", err)
			}
		}
	}
	roots := []string{s.dir}
	for _, d := range extra {
		roots = append(roots, resolveShardRoot(s.dir, d))
	}
	if s.readOnly {
		s.backend = &DirBackend{roots: roots}
		return nil
	}
	b, err := NewDirBackend(roots...)
	if err != nil {
		return err
	}
	s.backend = b
	return nil
}

// initShards builds the shard table (one entry for unsharded v2) and reads
// each pack's committed length from the backend.
func (s *Store) initShards() error {
	if s.format != FormatV2 {
		return nil
	}
	if s.fanout <= 1 {
		s.shards = []*shard{{name: packFile, chunks: map[ckptfmt.Hash]chunkLoc{}}}
	} else {
		s.shards = make([]*shard, s.fanout)
		for i := range s.shards {
			s.shards[i] = &shard{name: fmt.Sprintf("%s-%02x", packFile, i), chunks: map[ckptfmt.Hash]chunkLoc{}}
		}
	}
	for _, sh := range s.shards {
		n, err := s.backend.Size(sh.name)
		if err != nil {
			return fmt.Errorf("store: shard %s: %w", sh.name, err)
		}
		sh.packLen = n
	}
	return nil
}

// shardOf maps a content hash to its shard index: the hash's top byte
// masked to the fanout. The shard is a pure function of the hash, so
// manifest records never need to name it.
func (s *Store) shardOf(h ckptfmt.Hash) int {
	return int(h[0]) & (len(s.shards) - 1)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Format returns the segment format used for writes.
func (s *Store) Format() int { return s.format }

// ShardFanout returns the chunk-pack shard count: 0 for v1 stores, 1 for
// the unsharded v2 layout, the fanout for sharded stores.
func (s *Store) ShardFanout() int {
	if s.format != FormatV2 {
		return 0
	}
	return len(s.shards)
}

// Layout returns the store's detected layout.
func (s *Store) Layout() Layout {
	s.mu.Lock()
	recorded := len(s.metas) > 0
	s.mu.Unlock()
	return Layout{Format: s.format, ShardFanout: s.ShardFanout(), Recorded: recorded}
}

func (s *Store) formatPath() string     { return filepath.Join(s.dir, formatFile) }
func (s *Store) manifestPath() string   { return filepath.Join(s.dir, manifestFile) }
func (s *Store) shardDirsPath() string  { return filepath.Join(s.dir, shardDirsFile) }
func (s *Store) spoolStatePath() string { return filepath.Join(s.dir, spoolStateFile) }

func (s *Store) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.bin", seq))
}

func (s *Store) replayManifest() error {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read manifest: %w", err)
	}
	off := 0
	validated := 0
	for off < len(raw) {
		payload, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			// Torn tail: truncate the manifest back to the last good record.
			break
		}
		if !s.applyRecord(payload) {
			break
		}
		off += consumed
		validated = off
	}
	if validated < len(raw) && !s.readOnly {
		if err := os.Truncate(s.manifestPath(), int64(validated)); err != nil {
			return fmt.Errorf("store: truncate torn manifest: %w", err)
		}
	}
	return nil
}

// applyRecord replays one manifest record payload into the in-memory state,
// returning false when the record is undecodable (treated as a torn tail).
// It runs single-threaded at open, before the store is shared.
func (s *Store) applyRecord(payload []byte) bool {
	body := payload
	tag := byte(recMeta)
	if s.format == FormatV2 {
		if len(payload) == 0 {
			return false
		}
		tag = payload[0]
		body = payload[1:]
	}
	switch tag {
	case recChunk:
		hash, loc, err := decodeChunkRecord(body)
		if err != nil {
			return false
		}
		sh := s.shards[s.shardOf(hash)]
		// Defensive: a chunk record pointing past its shard pack's end would
		// make every referencing checkpoint unreadable; drop it (and let
		// reads of those checkpoints surface ErrCorrupt naming the shard)
		// rather than trust it. The shard is remembered so writable opens
		// can refuse (see droppedShards).
		if loc.Off+int64(loc.EncLen) > sh.packLen {
			if !slices.Contains(s.droppedShards, sh.name) {
				s.droppedShards = append(s.droppedShards, sh.name)
			}
			return true
		}
		if _, dup := sh.chunks[hash]; !dup {
			sh.chunks[hash] = loc
			s.dedup.ChunksStored++
			s.dedup.StoredRawBytes += int64(loc.RawLen)
			s.dedup.StoredEncBytes += int64(loc.EncLen)
		}
	case recMeta:
		m, err := decodeMeta(body)
		if err != nil {
			return false
		}
		// A manifest record only counts if its segment survived intact.
		if _, statErr := os.Stat(s.segmentPath(m.Seq)); statErr == nil {
			s.commitLocked(m)
		}
		if m.Seq >= s.nextSeq {
			s.nextSeq = m.Seq + 1
		}
	default:
		return false
	}
	return true
}

// commitLocked installs a meta into the index and accumulates dedup stats.
func (s *Store) commitLocked(m *Meta) {
	s.index[m.Key] = m
	s.metas = append(s.metas, m)
	if m.Format == FormatV2 {
		s.dedup.LogicalBytes += m.Size
	}
}

func encodeMeta(m *Meta) []byte {
	w := codec.NewWriter()
	w.String(m.Key.LoopID)
	w.Int(m.Key.Exec)
	w.Int(m.Seq)
	w.Int(int(m.Size))
	w.Int(int(m.GzSize))
	w.Int(int(m.MaterNs))
	w.Int(int(m.SnapNs))
	w.Int(int(m.ComputNs))
	// Trailing fields added with format v2; v1 decoders never read this far.
	w.Int(m.Format)
	w.Int(int(m.StoredBytes))
	return w.Bytes()
}

func decodeMeta(b []byte) (*Meta, error) {
	r := codec.NewReader(b)
	m := &Meta{}
	var err error
	if m.Key.LoopID, err = r.String(); err != nil {
		return nil, err
	}
	fields := []*int64{nil, &m.Size, &m.GzSize, &m.MaterNs, &m.SnapNs, &m.ComputNs}
	if m.Key.Exec, err = r.Int(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Int(); err != nil {
		return nil, err
	}
	for _, f := range fields[1:] {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		*f = int64(v)
	}
	// Records written before format v2 end here.
	m.Format = FormatV1
	m.StoredBytes = m.Size
	if r.Remaining() > 0 {
		if m.Format, err = r.Int(); err != nil {
			return nil, err
		}
		sb, err := r.Int()
		if err != nil {
			return nil, err
		}
		m.StoredBytes = int64(sb)
	}
	return m, nil
}

func encodeChunkRecord(hash ckptfmt.Hash, loc chunkLoc) []byte {
	w := codec.NewWriter()
	w.RawBytes(hash[:])
	w.Int(int(loc.Off))
	w.Int(loc.EncLen)
	w.Int(loc.RawLen)
	w.Uvarint(uint64(loc.Style))
	return w.Bytes()
}

func decodeChunkRecord(b []byte) (hash ckptfmt.Hash, loc chunkLoc, err error) {
	r := codec.NewReader(b)
	hb, err := r.RawBytes()
	if err != nil {
		return hash, loc, err
	}
	if len(hb) != 16 {
		return hash, loc, fmt.Errorf("%w: chunk record hash length %d", codec.ErrCorrupt, len(hb))
	}
	copy(hash[:], hb)
	off, err := r.Int()
	if err != nil {
		return hash, loc, err
	}
	if loc.EncLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	if loc.RawLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	style, err := r.Uvarint()
	if err != nil {
		return hash, loc, err
	}
	loc.Off = int64(off)
	loc.Style = byte(style)
	return hash, loc, nil
}

// frameRecord wraps a manifest record payload with its type tag (v2) and CRC
// frame.
func (s *Store) frameRecord(tag byte, body []byte) []byte {
	if s.format != FormatV2 {
		return codec.Frame(body)
	}
	payload := make([]byte, 0, len(body)+1)
	payload = append(payload, tag)
	payload = append(payload, body...)
	return codec.Frame(payload)
}

// Put durably stores payload for key and commits it to the manifest.
// snapNs and serNs are the observed snapshot and serialization times for
// this checkpoint; Put measures its own write time and records
// MaterNs = snapNs + serNs + writeNs, the full materialization cost used by
// adaptive checkpointing (paper Table 2's M_i). computNs is the loop
// execution time being memoized (C_i).
//
// In format v2 the payload is stored as a single opaque section — chunked,
// content-addressed, and deduplicated like any other checkpoint, but with no
// per-entry structure. PutSections is the structured (and more parallel)
// write path.
func (s *Store) Put(key Key, payload []byte, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format == FormatV2 {
		return s.putV2(key, []Section{{Data: payload}}, true, snapNs, serNs, computNs)
	}

	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()
	framed := codec.Frame(payload)
	if err := s.writeSegment(seq, framed); err != nil {
		return nil, err
	}
	writeNs := time.Since(w0).Nanoseconds()

	m := &Meta{
		Key: key, Seq: seq, Size: int64(len(payload)),
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV1, StoredBytes: int64(len(framed)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendManifestLocked(s.frameRecord(recMeta, encodeMeta(m))); err != nil {
		return nil, err
	}
	s.commitLocked(m)
	return m, nil
}

// PutSections durably stores a checkpoint as named sections (format v2
// stores only). Sections are chunked, frames for previously unseen chunks
// are encoded in parallel and appended to their hash shards' packs
// (concurrently across shards), and the segment directory plus manifest
// records commit the checkpoint. PutSections is safe to call from several
// goroutines at once: shards serialize their own appends and the manifest
// commit is atomic per checkpoint. See Put for the timing parameters.
func (s *Store) PutSections(key Key, secs []Section, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format != FormatV2 {
		return nil, fmt.Errorf("store: PutSections requires format v2 (store is v%d)", s.format)
	}
	return s.putV2(key, secs, false, snapNs, serNs, computNs)
}

func (s *Store) putV2(key Key, secs []Section, opaque bool, snapNs, serNs, computNs int64) (*Meta, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()

	// Chunk every section and hash every chunk in parallel; the directory is
	// fully determined by content before any byte hits disk.
	dir := ckptfmt.Directory{Opaque: opaque, Sections: make([]ckptfmt.SectionRef, len(secs))}
	var flat [][]byte
	var refs []*ckptfmt.ChunkRef
	var logical int64
	for i, sec := range secs {
		chunks := codec.SplitChunks(sec.Data, ckptfmt.DefaultChunkSize)
		dir.Sections[i] = ckptfmt.SectionRef{Name: sec.Name, Chunks: make([]ckptfmt.ChunkRef, len(chunks))}
		for j, c := range chunks {
			dir.Sections[i].Chunks[j] = ckptfmt.ChunkRef{RawLen: len(c)}
			flat = append(flat, c)
			refs = append(refs, &dir.Sections[i].Chunks[j])
		}
		logical += int64(len(sec.Data))
	}
	hashes := make([]ckptfmt.Hash, len(flat))
	ckptfmt.ParallelDo(len(flat), func(i int) { hashes[i] = ckptfmt.HashChunk(flat[i]) })
	for i, h := range hashes {
		refs[i].Hash = h
	}

	// Select chunks the run has not stored yet (deduplicating within this
	// checkpoint too), probing each shard's index under its own lock. A
	// concurrent put racing on the same fresh chunk stores it twice — benign
	// pack bloat, since locations publish only with the manifest commit and
	// the first committed record wins at replay.
	byShard := map[int][]int{}
	for i, h := range hashes {
		si := s.shardOf(h)
		byShard[si] = append(byShard[si], i)
	}
	var newIdx []int
	fresh := map[ckptfmt.Hash]bool{}
	for si, idxs := range byShard {
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			h := hashes[i]
			if _, ok := sh.chunks[h]; !ok && !fresh[h] {
				fresh[h] = true
				newIdx = append(newIdx, i)
			}
		}
		sh.mu.Unlock()
	}
	sort.Ints(newIdx) // deterministic frame order regardless of shard map iteration
	newChunks := make([][]byte, len(newIdx))
	for i, idx := range newIdx {
		newChunks[i] = flat[idx]
	}
	frames := ckptfmt.EncodeChunks(newChunks)

	// Segment file: the CRC-framed directory. Written before the manifest
	// record so a crash never commits a directory-less checkpoint.
	if err := s.writeSegment(seq, codec.Frame(ckptfmt.EncodeDirectory(&dir))); err != nil {
		return nil, err
	}

	// Fan the fresh frames out across their shards: each involved shard
	// serializes its frames and appends them to its own pack under its own
	// lock, concurrently with the other shards. Pack bytes land before any
	// manifest record references them.
	frameShards := map[int][]int{} // shard index -> indices into frames
	for i := range frames {
		si := s.shardOf(frames[i].Hash)
		frameShards[si] = append(frameShards[si], i)
	}
	involved := make([]int, 0, len(frameShards))
	for si := range frameShards {
		involved = append(involved, si)
	}
	locs := make([]chunkLoc, len(frames))
	appendErrs := make([]error, len(involved))
	ckptfmt.ParallelDo(len(involved), func(k int) {
		sh := s.shards[involved[k]]
		idxs := frameShards[involved[k]]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.broken != nil {
			appendErrs[k] = fmt.Errorf("store: shard %s unusable after failed append: %w", sh.name, sh.broken)
			return
		}
		var buf []byte
		off := sh.packLen
		for _, i := range idxs {
			before := len(buf)
			buf = frames[i].Append(buf)
			wire := len(buf) - before
			locs[i] = chunkLoc{Off: off, EncLen: wire, RawLen: frames[i].RawLen, Style: frames[i].Style}
			off += int64(wire)
		}
		if len(buf) == 0 {
			return
		}
		if err := s.backend.Append(sh.name, buf); err != nil {
			// A partial append leaves the pack length unknown; resync from
			// the backend so later appends don't commit bad offsets. If even
			// the resync fails, latch the shard broken: appending at a
			// guessed offset would poison the manifest permanently.
			if n, serr := s.backend.Size(sh.name); serr == nil {
				sh.packLen = n
			} else {
				sh.broken = err
			}
			appendErrs[k] = fmt.Errorf("store: shard %s: %w", sh.name, err)
			return
		}
		sh.packLen = off
	})
	for _, err := range appendErrs {
		if err != nil {
			return nil, err
		}
	}

	// Commit under the store lock: chunk records, then the meta record — the
	// manifest never references bytes that aren't on disk. Chunk locations
	// publish to the shard indexes only now, so concurrent puts never dedup
	// against a chunk whose manifest record could still be lost to a crash.
	s.mu.Lock()
	defer s.mu.Unlock()
	var record []byte
	var stored int64
	for i := range frames {
		stored += int64(locs[i].EncLen)
		s.dedup.ChunksStored++
		s.dedup.StoredRawBytes += int64(locs[i].RawLen)
		s.dedup.StoredEncBytes += int64(locs[i].EncLen)
		record = append(record, s.frameRecord(recChunk, encodeChunkRecord(frames[i].Hash, locs[i]))...)
	}
	s.dedup.ChunkRefs += int64(len(flat))
	writeNs := time.Since(w0).Nanoseconds()
	m := &Meta{
		Key: key, Seq: seq, Size: logical,
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV2, StoredBytes: stored,
	}
	record = append(record, s.frameRecord(recMeta, encodeMeta(m))...)
	if err := s.appendManifestLocked(record); err != nil {
		return nil, err
	}
	for si, idxs := range frameShards {
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			sh.chunks[frames[i].Hash] = locs[i]
		}
		sh.mu.Unlock()
	}
	s.commitLocked(m)
	return m, nil
}

// writeFileAtomic commits data to path via write-then-rename, so readers
// (and existence-based skip checks) never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// writeSegment commits framed bytes to segment seq via write-then-rename.
func (s *Store) writeSegment(seq int, framed []byte) error {
	if err := writeFileAtomic(s.segmentPath(seq), framed); err != nil {
		return fmt.Errorf("store: write segment: %w", err)
	}
	return nil
}

func (s *Store) appendManifestLocked(record []byte) error {
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record); err != nil {
		return fmt.Errorf("store: append manifest: %w", err)
	}
	return nil
}

// Get returns the payload of the latest committed checkpoint for key. For
// format v2 checkpoints the payload is reassembled from its frames (decoded
// in parallel) into the exact byte stream Put or the bundle encoder
// originally produced, so callers are format-agnostic.
func (s *Store) Get(key Key) ([]byte, error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, err
	}
	if m.Format != FormatV2 {
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
		}
		payload, _, err := codec.Unframe(raw)
		if err != nil {
			return nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
		}
		return payload, nil
	}
	secs, err := s.readSections(m, dir, nil)
	if err != nil {
		return nil, err
	}
	if dir.Opaque {
		if len(secs) == 1 {
			return secs[0].Data, nil
		}
		var out []byte
		for _, sec := range secs {
			out = append(out, sec.Data...)
		}
		return out, nil
	}
	// Reassemble the v1 bundle encoding: count, then (name, payload) pairs —
	// byte-identical to what the bundle encoder originally produced.
	w := codec.NewWriter()
	w.Uvarint(uint64(len(secs)))
	for _, sec := range secs {
		w.String(sec.Name)
		w.RawAppend(sec.Data)
	}
	return w.Bytes(), nil
}

// GetSections returns the named sections of a format-v2 checkpoint, decoded
// in parallel. ok is false when the checkpoint is stored in format v1 or as
// an opaque blob; callers fall back to Get + whole-payload decoding.
//
// When have is non-nil, sections whose content identity it reports as
// already held are returned with nil Data (Hash and RawLen still set) and
// their chunks are never read — the disk, CRC, and reassembly cost of
// repeated content (frozen layers restored epoch after epoch) drops to a
// directory read.
func (s *Store) GetSections(key Key, have func(ckptfmt.Hash) bool) (secs []Section, ok bool, err error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, false, err
	}
	if m.Format != FormatV2 || dir.Opaque {
		return nil, false, nil
	}
	secs, err = s.readSections(m, dir, have)
	if err != nil {
		return nil, false, err
	}
	return secs, true, nil
}

// segmentDir resolves key to its meta and, for v2 checkpoints, its decoded
// segment directory.
func (s *Store) segmentDir(key Key) (*Meta, *ckptfmt.Directory, error) {
	s.mu.Lock()
	m, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if m.Format != FormatV2 {
		return m, nil, nil
	}
	raw, err := os.ReadFile(s.segmentPath(m.Seq))
	if err != nil {
		return nil, nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
	}
	payload, _, err := codec.Unframe(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
	}
	dir, err := ckptfmt.DecodeDirectory(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d directory: %w", m.Seq, err)
	}
	return m, dir, nil
}

// chunkJob is one frame to fetch and decode while materializing sections.
type chunkJob struct {
	sec   int
	shard int
	dst   []byte // decode destination (nil → alias raw frame, zero copy)
	enc   []byte // encoded frame bytes, filled by the per-shard read phase
	loc   chunkLoc
	ref   ckptfmt.ChunkRef
}

// readSections materializes sections of a v2 directory: chunk frames are
// fetched with per-shard ranged reads — shards read concurrently, so
// restores of independent sections never serialize on one file descriptor —
// and decoded in parallel across the worker pool. Sections whose identity
// the optional have callback claims are skipped (returned with nil Data).
// Within a shard, reads of chunks that sit contiguously in the pack — the
// common case, since a checkpoint's fresh chunks are appended together —
// coalesce into a single ranged read.
//
// The have callback is invoked without any store lock held, and each
// shard's lock is taken only briefly to resolve chunk locations: concurrent
// readers from many server goroutines must not serialize on each other's
// cache probes.
func (s *Store) readSections(m *Meta, dir *ckptfmt.Directory, have func(ckptfmt.Hash) bool) ([]Section, error) {
	secs := make([]Section, len(dir.Sections))
	// Phase 1, lock-free: compute each section's content identity and ask
	// the caller which sections it already holds.
	var load []int
	for i := range dir.Sections {
		ds := &dir.Sections[i]
		hs := make([]ckptfmt.Hash, len(ds.Chunks))
		for j, ref := range ds.Chunks {
			hs[j] = ref.Hash
		}
		secs[i] = Section{Name: ds.Name, Hash: ckptfmt.HashOfHashes(hs), RawLen: ds.RawLen()}
		if have != nil && have(secs[i].Hash) {
			continue
		}
		load = append(load, i)
	}
	// Phase 2: build the fetch jobs, then resolve chunk locations from the
	// two-level dedup index, locking each involved shard exactly once.
	var jobs []chunkJob
	byShard := map[int][]int{} // shard -> indices into jobs
	for _, i := range load {
		ds := &dir.Sections[i]
		// Multi-chunk sections decode straight into one preallocated buffer;
		// single-chunk sections let the frame alias its pack bytes.
		var buf []byte
		if len(ds.Chunks) > 1 {
			buf = make([]byte, secs[i].RawLen)
			secs[i].Data = buf
		} else {
			secs[i].Data = []byte{}
		}
		off := 0
		for _, ref := range ds.Chunks {
			si := s.shardOf(ref.Hash)
			j := chunkJob{sec: i, shard: si, ref: ref}
			if buf != nil {
				j.dst = buf[off : off+ref.RawLen]
				off += ref.RawLen
			}
			byShard[si] = append(byShard[si], len(jobs))
			jobs = append(jobs, j)
		}
	}
	for si, idxs := range byShard {
		sh := s.shards[si]
		sh.mu.Lock()
		for _, ji := range idxs {
			loc, ok := sh.chunks[jobs[ji].ref.Hash]
			if !ok {
				sh.mu.Unlock()
				return nil, fmt.Errorf("%w: segment %d references chunk %s absent from shard %s (pack missing or truncated?)",
					codec.ErrCorrupt, m.Seq, jobs[ji].ref.Hash, sh.name)
			}
			jobs[ji].loc = loc
		}
		sh.mu.Unlock()
	}
	if len(jobs) == 0 {
		return secs, nil
	}

	// Phase 3: fetch each shard's frames, shards in parallel (inline when a
	// single shard is involved — the unsharded layout and small restores).
	if len(byShard) == 1 {
		for si, idxs := range byShard {
			if err := s.fetchShardJobs(si, jobs, idxs); err != nil {
				return nil, err
			}
		}
	} else {
		shardErrs := make([]error, len(s.shards))
		var wg sync.WaitGroup
		for si, idxs := range byShard {
			wg.Add(1)
			go func(si int, idxs []int) {
				defer wg.Done()
				shardErrs[si] = s.fetchShardJobs(si, jobs, idxs)
			}(si, idxs)
		}
		wg.Wait()
		for _, err := range shardErrs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Phase 4: parse and decode every frame in parallel across the pool.
	out := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	ckptfmt.ParallelDo(len(jobs), func(i int) {
		j := jobs[i]
		frame, _, err := ckptfmt.Parse(j.enc)
		if err != nil {
			errs[i] = fmt.Errorf("store: shard %s frame at %d: %w", s.shards[j.shard].name, j.loc.Off, err)
			return
		}
		if frame.Hash != j.ref.Hash {
			errs[i] = fmt.Errorf("%w: shard %s frame at %d holds %s, directory wants %s",
				codec.ErrCorrupt, s.shards[j.shard].name, j.loc.Off, frame.Hash, j.ref.Hash)
			return
		}
		out[i], err = frame.DecodeInto(j.dst)
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Multi-chunk sections were decoded in place; single-chunk sections
	// adopt their (possibly pack-aliasing) decode result.
	for i, j := range jobs {
		if j.dst == nil {
			secs[j.sec].Data = out[i]
		}
	}
	return secs, nil
}

// fetchShardJobs reads the encoded frame bytes for the given jobs from one
// shard's pack, coalescing into a single ranged read when the frames occupy
// a mostly dense span.
func (s *Store) fetchShardJobs(si int, jobs []chunkJob, idxs []int) error {
	sh := s.shards[si]
	pf, err := s.backend.Open(sh.name)
	if err != nil {
		return fmt.Errorf("%w: shard %s: open pack: %v", codec.ErrCorrupt, sh.name, err)
	}
	defer pf.Close()

	minOff, maxEnd, total := jobs[idxs[0]].loc.Off, int64(0), int64(0)
	for _, ji := range idxs {
		loc := jobs[ji].loc
		if loc.Off < minOff {
			minOff = loc.Off
		}
		if end := loc.Off + int64(loc.EncLen); end > maxEnd {
			maxEnd = end
		}
		total += int64(loc.EncLen)
	}
	if maxEnd-minOff <= 2*total {
		span := make([]byte, maxEnd-minOff)
		if _, err := pf.ReadAt(span, minOff); err != nil {
			return fmt.Errorf("%w: shard %s: read span [%d,%d): %v", codec.ErrCorrupt, sh.name, minOff, maxEnd, err)
		}
		for _, ji := range idxs {
			loc := jobs[ji].loc
			jobs[ji].enc = span[loc.Off-minOff : loc.Off-minOff+int64(loc.EncLen)]
		}
		return nil
	}
	for _, ji := range idxs {
		loc := jobs[ji].loc
		buf := make([]byte, loc.EncLen)
		if _, err := pf.ReadAt(buf, loc.Off); err != nil {
			return fmt.Errorf("%w: shard %s: read at %d: %v", codec.ErrCorrupt, sh.name, loc.Off, err)
		}
		jobs[ji].enc = buf
	}
	return nil
}

// Has reports whether a committed checkpoint exists for key.
func (s *Store) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Lookup returns the metadata for key if committed. The returned Meta is a
// snapshot copy: the store's own record can be concurrently updated (Spool
// fills GzSize), and handing out the shared pointer would race readers
// against that write.
func (s *Store) Lookup(key Key) (*Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.index[key]
	if !ok {
		return nil, false
	}
	cp := *m
	return &cp, true
}

// Metas returns snapshot copies of all committed checkpoints' metadata in
// commit order (see Lookup for why copies).
func (s *Store) Metas() []*Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Meta, len(s.metas))
	for i, m := range s.metas {
		cp := *m
		out[i] = &cp
	}
	return out
}

// Dedup returns a copy of the run's chunk-dedup accounting. Only format v2
// checkpoints contribute.
func (s *Store) Dedup() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dedup
}

// ExecsFor returns the sorted execution indices with committed checkpoints
// for the loop; replay's partitioner aligns weak-initialization segment
// boundaries to these.
func (s *Store) ExecsFor(loopID string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for k := range s.index {
		if k.LoopID == loopID {
			out = append(out, k.Exec)
		}
	}
	sort.Ints(out)
	return out
}

// Spool compresses the run's durable artifacts to .gz siblings (the
// simulated S3 spooling of paper §6; checkpoints were "compressed by a
// background process, before being spooled to an S3 bucket"): every
// committed segment, plus — for format v2 — the chunk packs, since segment
// files hold only directories. Spooling is incremental: segments already
// spooled are skipped, and a shard pack is recompressed only when it grew
// since the last spool, so on a periodic spool cadence a sharded store
// touches only the shards new checkpoints dirtied instead of one
// ever-growing pack. Shards spool concurrently. Spool returns the total
// compressed size of the run's current spool artifacts and updates
// per-checkpoint GzSize metadata.
func (s *Store) Spool() (int64, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	s.spoolMu.Lock()
	defer s.spoolMu.Unlock()
	var total int64
	for _, m := range s.Metas() {
		gzPath := s.segmentPath(m.Seq) + ".gz"
		// Segments are immutable once committed, so an intact spool artifact
		// is always current — including across restarts, where the
		// manifest-committed GzSize is still 0 and only the artifact itself
		// records that the segment was spooled. "Intact" is verified via the
		// gzip ISIZE trailer (this build writes artifacts atomically, but
		// older builds could leave torn ones behind a crash).
		if st, err := os.Stat(gzPath); err == nil {
			if seg, serr := os.Stat(s.segmentPath(m.Seq)); serr == nil && gzTrailerMatches(gzPath, seg.Size()) {
				s.mu.Lock()
				if live, ok := s.index[m.Key]; ok && live.Seq == m.Seq && live.GzSize == 0 {
					live.GzSize = st.Size()
				}
				s.mu.Unlock()
				total += st.Size()
				continue
			}
		}
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return 0, fmt.Errorf("store: spool read: %w", err)
		}
		gz, err := codec.Compress(raw)
		if err != nil {
			return 0, fmt.Errorf("store: spool compress: %w", err)
		}
		// Atomic, because the skip check above treats existence as
		// completeness: a torn artifact must never land under the final name.
		if err := writeFileAtomic(gzPath, gz); err != nil {
			return 0, fmt.Errorf("store: spool write: %w", err)
		}
		// Metas returned a snapshot; commit GzSize to the live record.
		s.mu.Lock()
		if live, ok := s.index[m.Key]; ok && live.Seq == m.Seq {
			live.GzSize = int64(len(gz))
		}
		s.mu.Unlock()
		total += int64(len(gz))
	}
	// Packs hold every distinct chunk of the run, so unlike segments they
	// can be far larger than any one checkpoint; each dirty shard streams
	// through gzip, shards in parallel.
	if len(s.shards) > 0 {
		sizes := make([]int64, len(s.shards))
		errs := make([]error, len(s.shards))
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				sizes[i], errs[i] = s.spoolShard(sh)
			}(i, sh)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		for _, n := range sizes {
			total += n
		}
		if err := s.saveSpoolState(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// gzTrailerMatches reports whether the gzip artifact's ISIZE trailer (last
// four bytes: uncompressed length mod 2^32) matches the source's size — a
// cheap completeness probe that rejects truncated artifacts without
// decompressing anything.
func gzTrailerMatches(gzPath string, rawSize int64) bool {
	f, err := os.Open(gzPath)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < 4 {
		return false
	}
	var tr [4]byte
	if _, err := f.ReadAt(tr[:], st.Size()-4); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(tr[:]) == uint32(rawSize)
}

// spoolShard compresses one shard's pack to its .gz sibling unless the pack
// has not grown since the last spool. It returns the compressed size of the
// shard's current spool artifact (0 for an empty shard).
func (s *Store) spoolShard(sh *shard) (int64, error) {
	sh.mu.Lock()
	plen, slen, sgz := sh.packLen, sh.spooledLen, sh.spooledGz
	sh.mu.Unlock()
	if plen == 0 {
		return 0, nil
	}
	if plen == slen && sgz > 0 {
		if n, err := s.backend.Size(sh.name + ".gz"); err == nil && n == sgz {
			return sgz, nil // clean: spooled artifact still covers the pack
		}
	}
	pf, err := s.backend.Open(sh.name)
	if err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", sh.name, err)
	}
	defer pf.Close()
	// Stream pack → gzip → backend: a pack holds the run's whole distinct
	// chunk volume, so buffering its compressed form in memory would cost
	// O(pack) heap per spool tick (worse at high fanout, where dirty shards
	// compress concurrently).
	out, err := s.backend.Create(sh.name + ".gz")
	if err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", sh.name, err)
	}
	cw := &countingWriter{w: out}
	zw := gzip.NewWriter(cw)
	if _, err := io.Copy(zw, io.NewSectionReader(pf, 0, plen)); err != nil {
		out.Abort() // keep the previous intact spool artifact, if any
		return 0, fmt.Errorf("store: spool shard %s: %w", sh.name, err)
	}
	if err := zw.Close(); err != nil {
		out.Abort()
		return 0, fmt.Errorf("store: spool shard %s: %w", sh.name, err)
	}
	if err := out.Close(); err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", sh.name, err)
	}
	sh.mu.Lock()
	sh.spooledLen = plen
	sh.spooledGz = cw.n
	sh.mu.Unlock()
	return cw.n, nil
}

// countingWriter counts bytes forwarded to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// saveSpoolState persists per-shard spool coverage ("name spooledLen
// gzSize" lines) so incremental spooling survives reopen.
func (s *Store) saveSpoolState() error {
	var b strings.Builder
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.spooledLen > 0 {
			fmt.Fprintf(&b, "%s %d %d\n", sh.name, sh.spooledLen, sh.spooledGz)
		}
		sh.mu.Unlock()
	}
	if err := writeFileAtomic(s.spoolStatePath(), []byte(b.String())); err != nil {
		return fmt.Errorf("store: save spool state: %w", err)
	}
	return nil
}

// loadSpoolState restores per-shard spool coverage at open. Stale or
// unparsable entries are ignored: the worst case is one redundant
// recompression on the next Spool.
func (s *Store) loadSpoolState() {
	raw, err := os.ReadFile(s.spoolStatePath())
	if err != nil {
		return
	}
	byName := map[string]*shard{}
	for _, sh := range s.shards {
		byName[sh.name] = sh
	}
	for _, ln := range strings.Split(string(raw), "\n") {
		var name string
		var slen, sgz int64
		if _, err := fmt.Sscanf(ln, "%s %d %d", &name, &slen, &sgz); err != nil {
			continue
		}
		if sh := byName[name]; sh != nil && slen <= sh.packLen {
			sh.mu.Lock()
			sh.spooledLen, sh.spooledGz = slen, sgz
			sh.mu.Unlock()
		}
	}
}

// TotalSize returns the uncompressed byte total of all committed
// checkpoints.
func (s *Store) TotalSize() int64 {
	var total int64
	for _, m := range s.Metas() {
		total += m.Size
	}
	return total
}

// GC deletes segments that are no longer the latest checkpoint for their
// key, reclaiming space from superseded materializations. It returns the
// number of segments removed. Chunk packs are append-only and shared
// between checkpoints, so GC never rewrites them; superseded v2 segments
// release only their (small) directory files, and their chunks remain
// available to later checkpoints that reference the same content.
func (s *Store) GC() (int, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	s.mu.Lock()
	live := map[int]bool{}
	for _, m := range s.index {
		live[m.Seq] = true
	}
	var kept []*Meta
	for _, m := range s.metas {
		if live[m.Seq] {
			kept = append(kept, m)
		}
	}
	s.metas = kept
	s.mu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "ckpt-%d.bin", &seq); err != nil {
			continue
		}
		if !live[seq] {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return removed, fmt.Errorf("store: gc remove: %w", err)
			}
			os.Remove(filepath.Join(s.dir, name+".gz"))
			removed++
		}
	}
	return removed, nil
}
