// Package store implements the on-disk checkpoint store backing Flor record
// and replay: manifest-committed segments, and a run-agnostic ChunkPool
// layer owning the content-addressed chunk packs (optionally sharded by
// hash prefix across pluggable backends), the dedup index, and refcounted
// GC/compaction of superseded chunks. A run's private pack is a
// single-tenant pool; a shared pool at a project-level root is attached by
// many runs, which then deduplicate chunks against each other (fine-tuning
// families re-checkpointing one frozen backbone store it once).
//
// # Run-directory layout
//
// A run directory always holds the store's control plane:
//
//	<dir>/FORMAT              format marker; absent in legacy v1 runs
//	<dir>/MANIFEST            append-only log of committed checkpoints and
//	                          (private-pack stores) dedup chunk records;
//	                          pooled runs lead with a pool-reference record
//	<dir>/ckpt-<seq>.bin      one segment file per checkpoint
//	<dir>/ckpt-<seq>.bin.gz   optional spooled (gzip) copy, the "S3 object"
//	<dir>/SHARDS              sharded stores only: extra backend root dirs
//	<dir>/SPOOL               incremental-spool state (pack coverage)
//	<dir>/PACKGC              retired pack generations awaiting expiry
//
// Chunk bytes live in pack objects addressed through a Backend (local
// directories today; the interface is shaped so S3-style ranged backends
// slot in later):
//
//	CHUNKS                    unsharded v2: the single chunk pack
//	CHUNKS-00 .. CHUNKS-ff    sharded v2: one pack per hash-prefix shard
//	CHUNKS-xx.g<n>            generation n of a shard's pack, after GC
//	                          compaction rewrote it (see pool.go)
//
// Shared pools keep the same pack objects plus their own control plane
// (POOL marker, INDEX chunk-record log, LEASES/ refcount entries) under the
// pool root; see pool.go and docs/FORMATS.md.
//
// # Formats
//
// Four layouts are readable (docs/FORMATS.md has the byte-level detail);
// v2-pooled (marker "2 pool shards=N") stores segments like v2 but resolves
// every chunk through the shared pool named by its manifest:
//
//   - v1 (legacy): one monolithic CRC-framed blob per segment, untyped
//     manifest records, no pack. Detected from the absence of the FORMAT
//     marker; v1 runs remain fully readable and writable in v1.
//   - v2 (marker "2"): a segment file holds only a CRC-framed *directory*
//     (package ckptfmt): the checkpoint's named sections and, per section,
//     the ordered content hashes of the chunks holding its bytes. The chunk
//     bytes themselves live in the CHUNKS pack as independent frames —
//     style byte (raw or deflate), CRC-32C, 128-bit content hash — written
//     once per distinct hash and shared by every checkpoint of the run that
//     references them (cross-checkpoint dedup: frozen layers, datasets, and
//     configuration are stored once). Frames encode and decode in parallel
//     across a worker pool.
//   - v2-sharded (marker "2 shards=N"): the v2 encoding with the pack and
//     the dedup index split into N shards (power of two, 2..256) by the top
//     byte of each chunk's content hash: chunk h lives in shard h[0] mod N,
//     pack object "CHUNKS-<shard in hex>". Because the shard is a pure
//     function of the hash, manifest chunk records are byte-identical to
//     unsharded v2 — only the interpretation of their offsets (relative to
//     the shard's pack, not one global pack) differs, which is why the
//     FORMAT marker changes: builds that predate sharding refuse the
//     marker instead of misreading shard-relative offsets.
//
// # Sharding and concurrency
//
// Each shard has its own append lock and its own dedup map (the two-level
// index: shard, then hash), so record-time spooling fans a checkpoint's
// fresh chunks out across shards concurrently, and replay-time restores of
// independent sections issue per-shard ranged reads instead of serializing
// on one file descriptor. Spooling to gzip is incremental per shard: only
// shards whose pack grew since the last spool are recompressed, so a
// background spool cadence touches the few shards a new checkpoint dirtied
// rather than one ever-growing pack.
//
// # Manifest and crash consistency
//
// The v2 MANIFEST interleaves record kinds, each individually CRC-framed:
//
//	'C' chunk record  hash, pack offset (shard-relative when sharded),
//	                  encoded length, raw length, style, and (after GC
//	                  compaction) the pack generation — an entry of the
//	                  run's dedup chunk index; absent in pooled runs,
//	                  whose records live in the pool INDEX
//	'M' meta record   a committed checkpoint (key, segment seq, sizes,
//	                  timings, format)
//	'P' pool record   pooled runs only, always first: the shared pool's
//	                  root (relative paths resolve against the run dir)
//	                  and fanout
//
// Chunk records precede the meta record of the checkpoint that introduced
// them, and pack bytes are written before either, so a crash at any point
// leaves a prefix-consistent run: opening a store replays the manifest,
// verifying each record's CRC and ignoring any torn tail. The design
// follows write-ahead-log discipline adapted to a redo-only workload (paper
// §7, "Recovery and Replay Systems"): segment files and pack bytes are
// written first, then a manifest record commits them, so a crash
// mid-materialization never yields a checkpoint that replay could
// half-trust.
//
// # Compatibility guarantees
//
// Stores open without flags: the FORMAT marker (or its absence) selects the
// layout, and pooled runs find their pool through the manifest's
// pool-reference record. v1, unsharded-v2, and sharded-v2 directories
// recorded by any earlier build open and replay byte-identically. Unknown
// or corrupt FORMAT markers — including the pooled and gc-flagged markers
// on builds that predate them — surface ErrUnknownFormat (with the
// offending marker) rather than risking misparse-and-truncate of a future
// layout's manifest.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/obs"
)

// Format identifies a segment encoding.
const (
	// FormatV1 is the legacy single-blob-per-segment encoding.
	FormatV1 = 1
	// FormatV2 is the frame-based, deduplicated encoding (package ckptfmt),
	// with or without hash-prefix sharding.
	FormatV2 = 2
)

// Shard-fanout bounds for the v2-sharded layout.
const (
	// DefaultShardFanout is the shard count used when sharding is requested
	// without an explicit fanout.
	DefaultShardFanout = 16
	// maxShardFanout bounds the fanout to what one hash byte can address.
	maxShardFanout = 256
)

// Manifest record tags (format v2 manifests only).
const (
	recMeta  = 'M'
	recChunk = 'C'
	// recPool is the pool-reference record: the first record of a pooled
	// run's manifest, naming the shared chunk pool the run's chunks live in.
	recPool = 'P'
)

// Control-plane file names inside a run directory.
const (
	formatFile     = "FORMAT"
	manifestFile   = "MANIFEST"
	packFile       = "CHUNKS"
	shardDirsFile  = "SHARDS"
	spoolStateFile = "SPOOL"
)

// Key identifies a checkpoint: the side-effects of execution number Exec of
// the loop statically identified by LoopID. Exec counts every execution of
// the loop at runtime (paper §4.2: "A loop may generate zero or many Loop
// End Checkpoints").
type Key struct {
	LoopID string
	Exec   int
}

// String renders the key for logs and file names.
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.LoopID, k.Exec) }

// Meta describes a committed checkpoint.
type Meta struct {
	Key      Key
	Seq      int   // segment sequence number
	Size     int64 // uncompressed payload size in bytes
	GzSize   int64 // compressed (spooled) size; 0 until spooled
	MaterNs  int64 // observed materialization time (serialize+write), ns
	SnapNs   int64 // observed snapshot (training-thread) time, ns
	ComputNs int64 // observed loop computation time, ns
	Format   int   // segment format (FormatV1 or FormatV2)
	// StoredBytes is the number of pack bytes this checkpoint added (encoded
	// size of its previously unseen chunks). Dedup hits make it smaller than
	// Size; always equal to Size's framed encoding in format v1.
	StoredBytes int64
}

// Section is one named slice of a checkpoint payload — the encoded bytes of
// one environment entry. Materialization hands sections to PutSections so
// the store can chunk, dedup, and frame them independently. On reads the
// store also reports each section's content identity (the hash of its chunk
// hashes) and logical length, so restore caches can recognize repeated
// content — and ask the store not to load it at all.
type Section struct {
	Name string
	Data []byte
	// Hash is the section's content identity on read paths (zero on writes
	// and for format-v1 fallbacks).
	Hash ckptfmt.Hash
	// RawLen is the section's logical byte length, valid even when Data was
	// skipped at the caller's request.
	RawLen int
}

// DedupStats aggregates the run's chunk-level storage accounting.
type DedupStats struct {
	LogicalBytes   int64 // raw bytes referenced by all committed checkpoints
	StoredRawBytes int64 // raw bytes of distinct chunks actually stored
	StoredEncBytes int64 // encoded (post-style) bytes appended to the packs
	ChunkRefs      int64 // chunk references across all checkpoints
	ChunksStored   int64 // distinct chunks written to the packs
}

// Ratio returns the dedup ratio: logical bytes per stored raw byte. A run
// with no repeated state scores 1.0; frozen-layer workloads score higher.
func (d DedupStats) Ratio() float64 {
	if d.StoredRawBytes == 0 {
		return 1
	}
	return float64(d.LogicalBytes) / float64(d.StoredRawBytes)
}

// Store is a checkpoint store rooted at a run directory. It is safe for
// concurrent use: record's background materializer (or several concurrent
// spoolers) write while the training thread queries stats, and replay
// workers read in parallel.
//
// Chunk bytes live in the store's ChunkPool. A plain v2 store runs on a
// private single-tenant pool over the run's own backend (chunk records in
// the run MANIFEST — byte-identical to pre-pool layouts); a pooled store
// attaches to a shared pool named by its manifest's pool-reference record,
// where sibling runs of the same project dedup against each other.
type Store struct {
	dir      string
	format   int
	fanout   int  // 0 for v1; 1 for unsharded v2; >1 for sharded/pooled v2
	recorded bool // a manifest existed at open (detectDir's Layout.Recorded)
	backend  Backend
	readOnly bool

	// pool is the chunk layer (nil for v1 stores). pooled marks a shared,
	// multi-run pool; poolRoot is its resolved root and poolRef the path as
	// recorded in (or destined for) the manifest's pool-reference record.
	pool     *ChunkPool
	pooled   bool
	poolRoot string
	poolRef  string
	// gcMarked mirrors the FORMAT marker's "gc" flag: the manifest may name
	// pack generations, so pre-GC builds must refuse the directory.
	gcMarked bool
	// lz4Marked mirrors the marker's "lz4" flag: packs may hold LZ4-style
	// frames, which pre-LZ4 builds cannot decode, so they must refuse.
	// Latched (and the marker rewritten) the first time an LZ4 frame is
	// about to be committed — see putV2.
	lz4Marked bool
	// frameStyle is the style preference handed to frame encoding
	// (ckptfmt.StyleAuto unless Options.FrameStyle overrides it).
	frameStyle byte
	sawPRec    bool // manifest already holds the pool-reference record

	mu      sync.Mutex
	nextSeq int
	index   map[Key]*Meta // latest committed checkpoint per key
	metas   []*Meta       // commit order
	dedup   DedupStats

	// spoolMu serializes whole Spool passes: overlapping passes (a periodic
	// spool tick firing while a slow one still compresses) would race their
	// gz rewrites of segments that grew in between.
	spoolMu sync.Mutex
}

// ErrNotFound is returned when no checkpoint exists for a key.
var ErrNotFound = errors.New("store: checkpoint not found")

// ErrReadOnly is returned by write operations on a read-only store.
var ErrReadOnly = errors.New("store: read-only")

// ErrUnknownFormat is returned (wrapped in an *UnknownFormatError carrying
// the offending marker) when a run directory's FORMAT marker names a layout
// this build does not understand — a future version or corruption. The
// store refuses rather than misparse the manifest as a torn tail and
// truncate the run away; servers surface it as a client error when a bad
// directory is registered.
var ErrUnknownFormat = errors.New("store: unknown store format")

// UnknownFormatError reports the unrecognized FORMAT marker of a run
// directory. errors.Is(err, ErrUnknownFormat) matches it.
type UnknownFormatError struct {
	Dir    string
	Marker string // the marker as found on disk, whitespace-trimmed
}

// Error implements error.
func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("store: unknown format marker %q in %s (newer layout or corrupt FORMAT file)", e.Marker, e.Dir)
}

// Is reports ErrUnknownFormat identity for errors.Is.
func (e *UnknownFormatError) Is(target error) bool { return target == ErrUnknownFormat }

// Options configures OpenWith. The zero value reproduces Open: auto-detect
// format, single local directory, read-write.
type Options struct {
	// Format forces the segment format for writes (FormatV1 or FormatV2);
	// 0 auto-detects. Forcing a format that disagrees with a recorded
	// directory is refused.
	Format int
	// ShardFanout selects the chunk-pack layout for new v2 stores: 0 keeps
	// the existing layout (single pack for new directories), 1 explicitly
	// requests the single pack, and a power of two in [2, 256] requests
	// hash-prefix sharding at that fanout. Opening an existing store with a
	// conflicting non-zero fanout is refused.
	ShardFanout int
	// ShardDirs adds extra root directories to the default local backend:
	// shard packs spread across the run directory plus these roots. The
	// list is persisted in the run directory's SHARDS file so later opens
	// (including OpenReadOnly) find the packs without options.
	ShardDirs []string
	// PinShardDirs makes ShardDirs authoritative even when empty: the open
	// fails unless the directory's persisted SHARDS list matches ShardDirs
	// exactly (resolved), instead of adopting whatever the file says.
	// Servers pin the roots they validated at registration so a later
	// SHARDS rewrite cannot redirect their reads.
	PinShardDirs bool
	// Backend overrides pack storage entirely (ShardDirs is then ignored).
	// The control plane (FORMAT, MANIFEST, segments) stays in the run
	// directory regardless.
	Backend Backend
	// Pool attaches the run to a shared chunk pool at this root (created at
	// ShardFanout — DefaultShardFanout when 0 — if absent; relative paths
	// resolve against the process working directory, while the manifest
	// records a run-dir-relative reference so a project tree relocates as a
	// unit). The run's chunks are published to
	// and read from the pool, deduplicated against every sibling run
	// attached to it; a pool-reference record in the manifest plus a LEASE
	// entry under the pool root make the attachment durable. Only fresh
	// directories can attach; a recorded private-pack run cannot be
	// relocated into a pool (nor a pooled run out of one). Reopens need no
	// Pool option — the manifest record names the pool.
	Pool string
	// PinPool makes Pool authoritative even when empty: the open fails
	// unless the run's recorded pool attachment matches Pool exactly
	// (resolved; empty means "not pooled"). Servers pin the pool root they
	// validated at registration so a later manifest rewrite cannot redirect
	// their reads.
	PinPool bool
	// ReadOnly opens the store for shared read-only use: nothing on disk is
	// touched and every write operation fails with ErrReadOnly.
	ReadOnly bool
	// FrameStyle forces the compression style for newly written v2 frames:
	// ckptfmt.StyleDeflate or ckptfmt.StyleLZ4 (each falling back to raw per
	// chunk when compression does not shrink it). 0 keeps the default
	// adaptive choice. The first committed LZ4 frame latches an "lz4" token
	// onto the FORMAT marker so pre-LZ4 builds refuse the directory instead
	// of misreading the frames.
	FrameStyle byte
}

// Open opens (or creates) a store at dir, replaying the manifest to rebuild
// the checkpoint index and the dedup chunk index. Torn or corrupt manifest
// tails are truncated away; segments whose files are missing or corrupt are
// dropped from the index. New stores are created at format v2; directories
// recorded before the FORMAT marker existed open as v1.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenFormat opens a store forcing the given segment format for writes
// (FormatV1 or FormatV2); format 0 auto-detects: the FORMAT marker if
// present, v1 for pre-existing unmarked runs, v2 for new directories.
// Benchmarks use the explicit form to compare the write paths.
func OpenFormat(dir string, format int) (*Store, error) {
	return OpenWith(dir, Options{Format: format})
}

// OpenReadOnly opens an existing recorded run for shared read-only use — the
// serving daemon's open path. It touches nothing on disk: the FORMAT marker
// is not (re)written, a torn manifest tail is skipped rather than truncated,
// and every write operation (Put, PutSections, Spool, GC) fails with
// ErrReadOnly. The returned store is safe for concurrent Get/GetSections
// from many goroutines.
func OpenReadOnly(dir string) (*Store, error) {
	return OpenWith(dir, Options{ReadOnly: true})
}

// OpenWith opens (or, unless o.ReadOnly, creates) a store at dir under the
// given options. See Options for the layout and backend knobs; Open,
// OpenFormat and OpenReadOnly are thin wrappers.
func OpenWith(dir string, o Options) (*Store, error) {
	if o.ReadOnly {
		// A read-only open must not mint an empty store out of a typo'd
		// path: the directory has to exist already.
		if st, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: open read-only: %w", err)
		} else if !st.IsDir() {
			return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	if o.ShardFanout < 0 || o.ShardFanout > maxShardFanout ||
		(o.ShardFanout > 1 && o.ShardFanout&(o.ShardFanout-1) != 0) {
		return nil, fmt.Errorf("store: shard fanout %d: want a power of two in [2, %d]", o.ShardFanout, maxShardFanout)
	}
	switch o.FrameStyle {
	case 0, ckptfmt.StyleDeflate, ckptfmt.StyleLZ4, ckptfmt.StyleAuto:
	default:
		return nil, fmt.Errorf("store: unknown frame style %d", o.FrameStyle)
	}
	s := &Store{dir: dir, readOnly: o.ReadOnly, index: map[Key]*Meta{}, frameStyle: ckptfmt.StyleAuto}
	if o.FrameStyle != 0 {
		s.frameStyle = o.FrameStyle
	}
	if err := s.resolveLayout(o); err != nil {
		return nil, err
	}
	if s.pooled {
		if o.Backend != nil || len(o.ShardDirs) > 0 {
			return nil, fmt.Errorf("store: pooled stores place all packs in the pool (Backend/ShardDirs not applicable)")
		}
		if err := s.attachPool(o); err != nil {
			return nil, err
		}
	} else {
		if o.PinPool && o.Pool != "" {
			return nil, fmt.Errorf("store: %s is not attached to a pool (pinned to %s)", s.dir, o.Pool)
		}
		// Extra roots are a sharded-layout feature: relocating the unsharded
		// CHUNKS pack (or a v1 store) out of the run directory would leave
		// the plain "2" marker lying to pre-sharding builds, which would
		// misread the run (empty pack, dropped chunk records) instead of
		// refusing. (Pinning an empty root list onto an unsharded store is
		// fine — that is exactly what the layout declares.)
		if len(o.ShardDirs) > 0 && s.fanout <= 1 {
			return nil, fmt.Errorf("store: shard dirs require a sharded store (fanout %d); pass ShardFanout", s.fanout)
		}
		if err := s.initBackend(o); err != nil {
			return nil, err
		}
		if s.format == FormatV2 {
			s.pool = newPrivatePool(s.backend, s.fanout, s.readOnly)
			s.pool.ctlDir = s.dir
		}
	}
	if err := s.writeMarker(); err != nil {
		return nil, err
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	if s.format == FormatV2 && !s.pooled {
		// The private pool adopted the manifest's chunk records; resolve
		// pack generations and lengths, drop unreadable records, and take
		// over the run's stored-chunk accounting from the surviving index.
		if err := s.pool.finishOpen(); err != nil {
			return nil, err
		}
		st := s.pool.Stats()
		s.dedup.ChunksStored = st.Chunks
		s.dedup.StoredRawBytes = st.StoredRawBytes
		s.dedup.StoredEncBytes = st.StoredEncBytes
		s.pool.loadSpoolState()
	}
	if s.pool != nil {
		if dropped := s.pool.droppedPacks(); !s.readOnly && len(dropped) > 0 {
			return nil, fmt.Errorf("%w: shard pack %s is missing or truncated (committed chunk records point past its end); writable open refused — repair or open read-only",
				codec.ErrCorrupt, strings.Join(dropped, ", "))
		}
	}
	if s.pooled && !s.readOnly {
		// Make the attachment durable: the pool-reference record is the
		// manifest's first record, and the LEASE entry is the pool-side
		// refcount that keeps this run's chunks live under GCPool.
		if err := s.commitPoolAttachment(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ReadOnly reports whether the store rejects writes.
func (s *Store) ReadOnly() bool { return s.readOnly }

// Layout describes a run directory's on-disk store layout, detected without
// replaying its manifest.
type Layout struct {
	// Format is FormatV1 or FormatV2 (what a fresh open would use).
	Format int
	// ShardFanout is 0 for v1, 1 for unsharded v2, and the shard count for
	// sharded v2 (the pool's fanout for pooled runs).
	ShardFanout int
	// Pooled reports whether the run's chunks live in a shared chunk pool
	// (the manifest's pool-reference record names it).
	Pooled bool
	// Recorded reports whether the directory holds a committed run (a
	// manifest exists). False for fresh or unrelated directories, which a
	// plain open would happily initialize as an empty v2 store.
	Recorded bool
}

// Sharded reports whether the layout splits the pack by hash prefix.
func (l Layout) Sharded() bool { return l.ShardFanout > 1 }

// String renders the layout for listings ("v1", "v2", "v2-sharded/16",
// "v2-pooled/16").
func (l Layout) String() string {
	switch {
	case l.Format == FormatV1:
		return "v1"
	case l.Pooled:
		return fmt.Sprintf("v2-pooled/%d", l.ShardFanout)
	case l.Sharded():
		return fmt.Sprintf("v2-sharded/%d", l.ShardFanout)
	default:
		return "v2"
	}
}

// readShardDirsFile returns the SHARDS file's entries as persisted (not
// resolved); nil when the file is absent. The single parser behind both
// ShardRoots and the open path, so confinement checks and actual opens can
// never disagree about what the file says.
func readShardDirsFile(dir string) ([]string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, shardDirsFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read shard dirs: %w", err)
	}
	var entries []string
	for _, ln := range strings.Split(string(raw), "\n") {
		if ln = strings.TrimSpace(ln); ln != "" {
			entries = append(entries, ln)
		}
	}
	return entries, nil
}

// resolveShardRoot resolves one SHARDS entry against the run directory.
func resolveShardRoot(dir, entry string) string {
	if !filepath.IsAbs(entry) {
		return filepath.Join(dir, entry)
	}
	return entry
}

// ShardRoots returns the extra backend root directories a plain open of dir
// would use (the persisted SHARDS list, relative entries resolved against
// dir); empty for unsharded and v1 stores. Registration paths that confine
// run directories use it to confine the shard roots too.
func ShardRoots(dir string) ([]string, error) {
	entries, err := readShardDirsFile(dir)
	if err != nil {
		return nil, err
	}
	roots := make([]string, len(entries))
	for i, e := range entries {
		roots[i] = resolveShardRoot(dir, e)
	}
	return roots, nil
}

// DetectLayout inspects a run directory's FORMAT marker (and, absent one,
// its manifest) and reports the layout a plain open would use, without
// opening the store. Unknown markers surface ErrUnknownFormat; registration
// paths use this to reject bad directories before any query touches them.
func DetectLayout(dir string) (Layout, error) {
	if st, err := os.Stat(dir); err != nil {
		return Layout{}, fmt.Errorf("store: detect layout: %w", err)
	} else if !st.IsDir() {
		return Layout{}, fmt.Errorf("store: detect layout: %s is not a directory", dir)
	}
	l, _, _, err := detectDir(dir)
	return l, err
}

// detectDir reads a directory's FORMAT marker (falling back on manifest
// presence) and reports the detected layout, the parsed marker (zero when
// absent), and whether a marker was found — the shared core of DetectLayout
// and Store.resolveLayout.
func detectDir(dir string) (Layout, markerInfo, bool, error) {
	recorded := false
	if _, merr := os.Stat(filepath.Join(dir, manifestFile)); merr == nil {
		recorded = true
	}
	raw, err := os.ReadFile(filepath.Join(dir, formatFile))
	switch {
	case err == nil:
		m, perr := parseFormatMarker(raw)
		if perr != nil {
			// An unknown marker means a newer (or corrupted) layout whose
			// manifest records this build would misparse as a torn tail and
			// truncate away — refuse rather than destroy.
			return Layout{}, markerInfo{}, true, &UnknownFormatError{Dir: dir, Marker: strings.TrimSpace(string(raw))}
		}
		return Layout{Format: m.format, ShardFanout: m.fanout, Pooled: m.pooled, Recorded: recorded}, m, true, nil
	case errors.Is(err, os.ErrNotExist):
		if recorded {
			return Layout{Format: FormatV1, Recorded: true}, markerInfo{}, false, nil // pre-FORMAT-marker run
		}
		return Layout{Format: FormatV2, ShardFanout: 1}, markerInfo{}, false, nil // fresh directory
	default:
		return Layout{}, markerInfo{}, false, fmt.Errorf("store: read format marker: %w", err)
	}
}

// markerInfo is the parsed FORMAT marker.
type markerInfo struct {
	format int
	fanout int
	pooled bool
	gc     bool
	lz4    bool
}

// parseFormatMarker decodes a FORMAT file. The grammar is
// "2[ pool][ shards=N][ gc][ lz4]" in that order: "2" (unsharded v2),
// "2 shards=N" (hash-prefix sharded at N, a power of two in [2, 256]),
// "2 pool shards=N" (chunks live in a shared pool at fanout N ≥ 1), with a
// trailing "gc" on stores whose chunk records name compacted pack
// generations and "lz4" on stores holding LZ4-style frames — flags older
// builds cannot honor, so they refuse.
func parseFormatMarker(raw []byte) (markerInfo, error) {
	marker := strings.TrimSpace(string(raw))
	fields := strings.Fields(marker)
	bad := func() (markerInfo, error) {
		return markerInfo{}, fmt.Errorf("unknown format marker %q", marker)
	}
	if len(fields) == 0 || fields[0] != "2" {
		return bad()
	}
	m := markerInfo{format: FormatV2, fanout: 1}
	rest := fields[1:]
	if len(rest) > 0 && rest[0] == "pool" {
		m.pooled = true
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.HasPrefix(rest[0], "shards=") {
		n, perr := strconv.Atoi(strings.TrimPrefix(rest[0], "shards="))
		min := 2
		if m.pooled {
			min = 1 // a pool at fanout 1 is legal (single pack, still shared)
		}
		if perr != nil || n < min || n > maxShardFanout || (n > 1 && n&(n-1) != 0) {
			return bad()
		}
		m.fanout = n
		rest = rest[1:]
	} else if m.pooled {
		return bad() // pooled markers always carry the fanout
	}
	if len(rest) > 0 && rest[0] == "gc" {
		m.gc = true
		rest = rest[1:]
	}
	if len(rest) > 0 && rest[0] == "lz4" {
		m.lz4 = true
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return bad()
	}
	return m, nil
}

func formatMarker(fanout int, pooled, gc, lz4 bool) []byte {
	var b strings.Builder
	b.WriteString("2")
	if pooled {
		fmt.Fprintf(&b, " pool shards=%d", fanout)
	} else if fanout > 1 {
		fmt.Fprintf(&b, " shards=%d", fanout)
	}
	if gc {
		b.WriteString(" gc")
	}
	if lz4 {
		b.WriteString(" lz4")
	}
	b.WriteString("\n")
	return []byte(b.String())
}

// resolveLayout resolves the store's format, shard fanout, and pool
// attachment from the FORMAT marker, the options, and (for unmarked
// directories) the presence of a manifest. The marker itself is written
// later (writeMarker), after a pool attachment has fixed the fanout.
func (s *Store) resolveLayout(o Options) error {
	l, m, hasMarker, err := detectDir(s.dir)
	if err != nil {
		return err
	}
	detected, detFanout, pooled := l.Format, l.ShardFanout, l.Pooled
	s.gcMarked = m.gc
	s.lz4Marked = m.lz4
	if !hasMarker && detected == FormatV2 && o.ShardFanout > 1 {
		detFanout = o.ShardFanout // fresh directory: honor the requested fanout
	}
	// A forced format or fanout may only disagree with a directory that has
	// no committed state: opening a v2 manifest as v1 (or a sharded one as
	// unsharded) would misparse records or misplace every chunk.
	s.recorded = l.Recorded
	recorded := l.Recorded
	if o.Format != 0 && o.Format != detected {
		if recorded {
			return fmt.Errorf("store: cannot force format v%d on %s (recorded as v%d)", o.Format, s.dir, detected)
		}
		detected = o.Format
		if detected == FormatV1 {
			detFanout = 0
		}
	}
	if o.ShardFanout != 0 && detected == FormatV2 && !pooled && o.ShardFanout != detFanout {
		if recorded {
			return fmt.Errorf("store: cannot reshard %s to fanout %d (recorded at fanout %d)", s.dir, o.ShardFanout, detFanout)
		}
		detFanout = o.ShardFanout
	}
	if o.ShardFanout > 1 && detected == FormatV1 {
		return fmt.Errorf("store: format v1 cannot shard (fanout %d requested)", o.ShardFanout)
	}
	// Pool attachment: only fresh directories can attach — moving a
	// recorded run's chunks into (or out of) a pool would strand every
	// committed chunk record.
	if o.Pool != "" {
		if detected == FormatV1 {
			return fmt.Errorf("store: format v1 cannot attach to a chunk pool")
		}
		if recorded && !pooled {
			return fmt.Errorf("store: cannot attach recorded run %s to pool %s (recorded with a private pack)", s.dir, o.Pool)
		}
		pooled = true
	}
	s.format = detected
	s.fanout = detFanout
	s.pooled = pooled
	return nil
}

// writeMarker persists the FORMAT marker for writable v2 stores, only when
// absent or different, and via write-then-rename: rewriting it in place on
// every open would leave a crash window in which a torn marker bricks an
// otherwise intact run behind the UnknownFormatError refusal.
func (s *Store) writeMarker() error {
	if s.format != FormatV2 || s.readOnly {
		return nil
	}
	want := formatMarker(s.fanout, s.pooled, s.gcMarked, s.lz4Marked)
	if cur, err := os.ReadFile(s.formatPath()); err != nil || !bytes.Equal(cur, want) {
		if err := writeFileAtomic(s.formatPath(), want); err != nil {
			return fmt.Errorf("store: write format marker: %w", err)
		}
	}
	return nil
}

// initBackend selects the pack backend: an explicit one from the options,
// or a local-directory backend over the run directory plus any extra shard
// roots (from the options for new stores, from the SHARDS file for
// reopens).
func (s *Store) initBackend(o Options) error {
	if o.Backend != nil {
		s.backend = o.Backend
		return nil
	}
	persisted, err := readShardDirsFile(s.dir)
	if err != nil {
		return err
	}
	extra := o.ShardDirs
	if len(extra) == 0 && !o.PinShardDirs {
		extra = persisted
	} else {
		// Pack placement is a function of the root list (order included), so
		// a recorded store's roots are immutable: silently adopting a
		// different list would relocate every lookup away from the real
		// packs — and rewriting SHARDS would make even plain opens stay
		// broken. Refuse, like a conflicting shard fanout. Comparison is on
		// resolved roots, so callers may pin the roots a registration-time
		// ShardRoots reported and a later SHARDS rewrite fails the open
		// instead of silently redirecting reads.
		resolve := func(entries []string) []string {
			out := make([]string, len(entries))
			for i, e := range entries {
				out[i] = resolveShardRoot(s.dir, e)
			}
			return out
		}
		same := slices.Equal(resolve(extra), resolve(persisted))
		if s.recorded && !same {
			return fmt.Errorf("store: cannot relocate shard packs of %s (recorded with shard dirs %q, got %q)",
				s.dir, persisted, extra)
		}
		if !s.readOnly && !same {
			// Persist the extra roots so later plain opens find the packs.
			if err := writeFileAtomic(s.shardDirsPath(), []byte(strings.Join(extra, "\n")+"\n")); err != nil {
				return fmt.Errorf("store: write shard dirs: %w", err)
			}
		}
	}
	roots := []string{s.dir}
	for _, d := range extra {
		roots = append(roots, resolveShardRoot(s.dir, d))
	}
	if s.readOnly {
		s.backend = &DirBackend{roots: roots}
		return nil
	}
	b, err := NewDirBackend(roots...)
	if err != nil {
		return err
	}
	s.backend = b
	return nil
}

// resolvePoolPath resolves a pool reference against the run directory
// (relative references keep run families relocatable as a unit).
func resolvePoolPath(dir, entry string) string {
	if !filepath.IsAbs(entry) {
		return filepath.Join(dir, entry)
	}
	return entry
}

// attachPool connects a pooled store to its shared chunk pool: the recorded
// pool-reference record names it for reopens; fresh directories take it
// from Options.Pool.
func (s *Store) attachPool(o Options) error {
	recordedRef := ""
	if s.recorded {
		ref, _, err := peekPoolRef(s.dir)
		if err != nil {
			return err
		}
		recordedRef = ref
	}
	var root string
	switch {
	case recordedRef != "":
		root = resolvePoolPath(s.dir, recordedRef)
		s.poolRef = recordedRef
		if o.Pool != "" || o.PinPool {
			// Pinning compares resolved roots, so callers may pin the root a
			// registration-time PoolRef reported and a later manifest rewrite
			// fails the open instead of silently redirecting reads. Option
			// paths are cwd-relative, recorded references run-dir-relative.
			rec, err := resolvePoolRoot(root)
			if err != nil {
				return err
			}
			var want string
			if o.Pool != "" {
				if want, err = resolvePoolRoot(o.Pool); err != nil {
					return err
				}
			}
			if want != rec {
				return fmt.Errorf("store: cannot repoint %s to pool %q (recorded against %q)", s.dir, o.Pool, recordedRef)
			}
		}
	case o.Pool != "":
		root = o.Pool // cwd-relative; openSharedPool canonicalizes
	default:
		return fmt.Errorf("store: %s is marked pooled but its manifest carries no pool reference (pass Options.Pool)", s.dir)
	}
	// On recorded pooled runs the marker's fanout is the pool's; a
	// conflicting explicit request is refused by openSharedPool.
	want := o.ShardFanout
	if want == 0 && s.recorded {
		want = s.fanout
	}
	p, err := openSharedPool(root, want, s.readOnly)
	if err != nil {
		return err
	}
	s.pool = p
	s.fanout = p.fanout
	s.poolRoot = p.root
	return nil
}

// commitPoolAttachment makes a writable pooled open durable: the manifest's
// leading pool-reference record plus the pool-side LEASE entry.
func (s *Store) commitPoolAttachment() error {
	if !s.sawPRec {
		// Prefer a run-dir-relative reference so a project tree (runs +
		// POOL) can relocate as a unit; fall back to the canonical absolute
		// root when no relative path exists.
		ref := s.poolRoot
		if absDir, err := filepath.Abs(s.dir); err == nil {
			if resolved, rerr := filepath.EvalSymlinks(absDir); rerr == nil {
				absDir = resolved
			}
			if rel, rerr := filepath.Rel(absDir, s.poolRoot); rerr == nil {
				ref = rel
			}
		}
		s.mu.Lock()
		err := s.appendManifestLocked(s.frameRecord(recPool, encodePoolRef(ref, s.fanout)))
		if err == nil {
			s.sawPRec = true
			s.poolRef = ref
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return s.pool.writeLease(s.dir)
}

// peekPoolRef reads the pool reference off a pooled run's manifest without
// replaying it: the pool-reference record is always the manifest's first
// record.
func peekPoolRef(dir string) (ref string, fanout int, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", 0, nil
	}
	if err != nil {
		return "", 0, fmt.Errorf("store: read manifest: %w", err)
	}
	payload, _, err := codec.Unframe(raw)
	if err != nil {
		// A torn first record (crash during the attachment append) reads as
		// "no reference yet": writable opens truncate the tail and re-append
		// from Options.Pool.
		return "", 0, nil
	}
	if len(payload) == 0 || payload[0] != recPool {
		return "", 0, fmt.Errorf("%w: pooled run %s: manifest does not start with a pool-reference record", codec.ErrCorrupt, dir)
	}
	return decodePoolRef(payload[1:])
}

// PoolRef reports the shared chunk pool a run directory is attached to: the
// resolved pool root and ok=true for pooled runs, ok=false otherwise.
// Registration paths use it to validate and pin pool roots.
func PoolRef(dir string) (root string, ok bool, err error) {
	l, _, _, err := detectDir(dir)
	if err != nil {
		return "", false, err
	}
	if !l.Pooled {
		return "", false, nil
	}
	ref, _, err := peekPoolRef(dir)
	if err != nil {
		return "", false, err
	}
	if ref == "" {
		return "", false, fmt.Errorf("store: %s is marked pooled but has no manifest", dir)
	}
	// Canonicalize so callers grouping runs by pool root compare equal
	// strings regardless of how each run recorded the reference.
	root, err = resolvePoolRoot(resolvePoolPath(dir, ref))
	if err != nil {
		return "", false, err
	}
	return root, true, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Format returns the segment format used for writes.
func (s *Store) Format() int { return s.format }

// ShardFanout returns the chunk-pack shard count: 0 for v1 stores, 1 for
// the unsharded v2 layout, the fanout for sharded and pooled stores.
func (s *Store) ShardFanout() int {
	if s.format != FormatV2 {
		return 0
	}
	return s.pool.Fanout()
}

// Pooled reports whether the run's chunks live in a shared pool.
func (s *Store) Pooled() bool { return s.pooled }

// PoolRoot returns the resolved root of the attached shared pool ("" for
// private-pack stores).
func (s *Store) PoolRoot() string { return s.poolRoot }

// PoolStats returns the attached pool's pool-wide storage accounting;
// ok is false for stores without a shared pool. (For per-run accounting see
// Dedup; a pooled run's stored-bytes counters cover only chunks this store
// instance published.)
func (s *Store) PoolStats() (PoolStats, bool) {
	if !s.pooled {
		return PoolStats{}, false
	}
	return s.pool.Stats(), true
}

// Layout returns the store's detected layout.
func (s *Store) Layout() Layout {
	s.mu.Lock()
	recorded := len(s.metas) > 0
	s.mu.Unlock()
	return Layout{Format: s.format, ShardFanout: s.ShardFanout(), Pooled: s.pooled, Recorded: recorded}
}

func (s *Store) formatPath() string    { return filepath.Join(s.dir, formatFile) }
func (s *Store) manifestPath() string  { return filepath.Join(s.dir, manifestFile) }
func (s *Store) shardDirsPath() string { return filepath.Join(s.dir, shardDirsFile) }

func (s *Store) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d.bin", seq))
}

func (s *Store) replayManifest() error {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read manifest: %w", err)
	}
	off := 0
	validated := 0
	for off < len(raw) {
		payload, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			// Torn tail: truncate the manifest back to the last good record.
			break
		}
		if !s.applyRecord(payload) {
			break
		}
		off += consumed
		validated = off
	}
	if validated < len(raw) && !s.readOnly {
		if err := os.Truncate(s.manifestPath(), int64(validated)); err != nil {
			return fmt.Errorf("store: truncate torn manifest: %w", err)
		}
	}
	return nil
}

// applyRecord replays one manifest record payload into the in-memory state,
// returning false when the record is undecodable (treated as a torn tail).
// It runs single-threaded at open, before the store is shared.
func (s *Store) applyRecord(payload []byte) bool {
	body := payload
	tag := byte(recMeta)
	if s.format == FormatV2 {
		if len(payload) == 0 {
			return false
		}
		tag = payload[0]
		body = payload[1:]
	}
	switch tag {
	case recChunk:
		hash, loc, err := decodeChunkRecord(body)
		if err != nil {
			return false
		}
		if s.pooled {
			// Pooled manifests carry no chunk records (they live in the pool
			// INDEX); tolerate and ignore rather than truncate.
			return true
		}
		// Validation against the pack's real length happens after the full
		// replay (ChunkPool.finishOpen), once the active generation is known.
		s.pool.adopt(hash, loc)
	case recPool:
		ref, fanout, err := decodePoolRef(body)
		if err != nil {
			return false
		}
		// The reference was already resolved by attachPool's peek; replay
		// just confirms its presence (and sanity) so reopen skips re-adding.
		if s.pooled && ref != "" && fanout == s.fanout {
			s.sawPRec = true
		}
	case recMeta:
		m, err := decodeMeta(body)
		if err != nil {
			return false
		}
		// A manifest record only counts if its segment survived intact.
		if _, statErr := os.Stat(s.segmentPath(m.Seq)); statErr == nil {
			s.commitLocked(m)
		}
		if m.Seq >= s.nextSeq {
			s.nextSeq = m.Seq + 1
		}
	default:
		return false
	}
	return true
}

// commitLocked installs a meta into the index and accumulates dedup stats.
func (s *Store) commitLocked(m *Meta) {
	s.index[m.Key] = m
	s.metas = append(s.metas, m)
	if m.Format == FormatV2 {
		s.dedup.LogicalBytes += m.Size
	}
}

func encodeMeta(m *Meta) []byte {
	w := codec.NewWriter()
	w.String(m.Key.LoopID)
	w.Int(m.Key.Exec)
	w.Int(m.Seq)
	w.Int(int(m.Size))
	w.Int(int(m.GzSize))
	w.Int(int(m.MaterNs))
	w.Int(int(m.SnapNs))
	w.Int(int(m.ComputNs))
	// Trailing fields added with format v2; v1 decoders never read this far.
	w.Int(m.Format)
	w.Int(int(m.StoredBytes))
	return w.Bytes()
}

func decodeMeta(b []byte) (*Meta, error) {
	r := codec.NewReader(b)
	m := &Meta{}
	var err error
	if m.Key.LoopID, err = r.String(); err != nil {
		return nil, err
	}
	fields := []*int64{nil, &m.Size, &m.GzSize, &m.MaterNs, &m.SnapNs, &m.ComputNs}
	if m.Key.Exec, err = r.Int(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Int(); err != nil {
		return nil, err
	}
	for _, f := range fields[1:] {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		*f = int64(v)
	}
	// Records written before format v2 end here.
	m.Format = FormatV1
	m.StoredBytes = m.Size
	if r.Remaining() > 0 {
		if m.Format, err = r.Int(); err != nil {
			return nil, err
		}
		sb, err := r.Int()
		if err != nil {
			return nil, err
		}
		m.StoredBytes = int64(sb)
	}
	return m, nil
}

func encodeChunkRecord(hash ckptfmt.Hash, loc chunkLoc) []byte {
	w := codec.NewWriter()
	w.RawBytes(hash[:])
	w.Int(int(loc.Off))
	w.Int(loc.EncLen)
	w.Int(loc.RawLen)
	w.Uvarint(uint64(loc.Style))
	// The pack generation is a trailing optional field: generation 0 is
	// omitted, keeping never-compacted manifests byte-identical to the
	// pre-pool encoding. Stores with generation records carry the "gc"
	// FORMAT flag so pre-GC builds refuse instead of reading the wrong pack.
	if loc.Gen > 0 {
		w.Uvarint(uint64(loc.Gen))
	}
	return w.Bytes()
}

// encodePoolRef encodes a pool-reference record: the pool root (relative
// references resolve against the run directory) and the pool's fanout.
func encodePoolRef(ref string, fanout int) []byte {
	w := codec.NewWriter()
	w.String(ref)
	w.Int(fanout)
	return w.Bytes()
}

func decodePoolRef(b []byte) (ref string, fanout int, err error) {
	r := codec.NewReader(b)
	if ref, err = r.String(); err != nil {
		return "", 0, err
	}
	if fanout, err = r.Int(); err != nil {
		return "", 0, err
	}
	return ref, fanout, nil
}

func decodeChunkRecord(b []byte) (hash ckptfmt.Hash, loc chunkLoc, err error) {
	r := codec.NewReader(b)
	hb, err := r.RawBytes()
	if err != nil {
		return hash, loc, err
	}
	if len(hb) != 16 {
		return hash, loc, fmt.Errorf("%w: chunk record hash length %d", codec.ErrCorrupt, len(hb))
	}
	copy(hash[:], hb)
	off, err := r.Int()
	if err != nil {
		return hash, loc, err
	}
	if loc.EncLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	if loc.RawLen, err = r.Int(); err != nil {
		return hash, loc, err
	}
	style, err := r.Uvarint()
	if err != nil {
		return hash, loc, err
	}
	loc.Off = int64(off)
	loc.Style = byte(style)
	if r.Remaining() > 0 {
		gen, err := r.Uvarint()
		if err != nil {
			return hash, loc, err
		}
		loc.Gen = int(gen)
	}
	return hash, loc, nil
}

// frameTagged wraps a record body with its type tag and CRC frame — the one
// encoding shared by v2 manifest records and pool INDEX records.
func frameTagged(tag byte, body []byte) []byte {
	payload := make([]byte, 0, len(body)+1)
	payload = append(payload, tag)
	payload = append(payload, body...)
	return codec.Frame(payload)
}

// frameRecord wraps a manifest record payload with its type tag (v2) and CRC
// frame.
func (s *Store) frameRecord(tag byte, body []byte) []byte {
	if s.format != FormatV2 {
		return codec.Frame(body)
	}
	return frameTagged(tag, body)
}

// Put durably stores payload for key and commits it to the manifest.
// snapNs and serNs are the observed snapshot and serialization times for
// this checkpoint; Put measures its own write time and records
// MaterNs = snapNs + serNs + writeNs, the full materialization cost used by
// adaptive checkpointing (paper Table 2's M_i). computNs is the loop
// execution time being memoized (C_i).
//
// In format v2 the payload is stored as a single opaque section — chunked,
// content-addressed, and deduplicated like any other checkpoint, but with no
// per-entry structure. PutSections is the structured (and more parallel)
// write path.
func (s *Store) Put(key Key, payload []byte, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format == FormatV2 {
		return s.putV2(key, []Section{{Data: payload}}, true, snapNs, serNs, computNs)
	}

	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()
	framed := codec.Frame(payload)
	if err := s.writeSegment(seq, framed); err != nil {
		return nil, err
	}
	writeNs := time.Since(w0).Nanoseconds()

	m := &Meta{
		Key: key, Seq: seq, Size: int64(len(payload)),
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV1, StoredBytes: int64(len(framed)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendManifestLocked(s.frameRecord(recMeta, encodeMeta(m))); err != nil {
		return nil, err
	}
	s.commitLocked(m)
	return m, nil
}

// PutSections durably stores a checkpoint as named sections (format v2
// stores only). Sections are chunked, frames for previously unseen chunks
// are encoded in parallel and appended to their hash shards' packs
// (concurrently across shards), and the segment directory plus manifest
// records commit the checkpoint. PutSections is safe to call from several
// goroutines at once: shards serialize their own appends and the manifest
// commit is atomic per checkpoint. See Put for the timing parameters.
func (s *Store) PutSections(key Key, secs []Section, snapNs, serNs, computNs int64) (*Meta, error) {
	if s.readOnly {
		return nil, ErrReadOnly
	}
	if s.format != FormatV2 {
		return nil, fmt.Errorf("store: PutSections requires format v2 (store is v%d)", s.format)
	}
	return s.putV2(key, secs, false, snapNs, serNs, computNs)
}

func (s *Store) putV2(key Key, secs []Section, opaque bool, snapNs, serNs, computNs int64) (*Meta, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	w0 := time.Now()

	// Chunk every section and hash every chunk in parallel; the directory is
	// fully determined by content before any byte hits disk.
	dir := ckptfmt.Directory{Opaque: opaque, Sections: make([]ckptfmt.SectionRef, len(secs))}
	var flat [][]byte
	var refs []*ckptfmt.ChunkRef
	var logical int64
	for i, sec := range secs {
		chunks := codec.SplitChunks(sec.Data, ckptfmt.DefaultChunkSize)
		dir.Sections[i] = ckptfmt.SectionRef{Name: sec.Name, Chunks: make([]ckptfmt.ChunkRef, len(chunks))}
		for j, c := range chunks {
			dir.Sections[i].Chunks[j] = ckptfmt.ChunkRef{RawLen: len(c)}
			flat = append(flat, c)
			refs = append(refs, &dir.Sections[i].Chunks[j])
		}
		logical += int64(len(sec.Data))
	}
	hashes := make([]ckptfmt.Hash, len(flat))
	ckptfmt.ParallelDo(len(flat), func(i int) { hashes[i] = ckptfmt.HashChunk(flat[i]) })
	for i, h := range hashes {
		refs[i].Hash = h
	}

	// The pool's GC fence: holding the read side from fresh-chunk filtering
	// through the manifest commit means a compaction pass can never reclaim
	// a chunk this checkpoint deduplicated against — the segment directory
	// below is on disk (and thus visible to GC's mark phase) before the
	// fence releases.
	p := s.pool
	p.gcMu.RLock()
	defer p.gcMu.RUnlock()

	// Select chunks the pool has not stored yet (deduplicating within this
	// checkpoint too), probing each shard's index under its own lock. A
	// concurrent put racing on the same fresh chunk stores it twice — benign
	// pack bloat, since locations publish only with the durable commit and
	// the first committed record wins at replay.
	newIdx := p.filterFresh(hashes)
	obs.C(obs.MStoreChunkDedupHits).Add(int64(len(flat) - len(newIdx)))
	newChunks := make([][]byte, len(newIdx))
	for i, idx := range newIdx {
		newChunks[i] = flat[idx]
	}
	frames := ckptfmt.EncodeChunksStyle(newChunks, s.frameStyle)

	// Latch the "lz4" FORMAT token before any LZ4 frame can become readable:
	// the marker must hit disk ahead of the records that commit such frames,
	// or a pre-LZ4 build could open the run and misread them. Holding s.mu
	// across the write serializes the one-time latch against concurrent puts.
	hasLZ4 := false
	for i := range frames {
		if frames[i].Style == ckptfmt.StyleLZ4 {
			hasLZ4 = true
			break
		}
	}
	if hasLZ4 {
		s.mu.Lock()
		if !s.lz4Marked {
			s.lz4Marked = true
			if err := s.writeMarker(); err != nil {
				s.lz4Marked = false
				s.mu.Unlock()
				return nil, err
			}
		}
		s.mu.Unlock()
	}

	// Segment file: the CRC-framed directory. Written before the manifest
	// record so a crash never commits a directory-less checkpoint — and
	// before the pack appends, so GC's mark phase (which scans segment
	// files) always sees a materializing checkpoint's chunk references.
	if err := s.writeSegment(seq, codec.Frame(ckptfmt.EncodeDirectory(&dir))); err != nil {
		return nil, err
	}

	// Fan the fresh frames out across their hash shards (concurrently); for
	// shared pools this also durably appends the chunk records to the pool
	// INDEX and publishes them to sibling runs.
	a0 := time.Now()
	locs, err := p.appendFrames(frames)
	if err != nil {
		return nil, err
	}
	obs.H(obs.MStoreShardAppendSeconds).ObserveNs(time.Since(a0).Nanoseconds())
	obs.C(obs.MStoreChunksWritten).Add(int64(len(frames)))

	// Commit under the store lock: chunk records (private pools only — a
	// shared pool's records live in its INDEX), then the meta record — the
	// manifest never references bytes that aren't on disk. Private-pool
	// chunk locations publish to the shard indexes only now, so concurrent
	// puts never dedup against a chunk whose manifest record could still be
	// lost to a crash.
	s.mu.Lock()
	defer s.mu.Unlock()
	var record []byte
	var stored int64
	for i := range frames {
		stored += int64(locs[i].EncLen)
		s.dedup.ChunksStored++
		s.dedup.StoredRawBytes += int64(locs[i].RawLen)
		s.dedup.StoredEncBytes += int64(locs[i].EncLen)
		if !p.shared {
			record = append(record, s.frameRecord(recChunk, encodeChunkRecord(frames[i].Hash, locs[i]))...)
		}
	}
	s.dedup.ChunkRefs += int64(len(flat))
	obs.C(obs.MStoreChunkBytesWritten).Add(stored)
	writeNs := time.Since(w0).Nanoseconds()
	m := &Meta{
		Key: key, Seq: seq, Size: logical,
		MaterNs: snapNs + serNs + writeNs, SnapNs: snapNs, ComputNs: computNs,
		Format: FormatV2, StoredBytes: stored,
	}
	record = append(record, s.frameRecord(recMeta, encodeMeta(m))...)
	if err := s.appendManifestLocked(record); err != nil {
		return nil, err
	}
	if !p.shared {
		p.publish(frames, locs)
	}
	s.commitLocked(m)
	return m, nil
}

// writeFileAtomic commits data to path via write-then-rename, so readers
// (and existence-based skip checks) never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// writeSegment commits framed bytes to segment seq via write-then-rename.
func (s *Store) writeSegment(seq int, framed []byte) error {
	if err := writeFileAtomic(s.segmentPath(seq), framed); err != nil {
		return fmt.Errorf("store: write segment: %w", err)
	}
	return nil
}

func (s *Store) appendManifestLocked(record []byte) error {
	f, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record); err != nil {
		return fmt.Errorf("store: append manifest: %w", err)
	}
	return nil
}

// Get returns the payload of the latest committed checkpoint for key. For
// format v2 checkpoints the payload is reassembled from its frames (decoded
// in parallel) into the exact byte stream Put or the bundle encoder
// originally produced, so callers are format-agnostic.
func (s *Store) Get(key Key) ([]byte, error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, err
	}
	if m.Format != FormatV2 {
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			if s.readOnly && errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("%w: segment %d for %s", ErrStalePack, m.Seq, key)
			}
			return nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
		}
		payload, _, err := codec.Unframe(raw)
		if err != nil {
			return nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
		}
		return payload, nil
	}
	secs, err := s.readSections(m, dir, nil, nil)
	if err != nil {
		return nil, err
	}
	if dir.Opaque {
		if len(secs) == 1 {
			return secs[0].Data, nil
		}
		var out []byte
		for _, sec := range secs {
			out = append(out, sec.Data...)
		}
		return out, nil
	}
	// Reassemble the v1 bundle encoding: count, then (name, payload) pairs —
	// byte-identical to what the bundle encoder originally produced.
	w := codec.NewWriter()
	w.Uvarint(uint64(len(secs)))
	for _, sec := range secs {
		w.String(sec.Name)
		w.RawAppend(sec.Data)
	}
	return w.Bytes(), nil
}

// GetSections returns the named sections of a format-v2 checkpoint, decoded
// in parallel. ok is false when the checkpoint is stored in format v1 or as
// an opaque blob; callers fall back to Get + whole-payload decoding.
//
// When have is non-nil, sections whose content identity it reports as
// already held are returned with nil Data (Hash and RawLen still set) and
// their chunks are never read — the disk, CRC, and reassembly cost of
// repeated content (frozen layers restored epoch after epoch) drops to a
// directory read.
func (s *Store) GetSections(key Key, have func(ckptfmt.Hash) bool) (secs []Section, ok bool, err error) {
	return s.GetSectionsObserved(key, have, nil)
}

// GetSectionsObserved is GetSections with per-tier fetch attribution: when fs
// is non-nil, every chunk frame the read touches (and every frame a
// payload-cache hit skips) is accounted to its fetch tier in fs. A nil fs is
// exactly GetSections — the hot path pays no observation cost.
func (s *Store) GetSectionsObserved(key Key, have func(ckptfmt.Hash) bool, fs *FetchStats) (secs []Section, ok bool, err error) {
	m, dir, err := s.segmentDir(key)
	if err != nil {
		return nil, false, err
	}
	if m.Format != FormatV2 || dir.Opaque {
		return nil, false, nil
	}
	secs, err = s.readSections(m, dir, have, fs)
	if err != nil {
		return nil, false, err
	}
	return secs, true, nil
}

// segmentDir resolves key to its meta and, for v2 checkpoints, its decoded
// segment directory.
func (s *Store) segmentDir(key Key) (*Meta, *ckptfmt.Directory, error) {
	s.mu.Lock()
	m, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if m.Format != FormatV2 {
		return m, nil, nil
	}
	raw, err := os.ReadFile(s.segmentPath(m.Seq))
	if err != nil {
		// A read-only open's index says this segment exists; a writer in
		// another process superseding the key and sweeping the old segment
		// (GC's segment sweep has no grace period) is the only way it can be
		// gone. The index is stale, not corrupt — reopening resolves the
		// successor checkpoint.
		if s.readOnly && errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: segment %d for %s", ErrStalePack, m.Seq, key)
		}
		return nil, nil, fmt.Errorf("store: read segment %d: %w", m.Seq, err)
	}
	payload, _, err := codec.Unframe(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d: %w", m.Seq, err)
	}
	dir, err := ckptfmt.DecodeDirectory(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("store: segment %d directory: %w", m.Seq, err)
	}
	return m, dir, nil
}

// chunkJob is one frame to fetch and decode while materializing sections.
type chunkJob struct {
	sec   int
	shard int
	dst   []byte        // decode destination within the section's owned buffer
	enc   []byte        // encoded frame bytes, filled by the per-shard read phase
	src   BackendReader // direct-read source (large frames): decode reads the pack itself
	got   ckptfmt.Hash  // scatter-read jobs: stored hash, CRC-verified during the fetch
	pre   bool          // scatter-read jobs: payload already in dst and verified
	done  bool          // pipelined remote jobs: decoded and verified during the fetch
	loc   chunkLoc
	ref   ckptfmt.ChunkRef
}

// readSections materializes sections of a v2 directory: chunk frames are
// fetched with per-shard reads — shards read concurrently, so restores of
// independent sections never serialize on one file descriptor — and decoded
// in parallel across the worker pool. Sections whose identity the optional
// have callback claims are skipped (returned with nil Data). Per shard the
// fetch is either a memory-mapped view of the pack or offset-sorted reads
// coalesced into arena staging spans (see ChunkPool.fetchShard).
//
// Every loaded section owns a freshly allocated Data buffer: decode copies
// out of the transient fetch memory (span buffers recycle through the arena,
// mappings unmap once released), so Data — and any lazy payload view a
// caller builds over it — stays valid indefinitely.
//
// The have callback is invoked without any store lock held, and each
// shard's lock is taken only briefly to resolve chunk locations: concurrent
// readers from many server goroutines must not serialize on each other's
// cache probes.
func (s *Store) readSections(m *Meta, dir *ckptfmt.Directory, have func(ckptfmt.Hash) bool, fs *FetchStats) ([]Section, error) {
	secs := make([]Section, len(dir.Sections))
	// Phase 1, lock-free: compute each section's content identity and ask
	// the caller which sections it already holds. A section the caller holds
	// is a payload-cache hit: its chunks are never read, and the attribution
	// records the logical bytes that skip saved.
	var load []int
	for i := range dir.Sections {
		ds := &dir.Sections[i]
		hs := make([]ckptfmt.Hash, len(ds.Chunks))
		for j, ref := range ds.Chunks {
			hs[j] = ref.Hash
		}
		secs[i] = Section{Name: ds.Name, Hash: ckptfmt.HashOfHashes(hs), RawLen: ds.RawLen()}
		if have != nil && have(secs[i].Hash) {
			s.pool.countFetch(tierCache, int64(secs[i].RawLen), int64(len(ds.Chunks)), fs)
			continue
		}
		load = append(load, i)
	}
	// Phase 2: build the fetch jobs, then resolve chunk locations from the
	// pool's two-level dedup index, locking each involved shard exactly
	// once.
	p := s.pool
	nchunks := 0
	for _, i := range load {
		nchunks += len(dir.Sections[i].Chunks)
	}
	jobs := make([]chunkJob, 0, nchunks)
	byShard := map[int][]int{} // shard -> indices into jobs
	for _, i := range load {
		ds := &dir.Sections[i]
		buf := make([]byte, secs[i].RawLen)
		secs[i].Data = buf
		off := 0
		for _, ref := range ds.Chunks {
			si := p.shardOf(ref.Hash)
			j := chunkJob{sec: i, shard: si, ref: ref, dst: buf[off : off+ref.RawLen]}
			off += ref.RawLen
			byShard[si] = append(byShard[si], len(jobs))
			jobs = append(jobs, j)
		}
	}
	if err := p.resolve(jobs, byShard, m.Seq); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return secs, nil
	}

	// Phase 3: fetch each shard's frames, shards in parallel (inline when a
	// single shard is involved — the unsharded layout and small restores).
	// Each fetch returns a release callback that recycles its staging spans
	// (or drops its mapping reference); the enc slices die with phase 4, so
	// releases run only after every decode finished. Remote fetches share
	// one per-restore in-flight byte budget across all shards, and on the
	// pipelined path may hand jobs back already decoded (done set) — phase 4
	// skips those.
	bdgt := newByteBudget(restoreInflightBudget)
	releases := make([]func(), 0, len(byShard))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	if len(byShard) == 1 {
		for si, idxs := range byShard {
			rel, err := p.fetchShard(si, jobs, idxs, fs, bdgt)
			if err != nil {
				return nil, err
			}
			releases = append(releases, rel)
		}
	} else {
		shardErrs := make([]error, p.Fanout())
		shardRels := make([]func(), p.Fanout())
		var wg sync.WaitGroup
		for si, idxs := range byShard {
			wg.Add(1)
			go func(si int, idxs []int) {
				defer wg.Done()
				shardRels[si], shardErrs[si] = p.fetchShard(si, jobs, idxs, fs, bdgt)
			}(si, idxs)
		}
		wg.Wait()
		for _, rel := range shardRels {
			if rel != nil {
				releases = append(releases, rel)
			}
		}
		for _, err := range shardErrs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Phase 4: parse and decode every frame in parallel across the pool.
	// The CRC covers the whole frame and the directory pins the content
	// hash, so the decode skips the redundant hash recompute — and for raw
	// frames ParseDecodeInto fuses copy and CRC into one pass over the
	// (cold, often memory-mapped) source, checksumming the hot copy instead:
	// deterministic decoding of CRC-clean bytes into the checked hash's
	// frame cannot diverge.
	errs := make([]error, len(jobs))
	ckptfmt.ParallelDo(len(jobs), func(i int) {
		j := jobs[i]
		if j.done {
			// Pipelined remote job: decoded and hash-verified inline while
			// its span's GET neighbors were still in flight.
			return
		}
		var hash ckptfmt.Hash
		if j.pre {
			// Scatter-read job: the vectored fetch already put the payload in
			// dst and CRC-verified it against the on-disk header while the
			// bytes were cache-hot; only the directory check remains.
			hash = j.got
		} else if j.src != nil {
			// Direct-read job: the directory ref pins the expected raw length
			// and hash, so the common case is one ranged read of the payload
			// straight into the destination plus the 4-byte trailer — no
			// header read. Still fully parallel: pread is concurrency-safe.
			h, err := ckptfmt.DecodeExpectedFrameAt(j.src, j.loc.Off, int(j.loc.EncLen), j.ref.Hash, j.dst)
			if err != nil {
				errs[i] = fmt.Errorf("store: shard %s frame at %d: %w", p.shardName(j.shard), j.loc.Off, err)
				return
			}
			hash = h
		} else {
			frame, err := ckptfmt.ParseDecodeInto(j.enc, j.dst)
			if err != nil {
				errs[i] = fmt.Errorf("store: shard %s frame at %d: %w", p.shardName(j.shard), j.loc.Off, err)
				return
			}
			hash = frame.Hash
		}
		if hash != j.ref.Hash {
			errs[i] = fmt.Errorf("%w: shard %s frame at %d holds %s, directory wants %s",
				codec.ErrCorrupt, p.shardName(j.shard), j.loc.Off, hash, j.ref.Hash)
			return
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return secs, nil
}

// Has reports whether a committed checkpoint exists for key.
func (s *Store) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Lookup returns the metadata for key if committed. The returned Meta is a
// snapshot copy: the store's own record can be concurrently updated (Spool
// fills GzSize), and handing out the shared pointer would race readers
// against that write.
func (s *Store) Lookup(key Key) (*Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.index[key]
	if !ok {
		return nil, false
	}
	cp := *m
	return &cp, true
}

// Metas returns snapshot copies of all committed checkpoints' metadata in
// commit order (see Lookup for why copies).
func (s *Store) Metas() []*Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Meta, len(s.metas))
	for i, m := range s.metas {
		cp := *m
		out[i] = &cp
	}
	return out
}

// Dedup returns a copy of the run's chunk-dedup accounting. Only format v2
// checkpoints contribute.
func (s *Store) Dedup() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dedup
}

// ExecsFor returns the sorted execution indices with committed checkpoints
// for the loop; replay's partitioner aligns weak-initialization segment
// boundaries to these.
func (s *Store) ExecsFor(loopID string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for k := range s.index {
		if k.LoopID == loopID {
			out = append(out, k.Exec)
		}
	}
	sort.Ints(out)
	return out
}

// Spool compresses the run's durable artifacts to .gz siblings (the
// simulated S3 spooling of paper §6; checkpoints were "compressed by a
// background process, before being spooled to an S3 bucket"): every
// committed segment, plus — for format v2 — the chunk packs, since segment
// files hold only directories. Spooling is incremental: segments already
// spooled are skipped, and a shard pack is recompressed only when it grew
// since the last spool, so on a periodic spool cadence a sharded store
// touches only the shards new checkpoints dirtied instead of one
// ever-growing pack. Shards spool concurrently. Spool returns the total
// compressed size of the run's current spool artifacts and updates
// per-checkpoint GzSize metadata.
func (s *Store) Spool() (int64, error) {
	if s.readOnly {
		return 0, ErrReadOnly
	}
	s.spoolMu.Lock()
	defer s.spoolMu.Unlock()
	p0 := time.Now()
	var total int64
	for _, m := range s.Metas() {
		gzPath := s.segmentPath(m.Seq) + ".gz"
		// Segments are immutable once committed, so an intact spool artifact
		// is always current — including across restarts, where the
		// manifest-committed GzSize is still 0 and only the artifact itself
		// records that the segment was spooled. "Intact" is verified via the
		// gzip ISIZE trailer (this build writes artifacts atomically, but
		// older builds could leave torn ones behind a crash).
		if st, err := os.Stat(gzPath); err == nil {
			if seg, serr := os.Stat(s.segmentPath(m.Seq)); serr == nil && gzTrailerMatches(gzPath, seg.Size()) {
				s.mu.Lock()
				if live, ok := s.index[m.Key]; ok && live.Seq == m.Seq && live.GzSize == 0 {
					live.GzSize = st.Size()
				}
				s.mu.Unlock()
				total += st.Size()
				continue
			}
		}
		raw, err := os.ReadFile(s.segmentPath(m.Seq))
		if err != nil {
			return 0, fmt.Errorf("store: spool read: %w", err)
		}
		gz, err := codec.Compress(raw)
		if err != nil {
			return 0, fmt.Errorf("store: spool compress: %w", err)
		}
		// Atomic, because the skip check above treats existence as
		// completeness: a torn artifact must never land under the final name.
		if err := writeFileAtomic(gzPath, gz); err != nil {
			return 0, fmt.Errorf("store: spool write: %w", err)
		}
		// Metas returned a snapshot; commit GzSize to the live record.
		s.mu.Lock()
		if live, ok := s.index[m.Key]; ok && live.Seq == m.Seq {
			live.GzSize = int64(len(gz))
		}
		s.mu.Unlock()
		total += int64(len(gz))
	}
	// Packs hold every distinct chunk of the run (or, for a shared pool, of
	// the whole run family), so unlike segments they can be far larger than
	// any one checkpoint; the pool streams each dirty shard through gzip,
	// shards in parallel.
	if s.format == FormatV2 {
		n, err := s.pool.spool()
		if err != nil {
			return 0, err
		}
		total += n
	}
	obs.C(obs.MStoreSpoolPasses).Inc()
	obs.H(obs.MStoreSpoolSeconds).ObserveNs(time.Since(p0).Nanoseconds())
	obs.G(obs.MStoreSpoolArtifactBytes).Set(total)
	return total, nil
}

// gzTrailerMatches reports whether the gzip artifact's ISIZE trailer (last
// four bytes: uncompressed length mod 2^32) matches the source's size — a
// cheap completeness probe that rejects truncated artifacts without
// decompressing anything.
func gzTrailerMatches(gzPath string, rawSize int64) bool {
	f, err := os.Open(gzPath)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < 4 {
		return false
	}
	var tr [4]byte
	if _, err := f.ReadAt(tr[:], st.Size()-4); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(tr[:]) == uint32(rawSize)
}

// countingWriter counts bytes forwarded to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// TotalSize returns the uncompressed byte total of all committed
// checkpoints.
func (s *Store) TotalSize() int64 {
	var total int64
	for _, m := range s.Metas() {
		total += m.Size
	}
	return total
}

// GC reclaims space from superseded materializations: segment files that
// are no longer the latest checkpoint for their key are deleted, and —
// format v2 private-pack stores — chunks referenced only by those
// superseded checkpoints are compacted out of the packs (GCWith for the
// knobs and full accounting). It returns the number of segments removed.
//
// Compaction is safe under concurrent readers: packs are never rewritten in
// place. Survivors move to a new pack generation, the manifest's chunk
// records are atomically rewritten to the new locations, and the replaced
// generation stays on disk as a grace-period tombstone (GCOptions.
// PackRetention) so a reader that resolved locations before the swap —
// including a concurrent OpenReadOnly store — keeps reading valid bytes. A
// later GC pass deletes expired generations.
//
// Pooled runs GC only their segments here; their chunks are shared with
// sibling runs and are reclaimed by GCPool, which consults every lease.
func (s *Store) GC() (int, error) {
	res, err := s.GCWith(GCOptions{})
	return res.Segments, err
}

// GCWith is GC with explicit options and full reclamation accounting.
func (s *Store) GCWith(o GCOptions) (GCResult, error) {
	var res GCResult
	if s.readOnly {
		return res, ErrReadOnly
	}
	if s.pooled {
		// Pooled runs GC only their segments here (chunks are shared;
		// GCPool reclaims them, so SkipChunks changes nothing) — but the
		// sweep always runs under the pool's GC fence: a segment deleted
		// mid-put would hide its chunk references from a concurrent GCPool
		// mark.
		s.pool.gcMu.Lock()
		defer s.pool.gcMu.Unlock()
		n, err := s.sweepSegments()
		res.Segments = n
		return res, err
	}
	if s.format != FormatV2 || o.SkipChunks {
		// v1 (or chunk-skipping private) GC: just the segment sweep. With
		// no chunk mark downstream, sweeping a racing put's segment costs
		// at most that one checkpoint's readability, never pack bytes.
		n, err := s.sweepSegments()
		res.Segments = n
		return res, err
	}

	// Private v2: the segment sweep AND the chunk mark run inside the
	// pool's GC fence (the mark callback executes under gcMu). Puts hold
	// the fence's read side from before their segment write to after their
	// manifest commit, so under the write lock every on-disk segment is
	// either committed (and its meta live or superseded in the index) or an
	// orphan of a failed put — never a mid-flight checkpoint the sweep
	// could vanish before the mark counts its chunk references.
	mark := func() (map[ckptfmt.Hash]bool, error) {
		n, err := s.sweepSegments()
		if err != nil {
			return nil, err
		}
		res.Segments = n
		liveChunks := map[ckptfmt.Hash]bool{}
		if err := collectLiveChunks(s.dir, liveChunks); err != nil {
			return nil, fmt.Errorf("store: gc: %w", err)
		}
		obs.C(obs.MStoreGCMarkedChunks).Add(int64(len(liveChunks)))
		return liveChunks, nil
	}
	cres, err := s.pool.gc(mark, o, s.persistCompaction)
	res.DeadChunks = cres.DeadChunks
	res.ReclaimedBytes = cres.ReclaimedBytes
	res.CompactedShards = cres.CompactedShards
	res.RetiredPacks = cres.RetiredPacks
	res.DeletedPacks = cres.DeletedPacks
	if err != nil {
		return res, err
	}
	if cres.DeadChunks > 0 {
		s.mu.Lock()
		st := s.pool.Stats()
		s.dedup.ChunksStored = st.Chunks
		s.dedup.StoredRawBytes = st.StoredRawBytes
		s.dedup.StoredEncBytes = st.StoredEncBytes
		s.mu.Unlock()
	}
	recordGCMetrics(res)
	return res, nil
}

// recordGCMetrics folds one GC pass's accounting into the registry.
func recordGCMetrics(res GCResult) {
	obs.C(obs.MStoreGCPasses).Inc()
	obs.C(obs.MStoreGCDeadChunks).Add(int64(res.DeadChunks))
	obs.C(obs.MStoreGCRewrittenShards).Add(int64(res.CompactedShards))
	obs.C(obs.MStoreGCTombstonedPacks).Add(int64(res.RetiredPacks))
	obs.C(obs.MStoreGCDeletedPacks).Add(int64(res.DeletedPacks))
}

// sweepSegments deletes segment files that are no longer the latest
// checkpoint for their key, returning the number removed. The caller
// provides the concurrency fence (see GCWith); the seq horizon additionally
// spares segments allocated after the index snapshot on the unfenced paths.
func (s *Store) sweepSegments() (int, error) {
	s.mu.Lock()
	live := map[int]bool{}
	for _, m := range s.index {
		live[m.Seq] = true
	}
	seqHorizon := s.nextSeq
	var kept []*Meta
	for _, m := range s.metas {
		if live[m.Seq] {
			kept = append(kept, m)
		}
	}
	s.metas = kept
	s.mu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "ckpt-%d.bin", &seq); err != nil {
			continue
		}
		if !live[seq] && seq < seqHorizon {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return removed, fmt.Errorf("store: gc remove: %w", err)
			}
			os.Remove(filepath.Join(s.dir, name+".gz"))
			removed++
		}
	}
	return removed, nil
}

// persistCompaction is the private-pool compaction commit: the FORMAT
// marker gains the "gc" flag (pre-GC builds must refuse before the
// manifest starts naming pack generations they would resolve against the
// wrong object), then the manifest is atomically rewritten — the surviving
// chunk records at their new locations, then the live meta records.
func (s *Store) persistCompaction(recs []poolChunkRec) error {
	if !s.gcMarked {
		s.gcMarked = true
		if err := s.writeMarker(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for _, cr := range recs {
		buf = append(buf, s.frameRecord(recChunk, encodeChunkRecord(cr.hash, cr.loc))...)
	}
	for _, m := range s.metas {
		buf = append(buf, s.frameRecord(recMeta, encodeMeta(m))...)
	}
	if err := writeFileAtomic(s.manifestPath(), buf); err != nil {
		return fmt.Errorf("store: rewrite manifest: %w", err)
	}
	return nil
}
