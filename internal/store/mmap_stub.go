//go:build !unix

package store

import "errors"

// errNoMmap makes OpenMapped fail cleanly on platforms without syscall.Mmap;
// the pool falls back to ranged reads on any mapping error.
var errNoMmap = errors.New("store: memory-mapped pack reads unsupported on this platform")

// OpenMapped implements MappedBackend on non-unix platforms by always
// declining, which routes every read through the streamed path.
func (b *DirBackend) OpenMapped(name string) (*Mapping, error) {
	return nil, errNoMmap
}
