//go:build !linux

package store

import "errors"

// preadvSupported gates the vectored scatter-read fast path in fetchShard;
// without preadv(2) direct-read jobs use per-frame ranged reads instead.
const preadvSupported = false

func preadvFull(fd uintptr, iovs [][]byte, off int64) error {
	return errors.New("preadv unsupported on this platform")
}
