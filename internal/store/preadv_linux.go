//go:build linux

package store

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"

	"flor.dev/flor/internal/codec"
)

// preadvSupported gates the vectored scatter-read fast path in fetchShard.
const preadvSupported = true

// iovMax caps the vector length of one preadv call (IOV_MAX).
const iovMax = 1024

// preadvFull reads len(iovs) buffers' worth of bytes starting at off, filling
// the buffers in order, retrying short reads and EINTR until every byte is in
// place. Returns an error if the file ends early.
func preadvFull(fd uintptr, iovs [][]byte, off int64) error {
	var want int
	for _, b := range iovs {
		want += len(b)
	}
	done := 0
	iv := make([]syscall.Iovec, 0, min(len(iovs), iovMax))
	for done < want {
		iv = iv[:0]
		skip := done
		for _, b := range iovs {
			if skip >= len(b) {
				skip -= len(b)
				continue
			}
			part := b[skip:]
			skip = 0
			iv = append(iv, syscall.Iovec{Base: &part[0], Len: uint64(len(part))})
			if len(iv) == iovMax {
				break
			}
		}
		pos := off + int64(done)
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV, fd,
			uintptr(unsafe.Pointer(&iv[0])), uintptr(len(iv)),
			uintptr(pos&0xffffffff), uintptr(pos>>32), 0)
		runtime.KeepAlive(iovs)
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return fmt.Errorf("preadv: %v", errno)
		}
		if n == 0 {
			return fmt.Errorf("%w: preadv: unexpected EOF at %d (%d of %d bytes)",
				codec.ErrCorrupt, pos, done, want)
		}
		done += int(n)
	}
	return nil
}
