package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/codec"
)

// mutatingSections yields a checkpoint whose payload is fully fresh every
// call — compaction's best case once superseded.
func mutatingSections(seed uint64) []Section {
	return []Section{{Name: "w", Data: testPayload(512<<10, seed)}}
}

func TestGCCompactsSupersededChunks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	// Three materializations of the same key: the first two are fully
	// superseded, and their chunks are referenced by nothing live.
	for i := 0; i < 3; i++ {
		if _, err := s.PutSections(key, mutatingSections(uint64(1+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Dedup()
	res, err := s.GCWith(GCOptions{PackRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 {
		t.Fatalf("segments removed = %d, want 2", res.Segments)
	}
	if res.DeadChunks == 0 || res.CompactedShards == 0 || res.ReclaimedBytes == 0 {
		t.Fatalf("no chunks compacted: %+v", res)
	}
	after := s.Dedup()
	if after.StoredRawBytes >= before.StoredRawBytes {
		t.Fatalf("stored raw bytes did not shrink: %d -> %d", before.StoredRawBytes, after.StoredRawBytes)
	}

	// The live checkpoint still reads back, from the new pack generation.
	secs, ok, err := s.GetSections(key, nil)
	if err != nil || !ok {
		t.Fatalf("post-GC read: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(secs[0].Data, mutatingSections(3)[0].Data) {
		t.Fatal("post-GC payload mismatch")
	}

	// And survives reopen: the rewritten manifest carries generation
	// records, the marker carries the gc flag, pre-GC markers still parse.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after GC: %v", err)
	}
	secs, ok, err = s2.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, mutatingSections(3)[0].Data) {
		t.Fatalf("reopen read: ok=%v err=%v", ok, err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, formatFile))
	if m, err := parseFormatMarker(raw); err != nil || !m.gc {
		t.Fatalf("marker %q: parsed %+v err=%v, want gc flag", raw, m, err)
	}

	// New writes after compaction land in the new generation and read back.
	if _, err := s2.PutSections(Key{LoopID: "train", Exec: 1}, mutatingSections(9), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.GetSections(Key{LoopID: "train", Exec: 1}, nil); err != nil || !ok {
		t.Fatalf("post-GC write read-back: ok=%v err=%v", ok, err)
	}
}

// TestGCRetainsPacksForConcurrentReader pins the grace period: a store
// opened read-only before compaction keeps resolving chunk reads against
// the replaced pack generation, which must survive on disk until the
// retention deadline passes — and be deleted by a later pass after it.
func TestGCRetainsPacksForConcurrentReader(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	for i := 0; i < 2; i++ {
		if _, err := s.PutSections(key, mutatingSections(uint64(20+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Reader from "another process": it replayed the manifest before GC and
	// holds generation-0 locations.
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.GCWith(GCOptions{PackRetention: time.Hour}); err != nil {
		t.Fatal(err)
	}

	secs, ok, err := ro.GetSections(key, nil)
	if err != nil || !ok {
		t.Fatalf("pre-GC reader after compaction: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(secs[0].Data, mutatingSections(21)[0].Data) {
		t.Fatal("pre-GC reader got wrong bytes")
	}

	// Deletion honors the deadline recorded at retirement time: a pass
	// before expiry leaves the pack alone.
	if res, err := s.GCWith(GCOptions{PackRetention: time.Hour}); err != nil || res.DeletedPacks != 0 {
		t.Fatalf("pack deleted before its deadline: %+v err=%v", res, err)
	}
	if secs, ok, err := ro.GetSections(key, nil); err != nil || !ok || !bytes.Equal(secs[0].Data, mutatingSections(21)[0].Data) {
		t.Fatalf("pre-GC reader after second pass: ok=%v err=%v", ok, err)
	}
}

// TestGCDeletesExpiredPackGenerations pins the other half of the grace
// period: once a retired generation's deadline passes, the next GC pass
// deletes it, and fresh readers (which resolve against the new generation)
// are unaffected.
func TestGCDeletesExpiredPackGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	for i := 0; i < 2; i++ {
		if _, err := s.PutSections(key, mutatingSections(uint64(40+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Retire with an (already expired) nanosecond retention; the pack still
	// survives this pass — deletion is always a later pass's job, so a
	// reader between the passes keeps working.
	if res, err := s.GCWith(GCOptions{PackRetention: time.Nanosecond}); err != nil || res.CompactedShards == 0 {
		t.Fatalf("compaction: %+v err=%v", res, err)
	}
	if _, err := os.Stat(filepath.Join(dir, packFile)); err != nil {
		t.Fatalf("retired pack deleted in the same pass: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	res, err := s.GCWith(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeletedPacks == 0 {
		t.Fatalf("expired pack not deleted: %+v", res)
	}
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if secs, ok, err := ro.GetSections(key, nil); err != nil || !ok || !bytes.Equal(secs[0].Data, mutatingSections(41)[0].Data) {
		t.Fatalf("post-expiry reader: ok=%v err=%v", ok, err)
	}
}

// TestGCRacesConcurrentReads drives GC passes while reader goroutines
// resolve and fetch in a loop (the -race lane exercises the locking).
func TestGCRacesConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := Key{LoopID: "train", Exec: 0}
	want := mutatingSections(77)[0].Data
	if _, err := s.PutSections(live, mutatingSections(77), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				secs, ok, err := s.GetSections(live, nil)
				if err != nil || !ok || !bytes.Equal(secs[0].Data, want) {
					errs <- fmt.Errorf("concurrent read: ok=%v err=%v", ok, err)
					return
				}
			}
		}()
	}
	// Writer churn: supersede a second key repeatedly, GC between rounds.
	for i := 0; i < 5; i++ {
		if _, err := s.PutSections(Key{LoopID: "train", Exec: 1}, mutatingSections(uint64(100+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.GCWith(GCOptions{PackRetention: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReopenAfterCrashedCompaction simulates the two crash windows of a
// compaction pass: (a) the new-generation pack was written but the commit
// (manifest rewrite) never happened, and (b) the marker gained the gc flag
// but the manifest was not rewritten. Both must reopen cleanly, and a later
// GC must complete over the leftovers.
func TestReopenAfterCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	for i := 0; i < 2; i++ {
		if _, err := s.PutSections(key, mutatingSections(uint64(30+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Crash window (a): a stray higher-generation pack object with garbage
	// content (the atomic Create of a crashed pass would have left a
	// committed object; a torn temp file never lands under the real name —
	// mirror the spool pattern by planting a committed-but-unreferenced
	// object).
	if err := os.WriteFile(filepath.Join(dir, packObjName(packFile, 1)), []byte("leftover"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash window (b): marker already carries the gc flag.
	if err := writeFileAtomic(filepath.Join(dir, formatFile), formatMarker(1, false, true, false)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crashed compaction: %v", err)
	}
	secs, ok, err := s2.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, mutatingSections(31)[0].Data) {
		t.Fatalf("read after crashed compaction: ok=%v err=%v", ok, err)
	}

	// A later GC completes: the real compaction atomically replaces the
	// stray generation-1 object and commits.
	res, err := s2.GCWith(GCOptions{PackRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadChunks == 0 {
		t.Fatalf("crashed-over GC reclaimed nothing: %+v", res)
	}
	if _, ok, err := s2.GetSections(key, nil); err != nil || !ok {
		t.Fatalf("read after recovery GC: ok=%v err=%v", ok, err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("final reopen: %v", err)
	}
}

// TestGCPoolRefcountReleaseOnRunDelete pins the shared-pool refcount story:
// deleting a run (directory + lease) releases its references, a GCPool pass
// reclaims the chunks only it held, and surviving siblings keep replaying.
func TestGCPoolRefcountReleaseOnRunDelete(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	keep := filepath.Join(base, "run-keep")
	gone := filepath.Join(base, "run-gone")

	a := openPooled(t, keep, pool)
	b := openPooled(t, gone, pool)
	key := Key{LoopID: "train", Exec: 0}
	// Shared backbone + distinct heads: deleting run-gone must reclaim its
	// unique head chunks and keep the shared backbone.
	if _, err := a.PutSections(key, familySections(1, 100, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutSections(key, familySections(1, 200, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	before, _ := PoolStatsAt(pool)

	if err := DeleteRun(gone); err != nil {
		t.Fatal(err)
	}
	res, err := GCPool(pool, GCOptions{PackRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadChunks == 0 {
		t.Fatalf("deleting a run reclaimed no chunks: %+v", res)
	}
	after, _ := PoolStatsAt(pool)
	if after.Chunks >= before.Chunks {
		t.Fatalf("pool chunks %d -> %d; want decrease", before.Chunks, after.Chunks)
	}

	// The surviving sibling still reads everything, live, and after reopen.
	secs, ok, err := a.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, familySections(1, 100, 0)[0].Data) {
		t.Fatalf("sibling read after pool GC: ok=%v err=%v", ok, err)
	}
	resetPoolRegistry()
	a2, err := Open(keep)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := a2.GetSections(key, nil); err != nil || !ok {
		t.Fatalf("sibling reopen after pool GC: ok=%v err=%v", ok, err)
	}

	// A second run of GCPool with nothing dead is a no-op, not an error.
	if _, err := GCPool(pool, GCOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestGCPoolSparesInFlightSegments pins the mark source: chunks referenced
// only by a segment file whose manifest commit never happened (a crashed
// materialization) are still treated as live — segments land on disk before
// pack bytes, so the file is the earliest durable evidence of a reference.
func TestGCPoolSparesInFlightSegments(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")
	run := filepath.Join(base, "run")
	s := openPooled(t, run, pool)
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, familySections(1, 1, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: drop the manifest's tail (the meta record) so the
	// checkpoint is uncommitted, while its segment file and chunks exist.
	manifest := filepath.Join(run, manifestFile)
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last record boundary (the meta record is last).
	off, last := 0, 0
	for off < len(raw) {
		_, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			t.Fatal(err)
		}
		last = off
		off += consumed
	}
	if err := os.WriteFile(manifest, raw[:last], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := GCPool(pool, GCOptions{PackRetention: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// The chunks survived: a reopen (which truncation-recovers the torn
	// manifest) can re-commit or re-read; at minimum the pool still holds
	// the segment's chunks.
	live := map[string]bool{}
	_ = live
	resetPoolRegistry()
	st, err := Open(run)
	if err != nil {
		t.Fatal(err)
	}
	// The meta record is gone (manifest truncated), so the checkpoint is
	// not indexed — but re-putting the same content must dedup against the
	// spared chunks without corruption.
	if _, err := st.PutSections(Key{LoopID: "train", Exec: 0}, familySections(1, 1, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	secs, ok, err := st.GetSections(Key{LoopID: "train", Exec: 0}, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, familySections(1, 1, 0)[0].Data) {
		t.Fatalf("read after spared-segment GC: ok=%v err=%v", ok, err)
	}
}

func TestGCReadOnlyRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutSections(Key{LoopID: "t", Exec: 0}, mutatingSections(1), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.GCWith(GCOptions{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("GC on read-only store: %v", err)
	}
}

// TestGCSparesSegmentsBeyondSnapshot pins the seq horizon: a segment file
// whose sequence number postdates GC's index snapshot belongs to an
// in-flight put, not a superseded checkpoint — the sweep must not delete it
// and the chunk mark must count its references.
func TestGCSparesSegmentsBeyondSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, mutatingSections(50), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Simulate a put that raced past the snapshot: its segment (seq 5, far
	// beyond nextSeq's committed range) is on disk, its manifest record is
	// not yet. The segment references the same chunks as the committed
	// checkpoint — exactly what a dedup hit would pin.
	src, err := os.ReadFile(s.segmentPath(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.segmentPath(5), src, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := s.GCWith(GCOptions{PackRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 0 {
		t.Fatalf("swept %d segments; the in-flight segment must be spared", res.Segments)
	}
	if _, err := os.Stat(s.segmentPath(5)); err != nil {
		t.Fatalf("in-flight segment deleted: %v", err)
	}
	if _, ok, err := s.GetSections(Key{LoopID: "train", Exec: 0}, nil); err != nil || !ok {
		t.Fatalf("committed checkpoint unreadable after GC: ok=%v err=%v", ok, err)
	}
}

// TestGCMarkFailsClosed pins collectLiveChunks' fail-closed contract: a
// segment GC's mark cannot decode must abort the pass (no compaction)
// instead of being treated as referencing nothing.
func TestGCMarkFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	for i := 0; i < 2; i++ {
		if _, err := s.PutSections(key, mutatingSections(uint64(60+i)), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Plant an undecodable segment beyond the committed range (a torn
	// future write cannot happen — segments commit by rename — but a
	// corrupted file must still fail the mark, not silently unpin chunks).
	if err := os.WriteFile(s.segmentPath(7), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GCWith(GCOptions{PackRetention: time.Hour}); err == nil {
		t.Fatal("GC succeeded with an undecodable segment in the mark set")
	}
	if _, ok, err := s.GetSections(key, nil); err != nil || !ok {
		t.Fatalf("checkpoint unreadable after aborted GC: ok=%v err=%v", ok, err)
	}
}

// TestGCPoolRetiredPackReusedAfterReopen pins the generation-reset hazard:
// a shard compacted down to zero chunks persists no generation records, so
// a reopen resumes appending to the very pack object an earlier pass
// retired — which must then never be deleted while it is active again.
func TestGCPoolRetiredPackReusedAfterReopen(t *testing.T) {
	base := t.TempDir()
	pool := filepath.Join(base, "POOL")

	// One run, then delete it: every chunk dies, every involved shard
	// compacts to empty, and the generation-0 objects retire with an
	// (immediately expired) deadline.
	gone := filepath.Join(base, "run-gone")
	s := openPooled(t, gone, pool)
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 0}, familySections(9, 9, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := DeleteRun(gone); err != nil {
		t.Fatal(err)
	}
	if res, err := GCPool(pool, GCOptions{PackRetention: time.Nanosecond}); err != nil || res.DeadChunks == 0 {
		t.Fatalf("pool GC after delete: %+v err=%v", res, err)
	}

	// "Restart": the empty INDEX resets every shard to generation 0 — the
	// retired objects' names. A fresh run appends into them.
	resetPoolRegistry()
	keep := filepath.Join(base, "run-keep")
	s2 := openPooled(t, keep, pool)
	key := Key{LoopID: "train", Exec: 0}
	if _, err := s2.PutSections(key, familySections(8, 8, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	// A later pass sees the stale, expired retirement entries — but the
	// objects are active again and must survive.
	time.Sleep(2 * time.Millisecond)
	if _, err := GCPool(pool, GCOptions{PackRetention: time.Hour}); err != nil {
		t.Fatal(err)
	}
	secs, ok, err := s2.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, familySections(8, 8, 0)[0].Data) {
		t.Fatalf("read after stale-retirement GC: ok=%v err=%v (active pack deleted?)", ok, err)
	}
	resetPoolRegistry()
	s3, err := Open(keep)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s3.GetSections(key, nil); err != nil || !ok {
		t.Fatalf("reopen read after stale-retirement GC: ok=%v err=%v", ok, err)
	}
}

// TestGCPoolSurvivesProjectRelocation pins relocatability: a project tree
// (runs + POOL) moved as a unit keeps replaying via its relative
// references, and a pool GC after the move must not mistake every leased
// run for deleted and reclaim the family's chunks.
func TestGCPoolSurvivesProjectRelocation(t *testing.T) {
	base := t.TempDir()
	proj := filepath.Join(base, "proj")
	run := filepath.Join(proj, "run")
	s := openPooled(t, run, filepath.Join(proj, "POOL"))
	key := Key{LoopID: "train", Exec: 0}
	if _, err := s.PutSections(key, familySections(3, 4, 0), 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	resetPoolRegistry()
	moved := filepath.Join(base, "proj-moved")
	if err := os.Rename(proj, moved); err != nil {
		t.Fatal(err)
	}
	res, err := GCPool(filepath.Join(moved, "POOL"), GCOptions{PackRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadChunks != 0 {
		t.Fatalf("GC after relocation reclaimed %d chunks of a live run", res.DeadChunks)
	}
	st, err := Open(filepath.Join(moved, "run"))
	if err != nil {
		t.Fatal(err)
	}
	secs, ok, err := st.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, familySections(3, 4, 0)[0].Data) {
		t.Fatalf("relocated run unreadable after pool GC: ok=%v err=%v", ok, err)
	}
}

// TestGCPoolRefusesNonPool pins the typo guard: GC of a path that is not a
// chunk pool errors instead of silently creating an empty pool there.
func TestGCPoolRefusesNonPool(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := GCPool(missing, GCOptions{}); err == nil {
		t.Fatal("GCPool on a nonexistent root must error")
	}
	if _, err := os.Stat(missing); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("GCPool created a pool at the typo'd path: %v", err)
	}
}
