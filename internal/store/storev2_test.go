package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/xrand"
)

// noise returns n bytes of incompressible data.
func noise(n int, seed uint64) []byte {
	rng := xrand.New(seed)
	b := make([]byte, n)
	for i := range b {
		if i%8 == 0 {
			v := rng.Uint64()
			for j := 0; j < 8 && i+j < n; j++ {
				b[i+j] = byte(v >> (8 * j))
			}
		}
	}
	return b
}

func TestPutSectionsGetSectionsRoundTrip(t *testing.T) {
	s := openTemp(t)
	big := noise(3*ckptfmt.DefaultChunkSize+123, 1) // forces multi-chunk sections
	secs := []Section{
		{Name: "net", Data: big},
		{Name: "rng", Data: []byte("tiny rng state!!!")},
		{Name: "empty", Data: nil},
	}
	key := Key{LoopID: "train", Exec: 0}
	m, err := s.PutSections(key, secs, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Format != FormatV2 {
		t.Fatalf("meta format = %d", m.Format)
	}
	if m.Size != int64(len(big)+17) {
		t.Fatalf("meta size = %d", m.Size)
	}
	got, ok, err := s.GetSections(key, nil)
	if err != nil || !ok {
		t.Fatalf("GetSections: ok=%v err=%v", ok, err)
	}
	if len(got) != 3 || got[0].Name != "net" || got[1].Name != "rng" || got[2].Name != "empty" {
		t.Fatalf("sections = %+v", got)
	}
	if !bytes.Equal(got[0].Data, big) || string(got[1].Data) != "tiny rng state!!!" || len(got[2].Data) != 0 {
		t.Fatal("section data mismatch")
	}
}

func TestGetSectionsFallsBackForOpaqueAndV1(t *testing.T) {
	s := openTemp(t)
	s.Put(Key{LoopID: "L", Exec: 0}, []byte("opaque blob"), 0, 0, 0)
	if _, ok, err := s.GetSections(Key{LoopID: "L", Exec: 0}, nil); ok || err != nil {
		t.Fatalf("opaque checkpoint: ok=%v err=%v, want fallback", ok, err)
	}

	v1dir := t.TempDir()
	v1, err := OpenFormat(v1dir, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	v1.Put(Key{LoopID: "L", Exec: 0}, []byte("v1 blob"), 0, 0, 0)
	if _, ok, err := v1.GetSections(Key{LoopID: "L", Exec: 0}, nil); ok || err != nil {
		t.Fatalf("v1 checkpoint: ok=%v err=%v, want fallback", ok, err)
	}
}

func TestDedupAcrossCheckpoints(t *testing.T) {
	// The frozen-layer scenario: a large unchanged section plus a small
	// mutating one. The frozen bytes must hit the pack exactly once.
	s := openTemp(t)
	frozen := noise(2*ckptfmt.DefaultChunkSize, 7)
	const epochs = 5
	var firstStored, laterStored int64
	for e := 0; e < epochs; e++ {
		m, err := s.PutSections(Key{LoopID: "train", Exec: e}, []Section{
			{Name: "net", Data: frozen},
			{Name: "step", Data: []byte(fmt.Sprintf("epoch-%d", e))},
		}, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			firstStored = m.StoredBytes
		} else {
			laterStored += m.StoredBytes
		}
	}
	if firstStored < int64(len(frozen)) {
		t.Fatalf("first checkpoint stored %d bytes, want >= %d", firstStored, len(frozen))
	}
	if laterStored >= int64(len(frozen)) {
		t.Fatalf("later checkpoints stored %d bytes; frozen section not deduped", laterStored)
	}
	d := s.Dedup()
	if d.Ratio() < 2 {
		t.Fatalf("dedup ratio = %.2f, want > 2 for %d epochs of frozen state", d.Ratio(), epochs)
	}
	// Every checkpoint still reads back correctly.
	for e := 0; e < epochs; e++ {
		secs, ok, err := s.GetSections(Key{LoopID: "train", Exec: e}, nil)
		if err != nil || !ok {
			t.Fatalf("epoch %d: ok=%v err=%v", e, ok, err)
		}
		if !bytes.Equal(secs[0].Data, frozen) || string(secs[1].Data) != fmt.Sprintf("epoch-%d", e) {
			t.Fatalf("epoch %d data mismatch", e)
		}
	}
}

func TestDedupIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	frozen := noise(ckptfmt.DefaultChunkSize, 3)
	s.PutSections(Key{LoopID: "L", Exec: 0}, []Section{{Name: "net", Data: frozen}}, 0, 0, 0)
	s.PutSections(Key{LoopID: "L", Exec: 1}, []Section{{Name: "net", Data: frozen}}, 0, 0, 0)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		secs, ok, err := s2.GetSections(Key{LoopID: "L", Exec: e}, nil)
		if err != nil || !ok || !bytes.Equal(secs[0].Data, frozen) {
			t.Fatalf("epoch %d after reopen: ok=%v err=%v", e, ok, err)
		}
	}
	if r := s2.Dedup().Ratio(); r < 1.9 {
		t.Fatalf("reopened dedup ratio = %.2f, want ~2", r)
	}
	// New writes dedup against the reopened index too.
	m, err := s2.PutSections(Key{LoopID: "L", Exec: 2}, []Section{{Name: "net", Data: frozen}}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.StoredBytes > int64(len(frozen))/2 {
		t.Fatalf("post-reopen put stored %d bytes; index not rebuilt", m.StoredBytes)
	}
}

// TestTornManifestTailWithV2Records cuts the manifest mid-way through the
// typed chunk/meta record stream at every offset: the store must open
// cleanly and serve exactly the fully committed checkpoints.
func TestTornManifestTailWithV2Records(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	shared := noise(1024, 5)
	for i := 0; i < 3; i++ {
		s.PutSections(Key{LoopID: "L", Exec: i}, []Section{
			{Name: "net", Data: shared},
			{Name: "w", Data: noise(2048, uint64(i)+10)},
		}, 0, 0, 0)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(manifest); cut += 5 {
		cutDir := t.TempDir()
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if e.Name() == "MANIFEST" {
				continue
			}
			data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
			os.WriteFile(filepath.Join(cutDir, e.Name()), data, 0o644)
		}
		os.WriteFile(filepath.Join(cutDir, "MANIFEST"), manifest[:cut], 0o644)
		sc, err := Open(cutDir)
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		for _, m := range sc.Metas() {
			secs, ok, err := sc.GetSections(m.Key, nil)
			if err != nil || !ok {
				t.Fatalf("cut %d: committed checkpoint %s unreadable: %v", cut, m.Key, err)
			}
			if !bytes.Equal(secs[0].Data, shared) {
				t.Fatalf("cut %d: %s shared section corrupt", cut, m.Key)
			}
		}
		// The truncated store must stay writable.
		if _, err := sc.PutSections(Key{LoopID: "L", Exec: 99}, []Section{{Name: "net", Data: shared}}, 0, 0, 0); err != nil {
			t.Fatalf("cut %d: post-truncation write failed: %v", cut, err)
		}
	}
}

// TestFlippedPackByteSurfacesErrCorrupt flips every byte of the chunk pack
// in turn; reads of the affected checkpoint must fail with codec.ErrCorrupt
// rather than return garbage state.
func TestFlippedPackByteSurfacesErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key{LoopID: "L", Exec: 0}
	s.PutSections(key, []Section{{Name: "w", Data: noise(512, 2)}}, 0, 0, 0)
	packPath := filepath.Join(dir, "CHUNKS")
	pack, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pack {
		mut := bytes.Clone(pack)
		mut[i] ^= 0xff
		os.WriteFile(packPath, mut, 0o644)
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("byte %d: open failed: %v", i, err)
		}
		if _, _, err := s2.GetSections(key, nil); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("byte %d: error %v is not codec.ErrCorrupt", i, err)
		}
	}
	os.WriteFile(packPath, pack, 0o644)
}

func TestFlippedSegmentDirectoryByteDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := Key{LoopID: "L", Exec: 0}
	m, _ := s.PutSections(key, []Section{{Name: "w", Data: noise(256, 4)}}, 0, 0, 0)
	segPath := filepath.Join(dir, fmt.Sprintf("ckpt-%08d.bin", m.Seq))
	seg, _ := os.ReadFile(segPath)
	for i := range seg {
		mut := bytes.Clone(seg)
		mut[i] ^= 0xff
		os.WriteFile(segPath, mut, 0o644)
		if _, _, err := s.GetSections(key, nil); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("byte %d: error %v is not codec.ErrCorrupt", i, err)
		}
	}
	os.WriteFile(segPath, seg, 0o644)
}

// TestV1StoreRemainsReadableAndWritable pins backward compatibility: a run
// directory recorded in format v1 (no FORMAT marker) opens as v1, serves its
// checkpoints, and keeps writing v1 segments.
func TestV1StoreRemainsReadableAndWritable(t *testing.T) {
	dir := t.TempDir()
	v1, err := OpenFormat(dir, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	payload := noise(4096, 8)
	v1.Put(Key{LoopID: "train", Exec: 0}, payload, 0, 0, 0)
	if _, err := os.Stat(filepath.Join(dir, "FORMAT")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("v1 store grew a FORMAT marker")
	}

	s, err := Open(dir) // auto-detect must pick v1
	if err != nil {
		t.Fatal(err)
	}
	if s.Format() != FormatV1 {
		t.Fatalf("auto-detected format %d, want v1", s.Format())
	}
	got, err := s.Get(Key{LoopID: "train", Exec: 0})
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("v1 read failed: %v", err)
	}
	if _, err := s.Put(Key{LoopID: "train", Exec: 1}, []byte("more"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "CHUNKS")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("v1 store grew a CHUNKS pack")
	}
	if _, err := s.PutSections(Key{LoopID: "train", Exec: 2}, []Section{{Name: "w", Data: payload}}, 0, 0, 0); err == nil {
		t.Fatal("PutSections on a v1 store must refuse")
	}
}

// TestFormatMismatchRefusedWithoutDataLoss pins the open guard: forcing the
// wrong format onto a recorded directory must error out, never misparse the
// manifest as a torn tail and truncate the run away.
func TestFormatMismatchRefusedWithoutDataLoss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir) // v2
	key := Key{LoopID: "L", Exec: 0}
	s.Put(key, []byte("precious"), 0, 0, 0)
	if _, err := OpenFormat(dir, FormatV1); err == nil {
		t.Fatal("forcing v1 onto a v2 directory succeeded")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(key); err != nil || string(got) != "precious" {
		t.Fatalf("data lost after refused mismatched open: %q, %v", got, err)
	}

	v1dir := t.TempDir()
	v1, _ := OpenFormat(v1dir, FormatV1)
	v1.Put(key, []byte("legacy"), 0, 0, 0)
	if _, err := OpenFormat(v1dir, FormatV2); err == nil {
		t.Fatal("forcing v2 onto a v1 directory succeeded")
	}

	// An unknown FORMAT marker (a future layout) must refuse, not truncate.
	os.WriteFile(filepath.Join(dir, "FORMAT"), []byte("3\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Fatal("unknown format marker opened")
	}
}

func TestNewStoresDefaultToV2(t *testing.T) {
	s := openTemp(t)
	if s.Format() != FormatV2 {
		t.Fatalf("new store format = %d, want v2", s.Format())
	}
	m, _ := s.Put(Key{LoopID: "L", Exec: 0}, []byte("x"), 0, 0, 0)
	if m.Format != FormatV2 {
		t.Fatalf("meta format = %d, want v2", m.Format)
	}
}

func TestGCKeepsSharedChunksReadable(t *testing.T) {
	s := openTemp(t)
	key := Key{LoopID: "train", Exec: 0}
	shared := noise(2048, 12)
	s.PutSections(key, []Section{{Name: "net", Data: shared}}, 0, 0, 0)
	s.PutSections(key, []Section{{Name: "net", Data: shared}}, 0, 0, 0) // supersedes; same content
	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d segments, want 1", removed)
	}
	secs, ok, err := s.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(secs[0].Data, shared) {
		t.Fatalf("latest checkpoint unreadable after GC: %v", err)
	}
}
