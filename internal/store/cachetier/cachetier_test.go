package cachetier_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"flor.dev/flor/internal/store/cachetier"
)

// source builds a deterministic backing object and a fetch function over it
// that counts remote reads.
func source(size int64, seed int64) ([]byte, func(off, n int64) ([]byte, error), *int64) {
	data := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	var fetches int64
	fetch := func(off, n int64) ([]byte, error) {
		fetches++
		if off < 0 || off+n > size {
			return nil, errors.New("out of range")
		}
		return data[off : off+n], nil
	}
	return data, fetch, &fetches
}

// TestCacheTierPropertyQuick drives random read schedules through disk and
// memory caches and checks the invariants that make the tier safe to trust:
// reads through the cache are byte-identical to the backing object, cached
// plus fetched always accounts for exactly the bytes returned, and resident
// bytes never exceed the configured budget.
func TestCacheTierPropertyQuick(t *testing.T) {
	for _, disk := range []bool{false, true} {
		name := "memory"
		if disk {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64, reads [12]uint32) bool {
				dir := ""
				if disk {
					dir = t.TempDir()
				}
				const budget, block = 16 << 10, 2 << 10
				c, err := cachetier.NewWithBlockSize(dir, budget, block)
				if err != nil {
					t.Fatal(err)
				}
				// Two objects sharing the cache, sized to overflow the budget
				// together so eviction is exercised.
				sizes := []int64{12<<10 + 37, 9<<10 + 1}
				objs := make([][]byte, len(sizes))
				fetchers := make([]func(off, n int64) ([]byte, error), len(sizes))
				for i, sz := range sizes {
					objs[i], fetchers[i], _ = source(sz, seed+int64(i))
				}
				for r, rv := range reads {
					oi := int(rv) % len(sizes)
					size := sizes[oi]
					off := int64(rv>>1) % size
					n := 1 + int64(rv>>3)%(size-off)
					p := make([]byte, n)
					cached, fetched, shared, err := c.ReadThrough(fmt.Sprintf("obj-%d", oi), size, off, p, fetchers[oi])
					if err != nil {
						t.Logf("read %d: %v", r, err)
						return false
					}
					if cached+fetched+shared != n {
						t.Logf("read %d: cached %d + fetched %d + shared %d != n %d", r, cached, fetched, shared, n)
						return false
					}
					if !bytes.Equal(p, objs[oi][off:off+n]) {
						t.Logf("read %d: bytes differ from source", r)
						return false
					}
					if st := c.Stats(); st.Bytes > budget {
						t.Logf("read %d: resident %d > budget %d", r, st.Bytes, budget)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCacheTierHitServesRemoteBytes pins the hit path: a repeated read is
// served fully from cache with zero remote fetches and identical bytes.
func TestCacheTierHitServesRemoteBytes(t *testing.T) {
	c, err := cachetier.NewWithBlockSize("", 1<<20, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	data, fetch, fetches := source(40<<10, 7)
	p := make([]byte, 40<<10)
	cached, fetched, _, err := c.ReadThrough("o", int64(len(data)), 0, p, fetch)
	if err != nil || cached != 0 || fetched != int64(len(p)) {
		t.Fatalf("cold: cached=%d fetched=%d err=%v", cached, fetched, err)
	}
	before := *fetches
	q := make([]byte, 40<<10)
	cached, fetched, _, err = c.ReadThrough("o", int64(len(data)), 0, q, fetch)
	if err != nil || fetched != 0 || cached != int64(len(q)) {
		t.Fatalf("warm: cached=%d fetched=%d err=%v", cached, fetched, err)
	}
	if *fetches != before {
		t.Fatalf("warm read fetched remotely %d times", *fetches-before)
	}
	if !bytes.Equal(p, q) || !bytes.Equal(p, data) {
		t.Fatal("hit returned different bytes than miss")
	}
	st := c.Stats()
	if st.Hits == 0 || st.HitBytes != int64(len(q)) {
		t.Fatalf("stats after warm read: %+v", st)
	}
}

// TestCacheTierAdmissionEviction pins the budget mechanics: oversized blocks
// are rejected outright, and filling past the budget evicts the least
// recently used blocks rather than growing.
func TestCacheTierAdmissionEviction(t *testing.T) {
	const budget, block = 8 << 10, 4 << 10
	c, err := cachetier.NewWithBlockSize("", budget, block)
	if err != nil {
		t.Fatal(err)
	}
	// An object read with a huge block size would exceed the budget per
	// block; simulate with a cache whose block is bigger than its budget.
	big, err := cachetier.NewWithBlockSize("", 1<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	data, fetch, _ := source(4<<10, 1)
	p := make([]byte, len(data))
	if _, _, _, err := big.ReadThrough("o", int64(len(data)), 0, p, fetch); err != nil {
		t.Fatal(err)
	}
	if st := big.Stats(); st.Rejected == 0 || st.Bytes != 0 {
		t.Fatalf("oversized block admitted: %+v", st)
	}

	// Three full blocks through a two-block budget: eviction, not growth.
	data, fetch, _ = source(3*block, 2)
	for i := int64(0); i < 3; i++ {
		p := make([]byte, block)
		if _, _, _, err := c.ReadThrough("o", int64(len(data)), i*block, p, fetch); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d > budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overflow: %+v", st)
	}

	// Invalidate drops residency to zero.
	c.Invalidate("o")
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("after invalidate: %+v", st)
	}
}

// TestCacheTierVersioning pins the stale-read guard: the same object name at
// a different length is a different cache key, so a rewritten object can
// never be served stale bytes.
func TestCacheTierVersioning(t *testing.T) {
	c, err := cachetier.NewWithBlockSize("", 1<<20, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	v1, fetch1, _ := source(8<<10, 3)
	p := make([]byte, len(v1))
	if _, _, _, err := c.ReadThrough("o", int64(len(v1)), 0, p, fetch1); err != nil {
		t.Fatal(err)
	}
	// Same name, one byte longer, different content.
	v2, fetch2, _ := source(8<<10+1, 4)
	q := make([]byte, len(v2))
	cached, _, _, err := c.ReadThrough("o", int64(len(v2)), 0, q, fetch2)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 0 {
		t.Fatalf("new version served %d stale cached bytes", cached)
	}
	if !bytes.Equal(q, v2) {
		t.Fatal("new version returned wrong bytes")
	}
}

// TestCacheTierSingleflightSharedFetch pins the cross-reader dedup: when
// several readers miss on the same block while one fetch is in flight, only
// the leader touches the remote; everyone else either joins the flight
// (shared bytes) or hits the freshly admitted block.
func TestCacheTierSingleflightSharedFetch(t *testing.T) {
	const size = 8 << 10
	data, _, _ := source(size, 7)
	c, err := cachetier.NewWithBlockSize("", 1<<20, size)
	if err != nil {
		t.Fatal(err)
	}

	var fetches atomic.Int32
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	fetch := func(off, n int64) ([]byte, error) {
		if fetches.Add(1) == 1 {
			close(leaderIn)
			<-gate // hold the flight open so followers can join it
		}
		return data[off : off+n], nil
	}

	const readers = 8
	var wg sync.WaitGroup
	var cachedB, fetchedB, sharedB atomic.Int64
	start := func() {
		defer wg.Done()
		p := make([]byte, size)
		cached, fetched, shared, err := c.ReadThrough("o", size, 0, p, fetch)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(p, data) {
			t.Error("reader got wrong bytes")
		}
		cachedB.Add(cached)
		fetchedB.Add(fetched)
		sharedB.Add(shared)
	}
	wg.Add(1)
	go start()
	<-leaderIn
	wg.Add(readers - 1)
	for i := 0; i < readers-1; i++ {
		go start()
	}
	// Give the followers a moment to reach the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d remote fetches for one block under %d readers, want 1", n, readers)
	}
	if sharedB.Load() == 0 {
		t.Fatal("no reader joined the in-flight fetch")
	}
	if got := cachedB.Load() + fetchedB.Load() + sharedB.Load(); got != readers*size {
		t.Fatalf("attributed %d bytes across tiers, want %d", got, readers*size)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Singleflights == 0 || st.SingleflightBytes != sharedB.Load() {
		t.Fatalf("stats after shared fetch: %+v", st)
	}
}

// TestCacheTierSingleflightLeaderFailure pins two behaviors at once: a
// follower whose leader's fetch failed falls back to its own fetch rather
// than caching the error, and the concurrent fallback admissions that
// result never double-count the block in the budget (idempotent admit,
// exercised on the disk path where the write happens outside the lock).
func TestCacheTierSingleflightLeaderFailure(t *testing.T) {
	const size = 4 << 10
	data, _, _ := source(size, 9)
	c, err := cachetier.NewWithBlockSize(t.TempDir(), 1<<20, size)
	if err != nil {
		t.Fatal(err)
	}

	var fetches atomic.Int32
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	fetch := func(off, n int64) ([]byte, error) {
		if fetches.Add(1) == 1 {
			close(leaderIn)
			<-gate
			return nil, errors.New("injected leader failure")
		}
		return data[off : off+n], nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		p := make([]byte, size)
		_, _, _, err := c.ReadThrough("o", size, 0, p, fetch)
		leaderErr <- err
	}()
	<-leaderIn

	const followers = 6
	var wg sync.WaitGroup
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func() {
			defer wg.Done()
			p := make([]byte, size)
			if _, _, _, err := c.ReadThrough("o", size, 0, p, fetch); err != nil {
				t.Errorf("follower: %v", err)
			} else if !bytes.Equal(p, data) {
				t.Error("follower got wrong bytes")
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader's failed fetch reported no error")
	}

	st := c.Stats()
	if st.Bytes != size {
		t.Fatalf("resident %d bytes after concurrent admissions of one %d-byte block", st.Bytes, size)
	}
	if st.Admitted != 1 {
		t.Fatalf("block admitted %d times, want 1 (idempotent admit): %+v", st.Admitted, st)
	}
	// The block is genuinely resident: a fresh read is a pure hit.
	before := fetches.Load()
	p := make([]byte, size)
	cached, _, _, err := c.ReadThrough("o", size, 0, p, fetch)
	if err != nil || cached != size || fetches.Load() != before {
		t.Fatalf("post-fallback read not served from cache: cached=%d err=%v", cached, err)
	}
}
