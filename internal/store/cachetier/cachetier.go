// Package cachetier implements the local read-through chunk cache that sits
// between a remote object backend and the checkpoint store's restore path.
// Remote pack reads land here block by block: a hit is served from local
// disk (or memory), a miss fetches the block from the remote store and —
// subject to size-bounded admission control — keeps it for the next restore.
// The cache is what makes a stateless serving daemon cheap to re-point at a
// shared remote pool: the first restore of a run pays remote ranged-GET
// latency once, every later restore streams from the cache tier.
//
// Entries are keyed by (object, object length, block index). Pack objects
// are append-only and generations are immutable once written, so versioning
// the key by the object's length at read time makes stale hits structurally
// impossible: an appended-to object reads under a new length and simply
// re-fetches its tail, while the old version's blocks age out via LRU.
package cachetier

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flor.dev/flor/internal/obs"
)

// DefaultBlockSize is the cache's block granularity: large enough that one
// block amortizes a remote round-trip, small enough that sparse restores do
// not drag whole packs into the cache.
const DefaultBlockSize = 1 << 20

// blockKey identifies one cached block: the object, the object length the
// block was read under (the version), and the block index.
type blockKey struct {
	obj string
	ver int64
	idx int64
}

// entry is one resident block. Exactly one of data/path is set: data for
// memory-backed caches, path for disk-backed ones.
type entry struct {
	key  blockKey
	size int64
	data []byte
	path string
	// LRU intrusive list, most recent at head.
	prev, next *entry
}

// flight is one in-progress remote fetch of a block. Concurrent readers of
// the same versioned key join the flight instead of issuing their own GET:
// the leader fetches, everyone waits on done, and the waiters' bytes are
// attributed to the singleflight tier.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Cache is a size-bounded read-through block cache. Safe for concurrent use.
type Cache struct {
	dir       string // "" = memory-backed blocks
	maxBytes  int64
	blockSize int64

	mu        sync.Mutex
	entries   map[blockKey]*entry
	flights   map[blockKey]*flight // in-progress fetches, one leader per key
	admitting map[blockKey]bool    // keys reserved by an in-progress admit
	head      *entry               // most recently used
	tail      *entry               // least recently used
	bytes     int64
	seq       int64 // disk-mode block file names
	stats     Stats

	mHitBytes          *obs.Counter
	mMissBytes         *obs.Counter
	mSingleflightBytes *obs.Counter
	mEvictions         *obs.Counter
	mBytes             *obs.Gauge
	mEntries           *obs.Gauge
}

// Stats is a point-in-time snapshot of the cache's accounting. Hit and miss
// byte counts attribute the byte ranges callers asked for (so they sum to
// the bytes served), not whole blocks.
type Stats struct {
	Hits              int64 `json:"hits"`               // block lookups served locally
	Misses            int64 `json:"misses"`             // block lookups that went remote
	Singleflights     int64 `json:"singleflights"`      // block lookups that joined another reader's fetch
	HitBytes          int64 `json:"hit_bytes"`          // requested bytes served locally
	MissBytes         int64 `json:"miss_bytes"`         // requested bytes fetched remotely
	SingleflightBytes int64 `json:"singleflight_bytes"` // requested bytes served by a shared in-flight fetch
	Admitted          int64 `json:"admitted"`           // blocks admitted to the cache
	Rejected          int64 `json:"rejected"`           // blocks denied admission (too large)
	Evictions         int64 `json:"evictions"`          // blocks evicted to make room
	Bytes             int64 `json:"bytes"`              // resident block bytes
	Entries           int64 `json:"entries"`            // resident blocks
	MaxBytes          int64 `json:"max_bytes"`          // admission budget
}

// New returns a cache bounded to maxBytes. With a non-empty dir, blocks are
// kept as files under it (the directory is created and any previous contents
// cleared — a cache directory holds nothing durable); with an empty dir,
// blocks live in memory. maxBytes <= 0 disables caching entirely: every read
// passes through to the remote fetch.
func New(dir string, maxBytes int64) (*Cache, error) {
	return NewWithBlockSize(dir, maxBytes, DefaultBlockSize)
}

// NewWithBlockSize is New with an explicit block granularity (tests shrink
// it to exercise multi-block reads cheaply).
func NewWithBlockSize(dir string, maxBytes, blockSize int64) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachetier: block size %d: want > 0", blockSize)
	}
	if dir != "" {
		// A cache directory is disposable by definition; clearing it on open
		// keeps stale blocks from a previous process out of the accounting.
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("cachetier: clear cache dir: %w", err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cachetier: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:                dir,
		maxBytes:           maxBytes,
		blockSize:          blockSize,
		entries:            map[blockKey]*entry{},
		flights:            map[blockKey]*flight{},
		admitting:          map[blockKey]bool{},
		mHitBytes:          obs.C(obs.MCacheTierHitBytes),
		mMissBytes:         obs.C(obs.MCacheTierMissBytes),
		mSingleflightBytes: obs.C(obs.MCacheTierSingleflightBytes),
		mEvictions:         obs.C(obs.MCacheTierEvictions),
		mBytes:             obs.G(obs.MCacheTierBytes),
		mEntries:           obs.G(obs.MCacheTierEntries),
	}, nil
}

// MaxBytes returns the admission budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// BlockSize returns the cache's block granularity.
func (c *Cache) BlockSize() int64 { return c.blockSize }

// ReadThrough fills p with bytes [off, off+len(p)) of object obj, whose
// committed length is size (the version key; off+len(p) must not exceed it).
// Blocks already resident are copied out of the cache; missing blocks are
// fetched with fetch(blockOff, blockLen) — which must return exactly
// blockLen bytes of the object at blockOff, in a freshly allocated slice the
// cache may retain (every remote GET materializes a new buffer, so admission
// adopts it instead of paying a second copy of every fetched byte) — served
// to the caller, and admitted to the cache when they fit the budget. Concurrent readers of the
// same missing block are deduped: one leader runs fetch, the rest wait on
// its result. It returns how many of the requested bytes came from the
// cache, from this caller's own fetches, and from fetches shared with
// another in-flight reader (cached+fetched+shared == len(p) on success).
func (c *Cache) ReadThrough(obj string, size, off int64, p []byte, fetch func(off, n int64) ([]byte, error)) (cached, fetched, shared int64, err error) {
	if off < 0 || off+int64(len(p)) > size {
		return 0, 0, 0, fmt.Errorf("cachetier: read [%d,%d) of %s beyond object length %d", off, off+int64(len(p)), obj, size)
	}
	for len(p) > 0 {
		idx := off / c.blockSize
		bOff := idx * c.blockSize
		bLen := min64(c.blockSize, size-bOff)
		// The caller's slice of this block.
		within := off - bOff
		n := min64(bLen-within, int64(len(p)))

		key := blockKey{obj: obj, ver: size, idx: idx}
		if block, ok := c.lookup(key); ok {
			copy(p[:n], block[within:within+n])
			cached += n
			c.note(&c.stats.Hits, &c.stats.HitBytes, n)
			c.mHitBytes.Add(n)
		} else {
			block, joined, ferr := c.fetchBlock(key, bOff, bLen, fetch)
			if ferr != nil {
				return cached, fetched, shared, ferr
			}
			copy(p[:n], block[within:within+n])
			if joined {
				shared += n
				c.note(&c.stats.Singleflights, &c.stats.SingleflightBytes, n)
				c.mSingleflightBytes.Add(n)
			} else {
				fetched += n
				c.note(&c.stats.Misses, &c.stats.MissBytes, n)
				c.mMissBytes.Add(n)
			}
		}
		p = p[n:]
		off += n
	}
	return cached, fetched, shared, nil
}

// Warm makes every block covering [off, off+n) of obj resident without
// copying anything to a caller buffer: resident blocks are left untouched
// (not even their LRU position moves — speculation must not displace blocks
// real reads are keeping alive), missing blocks are fetched and admitted
// exactly as a read-through miss would, including joining another reader's
// in-flight fetch. It returns the bytes fetched remotely on this call;
// already-resident and flight-joined blocks cost nothing. Fetched bytes
// count in the miss/singleflight accounting like any other tier fill.
func (c *Cache) Warm(obj string, size, off, n int64, fetch func(off, n int64) ([]byte, error)) (fetched int64, err error) {
	if off < 0 || off+n > size {
		return 0, fmt.Errorf("cachetier: warm [%d,%d) of %s beyond object length %d", off, off+n, obj, size)
	}
	for idx := off / c.blockSize; idx*c.blockSize < off+n; idx++ {
		bOff := idx * c.blockSize
		bLen := min64(c.blockSize, size-bOff)
		key := blockKey{obj: obj, ver: size, idx: idx}
		c.mu.Lock()
		_, resident := c.entries[key]
		c.mu.Unlock()
		if resident {
			continue
		}
		_, joined, ferr := c.fetchBlock(key, bOff, bLen, fetch)
		if ferr != nil {
			return fetched, ferr
		}
		if joined {
			c.note(&c.stats.Singleflights, &c.stats.SingleflightBytes, bLen)
			c.mSingleflightBytes.Add(bLen)
		} else {
			fetched += bLen
			c.note(&c.stats.Misses, &c.stats.MissBytes, bLen)
			c.mMissBytes.Add(bLen)
		}
	}
	return fetched, nil
}

// fetchBlock resolves a cache miss for one block. The first reader of a
// missing key becomes the flight leader: it runs fetch, publishes the result
// to every waiter, and admits the block. Later readers join the flight and
// report joined=true. A waiter whose leader failed falls back to its own
// fetch rather than inheriting the error — the leader may have hit a
// transient fault the retry layer already burned its attempts on.
func (c *Cache) fetchBlock(key blockKey, bOff, bLen int64, fetch func(off, n int64) ([]byte, error)) (block []byte, joined bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			return f.data, true, nil
		}
	} else {
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		block, err = c.runFetch(key, bOff, bLen, fetch)
		f.data, f.err = block, err
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return block, false, err
	}
	// Leader failed; fetch independently (no flight: racing fallbacks are
	// rare and re-registering here could strand waiters behind another
	// failure chain).
	block, err = c.runFetch(key, bOff, bLen, fetch)
	return block, false, err
}

// runFetch performs the remote fetch for one block, validates its length,
// and admits it on success.
func (c *Cache) runFetch(key blockKey, bOff, bLen int64, fetch func(off, n int64) ([]byte, error)) ([]byte, error) {
	block, err := fetch(bOff, bLen)
	if err != nil {
		return nil, err
	}
	if int64(len(block)) != bLen {
		return nil, fmt.Errorf("cachetier: fetch of %s [%d,%d) returned %d bytes", key.obj, bOff, bOff+bLen, len(block))
	}
	c.admit(key, block)
	return block, nil
}

// lookup returns the block's bytes on a hit, touching its LRU position. In
// disk mode the file read runs outside the lock; a block evicted between
// lookup and read degrades to a miss.
func (c *Cache) lookup(key blockKey) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.touch(e)
	data, path := e.data, e.path
	c.mu.Unlock()
	if data != nil {
		return data, true
	}
	raw, err := os.ReadFile(path)
	if want := min64(c.blockSize, key.ver-key.idx*c.blockSize); err != nil || int64(len(raw)) != want {
		// Evicted (or truncated) between lookup and read: treat as a miss.
		return nil, false
	}
	return raw, true
}

// admit inserts a fetched block, evicting least-recently-used blocks until
// it fits. Blocks larger than the whole budget are rejected (read-through
// still served them); a zero-or-negative budget rejects everything.
//
// Admission is idempotent per versioned key: the key and its budget are
// reserved under the lock before the (out-of-lock) disk write, so a racing
// admit of the same block — a prefetch warm and a read-through miss landing
// together — bails out before writing anything and the budget never counts
// the block twice, even transiently.
func (c *Cache) admit(key blockKey, block []byte) {
	n := int64(len(block))
	// Memory mode adopts the fetched slice outright: fetch's contract is a
	// freshly allocated buffer, and blocks are immutable once admitted, so
	// copying here would only double the fetch path's per-byte CPU cost.
	c.mu.Lock()
	if n > c.maxBytes {
		c.stats.Rejected++
		c.mu.Unlock()
		return
	}
	if _, dup := c.entries[key]; dup || c.admitting[key] {
		// Already resident, or a concurrent admit holds the reservation;
		// either way this copy would only double-count the block.
		c.mu.Unlock()
		return
	}
	for c.bytes+n > c.maxBytes && c.tail != nil {
		c.evictLocked(c.tail)
	}
	if c.bytes+n > c.maxBytes {
		c.stats.Rejected++
		c.mu.Unlock()
		return
	}
	c.bytes += n
	if c.dir == "" {
		e := &entry{key: key, size: n, data: block}
		c.entries[key] = e
		c.pushFront(e)
		c.stats.Admitted++
		c.mBytes.Set(c.bytes)
		c.mEntries.Set(int64(len(c.entries)))
		c.mu.Unlock()
		return
	}
	c.admitting[key] = true
	c.seq++
	path := filepath.Join(c.dir, fmt.Sprintf("b-%d", c.seq))
	c.mu.Unlock()

	werr := os.WriteFile(path, block, 0o644)
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.admitting, key)
	if werr != nil {
		// Cache disk full etc.: release the reservation, stay a pass-through.
		c.bytes -= n
		c.mBytes.Set(c.bytes)
		return
	}
	e := &entry{key: key, size: n, path: path}
	c.entries[key] = e
	c.pushFront(e)
	c.stats.Admitted++
	c.mBytes.Set(c.bytes)
	c.mEntries.Set(int64(len(c.entries)))
}

// Invalidate drops every resident block of obj (all versions), freeing their
// budget. Remote object replacement and deletion call it; correctness does
// not depend on it (keys are length-versioned), it just frees dead space.
func (c *Cache) Invalidate(obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if key.obj == obj {
			c.evictLocked(e)
		}
	}
}

// Stats returns a snapshot of the cache's accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Bytes = c.bytes
	st.Entries = int64(len(c.entries))
	st.MaxBytes = c.maxBytes
	return st
}

func (c *Cache) note(count, bytes *int64, n int64) {
	c.mu.Lock()
	*count++
	*bytes += n
	c.mu.Unlock()
}

func (c *Cache) evictLocked(e *entry) {
	delete(c.entries, e.key)
	c.unlink(e)
	c.bytes -= e.size
	c.stats.Evictions++
	c.mEvictions.Inc()
	c.mBytes.Set(c.bytes)
	c.mEntries.Set(int64(len(c.entries)))
	if e.path != "" {
		os.Remove(e.path)
	}
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
