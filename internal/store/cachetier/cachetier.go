// Package cachetier implements the local read-through chunk cache that sits
// between a remote object backend and the checkpoint store's restore path.
// Remote pack reads land here block by block: a hit is served from local
// disk (or memory), a miss fetches the block from the remote store and —
// subject to size-bounded admission control — keeps it for the next restore.
// The cache is what makes a stateless serving daemon cheap to re-point at a
// shared remote pool: the first restore of a run pays remote ranged-GET
// latency once, every later restore streams from the cache tier.
//
// Entries are keyed by (object, object length, block index). Pack objects
// are append-only and generations are immutable once written, so versioning
// the key by the object's length at read time makes stale hits structurally
// impossible: an appended-to object reads under a new length and simply
// re-fetches its tail, while the old version's blocks age out via LRU.
package cachetier

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flor.dev/flor/internal/obs"
)

// DefaultBlockSize is the cache's block granularity: large enough that one
// block amortizes a remote round-trip, small enough that sparse restores do
// not drag whole packs into the cache.
const DefaultBlockSize = 1 << 20

// blockKey identifies one cached block: the object, the object length the
// block was read under (the version), and the block index.
type blockKey struct {
	obj string
	ver int64
	idx int64
}

// entry is one resident block. Exactly one of data/path is set: data for
// memory-backed caches, path for disk-backed ones.
type entry struct {
	key  blockKey
	size int64
	data []byte
	path string
	// LRU intrusive list, most recent at head.
	prev, next *entry
}

// Cache is a size-bounded read-through block cache. Safe for concurrent use.
type Cache struct {
	dir       string // "" = memory-backed blocks
	maxBytes  int64
	blockSize int64

	mu      sync.Mutex
	entries map[blockKey]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	seq     int64 // disk-mode block file names
	stats   Stats

	mHitBytes  *obs.Counter
	mMissBytes *obs.Counter
	mEvictions *obs.Counter
	mBytes     *obs.Gauge
	mEntries   *obs.Gauge
}

// Stats is a point-in-time snapshot of the cache's accounting. Hit and miss
// byte counts attribute the byte ranges callers asked for (so they sum to
// the bytes served), not whole blocks.
type Stats struct {
	Hits      int64 `json:"hits"`       // block lookups served locally
	Misses    int64 `json:"misses"`     // block lookups that went remote
	HitBytes  int64 `json:"hit_bytes"`  // requested bytes served locally
	MissBytes int64 `json:"miss_bytes"` // requested bytes fetched remotely
	Admitted  int64 `json:"admitted"`   // blocks admitted to the cache
	Rejected  int64 `json:"rejected"`   // blocks denied admission (too large)
	Evictions int64 `json:"evictions"`  // blocks evicted to make room
	Bytes     int64 `json:"bytes"`      // resident block bytes
	Entries   int64 `json:"entries"`    // resident blocks
	MaxBytes  int64 `json:"max_bytes"`  // admission budget
}

// New returns a cache bounded to maxBytes. With a non-empty dir, blocks are
// kept as files under it (the directory is created and any previous contents
// cleared — a cache directory holds nothing durable); with an empty dir,
// blocks live in memory. maxBytes <= 0 disables caching entirely: every read
// passes through to the remote fetch.
func New(dir string, maxBytes int64) (*Cache, error) {
	return NewWithBlockSize(dir, maxBytes, DefaultBlockSize)
}

// NewWithBlockSize is New with an explicit block granularity (tests shrink
// it to exercise multi-block reads cheaply).
func NewWithBlockSize(dir string, maxBytes, blockSize int64) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachetier: block size %d: want > 0", blockSize)
	}
	if dir != "" {
		// A cache directory is disposable by definition; clearing it on open
		// keeps stale blocks from a previous process out of the accounting.
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("cachetier: clear cache dir: %w", err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cachetier: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:        dir,
		maxBytes:   maxBytes,
		blockSize:  blockSize,
		entries:    map[blockKey]*entry{},
		mHitBytes:  obs.C(obs.MCacheTierHitBytes),
		mMissBytes: obs.C(obs.MCacheTierMissBytes),
		mEvictions: obs.C(obs.MCacheTierEvictions),
		mBytes:     obs.G(obs.MCacheTierBytes),
		mEntries:   obs.G(obs.MCacheTierEntries),
	}, nil
}

// MaxBytes returns the admission budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// BlockSize returns the cache's block granularity.
func (c *Cache) BlockSize() int64 { return c.blockSize }

// ReadThrough fills p with bytes [off, off+len(p)) of object obj, whose
// committed length is size (the version key; off+len(p) must not exceed it).
// Blocks already resident are copied out of the cache; missing blocks are
// fetched with fetch(blockOff, blockLen) — which must return exactly
// blockLen bytes of the object at blockOff — served to the caller, and
// admitted to the cache when they fit the budget. It returns how many of the
// requested bytes came from the cache versus the fetch (cached+fetched ==
// len(p) on success).
func (c *Cache) ReadThrough(obj string, size, off int64, p []byte, fetch func(off, n int64) ([]byte, error)) (cached, fetched int64, err error) {
	if off < 0 || off+int64(len(p)) > size {
		return 0, 0, fmt.Errorf("cachetier: read [%d,%d) of %s beyond object length %d", off, off+int64(len(p)), obj, size)
	}
	for len(p) > 0 {
		idx := off / c.blockSize
		bOff := idx * c.blockSize
		bLen := min64(c.blockSize, size-bOff)
		// The caller's slice of this block.
		within := off - bOff
		n := min64(bLen-within, int64(len(p)))

		key := blockKey{obj: obj, ver: size, idx: idx}
		if block, ok := c.lookup(key); ok {
			copy(p[:n], block[within:within+n])
			cached += n
			c.note(&c.stats.Hits, &c.stats.HitBytes, n)
			c.mHitBytes.Add(n)
		} else {
			block, ferr := fetch(bOff, bLen)
			if ferr != nil {
				return cached, fetched, ferr
			}
			if int64(len(block)) != bLen {
				return cached, fetched, fmt.Errorf("cachetier: fetch of %s [%d,%d) returned %d bytes", obj, bOff, bOff+bLen, len(block))
			}
			copy(p[:n], block[within:within+n])
			fetched += n
			c.note(&c.stats.Misses, &c.stats.MissBytes, n)
			c.mMissBytes.Add(n)
			c.admit(key, block)
		}
		p = p[n:]
		off += n
	}
	return cached, fetched, nil
}

// lookup returns the block's bytes on a hit, touching its LRU position. In
// disk mode the file read runs outside the lock; a block evicted between
// lookup and read degrades to a miss.
func (c *Cache) lookup(key blockKey) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.touch(e)
	data, path := e.data, e.path
	c.mu.Unlock()
	if data != nil {
		return data, true
	}
	raw, err := os.ReadFile(path)
	if want := min64(c.blockSize, key.ver-key.idx*c.blockSize); err != nil || int64(len(raw)) != want {
		// Evicted (or truncated) between lookup and read: treat as a miss.
		return nil, false
	}
	return raw, true
}

// admit inserts a fetched block, evicting least-recently-used blocks until
// it fits. Blocks larger than the whole budget are rejected (read-through
// still served them); a zero-or-negative budget rejects everything.
func (c *Cache) admit(key blockKey, block []byte) {
	n := int64(len(block))
	if n > c.maxBytes {
		c.mu.Lock()
		c.stats.Rejected++
		c.mu.Unlock()
		return
	}
	var path string
	if c.dir != "" {
		c.mu.Lock()
		c.seq++
		path = filepath.Join(c.dir, fmt.Sprintf("b-%d", c.seq))
		c.mu.Unlock()
		if err := os.WriteFile(path, block, 0o644); err != nil {
			return // cache full disk etc.: stay a pass-through
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		// A concurrent fetch admitted the same block first; keep the winner.
		if path != "" {
			os.Remove(path)
		}
		return
	}
	for c.bytes+n > c.maxBytes && c.tail != nil {
		c.evictLocked(c.tail)
	}
	if c.bytes+n > c.maxBytes {
		c.stats.Rejected++
		if path != "" {
			os.Remove(path)
		}
		return
	}
	e := &entry{key: key, size: n, path: path}
	if c.dir == "" {
		e.data = append([]byte(nil), block...)
	}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += n
	c.stats.Admitted++
	c.mBytes.Set(c.bytes)
	c.mEntries.Set(int64(len(c.entries)))
}

// Invalidate drops every resident block of obj (all versions), freeing their
// budget. Remote object replacement and deletion call it; correctness does
// not depend on it (keys are length-versioned), it just frees dead space.
func (c *Cache) Invalidate(obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if key.obj == obj {
			c.evictLocked(e)
		}
	}
}

// Stats returns a snapshot of the cache's accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Bytes = c.bytes
	st.Entries = int64(len(c.entries))
	st.MaxBytes = c.maxBytes
	return st
}

func (c *Cache) note(count, bytes *int64, n int64) {
	c.mu.Lock()
	*count++
	*bytes += n
	c.mu.Unlock()
}

func (c *Cache) evictLocked(e *entry) {
	delete(c.entries, e.key)
	c.unlink(e)
	c.bytes -= e.size
	c.stats.Evictions++
	c.mEvictions.Inc()
	c.mBytes.Set(c.bytes)
	c.mEntries.Set(int64(len(c.entries)))
	if e.path != "" {
		os.Remove(e.path)
	}
}

func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
