package remote

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// FSStore is an ObjectStore rooted at a local directory — the "remote" for
// development, tests, and any deployment where the shared pool is a network
// filesystem. Keys map to files under the root (slashes become directories);
// Put writes a temp sibling and renames, so concurrent readers never observe
// a torn object.
type FSStore struct {
	root string
}

// NewFSStore returns a store rooted at dir, creating it if needed.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remote: fs store root: %w", err)
	}
	return &FSStore{root: dir}, nil
}

// Root returns the store's root directory.
func (s *FSStore) Root() string { return s.root }

// path maps a key to its file, refusing escapes from the root.
func (s *FSStore) path(key string) (string, error) {
	clean := path.Clean("/" + key)[1:] // normalizes ".." and "//" away
	if clean == "" || clean == "." {
		return "", fmt.Errorf("remote: invalid key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// Size implements ObjectStore.
func (s *FSStore) Size(key string) (int64, error) {
	p, err := s.path(key)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return 0, fmt.Errorf("remote: stat %s: %w", key, err)
	}
	return st.Size(), nil
}

// Get implements ObjectStore.
func (s *FSStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("remote: get %s: %w", key, err)
	}
	return data, nil
}

// GetRange implements ObjectStore.
func (s *FSStore) GetRange(key string, off, n int64) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("remote: get range %s: %w", key, err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return nil, fmt.Errorf("remote: get range %s [%d,%d): %w", key, off, off+n, err)
	}
	return buf, nil
}

// Put implements ObjectStore: temp sibling + rename, atomic on POSIX.
func (s *FSStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("remote: put %s: %w", key, err)
	}
	tmp := p + ".put-tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("remote: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("remote: put %s: %w", key, err)
	}
	return nil
}

// List implements ObjectStore.
func (s *FSStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(s.root, p)
		if rerr != nil {
			return rerr
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) && !strings.HasSuffix(key, ".put-tmp") {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("remote: list %s: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements ObjectStore.
func (s *FSStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("remote: delete %s: %w", key, err)
	}
	return nil
}
