package remote

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrLeaseHeld is returned when another writer holds a live lease on the
// contested key. The error message names the holder.
var ErrLeaseHeld = errors.New("remote: writer lease held")

// LeaseConfig parameterizes lease acquisition. Owner is a human-readable
// holder identity (host:pid is a good choice); TTL bounds how long a crashed
// holder blocks others (default 5m); Now is the clock (default time.Now),
// injectable so expiry is testable.
type LeaseConfig struct {
	Owner string
	TTL   time.Duration
	Now   func() time.Time
}

// Lease is a held cross-process writer lease: an object on the remote root
// recording owner, a random token, and an expiry. Minimal object APIs have
// no compare-and-swap, so acquisition is write-then-read-back: a writer puts
// its record, reads the key again, and owns the lease only if its token
// survived. Two writers racing within one round-trip can both lose (and
// retry); they can only both "win" if the store reorders a read after an
// acknowledged overlapping write, which the bundled stores never do —
// against weaker stores the lease is best-effort mutual exclusion, which is
// the strongest guarantee GET/PUT/LIST offers.
type Lease struct {
	store ObjectStore
	key   string
	owner string
	token string
	ttl   time.Duration
	now   func() time.Time
}

// leaseRecord is the wire form: three "k v" lines (owner, token, expires —
// unix nanoseconds). See docs/FORMATS.md.
func leaseRecord(owner, token string, expires int64) []byte {
	return []byte(fmt.Sprintf("owner %s\ntoken %s\nexpires %d\n", owner, token, expires))
}

func parseLease(data []byte) (owner, token string, expires int64) {
	for _, ln := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(strings.TrimSpace(ln), " ")
		if !ok {
			continue
		}
		switch k {
		case "owner":
			owner = v
		case "token":
			token = v
		case "expires":
			expires, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return
}

// AcquireLease acquires the writer lease at key, failing with ErrLeaseHeld
// while another holder's lease is live (unexpired). A crashed holder's lease
// is taken over once its TTL passes.
func AcquireLease(st ObjectStore, key string, cfg LeaseConfig) (*Lease, error) {
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Owner == "" {
		cfg.Owner = "anonymous"
	}
	now := cfg.Now()
	if data, err := st.Get(key); err == nil {
		owner, _, expires := parseLease(data)
		if expires > now.UnixNano() {
			return nil, fmt.Errorf("%w: %s by %q until %s", ErrLeaseHeld, key, owner, time.Unix(0, expires).UTC().Format(time.RFC3339))
		}
	} else if !errors.Is(err, ErrNotFound) {
		return nil, fmt.Errorf("remote: acquire lease %s: %w", key, err)
	}

	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("remote: acquire lease %s: %w", key, err)
	}
	token := hex.EncodeToString(raw[:])
	if err := st.Put(key, leaseRecord(cfg.Owner, token, now.Add(cfg.TTL).UnixNano())); err != nil {
		return nil, fmt.Errorf("remote: acquire lease %s: %w", key, err)
	}
	// Read back: if another writer's record replaced ours in the race
	// window, they won.
	data, err := st.Get(key)
	if err != nil {
		return nil, fmt.Errorf("remote: acquire lease %s: %w", key, err)
	}
	if owner, got, _ := parseLease(data); got != token {
		return nil, fmt.Errorf("%w: %s lost acquisition race to %q", ErrLeaseHeld, key, owner)
	}
	return &Lease{store: st, key: key, owner: cfg.Owner, token: token, ttl: cfg.TTL, now: cfg.Now}, nil
}

// Renew extends the held lease by its TTL. It fails with ErrLeaseHeld if the
// lease was lost (expired and taken over) since acquisition.
func (l *Lease) Renew() error {
	if err := l.verify(); err != nil {
		return err
	}
	if err := l.store.Put(l.key, leaseRecord(l.owner, l.token, l.now().Add(l.ttl).UnixNano())); err != nil {
		return fmt.Errorf("remote: renew lease %s: %w", l.key, err)
	}
	return nil
}

// Release gives the lease up. Releasing a lease that was already lost is not
// an error (the new holder's record is left untouched).
func (l *Lease) Release() error {
	if err := l.verify(); err != nil {
		if errors.Is(err, ErrLeaseHeld) || errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	}
	if err := l.store.Delete(l.key); err != nil {
		return fmt.Errorf("remote: release lease %s: %w", l.key, err)
	}
	return nil
}

// verify checks the remote record still carries our token.
func (l *Lease) verify() error {
	data, err := l.store.Get(l.key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return fmt.Errorf("remote: lease %s: %w", l.key, ErrNotFound)
		}
		return fmt.Errorf("remote: lease %s: %w", l.key, err)
	}
	if owner, token, _ := parseLease(data); token != l.token {
		return fmt.Errorf("%w: %s taken over by %q", ErrLeaseHeld, l.key, owner)
	}
	return nil
}
