package remote

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"flor.dev/flor/internal/store"
)

// Remote layout of one run under its key prefix (see docs/FORMATS.md):
//
//	<prefix>/ctl/<file>    the run's control plane: FORMAT, MANIFEST,
//	                       PROGRAM, record.log, timings.log, segments —
//	                       every run-directory file that is not pack bytes
//	<prefix>/packs/<obj>   pack objects by backend name (CHUNKS, CHUNKS-xx,
//	                       CHUNKS-xx.g<n>, spooled .gz twins)
//	<prefix>/LEASE         the writer lease (lease.go)
const (
	ctlDir   = "ctl"
	packsDir = "packs"
	// LeaseObject is the writer-lease key under a run (or pool) prefix.
	LeaseObject = "LEASE"
)

// PacksPrefix returns the key prefix pack objects live under — what an
// ObjectBackend serving the run should be rooted at.
func PacksPrefix(prefix string) string { return path.Join(prefix, packsDir) }

// LeaseKey returns the writer-lease key for a run (or shared-pool) prefix.
func LeaseKey(prefix string) string { return path.Join(prefix, LeaseObject) }

// isPackName reports whether a run-directory file is pack bytes (backend
// objects) rather than control plane.
func isPackName(name string) bool { return strings.HasPrefix(name, "CHUNKS") }

// UploadRun uploads the run at dir to the object store under prefix, control
// plane to <prefix>/ctl/ and pack objects (from the run directory and any
// SHARDS extra roots) to <prefix>/packs/. Uploads are whole-object PUTs —
// the spool pass is the atomic upload unit; there is no partial-object sync
// — and idempotent: objects whose remote length already matches the local
// file are skipped, so re-running after a crash only moves what is missing.
// It returns how many objects were uploaded (not skipped).
//
// The caller is responsible for quiescence (upload after recording finishes
// or between spool passes) and, when the prefix is shared between daemons,
// for holding its writer lease.
func UploadRun(st ObjectStore, dir, prefix string) (int, error) {
	uploaded := 0
	up := func(local, key string) error {
		fi, err := os.Stat(local)
		if err != nil {
			return fmt.Errorf("remote: upload stat: %w", err)
		}
		if sz, err := st.Size(key); err == nil && sz == fi.Size() {
			return nil // already there
		}
		data, err := os.ReadFile(local)
		if err != nil {
			return fmt.Errorf("remote: upload read: %w", err)
		}
		if err := st.Put(key, data); err != nil {
			return fmt.Errorf("remote: upload %s: %w", key, err)
		}
		uploaded++
		return nil
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("remote: upload run: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		sub := ctlDir
		if isPackName(e.Name()) {
			sub = packsDir
		}
		if err := up(filepath.Join(dir, e.Name()), path.Join(prefix, sub, e.Name())); err != nil {
			return uploaded, err
		}
	}

	// Pack objects spread over extra shard roots. Backend object names are
	// unique across roots, so they flatten into one packs/ namespace.
	roots, err := store.ShardRoots(dir)
	if err != nil {
		return uploaded, err
	}
	for _, root := range roots {
		rents, err := os.ReadDir(root)
		if err != nil {
			return uploaded, fmt.Errorf("remote: upload shard root: %w", err)
		}
		for _, e := range rents {
			if e.IsDir() || !isPackName(e.Name()) {
				continue
			}
			if err := up(filepath.Join(root, e.Name()), path.Join(prefix, packsDir, e.Name())); err != nil {
				return uploaded, err
			}
		}
	}
	return uploaded, nil
}

// FetchControlPlane downloads the run's control plane from <prefix>/ctl/
// into dir (created if needed), returning how many files it wrote. The
// SHARDS file is skipped: it names shard roots on the machine that recorded
// the run, and a remote-backed open routes every pack read through the
// ObjectBackend instead. Pack objects are never downloaded — that is the
// cache tier's job, block by block, on demand.
func FetchControlPlane(st ObjectStore, prefix, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("remote: fetch control plane: %w", err)
	}
	ctl := path.Join(prefix, ctlDir) + "/"
	keys, err := st.List(ctl)
	if err != nil {
		return 0, fmt.Errorf("remote: fetch control plane: %w", err)
	}
	if len(keys) == 0 {
		return 0, fmt.Errorf("remote: fetch control plane: %w: no objects under %s", ErrNotFound, ctl)
	}
	fetched := 0
	for _, key := range keys {
		name := strings.TrimPrefix(key, ctl)
		if strings.Contains(name, "/") || name == "SHARDS" {
			continue
		}
		data, err := st.Get(key)
		if err != nil {
			return fetched, fmt.Errorf("remote: fetch %s: %w", key, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fetched, fmt.Errorf("remote: fetch control plane: %w", err)
		}
		fetched++
	}
	return fetched, nil
}
