package remote

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MemStore is an in-memory ObjectStore: the reference implementation tests
// and the fault-injection battery build on. All operations copy, so callers
// can never alias the store's internal buffers.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: map[string][]byte{}}
}

// Size implements ObjectStore.
func (s *MemStore) Size(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

// Get implements ObjectStore.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// GetRange implements ObjectStore.
func (s *MemStore) GetRange(key string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || n < 0 || off+n > int64(len(data)) {
		return nil, fmt.Errorf("remote: get range %s [%d,%d): beyond object length %d", key, off, off+n, len(data))
	}
	return append([]byte(nil), data[off:off+n]...), nil
}

// Put implements ObjectStore.
func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = append([]byte(nil), data...)
	return nil
}

// List implements ObjectStore.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements ObjectStore.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
	return nil
}
