package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
)

// ObjectBackend adapts an ObjectStore to store.Backend, so a run's chunk
// packs can live in a shared remote pool while the control plane (FORMAT,
// MANIFEST, segments) stays in a local run directory. It implements
// store.TieredBackend, which switches the restore path to the remote fetch
// strategy: coalesced spans fetched as parallel ranged GETs, attributed to
// the "remote" and "cache-tier" fetch tiers.
//
// Reads go through an optional cachetier.Cache; pack appends and wholesale
// replacements invalidate the touched object's cached blocks (correctness
// never depends on that — cache keys are versioned by object length — it
// just frees dead space promptly).
//
// Append is a read-modify-write full PUT: correct under the store's
// per-shard append serialization, but O(object) per call. Remote-backed
// stores are meant to be written locally and uploaded by spool pass
// (UploadRun), then served read-only; Append exists so the Backend contract
// holds, not as a hot write path.
type ObjectBackend struct {
	store  ObjectStore
	prefix string
	cache  *cachetier.Cache
}

// Compile-time checks: ObjectBackend is a tiered store.Backend.
var (
	_ store.Backend       = (*ObjectBackend)(nil)
	_ store.TieredBackend = (*ObjectBackend)(nil)
	_ store.TieredReader  = (*objReader)(nil)
	_ store.WarmReader    = (*objReader)(nil)
)

// NewObjectBackend returns a backend whose objects live under prefix in st
// (pack object name "CHUNKS-03" maps to key "<prefix>/CHUNKS-03"). cache may
// be nil: reads then always go remote.
func NewObjectBackend(st ObjectStore, prefix string, cache *cachetier.Cache) *ObjectBackend {
	return &ObjectBackend{store: st, prefix: prefix, cache: cache}
}

// Cache returns the backend's cache tier (nil when uncached).
func (b *ObjectBackend) Cache() *cachetier.Cache { return b.cache }

func (b *ObjectBackend) key(name string) string {
	if b.prefix == "" {
		return name
	}
	return b.prefix + "/" + name
}

// RemoteReads implements store.TieredBackend.
func (b *ObjectBackend) RemoteReads() bool { return true }

// Size implements store.Backend (absent objects are 0, not an error).
func (b *ObjectBackend) Size(name string) (int64, error) {
	n, err := b.store.Size(b.key(name))
	if errors.Is(err, ErrNotFound) {
		return 0, nil
	}
	return n, err
}

// Append implements store.Backend as a read-modify-write whole-object PUT.
// The store serializes appends per object, so the read and the put cannot
// interleave with another append to the same object.
func (b *ObjectBackend) Append(name string, p []byte) error {
	key := b.key(name)
	cur, err := b.store.Get(key)
	if errors.Is(err, ErrNotFound) {
		cur = nil
	} else if err != nil {
		return fmt.Errorf("remote: append %s: %w", name, err)
	}
	if err := b.store.Put(key, append(cur, p...)); err != nil {
		return fmt.Errorf("remote: append %s: %w", name, err)
	}
	if b.cache != nil {
		b.cache.Invalidate(key)
	}
	return nil
}

// Open implements store.Backend. The returned reader snapshots the object's
// length at open (matching how a local file handle keeps serving the bytes
// it had), and implements store.TieredReader for cached/remote attribution.
func (b *ObjectBackend) Open(name string) (store.BackendReader, error) {
	key := b.key(name)
	size, err := b.store.Size(key)
	if err != nil {
		// ErrNotFound wraps os.ErrNotExist, which the store's stale-pack
		// detection relies on; keep the chain intact.
		return nil, fmt.Errorf("remote: open %s: %w", name, err)
	}
	return &objReader{b: b, key: key, size: size}, nil
}

// objReader is a ranged read handle on one remote object at a fixed length.
type objReader struct {
	b    *ObjectBackend
	key  string
	size int64
}

// ReadAt implements io.ReaderAt.
func (r *objReader) ReadAt(p []byte, off int64) (int, error) {
	n, _, _, _, err := r.ReadAtTier(p, off)
	return n, err
}

// ReadAtTier implements store.TieredReader: ReadAt plus how many of the
// returned bytes were cache-tier hits, remote fetches this read initiated,
// or bytes shared from another reader's in-flight fetch (singleflight).
func (r *objReader) ReadAtTier(p []byte, off int64) (n int, cached, fetched, shared int64, err error) {
	if off < 0 || off >= r.size {
		if off == r.size {
			return 0, 0, 0, 0, io.EOF
		}
		return 0, 0, 0, 0, fmt.Errorf("remote: read %s at %d: out of range [0,%d)", r.key, off, r.size)
	}
	want := p
	var short bool
	if off+int64(len(p)) > r.size {
		want = p[:r.size-off]
		short = true
	}
	if r.b.cache != nil {
		cached, fetched, shared, err = r.b.cache.ReadThrough(r.key, r.size, off, want, func(bOff, bLen int64) ([]byte, error) {
			return r.b.store.GetRange(r.key, bOff, bLen)
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
	} else {
		data, gerr := r.b.store.GetRange(r.key, off, int64(len(want)))
		if gerr != nil {
			return 0, 0, 0, 0, gerr
		}
		copy(want, data)
		fetched = int64(len(want))
	}
	if short {
		return len(want), cached, fetched, shared, io.EOF
	}
	return len(want), cached, fetched, shared, nil
}

// WarmAt implements store.WarmReader: it drives the blocks covering
// [off, off+n) into the cache tier without a destination buffer. Without a
// cache tier there is nothing to warm into, so it is a no-op — fetching
// bytes only to drop them would charge the remote for nothing.
func (r *objReader) WarmAt(off, n int64) (int64, error) {
	if r.b.cache == nil {
		return 0, nil
	}
	if off < 0 || off >= r.size {
		return 0, fmt.Errorf("remote: warm %s at %d: out of range [0,%d)", r.key, off, r.size)
	}
	if off+n > r.size {
		n = r.size - off
	}
	return r.b.cache.Warm(r.key, r.size, off, n, func(bOff, bLen int64) ([]byte, error) {
		return r.b.store.GetRange(r.key, bOff, bLen)
	})
}

// Close implements io.Closer.
func (r *objReader) Close() error { return nil }

// Create implements store.Backend: writes buffer locally and commit as one
// atomic PUT on Close — the remote either has the old object or the new one.
func (b *ObjectBackend) Create(name string) (store.BackendWriter, error) {
	return &putOnClose{b: b, key: b.key(name), name: name}, nil
}

type putOnClose struct {
	b       *ObjectBackend
	key     string
	name    string
	buf     bytes.Buffer
	aborted bool
}

func (w *putOnClose) Write(p []byte) (int, error) {
	if w.aborted {
		return 0, fmt.Errorf("remote: write %s: writer aborted", w.name)
	}
	return w.buf.Write(p)
}

func (w *putOnClose) Close() error {
	if w.aborted {
		return nil
	}
	if err := w.b.store.Put(w.key, w.buf.Bytes()); err != nil {
		return fmt.Errorf("remote: commit %s: %w", w.name, err)
	}
	if w.b.cache != nil {
		w.b.cache.Invalidate(w.key)
	}
	return nil
}

func (w *putOnClose) Abort() {
	w.aborted = true
	w.buf.Reset()
}

// Remove implements store.Backend.
func (b *ObjectBackend) Remove(name string) error {
	key := b.key(name)
	if err := b.store.Delete(key); err != nil {
		return fmt.Errorf("remote: remove %s: %w", name, err)
	}
	if b.cache != nil {
		b.cache.Invalidate(key)
	}
	return nil
}
