// Package remote implements the S3-shaped object backend the store.Backend
// interface was designed for: run checkpoints live in a shared object store
// as whole-object uploads (the spool pass is the atomic upload unit), and
// replay restores them with parallel ranged GETs through a local
// read-through chunk cache (internal/store/cachetier). The package speaks a
// minimal object API — GET, ranged GET, PUT, LIST, DELETE — deliberately
// the lowest common denominator of S3-compatible stores; the two bundled
// implementations (filesystem-rooted FSStore and in-memory MemStore) keep
// everything testable without a network.
//
// Every remote call is assumed to be able to fail transiently: Retry wraps
// any ObjectStore with bounded attempts, per-attempt timeouts, and
// exponential backoff, and the fault-injection battery in
// internal/store/faultbackend exercises exactly those paths. Cross-process
// writer coordination uses lease objects on the remote root (lease.go) so
// two daemons cannot both compact a shared pool.
package remote

import (
	"fmt"
	"os"
)

// ErrNotFound is returned for operations on absent objects. It wraps
// os.ErrNotExist so store-layer callers that probe with
// errors.Is(err, os.ErrNotExist) (the stale-pack detection path) see remote
// absence exactly like a missing local file.
var ErrNotFound = fmt.Errorf("remote: object not found: %w", os.ErrNotExist)

// ObjectStore is the minimal object-storage contract the backend needs. Keys
// are flat slash-separated strings ("runs/imgn/packs/CHUNKS-03.g2"); there
// are no directories, only prefixes. Implementations must be safe for
// concurrent use.
type ObjectStore interface {
	// Size returns the object's length in bytes; ErrNotFound when absent.
	Size(key string) (int64, error)
	// Get returns the whole object.
	Get(key string) ([]byte, error)
	// GetRange returns exactly n bytes of the object starting at off.
	// Reading past the object's end is an error.
	GetRange(key string, off, n int64) ([]byte, error)
	// Put atomically replaces the object with data: a reader sees either the
	// previous object or the new one, never a mix.
	Put(key string, data []byte) error
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object; deleting an absent object is not an error.
	Delete(key string) error
}
