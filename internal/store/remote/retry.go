package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Typed failure modes of the retrying wrapper. Callers branch on these with
// errors.Is: ErrExhausted means every attempt failed (the last attempt's
// error is wrapped too), ErrTimeout marks an individual attempt that
// overran its deadline.
var (
	ErrExhausted = errors.New("remote: retries exhausted")
	ErrTimeout   = errors.New("remote: attempt timed out")
)

// Policy bounds the retrying wrapper. Zero fields take defaults.
type Policy struct {
	// Attempts is the total number of tries per call (default 4).
	Attempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt up to MaxDelay (defaults 5ms / 250ms). Each sleep is jittered
	// to [delay/2, delay): parallel ranged GETs that fail together — one
	// flaky endpoint serving a whole restore's spans — must not wake
	// together and hammer it in lockstep on every retry round.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Timeout is the per-attempt deadline (default 30s). An attempt that
	// overruns it is abandoned — its goroutine finishes in the background
	// and its result is discarded — and the call retries.
	Timeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 30 * time.Second
	}
	return p
}

// Retry wraps inner so every call gets bounded attempts, per-attempt
// timeouts, and exponential backoff. ErrNotFound is returned immediately
// (absence is an answer, not a fault); any other error — including a
// per-attempt timeout — is treated as transient and retried. When the
// attempt budget runs out the final error wraps both ErrExhausted and the
// last underlying error, so typed checks on either still work.
func Retry(inner ObjectStore, p Policy) ObjectStore {
	return &retrying{inner: inner, p: p.withDefaults()}
}

type retrying struct {
	inner ObjectStore
	p     Policy
}

// do runs f with the policy's attempt budget. f must be self-contained: on
// timeout the attempt's goroutine is abandoned, so each attempt owns its
// result values and hands them back only through the returned channel.
func (r *retrying) do(op, key string, f func() (any, error)) (any, error) {
	var last error
	delay := r.p.BaseDelay
	for a := 0; a < r.p.Attempts; a++ {
		if a > 0 {
			// Equal jitter: half the backoff is deterministic floor, half is
			// random spread, so retry herds de-synchronize while the mean
			// backoff keeps its exponential shape.
			time.Sleep(delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1)))
			delay *= 2
			if delay > r.p.MaxDelay {
				delay = r.p.MaxDelay
			}
		}
		v, err := r.attempt(f)
		if err == nil {
			return v, nil
		}
		if errors.Is(err, ErrNotFound) {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("%w: %s %s after %d attempts: %w", ErrExhausted, op, key, r.p.Attempts, last)
}

func (r *retrying) attempt(f func() (any, error)) (any, error) {
	type result struct {
		v   any
		err error
	}
	done := make(chan result, 1) // buffered: an abandoned attempt never blocks
	go func() {
		v, err := f()
		done <- result{v, err}
	}()
	t := time.NewTimer(r.p.Timeout)
	defer t.Stop()
	select {
	case res := <-done:
		return res.v, res.err
	case <-t.C:
		return nil, fmt.Errorf("%w after %v", ErrTimeout, r.p.Timeout)
	}
}

// Size implements ObjectStore.
func (r *retrying) Size(key string) (int64, error) {
	v, err := r.do("size", key, func() (any, error) { return r.inner.Size(key) })
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// Get implements ObjectStore.
func (r *retrying) Get(key string) ([]byte, error) {
	v, err := r.do("get", key, func() (any, error) { return r.inner.Get(key) })
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// GetRange implements ObjectStore. A short response is treated as transient
// (a torn read) and retried, so callers always see exactly n bytes or an
// error.
func (r *retrying) GetRange(key string, off, n int64) ([]byte, error) {
	v, err := r.do("get-range", key, func() (any, error) {
		data, err := r.inner.GetRange(key, off, n)
		if err == nil && int64(len(data)) != n {
			return nil, fmt.Errorf("remote: short range read of %s: %d of %d bytes", key, len(data), n)
		}
		return data, err
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// Put implements ObjectStore.
func (r *retrying) Put(key string, data []byte) error {
	_, err := r.do("put", key, func() (any, error) { return nil, r.inner.Put(key, data) })
	return err
}

// List implements ObjectStore.
func (r *retrying) List(prefix string) ([]string, error) {
	v, err := r.do("list", prefix, func() (any, error) { return r.inner.List(prefix) })
	if err != nil {
		return nil, err
	}
	return v.([]string), nil
}

// Delete implements ObjectStore.
func (r *retrying) Delete(key string) error {
	_, err := r.do("delete", key, func() (any, error) { return nil, r.inner.Delete(key) })
	return err
}
