package remote_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/remote"
)

// stores returns the bundled ObjectStore implementations under test.
func stores(t *testing.T) map[string]remote.ObjectStore {
	t.Helper()
	fs, err := remote.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]remote.ObjectStore{"fs": fs, "mem": remote.NewMemStore()}
}

// TestRemoteObjectStoreConformance pins the object-API contract both bundled
// implementations must share: typed absence, exact ranged reads, atomic
// replacement, sorted listing, idempotent deletes.
func TestRemoteObjectStoreConformance(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// Absence is ErrNotFound, which must also read as os.ErrNotExist
			// (the store's stale-pack probe).
			if _, err := st.Get("a/missing"); !errors.Is(err, remote.ErrNotFound) || !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("get missing: %v, want ErrNotFound wrapping os.ErrNotExist", err)
			}
			if _, err := st.Size("a/missing"); !errors.Is(err, remote.ErrNotFound) {
				t.Fatalf("size missing: %v, want ErrNotFound", err)
			}

			data := []byte("0123456789abcdef")
			if err := st.Put("a/obj", data); err != nil {
				t.Fatal(err)
			}
			if n, err := st.Size("a/obj"); err != nil || n != int64(len(data)) {
				t.Fatalf("size = %d, %v", n, err)
			}
			if got, err := st.Get("a/obj"); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("get = %q, %v", got, err)
			}
			if got, err := st.GetRange("a/obj", 4, 6); err != nil || string(got) != "456789" {
				t.Fatalf("range = %q, %v", got, err)
			}
			if _, err := st.GetRange("a/obj", 10, 10); err == nil {
				t.Fatal("range beyond end should error")
			}

			// Put replaces wholesale.
			if err := st.Put("a/obj", []byte("new")); err != nil {
				t.Fatal(err)
			}
			if got, _ := st.Get("a/obj"); string(got) != "new" {
				t.Fatalf("after replace: %q", got)
			}

			// List is prefix-filtered and sorted.
			for _, k := range []string{"a/z", "a/b/c", "b/other"} {
				if err := st.Put(k, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := st.List("a/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a/b/c", "a/obj", "a/z"}
			if fmt.Sprint(keys) != fmt.Sprint(want) {
				t.Fatalf("list = %v, want %v", keys, want)
			}

			// Delete is idempotent.
			if err := st.Delete("a/obj"); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("a/obj"); err != nil {
				t.Fatalf("second delete: %v", err)
			}
			if _, err := st.Get("a/obj"); !errors.Is(err, remote.ErrNotFound) {
				t.Fatalf("get after delete: %v", err)
			}
		})
	}
}

// flakyStore fails each operation a fixed number of times before succeeding.
type flakyStore struct {
	remote.ObjectStore
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyStore) trip() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failures > 0 {
		f.failures--
		return errors.New("transient")
	}
	return nil
}

func (f *flakyStore) Get(key string) ([]byte, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.ObjectStore.Get(key)
}

func (f *flakyStore) GetRange(key string, off, n int64) ([]byte, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.ObjectStore.GetRange(key, off, n)
}

func (f *flakyStore) Put(key string, data []byte) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.ObjectStore.Put(key, data)
}

// TestRemoteRetryRecoversTransientFaults pins the wrapper's contract: bounded
// retries absorb transient errors, absence short-circuits, exhaustion and
// timeouts surface as typed errors.
func TestRemoteRetryRecoversTransientFaults(t *testing.T) {
	mem := remote.NewMemStore()
	if err := mem.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fast := remote.Policy{Attempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond, Timeout: time.Second}

	t.Run("recovers", func(t *testing.T) {
		fl := &flakyStore{ObjectStore: mem, failures: 3}
		r := remote.Retry(fl, fast)
		got, err := r.Get("k")
		if err != nil || string(got) != "payload" {
			t.Fatalf("get = %q, %v", got, err)
		}
	})

	t.Run("exhausts-typed", func(t *testing.T) {
		fl := &flakyStore{ObjectStore: mem, failures: 1 << 30}
		r := remote.Retry(fl, fast)
		_, err := r.Get("k")
		if !errors.Is(err, remote.ErrExhausted) {
			t.Fatalf("err = %v, want ErrExhausted", err)
		}
	})

	t.Run("notfound-not-retried", func(t *testing.T) {
		fl := &flakyStore{ObjectStore: mem}
		r := remote.Retry(fl, fast)
		if _, err := r.Get("absent"); !errors.Is(err, remote.ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
		if fl.calls != 1 {
			t.Fatalf("absence was retried: %d calls", fl.calls)
		}
	})

	t.Run("short-range-retried", func(t *testing.T) {
		r := remote.Retry(&shortOnceStore{ObjectStore: mem}, fast)
		got, err := r.GetRange("k", 0, 7)
		if err != nil || string(got) != "payload" {
			t.Fatalf("range = %q, %v", got, err)
		}
	})

	t.Run("timeout-typed-then-recovers", func(t *testing.T) {
		slow := &slowOnceStore{ObjectStore: mem, delay: 200 * time.Millisecond}
		r := remote.Retry(slow, remote.Policy{Attempts: 2, BaseDelay: time.Microsecond, Timeout: 20 * time.Millisecond})
		got, err := r.Get("k")
		if err != nil || string(got) != "payload" {
			t.Fatalf("get after timeout = %q, %v", got, err)
		}
		one := &slowOnceStore{ObjectStore: mem, delay: 200 * time.Millisecond, always: true}
		r = remote.Retry(one, remote.Policy{Attempts: 2, BaseDelay: time.Microsecond, Timeout: 20 * time.Millisecond})
		_, err = r.Get("k")
		if !errors.Is(err, remote.ErrExhausted) || !errors.Is(err, remote.ErrTimeout) {
			t.Fatalf("err = %v, want ErrExhausted wrapping ErrTimeout", err)
		}
	})
}

// shortOnceStore truncates the first ranged read.
type shortOnceStore struct {
	remote.ObjectStore
	mu   sync.Mutex
	done bool
}

func (s *shortOnceStore) GetRange(key string, off, n int64) ([]byte, error) {
	data, err := s.ObjectStore.GetRange(key, off, n)
	s.mu.Lock()
	first := !s.done
	s.done = true
	s.mu.Unlock()
	if err == nil && first && len(data) > 1 {
		return data[:len(data)-1], nil
	}
	return data, err
}

// slowOnceStore delays the first (or every) Get past the caller's timeout.
type slowOnceStore struct {
	remote.ObjectStore
	delay  time.Duration
	always bool
	mu     sync.Mutex
	done   bool
}

func (s *slowOnceStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	first := !s.done
	s.done = true
	s.mu.Unlock()
	if first || s.always {
		time.Sleep(s.delay)
	}
	return s.ObjectStore.Get(key)
}

// TestRemoteLeaseExclusion pins the writer-lease protocol: held leases
// exclude, expiry allows takeover, renewal extends, release frees.
func TestRemoteLeaseExclusion(t *testing.T) {
	mem := remote.NewMemStore()
	key := remote.LeaseKey("runs/imgn")
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }

	a, err := remote.AcquireLease(mem, key, remote.LeaseConfig{Owner: "daemon-a", TTL: time.Minute, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.AcquireLease(mem, key, remote.LeaseConfig{Owner: "daemon-b", TTL: time.Minute, Now: clock}); !errors.Is(err, remote.ErrLeaseHeld) {
		t.Fatalf("second acquire: %v, want ErrLeaseHeld", err)
	}

	// Renewal pushes expiry out; a renewed lease still excludes after the
	// original TTL would have lapsed.
	now = now.Add(50 * time.Second)
	if err := a.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	now = now.Add(30 * time.Second) // 80s after acquire, 30s after renew
	if _, err := remote.AcquireLease(mem, key, remote.LeaseConfig{Owner: "daemon-b", TTL: time.Minute, Now: clock}); !errors.Is(err, remote.ErrLeaseHeld) {
		t.Fatalf("acquire after renew: %v, want ErrLeaseHeld", err)
	}

	// A crashed holder's lease is taken over once the TTL passes.
	now = now.Add(2 * time.Minute)
	b, err := remote.AcquireLease(mem, key, remote.LeaseConfig{Owner: "daemon-b", TTL: time.Minute, Now: clock})
	if err != nil {
		t.Fatalf("takeover after expiry: %v", err)
	}
	// The dispossessed holder cannot renew, and its release leaves the new
	// holder's record intact.
	if err := a.Renew(); !errors.Is(err, remote.ErrLeaseHeld) {
		t.Fatalf("stale renew: %v, want ErrLeaseHeld", err)
	}
	if err := a.Release(); err != nil {
		t.Fatalf("stale release: %v", err)
	}
	if err := b.Renew(); err != nil {
		t.Fatalf("new holder renew after stale release: %v", err)
	}

	// Release frees the lease for the next writer.
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.AcquireLease(mem, key, remote.LeaseConfig{Owner: "daemon-c", TTL: time.Minute, Now: clock}); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestRemoteBackendStoreRoundTrip runs a checkpoint store end to end over the
// object backend: writes land as remote objects, reads come back
// byte-identical through ranged GETs, and the fetch accounting attributes
// every byte to the remote/cache-tier pair.
func TestRemoteBackendStoreRoundTrip(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			mem := remote.NewMemStore()
			var cache *cachetier.Cache
			if cached {
				var err error
				if cache, err = cachetier.NewWithBlockSize("", 8<<20, 4<<10); err != nil {
					t.Fatal(err)
				}
			}
			backend := remote.NewObjectBackend(mem, "packs", cache)
			dir := t.TempDir()
			s, err := store.OpenWith(dir, store.Options{Backend: backend, ShardFanout: 4})
			if err != nil {
				t.Fatal(err)
			}
			want := map[int][]byte{}
			for i := 0; i < 6; i++ {
				data := testRemotePayload(96<<10, uint64(i))
				want[i] = data
				key := store.Key{LoopID: "train", Exec: i}
				if _, err := s.PutSections(key, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
			// Pack objects actually live remotely.
			if keys, _ := mem.List("packs/"); len(keys) == 0 {
				t.Fatal("no pack objects in the object store")
			}

			// A fresh read-only open restores byte-identically, attributing
			// every encoded byte to the remote-shaped tiers.
			ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			var fs store.FetchStats
			for i, data := range want {
				secs, ok, err := ro.GetSectionsObserved(store.Key{LoopID: "train", Exec: i}, nil, &fs)
				if err != nil || !ok {
					t.Fatalf("exec %d: ok=%v err=%v", i, ok, err)
				}
				if !bytes.Equal(secs[0].Data, data) {
					t.Fatalf("exec %d: payload mismatch", i)
				}
			}
			snap := fs.Snapshot()
			if snap.MmapBytes+snap.ScatterBytes+snap.RangedBytes != 0 {
				t.Fatalf("remote store used local fetch tiers: %+v", snap)
			}
			if snap.RemoteBytes+snap.CacheTierBytes == 0 {
				t.Fatalf("no remote-tier attribution: %+v", snap)
			}
			if cached {
				// Everything the first pass fetched is resident; a second
				// pass must be nearly all cache-tier.
				var warm store.FetchStats
				for i, data := range want {
					secs, ok, err := ro.GetSectionsObserved(store.Key{LoopID: "train", Exec: i}, nil, &warm)
					if err != nil || !ok || !bytes.Equal(secs[0].Data, data) {
						t.Fatalf("warm exec %d: ok=%v err=%v", i, ok, err)
					}
				}
				ws := warm.Snapshot()
				total := ws.RemoteBytes + ws.CacheTierBytes
				if total == 0 || ws.CacheTierBytes*10 < total*9 {
					t.Fatalf("warm pass served %d of %d bytes from the cache tier, want >= 90%%", ws.CacheTierBytes, total)
				}
			} else if snap.CacheTierBytes != 0 {
				t.Fatalf("uncached backend attributed cache-tier bytes: %+v", snap)
			}
		})
	}
}

// TestRemoteUploadRestoreCycle uploads a locally recorded store and serves it
// back statelessly: control plane fetched to a fresh directory, packs read
// through the object backend, all checkpoints byte-identical. Uploads are
// idempotent.
func TestRemoteUploadRestoreCycle(t *testing.T) {
	// Record locally (plain DirBackend layout, sharded).
	src := t.TempDir()
	s, err := store.OpenWith(src, store.Options{ShardFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{}
	for i := 0; i < 5; i++ {
		data := testRemotePayload(64<<10, uint64(100+i))
		want[i] = data
		if _, err := s.PutSections(store.Key{LoopID: "train", Exec: i}, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	mem := remote.NewMemStore()
	n, err := remote.UploadRun(mem, src, "runs/r1")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing uploaded")
	}
	// Idempotent: a second pass moves nothing.
	if n2, err := remote.UploadRun(mem, src, "runs/r1"); err != nil || n2 != 0 {
		t.Fatalf("re-upload moved %d objects, err=%v; want 0, nil", n2, err)
	}

	// Stateless restore on a "different machine": fresh control-plane dir,
	// packs via ranged GETs through a cache tier.
	ctl := t.TempDir() + "/ctl"
	if _, err := remote.FetchControlPlane(mem, "runs/r1", ctl); err != nil {
		t.Fatal(err)
	}
	cache, err := cachetier.NewWithBlockSize("", 8<<20, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	backend := remote.NewObjectBackend(mem, remote.PacksPrefix("runs/r1"), cache)
	ro, err := store.OpenWith(ctl, store.Options{ReadOnly: true, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range want {
		secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
		if err != nil || !ok || !bytes.Equal(secs[0].Data, data) {
			t.Fatalf("remote restore exec %d: ok=%v err=%v", i, ok, err)
		}
	}
	if cache.Stats().MissBytes == 0 {
		t.Fatal("restore never touched the cache tier")
	}
}

// testRemotePayload builds a deterministic mixed payload: compressible runs
// with a seeded stride of unique bytes, so packs have realistic frame mixes.
func testRemotePayload(n int, seed uint64) []byte {
	p := make([]byte, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range p {
		if i%7 == 0 {
			x = x*2862933555777941757 + 3037000493
			p[i] = byte(x >> 56)
		}
	}
	return p
}
