package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Backend abstracts where a store's chunk-pack bytes live. The sharded
// checkpoint store addresses every pack through this interface, so shard
// packs can be spread across directories (and, later, devices or S3-style
// object stores) without the read or write paths knowing.
//
// The contract is shaped by what an append-only pack needs and by what
// ranged remote stores can offer:
//
//   - Objects are named by flat string keys ("CHUNKS", "CHUNKS-03",
//     "CHUNKS-03.gz"); the backend owns the mapping from name to location.
//   - Append is the only mutation the hot write path uses. The store
//     serializes appends per object (per-shard append locks), so backends
//     need not make concurrent appends to the same object atomic — but
//     appends to different objects run concurrently.
//   - Open returns a ranged reader (io.ReaderAt): replay reads frames by
//     (offset, length) from the run's manifest, which maps directly onto a
//     ranged GET against a remote object.
//   - Create streams a wholesale object replacement (commit on Close, Abort
//     to discard); only cold-path artifacts (spooled .gz objects) use it.
//
// All methods must be safe for concurrent use on distinct names.
type Backend interface {
	// Size returns the object's current length in bytes, 0 (not an error)
	// when the object does not exist.
	Size(name string) (int64, error)
	// Append appends p to the named object, creating it if needed.
	Append(name string, p []byte) error
	// Open returns a ranged reader over the named object. It fails if the
	// object does not exist.
	Open(name string) (BackendReader, error)
	// Create returns a streaming writer that atomically replaces the named
	// object on Close: spooling compresses whole packs through it without
	// buffering the compressed object in memory. Abort discards the
	// in-progress write, leaving any existing object untouched.
	Create(name string) (BackendWriter, error)
	// Remove deletes the named object; removing an absent object is not an
	// error. Only GC's grace-period pack retirement uses it — the hot paths
	// never delete.
	Remove(name string) error
}

// BackendReader is a ranged read handle on one backend object.
type BackendReader interface {
	io.ReaderAt
	io.Closer
}

// MappedBackend is an optional Backend capability: whole-object read-only
// memory maps. The restore hot path prefers a mapping over ranged reads —
// frame parsing then runs straight over the page cache with no per-restore
// read syscalls or staging buffers. Backends whose objects are not local
// files (S3-style ranged stores) simply do not implement the interface and
// keep the streamed read path; implementations may also return an error for
// objects they cannot map, which likewise falls back.
type MappedBackend interface {
	// OpenMapped memory-maps the named object read-only at its current
	// length. The mapping stays valid after the object is appended to (it
	// covers the old length) and, on POSIX systems, after the object is
	// removed — callers remap when they need bytes past the mapped length.
	OpenMapped(name string) (*Mapping, error)
}

// Mapping is a read-only memory-mapped view of one backend object. Close
// invalidates Bytes; the caller owns making sure no reads are in flight.
type Mapping struct {
	data  []byte
	unmap func([]byte) error
}

// Bytes returns the mapped view. The slice must not be mutated and must not
// be referenced after Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Close unmaps the view. Safe to call twice.
func (m *Mapping) Close() error {
	if m.unmap == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return m.unmap(data)
}

// TieredBackend is an optional Backend capability implemented by backends
// whose reads travel a network (S3-style object stores), possibly through a
// local read-through cache tier. The restore path switches to a
// remote-shaped fetch strategy for such backends: no memory maps, no
// vectored preads against a file descriptor — instead offset-sorted jobs
// coalesce into spans and the spans are fetched as parallel ranged GETs per
// shard, with bytes attributed to the "remote" and "cache-tier" fetch tiers.
type TieredBackend interface {
	// RemoteReads reports whether reads are served by a remote object store
	// (true switches the restore path to the remote fetch strategy).
	RemoteReads() bool
}

// TieredReader is an optional BackendReader capability: ReadAtTier is ReadAt
// plus per-read tier attribution, reporting how many of the returned bytes
// were served by a local cache tier, fetched from the remote store by this
// read, or shared from another reader's concurrent in-flight fetch of the
// same blocks (the singleflight tier). Readers without the capability have
// their whole read attributed remote.
type TieredReader interface {
	ReadAtTier(p []byte, off int64) (n int, cached, fetched, shared int64, err error)
}

// WarmReader is an optional BackendReader capability for speculative
// readahead: WarmAt makes the blocks covering [off, off+n) resident in the
// reader's cache tier without materializing them into a caller buffer — the
// whole point of warming is that nobody reads the bytes yet, so the copy a
// ReadAt would pay is pure waste. It returns how many bytes it fetched
// remotely (already-resident blocks cost nothing). The prefetcher falls back
// to plain ReadAt into a scratch buffer when the capability is absent.
type WarmReader interface {
	WarmAt(off, n int64) (fetched int64, err error)
}

// BackendWriter is a streaming write handle on one backend object: Close
// commits the object atomically; Abort abandons the write, leaving any
// previously committed object intact. A failed write must be Aborted, not
// Closed — Close after a partial write would commit a truncated object
// over a valid one.
type BackendWriter interface {
	io.Writer
	io.Closer
	Abort()
}

// DirBackend stores objects as plain files spread over one or more root
// directories. With a single root it reproduces the classic run-directory
// layout; with several, shard packs fan out across the roots (one device or
// mount per root), so concurrent shard appends and reads hit independent
// directories.
type DirBackend struct {
	roots []string
}

// NewDirBackend returns a backend over the given root directories, creating
// any that do not exist. At least one root is required.
func NewDirBackend(roots ...string) (*DirBackend, error) {
	if len(roots) == 0 {
		return nil, errors.New("store: dir backend needs at least one root")
	}
	for _, r := range roots {
		if err := os.MkdirAll(r, 0o755); err != nil {
			return nil, fmt.Errorf("store: dir backend root: %w", err)
		}
	}
	return &DirBackend{roots: append([]string(nil), roots...)}, nil
}

// Roots returns the backend's root directories.
func (b *DirBackend) Roots() []string { return append([]string(nil), b.roots...) }

// path maps an object name to its file. Placement hashes the name with any
// ".gz" suffix trimmed, so a spooled object always lands next to the pack it
// was spooled from.
func (b *DirBackend) path(name string) string {
	if len(b.roots) == 1 {
		return filepath.Join(b.roots[0], name)
	}
	h := fnv.New32a()
	h.Write([]byte(strings.TrimSuffix(name, ".gz")))
	return filepath.Join(b.roots[int(h.Sum32())%len(b.roots)], name)
}

// Size implements Backend.
func (b *DirBackend) Size(name string) (int64, error) {
	st, err := os.Stat(b.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: stat %s: %w", name, err)
	}
	return st.Size(), nil
}

// Append implements Backend.
func (b *DirBackend) Append(name string, p []byte) error {
	f, err := os.OpenFile(b.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", name, err)
	}
	if _, err := f.Write(p); err != nil {
		f.Close()
		return fmt.Errorf("store: append %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", name, err)
	}
	return nil
}

// Open implements Backend.
func (b *DirBackend) Open(name string) (BackendReader, error) {
	f, err := os.Open(b.path(name))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", name, err)
	}
	return f, nil
}

// Create implements Backend: a streaming writer into a temp sibling,
// renamed over the object on Close, so readers never observe a half-written
// mix of old and new content.
func (b *DirBackend) Create(name string) (BackendWriter, error) {
	path := b.path(name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: create %s: %w", name, err)
	}
	return &renameOnClose{f: f, tmp: tmp, path: path, name: name}, nil
}

// Remove implements Backend.
func (b *DirBackend) Remove(name string) error {
	err := os.Remove(b.path(name))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: remove %s: %w", name, err)
	}
	return nil
}

type renameOnClose struct {
	f    *os.File
	tmp  string
	path string
	name string
}

func (w *renameOnClose) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *renameOnClose) Close() error {
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("store: close %s: %w", w.name, err)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("store: commit %s: %w", w.name, err)
	}
	return nil
}

func (w *renameOnClose) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}
