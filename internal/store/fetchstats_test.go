package store

import (
	"testing"

	"flor.dev/flor/internal/ckptfmt"
)

func TestFetchTierAttribution(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{LoopID: "train", Exec: 0}
	secs := []Section{
		{Name: "w", Data: testPayload(512<<10, 1)},
		{Name: "opt", Data: testPayload(64<<10, 2)},
	}
	if _, err := s.PutSections(key, secs, 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	prevMmap := SetMmapPackReads(false)
	defer SetMmapPackReads(prevMmap)

	// Cold read: every restored byte must be attributed to a disk tier.
	var fs FetchStats
	got, ok, err := s.GetSectionsObserved(key, nil, &fs)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	snap := fs.Snapshot()
	if snap.TotalFrames() == 0 || snap.TotalBytes() == 0 {
		t.Fatalf("no fetch attribution: %+v", snap)
	}
	if snap.CacheBytes != 0 || snap.CacheFrames != 0 {
		t.Fatalf("cold read attributed to cache: %+v", snap)
	}
	if snap.MmapBytes != 0 {
		t.Fatalf("mmap disabled but mmap tier counted: %+v", snap)
	}
	if snap.ScatterBytes+snap.RangedBytes != snap.TotalBytes() {
		t.Fatalf("disk tiers do not cover the read: %+v", snap)
	}
	var chunks int64
	for _, sec := range got {
		if sec.Data == nil {
			t.Fatal("cold read returned a skipped section")
		}
		chunks += int64(len(sec.Data))
	}

	// Cached read: a have callback claiming every section must shift the
	// whole read to the cache tier, counting logical (raw) bytes skipped.
	var fs2 FetchStats
	if _, ok, err := s.GetSectionsObserved(key, func(ckptfmt.Hash) bool { return true }, &fs2); err != nil || !ok {
		t.Fatalf("cached read: ok=%v err=%v", ok, err)
	}
	snap2 := fs2.Snapshot()
	if snap2.CacheBytes != chunks {
		t.Fatalf("cache tier bytes = %d, want logical %d", snap2.CacheBytes, chunks)
	}
	if snap2.TotalBytes() != snap2.CacheBytes || snap2.TotalFrames() != snap2.CacheFrames {
		t.Fatalf("cached read touched disk tiers: %+v", snap2)
	}

	// Snapshot algebra used by the per-restore span deltas.
	d := snap2.Add(snap).Sub(snap)
	if d != snap2 {
		t.Fatalf("Add/Sub not inverse: %+v != %+v", d, snap2)
	}

	// Mmap read (when the platform maps packs): small frames shift to the
	// mmap tier; large direct-read frames stay on scatter/ranged.
	if _, isMapped := s.pool.backend.(MappedBackend); isMapped {
		SetMmapPackReads(true)
		var fs3 FetchStats
		if _, ok, err := s.GetSectionsObserved(key, nil, &fs3); err != nil || !ok {
			t.Fatalf("mmap read: ok=%v err=%v", ok, err)
		}
		snap3 := fs3.Snapshot()
		if snap3.TotalBytes() == 0 || snap3.CacheBytes != 0 {
			t.Fatalf("mmap read misattributed: %+v", snap3)
		}
	}
}

// TestFetchTierCountingDisabledAllocFree is the CI zero-alloc guard for the
// store-tier attribution hot path: with the registry disabled (nil handles)
// and no per-query observer, counting must not allocate.
func TestFetchTierCountingDisabledAllocFree(t *testing.T) {
	p := &ChunkPool{fanout: 1}
	p.initShards() // resolves nil handles while the registry is disabled
	var nilFS *FetchStats
	allocs := testing.AllocsPerRun(1000, func() {
		p.countFetch(tierMmap, 4096, 3, nil)
		p.countFetch(tierCache, 1<<20, 16, nil)
		nilFS.note(tierRanged, 128, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tier counting allocated %.1f times per op, want 0", allocs)
	}
	if s := nilFS.Snapshot(); s != (FetchSnapshot{}) {
		t.Fatalf("nil FetchStats snapshot = %+v, want zero", s)
	}
}
