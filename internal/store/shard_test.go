package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
)

func openSharded(t *testing.T, fanout int) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{ShardFanout: fanout})
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestShardedRoundTripAndReopen(t *testing.T) {
	s, dir := openSharded(t, 16)
	if s.ShardFanout() != 16 {
		t.Fatalf("fanout = %d, want 16", s.ShardFanout())
	}
	// Enough chunks to land on many shards.
	big := noise(8*ckptfmt.DefaultChunkSize+99, 21)
	secs := []Section{
		{Name: "net", Data: big},
		{Name: "rng", Data: []byte("rng state")},
	}
	key := Key{LoopID: "train", Exec: 0}
	if _, err := s.PutSections(key, secs, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSections(key, nil)
	if err != nil || !ok {
		t.Fatalf("GetSections: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got[0].Data, big) || string(got[1].Data) != "rng state" {
		t.Fatal("section data mismatch")
	}
	// Chunks actually spread across more than one shard pack.
	packs := 0
	for i := 0; i < 16; i++ {
		if st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("CHUNKS-%02x", i))); err == nil && st.Size() > 0 {
			packs++
		}
	}
	if packs < 2 {
		t.Fatalf("chunks landed in %d shard packs, want spread", packs)
	}
	if _, err := os.Stat(filepath.Join(dir, "CHUNKS")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("sharded store grew an unsharded CHUNKS pack")
	}

	// A plain reopen (no options) must detect the sharded layout and read
	// everything back; the dedup index must survive.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ShardFanout() != 16 {
		t.Fatalf("reopened fanout = %d", s2.ShardFanout())
	}
	got, ok, err = s2.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(got[0].Data, big) {
		t.Fatalf("reopen read: ok=%v err=%v", ok, err)
	}
	m, err := s2.PutSections(Key{LoopID: "train", Exec: 1}, secs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.StoredBytes > int64(len(big))/2 {
		t.Fatalf("post-reopen put stored %d bytes; shard index not rebuilt", m.StoredBytes)
	}

	// Read-only open (the daemon path) serves the same bytes.
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = ro.GetSections(key, nil)
	if err != nil || !ok || !bytes.Equal(got[0].Data, big) {
		t.Fatalf("read-only read: ok=%v err=%v", ok, err)
	}
	if _, err := ro.PutSections(key, secs, 0, 0, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only write err = %v", err)
	}
}

func TestShardedDedupAcrossCheckpoints(t *testing.T) {
	s, _ := openSharded(t, 8)
	frozen := noise(4*ckptfmt.DefaultChunkSize, 7)
	var later int64
	for e := 0; e < 4; e++ {
		m, err := s.PutSections(Key{LoopID: "L", Exec: e}, []Section{
			{Name: "net", Data: frozen},
			{Name: "step", Data: []byte(fmt.Sprintf("epoch-%d", e))},
		}, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e > 0 {
			later += m.StoredBytes
		}
	}
	if later >= int64(len(frozen)) {
		t.Fatalf("later checkpoints stored %d bytes; frozen section not deduped across shards", later)
	}
	if r := s.Dedup().Ratio(); r < 2 {
		t.Fatalf("dedup ratio = %.2f", r)
	}
}

// TestShardedConcurrentPuts drives PutSections from many goroutines: the
// per-shard append locks must keep packs, index, and manifest consistent,
// and every checkpoint must read back intact after a reopen.
func TestShardedConcurrentPuts(t *testing.T) {
	s, dir := openSharded(t, 16)
	const writers, epochs = 4, 3
	shared := noise(2*ckptfmt.DefaultChunkSize, 77) // cross-writer dedup races
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				own := noise(3*ckptfmt.DefaultChunkSize+w*17, uint64(100+w*10+e))
				_, err := s.PutSections(Key{LoopID: fmt.Sprintf("w%d", w), Exec: e}, []Section{
					{Name: "own", Data: own},
					{Name: "shared", Data: shared},
				}, 0, 0, 0)
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range []*Store{s, mustReopen(t, dir)} {
		for w := 0; w < writers; w++ {
			for e := 0; e < epochs; e++ {
				want := noise(3*ckptfmt.DefaultChunkSize+w*17, uint64(100+w*10+e))
				secs, ok, err := st.GetSections(Key{LoopID: fmt.Sprintf("w%d", w), Exec: e}, nil)
				if err != nil || !ok {
					t.Fatalf("w%d@%d: ok=%v err=%v", w, e, ok, err)
				}
				if !bytes.Equal(secs[0].Data, want) || !bytes.Equal(secs[1].Data, shared) {
					t.Fatalf("w%d@%d: data mismatch", w, e)
				}
			}
		}
	}
}

func mustReopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardDirsSpreadAndPersist opens a sharded store whose packs spread
// over extra root directories, and checks that plain and read-only reopens
// find them through the persisted SHARDS file.
func TestShardDirsSpreadAndPersist(t *testing.T) {
	dir := t.TempDir()
	extraA, extraB := t.TempDir(), t.TempDir()
	s, err := OpenWith(dir, Options{ShardFanout: 16, ShardDirs: []string{extraA, extraB}})
	if err != nil {
		t.Fatal(err)
	}
	big := noise(8*ckptfmt.DefaultChunkSize, 5)
	key := Key{LoopID: "L", Exec: 0}
	if _, err := s.PutSections(key, []Section{{Name: "net", Data: big}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	spread := 0
	for _, root := range []string{dir, extraA, extraB} {
		entries, _ := os.ReadDir(root)
		for _, e := range entries {
			if len(e.Name()) == len("CHUNKS-00") && e.Name()[:7] == "CHUNKS-" {
				spread++
				break
			}
		}
	}
	if spread < 2 {
		t.Fatalf("packs landed in %d roots, want spread over several", spread)
	}
	for _, open := range []func() (*Store, error){
		func() (*Store, error) { return Open(dir) },
		func() (*Store, error) { return OpenReadOnly(dir) },
	} {
		s2, err := open()
		if err != nil {
			t.Fatal(err)
		}
		secs, ok, err := s2.GetSections(key, nil)
		if err != nil || !ok || !bytes.Equal(secs[0].Data, big) {
			t.Fatalf("reopen via SHARDS file: ok=%v err=%v", ok, err)
		}
	}
}

// TestShardDirRelocationRefused pins that a recorded store's root list is
// immutable: reopening with different (or reordered, or newly added) shard
// dirs must be refused — silently adopting them would relocate every pack
// lookup away from the real packs and rewrite SHARDS to match.
func TestShardDirRelocationRefused(t *testing.T) {
	dir := t.TempDir()
	extraA, extraB := t.TempDir(), t.TempDir()
	s, err := OpenWith(dir, Options{ShardFanout: 16, ShardDirs: []string{extraA, extraB}})
	if err != nil {
		t.Fatal(err)
	}
	big := noise(8*ckptfmt.DefaultChunkSize, 41)
	key := Key{LoopID: "L", Exec: 0}
	if _, err := s.PutSections(key, []Section{{Name: "net", Data: big}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{t.TempDir()},         // different roots
		{extraB, extraA},      // reordered (placement is order-sensitive)
		{extraA},              // dropped
		{extraA, extraB, dir}, // grown
	} {
		if _, err := OpenWith(dir, Options{ShardDirs: bad}); err == nil {
			t.Fatalf("reopen with shard dirs %v succeeded, want refusal", bad)
		}
	}
	// The matching list still opens, and plain opens are untouched.
	for _, open := range []func() (*Store, error){
		func() (*Store, error) { return OpenWith(dir, Options{ShardDirs: []string{extraA, extraB}}) },
		func() (*Store, error) { return Open(dir) },
	} {
		s2, err := open()
		if err != nil {
			t.Fatal(err)
		}
		secs, ok, err := s2.GetSections(key, nil)
		if err != nil || !ok || !bytes.Equal(secs[0].Data, big) {
			t.Fatalf("reopen after refusals: ok=%v err=%v", ok, err)
		}
	}
}

// TestMissingShardPackNamesShard deletes one shard's pack: a writable open
// must refuse, naming the shard — appending to a rewound pack would poison
// the manifest — while a read-only open degrades gracefully (the daemon
// keeps serving what survives) and reads touching the shard fail with an
// error naming it.
func TestMissingShardPackNamesShard(t *testing.T) {
	s, dir := openSharded(t, 4)
	big := noise(8*ckptfmt.DefaultChunkSize, 13)
	key := Key{LoopID: "L", Exec: 0}
	if _, err := s.PutSections(key, []Section{{Name: "net", Data: big}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Find a populated shard pack and remove it.
	var victim string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("CHUNKS-%02x", i)
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && st.Size() > 0 {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no populated shard pack found")
	}
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	// Writable open: refused, naming the shard.
	_, err := Open(dir)
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("writable open with missing shard: err = %v, want codec.ErrCorrupt refusal", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte(victim)) {
		t.Fatalf("refusal %q does not name the missing shard %s", err, victim)
	}
	// Read-only open: graceful; reads touching the shard name it.
	s2, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("read-only open with missing shard must degrade gracefully: %v", err)
	}
	_, _, err = s2.GetSections(key, nil)
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("read error %v is not codec.ErrCorrupt", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte(victim)) {
		t.Fatalf("error %q does not name the missing shard %s", err, victim)
	}
}

func TestUnknownFormatMarkerTyped(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(Key{LoopID: "L", Exec: 0}, []byte("precious"), 0, 0, 0)
	os.WriteFile(filepath.Join(dir, "FORMAT"), []byte("9 quantum=yes\n"), 0o644)

	for _, open := range []func() (*Store, error){
		func() (*Store, error) { return Open(dir) },
		func() (*Store, error) { return OpenReadOnly(dir) },
	} {
		_, err := open()
		if !errors.Is(err, ErrUnknownFormat) {
			t.Fatalf("open err = %v, want ErrUnknownFormat", err)
		}
		var ufe *UnknownFormatError
		if !errors.As(err, &ufe) || ufe.Marker != "9 quantum=yes" {
			t.Fatalf("err %v does not carry the detected marker", err)
		}
	}
	if _, err := DetectLayout(dir); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("DetectLayout err = %v, want ErrUnknownFormat", err)
	}
	// The refusal must not have truncated anything: restoring the marker
	// restores the run.
	os.WriteFile(filepath.Join(dir, "FORMAT"), []byte("2\n"), 0o644)
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get(Key{LoopID: "L", Exec: 0}); err != nil || string(got) != "precious" {
		t.Fatalf("data lost under unknown marker: %q, %v", got, err)
	}
}

func TestReshardRefusedOnRecordedStore(t *testing.T) {
	s, dir := openSharded(t, 8)
	if _, err := s.PutSections(Key{LoopID: "L", Exec: 0}, []Section{{Name: "w", Data: noise(512, 3)}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWith(dir, Options{ShardFanout: 16}); err == nil {
		t.Fatal("resharding a recorded store succeeded")
	}
	if _, err := OpenWith(dir, Options{ShardFanout: 8}); err != nil {
		t.Fatalf("matching fanout refused: %v", err)
	}
	// Fanout validation.
	if _, err := OpenWith(t.TempDir(), Options{ShardFanout: 12}); err == nil {
		t.Fatal("non-power-of-two fanout accepted")
	}
	if _, err := OpenWith(t.TempDir(), Options{Format: FormatV1, ShardFanout: 4}); err == nil {
		t.Fatal("sharded v1 accepted")
	}
	// Extra roots without a sharded layout would relocate the single CHUNKS
	// pack while the FORMAT marker still claims plain v2 — refuse.
	if _, err := OpenWith(t.TempDir(), Options{ShardDirs: []string{t.TempDir()}}); err == nil {
		t.Fatal("shard dirs accepted on an unsharded store")
	}
}

func TestDetectLayoutVariants(t *testing.T) {
	v1dir := t.TempDir()
	v1, _ := OpenFormat(v1dir, FormatV1)
	v1.Put(Key{LoopID: "L", Exec: 0}, []byte("x"), 0, 0, 0)
	v2dir := t.TempDir()
	Open(v2dir)
	shdir := t.TempDir()
	OpenWith(shdir, Options{ShardFanout: 16})

	cases := []struct {
		dir  string
		want string
	}{{v1dir, "v1"}, {v2dir, "v2"}, {shdir, "v2-sharded/16"}}
	for _, c := range cases {
		l, err := DetectLayout(c.dir)
		if err != nil {
			t.Fatal(err)
		}
		if l.String() != c.want {
			t.Fatalf("DetectLayout(%s) = %s, want %s", c.dir, l, c.want)
		}
	}
}

// TestIncrementalShardSpool pins the dirty-shard spool contract: a second
// Spool with no intervening writes recompresses nothing, and a small write
// recompresses only the shards it touched.
func TestIncrementalShardSpool(t *testing.T) {
	s, dir := openSharded(t, 16)
	big := noise(8*ckptfmt.DefaultChunkSize, 31)
	if _, err := s.PutSections(Key{LoopID: "L", Exec: 0}, []Section{{Name: "net", Data: big}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	total1, err := s.Spool()
	if err != nil {
		t.Fatal(err)
	}
	if total1 <= 0 {
		t.Fatalf("spool total = %d", total1)
	}
	mtimes := func() map[string]int64 {
		out := map[string]int64{}
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".gz" {
				info, _ := e.Info()
				out[e.Name()] = info.ModTime().UnixNano()
			}
		}
		return out
	}
	first := mtimes()
	total2, err := s.Spool() // clean: nothing grew
	if err != nil {
		t.Fatal(err)
	}
	if total2 != total1 {
		t.Fatalf("clean re-spool total %d != %d", total2, total1)
	}
	for name, mt := range mtimes() {
		if first[name] != mt {
			t.Fatalf("clean re-spool rewrote %s", name)
		}
	}

	// One small fresh chunk dirties at most a couple of shards.
	if _, err := s.PutSections(Key{LoopID: "L", Exec: 1}, []Section{
		{Name: "net", Data: big},
		{Name: "step", Data: []byte("epoch-1")},
	}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spool(); err != nil {
		t.Fatal(err)
	}
	rewrote := 0
	for name, mt := range mtimes() {
		if n, ok := first[name]; ok && n != mt && strings.HasPrefix(name, "CHUNKS-") {
			rewrote++
		}
	}
	if rewrote > 2 {
		t.Fatalf("incremental spool rewrote %d shard packs, want <= 2", rewrote)
	}

	// Spool coverage survives reopen: SPOOL state for shard packs, artifact
	// existence for immutable segments — a clean post-restart spool rewrites
	// nothing at all.
	s2 := mustReopen(t, dir)
	after := mtimes()
	if _, err := s2.Spool(); err != nil {
		t.Fatal(err)
	}
	for name, mt := range mtimes() {
		if after[name] != mt {
			t.Fatalf("post-reopen clean spool rewrote %s", name)
		}
	}
}
