package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/obs"
)

// Package-wide prefetch accounting, mirrored into the obs counters. The
// totals sum over every Prefetcher the process ran, so the serving daemon's
// stats payload can report prefetch effectiveness without holding on to
// per-replay prefetchers.
var (
	prefetchIssued    atomic.Int64
	prefetchUsed      atomic.Int64
	prefetchWasted    atomic.Int64
	prefetchCancelled atomic.Int64
)

// PrefetchSnapshot is a point-in-time copy of the process's prefetch
// accounting. Issued counts encoded pack bytes pulled toward the cache tier
// ahead of any restore; used is the subset a restore later consumed; wasted
// is the subset no restore ever touched; cancelled counts plan bytes dropped
// before they were fetched (lease steals, shutdown).
type PrefetchSnapshot struct {
	IssuedBytes    int64 `json:"issued_bytes"`
	UsedBytes      int64 `json:"used_bytes"`
	WastedBytes    int64 `json:"wasted_bytes"`
	CancelledBytes int64 `json:"cancelled_bytes"`
}

// PrefetchTotals returns the process-wide prefetch accounting.
func PrefetchTotals() PrefetchSnapshot {
	return PrefetchSnapshot{
		IssuedBytes:    prefetchIssued.Load(),
		UsedBytes:      prefetchUsed.Load(),
		WastedBytes:    prefetchWasted.Load(),
		CancelledBytes: prefetchCancelled.Load(),
	}
}

// Hint lifecycle states.
const (
	hintQueued   = iota // waiting for a warm worker
	hintFetching        // a worker is warming its spans
	hintFetched         // warmed; waiting for a restore to claim it
)

// hintState tracks one hinted checkpoint key through the prefetch lifecycle.
type hintState struct {
	status    int
	bytes     int64 // encoded bytes warmed so far
	claimed   bool  // a restore reached the key (used once warming settles)
	cancelled bool  // the plan dropped the key (steal, shutdown)
}

// Prefetcher warms a remote-backed store's cache tier ahead of the restore
// front. Replay workers hint the checkpoint keys their lease horizon says
// they will restore next; background warm workers resolve each key's chunk
// spans and read them through the tiered backend — no decode, no section
// buffers — so the cache tier holds the blocks by the time the real restore
// asks for them (the block-level singleflight dedupes a warm racing the
// restore it serves). Hints for keys a steal took away are cancelled.
//
// A nil Prefetcher no-ops on every method, and NewPrefetcher returns nil for
// stores whose reads are local: the local path gains nothing from warming
// and must not pay even a goroutine for it.
type Prefetcher struct {
	s  *Store
	tr *obs.Trace

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Key
	state  map[Key]*hintState
	closed bool
	wg     sync.WaitGroup

	mIssued    *obs.Counter
	mUsed      *obs.Counter
	mWasted    *obs.Counter
	mCancelled *obs.Counter
}

// NewPrefetcher starts workers warm goroutines over the store's remote
// backend, emitting "prefetch" spans into tr (nil for untraced). It returns
// nil — a no-op prefetcher — when the store's backend is not remote-tiered.
// Callers must Close the prefetcher to stop the workers and settle the
// wasted-bytes accounting.
func (s *Store) NewPrefetcher(workers int, tr *obs.Trace) *Prefetcher {
	if s == nil {
		return nil
	}
	tb, ok := s.pool.backend.(TieredBackend)
	if !ok || !tb.RemoteReads() {
		return nil
	}
	if workers <= 0 {
		workers = 2
	}
	p := &Prefetcher{
		s:          s,
		tr:         tr,
		state:      map[Key]*hintState{},
		mIssued:    obs.C(obs.MStorePrefetchIssued),
		mUsed:      obs.C(obs.MStorePrefetchUsed),
		mWasted:    obs.C(obs.MStorePrefetchWasted),
		mCancelled: obs.C(obs.MStorePrefetchCancelled),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

// Hint enqueues checkpoint keys for warming. Keys already hinted (in any
// state) and keys without a committed checkpoint are ignored, so callers can
// re-hint their whole horizon every iteration without duplicating work.
func (p *Prefetcher) Hint(keys ...Key) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	added := false
	for _, k := range keys {
		if st, seen := p.state[k]; seen {
			// A steal cancelled this key and its new owner re-planned it:
			// revive the hint rather than let the stale cancellation starve
			// a span that is genuinely about to be restored.
			if st.cancelled && st.status != hintFetched {
				st.cancelled = false
			}
			continue
		}
		if !p.s.Has(k) {
			continue
		}
		p.state[k] = &hintState{status: hintQueued}
		p.queue = append(p.queue, k)
		added = true
	}
	if added {
		p.cond.Broadcast()
	}
}

// Claim tells the prefetcher the restore front reached key. A warmed hint's
// bytes count as used; a hint still queued is dropped silently (the restore
// fetches it itself — warming now would only duplicate the read); a hint
// mid-warm is marked so its bytes count as used when the warm settles.
func (p *Prefetcher) Claim(key Key) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[key]
	if !ok {
		return
	}
	switch st.status {
	case hintQueued:
		delete(p.state, key) // the queue skips keys with no state
	case hintFetching:
		st.claimed = true
	case hintFetched:
		p.mUsed.Add(st.bytes)
		prefetchUsed.Add(st.bytes)
		delete(p.state, key)
	}
}

// Cancel drops hints whose iterations the plan no longer owns (a stolen
// lease). Queued hints are sized and counted cancelled when a worker drains
// them; a hint mid-warm stops at its next span boundary and counts its
// unread remainder cancelled; warmed hints stay resident — the thief's
// restore may still hit the blocks, and Close settles them as used/wasted.
func (p *Prefetcher) Cancel(keys ...Key) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range keys {
		if st, ok := p.state[k]; ok && st.status != hintFetched {
			st.cancelled = true
		}
	}
}

// Close stops the warm workers, drains the remaining queue as cancelled
// hints, waits for every worker to exit (no goroutine outlives Close), and
// counts warmed-but-never-claimed bytes as wasted.
func (p *Prefetcher) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, st := range p.state {
		if st.status != hintFetched {
			st.cancelled = true
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for k, st := range p.state {
		if st.status == hintFetched {
			if st.claimed {
				p.mUsed.Add(st.bytes)
				prefetchUsed.Add(st.bytes)
			} else {
				p.mWasted.Add(st.bytes)
				prefetchWasted.Add(st.bytes)
			}
		}
		delete(p.state, k)
	}
}

// Drain blocks until every hint enqueued so far has settled — warmed,
// dropped, or cancelled — the synchronous completion point for whole-run
// warming (flord's POST /v1/runs/{id}/warm). It returns immediately on a
// closed prefetcher; Close performs its own drain.
func (p *Prefetcher) Drain() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed {
		busy := len(p.queue) > 0
		if !busy {
			for _, st := range p.state {
				if st.status == hintFetching {
					busy = true
					break
				}
			}
		}
		if !busy {
			return
		}
		p.cond.Wait()
	}
}

// run is one warm worker: pop a hint, resolve its chunk spans, stream them
// through the tiered backend. Workers exit when the prefetcher closes and
// the queue (drained as cancellations) is empty.
func (p *Prefetcher) run() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		key := p.queue[0]
		p.queue = p.queue[1:]
		st, ok := p.state[key]
		if !ok || st.status != hintQueued {
			// Claimed (and dropped) or duplicated while queued. The skip can
			// empty the queue without a settle, so wake any Drain waiter.
			if len(p.queue) == 0 {
				p.cond.Broadcast()
			}
			p.mu.Unlock()
			continue
		}
		st.status = hintFetching
		cancelled := st.cancelled
		p.mu.Unlock()
		p.warm(key, st, cancelled)
	}
}

// warm resolves key's chunk locations and reads its coalesced spans through
// the backend so the cache tier admits their blocks. Sizing happens first so
// a cancelled hint still reports how many plan bytes it dropped; every
// failure is swallowed after dropping the hint — prefetch is speculation,
// and a real restore will surface any genuine fault with full context.
func (p *Prefetcher) warm(key Key, st *hintState, cancelled bool) {
	m, dir, err := p.s.segmentDir(key)
	if err != nil || dir == nil || dir.Opaque {
		p.drop(key)
		return
	}
	pool := p.s.pool
	var jobs []chunkJob
	byShard := map[int][]int{}
	for i := range dir.Sections {
		for _, ref := range dir.Sections[i].Chunks {
			si := pool.shardOf(ref.Hash)
			byShard[si] = append(byShard[si], len(jobs))
			jobs = append(jobs, chunkJob{sec: i, shard: si, ref: ref})
		}
	}
	if len(jobs) == 0 {
		p.drop(key)
		return
	}
	if err := pool.resolve(jobs, byShard, m.Seq); err != nil {
		p.drop(key)
		return
	}
	var encTotal int64
	for i := range jobs {
		encTotal += int64(jobs[i].loc.EncLen)
	}
	if cancelled {
		p.settleCancelled(key, encTotal)
		return
	}

	spanStart := p.tr.Now()
	var issued int64
	stopped := false
	for si, idxs := range byShard {
		if stopped {
			break
		}
		issuedShard, ok := p.warmShard(pool, si, jobs, idxs, key)
		issued += issuedShard
		if !ok {
			stopped = true
		}
	}

	p.mIssued.Add(issued)
	prefetchIssued.Add(issued)
	if p.tr != nil {
		p.tr.Add(obs.Span{Name: "prefetch", Worker: -1, StartNs: spanStart, DurNs: p.tr.Now() - spanStart,
			Attrs: map[string]int64{
				"exec":         int64(key.Exec),
				"issued_bytes": issued,
				"enc_bytes":    encTotal,
			}})
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if remainder := encTotal - issued; remainder > 0 && st.cancelled {
		p.mCancelled.Add(remainder)
		prefetchCancelled.Add(remainder)
	}
	st.bytes = issued
	st.status = hintFetched
	if st.claimed {
		p.mUsed.Add(issued)
		prefetchUsed.Add(issued)
		delete(p.state, key)
	}
	p.cond.Broadcast() // a hint settled; Drain waiters re-check
}

// warmShard reads one shard's coalesced spans. It stops early (ok=false)
// when the hint is cancelled between spans or the pack read fails.
func (p *Prefetcher) warmShard(pool *ChunkPool, si int, jobs []chunkJob, idxs []int, key Key) (issued int64, ok bool) {
	sorted := append([]int(nil), idxs...)
	sort.Slice(sorted, func(a, b int) bool { return jobs[sorted[a]].loc.Off < jobs[sorted[b]].loc.Off })
	obj := packObjName(pool.shardTab[si].name, jobs[sorted[0]].loc.Gen)
	pf, err := pool.backend.Open(obj)
	if err != nil {
		return 0, false
	}
	defer pf.Close()
	for k := 0; k < len(sorted); {
		start := jobs[sorted[k]].loc.Off
		end := start + int64(jobs[sorted[k]].loc.EncLen)
		var encB int64 = int64(jobs[sorted[k]].loc.EncLen)
		k++
		for k < len(sorted) {
			loc := jobs[sorted[k]].loc
			if loc.Off-end > maxCoalesceGap {
				break
			}
			if e := loc.Off + int64(loc.EncLen); e > end {
				end = e
			}
			encB += int64(loc.EncLen)
			k++
		}
		if p.hintDead(key) {
			return issued, false
		}
		var rerr error
		if w, ok := pf.(WarmReader); ok {
			// Copy-free warm: the tier admits the span's blocks directly from
			// the remote fetch, with no scratch buffer for bytes nobody reads.
			_, rerr = w.WarmAt(start, end-start)
		} else {
			buf := ckptfmt.Shared.Get(int(end - start))
			_, rerr = pf.ReadAt(buf, start)
			ckptfmt.Shared.Put(buf)
		}
		if rerr != nil {
			return issued, false
		}
		issued += encB
	}
	return issued, true
}

// hintDead reports whether key's hint was cancelled (steal, shutdown) — the
// signal to stop issuing its remaining spans.
func (p *Prefetcher) hintDead(key Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[key]
	return !ok || st.cancelled
}

// drop forgets a hint that cannot be warmed (missing, opaque, format v1,
// stale locations). Nothing is counted: no bytes were planned or issued.
func (p *Prefetcher) drop(key Key) {
	p.mu.Lock()
	delete(p.state, key)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// settleCancelled counts a sized, never-issued hint's plan bytes as
// cancelled and forgets it.
func (p *Prefetcher) settleCancelled(key Key, encBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mCancelled.Add(encBytes)
	prefetchCancelled.Add(encBytes)
	delete(p.state, key)
	p.cond.Broadcast()
}
