package store

// pool.go implements the ChunkPool: the run-agnostic chunk layer under the
// checkpoint store. A pool owns the hash-prefix shard table — per-shard
// append locks, the content-addressed dedup index, pack objects behind a
// Backend, incremental spool state — plus refcount-style garbage collection
// of superseded chunks via generational pack compaction.
//
// Every v2 store runs on a pool. A run's private pack is simply a
// single-tenant pool whose chunk records are persisted in the run's own
// MANIFEST (byte-identical to the pre-pool layouts). A *shared* pool lives
// in its own directory (conventionally <project>/POOL) and is attached by
// many runs of the same project:
//
//	<root>/POOL          marker: "pool1 shards=N"
//	<root>/INDEX         append-only CRC-framed chunk records ('C')
//	<root>/LEASES/<id>   one lease file per attached run (its directory path)
//	<root>/PACKGC        retired pack generations awaiting expiry
//	<root>/CHUNKS-xx[.gN] pack objects, generational after compaction
//
// Shared pools are process-wide singletons (an in-process registry keyed by
// resolved root), so concurrent sibling-run record and replay share one
// shard table and its locks. Cross-process concurrent *writers* against one
// pool are not coordinated; serving and replay open pools read-only.
//
// # GC and the grace period
//
// Compaction never mutates a pack in place: survivors of shard S at
// generation g are rewritten into the pack object for generation g+1, the
// chunk records are atomically rewritten (run MANIFEST for private pools,
// pool INDEX for shared ones), and only then does the in-memory shard swap
// to the new generation. The replaced object is a grace-period tombstone:
// it stays on disk, readable by any store that resolved chunk locations
// before the swap (including concurrent OpenReadOnly stores in other
// processes), until a later GC pass finds its retirement deadline expired
// in PACKGC and deletes it.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flor.dev/flor/internal/ckptfmt"
	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/obs"
)

// Shared-pool control-plane file names inside a pool root.
const (
	poolMarkerFile = "POOL"
	poolIndexFile  = "INDEX"
	poolLeaseDir   = "LEASES"
	packGCFile     = "PACKGC"
)

// DefaultPackRetention is how long a compacted-away pack generation stays
// on disk for concurrent readers before a later GC pass deletes it.
const DefaultPackRetention = 10 * time.Minute

// ErrStalePack reports a read through an index that GC in another process
// has outrun: either a pack generation whose grace period expired after the
// reader resolved chunk locations, or a superseded checkpoint's segment file
// removed by the (grace-free) segment sweep. The reader's in-memory index is
// stale, not the data — re-opening the store resolves the current generation
// and the successor checkpoints. Long-lived readers (the serving daemon's
// store cache) catch this to refresh and retry.
var ErrStalePack = errors.New("store: pack generation retired by gc")

// chunkLoc locates one content-addressed frame inside its shard's pack
// generation.
type chunkLoc struct {
	Gen    int   // pack generation (0 = the original pack object)
	Off    int64 // offset within the generation's pack object
	EncLen int
	RawLen int
	Style  byte
}

// poolShard is one hash-prefix slice of a chunk pool: an independently
// appendable pack object plus its level-two dedup map. Every shard has its
// own lock, so appends and index probes on different shards never contend.
// All live index entries of a shard share the shard's active generation.
type poolShard struct {
	name string // base pack object name within the backend

	mu         sync.Mutex
	gen        int // active pack generation
	chunks     map[ckptfmt.Hash]chunkLoc
	packLen    int64 // committed length of the active generation's object
	spooledLen int64 // pack length covered by the last spool
	spooledGz  int64 // compressed size of that spool artifact
	// broken latches the first append failure whose length resync also
	// failed: packLen can no longer be trusted, and appending at an unknown
	// offset would commit wrong-offset chunk records. Reads stay valid.
	broken error

	// mapped caches one refcounted read-only mapping of a pack object for
	// the mmap read path; mappedObj names the object it covers. Replaced
	// when a fetch needs bytes past the mapped length (the pack grew) or a
	// different generation, and retired on compaction swap.
	mapped    *packMap
	mappedObj string
}

// packMap is a refcounted handle on one pack object's memory mapping.
// Fetches acquire it for the span of a readSections call (decode reads the
// frame bytes straight out of the mapping); the owning shard retires it when
// the mapping is replaced or its generation compacted away, and whichever of
// retire/release runs last unmaps. Refcounting is what makes unmap safe: a
// munmap while a decode still reads the pages would fault the process, not
// error.
type packMap struct {
	mu      sync.Mutex
	m       *Mapping
	refs    int
	retired bool
}

func (pm *packMap) acquireLocked() { // caller holds the owning shard's mu
	pm.mu.Lock()
	pm.refs++
	pm.mu.Unlock()
}

func (pm *packMap) release() {
	pm.mu.Lock()
	pm.refs--
	last := pm.refs == 0 && pm.retired
	pm.mu.Unlock()
	if last {
		pm.m.Close()
	}
}

func (pm *packMap) retire() {
	pm.mu.Lock()
	pm.retired = true
	idle := pm.refs == 0
	pm.mu.Unlock()
	if idle {
		pm.m.Close()
	}
}

// mmapPackReads gates the memory-mapped read path process-wide (1 = on).
// The streamed ranged-read path is the fallback and the two must be
// byte-identical — the migration matrix test runs both.
var mmapPackReads atomic.Bool

func init() { mmapPackReads.Store(true) }

// SetMmapPackReads enables or disables memory-mapped pack reads, returning
// the previous setting. Benchmarks and tests use it to compare the mmap and
// streamed read paths; production leaves it on.
func SetMmapPackReads(on bool) (prev bool) {
	return mmapPackReads.Swap(on)
}

// pipelinedRemoteFetch gates the streaming remote restore path process-wide
// (1 = on): each coalesced span's frames decode as soon as its ranged GET
// lands instead of waiting for every span of the shard. The barriered path
// is the fallback and the two must be byte-identical — the remote-twin
// migration test and the cold-restore benchmark run both.
var pipelinedRemoteFetch atomic.Bool

func init() { pipelinedRemoteFetch.Store(true) }

// SetPipelinedRemoteFetch enables or disables the pipelined remote fetch
// path (decode overlapped with in-flight ranged GETs), returning the
// previous setting. Benchmarks use it to measure the pipeline against the
// span barrier; production leaves it on.
func SetPipelinedRemoteFetch(on bool) (prev bool) {
	return pipelinedRemoteFetch.Swap(on)
}

// packObjName maps (base name, generation) to the backend object name.
func packObjName(name string, gen int) string {
	if gen == 0 {
		return name
	}
	return fmt.Sprintf("%s.g%d", name, gen)
}

// obj returns the shard's active pack object name. Callers hold sh.mu or
// have exclusive access.
func (sh *poolShard) obj() string { return packObjName(sh.name, sh.gen) }

// PoolStats is a chunk pool's storage accounting, pool-wide (for a private
// pool this equals the run's own dedup accounting).
type PoolStats struct {
	Root           string `json:"root,omitempty"` // empty for private pools
	Fanout         int    `json:"fanout"`
	Leases         int    `json:"leases"` // attached runs (shared pools only)
	Chunks         int64  `json:"chunks"`
	StoredRawBytes int64  `json:"stored_raw_bytes"`
	StoredEncBytes int64  `json:"stored_enc_bytes"`
}

// ChunkPool is the run-agnostic chunk layer: shard table, dedup index, pack
// I/O and GC. It is safe for concurrent use by many stores.
type ChunkPool struct {
	root   string // pool root directory; "" for a private (single-run) pool
	ctlDir string // directory for SPOOL/PACKGC state (run dir or pool root)
	shared bool
	fanout int

	backend Backend

	// gcMu fences compaction against the chunk write path: a put holds the
	// read side from fresh-chunk filtering through manifest/index commit, so
	// GC's mark phase (which scans committed segment directories) can never
	// miss a chunk an in-flight checkpoint is about to reference. Lock
	// order: gcMu before any shard.mu or Store.mu.
	gcMu sync.RWMutex

	// spoolMu serializes whole Spool passes and excludes them from
	// compaction (which replaces the objects a spool would read).
	spoolMu sync.Mutex

	mu       sync.Mutex
	readOnly bool
	stored   PoolStats // Chunks/StoredRawBytes/StoredEncBytes upkeep
	dropped  []string  // packs whose records point past the pack's real end
	indexLen int64     // validated INDEX prefix length (shared pools)

	shardTab []*poolShard // two-level dedup index: shardTab[shardOf(h)].chunks[h]

	// Per-tier fetch counters, resolved once at construction (nil and
	// branch-free when the registry is disabled — the fetch hot path must
	// not allocate when nobody is watching).
	mFetchBytes  [numTiers]*obs.Counter
	mFetchFrames [numTiers]*obs.Counter
}

// newPrivatePool builds the single-tenant pool over a run's own backend;
// chunk records are adopted from the run manifest and finishOpen completes
// initialization.
func newPrivatePool(backend Backend, fanout int, readOnly bool) *ChunkPool {
	p := &ChunkPool{fanout: fanout, backend: backend, readOnly: readOnly}
	p.initShards()
	return p
}

// shards is built once at pool construction and never resized; the slice
// itself is immutable (individual shards have their own locks).
func (p *ChunkPool) initShards() {
	p.initFetchMetrics()
	if p.fanout <= 1 {
		p.fanout = 1
		p.shardTab = []*poolShard{{name: packFile, chunks: map[ckptfmt.Hash]chunkLoc{}}}
		return
	}
	p.shardTab = make([]*poolShard, p.fanout)
	for i := range p.shardTab {
		p.shardTab[i] = &poolShard{name: fmt.Sprintf("%s-%02x", packFile, i), chunks: map[ckptfmt.Hash]chunkLoc{}}
	}
}

// initFetchMetrics resolves the per-tier fetch counters; called from every
// pool constructor right after initShards.
func (p *ChunkPool) initFetchMetrics() {
	for t, name := range tierNames {
		p.mFetchBytes[t] = obs.C(obs.MStoreFetchBytes, obs.L("tier", name))
		p.mFetchFrames[t] = obs.C(obs.MStoreFetchFrames, obs.L("tier", name))
	}
}

// countFetch attributes frames frames totalling b encoded bytes to a fetch
// tier: always into the pool-wide metrics (no-op handles when disabled),
// and into the per-query observer when one is threaded through.
func (p *ChunkPool) countFetch(tier int, b, frames int64, fs *FetchStats) {
	p.mFetchBytes[tier].Add(b)
	p.mFetchFrames[tier].Add(frames)
	fs.note(tier, b, frames)
}

// Fanout returns the pool's shard count.
func (p *ChunkPool) Fanout() int { return p.fanout }

// Shared reports whether the pool is a multi-run shared pool.
func (p *ChunkPool) Shared() bool { return p.shared }

// Root returns the shared pool's root directory ("" for private pools).
func (p *ChunkPool) Root() string { return p.root }

// shardOf maps a content hash to its shard index: the hash's top byte
// masked to the fanout. The shard is a pure function of the hash, so chunk
// records never need to name it.
func (p *ChunkPool) shardOf(h ckptfmt.Hash) int {
	return int(h[0]) & (p.fanout - 1)
}

// adopt installs one replayed chunk record (first record wins, matching
// write-order dedup). Used while replaying a run manifest or a pool INDEX,
// before the pool is shared.
func (p *ChunkPool) adopt(h ckptfmt.Hash, loc chunkLoc) {
	sh := p.shardTab[p.shardOf(h)]
	if _, dup := sh.chunks[h]; !dup {
		sh.chunks[h] = loc
	}
	if loc.Gen > sh.gen {
		sh.gen = loc.Gen
	}
}

// finishOpen completes initialization after records were adopted: resolves
// each shard's active generation and pack length, drops records from stale
// generations or pointing past their pack's end (remembering the pack in
// dropped), and rebuilds the stored-chunk accounting. Runs single-threaded
// at open.
func (p *ChunkPool) finishOpen() error {
	p.stored.Fanout = p.fanout
	p.stored.Root = p.root
	p.stored.Chunks, p.stored.StoredRawBytes, p.stored.StoredEncBytes = 0, 0, 0
	for _, sh := range p.shardTab {
		n, err := p.backend.Size(sh.obj())
		if err != nil {
			return fmt.Errorf("store: shard %s: %w", sh.obj(), err)
		}
		sh.packLen = n
		bad := false
		for h, loc := range sh.chunks {
			if loc.Gen != sh.gen || loc.Off+int64(loc.EncLen) > sh.packLen {
				// A record from a superseded generation, or pointing past the
				// pack's real end (pack lost or truncated — never a crash
				// artifact, since pack bytes land before records). Drop it and
				// let reads of referencing checkpoints surface ErrCorrupt.
				delete(sh.chunks, h)
				bad = true
				continue
			}
			p.stored.Chunks++
			p.stored.StoredRawBytes += int64(loc.RawLen)
			p.stored.StoredEncBytes += int64(loc.EncLen)
		}
		if bad {
			p.dropped = append(p.dropped, sh.obj())
		}
	}
	sort.Strings(p.dropped)
	return nil
}

// droppedPacks names packs whose committed chunk records pointed past the
// pack's real end at open (pack lost or truncated). Read-only opens degrade
// gracefully; writable opens refuse, because appending to a rewound pack
// would re-commit hashes at offsets the old records still claim.
func (p *ChunkPool) droppedPacks() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.dropped...)
}

// Stats returns a snapshot of the pool's storage accounting (lease count
// refreshed from disk for shared pools).
func (p *ChunkPool) Stats() PoolStats {
	p.mu.Lock()
	st := p.stored
	p.mu.Unlock()
	if p.shared {
		if leases, err := p.leases(); err == nil {
			st.Leases = len(leases)
		}
	}
	return st
}

// filterFresh probes the dedup index and returns, in ascending order, the
// indices of hashes not stored yet (deduplicating repeats within the batch
// too).
func (p *ChunkPool) filterFresh(hashes []ckptfmt.Hash) []int {
	byShard := map[int][]int{}
	for i, h := range hashes {
		si := p.shardOf(h)
		byShard[si] = append(byShard[si], i)
	}
	var newIdx []int
	fresh := map[ckptfmt.Hash]bool{}
	for si, idxs := range byShard {
		sh := p.shardTab[si]
		sh.mu.Lock()
		for _, i := range idxs {
			h := hashes[i]
			if _, ok := sh.chunks[h]; !ok && !fresh[h] {
				fresh[h] = true
				newIdx = append(newIdx, i)
			}
		}
		sh.mu.Unlock()
	}
	sort.Ints(newIdx) // deterministic frame order regardless of shard map iteration
	return newIdx
}

// appendFrames appends freshly encoded frames to their hash shards' packs —
// each involved shard serializes its frames and appends under its own lock,
// concurrently with the other shards — and returns each frame's committed
// location. For shared pools it also appends the chunk records to the pool
// INDEX and publishes the locations to the in-memory dedup index; private
// pools defer publication to publish, after the run manifest commit.
// Callers hold p.gcMu.RLock (via Store.putV2).
func (p *ChunkPool) appendFrames(frames []ckptfmt.Frame) ([]chunkLoc, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	frameShards := map[int][]int{} // shard index -> indices into frames
	for i := range frames {
		si := p.shardOf(frames[i].Hash)
		frameShards[si] = append(frameShards[si], i)
	}
	involved := make([]int, 0, len(frameShards))
	for si := range frameShards {
		involved = append(involved, si)
	}
	locs := make([]chunkLoc, len(frames))
	appendErrs := make([]error, len(involved))
	ckptfmt.ParallelDo(len(involved), func(k int) {
		sh := p.shardTab[involved[k]]
		idxs := frameShards[involved[k]]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.broken != nil {
			appendErrs[k] = fmt.Errorf("store: shard %s unusable after failed append: %w", sh.name, sh.broken)
			return
		}
		var buf []byte
		off := sh.packLen
		for _, i := range idxs {
			before := len(buf)
			buf = frames[i].Append(buf)
			wire := len(buf) - before
			locs[i] = chunkLoc{Gen: sh.gen, Off: off, EncLen: wire, RawLen: frames[i].RawLen, Style: frames[i].Style}
			off += int64(wire)
		}
		if len(buf) == 0 {
			return
		}
		if err := p.backend.Append(sh.obj(), buf); err != nil {
			// A partial append leaves the pack length unknown; resync from
			// the backend so later appends don't commit bad offsets. If even
			// the resync fails, latch the shard broken: appending at a
			// guessed offset would poison the records permanently.
			if n, serr := p.backend.Size(sh.obj()); serr == nil {
				sh.packLen = n
			} else {
				sh.broken = err
			}
			appendErrs[k] = fmt.Errorf("store: shard %s: %w", sh.name, err)
			return
		}
		sh.packLen = off
	})
	for _, err := range appendErrs {
		if err != nil {
			return nil, err
		}
	}
	if p.shared {
		// Durable record first, then in-memory publication: a chunk becomes
		// dedup-visible to sibling runs only once its INDEX record can
		// survive a crash.
		if err := p.appendIndexRecords(frames, locs); err != nil {
			return nil, err
		}
		p.publish(frames, locs)
	}
	return locs, nil
}

// publish installs committed chunk locations into the dedup index (first
// location wins) and accumulates the pool's storage accounting.
func (p *ChunkPool) publish(frames []ckptfmt.Frame, locs []chunkLoc) {
	var chunks, raw, enc int64
	for i := range frames {
		sh := p.shardTab[p.shardOf(frames[i].Hash)]
		sh.mu.Lock()
		if _, dup := sh.chunks[frames[i].Hash]; !dup {
			sh.chunks[frames[i].Hash] = locs[i]
		}
		sh.mu.Unlock()
		chunks++
		raw += int64(locs[i].RawLen)
		enc += int64(locs[i].EncLen)
	}
	p.mu.Lock()
	p.stored.Chunks += chunks
	p.stored.StoredRawBytes += raw
	p.stored.StoredEncBytes += enc
	p.mu.Unlock()
}

// resolve fills each job's chunk location from the dedup index, locking
// each involved shard exactly once. seq names the requesting segment for
// error messages.
func (p *ChunkPool) resolve(jobs []chunkJob, byShard map[int][]int, seq int) error {
	for si, idxs := range byShard {
		sh := p.shardTab[si]
		sh.mu.Lock()
		for _, ji := range idxs {
			loc, ok := sh.chunks[jobs[ji].ref.Hash]
			if !ok {
				sh.mu.Unlock()
				return fmt.Errorf("%w: segment %d references chunk %s absent from shard %s (pack missing, truncated, or collected?)",
					codec.ErrCorrupt, seq, jobs[ji].ref.Hash, sh.name)
			}
			jobs[ji].loc = loc
		}
		sh.mu.Unlock()
	}
	return nil
}

// maxCoalesceGap bounds the dead bytes two neighbouring chunk reads may
// carry between them and still be merged into one ranged read. Re-reading up
// to 256 KiB of gap costs less than an extra read round-trip per chunk, yet
// a sparse restore (a few live chunks scattered over a big pack) still
// splits into separate reads instead of dragging the whole pack in.
const maxCoalesceGap = 256 << 10

// directReadMin is the frame-record size from which a chunk is fetched by a
// private ranged read straight into its decode destination
// (ckptfmt.DecodeFrameAt) instead of through the mapping or a staging span.
// For a large raw frame that is the whole restore: one kernel copy into the
// owned buffer, then a checksum over the hot copy — both the
// mapping-then-copy route (cold TLB walk over the mapped pages) and the
// span route (a second, staging copy) stream the bytes twice. Below the
// threshold the three small reads stop amortizing and coalesced spans or
// the mapping win.
const directReadMin = 64 << 10

// fetchShard points the given jobs' enc slices at the encoded frame bytes of
// one shard's pack generation. Jobs of one shard always share a generation
// (locations were resolved atomically under the shard lock).
//
// Two IO paths, byte-identical results:
//
//   - mmap (MappedBackend + SetMmapPackReads on): enc slices alias the pack
//     mapping directly — zero copies, zero read syscalls on warm page cache.
//   - streamed: offset-sorted jobs coalesce into bounded-gap spans, each one
//     ranged read into an arena staging buffer (readv in spirit: one pass,
//     few syscalls, no per-chunk allocations).
//
// Either way the enc slices alias memory that outlives this call only until
// release is invoked; the caller must call release (non-nil on success) after
// frame decode and must not let enc escape. A missing pack object surfaces
// ErrStalePack: the generation was compacted away and deleted after its
// grace period, so the caller's resolved locations are stale, not corrupt.
func (p *ChunkPool) fetchShard(si int, jobs []chunkJob, idxs []int, fs *FetchStats, bdgt *byteBudget) (release func(), err error) {
	sh := p.shardTab[si]
	obj := packObjName(sh.name, jobs[idxs[0]].loc.Gen)

	// Remote-backed pools skip the local-IO strategies (no file descriptor
	// to preadv, no pages to map) and fetch coalesced spans as parallel
	// ranged GETs instead.
	if tb, ok := p.backend.(TieredBackend); ok && tb.RemoteReads() {
		return p.fetchShardRemote(obj, jobs, idxs, fs, bdgt)
	}

	// Frames at least directReadMin long are handed the open pack handle
	// instead of bytes: the decode phase reads each one's payload by a
	// private ranged read straight into its destination buffer. Smaller
	// frames go through the mapping or coalesced staging spans below.
	var direct, rest []int
	for _, ji := range idxs {
		if int(jobs[ji].loc.EncLen) >= directReadMin && jobs[ji].dst != nil {
			direct = append(direct, ji)
		} else {
			rest = append(rest, ji)
		}
	}

	var rels []func()
	release = func() {
		for _, r := range rels {
			r()
		}
	}
	var pf BackendReader
	openPack := func() error {
		pf, err = p.backend.Open(obj)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("%w: shard %s: %v", ErrStalePack, obj, err)
			}
			return fmt.Errorf("%w: shard %s: open pack: %v", codec.ErrCorrupt, obj, err)
		}
		rels = append(rels, func() { pf.Close() })
		return nil
	}
	if len(direct) > 0 {
		if err := openPack(); err != nil {
			return nil, err
		}
		for _, ji := range direct {
			jobs[ji].src = pf
		}
		scatterRead(pf, jobs, direct)
		// Attribution: jobs the vectored read verified in place were served
		// by the scatter tier; the rest fall back to per-frame ranged reads
		// in the decode phase.
		var scB, scN, raB, raN int64
		for _, ji := range direct {
			if jobs[ji].pre {
				scB += int64(jobs[ji].loc.EncLen)
				scN++
			} else {
				raB += int64(jobs[ji].loc.EncLen)
				raN++
			}
		}
		if scN > 0 {
			p.countFetch(tierScatter, scB, scN, fs)
		}
		if raN > 0 {
			p.countFetch(tierRanged, raB, raN, fs)
		}
		if len(rest) == 0 {
			return release, nil
		}
	}

	sorted := append([]int(nil), rest...)
	sort.Slice(sorted, func(a, b int) bool { return jobs[sorted[a]].loc.Off < jobs[sorted[b]].loc.Off })
	last := jobs[sorted[len(sorted)-1]].loc
	maxEnd := last.Off + int64(last.EncLen)

	if mmapPackReads.Load() {
		if mb, ok := p.backend.(MappedBackend); ok {
			pm, merr := p.acquireMapping(mb, sh, obj, maxEnd)
			if merr == nil {
				data := pm.m.Bytes()
				var b int64
				for _, ji := range rest {
					loc := jobs[ji].loc
					jobs[ji].enc = data[loc.Off : loc.Off+int64(loc.EncLen)]
					b += int64(loc.EncLen)
				}
				p.countFetch(tierMmap, b, int64(len(rest)), fs)
				rels = append(rels, pm.release)
				return release, nil
			}
			if errors.Is(merr, os.ErrNotExist) {
				release()
				return nil, fmt.Errorf("%w: shard %s: %v", ErrStalePack, obj, merr)
			}
			// Any other mapping failure (platform stub, exotic filesystem)
			// falls back to the streamed path below.
		}
	}

	if pf == nil {
		if err := openPack(); err != nil {
			return nil, err
		}
	}

	var spans [][]byte
	rels = append(rels, func() {
		for _, b := range spans {
			ckptfmt.Shared.Put(b)
		}
	})
	for k := 0; k < len(sorted); {
		start := jobs[sorted[k]].loc.Off
		end := start + int64(jobs[sorted[k]].loc.EncLen)
		next := k + 1
		for next < len(sorted) {
			loc := jobs[sorted[next]].loc
			if loc.Off-end > maxCoalesceGap {
				break
			}
			if e := loc.Off + int64(loc.EncLen); e > end {
				end = e
			}
			next++
		}
		span := ckptfmt.Shared.Get(int(end - start))
		if _, err := pf.ReadAt(span, start); err != nil {
			release()
			return nil, fmt.Errorf("%w: shard %s: read span [%d,%d): %v", codec.ErrCorrupt, obj, start, end, err)
		}
		spans = append(spans, span)
		for ; k < next; k++ {
			loc := jobs[sorted[k]].loc
			jobs[sorted[k]].enc = span[loc.Off-start : loc.Off-start+int64(loc.EncLen)]
		}
	}
	var b int64
	for _, ji := range rest {
		b += int64(jobs[ji].loc.EncLen)
	}
	p.countFetch(tierRanged, b, int64(len(rest)), fs)
	return release, nil
}

// remoteSpanParallelism bounds the concurrent ranged GETs one shard fetch
// issues against a remote backend. Remote latency, not syscall count, is the
// cost model: a handful of in-flight range reads per shard hides round-trips
// without flooding the store (restores already parallelize across shards).
const remoteSpanParallelism = 8

// restoreInflightBudget bounds the staged span bytes one restore may hold in
// flight across all of its shards on the remote path. The budget is what
// keeps the pipelined producer/consumer honest: GET producers stall instead
// of piling staged spans faster than decode drains them, so a wide restore's
// peak memory stays bounded no matter how many shards race.
const restoreInflightBudget = 64 << 20

// byteBudget is a counting semaphore over bytes. A nil budget is unlimited.
type byteBudget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int64
	free int64
}

func newByteBudget(n int64) *byteBudget {
	b := &byteBudget{cap: n, free: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire blocks until n bytes are free and claims them, returning the
// claimed amount (n is clamped to the budget's capacity so one span larger
// than the whole budget cannot deadlock). Pass the return value to release.
func (b *byteBudget) acquire(n int64) int64 {
	if b == nil {
		return 0
	}
	if n > b.cap {
		n = b.cap
	}
	b.mu.Lock()
	for b.free < n {
		b.cond.Wait()
	}
	b.free -= n
	b.mu.Unlock()
	return n
}

// release returns bytes claimed by acquire.
func (b *byteBudget) release(n int64) {
	if b == nil || n == 0 {
		return
	}
	b.mu.Lock()
	b.free += n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// decodeJob decodes one fetched frame into its destination buffer and
// verifies it holds the content the directory asked for.
func (p *ChunkPool) decodeJob(j *chunkJob) error {
	frame, err := ckptfmt.ParseDecodeInto(j.enc, j.dst)
	if err != nil {
		return fmt.Errorf("store: shard %s frame at %d: %w", p.shardName(j.shard), j.loc.Off, err)
	}
	if frame.Hash != j.ref.Hash {
		return fmt.Errorf("%w: shard %s frame at %d holds %s, directory wants %s",
			codec.ErrCorrupt, p.shardName(j.shard), j.loc.Off, frame.Hash, j.ref.Hash)
	}
	return nil
}

// fetchShardRemote is fetchShard's strategy for TieredBackend pools: jobs
// are offset-sorted and coalesced into bounded-gap spans exactly like the
// streamed path, but the spans are read with up to remoteSpanParallelism
// concurrent ranged GETs, and each span's encoded frame bytes are attributed
// to the "cache-tier", "singleflight", and "remote" fetch tiers in
// proportion to how much of the span the backend served from its local
// cache, from another reader's shared in-flight fetch, or from the remote
// store.
//
// With pipelined fetch on (the default), each span's frames decode inline as
// soon as its GET lands — overlapping decode with the remaining in-flight
// GETs — the staging buffer returns to the arena immediately, and the jobs
// come back marked done so the caller's decode phase skips them. bdgt (one
// per restore, shared across its shards) bounds the staged bytes in flight.
// With pipelining off, every span barriers before decode, reproducing the
// pre-pipeline path for benchmarks.
//
// A missing pack object surfaces ErrStalePack; any other read failure
// propagates with its cause wrapped (%w), so typed remote errors — retry
// budgets exhausted, injected test faults — stay visible to errors.Is.
func (p *ChunkPool) fetchShardRemote(obj string, jobs []chunkJob, idxs []int, fs *FetchStats, bdgt *byteBudget) (release func(), err error) {
	pf, err := p.backend.Open(obj)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: shard %s: %v", ErrStalePack, obj, err)
		}
		return nil, fmt.Errorf("store: shard %s: open remote pack: %w", obj, err)
	}

	sorted := append([]int(nil), idxs...)
	sort.Slice(sorted, func(a, b int) bool { return jobs[sorted[a]].loc.Off < jobs[sorted[b]].loc.Off })

	type span struct {
		start, end int64
		members    []int // job indices, offset order
	}
	var spans []*span
	for k := 0; k < len(sorted); {
		sp := &span{start: jobs[sorted[k]].loc.Off}
		sp.end = sp.start + int64(jobs[sorted[k]].loc.EncLen)
		sp.members = append(sp.members, sorted[k])
		k++
		for k < len(sorted) {
			loc := jobs[sorted[k]].loc
			if loc.Off-sp.end > maxCoalesceGap {
				break
			}
			if e := loc.Off + int64(loc.EncLen); e > sp.end {
				sp.end = e
			}
			sp.members = append(sp.members, sorted[k])
			k++
		}
		spans = append(spans, sp)
	}

	pipelined := pipelinedRemoteFetch.Load()

	var mu sync.Mutex // guards bufs and firstErr across span workers
	var bufs [][]byte
	release = func() {
		mu.Lock()
		for _, b := range bufs {
			ckptfmt.Shared.Put(b)
		}
		bufs = nil
		mu.Unlock()
		pf.Close()
	}
	var firstErr error
	setErr := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, remoteSpanParallelism)
	for _, sp := range spans {
		wg.Add(1)
		sem <- struct{}{}
		go func(sp *span) {
			defer func() { <-sem; wg.Done() }()
			var granted int64
			if pipelined {
				granted = bdgt.acquire(sp.end - sp.start)
			}
			buf := ckptfmt.Shared.Get(int(sp.end - sp.start))
			putBack := func() {
				ckptfmt.Shared.Put(buf)
				bdgt.release(granted)
			}
			var cached, fetched, shared int64
			var n int
			var rerr error
			if tr, ok := pf.(TieredReader); ok {
				n, cached, fetched, shared, rerr = tr.ReadAtTier(buf, sp.start)
			} else {
				n, rerr = pf.ReadAt(buf, sp.start)
				fetched = int64(n)
			}
			if rerr == nil && n < len(buf) {
				rerr = io.ErrUnexpectedEOF
			}
			if rerr != nil {
				putBack()
				if errors.Is(rerr, os.ErrNotExist) {
					setErr(fmt.Errorf("%w: shard %s: %v", ErrStalePack, obj, rerr))
				} else {
					setErr(fmt.Errorf("store: shard %s: remote read span [%d,%d): %w", obj, sp.start, sp.end, rerr))
				}
				return
			}
			var encB int64
			for _, ji := range sp.members {
				loc := jobs[ji].loc
				jobs[ji].enc = buf[loc.Off-sp.start : loc.Off-sp.start+int64(loc.EncLen)]
				encB += int64(loc.EncLen)
			}
			// Attribute the span's encoded frame bytes (not the raw span
			// bytes, which include coalescing gaps) across the tiers in
			// proportion to where the backend got the span from, so per-tier
			// byte sums still reproduce the restore's encoded volume.
			frames := int64(len(sp.members))
			total := cached + fetched + shared
			if total <= 0 {
				p.countFetch(tierCacheTier, encB, frames, fs)
			} else {
				cb, cf := encB*cached/total, frames*cached/total
				sb, sf := encB*shared/total, frames*shared/total
				if cb > 0 || cf > 0 {
					p.countFetch(tierCacheTier, cb, cf, fs)
				}
				if sb > 0 || sf > 0 {
					p.countFetch(tierSingleflight, sb, sf, fs)
				}
				p.countFetch(tierRemote, encB-cb-sb, frames-cf-sf, fs)
			}
			if !pipelined {
				mu.Lock()
				bufs = append(bufs, buf)
				mu.Unlock()
				return
			}
			// Pipelined: decode this span's frames now, while other spans'
			// GETs are still in flight, then recycle the staging buffer
			// immediately instead of pinning it until the whole shard lands.
			for _, ji := range sp.members {
				if derr := p.decodeJob(&jobs[ji]); derr != nil {
					setErr(derr)
					break
				}
				jobs[ji].enc = nil
				jobs[ji].done = true
			}
			putBack()
		}(sp)
	}
	wg.Wait()
	if firstErr != nil {
		release()
		return nil, firstErr
	}
	return release, nil
}

// Scatter-read run bounds: a run of adjacent direct-read frames is read by
// one vectored pread, so its length is capped by IOV_MAX (three vector
// entries per frame) and the scratch it may burn on inter-frame gaps plus
// frame overhead is bounded separately. Payload per run is also capped:
// each run is checksummed right after its read, so a cache-sized batch
// keeps the verify pass streaming bytes the kernel copy just made hot.
const (
	maxScatterFrames  = iovMax / 3
	maxScatterScratch = 1 << 20
	maxScatterPayload = 2 << 20
)

// scatterOverhead returns the header+trailer byte count job ji's record
// carries around its payload if it is the plain raw frame its directory ref
// implies, or -1 when the record cannot have that shape (it is compressed,
// or not a section-buffer job) and must not be scatter-split.
func scatterOverhead(j *chunkJob) int {
	ov := int(j.loc.EncLen) - len(j.dst)
	// A canonical raw header is 1 style byte, two equal uvarints (at least
	// one byte each), and the 16-byte hash; plus the 4-byte trailer.
	if ov < 1+1+1+16+4 || ov > 1+2*binary.MaxVarintLen64+16+4 {
		return -1
	}
	return ov
}

// scatterRead batch-reads runs of adjacent direct-read frames with one
// vectored pread per run: each payload lands straight in its destination
// buffer while headers, trailers, and bounded inter-frame gaps land in a
// recycled scratch span, collapsing the per-frame ranged reads into a
// handful of syscalls. Each run is verified immediately after its read —
// the checksum streams bytes the kernel copy just made cache-hot — and
// verified jobs skip the decode phase's IO entirely. Purely best-effort:
// jobs whose records cannot be split raw-frame-shaped, whose read fails, or
// whose bytes turn out not to hold the assumed raw shape simply stay on
// their per-frame path (src is already set), which re-reads precisely and
// owns the error verdict.
func scatterRead(pf BackendReader, jobs []chunkJob, direct []int) {
	if !preadvSupported || len(direct) < 2 {
		return
	}
	fder, ok := pf.(interface{ Fd() uintptr })
	if !ok {
		return
	}
	sorted := append([]int(nil), direct...)
	sort.Slice(sorted, func(a, b int) bool { return jobs[sorted[a]].loc.Off < jobs[sorted[b]].loc.Off })
	for k := 0; k < len(sorted); {
		ov := scatterOverhead(&jobs[sorted[k]])
		if ov < 0 {
			k++
			continue
		}
		run := []int{sorted[k]}
		scratch := ov
		payload := len(jobs[sorted[k]].dst)
		pos := jobs[sorted[k]].loc.Off + int64(jobs[sorted[k]].loc.EncLen)
		next := k + 1
		for next < len(sorted) && len(run) < maxScatterFrames {
			j := &jobs[sorted[next]]
			gap := j.loc.Off - pos
			nov := scatterOverhead(j)
			if gap < 0 || gap > maxCoalesceGap || nov < 0 ||
				scratch+int(gap)+nov > maxScatterScratch ||
				payload+len(j.dst) > maxScatterPayload {
				break
			}
			run = append(run, sorted[next])
			scratch += int(gap) + nov
			payload += len(j.dst)
			pos = j.loc.Off + int64(j.loc.EncLen)
			next++
		}
		if len(run) >= 2 {
			scatterRun(fder.Fd(), jobs, run, scratch)
		}
		k = next
	}
}

// scatterRun issues the vectored read for one run of frames and verifies
// each frame in place while its bytes are hot, marking verified jobs done.
// On any failure the affected jobs are left for the per-frame path.
func scatterRun(fd uintptr, jobs []chunkJob, run []int, scratchLen int) {
	scratch := ckptfmt.Shared.Get(scratchLen)
	defer ckptfmt.Shared.Put(scratch)
	iovs := make([][]byte, 0, 3*len(run))
	hdrs := make([][]byte, len(run))
	tails := make([][]byte, len(run))
	sOff := 0
	pos := jobs[run[0]].loc.Off
	for k, ji := range run {
		j := &jobs[ji]
		gap := int(j.loc.Off - pos)
		hdrLen := int(j.loc.EncLen) - len(j.dst) - 4
		lead := scratch[sOff : sOff+gap+hdrLen]
		sOff += gap + hdrLen
		tail := scratch[sOff : sOff+4]
		sOff += 4
		iovs = append(iovs, lead, j.dst, tail)
		hdrs[k] = lead[gap:]
		tails[k] = tail
		pos = j.loc.Off + int64(j.loc.EncLen)
	}
	if err := preadvFull(fd, iovs, jobs[run[0]].loc.Off); err != nil {
		return
	}
	for k, ji := range run {
		if h, ok, err := ckptfmt.DecodeGatheredRaw(hdrs[k], jobs[ji].dst, tails[k]); ok && err == nil {
			jobs[ji].got = h
			jobs[ji].pre = true
		}
	}
}

// acquireMapping returns the shard's cached mapping of obj when it covers
// need bytes, or maps obj afresh (retiring any previous mapping). The
// returned packMap carries one reference owned by the caller; release it
// once all reads from the mapping are done.
func (p *ChunkPool) acquireMapping(mb MappedBackend, sh *poolShard, obj string, need int64) (*packMap, error) {
	sh.mu.Lock()
	if pm := sh.mapped; pm != nil && sh.mappedObj == obj && int64(len(pm.m.Bytes())) >= need {
		pm.acquireLocked()
		sh.mu.Unlock()
		return pm, nil
	}
	sh.mu.Unlock()

	m, err := mb.OpenMapped(obj)
	if err != nil {
		return nil, err
	}
	if int64(len(m.Bytes())) < need {
		// The object is shorter than a committed chunk record claims —
		// surface through the streamed path's canonical error.
		m.Close()
		return nil, fmt.Errorf("store: mapping of %s covers %d bytes, need %d", obj, len(m.Bytes()), need)
	}
	pm := &packMap{m: m, refs: 1}
	sh.mu.Lock()
	old := sh.mapped
	sh.mapped, sh.mappedObj = pm, obj
	sh.mu.Unlock()
	if old != nil {
		old.retire()
	}
	return pm, nil
}

// shardName returns shard si's base pack name (error messages).
func (p *ChunkPool) shardName(si int) string { return p.shardTab[si].name }

// ---------------------------------------------------------------------------
// Spool

// spool compresses each dirty shard's pack to its .gz sibling, shards in
// parallel, and persists coverage state; it returns the compressed total of
// the pool's current spool artifacts.
func (p *ChunkPool) spool() (int64, error) {
	if p.isReadOnly() {
		return 0, ErrReadOnly
	}
	p.spoolMu.Lock()
	defer p.spoolMu.Unlock()
	task := obs.BeginTask("spool")
	defer task.End()
	ttr := task.Trace()
	sizes := make([]int64, len(p.shardTab))
	errs := make([]error, len(p.shardTab))
	var wg sync.WaitGroup
	for i, sh := range p.shardTab {
		wg.Add(1)
		go func(i int, sh *poolShard) {
			defer wg.Done()
			t0 := ttr.Now()
			sizes[i], errs[i] = p.spoolShard(sh)
			ttr.Add(obs.Span{Name: "shard", Worker: i, StartNs: t0, DurNs: ttr.Now() - t0,
				Attrs: map[string]int64{"gz_bytes": sizes[i]}})
		}(i, sh)
	}
	wg.Wait()
	var total int64
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	for _, n := range sizes {
		total += n
	}
	if err := p.saveSpoolState(); err != nil {
		return 0, err
	}
	return total, nil
}

// spoolShard compresses one shard's active pack to its .gz sibling unless
// the pack has not grown since the last spool. It returns the compressed
// size of the shard's current spool artifact (0 for an empty shard).
func (p *ChunkPool) spoolShard(sh *poolShard) (int64, error) {
	sh.mu.Lock()
	obj := sh.obj()
	plen, slen, sgz := sh.packLen, sh.spooledLen, sh.spooledGz
	sh.mu.Unlock()
	if plen == 0 {
		return 0, nil
	}
	if plen == slen && sgz > 0 {
		if n, err := p.backend.Size(obj + ".gz"); err == nil && n == sgz {
			return sgz, nil // clean: spooled artifact still covers the pack
		}
	}
	pf, err := p.backend.Open(obj)
	if err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", obj, err)
	}
	defer pf.Close()
	// Stream pack → gzip → backend: a pack holds the pool's whole distinct
	// chunk volume, so buffering its compressed form in memory would cost
	// O(pack) heap per spool tick (worse at high fanout, where dirty shards
	// compress concurrently).
	out, err := p.backend.Create(obj + ".gz")
	if err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", obj, err)
	}
	cw := &countingWriter{w: out}
	zw := gzip.NewWriter(cw)
	if _, err := io.Copy(zw, io.NewSectionReader(pf, 0, plen)); err != nil {
		out.Abort() // keep the previous intact spool artifact, if any
		return 0, fmt.Errorf("store: spool shard %s: %w", obj, err)
	}
	if err := zw.Close(); err != nil {
		out.Abort()
		return 0, fmt.Errorf("store: spool shard %s: %w", obj, err)
	}
	if err := out.Close(); err != nil {
		return 0, fmt.Errorf("store: spool shard %s: %w", obj, err)
	}
	sh.mu.Lock()
	sh.spooledLen = plen
	sh.spooledGz = cw.n
	sh.mu.Unlock()
	return cw.n, nil
}

func (p *ChunkPool) spoolStatePath() string { return filepath.Join(p.ctlDir, spoolStateFile) }

// saveSpoolState persists per-shard spool coverage ("object spooledLen
// gzSize" lines) so incremental spooling survives reopen.
func (p *ChunkPool) saveSpoolState() error {
	var b strings.Builder
	for _, sh := range p.shardTab {
		sh.mu.Lock()
		if sh.spooledLen > 0 {
			fmt.Fprintf(&b, "%s %d %d\n", sh.obj(), sh.spooledLen, sh.spooledGz)
		}
		sh.mu.Unlock()
	}
	if err := writeFileAtomic(p.spoolStatePath(), []byte(b.String())); err != nil {
		return fmt.Errorf("store: save spool state: %w", err)
	}
	return nil
}

// loadSpoolState restores per-shard spool coverage at open. Stale or
// unparsable entries (including entries naming a compacted-away pack
// generation) are ignored: the worst case is one redundant recompression on
// the next spool.
func (p *ChunkPool) loadSpoolState() {
	raw, err := os.ReadFile(p.spoolStatePath())
	if err != nil {
		return
	}
	byObj := map[string]*poolShard{}
	for _, sh := range p.shardTab {
		byObj[sh.obj()] = sh
	}
	for _, ln := range strings.Split(string(raw), "\n") {
		var obj string
		var slen, sgz int64
		if _, err := fmt.Sscanf(ln, "%s %d %d", &obj, &slen, &sgz); err != nil {
			continue
		}
		if sh := byObj[obj]; sh != nil && slen <= sh.packLen {
			sh.mu.Lock()
			sh.spooledLen, sh.spooledGz = slen, sgz
			sh.mu.Unlock()
		}
	}
}

func (p *ChunkPool) isReadOnly() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readOnly
}

// ---------------------------------------------------------------------------
// Shared-pool persistence: marker, INDEX, leases, registry

// poolRegistry makes shared pools process-wide singletons: every store
// attaching to one resolved root shares the same shard table and locks, so
// concurrent sibling-run record and replay coordinate correctly.
var poolRegistry = struct {
	sync.Mutex
	m map[string]*ChunkPool
}{m: map[string]*ChunkPool{}}

// resolvePoolRoot canonicalizes a pool root for the registry key. The key
// must be identical before and after the root exists: a symlinked prefix
// (e.g. a linked workspace) resolved only once the directory appears would
// register two ChunkPool instances over the same files, and their
// independent packLen tracking would interleave corrupt offsets. So a
// nonexistent tail is resolved against its deepest existing ancestor.
func resolvePoolRoot(root string) (string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return "", fmt.Errorf("store: pool root: %w", err)
	}
	return resolveExistingPrefix(filepath.Clean(abs)), nil
}

// resolveExistingPrefix resolves symlinks in the longest existing prefix of
// p, rejoining the (not yet created) remainder verbatim.
func resolveExistingPrefix(p string) string {
	if resolved, err := filepath.EvalSymlinks(p); err == nil {
		return resolved
	}
	parent := filepath.Dir(p)
	if parent == p {
		return p
	}
	return filepath.Join(resolveExistingPrefix(parent), filepath.Base(p))
}

// poolMarker renders the pool marker file contents.
func poolMarker(fanout int) []byte {
	return []byte(fmt.Sprintf("pool1 shards=%d\n", fanout))
}

// parsePoolMarker decodes a POOL marker file. The grammar is exactly
// "pool1 shards=N" — trailing fields a future layout might add are
// refused, like unknown FORMAT markers: misreading an extended pool would
// end in a writable open truncating INDEX records it cannot decode.
func parsePoolMarker(raw []byte) (fanout int, err error) {
	marker := strings.TrimSpace(string(raw))
	fields := strings.Fields(marker)
	if len(fields) == 2 && fields[0] == "pool1" && strings.HasPrefix(fields[1], "shards=") {
		n, perr := strconv.Atoi(strings.TrimPrefix(fields[1], "shards="))
		if perr == nil && n >= 1 && n <= maxShardFanout && (n == 1 || n&(n-1) == 0) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("store: unknown pool marker %q (newer pool layout or corrupt POOL file)", marker)
}

// openSharedPool returns the process-wide pool for root, creating the pool
// directory (writable opens only) or replaying its INDEX on first use.
// fanout 0 adopts the existing pool's fanout (DefaultShardFanout for new
// pools); a conflicting non-zero fanout is refused. A writable open of a
// pool first opened read-only upgrades it in place.
func openSharedPool(root string, fanout int, readOnly bool) (*ChunkPool, error) {
	key, err := resolvePoolRoot(root)
	if err != nil {
		return nil, err
	}
	poolRegistry.Lock()
	defer poolRegistry.Unlock()
	if p, ok := poolRegistry.m[key]; ok {
		if fanout != 0 && fanout != p.fanout {
			return nil, fmt.Errorf("store: pool %s has fanout %d (fanout %d requested)", key, p.fanout, fanout)
		}
		if !readOnly {
			if err := p.upgradeWritable(); err != nil {
				return nil, err
			}
		}
		return p, nil
	}

	markerRaw, merr := os.ReadFile(filepath.Join(key, poolMarkerFile))
	switch {
	case merr == nil:
		got, perr := parsePoolMarker(markerRaw)
		if perr != nil {
			return nil, perr
		}
		if fanout != 0 && fanout != got {
			return nil, fmt.Errorf("store: pool %s has fanout %d (fanout %d requested)", key, got, fanout)
		}
		fanout = got
	case errors.Is(merr, os.ErrNotExist):
		if readOnly {
			return nil, fmt.Errorf("store: pool %s: no POOL marker (not a chunk pool)", key)
		}
		if fanout == 0 {
			fanout = DefaultShardFanout
		}
		if fanout > 1 && (fanout > maxShardFanout || fanout&(fanout-1) != 0) {
			return nil, fmt.Errorf("store: pool fanout %d: want a power of two in [1, %d]", fanout, maxShardFanout)
		}
		if err := os.MkdirAll(filepath.Join(key, poolLeaseDir), 0o755); err != nil {
			return nil, fmt.Errorf("store: create pool: %w", err)
		}
		if err := writeFileAtomic(filepath.Join(key, poolMarkerFile), poolMarker(fanout)); err != nil {
			return nil, fmt.Errorf("store: write pool marker: %w", err)
		}
	default:
		return nil, fmt.Errorf("store: read pool marker: %w", merr)
	}

	p := &ChunkPool{root: key, ctlDir: key, shared: true, fanout: fanout, readOnly: readOnly}
	p.initShards()
	// One backend for the pool's whole lifetime: a read-only→writable
	// upgrade must not swap the field under concurrent readers (fetchShard
	// and spool read it without locks). The root exists — the marker was
	// just read or written — so the plain DirBackend needs no MkdirAll.
	p.backend = &DirBackend{roots: []string{key}}
	if err := p.replayIndex(); err != nil {
		return nil, err
	}
	if err := p.finishOpen(); err != nil {
		return nil, err
	}
	p.loadSpoolState()
	poolRegistry.m[key] = p
	return p, nil
}

// upgradeWritable flips a read-only pool instance writable. The instance's
// in-memory state may be stale: a sequential writer in another process (the
// documented non-concurrent cross-process pattern) can have appended
// committed INDEX records and pack bytes since our read-only replay. The
// upgrade adopts those records (truncating only a genuinely undecodable
// tail — blindly truncating to the old validated length would destroy the
// other writer's commits) and resyncs every shard's pack length, without
// which our next append would commit offsets short of the packs' real
// ends. The backend is shared as-is (see openSharedPool). Caller holds the
// registry lock.
func (p *ChunkPool) upgradeWritable() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.readOnly {
		return nil
	}
	raw, err := os.ReadFile(p.indexPath())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: read pool index: %w", err)
	}
	off := int(p.indexLen)
	if off > len(raw) {
		off = len(raw)
	}
	for off < len(raw) {
		payload, consumed, uerr := codec.Unframe(raw[off:])
		if uerr != nil || len(payload) == 0 || payload[0] != recChunk {
			break
		}
		hash, loc, derr := decodeChunkRecord(payload[1:])
		if derr != nil {
			break
		}
		sh := p.shardTab[p.shardOf(hash)]
		sh.mu.Lock()
		if loc.Gen > sh.gen {
			sh.gen = loc.Gen
		}
		if _, dup := sh.chunks[hash]; !dup {
			sh.chunks[hash] = loc
			p.stored.Chunks++
			p.stored.StoredRawBytes += int64(loc.RawLen)
			p.stored.StoredEncBytes += int64(loc.EncLen)
		}
		sh.mu.Unlock()
		off += consumed
	}
	p.indexLen = int64(off)
	if int64(len(raw)) > p.indexLen {
		if err := os.Truncate(p.indexPath(), p.indexLen); err != nil {
			return fmt.Errorf("store: truncate torn pool index: %w", err)
		}
	}
	for _, sh := range p.shardTab {
		sh.mu.Lock()
		if n, serr := p.backend.Size(sh.obj()); serr == nil && n > sh.packLen {
			sh.packLen = n
		}
		sh.mu.Unlock()
	}
	p.readOnly = false
	return nil
}

// resetPoolRegistry drops all registered pools (tests only: simulated
// crashes reopen pools from disk).
func resetPoolRegistry() {
	poolRegistry.Lock()
	defer poolRegistry.Unlock()
	poolRegistry.m = map[string]*ChunkPool{}
}

func (p *ChunkPool) indexPath() string { return filepath.Join(p.root, poolIndexFile) }

// replayIndex rebuilds the dedup index from the pool's INDEX log. Torn
// tails are truncated (writable) or skipped (read-only).
func (p *ChunkPool) replayIndex() error {
	raw, err := os.ReadFile(p.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read pool index: %w", err)
	}
	off := 0
	validated := 0
	for off < len(raw) {
		payload, consumed, err := codec.Unframe(raw[off:])
		if err != nil {
			break // torn tail
		}
		if len(payload) == 0 || payload[0] != recChunk {
			break
		}
		hash, loc, derr := decodeChunkRecord(payload[1:])
		if derr != nil {
			break
		}
		p.adopt(hash, loc)
		off += consumed
		validated = off
	}
	p.indexLen = int64(validated)
	if validated < len(raw) && !p.readOnly {
		if err := os.Truncate(p.indexPath(), int64(validated)); err != nil {
			return fmt.Errorf("store: truncate torn pool index: %w", err)
		}
	}
	return nil
}

// appendIndexRecords durably appends chunk records for freshly stored
// frames to the pool INDEX.
func (p *ChunkPool) appendIndexRecords(frames []ckptfmt.Frame, locs []chunkLoc) error {
	var record []byte
	for i := range frames {
		record = append(record, frameTagged(recChunk, encodeChunkRecord(frames[i].Hash, locs[i]))...)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := os.OpenFile(p.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open pool index: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(record); err != nil {
		return fmt.Errorf("store: append pool index: %w", err)
	}
	p.indexLen += int64(len(record))
	return nil
}

// persistIndex atomically rewrites the INDEX from the given records — the
// commit point of shared-pool compaction.
func (p *ChunkPool) persistIndex(recs []poolChunkRec) error {
	var buf []byte
	for _, cr := range recs {
		buf = append(buf, frameTagged(recChunk, encodeChunkRecord(cr.hash, cr.loc))...)
	}
	if err := writeFileAtomic(p.indexPath(), buf); err != nil {
		return fmt.Errorf("store: rewrite pool index: %w", err)
	}
	p.mu.Lock()
	p.indexLen = int64(len(buf))
	p.mu.Unlock()
	return nil
}

// leaseEntry derives the path a lease stores for a run directory:
// pool-root-relative whenever one exists, mirroring the run manifest's
// run-dir-relative pool reference, so a project tree (runs + POOL) that
// relocates as a unit keeps its leases valid — GC after a `mv` must not
// mistake every run for deleted and reclaim the family's chunks.
func leaseEntry(poolRoot, runDir string) (string, error) {
	abs, err := filepath.Abs(runDir)
	if err != nil {
		return "", fmt.Errorf("store: lease: %w", err)
	}
	if resolved, rerr := filepath.EvalSymlinks(abs); rerr == nil {
		abs = resolved
	}
	if rel, rerr := filepath.Rel(poolRoot, abs); rerr == nil {
		return rel, nil
	}
	return abs, nil
}

// leaseNameRune sanitizes one rune for a lease file name.
func leaseNameRune(r rune) rune {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		return r
	default:
		return '-'
	}
}

// leaseFileName derives a stable lease file name from a lease entry.
func leaseFileName(entry string) string {
	h := fnv.New32a()
	h.Write([]byte(entry))
	return fmt.Sprintf("%08x-%s", h.Sum32(), strings.Map(leaseNameRune, filepath.Base(entry)))
}

// leaseCandidates returns the file paths a lease entry may occupy, in
// probe order: the short-hash name, then a long-hash fallback used only
// when two distinct entries collide under the short hash. A lease file is
// authoritative for an entry only if its CONTENT matches — an
// existence-only check would merge two colliding runs' refcounts, and
// deleting one would unpin the other's chunks.
func leaseCandidates(poolRoot, entry string) [2]string {
	dir := filepath.Join(poolRoot, poolLeaseDir)
	h64 := fnv.New64a()
	h64.Write([]byte(entry))
	base := filepath.Base(entry)
	return [2]string{
		filepath.Join(dir, leaseFileName(entry)),
		filepath.Join(dir, fmt.Sprintf("%016x-%s", h64.Sum64(), strings.Map(leaseNameRune, base))),
	}
}

// findLease locates the lease file whose content is exactly entry; ok is
// false when none exists.
func findLease(poolRoot, entry string) (path string, ok bool) {
	for _, cand := range leaseCandidates(poolRoot, entry) {
		raw, err := os.ReadFile(cand)
		if err == nil && strings.TrimSpace(string(raw)) == entry {
			return cand, true
		}
	}
	return "", false
}

// writeLease records a run's attachment to the pool (idempotent): the lease
// is the run's refcount — pool GC treats every chunk referenced by a leased
// run's segments as live.
func (p *ChunkPool) writeLease(runDir string) error {
	entry, err := leaseEntry(p.root, runDir)
	if err != nil {
		return err
	}
	if _, ok := findLease(p.root, entry); ok {
		return nil
	}
	cands := leaseCandidates(p.root, entry)
	path := cands[0]
	if raw, err := os.ReadFile(path); err == nil && strings.TrimSpace(string(raw)) != entry {
		path = cands[1] // short-hash collision with a different run
		if raw, err := os.ReadFile(path); err == nil && strings.TrimSpace(string(raw)) != entry {
			return fmt.Errorf("store: lease name collision for %q (both candidates taken)", entry)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: lease: %w", err)
	}
	if err := writeFileAtomic(path, []byte(entry+"\n")); err != nil {
		return fmt.Errorf("store: write lease: %w", err)
	}
	return nil
}

// removeLease releases a run's attachment; missing leases are not an error.
func (p *ChunkPool) removeLease(runDir string) error {
	entry, err := leaseEntry(p.root, runDir)
	if err != nil {
		return err
	}
	path, ok := findLease(p.root, entry)
	if !ok {
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: remove lease: %w", err)
	}
	return nil
}

// leases returns the run directories currently attached to the pool
// (relative entries resolved against the pool root). Like the GC mark it
// feeds, it fails closed: an unreadable lease would silently unpin a live
// run's chunks, so only a lease deleted mid-scan (a concurrent DeleteRun)
// is skipped.
func (p *ChunkPool) leases() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(p.root, poolLeaseDir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read leases: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(p.root, poolLeaseDir, e.Name()))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("store: read lease %s: %w", e.Name(), err)
		}
		dir := strings.TrimSpace(string(raw))
		if dir == "" {
			continue
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(p.root, dir)
		}
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ---------------------------------------------------------------------------
// GC: mark, compact, grace-period pack retirement

// GCOptions configures a chunk-reclaiming GC pass.
type GCOptions struct {
	// SkipChunks limits GC to superseded segment files (the pre-pool
	// behavior): packs are left untouched.
	SkipChunks bool
	// PackRetention overrides how long replaced pack generations stay on
	// disk for concurrent readers (DefaultPackRetention when zero). A later
	// GC pass deletes generations whose retention expired. Size it above
	// the longest-lived reader of the store: a reader resolves chunk
	// locations when it opens (or re-opens) the store, so a serving daemon
	// whose open-store cache can hold a run longer than the retention must
	// either use a larger retention or bound its cache residency —
	// locations resolved before a compaction are only guaranteed readable
	// within the grace period.
	PackRetention time.Duration
}

func (o GCOptions) retention() time.Duration {
	if o.PackRetention > 0 {
		return o.PackRetention
	}
	return DefaultPackRetention
}

// GCResult reports what a GC pass reclaimed.
type GCResult struct {
	// Segments is the number of superseded segment files removed.
	Segments int
	// DeadChunks is the number of superseded chunks compacted away.
	DeadChunks int
	// ReclaimedBytes is the encoded pack volume those chunks occupied; the
	// bytes return to the filesystem when the retired generations expire.
	ReclaimedBytes int64
	// CompactedShards counts shards rewritten to a new pack generation.
	CompactedShards int
	// RetiredPacks counts pack generations newly scheduled for deletion.
	RetiredPacks int
	// DeletedPacks counts retired generations whose grace period expired
	// and which were deleted by this pass.
	DeletedPacks int
}

// poolChunkRec is one (hash, location) pair handed to a persist callback.
type poolChunkRec struct {
	hash ckptfmt.Hash
	loc  chunkLoc
}

func (p *ChunkPool) packGCPath() string { return filepath.Join(p.ctlDir, packGCFile) }

// readPackGC loads the retired-pack schedule: object name → deletion
// deadline (unix nanoseconds).
func (p *ChunkPool) readPackGC() map[string]int64 {
	out := map[string]int64{}
	raw, err := os.ReadFile(p.packGCPath())
	if err != nil {
		return out
	}
	for _, ln := range strings.Split(string(raw), "\n") {
		var name string
		var ddl int64
		if _, err := fmt.Sscanf(ln, "%s %d", &name, &ddl); err == nil {
			out[name] = ddl
		}
	}
	return out
}

func (p *ChunkPool) writePackGC(sched map[string]int64) error {
	names := make([]string, 0, len(sched))
	for n := range sched {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, sched[n])
	}
	if err := writeFileAtomic(p.packGCPath(), []byte(b.String())); err != nil {
		return fmt.Errorf("store: save pack retirement state: %w", err)
	}
	return nil
}

// gc is the chunk-reclaiming GC pass shared by private stores (Store.GCWith)
// and shared pools (GCPool). mark builds the live set — every chunk hash
// still referenced by a live checkpoint — and MUST scan durable state
// (segment files): it runs after gc has fenced off the chunk write path, so
// any checkpoint that deduplicated against an indexed chunk has its segment
// on disk by the time mark looks. persist atomically commits the
// post-compaction chunk records (the run MANIFEST for private pools, the
// pool INDEX for shared ones). gc excludes writers (gcMu) and spooling for
// its whole duration.
func (p *ChunkPool) gc(mark func() (map[ckptfmt.Hash]bool, error), o GCOptions, persist func([]poolChunkRec) error) (GCResult, error) {
	var res GCResult
	if p.isReadOnly() {
		return res, ErrReadOnly
	}
	p.gcMu.Lock()
	defer p.gcMu.Unlock()
	p.spoolMu.Lock()
	defer p.spoolMu.Unlock()

	// The pass runs outside any query, so it records itself as a background
	// task: each phase becomes a span, served at /v1/debug/tasks.
	task := obs.BeginTask("gc")
	defer task.End()
	ttr := task.Trace()
	phaseStart := ttr.Now()
	phase := func(name string, attrs map[string]int64) {
		now := ttr.Now()
		ttr.Add(obs.Span{Name: name, StartNs: phaseStart, DurNs: now - phaseStart, Attrs: attrs})
		phaseStart = now
	}

	// Mark inside the fence: a put's filter→segment→commit span holds the
	// read side, so marking before the lock could miss a checkpoint that
	// deduplicated against a chunk this pass is about to drop.
	liveSet, err := mark()
	if err != nil {
		return res, err
	}
	live := func(h ckptfmt.Hash) bool { return liveSet[h] }
	phase("mark", map[string]int64{"live_chunks": int64(len(liveSet))})

	now := time.Now()
	sched := p.readPackGC()

	// Phase 1: delete retired generations whose grace period expired, and
	// adopt any stray superseded generations a crashed pass leaked (every
	// generation below a shard's active one is by construction replaced).
	// A scheduled object that is once again some shard's ACTIVE object is
	// never deleted: a shard compacted down to zero chunks persists no
	// generation records, so a reopen resets it to generation 0 and resumes
	// appending to the very object an earlier pass retired. The stale
	// schedule entry is kept — it becomes deletable again only after a
	// future compaction moves the shard past the object.
	active := make(map[string]bool, len(p.shardTab))
	for _, sh := range p.shardTab {
		sh.mu.Lock()
		active[sh.obj()] = true
		sh.mu.Unlock()
	}
	for name, ddl := range sched {
		if active[name] || now.UnixNano() < ddl {
			continue
		}
		if err := p.backend.Remove(name); err != nil {
			return res, fmt.Errorf("store: gc: remove retired pack %s: %w", name, err)
		}
		// The spool sibling must go too before the schedule entry is
		// dropped, or a failed removal would leak the artifact with nothing
		// left to retry it. (A re-run tolerates the already-deleted pack:
		// Remove on an absent object is not an error.)
		if err := p.backend.Remove(name + ".gz"); err != nil {
			return res, fmt.Errorf("store: gc: remove retired spool %s.gz: %w", name, err)
		}
		delete(sched, name)
		res.DeletedPacks++
	}
	for _, sh := range p.shardTab {
		for g := 0; g < sh.gen; g++ {
			obj := packObjName(sh.name, g)
			if _, scheduled := sched[obj]; scheduled {
				continue
			}
			if n, err := p.backend.Size(obj); err == nil && n > 0 {
				sched[obj] = now.Add(o.retention()).UnixNano()
				res.RetiredPacks++
			}
		}
	}
	phase("tombstone", map[string]int64{"deleted_packs": int64(res.DeletedPacks), "retired_packs": int64(res.RetiredPacks)})

	// Phase 2: sweep each shard's index against the live set.
	type plan struct {
		sh        *poolShard
		dead      []ckptfmt.Hash
		deadBytes int64
	}
	var plans []*plan
	for _, sh := range p.shardTab {
		sh.mu.Lock()
		pl := &plan{sh: sh}
		for h, loc := range sh.chunks {
			if !live(h) {
				pl.dead = append(pl.dead, h)
				pl.deadBytes += int64(loc.EncLen)
			}
		}
		sh.mu.Unlock()
		if len(pl.dead) > 0 {
			plans = append(plans, pl)
		}
	}
	phase("sweep", map[string]int64{"dirty_shards": int64(len(plans))})
	if len(plans) == 0 || o.SkipChunks {
		if err := p.writePackGC(sched); err != nil {
			return res, err
		}
		return res, nil
	}

	// Phase 3: rewrite each affected shard's survivors into the next pack
	// generation. No in-memory state changes yet — readers keep resolving
	// against the current generation, whose object is never mutated.
	type swap struct {
		sh      *poolShard
		newGen  int
		newLen  int64
		newMap  map[ckptfmt.Hash]chunkLoc
		oldObj  string
		removed int
		bytes   int64
	}
	var swaps []*swap
	for _, pl := range plans {
		sh := pl.sh
		deadSet := make(map[ckptfmt.Hash]bool, len(pl.dead))
		for _, h := range pl.dead {
			deadSet[h] = true
		}
		type survivor struct {
			h   ckptfmt.Hash
			loc chunkLoc
		}
		var keep []survivor
		sh.mu.Lock()
		for h, loc := range sh.chunks {
			if !deadSet[h] {
				keep = append(keep, survivor{h, loc})
			}
		}
		oldObj, oldGen := sh.obj(), sh.gen
		sh.mu.Unlock()
		sort.Slice(keep, func(i, j int) bool { return keep[i].loc.Off < keep[j].loc.Off })

		newGen := oldGen + 1
		newMap := make(map[ckptfmt.Hash]chunkLoc, len(keep))
		var newLen int64
		if len(keep) > 0 {
			src, err := p.backend.Open(oldObj)
			if err != nil {
				return res, fmt.Errorf("store: gc: open pack %s: %w", oldObj, err)
			}
			dst, err := p.backend.Create(packObjName(sh.name, newGen))
			if err != nil {
				src.Close()
				return res, fmt.Errorf("store: gc: create pack %s: %w", packObjName(sh.name, newGen), err)
			}
			fail := func(err error) (GCResult, error) {
				dst.Abort()
				src.Close()
				return res, err
			}
			for _, sv := range keep {
				buf := make([]byte, sv.loc.EncLen)
				if _, err := src.ReadAt(buf, sv.loc.Off); err != nil {
					return fail(fmt.Errorf("store: gc: read pack %s at %d: %w", oldObj, sv.loc.Off, err))
				}
				if _, err := dst.Write(buf); err != nil {
					return fail(fmt.Errorf("store: gc: write pack %s: %w", packObjName(sh.name, newGen), err))
				}
				newMap[sv.h] = chunkLoc{Gen: newGen, Off: newLen, EncLen: sv.loc.EncLen, RawLen: sv.loc.RawLen, Style: sv.loc.Style}
				newLen += int64(sv.loc.EncLen)
			}
			src.Close()
			if err := dst.Close(); err != nil {
				return res, fmt.Errorf("store: gc: commit pack %s: %w", packObjName(sh.name, newGen), err)
			}
		}
		swaps = append(swaps, &swap{sh: sh, newGen: newGen, newLen: newLen, newMap: newMap,
			oldObj: oldObj, removed: len(pl.dead), bytes: pl.deadBytes})
	}
	phase("rewrite", map[string]int64{"rewritten_shards": int64(len(swaps))})

	// Phase 4: commit — atomically rewrite the chunk records. Until this
	// succeeds, disk and memory both still describe the old generations.
	var recs []poolChunkRec
	for _, sh := range p.shardTab {
		var sw *swap
		for _, c := range swaps {
			if c.sh == sh {
				sw = c
				break
			}
		}
		if sw != nil {
			for h, loc := range sw.newMap {
				recs = append(recs, poolChunkRec{h, loc})
			}
			continue
		}
		sh.mu.Lock()
		for h, loc := range sh.chunks {
			recs = append(recs, poolChunkRec{h, loc})
		}
		sh.mu.Unlock()
	}
	// Deterministic record order keeps rewritten manifests reproducible.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].loc.Gen != recs[j].loc.Gen {
			return recs[i].loc.Gen < recs[j].loc.Gen
		}
		if recs[i].loc.Off != recs[j].loc.Off {
			return recs[i].loc.Off < recs[j].loc.Off
		}
		return bytes.Compare(recs[i].hash[:], recs[j].hash[:]) < 0
	})
	if err := persist(recs); err != nil {
		return res, err
	}
	phase("persist", map[string]int64{"records": int64(len(recs))})

	// Phase 5: swap in-memory state and retire the replaced objects.
	for _, sw := range swaps {
		sh := sw.sh
		sh.mu.Lock()
		sh.gen = sw.newGen
		sh.chunks = sw.newMap
		sh.packLen = sw.newLen
		sh.spooledLen, sh.spooledGz = 0, 0
		oldMap := sh.mapped
		sh.mapped, sh.mappedObj = nil, ""
		sh.mu.Unlock()
		if oldMap != nil {
			oldMap.retire() // unmaps once in-flight fetches release
		}
		sched[sw.oldObj] = now.Add(o.retention()).UnixNano()
		res.CompactedShards++
		res.RetiredPacks++
		res.DeadChunks += sw.removed
		res.ReclaimedBytes += sw.bytes
	}
	// Rebuild the stored-chunk accounting from the surviving index.
	var liveChunks, liveRaw, liveEnc int64
	for _, sh := range p.shardTab {
		sh.mu.Lock()
		for _, loc := range sh.chunks {
			liveChunks++
			liveRaw += int64(loc.RawLen)
			liveEnc += int64(loc.EncLen)
		}
		sh.mu.Unlock()
	}
	p.mu.Lock()
	p.stored.Chunks, p.stored.StoredRawBytes, p.stored.StoredEncBytes = liveChunks, liveRaw, liveEnc
	p.mu.Unlock()
	if err := p.writePackGC(sched); err != nil {
		return res, err
	}
	phase("swap", map[string]int64{"dead_chunks": int64(res.DeadChunks), "reclaimed_bytes": res.ReclaimedBytes})
	return res, nil
}

// GCPool runs a refcounted GC pass over a shared pool: every chunk
// referenced by a segment of any leased run is live; everything else is
// compacted away, with replaced pack generations retained for the grace
// period (see GCOptions.PackRetention). Leases whose run directory no
// longer exists are released — deleting a run's directory and lease (see
// DeleteRun) is how its chunks' refcounts drop.
func GCPool(root string, o GCOptions) (GCResult, error) {
	// GC must never mint a pool: a writable open of a nonexistent root
	// would create an empty pool tree, turning a typo'd path into a silent
	// no-op instead of the error it is.
	key, err := resolvePoolRoot(root)
	if err != nil {
		return GCResult{}, err
	}
	if _, err := os.Stat(filepath.Join(key, poolMarkerFile)); err != nil {
		return GCResult{}, fmt.Errorf("store: pool gc: %s is not a chunk pool: %w", key, err)
	}
	p, err := openSharedPool(root, 0, false)
	if err != nil {
		return GCResult{}, err
	}
	mark := func() (map[ckptfmt.Hash]bool, error) {
		live := map[ckptfmt.Hash]bool{}
		leases, err := p.leases()
		if err != nil {
			return nil, err
		}
		for _, runDir := range leases {
			if _, serr := os.Stat(runDir); errors.Is(serr, os.ErrNotExist) {
				// The run is gone; its lease no longer pins any chunks.
				if err := p.removeLease(runDir); err != nil {
					return nil, err
				}
				continue
			}
			if err := collectLiveChunks(runDir, live); err != nil {
				return nil, fmt.Errorf("store: pool gc: %s: %w", runDir, err)
			}
		}
		obs.C(obs.MStoreGCMarkedChunks).Add(int64(len(live)))
		return live, nil
	}
	res, err := p.gc(mark, o, p.persistIndex)
	if err == nil {
		recordGCMetrics(res)
	}
	return res, err
}

// collectLiveChunks accumulates every chunk hash referenced by the run
// directory's segment files. Segments are written before their chunks are
// appended, so a checkpoint mid-materialization already pins its chunks.
//
// The mark is the sole safety input to an irreversible compaction, so any
// failure to read or decode a segment fails the whole GC pass (retry
// later) rather than silently treating the segment as referencing nothing
// — the one exception being a segment deleted between listing and read,
// which is a completed segment GC, not a lost reference.
func collectLiveChunks(runDir string, live map[ckptfmt.Hash]bool) error {
	entries, err := os.ReadDir(runDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(runDir, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("gc mark: read segment %s: %w", name, err)
		}
		payload, _, err := codec.Unframe(raw)
		if err != nil {
			return fmt.Errorf("gc mark: segment %s: %w", name, err)
		}
		dir, err := ckptfmt.DecodeDirectory(payload)
		if err != nil {
			return fmt.Errorf("gc mark: segment %s directory: %w", name, err)
		}
		for _, sec := range dir.Sections {
			for _, ref := range sec.Chunks {
				live[ref.Hash] = true
			}
		}
	}
	return nil
}

// PoolStatsAt reports a shared pool's storage accounting if the pool is
// open in this process (serving stats; no disk replay is triggered).
func PoolStatsAt(root string) (PoolStats, bool) {
	key, err := resolvePoolRoot(root)
	if err != nil {
		return PoolStats{}, false
	}
	poolRegistry.Lock()
	p := poolRegistry.m[key]
	poolRegistry.Unlock()
	if p == nil {
		return PoolStats{}, false
	}
	return p.Stats(), true
}

// DeleteRun deletes a recorded run directory, then releases its pool lease
// when the run is attached to a shared pool — the "refcount decrement" that
// lets a later GCPool pass reclaim the chunks only this run referenced. The
// directory goes first: a crash in between leaves a stale lease pointing at
// a missing run (harmless; the next GC releases it), whereas the reverse
// order would leave a live run unpinned. The lease file is removed
// directly, without opening the pool: a writable pool open would resurrect
// an already-deleted pool directory and needlessly upgrade a read-only
// in-process pool instance.
func DeleteRun(dir string) error {
	root, pooled, perr := PoolRef(dir)
	var lease string
	if perr == nil && pooled {
		// Locate the lease before the directory goes away: the entry is
		// derived from the (still existing) run path.
		entry, err := leaseEntry(root, dir)
		if err != nil {
			return err
		}
		lease, _ = findLease(root, entry)
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if lease != "" {
		if err := os.Remove(lease); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: remove lease: %w", err)
		}
	}
	return nil
}
