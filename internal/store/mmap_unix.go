//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMapped implements MappedBackend: a read-only MAP_SHARED mapping of the
// object's file at its current size. Open errors are returned unwrapped so
// callers can distinguish a missing pack (errors.Is os.ErrNotExist — the
// generation was retired) from an IO failure.
func (b *DirBackend) OpenMapped(name string) (*Mapping, error) {
	f, err := os.Open(b.path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat %s: %w", name, err)
	}
	if st.Size() == 0 {
		return &Mapping{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", name, err)
	}
	return &Mapping{data: data, unmap: syscall.Munmap}, nil
}
