package faultbackend_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/faultbackend"
	"flor.dev/flor/internal/store/remote"
)

// faultPayload is a deterministic compressible-ish payload for battery runs.
func faultPayload(n int, seed uint64) []byte {
	p := make([]byte, n)
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range p {
		if i%5 == 0 {
			x = x*6364136223846793005 + 1442695040888963407
			p[i] = byte(x >> 56)
		}
	}
	return p
}

// TestFaultScheduleDeterministic pins the harness's own contract: the same
// seed and config produce the same fault schedule, faults are typed, and
// Injected counts them.
func TestFaultScheduleDeterministic(t *testing.T) {
	schedule := func(seed int64) []int {
		mem := remote.NewMemStore()
		if err := mem.Put("k", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		fb := faultbackend.WrapObject(mem, faultbackend.Config{Seed: seed, ReadErrNth: 3})
		var failed []int
		for i := 0; i < 12; i++ {
			if _, err := fb.Get("k"); err != nil {
				if !errors.Is(err, faultbackend.ErrInjected) {
					t.Fatalf("read %d: %v, want ErrInjected", i, err)
				}
				failed = append(failed, i)
			}
		}
		if int(fb.Injected()) != len(failed) {
			t.Fatalf("Injected() = %d, want %d", fb.Injected(), len(failed))
		}
		return failed
	}
	a, b := schedule(42), schedule(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("ReadErrNth=3 over 12 reads fired %d faults, want 4", len(a))
	}
	if fmt.Sprint(schedule(43)) == fmt.Sprint(a) && fmt.Sprint(schedule(44)) == fmt.Sprint(a) {
		t.Fatal("seed does not shift the fault phase")
	}
}

// TestFaultShortReadAndTornPut pins the two corruption-shaped classes:
// short reads return fewer bytes without error, torn puts persist a prefix
// and report failure.
func TestFaultShortReadAndTornPut(t *testing.T) {
	mem := remote.NewMemStore()
	full := []byte("0123456789abcdef")
	if err := mem.Put("k", full); err != nil {
		t.Fatal(err)
	}
	fb := faultbackend.WrapObject(mem, faultbackend.Config{Seed: 1, ShortReadNth: 1})
	got, err := fb.GetRange("k", 0, int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(full) || !bytes.Equal(got, full[:len(got)]) {
		t.Fatalf("short read returned %d bytes (%q), want a strict prefix", len(got), got)
	}

	fb = faultbackend.WrapObject(mem, faultbackend.Config{Seed: 1, TornPutNth: 1})
	if err := fb.Put("t", full); !errors.Is(err, faultbackend.ErrInjected) {
		t.Fatalf("torn put: %v, want ErrInjected", err)
	}
	// The tear is observable in the raw store (a prefix landed)...
	torn, err := mem.Get("t")
	if err != nil || len(torn) == 0 || len(torn) >= len(full) || !bytes.Equal(torn, full[:len(torn)]) {
		t.Fatalf("torn object = %d bytes, err=%v; want a non-empty strict prefix", len(torn), err)
	}
	// ...and a retried put replaces it wholesale (atomic PUT semantics).
	fb = faultbackend.WrapObject(mem, faultbackend.Config{})
	if err := fb.Put("t", full); err != nil {
		t.Fatal(err)
	}
	if got, _ := mem.Get("t"); !bytes.Equal(got, full) {
		t.Fatal("retried put did not converge")
	}
}

// TestFaultMatrixRemoteRestore is the battery's centerpiece: a checkpoint
// store written and restored over a faulty object store, per fault class and
// seed. With retries in the stack every run must end byte-identical; with
// retries exhausted it must fail typed, never return corrupt sections.
func TestFaultMatrixRemoteRestore(t *testing.T) {
	classes := []struct {
		name string
		cfg  faultbackend.Config
	}{
		{"read-errors", faultbackend.Config{ReadErrNth: 3}},
		{"short-reads", faultbackend.Config{ShortReadNth: 2}},
		{"latency", faultbackend.Config{LatencyNth: 4, Latency: 2 * time.Millisecond}},
		{"torn-puts", faultbackend.Config{TornPutNth: 2}},
		{"everything", faultbackend.Config{ReadErrNth: 5, ShortReadNth: 7, LatencyNth: 6, Latency: time.Millisecond, TornPutNth: 3}},
	}
	policy := remote.Policy{Attempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Timeout: 5 * time.Second}
	for _, cl := range classes {
		for _, seed := range []int64{1, 2, 3} {
			cl, seed := cl, seed
			t.Run(fmt.Sprintf("%s/seed%d", cl.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := cl.cfg
				cfg.Seed = seed
				mem := remote.NewMemStore()
				fb := faultbackend.WrapObject(mem, cfg)
				cache, err := cachetier.NewWithBlockSize("", 4<<20, 8<<10)
				if err != nil {
					t.Fatal(err)
				}
				backend := remote.NewObjectBackend(remote.Retry(fb, policy), "packs", cache)
				dir := t.TempDir()
				s, err := store.OpenWith(dir, store.Options{Backend: backend, ShardFanout: 2})
				if err != nil {
					t.Fatal(err)
				}
				want := map[int][]byte{}
				for i := 0; i < 4; i++ {
					data := faultPayload(48<<10, uint64(seed)*10+uint64(i))
					want[i] = data
					key := store.Key{LoopID: "train", Exec: i}
					if _, err := s.PutSections(key, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
						t.Fatalf("put %d through faults: %v", i, err)
					}
				}
				ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				for i, data := range want {
					secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
					if err != nil || !ok {
						t.Fatalf("restore %d through faults: ok=%v err=%v", i, ok, err)
					}
					if !bytes.Equal(secs[0].Data, data) {
						t.Fatalf("restore %d: bytes differ after retried faults", i)
					}
				}
				if fb.Injected() == 0 {
					t.Fatal("battery ran but no faults fired")
				}
			})
		}
	}
}

// TestFaultMatrixExhaustion pins the failure half of the contract: when
// every read faults and retries run out, restore fails with the typed
// exhaustion error — it does not hang and it does not hand back partial or
// corrupt sections.
func TestFaultMatrixExhaustion(t *testing.T) {
	mem := remote.NewMemStore()
	policy := remote.Policy{Attempts: 3, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond, Timeout: time.Second}
	// Write cleanly...
	clean := remote.NewObjectBackend(remote.Retry(mem, policy), "packs", nil)
	dir := t.TempDir()
	s, err := store.OpenWith(dir, store.Options{Backend: clean, ShardFanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := faultPayload(32<<10, 9)
	if _, err := s.PutSections(store.Key{LoopID: "train", Exec: 0}, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// ...then read through a store where every ranged GET faults.
	fb := faultbackend.WrapObject(mem, faultbackend.Config{Seed: 5, ReadErrNth: 1})
	faulty := remote.NewObjectBackend(remote.Retry(fb, policy), "packs", nil)
	ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: faulty})
	if err != nil {
		t.Fatal(err)
	}
	secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: 0}, nil)
	if err == nil {
		t.Fatalf("restore over dead store succeeded (ok=%v, %d sections)", ok, len(secs))
	}
	if !errors.Is(err, remote.ErrExhausted) && !errors.Is(err, faultbackend.ErrInjected) {
		t.Fatalf("restore error is untyped: %v", err)
	}
	if len(secs) != 0 {
		t.Fatalf("failed restore returned %d partial sections", len(secs))
	}
}

// TestFaultMatrixGC runs chunk-compacting GC over a fault-injecting local
// backend: whatever the faults do, GC either completes or fails with an
// error — and the store's latest checkpoints stay byte-identical either way,
// verified through a clean backend.
func TestFaultMatrixGC(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			packs := t.TempDir()
			db, err := store.NewDirBackend(packs)
			if err != nil {
				t.Fatal(err)
			}
			fb := faultbackend.WrapBackend(db, faultbackend.Config{Seed: seed, ReadErrNth: 2, ShortReadNth: 3})
			dir := t.TempDir()
			s, err := store.OpenWith(dir, store.Options{Backend: fb, ShardFanout: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Three versions per key: two superseded generations of chunks
			// for GC to compact away.
			want := map[int][]byte{}
			for ver := 0; ver < 3; ver++ {
				for i := 0; i < 3; i++ {
					data := faultPayload(32<<10, uint64(seed)*100+uint64(ver)*10+uint64(i))
					want[i] = data
					key := store.Key{LoopID: "train", Exec: i}
					if _, err := s.PutSections(key, []store.Section{{Name: "w", Data: data}}, 0, 0, 0); err != nil {
						t.Fatalf("put v%d/%d: %v", ver, i, err)
					}
				}
			}
			res, gcErr := s.GCWith(store.GCOptions{PackRetention: time.Nanosecond})
			if gcErr != nil {
				t.Logf("gc failed under faults (allowed): %v", gcErr)
			} else {
				t.Logf("gc survived faults: %+v", res)
			}
			// Integrity check through a clean backend: the latest version of
			// every key must read back byte-identical, GC success or not.
			cleanDB, err := store.NewDirBackend(packs)
			if err != nil {
				t.Fatal(err)
			}
			ro, err := store.OpenWith(dir, store.Options{ReadOnly: true, Backend: cleanDB})
			if err != nil {
				t.Fatal(err)
			}
			for i, data := range want {
				secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: i}, nil)
				if err != nil || !ok {
					t.Fatalf("post-gc read %d: ok=%v err=%v", i, ok, err)
				}
				if !bytes.Equal(secs[0].Data, data) {
					t.Fatalf("post-gc read %d: bytes differ", i)
				}
			}
			if fb.Injected() == 0 {
				t.Fatal("battery ran but no faults fired")
			}
		})
	}
}
