// Package faultbackend wraps the store's storage interfaces — the remote
// ObjectStore API and store.Backend itself — with deterministic, seed-driven
// fault injection: errors on every Nth read, short reads, latency spikes,
// and torn PUTs. The remote backend's fault-matrix battery is built on it,
// and it is exported (not an internal test helper) so future fleet tests can
// reuse the same fault classes against real daemons.
//
// Determinism is the point: every fault class fires on a fixed schedule —
// operation counters are per-class and atomic, and the seed shifts each
// class's phase — so a failing run replays identically from its seed, under
// -race, with no clock or randomness in the schedule itself.
package faultbackend

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/remote"
)

// ErrInjected marks every injected fault; test assertions and retry loops
// recognize it with errors.Is.
var ErrInjected = errors.New("faultbackend: injected fault")

// Config selects which fault classes fire and how often. A zero Nth disables
// its class; Nth = 1 fires on every operation. Seed rotates each class's
// phase (which of the first N operations faults), so different seeds
// exercise different interleavings on the same schedule density.
type Config struct {
	Seed int64
	// ReadErrNth errors every Nth read operation (Get/GetRange/ReadAt).
	ReadErrNth int
	// ShortReadNth truncates every Nth ranged read instead of erroring.
	ShortReadNth int
	// LatencyNth sleeps Latency on every Nth operation (any kind) — the
	// class that exercises per-attempt timeouts.
	LatencyNth int
	Latency    time.Duration
	// TornPutNth makes every Nth Put persist only a prefix of the object
	// and then report failure — the crash-mid-upload case atomic PUTs must
	// make unobservable to readers.
	TornPutNth int
}

// counters tracks per-class operation counts.
type counters struct {
	reads atomic.Int64
	puts  atomic.Int64
	ops   atomic.Int64
}

// injected counts how many faults have fired (all classes).
type injected struct {
	n atomic.Int64
}

// fire reports whether this operation (the count-th of its class) faults
// under schedule nth with the given seed.
func fire(count int64, nth int, seed int64) bool {
	if nth <= 0 {
		return false
	}
	phase := seed % int64(nth)
	if phase < 0 {
		phase += int64(nth)
	}
	return count%int64(nth) == phase
}

// Object wraps a remote.ObjectStore with fault injection.
type Object struct {
	inner remote.ObjectStore
	cfg   Config
	c     counters
	inj   injected
}

// WrapObject returns st with cfg's fault classes layered on top.
func WrapObject(st remote.ObjectStore, cfg Config) *Object {
	return &Object{inner: st, cfg: cfg}
}

// Injected returns how many faults have fired so far — tests assert it is
// non-zero so a "passing" battery cannot silently test nothing.
func (o *Object) Injected() int64 { return o.inj.n.Load() }

func (o *Object) latency() {
	if fire(o.c.ops.Add(1)-1, o.cfg.LatencyNth, o.cfg.Seed) && o.cfg.Latency > 0 {
		o.inj.n.Add(1)
		time.Sleep(o.cfg.Latency)
	}
}

// Size implements remote.ObjectStore (never faulted: sizing is metadata).
func (o *Object) Size(key string) (int64, error) {
	o.latency()
	return o.inner.Size(key)
}

// Get implements remote.ObjectStore.
func (o *Object) Get(key string) ([]byte, error) {
	o.latency()
	if fire(o.c.reads.Add(1)-1, o.cfg.ReadErrNth, o.cfg.Seed) {
		o.inj.n.Add(1)
		return nil, fmt.Errorf("%w: get %s", ErrInjected, key)
	}
	return o.inner.Get(key)
}

// GetRange implements remote.ObjectStore, subject to read errors and short
// reads.
func (o *Object) GetRange(key string, off, n int64) ([]byte, error) {
	o.latency()
	count := o.c.reads.Add(1) - 1
	if fire(count, o.cfg.ReadErrNth, o.cfg.Seed) {
		o.inj.n.Add(1)
		return nil, fmt.Errorf("%w: get range %s [%d,%d)", ErrInjected, key, off, off+n)
	}
	data, err := o.inner.GetRange(key, off, n)
	if err == nil && len(data) > 1 && fire(count, o.cfg.ShortReadNth, o.cfg.Seed+1) {
		o.inj.n.Add(1)
		cut := 1 + abs64(o.cfg.Seed+count)%3 // deterministic 1..3 byte truncation
		if cut > int64(len(data))-1 {
			cut = int64(len(data)) - 1
		}
		return data[:int64(len(data))-cut], nil
	}
	return data, err
}

// Put implements remote.ObjectStore, subject to torn PUTs: the fault writes
// a prefix of the object through and reports failure, modeling a writer
// that died mid-upload against a store without atomic PUT.
func (o *Object) Put(key string, data []byte) error {
	o.latency()
	if fire(o.c.puts.Add(1)-1, o.cfg.TornPutNth, o.cfg.Seed) {
		o.inj.n.Add(1)
		if len(data) > 1 {
			o.inner.Put(key, data[:len(data)/2]) //nolint:errcheck // tearing is the point
		}
		return fmt.Errorf("%w: torn put %s", ErrInjected, key)
	}
	return o.inner.Put(key, data)
}

// List implements remote.ObjectStore.
func (o *Object) List(prefix string) ([]string, error) {
	o.latency()
	return o.inner.List(prefix)
}

// Delete implements remote.ObjectStore.
func (o *Object) Delete(key string) error {
	o.latency()
	return o.inner.Delete(key)
}

// Backend wraps a store.Backend with the read-side fault classes (errors on
// Nth ReadAt, short reads, latency). Write-side tearing is not modeled here:
// store.Backend's Create contract is already atomic-or-Abort, so the
// interesting write faults live at the object layer (torn Put above).
type Backend struct {
	inner store.Backend
	cfg   Config
	c     counters
	inj   injected
}

// WrapBackend returns b with cfg's read-fault classes layered on top.
func WrapBackend(b store.Backend, cfg Config) *Backend {
	return &Backend{inner: b, cfg: cfg}
}

// Injected returns how many faults have fired so far.
func (b *Backend) Injected() int64 { return b.inj.n.Load() }

func (b *Backend) latency() {
	if fire(b.c.ops.Add(1)-1, b.cfg.LatencyNth, b.cfg.Seed) && b.cfg.Latency > 0 {
		b.inj.n.Add(1)
		time.Sleep(b.cfg.Latency)
	}
}

// Size implements store.Backend.
func (b *Backend) Size(name string) (int64, error) {
	b.latency()
	return b.inner.Size(name)
}

// Append implements store.Backend.
func (b *Backend) Append(name string, p []byte) error {
	b.latency()
	return b.inner.Append(name, p)
}

// Open implements store.Backend; the returned reader carries the injector.
func (b *Backend) Open(name string) (store.BackendReader, error) {
	b.latency()
	r, err := b.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultReader{b: b, name: name, inner: r}, nil
}

// Create implements store.Backend.
func (b *Backend) Create(name string) (store.BackendWriter, error) {
	b.latency()
	return b.inner.Create(name)
}

// Remove implements store.Backend.
func (b *Backend) Remove(name string) error {
	b.latency()
	return b.inner.Remove(name)
}

type faultReader struct {
	b     *Backend
	name  string
	inner store.BackendReader
}

// ReadAt implements io.ReaderAt with injected errors and short reads.
func (r *faultReader) ReadAt(p []byte, off int64) (int, error) {
	r.b.latency()
	count := r.b.c.reads.Add(1) - 1
	if fire(count, r.b.cfg.ReadErrNth, r.b.cfg.Seed) {
		r.b.inj.n.Add(1)
		return 0, fmt.Errorf("%w: read %s at %d", ErrInjected, r.name, off)
	}
	n, err := r.inner.ReadAt(p, off)
	if err == nil && n > 1 && fire(count, r.b.cfg.ShortReadNth, r.b.cfg.Seed+1) {
		r.b.inj.n.Add(1)
		short := n - 1 - int(abs64(r.b.cfg.Seed+count)%3)
		if short < 1 {
			short = 1
		}
		return short, fmt.Errorf("%w: short read %s at %d: %d of %d bytes", ErrInjected, r.name, off, short, n)
	}
	return n, err
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Close implements io.Closer.
func (r *faultReader) Close() error { return r.inner.Close() }
