package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flor.dev/flor/internal/ckptfmt"
)

// populateRun writes a small v2 run with repeated (dedup-able) and unique
// content across several checkpoints.
func populateRun(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	shared := bytes.Repeat([]byte("frozen-backbone"), 400)
	for e := 0; e < 6; e++ {
		secs := []Section{
			{Name: "backbone", Data: shared},
			{Name: "head", Data: bytes.Repeat([]byte{byte(e)}, 900)},
		}
		if _, err := s.PutSections(Key{LoopID: "train", Exec: e}, secs, 10, 20, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestOpenReadOnlySharedConcurrentReads is the -race regression test for the
// daemon's shared-store path: one read-only *Store hammered by many
// goroutines doing Get, GetSections (with a concurrently mutated have
// callback), Lookup, Has, Metas, and Dedup, while the original writable
// store spools (mutating GzSize metadata) in parallel.
func TestOpenReadOnlySharedConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	w := populateRun(t, dir)

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("OpenReadOnly store not marked read-only")
	}

	want, err := ro.Get(Key{LoopID: "train", Exec: 3})
	if err != nil {
		t.Fatal(err)
	}

	// A tiny concurrent "payload cache": its Contains runs inside
	// GetSections from every reader goroutine at once.
	var cacheMu sync.Mutex
	cached := map[ckptfmt.Hash]bool{}
	have := func(h ckptfmt.Hash) bool {
		cacheMu.Lock()
		defer cacheMu.Unlock()
		return cached[h]
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := Key{LoopID: "train", Exec: (g + i) % 6}
				secs, ok, err := ro.GetSections(key, have)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					errc <- fmt.Errorf("GetSections %s: not v2", key)
					return
				}
				cacheMu.Lock()
				for _, sec := range secs {
					if sec.Data != nil {
						cached[sec.Hash] = true
					}
				}
				cacheMu.Unlock()
				got, err := ro.Get(Key{LoopID: "train", Exec: 3})
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("concurrent Get diverged on iteration %d", i)
					return
				}
				if m, ok := ro.Lookup(key); !ok || m.Size == 0 {
					errc <- fmt.Errorf("Lookup %s: ok=%v", key, ok)
					return
				}
				ro.Has(key)
				ro.Metas()
				ro.Dedup()
			}
		}(g)
	}
	// Concurrent metadata mutation on the writable store sharing the same
	// metas: before Lookup/Metas returned snapshot copies this raced with
	// the readers above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := w.Spool(); err != nil {
				errc <- err
				return
			}
			for e := 0; e < 6; e++ {
				if m, ok := w.Lookup(Key{LoopID: "train", Exec: e}); ok {
					_ = m.GzSize // snapshot read; must not race with Spool
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestOpenReadOnlyRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	populateRun(t, dir)
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Put(Key{LoopID: "x", Exec: 0}, []byte("p"), 0, 0, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put err = %v, want ErrReadOnly", err)
	}
	if _, err := ro.PutSections(Key{LoopID: "x", Exec: 0}, []Section{{Data: []byte("p")}}, 0, 0, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("PutSections err = %v, want ErrReadOnly", err)
	}
	if _, err := ro.Spool(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Spool err = %v, want ErrReadOnly", err)
	}
	if _, err := ro.GC(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("GC err = %v, want ErrReadOnly", err)
	}
}

func TestOpenReadOnlyMissingDir(t *testing.T) {
	if _, err := OpenReadOnly(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("OpenReadOnly created or accepted a missing directory")
	}
}

// TestOpenReadOnlyLeavesTornTail checks a read-only open skips a torn
// manifest tail without truncating the file (it must not write).
func TestOpenReadOnlyLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	populateRun(t, dir)
	mpath := filepath.Join(dir, "MANIFEST")
	f, err := os.OpenFile(mpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(mpath)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Metas()) != 6 {
		t.Fatalf("metas = %d, want 6", len(ro.Metas()))
	}
	after, err := os.Stat(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("read-only open changed manifest size %d -> %d", before.Size(), after.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "FORMAT")); err != nil {
		t.Fatalf("FORMAT marker: %v", err)
	}
}
