package runlog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestAppendAndLines(t *testing.T) {
	l := New()
	l.Append("loss: 0.5")
	l.Append("acc: 0.9")
	lines := l.Lines()
	if len(lines) != 2 || lines[0] != "loss: 0.5" || lines[1] != "acc: 0.9" {
		t.Fatalf("lines = %v", lines)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLinesReturnsCopy(t *testing.T) {
	l := New()
	l.Append("a: 1")
	lines := l.Lines()
	lines[0] = "tampered"
	if l.Lines()[0] != "a: 1" {
		t.Fatal("Lines exposed internal storage")
	}
}

func TestConcurrentAppendSafe(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append("x: y")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("Len = %d, want 800", l.Len())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := New()
	l.Append("loss: 0.5")
	l.Append("acc: 0.9")
	path := filepath.Join(t.TempDir(), "record.log")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "loss: 0.5" || got[1] != "acc: 0.9" {
		t.Fatalf("read lines = %v", got)
	}
}

func TestWriteReadEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.log")
	if err := New().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty log read back %v", got)
	}
}

func TestReadMissingFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestLabelExtraction(t *testing.T) {
	if got := Label("loss: 0.5"); got != "loss" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("no separator"); got != "" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("a: b: c"); got != "a" {
		t.Fatalf("Label = %q", got)
	}
}

func TestFilterLabels(t *testing.T) {
	lines := []string{"loss: 0.5", "grad: 1.2", "loss: 0.4", "weights: 3.3"}
	got := FilterLabels(lines, map[string]bool{"grad": true, "weights": true})
	if len(got) != 2 || got[0] != "loss: 0.5" || got[1] != "loss: 0.4" {
		t.Fatalf("filtered = %v", got)
	}
	// Empty exclusion set returns input unchanged.
	if len(FilterLabels(lines, nil)) != 4 {
		t.Fatal("nil exclusion filtered lines")
	}
}

func TestDeferredCheckCleanReplay(t *testing.T) {
	record := []string{"loss: 0.5", "loss: 0.4"}
	replay := []string{"grad: 9.1", "loss: 0.5", "grad: 5.5", "loss: 0.4"}
	anomalies := DeferredCheck(record, replay, map[string]bool{"grad": true})
	if anomalies != nil {
		t.Fatalf("clean replay flagged: %v", anomalies)
	}
}

func TestDeferredCheckDetectsDivergence(t *testing.T) {
	record := []string{"loss: 0.5", "loss: 0.4"}
	replay := []string{"loss: 0.5", "loss: 0.9"} // diverged second epoch
	anomalies := DeferredCheck(record, replay, nil)
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v", anomalies)
	}
	if anomalies[0].Index != 1 || anomalies[0].Record != "loss: 0.4" || anomalies[0].Replay != "loss: 0.9" {
		t.Fatalf("anomaly = %+v", anomalies[0])
	}
}

func TestDeferredCheckDetectsMissingLines(t *testing.T) {
	record := []string{"loss: 0.5", "loss: 0.4"}
	replay := []string{"loss: 0.5"}
	anomalies := DeferredCheck(record, replay, nil)
	if len(anomalies) != 1 || anomalies[0].Replay != "" {
		t.Fatalf("anomalies = %v", anomalies)
	}
}

func TestDeferredCheckDetectsExtraLines(t *testing.T) {
	record := []string{"loss: 0.5"}
	replay := []string{"loss: 0.5", "loss: 0.4"}
	anomalies := DeferredCheck(record, replay, nil)
	if len(anomalies) != 1 || anomalies[0].Record != "" {
		t.Fatalf("anomalies = %v", anomalies)
	}
}

func TestDeferredCheckUnfilteredProbeCausesAnomaly(t *testing.T) {
	// Probe output that is NOT excluded must surface as a difference — the
	// exclusion set is what distinguishes probes from divergence.
	record := []string{"loss: 0.5"}
	replay := []string{"grad: 9.1", "loss: 0.5"}
	if got := DeferredCheck(record, replay, nil); len(got) == 0 {
		t.Fatal("unfiltered probe lines not flagged")
	}
	if got := DeferredCheck(record, replay, map[string]bool{"grad": true}); got != nil {
		t.Fatalf("filtered probe flagged: %v", got)
	}
}

func TestAnomalyString(t *testing.T) {
	for _, a := range []Anomaly{
		{Index: 3, Record: "a", Replay: "b"},
		{Index: 0, Record: "", Replay: "extra"},
		{Index: 9, Record: "gone", Replay: ""},
	} {
		if a.String() == "" {
			t.Fatal("empty anomaly rendering")
		}
	}
}

func TestPartialDeferredCheckSubsequence(t *testing.T) {
	record := []string{"loss: 5", "loss: 4", "loss: 3", "loss: 2"}
	// Worker covering epochs 1-2 with a probe.
	replay := []string{"grad: 1", "loss: 4", "grad: 2", "loss: 3"}
	if got := PartialDeferredCheck(record, replay, map[string]bool{"grad": true}); got != nil {
		t.Fatalf("valid segment flagged: %v", got)
	}
}

func TestPartialDeferredCheckDetectsDivergence(t *testing.T) {
	record := []string{"loss: 5", "loss: 4", "loss: 3"}
	replay := []string{"loss: 4", "loss: 99"}
	if got := PartialDeferredCheck(record, replay, nil); len(got) == 0 {
		t.Fatal("divergent segment not flagged")
	}
}

func TestPartialDeferredCheckEmptySegment(t *testing.T) {
	if got := PartialDeferredCheck([]string{"a: 1"}, nil, nil); got != nil {
		t.Fatalf("empty segment flagged: %v", got)
	}
}

func TestTimingsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timings.log")
	tm := &Timings{SetupNs: 12345, C: 1.375, IterNs: []int64{1, 0, 999_999_999_999, 42}}
	if err := tm.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimingsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SetupNs != tm.SetupNs {
		t.Fatalf("setup %d, want %d", got.SetupNs, tm.SetupNs)
	}
	if got.C != tm.C {
		t.Fatalf("c %g, want %g", got.C, tm.C)
	}
	if len(got.IterNs) != len(tm.IterNs) {
		t.Fatalf("iterations %d, want %d", len(got.IterNs), len(tm.IterNs))
	}
	for i := range tm.IterNs {
		if got.IterNs[i] != tm.IterNs[i] {
			t.Fatalf("iteration %d = %d, want %d", i, got.IterNs[i], tm.IterNs[i])
		}
	}
}

func TestTimingsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timings.log")
	if err := (&Timings{SetupNs: 7}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimingsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SetupNs != 7 || len(got.IterNs) != 0 {
		t.Fatalf("got %+v, want setup=7 with no iterations", got)
	}
}

func TestTimingsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timings.log")
	if err := writeRaw(path, "setup nope\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTimingsFile(path); err == nil {
		t.Fatal("bad header accepted")
	}
	if err := writeRaw(path, "setup 5 c 1.38\nabc\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTimingsFile(path); err == nil {
		t.Fatal("bad iteration line accepted")
	}
}

// writeRaw writes raw file content for the garbage-rejection cases.
func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
