// Package runlog implements the run logs produced by record and replay, and
// the deferred correctness check of paper §5.2.2.
//
// Flor's side-effect analysis is efficient but unsafe: it may miss state and
// replay divergently. The mitigation is observational: the metrics a
// training script already logs (loss, accuracy) form "a fairly unique
// fingerprint of a model's training characteristics", so at the end of
// replay Flor diffs the replay log against the record log and warns about
// any difference that is not explained by the hindsight log statements the
// user added.
package runlog

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Log is an append-only sequence of log lines. It is safe for concurrent
// append so parallel replay workers can share one (each worker's lines are
// merged in worker order by the replay engine instead; this lock is a
// belt-and-braces guarantee).
type Log struct {
	mu    sync.Mutex
	lines []string
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds one line.
func (l *Log) Append(line string) {
	l.mu.Lock()
	l.lines = append(l.lines, line)
	l.mu.Unlock()
}

// Lines returns a copy of all lines in append order.
func (l *Log) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.lines))
	copy(out, l.lines)
	return out
}

// Len returns the number of lines.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// Tail returns a copy of the lines from index `from` on — what streaming
// consumers emit per increment without copying the whole log each time. An
// out-of-range from yields nil.
func (l *Log) Tail(from int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 || from >= len(l.lines) {
		return nil
	}
	out := make([]string, len(l.lines)-from)
	copy(out, l.lines[from:])
	return out
}

// WriteFile persists the log, one line per row.
func (l *Log) WriteFile(path string) error {
	content := strings.Join(l.Lines(), "\n")
	if content != "" {
		content += "\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("runlog: write %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a log previously written with WriteFile.
func ReadFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: read %s: %w", path, err)
	}
	if len(raw) == 0 {
		return nil, nil
	}
	s := strings.TrimSuffix(string(raw), "\n")
	if s == "" {
		return nil, nil
	}
	return strings.Split(s, "\n"), nil
}

// Label extracts the "label" prefix of a log line ("label: message"); lines
// without a separator yield the empty label.
func Label(line string) string {
	if i := strings.Index(line, ": "); i >= 0 {
		return line[:i]
	}
	return ""
}

// FilterLabels returns the lines whose label is NOT in exclude, preserving
// order. The deferred check uses it to drop hindsight-probe output before
// comparing replay to record.
func FilterLabels(lines []string, exclude map[string]bool) []string {
	if len(exclude) == 0 {
		return lines
	}
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		if !exclude[Label(line)] {
			out = append(out, line)
		}
	}
	return out
}

// Timings carries the per-iteration wall-clock measurements the record
// phase captures alongside the run log: how long program setup took and how
// long each main-loop iteration took. The replay scheduler's cost model
// (internal/sched) is derived from them, so cost-balanced partitioning and
// work stealing can react to skew the checkpoint metadata alone cannot see
// (eval phases, logging, unmemoized loops).
type Timings struct {
	SetupNs int64
	// C is the restore/materialize scaling factor known when the timings
	// were written (the paper's §5.3.2 prior, refined as restores are
	// observed); 0 when unknown.
	C      float64
	IterNs []int64
}

// WriteFile persists the timings: a "setup <ns> c <factor>" header line,
// then one iteration duration per line.
func (t *Timings) WriteFile(path string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "setup %d c %g\n", t.SetupNs, t.C)
	for _, ns := range t.IterNs {
		fmt.Fprintf(&b, "%d\n", ns)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("runlog: write %s: %w", path, err)
	}
	return nil
}

// ReadTimingsFile loads timings previously written with WriteFile.
func ReadTimingsFile(path string) (*Timings, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: read %s: %w", path, err)
	}
	t := &Timings{}
	for i, line := range strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		if i == 0 {
			if _, err := fmt.Sscanf(line, "setup %d c %g", &t.SetupNs, &t.C); err != nil {
				return nil, fmt.Errorf("runlog: %s: bad timings header %q", path, line)
			}
			continue
		}
		var ns int64
		if _, err := fmt.Sscanf(line, "%d", &ns); err != nil {
			return nil, fmt.Errorf("runlog: %s: bad timings line %q", path, line)
		}
		t.IterNs = append(t.IterNs, ns)
	}
	return t, nil
}

// Anomaly is one record/replay divergence found by the deferred check.
type Anomaly struct {
	Index  int    // line position in the record log
	Record string // "" if the replay has extra lines
	Replay string // "" if the replay is missing lines
}

// String renders the anomaly for the user warning.
func (a Anomaly) String() string {
	switch {
	case a.Record == "":
		return fmt.Sprintf("line %d: replay emitted extra line %q", a.Index, a.Replay)
	case a.Replay == "":
		return fmt.Sprintf("line %d: replay missing line %q", a.Index, a.Record)
	default:
		return fmt.Sprintf("line %d: record %q != replay %q", a.Index, a.Record, a.Replay)
	}
}

// DeferredCheck compares the record log to a replay log after removing the
// replay lines produced by the given new probe labels. A nil result means
// the replay reproduced the record exactly (paper §5.2.2: "we run diff, and
// warn the user if the replay logs differ ... in any way other than the
// statements added for hindsight logging").
func DeferredCheck(record, replay []string, probeLabels map[string]bool) []Anomaly {
	filtered := FilterLabels(replay, probeLabels)
	var anomalies []Anomaly
	n := len(record)
	if len(filtered) > n {
		n = len(filtered)
	}
	for i := 0; i < n; i++ {
		var r, p string
		if i < len(record) {
			r = record[i]
		}
		if i < len(filtered) {
			p = filtered[i]
		}
		if r != p {
			anomalies = append(anomalies, Anomaly{Index: i, Record: r, Replay: p})
		}
	}
	return anomalies
}

// PartialDeferredCheck compares a replay log that covers only a contiguous
// subrange of the record log (a parallel worker's segment): it verifies that
// the filtered replay lines appear as a contiguous subsequence of the record
// log. Used when workers check their own output before the merged check.
func PartialDeferredCheck(record, replay []string, probeLabels map[string]bool) []Anomaly {
	filtered := FilterLabels(replay, probeLabels)
	if len(filtered) == 0 {
		return nil
	}
	// Find the first record line equal to the first filtered line, then
	// require the rest to follow contiguously.
	for start := 0; start+len(filtered) <= len(record); start++ {
		if record[start] != filtered[0] {
			continue
		}
		ok := true
		for i := 1; i < len(filtered); i++ {
			if record[start+i] != filtered[i] {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
	}
	return []Anomaly{{Index: -1, Replay: filtered[0],
		Record: "replay segment is not a contiguous subsequence of the record log"}}
}
