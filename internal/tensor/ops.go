package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns a * b element-wise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
}

// AxpyInPlace computes a += alpha * b.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) {
	checkSameShape("AxpyInPlace", a, b)
	for i := range a.data {
		a.data[i] += alpha * b.data[i]
	}
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// MatMul multiplies a (m×k) by b (k×n) producing (m×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// ikj loop order: streams through b and out rows for cache friendliness
	// while keeping accumulation order fixed (determinism).
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB multiplies a (m×k) by bᵀ where b is (n×k), producing (m×n).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			sum := 0.0
			for kk := 0; kk < k; kk++ {
				sum += arow[kk] * brow[kk]
			}
			out.data[i*n+j] = sum
		}
	}
	return out
}

// MatMulTransA multiplies aᵀ by b where a is (k×m) and b is (k×n), producing (m×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Norm returns the L2 norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Apply returns a new tensor with f applied to every element.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// Relu returns max(0, x) element-wise.
func Relu(a *Tensor) *Tensor {
	return Apply(a, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Tanh returns tanh(x) element-wise.
func Tanh(a *Tensor) *Tensor { return Apply(a, math.Tanh) }

// Sigmoid returns 1/(1+e^-x) element-wise.
func Sigmoid(a *Tensor) *Tensor {
	return Apply(a, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
}

// Gelu returns the tanh-approximated GELU activation element-wise.
func Gelu(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return Apply(a, func(v float64) float64 {
		return 0.5 * v * (1 + math.Tanh(c*(v+0.044715*v*v*v)))
	})
}

// SoftmaxRows applies a numerically stable softmax to each row of a 2-D
// tensor.
func SoftmaxRows(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		orow := out.data[i*n : (i+1)*n]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// LogSumExpRows returns, for each row of a 2-D tensor, log Σ exp(row).
func LogSumExpRows(a *Tensor) []float64 {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: LogSumExpRows requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		out[i] = maxv + math.Log(sum)
	}
	return out
}

// ArgmaxRows returns the index of the maximum element in each row of a 2-D
// tensor (first occurrence wins).
func ArgmaxRows(a *Tensor) []int {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows requires a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		best, bestJ := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
	return out
}

// Conv1D performs a 1-D valid convolution of each input row with each
// kernel. Input is (batch, inLen), kernels is (numKernels, kernelLen);
// output is (batch*numKernels, inLen-kernelLen+1) flattened row-major by
// (batch, kernel). It is the compute kernel behind the audio workloads.
func Conv1D(input, kernels *Tensor) *Tensor {
	if input.Dims() != 2 || kernels.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Conv1D requires 2-D operands, got %v and %v", input.shape, kernels.shape))
	}
	batch, inLen := input.shape[0], input.shape[1]
	nk, klen := kernels.shape[0], kernels.shape[1]
	outLen := inLen - klen + 1
	if outLen <= 0 {
		panic(fmt.Sprintf("tensor: Conv1D kernel length %d exceeds input length %d", klen, inLen))
	}
	out := New(batch*nk, outLen)
	for b := 0; b < batch; b++ {
		in := input.data[b*inLen : (b+1)*inLen]
		for kidx := 0; kidx < nk; kidx++ {
			ker := kernels.data[kidx*klen : (kidx+1)*klen]
			orow := out.data[(b*nk+kidx)*outLen : (b*nk+kidx+1)*outLen]
			for o := 0; o < outLen; o++ {
				sum := 0.0
				for j := 0; j < klen; j++ {
					sum += in[o+j] * ker[j]
				}
				orow[o] = sum
			}
		}
	}
	return out
}

// Rows returns the sub-tensor consisting of rows [from, to) of a 2-D tensor
// as a copy.
func Rows(a *Tensor, from, to int) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Rows requires a 2-D tensor, got %v", a.shape))
	}
	if from < 0 || to > a.shape[0] || from > to {
		panic(fmt.Sprintf("tensor: Rows[%d:%d] out of range for %v", from, to, a.shape))
	}
	n := a.shape[1]
	out := New(to-from, n)
	copy(out.data, a.data[from*n:to*n])
	return out
}

func checkSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
