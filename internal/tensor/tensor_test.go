package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/xrand"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Dims() != 3 || a.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: len=%d dims=%d", a.Len(), a.Dims())
	}
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar tensor should have 1 element, got %d", s.Len())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if got := a.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %g, want 7.5", got)
	}
	if got := a.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout violated: data[9] = %g", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with mismatched length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsolation(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with source")
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("Clone is not Equal to source")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 1)
	if a.At(0, 1) != 42 {
		t.Fatal("Reshape should share backing data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Scale(a, 3).Data(); got[1] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{5, 5}, 2)
	AddInPlace(a, b)
	if a.Data()[0] != 6 {
		t.Fatalf("AddInPlace wrong: %v", a.Data())
	}
	AxpyInPlace(a, 2, b)
	if a.Data()[1] != 17 {
		t.Fatalf("AxpyInPlace wrong: %v", a.Data())
	}
	ScaleInPlace(a, 0.5)
	if a.Data()[0] != 8 {
		t.Fatalf("ScaleInPlace wrong: %v", a.Data())
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data()[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := xrand.New(1)
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 5, 6)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-12) {
		t.Fatal("MatMulTransB disagrees with MatMul(a, bᵀ)")
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := xrand.New(2)
	a := Randn(rng, 1, 6, 4)
	b := Randn(rng, 1, 6, 5)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !AllClose(got, want, 1e-12) {
		t.Fatal("MatMulTransA disagrees with MatMul(aᵀ, b)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := xrand.New(3)
	a := Randn(rng, 1, 3, 7)
	if !Equal(Transpose(Transpose(a)), a) {
		t.Fatal("transpose of transpose is not identity")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -4, 0, 5}, 4)
	if a.Sum() != 4 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Mean() != 1 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	if math.Abs(a.Norm()-math.Sqrt(50)) > 1e-12 {
		t.Fatalf("Norm = %g", a.Norm())
	}
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %g", a.MaxAbs())
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := xrand.New(4)
	a := Randn(rng, 3, 5, 9)
	s := SoftmaxRows(a)
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 9; j++ {
			v := s.At(i, j)
			if v <= 0 || v > 1 {
				t.Fatalf("softmax value out of (0,1]: %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxRowsStability(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 1002}, 1, 3)
	s := SoftmaxRows(a)
	for _, v := range s.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", s.Data())
		}
	}
}

func TestLogSumExpRows(t *testing.T) {
	a := FromSlice([]float64{0, 0, 0}, 1, 3)
	got := LogSumExpRows(a)[0]
	want := math.Log(3)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %g, want %g", got, want)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 9, 3, 8, 2, 4}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float64{-1, 0, 2}, 3)
	if got := Relu(a).Data(); got[0] != 0 || got[2] != 2 {
		t.Fatalf("Relu = %v", got)
	}
	if got := Sigmoid(Scalar(0)).Item(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %g", got)
	}
	if got := Tanh(Scalar(0)).Item(); got != 0 {
		t.Fatalf("Tanh(0) = %g", got)
	}
	if got := Gelu(Scalar(0)).Item(); got != 0 {
		t.Fatalf("Gelu(0) = %g", got)
	}
}

func TestConv1DKnownValues(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	k := FromSlice([]float64{1, 1}, 1, 2)
	out := Conv1D(in, k)
	want := []float64{3, 5, 7}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("Conv1D[%d] = %g, want %g", i, out.Data()[i], w)
		}
	}
}

func TestConv1DShapes(t *testing.T) {
	rng := xrand.New(5)
	in := Randn(rng, 1, 3, 10)
	k := Randn(rng, 1, 4, 3)
	out := Conv1D(in, k)
	if out.Dim(0) != 12 || out.Dim(1) != 8 {
		t.Fatalf("Conv1D output shape %v, want [12 8]", out.Shape())
	}
}

func TestRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	r := Rows(a, 1, 3)
	if r.Dim(0) != 2 || r.At(0, 0) != 3 || r.At(1, 1) != 6 {
		t.Fatalf("Rows wrong: %v", r.Data())
	}
	r.Set(0, 0, 0)
	if a.At(1, 0) != 3 {
		t.Fatal("Rows should copy, not alias")
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(xrand.New(9), 1, 4, 4)
	b := Randn(xrand.New(9), 1, 4, 4)
	if !Equal(a, b) {
		t.Fatal("Randn with same seed differs")
	}
}

func TestXavierUniformBounds(t *testing.T) {
	w := XavierUniform(xrand.New(10), 30, 20)
	limit := math.Sqrt(6.0 / 50.0)
	for _, v := range w.Data() {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier value %g outside [-%g, %g)", v, limit, limit)
		}
	}
	if w.Dim(0) != 20 || w.Dim(1) != 30 {
		t.Fatalf("Xavier shape %v, want [20 30]", w.Shape())
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 3, 4)
		return Equal(Add(a, b), Add(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 4, 5)
		c := Randn(rng, 1, 4, 5)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeMatMul(t *testing.T) {
	// (AB)ᵀ == BᵀAᵀ
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 4, 2)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
