// Package tensor implements dense float64 tensors and the numerical
// operations required by the autograd and nn packages.
//
// The implementation favours determinism over speed: every operation is
// single-threaded and accumulates in a fixed order, so a training loop
// replayed from a checkpoint reproduces the recorded run bit-for-bit. This
// property is what lets Flor's deferred correctness checks (paper §5.2.2)
// compare record and replay logs with exact equality.
package tensor

import (
	"fmt"
	"math"
	"strings"

	"flor.dev/flor/internal/xrand"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an empty
// scalar-less tensor; use the constructors.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A nil/empty shape
// yields a scalar (one element).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: nil, data: []float64{v}}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn fills a new tensor with N(0, std²) variates drawn from rng.
func Randn(rng *xrand.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform fills a new tensor with uniform variates in [lo, hi).
func Uniform(rng *xrand.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// XavierUniform returns a (fanOut, fanIn)-shaped weight matrix initialized
// with the Glorot/Xavier uniform scheme.
func XavierUniform(rng *xrand.RNG, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return Uniform(rng, -limit, limit, fanOut, fanIn)
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the backing slice (row-major). Mutations are visible to the
// tensor; callers that need isolation should Clone first.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-dimensional tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", ix, i, t.shape[i]))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Item returns the sole element of a single-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view-free copy header with a new shape over the same
// data. Element counts must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports exact element-wise equality (shapes and data).
func Equal(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports element-wise equality within absolute tolerance tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v", t.shape)
	if len(t.data) <= 8 {
		fmt.Fprintf(&sb, "%v", t.data)
	} else {
		fmt.Fprintf(&sb, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return sb.String()
}
