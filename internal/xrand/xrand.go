// Package xrand provides a deterministic, serializable pseudo-random number
// generator used throughout the training stack.
//
// Flor's replay correctness depends on every source of randomness being
// captured and restorable: a loop execution replayed from a checkpoint must
// consume exactly the random stream it consumed on record. The standard
// library generators do not expose their internal state, so we implement
// PCG-XSH-RR 64/32 (O'Neill, 2014) with explicit state capture.
package xrand

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	pcgMult = 6364136223846793005
	pcgInc  = 1442695040888963407
)

// RNG is a PCG-XSH-RR 64/32 generator. The zero value is not valid; use New.
type RNG struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: pcgInc}
	r.state = 0
	r.step()
	r.state += seed
	r.step()
	return r
}

// NewStream returns a generator whose stream is derived from seed and a
// stream identifier, so independent components (data shuffling, dropout,
// weight init) can draw from non-overlapping streams.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: (stream << 1) | 1}
	r.state = 0
	r.step()
	r.state += seed
	r.step()
	return r
}

func (r *RNG) step() {
	r.state = r.state*pcgMult + r.inc
}

// Uint32 returns the next 32 bits of the stream.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.step()
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 bits of the stream.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Intn(%d): n must be positive", n))
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := r.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// method (deterministic, no cached spare so state capture stays trivial).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices using swap, via Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// State captures the generator's full internal state.
func (r *RNG) State() [16]byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], r.state)
	binary.LittleEndian.PutUint64(b[8:16], r.inc)
	return b
}

// SetState restores a state previously captured by State.
func (r *RNG) SetState(b [16]byte) {
	r.state = binary.LittleEndian.Uint64(b[0:8])
	r.inc = binary.LittleEndian.Uint64(b[8:16])
}

// Clone returns an independent generator at the same stream position.
func (r *RNG) Clone() *RNG {
	return &RNG{state: r.state, inc: r.inc}
}

// Equal reports whether two generators are at identical states.
func (r *RNG) Equal(o *RNG) bool {
	return o != nil && r.state == o.state && r.inc == o.inc
}
