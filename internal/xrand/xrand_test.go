package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := New(0)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("restored stream diverged at draw %d: got %d want %d", i, got, w)
		}
	}
}

func TestClone(t *testing.T) {
	r := New(5)
	r.Uint64()
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not Equal to source")
	}
	if r.Uint64() != c.Uint64() {
		t.Fatal("clone diverged from source")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	a := New(31)
	b := New(31)
	pa := a.Perm(50)
	vals := make([]int, 50)
	for i := range vals {
		vals[i] = i
	}
	b.Shuffle(50, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for i := range vals {
		if vals[i] != pa[i] {
			t.Fatalf("Shuffle and Perm diverge at %d: %d vs %d", i, vals[i], pa[i])
		}
	}
}

func TestIntnUniformityChiSquared(t *testing.T) {
	r := New(77)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; critical value at p=0.001 is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-squared = %g, distribution not uniform: %v", chi2, counts)
	}
}

func TestQuickStateRoundTrip(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		r := New(seed)
		for i := 0; i < int(draws); i++ {
			r.Uint32()
		}
		st := r.State()
		want := r.Uint64()
		r2 := New(seed + 1)
		r2.SetState(st)
		return r2.Uint64() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
