package data

import (
	"testing"

	"flor.dev/flor/internal/tensor"
)

func TestVectorDatasetDeterministic(t *testing.T) {
	a := NewVectorDataset(1, 8, 4, 16, 10, 0.5)
	b := NewVectorDataset(1, 8, 4, 16, 10, 0.5)
	for epoch := 0; epoch < 3; epoch++ {
		for step := 0; step < 3; step++ {
			xa, la := a.Batch(epoch, step)
			xb, lb := b.Batch(epoch, step)
			if !tensor.Equal(xa, xb) {
				t.Fatalf("batches differ at (%d,%d)", epoch, step)
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("labels differ at (%d,%d)", epoch, step)
				}
			}
		}
	}
}

func TestVectorDatasetBatchesVaryAcrossSteps(t *testing.T) {
	d := NewVectorDataset(1, 8, 4, 16, 10, 0.5)
	x0, _ := d.Batch(0, 0)
	x1, _ := d.Batch(0, 1)
	x2, _ := d.Batch(1, 0)
	if tensor.Equal(x0, x1) {
		t.Fatal("adjacent steps produced identical batches")
	}
	if tensor.Equal(x0, x2) {
		t.Fatal("adjacent epochs produced identical batches")
	}
}

func TestVectorDatasetSeedSensitivity(t *testing.T) {
	a := NewVectorDataset(1, 8, 4, 16, 10, 0.5)
	b := NewVectorDataset(2, 8, 4, 16, 10, 0.5)
	xa, _ := a.Batch(0, 0)
	xb, _ := b.Batch(0, 0)
	if tensor.Equal(xa, xb) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestVectorDatasetShapesAndLabels(t *testing.T) {
	d := NewVectorDataset(1, 8, 4, 16, 10, 0.5)
	x, labels := d.Batch(0, 0)
	if x.Dim(0) != 16 || x.Dim(1) != 8 {
		t.Fatalf("batch shape %v, want [16 8]", x.Shape())
	}
	if len(labels) != 16 {
		t.Fatalf("labels length %d, want 16", len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestVectorDatasetSeparable(t *testing.T) {
	// Nearest-centroid classification should beat random guessing by a wide
	// margin (classes are Gaussian blobs).
	d := NewVectorDataset(1, 8, 4, 64, 10, 0.5)
	x, labels := d.Batch(0, 0)
	correct := 0
	for i := 0; i < 64; i++ {
		best, bestCls := -1.0, -1
		for c := 0; c < 4; c++ {
			dist := 0.0
			for j := 0; j < 8; j++ {
				diff := x.At(i, j) - d.centroids.At(c, j)
				dist += diff * diff
			}
			if bestCls == -1 || dist < best {
				best, bestCls = dist, c
			}
		}
		if bestCls == labels[i] {
			correct++
		}
	}
	if correct < 55 {
		t.Fatalf("nearest-centroid accuracy %d/64; dataset not separable", correct)
	}
}

func TestTokenDatasetShapes(t *testing.T) {
	d := NewTokenDataset(3, 100, 12, 2, 8, 5)
	seqs, labels := d.Batch(0, 0)
	if len(seqs) != 8 || len(labels) != 8 {
		t.Fatalf("batch sizes: %d seqs, %d labels", len(seqs), len(labels))
	}
	for _, s := range seqs {
		if len(s) != 12 {
			t.Fatalf("sequence length %d, want 12", len(s))
		}
		for _, tok := range s {
			if tok < 0 || tok >= 100 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestTokenDatasetClassSignal(t *testing.T) {
	// Tokens of class 0 should skew toward the low vocabulary region.
	d := NewTokenDataset(3, 90, 20, 2, 64, 5)
	seqs, labels := d.Batch(0, 0)
	region := 90 / 3
	for i, s := range seqs {
		inRegion := 0
		for _, tok := range s {
			if tok >= labels[i]*region && tok < (labels[i]+1)*region {
				inRegion++
			}
		}
		if inRegion < len(s)/4 {
			t.Fatalf("sequence %d (class %d) has only %d/%d tokens in class region",
				i, labels[i], inRegion, len(s))
		}
	}
}

func TestLMDatasetDeterministicAndStructured(t *testing.T) {
	a := NewLMDataset(5, 50, 16, 8, 5)
	b := NewLMDataset(5, 50, 16, 8, 5)
	sa, ta := a.Batch(1, 2)
	sb, tb := b.Batch(1, 2)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] || ta[i][j] != tb[i][j] {
				t.Fatal("LM batches not deterministic")
			}
		}
	}
	// Structure: targets frequently equal the transition-table successor.
	hits, total := 0, 0
	for i := range sa {
		for j := range sa[i] {
			total++
			if ta[i][j] == a.next[sa[i][j]] {
				hits++
			}
		}
	}
	if float64(hits)/float64(total) < 0.5 {
		t.Fatalf("only %d/%d targets follow the transition table; expected ~0.8", hits, total)
	}
}

func TestFrameDatasetShapes(t *testing.T) {
	d := NewFrameDataset(7, 40, 8, 4, 5)
	x, labels := d.Batch(0, 0)
	if x.Dim(0) != 4 || x.Dim(1) != 40 {
		t.Fatalf("frame batch shape %v", x.Shape())
	}
	if len(labels) != 4 {
		t.Fatalf("labels length %d", len(labels))
	}
}

func TestSeq2SeqMappingConsistent(t *testing.T) {
	d := NewSeq2SeqDataset(9, 30, 6, 6, 8, 5)
	srcs, tgts := d.Batch(0, 0)
	for i := range srcs {
		for j := range srcs[i] {
			if tgts[i][j] != d.mapping[srcs[i][j]] {
				t.Fatalf("target[%d][%d] = %d, want mapping %d", i, j, tgts[i][j], d.mapping[srcs[i][j]])
			}
		}
	}
}

func TestSeq2SeqTargetPadding(t *testing.T) {
	d := NewSeq2SeqDataset(9, 30, 4, 6, 2, 5)
	srcs, tgts := d.Batch(0, 0)
	for i := range srcs {
		if len(tgts[i]) != 6 {
			t.Fatalf("target length %d, want 6", len(tgts[i]))
		}
		// Positions beyond src length repeat the mapping of the last source
		// token.
		last := d.mapping[srcs[i][3]]
		for j := 4; j < 6; j++ {
			if tgts[i][j] != last {
				t.Fatalf("padding target %d, want %d", tgts[i][j], last)
			}
		}
	}
}
