// Package data provides seeded synthetic datasets standing in for the
// paper's benchmarks (CIFAR-100, ImageNet, GLUE RTE/CoLA, WikiText,
// LibriSpeech, WMT16).
//
// Every dataset is a pure function of (seed, epoch, step): batches are
// generated on demand and no mutable iterator state exists, so replaying any
// epoch from any point reproduces exactly the batches of the recorded run.
// This mirrors how the paper's workloads reload data deterministically during
// worker initialization (§5.4.2: "importing packages, loading training data")
// rather than checkpointing the dataset itself.
package data

import (
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// batchRNG derives an independent random stream for one (epoch, step) cell.
func batchRNG(seed uint64, epoch, step int) *xrand.RNG {
	// SplitMix-style avalanche over the cell coordinates keeps streams
	// decorrelated even for adjacent epochs/steps.
	z := seed + 0x9e3779b97f4a7c15*uint64(epoch+1) + 0xbf58476d1ce4e5b9*uint64(step+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return xrand.NewStream(seed, z|1)
}

// VectorDataset is a class-conditional Gaussian classification task standing
// in for image classification (Cifr, RsNt, ImgN): each class has a fixed
// centroid in feature space and samples are centroid + noise.
type VectorDataset struct {
	seed      uint64
	Features  int
	Classes   int
	BatchSize int
	Steps     int // steps per epoch
	Noise     float64

	centroids *tensor.Tensor // (Classes, Features)
}

// NewVectorDataset constructs the dataset; centroids are derived from seed.
func NewVectorDataset(seed uint64, features, classes, batchSize, steps int, noise float64) *VectorDataset {
	rng := xrand.NewStream(seed, 0xda7a)
	return &VectorDataset{
		seed:      seed,
		Features:  features,
		Classes:   classes,
		BatchSize: batchSize,
		Steps:     steps,
		Noise:     noise,
		centroids: tensor.Randn(rng, 2.0, classes, features),
	}
}

// Batch returns the deterministic batch for (epoch, step).
func (d *VectorDataset) Batch(epoch, step int) (*tensor.Tensor, []int) {
	rng := batchRNG(d.seed, epoch, step)
	x := tensor.New(d.BatchSize, d.Features)
	labels := make([]int, d.BatchSize)
	xd, cd := x.Data(), d.centroids.Data()
	for i := 0; i < d.BatchSize; i++ {
		cls := rng.Intn(d.Classes)
		labels[i] = cls
		for j := 0; j < d.Features; j++ {
			xd[i*d.Features+j] = cd[cls*d.Features+j] + rng.NormFloat64()*d.Noise
		}
	}
	return x, labels
}

// TokenDataset generates class-conditional token sequences standing in for
// sentence classification (RTE, CoLA): each class draws tokens from a
// class-specific region of the vocabulary plus shared noise tokens.
type TokenDataset struct {
	seed      uint64
	Vocab     int
	SeqLen    int
	Classes   int
	BatchSize int
	Steps     int
}

// NewTokenDataset constructs the dataset.
func NewTokenDataset(seed uint64, vocab, seqLen, classes, batchSize, steps int) *TokenDataset {
	return &TokenDataset{seed: seed, Vocab: vocab, SeqLen: seqLen, Classes: classes, BatchSize: batchSize, Steps: steps}
}

// Batch returns sequences and their labels for (epoch, step).
func (d *TokenDataset) Batch(epoch, step int) ([][]int, []int) {
	rng := batchRNG(d.seed, epoch, step)
	seqs := make([][]int, d.BatchSize)
	labels := make([]int, d.BatchSize)
	region := d.Vocab / (d.Classes + 1) // last region is shared noise
	for i := range seqs {
		cls := rng.Intn(d.Classes)
		labels[i] = cls
		seq := make([]int, d.SeqLen)
		for j := range seq {
			if rng.Float64() < 0.6 {
				seq[j] = cls*region + rng.Intn(region)
			} else {
				seq[j] = d.Classes*region + rng.Intn(d.Vocab-d.Classes*region)
			}
		}
		seqs[i] = seq
	}
	return seqs, labels
}

// LMDataset generates token streams with short-range structure standing in
// for language modeling (Wiki): the next token depends on the current one
// through a seeded transition table, so a model can reduce perplexity.
type LMDataset struct {
	seed      uint64
	Vocab     int
	SeqLen    int
	BatchSize int
	Steps     int

	next []int // transition table: preferred successor per token
}

// NewLMDataset constructs the dataset with a seed-derived transition table.
func NewLMDataset(seed uint64, vocab, seqLen, batchSize, steps int) *LMDataset {
	rng := xrand.NewStream(seed, 0x11117)
	next := make([]int, vocab)
	for i := range next {
		next[i] = rng.Intn(vocab)
	}
	return &LMDataset{seed: seed, Vocab: vocab, SeqLen: seqLen, BatchSize: batchSize, Steps: steps, next: next}
}

// Batch returns input sequences and their next-token targets.
func (d *LMDataset) Batch(epoch, step int) (seqs [][]int, targets [][]int) {
	rng := batchRNG(d.seed, epoch, step)
	seqs = make([][]int, d.BatchSize)
	targets = make([][]int, d.BatchSize)
	for i := 0; i < d.BatchSize; i++ {
		seq := make([]int, d.SeqLen)
		tgt := make([]int, d.SeqLen)
		tok := rng.Intn(d.Vocab)
		for j := 0; j < d.SeqLen; j++ {
			seq[j] = tok
			if rng.Float64() < 0.8 {
				tok = d.next[tok]
			} else {
				tok = rng.Intn(d.Vocab)
			}
			tgt[j] = tok
		}
		seqs[i] = seq
		targets[i] = tgt
	}
	return seqs, targets
}

// FrameDataset generates audio-like frame batches standing in for speech
// recognition (Jasp): each class is a mixture of sinusoid-like patterns over
// the frame plus noise.
type FrameDataset struct {
	seed      uint64
	FrameLen  int
	Classes   int
	BatchSize int
	Steps     int

	patterns *tensor.Tensor // (Classes, FrameLen)
}

// NewFrameDataset constructs the dataset with seed-derived class patterns.
func NewFrameDataset(seed uint64, frameLen, classes, batchSize, steps int) *FrameDataset {
	rng := xrand.NewStream(seed, 0xf4a3)
	return &FrameDataset{
		seed: seed, FrameLen: frameLen, Classes: classes,
		BatchSize: batchSize, Steps: steps,
		patterns: tensor.Randn(rng, 1.0, classes, frameLen),
	}
}

// Batch returns frames (batch, FrameLen) and per-frame class labels.
func (d *FrameDataset) Batch(epoch, step int) (*tensor.Tensor, []int) {
	rng := batchRNG(d.seed, epoch, step)
	x := tensor.New(d.BatchSize, d.FrameLen)
	labels := make([]int, d.BatchSize)
	xd, pd := x.Data(), d.patterns.Data()
	for i := 0; i < d.BatchSize; i++ {
		cls := rng.Intn(d.Classes)
		labels[i] = cls
		for j := 0; j < d.FrameLen; j++ {
			xd[i*d.FrameLen+j] = pd[cls*d.FrameLen+j] + rng.NormFloat64()*0.3
		}
	}
	return x, labels
}

// Seq2SeqDataset generates translation-like pairs standing in for WMT16
// (RnnT): the target is a deterministic token-wise mapping of the source,
// so attention-based models can learn the correspondence.
type Seq2SeqDataset struct {
	seed      uint64
	Vocab     int
	SrcLen    int
	TgtLen    int
	BatchSize int
	Steps     int

	mapping []int // source token -> target token
}

// NewSeq2SeqDataset constructs the dataset with a seed-derived vocabulary
// mapping.
func NewSeq2SeqDataset(seed uint64, vocab, srcLen, tgtLen, batchSize, steps int) *Seq2SeqDataset {
	rng := xrand.NewStream(seed, 0x5e95)
	mapping := rng.Perm(vocab)
	return &Seq2SeqDataset{
		seed: seed, Vocab: vocab, SrcLen: srcLen, TgtLen: tgtLen,
		BatchSize: batchSize, Steps: steps, mapping: mapping,
	}
}

// Batch returns aligned (src, tgt) sentence pairs.
func (d *Seq2SeqDataset) Batch(epoch, step int) (srcs, tgts [][]int) {
	rng := batchRNG(d.seed, epoch, step)
	srcs = make([][]int, d.BatchSize)
	tgts = make([][]int, d.BatchSize)
	for i := 0; i < d.BatchSize; i++ {
		src := make([]int, d.SrcLen)
		for j := range src {
			src[j] = rng.Intn(d.Vocab)
		}
		tgt := make([]int, d.TgtLen)
		for j := range tgt {
			// Target tokens are mapped source tokens (clipped to TgtLen).
			if j < len(src) {
				tgt[j] = d.mapping[src[j]]
			} else {
				tgt[j] = d.mapping[src[len(src)-1]]
			}
		}
		srcs[i] = src
		tgts[i] = tgt
	}
	return srcs, tgts
}
