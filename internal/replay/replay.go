// Package replay implements Flor's replay phase: probe discovery by source
// diff, partial replay through SkipBlocks, and hindsight parallelism via the
// Flor generator (paper §3.2, §5.4).
//
// A replay partitions the main loop's iterator into contiguous segments, one
// per worker. Every worker executes the same instrumented program from the
// beginning: setup runs logically (imports, data loading, model
// construction), then the generator drives the main loop through two
// phases —
//
//	init_sgmnt: iterations replayed in SkipBlock initialization mode, which
//	            skips nested loops by restoring their Loop End Checkpoints.
//	            Strong initialization covers every iteration before the
//	            worker's segment; weak initialization jumps to the nearest
//	            materialized checkpoint at or before segment start.
//	work_sgmnt: the worker's own iterations in replay-execution mode, where
//	            probed loops re-execute (producing the hindsight logs) and
//	            unprobed loops restore.
//
// Workers share nothing and never communicate; their logs are concatenated
// in segment order, and the merged log is diffed against the record log
// (deferred correctness check, §5.2.2).
package replay

import (
	"fmt"
	"sync"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
	"flor.dev/flor/internal/store"
)

// InitMode selects the worker initialization strategy (paper §5.4.2).
type InitMode int

// Strong initialization replays every iteration preceding the work segment
// in init mode (the default: its correctness follows from the correctness of
// loop memoization). Weak initialization jumps to the checkpoint nearest the
// segment start.
const (
	Strong InitMode = iota
	Weak
)

// String renders the init mode.
func (m InitMode) String() string {
	if m == Weak {
		return "weak"
	}
	return "strong"
}

// Options configures a replay.
type Options struct {
	// Workers is the degree of hindsight parallelism G (default 1).
	Workers int
	// Init selects strong or weak worker initialization.
	Init InitMode
	// SkipDeferredCheck disables the record/replay log diff (used by
	// benchmarks that measure pure replay latency).
	SkipDeferredCheck bool
}

// Recording is the artifact a record run leaves behind: the checkpoint
// store, the saved program structure, and the record log.
type Recording struct {
	Store     *store.Store
	Shape     *script.ProgramShape
	RecordLog []string
}

// WorkerReport describes one parallel worker's replay.
type WorkerReport struct {
	PID           int
	Segment       [2]int // [start, end) main-loop iterations
	InitFrom      int    // first iteration replayed in init mode
	Logs          []string
	SetupNs       int64
	InitNs        int64
	WorkNs        int64
	RestoreNs     int64
	Restored      int
	RestoredBytes int64 // logical checkpoint bytes loaded by this worker
	Executed      int
}

// Result is the outcome of a replay.
type Result struct {
	Probes    map[string]bool
	NewLabels map[string]bool
	Logs      []string // merged logs in iteration order
	Anomalies []runlog.Anomaly
	Workers   []WorkerReport
	WallNs    int64
}

// Partition splits n iterations into at most g contiguous segments whose
// sizes differ by at most one (the Flor generator's iterator partitioning,
// §5.4.1). Segments are returned in order; fewer than g segments are
// returned when n < g.
func Partition(n, g int) [][2]int {
	if n <= 0 || g <= 0 {
		return nil
	}
	if g > n {
		g = n
	}
	segs := make([][2]int, 0, g)
	base := n / g
	rem := n % g
	start := 0
	for i := 0; i < g; i++ {
		size := base
		if i < rem {
			size++
		}
		segs = append(segs, [2]int{start, start + size})
		start += size
	}
	return segs
}

// MaxSpeedup returns the best achievable parallel speedup for n iterations
// over g workers: n / ⌈n/g⌉ (paper §6.3: 200 epochs on 16 GPUs → 15.38×).
func MaxSpeedup(n, g int) float64 {
	if n <= 0 || g <= 0 {
		return 0
	}
	per := (n + g - 1) / g
	return float64(n) / float64(per)
}

// Replay performs a hindsight-logging replay of a recorded run. factory must
// build a fresh instance of the (possibly probed) program on every call;
// each worker gets its own instance, environment, and SkipBlock runtime.
func Replay(rec *Recording, factory func() *script.Program, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	probeProgram := factory()
	diff, err := script.DiffHindsight(rec.Shape, probeProgram)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if probeProgram.Main == nil {
		return nil, fmt.Errorf("replay: program has no main loop")
	}
	n := probeProgram.Main.Iters
	segs := Partition(n, opts.Workers)

	res := &Result{Probes: diff.Probes, NewLabels: diff.NewLabels}
	res.Workers = make([]WorkerReport, len(segs))

	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for pid := range segs {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			report, err := runWorker(rec, factory, diff, segs[pid], pid, opts, pid == len(segs)-1)
			if err != nil {
				errs[pid] = err
				return
			}
			res.Workers[pid] = *report
		}(pid)
	}
	wg.Wait()
	res.WallNs = time.Since(t0).Nanoseconds()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, w := range res.Workers {
		res.Logs = append(res.Logs, w.Logs...)
	}
	if !opts.SkipDeferredCheck {
		res.Anomalies = runlog.DeferredCheck(rec.RecordLog, res.Logs, diff.NewLabels)
	}
	return res, nil
}

// runWorker executes one parallel worker: setup, initialization, work
// segment, and (for the last worker) the program tail.
func runWorker(rec *Recording, factory func() *script.Program, diff *script.DiffResult,
	seg [2]int, pid int, opts Options, last bool) (*WorkerReport, error) {

	p := factory()
	report := &WorkerReport{PID: pid, Segment: seg}

	// Each worker is its own process in the paper; here, its own program
	// instance, environment, tracker and SkipBlock runtime over the shared
	// (read-only) checkpoint store.
	tracker := adapt.New(adapt.DefaultEpsilon)
	mat := backmat.New(rec.Store, backmat.Fork)
	defer mat.Close()
	rt := skipblock.NewRuntime(p, tracker, mat, rec.Store)
	rt.SetProbes(diff.Probes)

	ctx := &script.Ctx{Env: script.NewEnv(), LoopHook: rt.Hook}

	// Phase 1: run every statement before the main loop (imports, data
	// loading, model construction — §5.4.2 "the first part").
	s0 := time.Now()
	if err := script.ExecStmts(ctx, p.Setup); err != nil {
		return nil, fmt.Errorf("replay: worker %d setup: %w", pid, err)
	}
	report.SetupNs = time.Since(s0).Nanoseconds()

	// Phase 2: initialization — restore the program state at iteration
	// seg[0] by replaying init_sgmnt in SkipBlock init mode. Log output is
	// suppressed: init iterations belong to other workers' segments.
	initFrom := 0
	if opts.Init == Weak && seg[0] > 0 {
		initFrom = weakAnchor(rec.Store, p, rt, seg[0]-1)
	}
	report.InitFrom = initFrom
	i0 := time.Now()
	if seg[0] > 0 {
		rt.SetMode(skipblock.ModeReplayInit)
		positionBlocks(p, rt, initFrom)
		ctx.Log = nil
		for e := initFrom; e < seg[0]; e++ {
			ctx.Env.SetInt(p.Main.IterVar, e)
			if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
				return nil, fmt.Errorf("replay: worker %d init iteration %d: %w", pid, e, err)
			}
		}
	}
	report.InitNs = time.Since(i0).Nanoseconds()

	// Phase 3: the work segment, in replay-execution mode with log capture.
	w0 := time.Now()
	rt.SetMode(skipblock.ModeReplayExec)
	lg := runlog.New()
	ctx.Log = lg.Append
	for e := seg[0]; e < seg[1]; e++ {
		ctx.Env.SetInt(p.Main.IterVar, e)
		if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
			return nil, fmt.Errorf("replay: worker %d iteration %d: %w", pid, e, err)
		}
	}
	// The final worker also runs the tail (post-loop statements).
	if last {
		if err := script.ExecStmts(ctx, p.Tail); err != nil {
			return nil, fmt.Errorf("replay: worker %d tail: %w", pid, err)
		}
	}
	report.WorkNs = time.Since(w0).Nanoseconds()
	report.Logs = lg.Lines()

	for _, id := range rt.Blocks() {
		b, _ := rt.Block(id)
		st := b.Stats()
		report.RestoreNs += st.RestoreNs
		report.Restored += st.Restored
		report.RestoredBytes += st.RestoredBytes
		report.Executed += st.Executed
	}
	return report, nil
}

// positionBlocks sets every SkipBlock's execution counter to its position at
// the start of main-loop iteration `epoch`.
func positionBlocks(p *script.Program, rt *skipblock.Runtime, epoch int) {
	for _, id := range rt.Blocks() {
		b, _ := rt.Block(id)
		mult := skipblock.ExecsPerMainIteration(p, id)
		b.SetExecIndex(epoch * mult)
	}
}

// weakAnchor returns the largest main-loop iteration e ≤ target such that
// every instrumented loop has checkpoints for all its executions during
// iteration e, so the whole iteration can be replayed by restoration alone.
// Falls back to 0 (strong initialization) when no such iteration exists.
func weakAnchor(st *store.Store, p *script.Program, rt *skipblock.Runtime, target int) int {
	ids := rt.Blocks()
	if len(ids) == 0 {
		return 0
	}
	for e := target; e >= 0; e-- {
		ok := true
		for _, id := range ids {
			mult := skipblock.ExecsPerMainIteration(p, id)
			for x := e * mult; x < (e+1)*mult; x++ {
				if !st.Has(store.Key{LoopID: id, Exec: x}) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return e
		}
	}
	return 0
}
