// Package replay implements Flor's replay phase: probe discovery by source
// diff, partial replay through SkipBlocks, and hindsight parallelism via the
// Flor generator (paper §3.2, §5.4).
//
// A replay partitions the main loop's iterator into contiguous segments
// (internal/sched owns the partitioners and the work-stealing executor).
// Every worker executes the same instrumented program from the beginning:
// setup runs logically (imports, data loading, model construction), then the
// generator drives the main loop through two phases —
//
//	init_sgmnt: iterations replayed in SkipBlock initialization mode, which
//	            skips nested loops by restoring their Loop End Checkpoints.
//	            Strong initialization covers every iteration before the
//	            worker's segment; weak initialization jumps to the nearest
//	            materialized checkpoint at or before segment start.
//	work_sgmnt: the worker's own iterations in replay-execution mode, where
//	            probed loops re-execute (producing the hindsight logs) and
//	            unprobed loops restore.
//
// Workers share nothing and never communicate beyond the lease bookkeeping
// of the stealing scheduler; each executed span of iterations carries its
// own log lines, and spans are merged in iteration order before the merged
// log is diffed against the record log (deferred correctness check, §5.2.2).
package replay

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/sched"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
	"flor.dev/flor/internal/store"
)

// InitMode selects the worker initialization strategy (paper §5.4.2); it is
// the scheduler's Init so replay and the cluster simulator price it alike.
type InitMode = sched.Init

// Strong initialization replays every iteration preceding the work segment
// in init mode (the default: its correctness follows from the correctness of
// loop memoization). Weak initialization jumps to the checkpoint nearest the
// segment start.
const (
	Strong = sched.Strong
	Weak   = sched.Weak
)

// Scheduler selects how main-loop iterations are distributed over workers.
type Scheduler = sched.Policy

// Replay scheduling policies.
const (
	// SchedStatic assigns uniform contiguous segments statically (the
	// original Flor generator partitioning).
	SchedStatic = sched.Static
	// SchedBalanced balances segments by recorded per-iteration cost and
	// snaps boundaries to materialized checkpoints.
	SchedBalanced = sched.Balanced
	// SchedStealing additionally lets idle workers steal the trailing half
	// of the heaviest remaining segment, re-initializing from the nearest
	// checkpoint.
	SchedStealing = sched.Stealing
)

// Options configures a replay.
type Options struct {
	// Workers is the degree of hindsight parallelism G (default 1).
	Workers int
	// Init selects strong or weak worker initialization.
	Init InitMode
	// Scheduler selects the segment scheduling policy (default SchedStatic).
	Scheduler Scheduler
	// SkipDeferredCheck disables the record/replay log diff (used by
	// benchmarks that measure pure replay latency).
	SkipDeferredCheck bool
	// Slots, when non-nil, gates every replay worker on a shared slot
	// source (normally a sched.Pool shared across concurrent queries in a
	// serving daemon). Each worker holds one slot for its whole lifetime —
	// setup, initialization, work — so the source's global budget bounds
	// actual parallelism across replays regardless of each query's Workers.
	// Nil means unlimited (the single-replay library default).
	Slots sched.SlotSource
	// Ctx bounds slot waits (a daemon's queueing deadline); nil means
	// context.Background().
	Ctx context.Context
	// Cache, when non-nil, replaces each worker's private decoded-payload
	// cache with a shared one, so a run's restored content stays hot across
	// queries (and across the workers of one replay).
	Cache *backmat.PayloadCache
	// Trace, when non-nil, collects per-worker phase spans (setup, init,
	// work, and a closing per-worker summary carrying restore-vs-step time).
	// Nil disables tracing at zero cost.
	Trace *obs.Trace
	// Prefetch, when positive, enables plan-driven speculative readahead on
	// remote-backed stores: each worker hints the checkpoint keys of up to
	// Prefetch main-loop iterations ahead of its restore front, background
	// warm workers pull their chunk spans into the cache tier while the
	// worker initializes and executes, and lease steals cancel speculation
	// the victim no longer owns. Zero disables prefetching; stores whose
	// reads are local ignore it (warming a local store buys nothing).
	Prefetch int
}

// Recording is the artifact a record run leaves behind: the checkpoint
// store, the saved program structure, the record log, and the per-iteration
// timings the record phase measured (nil for recordings made before timing
// capture existed; the scheduler then falls back to store metadata).
type Recording struct {
	Store     *store.Store
	Shape     *script.ProgramShape
	RecordLog []string
	Timings   *runlog.Timings

	// sched memoizes the recording-derived scheduling state. A serving
	// daemon replays the same immutable recording for many queries;
	// re-running the instrumented-loop discovery, anchor store scans, and
	// O(n) cost-model construction per request would pay back exactly the
	// latency the hot-store cache buys. Guarded by schedMu, built lazily.
	schedMu sync.Mutex
	sched   *schedState
}

// schedState is the memoized scheduler input derived from a recording. The
// loop set, multiplicities, and anchors depend only on the program
// structure (identical across probe variants — probes add log statements,
// not loops) and the immutable store; the cost model additionally depends
// on whether an instrumented inner loop is probed, the only query-dependent
// bit, so both variants are cached.
type schedState struct {
	ids     []string
	mult    map[string]int
	anchors []int
	costs   [2]*sched.Costs // indexed by probedInner
}

// schedStateFor returns the memoized loop/anchor state, building it on
// first use.
func (rec *Recording) schedStateFor(p *script.Program) *schedState {
	rec.schedMu.Lock()
	defer rec.schedMu.Unlock()
	if rec.sched == nil {
		ids, mult := instrumentedLoops(rec.Store, p)
		rec.sched = &schedState{
			ids:     ids,
			mult:    mult,
			anchors: anchoredIterations(rec.Store, p, ids, mult),
		}
	}
	return rec.sched
}

// costsFor returns the memoized cost model for the probedInner variant.
// Cached costs are priced with the recording's persisted c prior, which
// every query's fresh tracker starts from, so the first and the hundredth
// query see the same model; sched.Costs is read-only to its consumers and
// safe to share across concurrent replays.
func (rec *Recording) costsFor(st *schedState, p *script.Program, probedInner bool, tracker *adapt.Tracker) *sched.Costs {
	idx := 0
	if probedInner {
		idx = 1
	}
	rec.schedMu.Lock()
	defer rec.schedMu.Unlock()
	if st.costs[idx] == nil {
		st.costs[idx] = schedCosts(rec, p, st.ids, st.mult, st.anchors, probedInner, tracker)
	}
	return st.costs[idx]
}

// WorkerReport describes one parallel worker's replay.
type WorkerReport struct {
	PID           int
	Segment       [2]int // initial [start, end) main-loop lease
	InitFrom      int    // first iteration replayed in init mode
	Stolen        int    // leases acquired by stealing
	Logs          []string
	SetupNs       int64
	InitNs        int64
	WorkNs        int64
	RestoreNs     int64
	Restored      int
	RestoredBytes int64 // logical checkpoint bytes loaded by this worker
	Executed      int
	// Fetch attributes the worker's restored bytes to store fetch tiers
	// (mmap/scatter/ranged/cache/remote/cache-tier/singleflight). Zero
	// unless the replay was traced.
	Fetch store.FetchSnapshot
}

// Result is the outcome of a replay.
type Result struct {
	Probes    map[string]bool
	NewLabels map[string]bool
	Logs      []string // merged logs in iteration order
	Anomalies []runlog.Anomaly
	Workers   []WorkerReport
	Scheduler Scheduler
	Steals    int
	WallNs    int64
	// CFactor is the restore/materialize scaling factor after the replay:
	// the recording's prior refined by every restore this replay measured
	// (the cost-model feedback loop, paper §5.3.2).
	CFactor float64
}

// logSpan is the log output of one contiguous executed span of iterations;
// spans merge in start order, which is iteration order because claimed spans
// are disjoint. Tail output rides in the span that ends at the last
// iteration, which necessarily has the largest start.
type logSpan struct {
	start int
	lines []string
}

// mergeSpans flattens spans into one log in iteration order.
func mergeSpans(spans []logSpan) []string {
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	var out []string
	for _, s := range spans {
		out = append(out, s.lines...)
	}
	return out
}

// Partition splits n iterations into at most g contiguous segments whose
// sizes differ by at most one (the Flor generator's iterator partitioning,
// §5.4.1). Kept as the package's static-partition entry point; the balanced
// and stealing policies live in internal/sched.
func Partition(n, g int) [][2]int {
	return sched.PartitionStatic(n, g)
}

// MaxSpeedup returns the best achievable parallel speedup for n iterations
// over g workers: n / ⌈n/g⌉ (paper §6.3: 200 epochs on 16 GPUs → 15.38×).
func MaxSpeedup(n, g int) float64 {
	if n <= 0 || g <= 0 {
		return 0
	}
	per := (n + g - 1) / g
	return float64(n) / float64(per)
}

// Replay performs a hindsight-logging replay of a recorded run. factory must
// build a fresh instance of the (possibly probed) program on every call;
// each worker gets its own instance, environment, and SkipBlock runtime.
func Replay(rec *Recording, factory func() *script.Program, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	probeProgram := factory()
	diff, err := script.DiffHindsight(rec.Shape, probeProgram)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if probeProgram.Main == nil {
		return nil, fmt.Errorf("replay: program has no main loop")
	}
	n := probeProgram.Main.Iters

	// One adaptive tracker is shared by the scheduler's cost model and
	// every worker of this replay: restores measured by early segments
	// refine the restore/materialize factor c mid-replay
	// (skipblock.restore → adapt.NoteRestore), and the stealing executor
	// reprices later catch-up estimates through it (cost-model feedback,
	// paper §5.3.2).
	tracker := adapt.New(adapt.DefaultEpsilon)
	if rec.Timings != nil && rec.Timings.C > 0 {
		tracker.SeedC(rec.Timings.C)
	}
	priorC := tracker.C()

	// Anchors matter only to weak initialization and the non-static
	// schedulers; the cost model also prices slot requests whenever a
	// shared slot source is in play (its waiters are ordered by estimated
	// cost, which must be comparable across concurrent queries). The
	// default static/strong library path skips the store scans entirely.
	anchors := make([]int, 0)
	var costs *sched.Costs
	if opts.Init == Weak || opts.Scheduler != SchedStatic || opts.Slots != nil {
		st := rec.schedStateFor(probeProgram)
		anchors = st.anchors
		if opts.Scheduler != SchedStatic || opts.Slots != nil {
			// Work iterations re-execute at compute cost only when an
			// instrumented (restorable) loop itself is probed; an outer-only
			// probe leaves every nested loop restoring, so work is priced as
			// catch-up.
			probedInner := false
			for _, id := range st.ids {
				if diff.Probes[id] {
					probedInner = true
				}
			}
			costs = rec.costsFor(st, probeProgram, probedInner, tracker)
		}
	}

	env := &replayEnv{
		rec: rec, factory: factory, diff: diff, tracker: tracker, priorC: priorC,
		costs: costs, anchors: anchors, opts: opts, ctx: opts.Ctx,
	}
	if env.ctx == nil {
		env.ctx = context.Background()
	}
	if opts.Prefetch > 0 {
		// NewPrefetcher returns nil for local stores, and a nil prefetcher
		// no-ops everywhere, so the local path stays exactly as before.
		st := rec.schedStateFor(probeProgram)
		env.ids, env.mult = st.ids, st.mult
		env.prefetch = rec.Store.NewPrefetcher(0, opts.Trace)
		defer env.prefetch.Close()
	}

	res := &Result{Probes: diff.Probes, NewLabels: diff.NewLabels, Scheduler: opts.Scheduler}
	t0 := time.Now()
	var spans []logSpan
	if opts.Scheduler == SchedStealing && n > 0 {
		spans, err = replayStealing(env, n, res)
	} else {
		var segs [][2]int
		if opts.Scheduler == SchedBalanced {
			segs = sched.PartitionBalancedAnchored(costs, opts.Workers, opts.Init, anchors)
		} else {
			segs = sched.PartitionStatic(n, opts.Workers)
		}
		spans, err = replayStatic(env, segs, res)
	}
	if err != nil {
		return nil, err
	}
	res.WallNs = time.Since(t0).Nanoseconds()
	res.CFactor = tracker.C()
	res.Logs = mergeSpans(spans)
	if !opts.SkipDeferredCheck {
		res.Anomalies = runlog.DeferredCheck(rec.RecordLog, res.Logs, diff.NewLabels)
	}
	recordReplayMetrics(n, res)
	return res, nil
}

// recordReplayMetrics folds a finished replay into the metrics registry
// (no-op handles while disabled; one resolution per replay, off the hot
// iteration path).
func recordReplayMetrics(n int, res *Result) {
	obs.C(obs.MReplayReplays).Inc()
	obs.C(obs.MReplayIterations).Add(int64(n))
	restoreNs := obs.C(obs.MReplayRestoreNs)
	workNs := obs.C(obs.MReplayWorkNs)
	busyNs := obs.C(obs.MReplayWorkerBusyNs)
	restored := obs.C(obs.MReplayRestoredCheckpoints)
	restoredBytes := obs.C(obs.MReplayRestoredBytes)
	for _, wr := range res.Workers {
		restoreNs.Add(wr.RestoreNs)
		workNs.Add(wr.WorkNs)
		busyNs.Add(wr.SetupNs + wr.InitNs + wr.WorkNs)
		restored.Add(int64(wr.Restored))
		restoredBytes.Add(wr.RestoredBytes)
	}
}

// replayEnv bundles the per-replay state both scheduling paths thread
// through their workers.
type replayEnv struct {
	rec     *Recording
	factory func() *script.Program
	diff    *script.DiffResult
	tracker *adapt.Tracker
	priorC  float64
	costs   *sched.Costs
	anchors []int
	opts    Options
	ctx     context.Context
	// Plan-driven readahead state (nil/empty unless opts.Prefetch > 0 and
	// the recording's store reads remotely): the instrumented loop set and
	// multiplicities translate iteration plans into checkpoint keys for the
	// shared prefetcher.
	prefetch *store.Prefetcher
	ids      []string
	mult     map[string]int
}

// iterKeys returns the checkpoint keys the instrumented loops materialize
// during main-loop iteration e — the unit of prefetch planning.
func (env *replayEnv) iterKeys(e int) []store.Key {
	var keys []store.Key
	for _, id := range env.ids {
		m := env.mult[id]
		for x := e * m; x < (e+1)*m; x++ {
			keys = append(keys, store.Key{LoopID: id, Exec: x})
		}
	}
	return keys
}

// claimIter tells the prefetcher the restore front reached iteration e.
func (env *replayEnv) claimIter(e int) {
	if env.prefetch == nil {
		return
	}
	for _, k := range env.iterKeys(e) {
		env.prefetch.Claim(k)
	}
}

// hintIters enqueues the given iterations' checkpoint keys for warming.
// Re-hinting already-planned keys is free, so callers push their whole
// current horizon every time it moves.
func (env *replayEnv) hintIters(iters []int) {
	if env.prefetch == nil || len(iters) == 0 {
		return
	}
	var keys []store.Key
	for _, e := range iters {
		keys = append(keys, env.iterKeys(e)...)
	}
	env.prefetch.Hint(keys...)
}

// hintIterRange hints [start, end) — the static scheduler's fixed-window
// equivalent of a stealing lease's horizon.
func (env *replayEnv) hintIterRange(start, end int) {
	if env.prefetch == nil || start >= end {
		return
	}
	iters := make([]int, 0, end-start)
	for e := start; e < end; e++ {
		iters = append(iters, e)
	}
	env.hintIters(iters)
}

// cancelIters drops speculation for iterations the plan no longer owns
// (the stolen span of a lease).
func (env *replayEnv) cancelIters(start, end int) {
	if env.prefetch == nil {
		return
	}
	var keys []store.Key
	for e := start; e < end; e++ {
		keys = append(keys, env.iterKeys(e)...)
	}
	env.prefetch.Cancel(keys...)
}

// slotCost estimates one worker's total modeled cost (setup + init + work)
// for slot-queue ordering; zero when no cost model exists.
func (env *replayEnv) slotCost(seg [2]int) int64 {
	if env.costs == nil {
		return 0
	}
	return env.costs.SetupNs +
		env.costs.InitCostNs(seg[0], env.opts.Init, env.anchors) +
		env.costs.WorkCostNs(seg[0], seg[1])
}

// acquireSlot blocks until the shared slot source grants a slot (no-op
// without one). Callers must releaseSlot on success. Traced replays record
// the wait as a "slot_wait" span, so queue time is visible per worker.
func (env *replayEnv) acquireSlot(seg [2]int, pid int) error {
	if env.opts.Slots == nil {
		return nil
	}
	tr := env.opts.Trace
	t0 := tr.Now()
	w0 := time.Now()
	err := env.opts.Slots.Acquire(env.ctx, env.slotCost(seg))
	if tr != nil && err == nil {
		tr.Add(obs.Span{Name: "slot_wait", Worker: pid, StartNs: t0,
			DurNs: time.Since(w0).Nanoseconds()})
	}
	return err
}

func (env *replayEnv) releaseSlot() {
	if env.opts.Slots != nil {
		env.opts.Slots.Release()
	}
}

// replayStatic runs one worker per segment with static assignment (the
// SchedStatic and SchedBalanced policies). With a shared slot source, each
// worker first acquires a slot priced at its segment's modeled cost;
// segments are independent, so workers serialized by a tight budget still
// complete.
func replayStatic(env *replayEnv, segs [][2]int, res *Result) ([]logSpan, error) {
	res.Workers = make([]WorkerReport, len(segs))
	spans := make([]logSpan, len(segs))
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for pid := range segs {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if err := env.acquireSlot(segs[pid], pid); err != nil {
				errs[pid] = err
				return
			}
			defer env.releaseSlot()
			report, err := runWorker(env, segs[pid], pid, pid == len(segs)-1)
			if err != nil {
				errs[pid] = err
				return
			}
			res.Workers[pid] = *report
			spans[pid] = logSpan{start: segs[pid][0], lines: report.Logs}
		}(pid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return spans, nil
}

// replayStealing runs opts.Workers workers over a shared lease executor
// seeded with the balanced partition (the SchedStealing policy).
func replayStealing(env *replayEnv, n int, res *Result) ([]logSpan, error) {
	opts := env.opts
	g := opts.Workers
	if g > n {
		g = n
	}
	segs := sched.PartitionBalancedAnchored(env.costs, g, opts.Init, env.anchors)
	x := sched.NewExecutor(env.costs, segs, env.anchors)
	// Feedback: steal profitability rescales modeled catch-up by how far the
	// measured restore/materialize factor has drifted from the prior the
	// cost model was priced with. The scale is clamped: measured restores
	// are biased cheap when they hit the payload cache, while a stolen
	// lease's catch-up restores uncached content at full cost, so one
	// replay's drift may adjust — but never invert — the profit rule.
	x.SetRestoreScale(func() float64 {
		if env.priorC <= 0 {
			return 1
		}
		scale := env.tracker.C() / env.priorC
		if scale < 0.5 {
			scale = 0.5
		} else if scale > 2 {
			scale = 2
		}
		return scale
	})
	if env.prefetch != nil {
		// A successful steal invalidates the victim's speculation for the
		// stolen span; the thief re-hints what it still wants when it plans
		// its own horizon (Hint revives a cancelled-but-queued key).
		x.SetOnSteal(func(victimEnd, stolenStart, stolenEnd int) {
			env.cancelIters(stolenStart, stolenEnd)
		})
	}

	res.Workers = make([]WorkerReport, g)
	workerSpans := make([][]logSpan, g)
	var wg sync.WaitGroup
	errs := make([]error, g)
	for pid := 0; pid < g; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			seg := [2]int{0, 0}
			if pid < len(segs) {
				seg = segs[pid]
			}
			if err := env.acquireSlot(seg, pid); err != nil {
				errs[pid] = err
				return
			}
			defer env.releaseSlot()
			report, spans, err := runStealingWorker(env, x, pid, n)
			if err != nil {
				errs[pid] = err
				return
			}
			res.Workers[pid] = *report
			workerSpans[pid] = spans
		}(pid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Steals = x.Steals()
	var spans []logSpan
	for _, ws := range workerSpans {
		spans = append(spans, ws...)
	}
	return spans, nil
}

// worker bundles one replay worker's per-process state. Each worker is its
// own process in the paper; here, its own program instance, environment,
// tracker and SkipBlock runtime over the shared (read-only) checkpoint
// store. Both scheduling paths (static segments and stealing leases) share
// this lifecycle: construction + setup, initTo, work iterations, tail.
type worker struct {
	p      *script.Program
	rt     *skipblock.Runtime
	mat    *backmat.Materializer
	ctx    *script.Ctx
	pid    int
	report *WorkerReport
	tr     *obs.Trace // nil when the replay is untraced
}

// newWorker builds a worker and runs phase 1: every statement before the
// main loop (imports, data loading, model construction — §5.4.2 "the first
// part"). Callers must close() the worker. Workers share the replay's
// tracker (restore observations feed the scheduler's cost model) and, when
// configured, a cross-query payload cache.
func newWorker(env *replayEnv, pid int) (*worker, error) {
	p := env.factory()
	mat := backmat.New(env.rec.Store, backmat.Fork)
	rt := skipblock.NewRuntime(p, env.tracker, mat, env.rec.Store)
	rt.SetCache(env.opts.Cache)
	rt.SetTrace(env.opts.Trace, pid)
	rt.SetProbes(env.diff.Probes)
	w := &worker{
		p: p, rt: rt, mat: mat, pid: pid,
		ctx:    &script.Ctx{Env: script.NewEnv(), LoopHook: rt.Hook},
		report: &WorkerReport{PID: pid},
		tr:     env.opts.Trace,
	}
	t0 := w.tr.Now()
	s0 := time.Now()
	if err := script.ExecStmts(w.ctx, p.Setup); err != nil {
		mat.Close()
		return nil, fmt.Errorf("replay: worker %d setup: %w", pid, err)
	}
	w.report.SetupNs = time.Since(s0).Nanoseconds()
	w.tr.Add(obs.Span{Name: "setup", Worker: pid, StartNs: t0, DurNs: w.report.SetupNs})
	return w, nil
}

func (w *worker) close() { w.mat.Close() }

// initTo restores the program state at iteration start by replaying
// [initFrom, start) in SkipBlock init mode. Log output is suppressed: init
// iterations belong to other workers' segments. Block execution counters
// are repositioned first, so initTo is correct from any current position
// (the stealing path re-initializes mid-replay).
func (w *worker) initTo(initFrom, start int) error {
	t0 := w.tr.Now()
	i0 := time.Now()
	w.rt.SetMode(skipblock.ModeReplayInit)
	positionBlocks(w.p, w.rt, initFrom)
	w.ctx.Log = nil
	for e := initFrom; e < start; e++ {
		w.ctx.Env.SetInt(w.p.Main.IterVar, e)
		if err := script.ExecStmts(w.ctx, w.p.Main.Body); err != nil {
			return fmt.Errorf("replay: worker %d init iteration %d: %w", w.pid, e, err)
		}
	}
	dur := time.Since(i0).Nanoseconds()
	w.report.InitNs += dur
	if w.tr != nil {
		w.tr.Add(obs.Span{Name: "init", Worker: w.pid, StartNs: t0, DurNs: dur,
			Attrs: map[string]int64{"from": int64(initFrom), "to": int64(start)}})
	}
	return nil
}

// runIteration executes one work iteration; the caller has set
// ModeReplayExec and log capture.
func (w *worker) runIteration(e int) error {
	w.ctx.Env.SetInt(w.p.Main.IterVar, e)
	if err := script.ExecStmts(w.ctx, w.p.Main.Body); err != nil {
		return fmt.Errorf("replay: worker %d iteration %d: %w", w.pid, e, err)
	}
	return nil
}

// runTail executes the post-loop statements.
func (w *worker) runTail() error {
	if err := script.ExecStmts(w.ctx, w.p.Tail); err != nil {
		return fmt.Errorf("replay: worker %d tail: %w", w.pid, err)
	}
	return nil
}

// finish folds every SkipBlock's counters into the report, emits the
// worker's closing trace span (restore vs step time, restored volume), and
// returns the report.
func (w *worker) finish() *WorkerReport {
	for _, id := range w.rt.Blocks() {
		b, _ := w.rt.Block(id)
		st := b.Stats()
		w.report.RestoreNs += st.RestoreNs
		w.report.Restored += st.Restored
		w.report.RestoredBytes += st.RestoredBytes
		w.report.Executed += st.Executed
	}
	w.report.Fetch = w.rt.FetchSnapshot()
	if w.tr != nil {
		w.tr.Add(obs.Span{Name: "worker", Worker: w.pid, StartNs: w.tr.Now(),
			DurNs: w.report.SetupNs + w.report.InitNs + w.report.WorkNs,
			Attrs: map[string]int64{
				"setup_ns":           w.report.SetupNs,
				"init_ns":            w.report.InitNs,
				"work_ns":            w.report.WorkNs,
				"restore_ns":         w.report.RestoreNs,
				"restored":           int64(w.report.Restored),
				"restored_bytes":     w.report.RestoredBytes,
				"executed":           int64(w.report.Executed),
				"mmap_bytes":         w.report.Fetch.MmapBytes,
				"scatter_bytes":      w.report.Fetch.ScatterBytes,
				"ranged_bytes":       w.report.Fetch.RangedBytes,
				"cache_bytes":        w.report.Fetch.CacheBytes,
				"remote_bytes":       w.report.Fetch.RemoteBytes,
				"cache_tier_bytes":   w.report.Fetch.CacheTierBytes,
				"singleflight_bytes": w.report.Fetch.SingleflightBytes,
			}})
	}
	return w.report
}

// runWorker executes one statically assigned worker: setup, initialization,
// work segment, and (for the last worker) the program tail.
func runWorker(env *replayEnv, seg [2]int, pid int, last bool) (*WorkerReport, error) {
	w, err := newWorker(env, pid)
	if err != nil {
		return nil, err
	}
	defer w.close()
	w.report.Segment = seg

	// Phase 2: initialization — strong catches up from 0, weak from the
	// nearest anchored checkpoint.
	initFrom := 0
	if env.opts.Init == Weak && seg[0] > 0 {
		initFrom = sched.AnchorBefore(env.anchors, seg[0]-1)
	}
	w.report.InitFrom = initFrom
	// Warm the segment's opening window while initialization replays toward
	// it; static segments never shrink, so no cancellation path is needed.
	hintEnd := seg[0] + env.opts.Prefetch
	if hintEnd > seg[1] {
		hintEnd = seg[1]
	}
	env.hintIterRange(seg[0], hintEnd)
	if seg[0] > 0 {
		if err := w.initTo(initFrom, seg[0]); err != nil {
			return nil, err
		}
	}

	// Phase 3: the work segment, in replay-execution mode with log capture.
	t0 := w.tr.Now()
	w0 := time.Now()
	w.rt.SetMode(skipblock.ModeReplayExec)
	lg := runlog.New()
	w.ctx.Log = lg.Append
	for e := seg[0]; e < seg[1]; e++ {
		env.claimIter(e)
		if next := e + 1 + env.opts.Prefetch; next <= seg[1] {
			env.hintIterRange(e+1, next)
		} else {
			env.hintIterRange(e+1, seg[1])
		}
		if err := w.runIteration(e); err != nil {
			return nil, err
		}
	}
	// The final worker also runs the tail (post-loop statements).
	if last {
		if err := w.runTail(); err != nil {
			return nil, err
		}
	}
	w.report.WorkNs = time.Since(w0).Nanoseconds()
	if w.tr != nil {
		w.tr.Add(obs.Span{Name: "work", Worker: pid, StartNs: t0, DurNs: w.report.WorkNs,
			Attrs: map[string]int64{"start": int64(seg[0]), "end": int64(seg[1])}})
	}
	w.report.Logs = lg.Lines()
	return w.finish(), nil
}

// runStealingWorker executes one worker of the stealing scheduler: setup
// once, then a loop of leases — the statically assigned one first, stolen
// remainders after. Before each lease whose start differs from the worker's
// current position, the worker re-initializes: from iteration 0 (strong,
// first lease only) or from the nearest anchored checkpoint (weak; always,
// for stolen leases). The worker whose final lease ends at the last
// iteration runs the program tail immediately, while its state is current.
func runStealingWorker(env *replayEnv, x *sched.Executor, pid, n int) (*WorkerReport, []logSpan, error) {
	w, err := newWorker(env, pid)
	if err != nil {
		return nil, nil, err
	}
	defer w.close()

	var spans []logSpan
	pos := 0 // the main-loop iteration the program state currently sits at
	first := true
	lease := x.InitialLease(pid)
	if lease != nil {
		s, e := lease.Bounds()
		w.report.Segment = [2]int{s, e}
	}
	for {
		isStolen := false
		if lease == nil {
			var ok bool
			if lease, ok = x.Steal(); !ok {
				break
			}
			w.report.Stolen++
			isStolen = true
		}
		start := lease.Start()
		// Warm the lease's opening horizon while initialization replays
		// toward it — the window where speculative fetch overlaps catch-up
		// compute for free.
		env.hintIters(lease.Horizon(env.opts.Prefetch))

		// Initialization to the lease start. A lease adjacent to the
		// worker's current position needs none; otherwise stolen leases
		// always use weak (checkpoint-anchored) initialization — stealing
		// only targets splits with a reachable anchor. start==0 re-inits
		// only the block counters (the init loop is empty).
		if start != pos {
			initFrom := 0
			if !first || env.opts.Init == Weak {
				initFrom = sched.AnchorBefore(env.anchors, start-1)
			}
			if first {
				w.report.InitFrom = initFrom
			}
			if err := w.initTo(initFrom, start); err != nil {
				return nil, nil, err
			}
		}

		// Work phase: claim iterations until the lease is exhausted (either
		// finished or stolen down to the worker's position).
		t0 := w.tr.Now()
		w0 := time.Now()
		w.rt.SetMode(skipblock.ModeReplayExec)
		span := logSpan{start: start}
		w.ctx.Log = func(line string) { span.lines = append(span.lines, line) }
		for {
			e, ok := lease.Next()
			if !ok {
				break
			}
			// The restore front reached e: settle its hints as used, slide
			// the speculation window to the lease's new horizon.
			env.claimIter(e)
			env.hintIters(lease.Horizon(env.opts.Prefetch))
			it0 := time.Now()
			if err := w.runIteration(e); err != nil {
				return nil, nil, err
			}
			// Feed the measured iteration time back into the executor: steal
			// profitability then weighs real per-iteration work (including
			// the restore cost actually paid) against catch-up, instead of
			// trusting the recording-derived estimate for the whole replay.
			x.NoteIterDone(e, time.Since(it0).Nanoseconds())
		}
		_, end := lease.Bounds()
		pos = end
		// The lease reaching the loop's end is unique (ends only move by
		// splitting); its owner runs the tail while positioned at n.
		if end == n {
			if err := w.runTail(); err != nil {
				return nil, nil, err
			}
		}
		leaseNs := time.Since(w0).Nanoseconds()
		w.report.WorkNs += leaseNs
		if w.tr != nil {
			stolen := int64(0)
			if isStolen {
				stolen = 1
			}
			w.tr.Add(obs.Span{Name: "work", Worker: pid, StartNs: t0, DurNs: leaseNs,
				Attrs: map[string]int64{"start": int64(start), "end": int64(end), "stolen": stolen}})
		}
		spans = append(spans, span)
		w.report.Logs = append(w.report.Logs, span.lines...)
		lease = nil
		first = false
	}
	return w.finish(), spans, nil
}

// positionBlocks sets every SkipBlock's execution counter to its position at
// the start of main-loop iteration `epoch`.
func positionBlocks(p *script.Program, rt *skipblock.Runtime, epoch int) {
	for _, id := range rt.Blocks() {
		b, _ := rt.Block(id)
		mult := skipblock.ExecsPerMainIteration(p, id)
		b.SetExecIndex(epoch * mult)
	}
}

// instrumentedLoops returns the IDs of the program's memoizable nested
// loops, sorted, with their executions per main-loop iteration — the loops
// whose checkpoints drive anchoring and restore-cost estimates.
func instrumentedLoops(st *store.Store, p *script.Program) ([]string, map[string]int) {
	rt := skipblock.NewRuntime(p, adapt.New(0), nil, st)
	ids := rt.Blocks()
	sort.Strings(ids)
	mult := make(map[string]int, len(ids))
	for _, id := range ids {
		mult[id] = skipblock.ExecsPerMainIteration(p, id)
	}
	return ids, mult
}

// anchoredIterations returns, sorted, every main-loop iteration e whose
// instrumented loops all have materialized checkpoints for every execution
// during e — the iterations weak initialization can jump to and stealing can
// re-initialize from. A program with no instrumented loops anchors nothing
// (there are no checkpoints to restore).
func anchoredIterations(st *store.Store, p *script.Program, ids []string, mult map[string]int) []int {
	anchors := make([]int, 0)
	if len(ids) == 0 || p.Main == nil {
		return anchors
	}
	for e := 0; e < p.Main.Iters; e++ {
		if iterationAnchored(st, ids, mult, e) {
			anchors = append(anchors, e)
		}
	}
	return anchors
}

// iterationAnchored is the single definition of "anchored": every
// instrumented loop has a materialized checkpoint for each of its
// executions during main-loop iteration e. anchoredIterations (the
// scheduler) and weakAnchor (iteration sampling) both use it.
func iterationAnchored(st *store.Store, ids []string, mult map[string]int, e int) bool {
	for _, id := range ids {
		m := mult[id]
		for x := e * m; x < (e+1)*m; x++ {
			if !st.Has(store.Key{LoopID: id, Exec: x}) {
				return false
			}
		}
	}
	return true
}

// weakAnchor returns the largest main-loop iteration e ≤ target such that
// iteration e is anchored, so the whole iteration can be replayed by
// restoration alone. Falls back to 0 (strong initialization) when no such
// iteration exists.
func weakAnchor(st *store.Store, p *script.Program, rt *skipblock.Runtime, target int) int {
	ids := rt.Blocks()
	if len(ids) == 0 {
		return 0
	}
	mult := make(map[string]int, len(ids))
	for _, id := range ids {
		mult[id] = skipblock.ExecsPerMainIteration(p, id)
	}
	for e := target; e >= 0; e-- {
		if iterationAnchored(st, ids, mult, e) {
			return e
		}
	}
	return 0
}

// schedCosts derives the scheduler's cost model for this replay from the
// recording. Work costs come from the record phase's per-iteration timings
// when the inner loop is probed (it re-executes), and from restore estimates
// otherwise; catch-up costs are restore estimates on anchored iterations and
// re-execution costs elsewhere (the sparse-checkpoint fallback). Restore
// times are predicted from materialization times through the restore/
// materialize scaling factor the record phase measured (§5.3.2, persisted
// with the timings). Recordings made before timing capture fall back to
// checkpoint metadata, and to a uniform model when no cost data exists.
// tracker prices restore predictions; Replay passes the shared per-replay
// tracker so the same c-factor prior prices scheduling and is later refined
// by the workers' measured restores.
func schedCosts(rec *Recording, p *script.Program, ids []string, mult map[string]int,
	anchors []int, probed bool, tracker *adapt.Tracker) *sched.Costs {

	n := p.Main.Iters

	// Per-iteration compute: recorded wall times, else store metadata.
	comput := make([]int64, n)
	if rec.Timings != nil && len(rec.Timings.IterNs) == n {
		copy(comput, rec.Timings.IterNs)
	} else {
		var sum, cnt int64
		for e := 0; e < n; e++ {
			for _, id := range ids {
				m := mult[id]
				for x := e * m; x < (e+1)*m; x++ {
					if meta, ok := rec.Store.Lookup(store.Key{LoopID: id, Exec: x}); ok && meta.ComputNs > 0 {
						comput[e] += meta.ComputNs
					}
				}
			}
			if comput[e] > 0 {
				sum += comput[e]
				cnt++
			}
		}
		if cnt > 0 {
			mean := sum / cnt
			for e := range comput {
				if comput[e] == 0 {
					comput[e] = mean
				}
			}
		}
	}

	// Per-iteration restore estimate from materialization metadata.
	restore := make([]int64, n)
	for e := 0; e < n; e++ {
		for _, id := range ids {
			m := mult[id]
			for x := e * m; x < (e+1)*m; x++ {
				if meta, ok := rec.Store.Lookup(store.Key{LoopID: id, Exec: x}); ok {
					// Price each loop's restores with its own c estimate:
					// nested loops can sit far apart in restore/materialize
					// ratio, and the balanced partition skews when one
					// global factor prices both.
					restore[e] += tracker.PredictRestoreNsLoop(id, meta.MaterNs)
				}
			}
		}
	}

	anchored := make(map[int]bool, len(anchors))
	for _, a := range anchors {
		anchored[a] = true
	}
	c := &sched.Costs{WorkNs: make([]int64, n), CatchupNs: make([]int64, n)}
	if rec.Timings != nil {
		c.SetupNs = rec.Timings.SetupNs
	}
	var total int64
	for e := 0; e < n; e++ {
		if anchored[e] {
			c.CatchupNs[e] = restore[e]
		} else {
			c.CatchupNs[e] = comput[e]
		}
		if probed {
			c.WorkNs[e] = comput[e]
		} else {
			c.WorkNs[e] = c.CatchupNs[e]
		}
		total += c.WorkNs[e]
	}
	if total == 0 {
		// No usable cost data: uniform work costs so Balanced degenerates
		// to Static and Stealing splits by count.
		for e := range c.WorkNs {
			c.WorkNs[e] = 1
		}
	}
	return c
}
