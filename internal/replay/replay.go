// Package replay implements Flor's replay phase: probe discovery by source
// diff, partial replay through SkipBlocks, and hindsight parallelism via the
// Flor generator (paper §3.2, §5.4).
//
// A replay partitions the main loop's iterator into contiguous segments
// (internal/sched owns the partitioners and the work-stealing executor).
// Every worker executes the same instrumented program from the beginning:
// setup runs logically (imports, data loading, model construction), then the
// generator drives the main loop through two phases —
//
//	init_sgmnt: iterations replayed in SkipBlock initialization mode, which
//	            skips nested loops by restoring their Loop End Checkpoints.
//	            Strong initialization covers every iteration before the
//	            worker's segment; weak initialization jumps to the nearest
//	            materialized checkpoint at or before segment start.
//	work_sgmnt: the worker's own iterations in replay-execution mode, where
//	            probed loops re-execute (producing the hindsight logs) and
//	            unprobed loops restore.
//
// Workers share nothing and never communicate beyond the lease bookkeeping
// of the stealing scheduler; each executed span of iterations carries its
// own log lines, and spans are merged in iteration order before the merged
// log is diffed against the record log (deferred correctness check, §5.2.2).
package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/sched"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
	"flor.dev/flor/internal/store"
)

// InitMode selects the worker initialization strategy (paper §5.4.2); it is
// the scheduler's Init so replay and the cluster simulator price it alike.
type InitMode = sched.Init

// Strong initialization replays every iteration preceding the work segment
// in init mode (the default: its correctness follows from the correctness of
// loop memoization). Weak initialization jumps to the checkpoint nearest the
// segment start.
const (
	Strong = sched.Strong
	Weak   = sched.Weak
)

// Scheduler selects how main-loop iterations are distributed over workers.
type Scheduler = sched.Policy

// Replay scheduling policies.
const (
	// SchedStatic assigns uniform contiguous segments statically (the
	// original Flor generator partitioning).
	SchedStatic = sched.Static
	// SchedBalanced balances segments by recorded per-iteration cost and
	// snaps boundaries to materialized checkpoints.
	SchedBalanced = sched.Balanced
	// SchedStealing additionally lets idle workers steal the trailing half
	// of the heaviest remaining segment, re-initializing from the nearest
	// checkpoint.
	SchedStealing = sched.Stealing
)

// Options configures a replay.
type Options struct {
	// Workers is the degree of hindsight parallelism G (default 1).
	Workers int
	// Init selects strong or weak worker initialization.
	Init InitMode
	// Scheduler selects the segment scheduling policy (default SchedStatic).
	Scheduler Scheduler
	// SkipDeferredCheck disables the record/replay log diff (used by
	// benchmarks that measure pure replay latency).
	SkipDeferredCheck bool
}

// Recording is the artifact a record run leaves behind: the checkpoint
// store, the saved program structure, the record log, and the per-iteration
// timings the record phase measured (nil for recordings made before timing
// capture existed; the scheduler then falls back to store metadata).
type Recording struct {
	Store     *store.Store
	Shape     *script.ProgramShape
	RecordLog []string
	Timings   *runlog.Timings
}

// WorkerReport describes one parallel worker's replay.
type WorkerReport struct {
	PID           int
	Segment       [2]int // initial [start, end) main-loop lease
	InitFrom      int    // first iteration replayed in init mode
	Stolen        int    // leases acquired by stealing
	Logs          []string
	SetupNs       int64
	InitNs        int64
	WorkNs        int64
	RestoreNs     int64
	Restored      int
	RestoredBytes int64 // logical checkpoint bytes loaded by this worker
	Executed      int
}

// Result is the outcome of a replay.
type Result struct {
	Probes    map[string]bool
	NewLabels map[string]bool
	Logs      []string // merged logs in iteration order
	Anomalies []runlog.Anomaly
	Workers   []WorkerReport
	Scheduler Scheduler
	Steals    int
	WallNs    int64
}

// logSpan is the log output of one contiguous executed span of iterations;
// spans merge in start order, which is iteration order because claimed spans
// are disjoint. Tail output rides in the span that ends at the last
// iteration, which necessarily has the largest start.
type logSpan struct {
	start int
	lines []string
}

// mergeSpans flattens spans into one log in iteration order.
func mergeSpans(spans []logSpan) []string {
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	var out []string
	for _, s := range spans {
		out = append(out, s.lines...)
	}
	return out
}

// Partition splits n iterations into at most g contiguous segments whose
// sizes differ by at most one (the Flor generator's iterator partitioning,
// §5.4.1). Kept as the package's static-partition entry point; the balanced
// and stealing policies live in internal/sched.
func Partition(n, g int) [][2]int {
	return sched.PartitionStatic(n, g)
}

// MaxSpeedup returns the best achievable parallel speedup for n iterations
// over g workers: n / ⌈n/g⌉ (paper §6.3: 200 epochs on 16 GPUs → 15.38×).
func MaxSpeedup(n, g int) float64 {
	if n <= 0 || g <= 0 {
		return 0
	}
	per := (n + g - 1) / g
	return float64(n) / float64(per)
}

// Replay performs a hindsight-logging replay of a recorded run. factory must
// build a fresh instance of the (possibly probed) program on every call;
// each worker gets its own instance, environment, and SkipBlock runtime.
func Replay(rec *Recording, factory func() *script.Program, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	probeProgram := factory()
	diff, err := script.DiffHindsight(rec.Shape, probeProgram)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if probeProgram.Main == nil {
		return nil, fmt.Errorf("replay: program has no main loop")
	}
	n := probeProgram.Main.Iters
	// Anchors matter only to weak initialization and the non-static
	// schedulers, and the cost model only to the latter; the default
	// static/strong path skips the store scans entirely.
	anchors := make([]int, 0)
	var costs *sched.Costs
	if opts.Init == Weak || opts.Scheduler != SchedStatic {
		ids, mult := instrumentedLoops(rec.Store, probeProgram)
		anchors = anchoredIterations(rec.Store, probeProgram, ids, mult)
		if opts.Scheduler != SchedStatic {
			// Work iterations re-execute at compute cost only when an
			// instrumented (restorable) loop itself is probed; an outer-only
			// probe leaves every nested loop restoring, so work is priced as
			// catch-up.
			probedInner := false
			for _, id := range ids {
				if diff.Probes[id] {
					probedInner = true
				}
			}
			costs = schedCosts(rec, probeProgram, ids, mult, anchors, probedInner)
		}
	}

	res := &Result{Probes: diff.Probes, NewLabels: diff.NewLabels, Scheduler: opts.Scheduler}
	t0 := time.Now()
	var spans []logSpan
	if opts.Scheduler == SchedStealing && n > 0 {
		spans, err = replayStealing(rec, factory, diff, costs, anchors, opts, n, res)
	} else {
		var segs [][2]int
		if opts.Scheduler == SchedBalanced {
			segs = sched.PartitionBalancedAnchored(costs, opts.Workers, opts.Init, anchors)
		} else {
			segs = sched.PartitionStatic(n, opts.Workers)
		}
		spans, err = replayStatic(rec, factory, diff, segs, anchors, opts, res)
	}
	if err != nil {
		return nil, err
	}
	res.WallNs = time.Since(t0).Nanoseconds()
	res.Logs = mergeSpans(spans)
	if !opts.SkipDeferredCheck {
		res.Anomalies = runlog.DeferredCheck(rec.RecordLog, res.Logs, diff.NewLabels)
	}
	return res, nil
}

// replayStatic runs one worker per segment with static assignment (the
// SchedStatic and SchedBalanced policies).
func replayStatic(rec *Recording, factory func() *script.Program, diff *script.DiffResult,
	segs [][2]int, anchors []int, opts Options, res *Result) ([]logSpan, error) {

	res.Workers = make([]WorkerReport, len(segs))
	spans := make([]logSpan, len(segs))
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for pid := range segs {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			report, err := runWorker(rec, factory, diff, segs[pid], anchors, pid, opts, pid == len(segs)-1)
			if err != nil {
				errs[pid] = err
				return
			}
			res.Workers[pid] = *report
			spans[pid] = logSpan{start: segs[pid][0], lines: report.Logs}
		}(pid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return spans, nil
}

// replayStealing runs opts.Workers workers over a shared lease executor
// seeded with the balanced partition (the SchedStealing policy).
func replayStealing(rec *Recording, factory func() *script.Program, diff *script.DiffResult,
	costs *sched.Costs, anchors []int, opts Options, n int, res *Result) ([]logSpan, error) {

	g := opts.Workers
	if g > n {
		g = n
	}
	segs := sched.PartitionBalancedAnchored(costs, g, opts.Init, anchors)
	x := sched.NewExecutor(costs, segs, anchors)

	res.Workers = make([]WorkerReport, g)
	workerSpans := make([][]logSpan, g)
	var wg sync.WaitGroup
	errs := make([]error, g)
	for pid := 0; pid < g; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			report, spans, err := runStealingWorker(rec, factory, diff, x, anchors, pid, n, opts)
			if err != nil {
				errs[pid] = err
				return
			}
			res.Workers[pid] = *report
			workerSpans[pid] = spans
		}(pid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Steals = x.Steals()
	var spans []logSpan
	for _, ws := range workerSpans {
		spans = append(spans, ws...)
	}
	return spans, nil
}

// worker bundles one replay worker's per-process state. Each worker is its
// own process in the paper; here, its own program instance, environment,
// tracker and SkipBlock runtime over the shared (read-only) checkpoint
// store. Both scheduling paths (static segments and stealing leases) share
// this lifecycle: construction + setup, initTo, work iterations, tail.
type worker struct {
	p      *script.Program
	rt     *skipblock.Runtime
	mat    *backmat.Materializer
	ctx    *script.Ctx
	pid    int
	report *WorkerReport
}

// newWorker builds a worker and runs phase 1: every statement before the
// main loop (imports, data loading, model construction — §5.4.2 "the first
// part"). Callers must close() the worker.
func newWorker(rec *Recording, factory func() *script.Program, diff *script.DiffResult, pid int) (*worker, error) {
	p := factory()
	tracker := adapt.New(adapt.DefaultEpsilon)
	mat := backmat.New(rec.Store, backmat.Fork)
	rt := skipblock.NewRuntime(p, tracker, mat, rec.Store)
	rt.SetProbes(diff.Probes)
	w := &worker{
		p: p, rt: rt, mat: mat, pid: pid,
		ctx:    &script.Ctx{Env: script.NewEnv(), LoopHook: rt.Hook},
		report: &WorkerReport{PID: pid},
	}
	s0 := time.Now()
	if err := script.ExecStmts(w.ctx, p.Setup); err != nil {
		mat.Close()
		return nil, fmt.Errorf("replay: worker %d setup: %w", pid, err)
	}
	w.report.SetupNs = time.Since(s0).Nanoseconds()
	return w, nil
}

func (w *worker) close() { w.mat.Close() }

// initTo restores the program state at iteration start by replaying
// [initFrom, start) in SkipBlock init mode. Log output is suppressed: init
// iterations belong to other workers' segments. Block execution counters
// are repositioned first, so initTo is correct from any current position
// (the stealing path re-initializes mid-replay).
func (w *worker) initTo(initFrom, start int) error {
	i0 := time.Now()
	w.rt.SetMode(skipblock.ModeReplayInit)
	positionBlocks(w.p, w.rt, initFrom)
	w.ctx.Log = nil
	for e := initFrom; e < start; e++ {
		w.ctx.Env.SetInt(w.p.Main.IterVar, e)
		if err := script.ExecStmts(w.ctx, w.p.Main.Body); err != nil {
			return fmt.Errorf("replay: worker %d init iteration %d: %w", w.pid, e, err)
		}
	}
	w.report.InitNs += time.Since(i0).Nanoseconds()
	return nil
}

// runIteration executes one work iteration; the caller has set
// ModeReplayExec and log capture.
func (w *worker) runIteration(e int) error {
	w.ctx.Env.SetInt(w.p.Main.IterVar, e)
	if err := script.ExecStmts(w.ctx, w.p.Main.Body); err != nil {
		return fmt.Errorf("replay: worker %d iteration %d: %w", w.pid, e, err)
	}
	return nil
}

// runTail executes the post-loop statements.
func (w *worker) runTail() error {
	if err := script.ExecStmts(w.ctx, w.p.Tail); err != nil {
		return fmt.Errorf("replay: worker %d tail: %w", w.pid, err)
	}
	return nil
}

// finish folds every SkipBlock's counters into the report and returns it.
func (w *worker) finish() *WorkerReport {
	for _, id := range w.rt.Blocks() {
		b, _ := w.rt.Block(id)
		st := b.Stats()
		w.report.RestoreNs += st.RestoreNs
		w.report.Restored += st.Restored
		w.report.RestoredBytes += st.RestoredBytes
		w.report.Executed += st.Executed
	}
	return w.report
}

// runWorker executes one statically assigned worker: setup, initialization,
// work segment, and (for the last worker) the program tail.
func runWorker(rec *Recording, factory func() *script.Program, diff *script.DiffResult,
	seg [2]int, anchors []int, pid int, opts Options, last bool) (*WorkerReport, error) {

	w, err := newWorker(rec, factory, diff, pid)
	if err != nil {
		return nil, err
	}
	defer w.close()
	w.report.Segment = seg

	// Phase 2: initialization — strong catches up from 0, weak from the
	// nearest anchored checkpoint.
	initFrom := 0
	if opts.Init == Weak && seg[0] > 0 {
		initFrom = sched.AnchorBefore(anchors, seg[0]-1)
	}
	w.report.InitFrom = initFrom
	if seg[0] > 0 {
		if err := w.initTo(initFrom, seg[0]); err != nil {
			return nil, err
		}
	}

	// Phase 3: the work segment, in replay-execution mode with log capture.
	w0 := time.Now()
	w.rt.SetMode(skipblock.ModeReplayExec)
	lg := runlog.New()
	w.ctx.Log = lg.Append
	for e := seg[0]; e < seg[1]; e++ {
		if err := w.runIteration(e); err != nil {
			return nil, err
		}
	}
	// The final worker also runs the tail (post-loop statements).
	if last {
		if err := w.runTail(); err != nil {
			return nil, err
		}
	}
	w.report.WorkNs = time.Since(w0).Nanoseconds()
	w.report.Logs = lg.Lines()
	return w.finish(), nil
}

// runStealingWorker executes one worker of the stealing scheduler: setup
// once, then a loop of leases — the statically assigned one first, stolen
// remainders after. Before each lease whose start differs from the worker's
// current position, the worker re-initializes: from iteration 0 (strong,
// first lease only) or from the nearest anchored checkpoint (weak; always,
// for stolen leases). The worker whose final lease ends at the last
// iteration runs the program tail immediately, while its state is current.
func runStealingWorker(rec *Recording, factory func() *script.Program, diff *script.DiffResult,
	x *sched.Executor, anchors []int, pid, n int, opts Options) (*WorkerReport, []logSpan, error) {

	w, err := newWorker(rec, factory, diff, pid)
	if err != nil {
		return nil, nil, err
	}
	defer w.close()

	var spans []logSpan
	pos := 0 // the main-loop iteration the program state currently sits at
	first := true
	lease := x.InitialLease(pid)
	if lease != nil {
		s, e := lease.Bounds()
		w.report.Segment = [2]int{s, e}
	}
	for {
		if lease == nil {
			var ok bool
			if lease, ok = x.Steal(); !ok {
				break
			}
			w.report.Stolen++
		}
		start := lease.Start()

		// Initialization to the lease start. A lease adjacent to the
		// worker's current position needs none; otherwise stolen leases
		// always use weak (checkpoint-anchored) initialization — stealing
		// only targets splits with a reachable anchor. start==0 re-inits
		// only the block counters (the init loop is empty).
		if start != pos {
			initFrom := 0
			if !first || opts.Init == Weak {
				initFrom = sched.AnchorBefore(anchors, start-1)
			}
			if first {
				w.report.InitFrom = initFrom
			}
			if err := w.initTo(initFrom, start); err != nil {
				return nil, nil, err
			}
		}

		// Work phase: claim iterations until the lease is exhausted (either
		// finished or stolen down to the worker's position).
		w0 := time.Now()
		w.rt.SetMode(skipblock.ModeReplayExec)
		span := logSpan{start: start}
		w.ctx.Log = func(line string) { span.lines = append(span.lines, line) }
		for {
			e, ok := lease.Next()
			if !ok {
				break
			}
			if err := w.runIteration(e); err != nil {
				return nil, nil, err
			}
		}
		_, end := lease.Bounds()
		pos = end
		// The lease reaching the loop's end is unique (ends only move by
		// splitting); its owner runs the tail while positioned at n.
		if end == n {
			if err := w.runTail(); err != nil {
				return nil, nil, err
			}
		}
		w.report.WorkNs += time.Since(w0).Nanoseconds()
		spans = append(spans, span)
		w.report.Logs = append(w.report.Logs, span.lines...)
		lease = nil
		first = false
	}
	return w.finish(), spans, nil
}

// positionBlocks sets every SkipBlock's execution counter to its position at
// the start of main-loop iteration `epoch`.
func positionBlocks(p *script.Program, rt *skipblock.Runtime, epoch int) {
	for _, id := range rt.Blocks() {
		b, _ := rt.Block(id)
		mult := skipblock.ExecsPerMainIteration(p, id)
		b.SetExecIndex(epoch * mult)
	}
}

// instrumentedLoops returns the IDs of the program's memoizable nested
// loops, sorted, with their executions per main-loop iteration — the loops
// whose checkpoints drive anchoring and restore-cost estimates.
func instrumentedLoops(st *store.Store, p *script.Program) ([]string, map[string]int) {
	rt := skipblock.NewRuntime(p, adapt.New(0), nil, st)
	ids := rt.Blocks()
	sort.Strings(ids)
	mult := make(map[string]int, len(ids))
	for _, id := range ids {
		mult[id] = skipblock.ExecsPerMainIteration(p, id)
	}
	return ids, mult
}

// anchoredIterations returns, sorted, every main-loop iteration e whose
// instrumented loops all have materialized checkpoints for every execution
// during e — the iterations weak initialization can jump to and stealing can
// re-initialize from. A program with no instrumented loops anchors nothing
// (there are no checkpoints to restore).
func anchoredIterations(st *store.Store, p *script.Program, ids []string, mult map[string]int) []int {
	anchors := make([]int, 0)
	if len(ids) == 0 || p.Main == nil {
		return anchors
	}
	for e := 0; e < p.Main.Iters; e++ {
		if iterationAnchored(st, ids, mult, e) {
			anchors = append(anchors, e)
		}
	}
	return anchors
}

// iterationAnchored is the single definition of "anchored": every
// instrumented loop has a materialized checkpoint for each of its
// executions during main-loop iteration e. anchoredIterations (the
// scheduler) and weakAnchor (iteration sampling) both use it.
func iterationAnchored(st *store.Store, ids []string, mult map[string]int, e int) bool {
	for _, id := range ids {
		m := mult[id]
		for x := e * m; x < (e+1)*m; x++ {
			if !st.Has(store.Key{LoopID: id, Exec: x}) {
				return false
			}
		}
	}
	return true
}

// weakAnchor returns the largest main-loop iteration e ≤ target such that
// iteration e is anchored, so the whole iteration can be replayed by
// restoration alone. Falls back to 0 (strong initialization) when no such
// iteration exists.
func weakAnchor(st *store.Store, p *script.Program, rt *skipblock.Runtime, target int) int {
	ids := rt.Blocks()
	if len(ids) == 0 {
		return 0
	}
	mult := make(map[string]int, len(ids))
	for _, id := range ids {
		mult[id] = skipblock.ExecsPerMainIteration(p, id)
	}
	for e := target; e >= 0; e-- {
		if iterationAnchored(st, ids, mult, e) {
			return e
		}
	}
	return 0
}

// schedCosts derives the scheduler's cost model for this replay from the
// recording. Work costs come from the record phase's per-iteration timings
// when the inner loop is probed (it re-executes), and from restore estimates
// otherwise; catch-up costs are restore estimates on anchored iterations and
// re-execution costs elsewhere (the sparse-checkpoint fallback). Restore
// times are predicted from materialization times through the restore/
// materialize scaling factor the record phase measured (§5.3.2, persisted
// with the timings). Recordings made before timing capture fall back to
// checkpoint metadata, and to a uniform model when no cost data exists.
func schedCosts(rec *Recording, p *script.Program, ids []string, mult map[string]int,
	anchors []int, probed bool) *sched.Costs {

	n := p.Main.Iters
	tracker := adapt.New(adapt.DefaultEpsilon)
	if rec.Timings != nil && rec.Timings.C > 0 {
		tracker.SeedC(rec.Timings.C)
	}

	// Per-iteration compute: recorded wall times, else store metadata.
	comput := make([]int64, n)
	if rec.Timings != nil && len(rec.Timings.IterNs) == n {
		copy(comput, rec.Timings.IterNs)
	} else {
		var sum, cnt int64
		for e := 0; e < n; e++ {
			for _, id := range ids {
				m := mult[id]
				for x := e * m; x < (e+1)*m; x++ {
					if meta, ok := rec.Store.Lookup(store.Key{LoopID: id, Exec: x}); ok && meta.ComputNs > 0 {
						comput[e] += meta.ComputNs
					}
				}
			}
			if comput[e] > 0 {
				sum += comput[e]
				cnt++
			}
		}
		if cnt > 0 {
			mean := sum / cnt
			for e := range comput {
				if comput[e] == 0 {
					comput[e] = mean
				}
			}
		}
	}

	// Per-iteration restore estimate from materialization metadata.
	restore := make([]int64, n)
	for e := 0; e < n; e++ {
		for _, id := range ids {
			m := mult[id]
			for x := e * m; x < (e+1)*m; x++ {
				if meta, ok := rec.Store.Lookup(store.Key{LoopID: id, Exec: x}); ok {
					restore[e] += tracker.PredictRestoreNs(meta.MaterNs)
				}
			}
		}
	}

	anchored := make(map[int]bool, len(anchors))
	for _, a := range anchors {
		anchored[a] = true
	}
	c := &sched.Costs{WorkNs: make([]int64, n), CatchupNs: make([]int64, n)}
	if rec.Timings != nil {
		c.SetupNs = rec.Timings.SetupNs
	}
	var total int64
	for e := 0; e < n; e++ {
		if anchored[e] {
			c.CatchupNs[e] = restore[e]
		} else {
			c.CatchupNs[e] = comput[e]
		}
		if probed {
			c.WorkNs[e] = comput[e]
		} else {
			c.WorkNs[e] = c.CatchupNs[e]
		}
		total += c.WorkNs[e]
	}
	if total == 0 {
		// No usable cost data: uniform work costs so Balanced degenerates
		// to Static and Stealing splits by count.
		for e := range c.WorkNs {
			c.WorkNs[e] = 1
		}
	}
	return c
}
