package replay_test

import (
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/script"
)

// TestGeneratorAnyGEqualsSequential is the generator-level property of
// DESIGN.md §6: for any worker count G ≥ 1, the merged replay log is
// identical to the G=1 log, probed or unprobed, strong or weak init.
func TestGeneratorAnyGEqualsSequential(t *testing.T) {
	factory := trainFactory(12, 2)
	rec := record(t, factory)
	variants := map[string]func() *script.Program{
		"unprobed": factory,
		"outer":    addOuterProbe(factory),
		"inner":    addInnerProbe(factory),
	}
	for vname, vf := range variants {
		seq, err := replay.Replay(rec.Recording, vf, replay.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s seq: %v", vname, err)
		}
		base := strings.Join(seq.Logs, "\n")
		for _, g := range []int{2, 5, 12} {
			for _, init := range []replay.InitMode{replay.Strong, replay.Weak} {
				par, err := replay.Replay(rec.Recording, vf, replay.Options{Workers: g, Init: init})
				if err != nil {
					t.Fatalf("%s G=%d %v: %v", vname, g, init, err)
				}
				if strings.Join(par.Logs, "\n") != base {
					t.Fatalf("%s G=%d init=%v: merged logs differ from sequential", vname, g, init)
				}
				if len(par.Anomalies) != 0 {
					t.Fatalf("%s G=%d init=%v anomalies: %v", vname, g, init, par.Anomalies)
				}
			}
		}
	}
}

// TestWorkerSegmentsAccountable verifies the reported worker segments are a
// disjoint ordered cover of the epoch range and that each worker's log
// volume corresponds to its segment.
func TestWorkerSegmentsAccountable(t *testing.T) {
	factory := trainFactory(9, 2)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, addOuterProbe(factory), replay.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for _, w := range res.Workers {
		if w.Segment[0] != next {
			t.Fatalf("worker %d starts at %d, want %d", w.PID, w.Segment[0], next)
		}
		next = w.Segment[1]
		epochs := w.Segment[1] - w.Segment[0]
		// Two log lines per epoch (probe + loss); the last worker adds the
		// tail line.
		want := 2 * epochs
		if w.PID == len(res.Workers)-1 {
			want++
		}
		if len(w.Logs) != want {
			t.Fatalf("worker %d: %d log lines for %d epochs (want %d):\n%s",
				w.PID, len(w.Logs), epochs, want, strings.Join(w.Logs, "\n"))
		}
	}
	if next != 9 {
		t.Fatalf("segments cover up to %d, want 9", next)
	}
}

// TestReplayEmptyMainLoop exercises the degenerate zero-iteration program.
func TestReplayEmptyMainLoop(t *testing.T) {
	factory := trainFactory(1, 1)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, factory, replay.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workers) != 1 {
		t.Fatalf("one-epoch program used %d workers", len(res.Workers))
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
}

// TestRestoreStatsReported checks the plumbing the bench harness relies on:
// unprobed replays report restore counts and times.
func TestRestoreStatsReported(t *testing.T) {
	factory := trainFactory(6, 2)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, factory, replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Workers[0]
	if w.Restored != 6 || w.RestoreNs <= 0 {
		t.Fatalf("restore stats: %+v", w)
	}
	if w.SetupNs <= 0 {
		t.Fatalf("setup time missing: %+v", w)
	}
	_ = fmt.Sprintf("%+v", w)
}
