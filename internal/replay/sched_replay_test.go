package replay_test

import (
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// skewedFactory builds a training program whose per-epoch compute is
// head-heavy: the first eighth of the epochs do 40x the work (the "heavy
// probes on a few epochs" shape the cost-balanced scheduler exists for).
// The log output is identical regardless of how iterations are scheduled.
func skewedFactory(epochs, steps int) func() *script.Program {
	return func() *script.Program {
		train := &script.Loop{
			ID:      "train",
			IterVar: "step",
			Iters:   steps,
			Body: []script.Stmt{
				script.AssignMethod([]string{"w"}, "rng", "perturb", []string{"w", "epoch"}, func(e *script.Env) error {
					w := e.MustGet("w").(*value.Tensor).T
					rng := e.MustGet("rng").(*value.RNG).R
					passes := 5
					if e.Int("epoch") < epochs/8 {
						passes = 200
					}
					for pass := 0; pass < passes; pass++ {
						for i := 0; i < w.Len(); i++ {
							w.Data()[i] += rng.Float64() * 0.001
						}
					}
					return nil
				}),
			},
		}
		return &script.Program{
			Name: "skewtrain",
			Setup: []script.Stmt{
				script.AssignFunc([]string{"w"}, "zeros", nil, func(e *script.Env) error {
					e.Set("w", &value.Tensor{T: tensor.New(64)})
					return nil
				}),
				script.AssignFunc([]string{"rng"}, "RNG", nil, func(e *script.Env) error {
					e.Set("rng", &value.RNG{R: xrand.New(99)})
					return nil
				}),
			},
			Main: &script.Loop{
				ID:      "main",
				IterVar: "epoch",
				Iters:   epochs,
				Body: []script.Stmt{
					script.LoopStmt(train),
					script.LogStmt("loss", func(e *script.Env) (string, error) {
						w := e.MustGet("w").(*value.Tensor).T
						return fmt.Sprintf("epoch=%d sum=%.17g", e.Int("epoch"), w.Sum()), nil
					}),
				},
			},
			Tail: []script.Stmt{
				script.LogStmt("done", func(e *script.Env) (string, error) {
					return fmt.Sprintf("final=%.17g", e.MustGet("w").(*value.Tensor).T.Sum()), nil
				}),
			},
		}
	}
}

// replayWith replays rec with the probed factory under one scheduler
// configuration and fails on error or anomalies.
func replayWith(t *testing.T, rec *core.RecordResult, factory func() *script.Program, opts replay.Options) *replay.Result {
	t.Helper()
	res, err := replay.Replay(rec.Recording, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("deferred check found anomalies under %v/%v: %v", opts.Scheduler, opts.Init, res.Anomalies[0])
	}
	return res
}

// TestSchedulersProduceIdenticalLogs is the deterministic-merge regression:
// replay logs under Balanced and Stealing with skewed costs are byte-
// identical to the Static single-worker replay, and the deferred check
// reports no anomalies for any of them.
func TestSchedulersProduceIdenticalLogs(t *testing.T) {
	factory := skewedFactory(32, 3)
	rec := record(t, factory)
	probed := addInnerProbe(factory)

	baseline := replayWith(t, rec, probed, replay.Options{Workers: 1})
	want := strings.Join(baseline.Logs, "\n")

	for _, opts := range []replay.Options{
		{Workers: 4, Scheduler: replay.SchedBalanced, Init: replay.Weak},
		{Workers: 4, Scheduler: replay.SchedBalanced, Init: replay.Strong},
		{Workers: 4, Scheduler: replay.SchedStealing, Init: replay.Weak},
		{Workers: 8, Scheduler: replay.SchedStealing, Init: replay.Strong},
	} {
		res := replayWith(t, rec, probed, opts)
		if got := strings.Join(res.Logs, "\n"); got != want {
			t.Fatalf("%v/%v logs diverge from static single-worker:\n got: %.200s\nwant: %.200s",
				opts.Scheduler, opts.Init, got, want)
		}
	}
}

// TestStealingSparseCheckpoints exercises the no-anchor safety path: with
// adaptive checkpointing enabled these microsecond epochs materialize few or
// no checkpoints, so stealing must stand down (or steal only around real
// anchors) and still merge a byte-identical log.
func TestStealingSparseCheckpoints(t *testing.T) {
	factory := skewedFactory(16, 2)
	res, err := core.Record(t.TempDir(), factory, core.RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probed := addInnerProbe(factory)
	baseline := replayWith(t, res, probed, replay.Options{Workers: 1})
	stealing := replayWith(t, res, probed, replay.Options{Workers: 4, Scheduler: replay.SchedStealing, Init: replay.Weak})
	if strings.Join(stealing.Logs, "\n") != strings.Join(baseline.Logs, "\n") {
		t.Fatal("stealing logs diverge under sparse checkpoints")
	}
}

// TestStealingOuterProbe checks the partial-replay path (work iterations
// restore rather than execute) under the stealing scheduler.
func TestStealingOuterProbe(t *testing.T) {
	factory := skewedFactory(24, 2)
	rec := record(t, factory)
	probed := addOuterProbe(factory)
	baseline := replayWith(t, rec, probed, replay.Options{Workers: 1})
	stealing := replayWith(t, rec, probed, replay.Options{Workers: 6, Scheduler: replay.SchedStealing, Init: replay.Weak})
	if strings.Join(stealing.Logs, "\n") != strings.Join(baseline.Logs, "\n") {
		t.Fatal("stealing logs diverge on outer-probe partial replay")
	}
}

// TestBalancedSegmentsRespectSkew verifies the balanced partitioner actually
// consumes the recording's timings: with a deterministic head-heavy timing
// vector injected into the recording, the heavy head must be split across
// more workers than the uniform split would give it. (The timings are
// injected rather than wall-clock-measured so the partition is independent
// of machine load; end-to-end timing capture has its own coverage.)
func TestBalancedSegmentsRespectSkew(t *testing.T) {
	factory := skewedFactory(32, 3)
	rec := record(t, factory)
	iters := make([]int64, 32)
	for e := range iters {
		iters[e] = 1_000_000
		if e < 4 {
			iters[e] = 40_000_000
		}
	}
	rec.Recording.Timings = &runlog.Timings{SetupNs: 1000, IterNs: iters}
	probed := addInnerProbe(factory)
	res := replayWith(t, rec, probed, replay.Options{Workers: 4, Scheduler: replay.SchedBalanced, Init: replay.Weak})
	if len(res.Workers) < 2 {
		t.Fatalf("balanced replay used %d workers", len(res.Workers))
	}
	// The first (heavy) segment must be shorter than the uniform 32/4 = 8
	// iterations: the head eighth (4 epochs) does 40x the per-epoch work.
	first := res.Workers[0].Segment
	if first[1]-first[0] >= 8 {
		t.Fatalf("first balanced segment %v ignores the recorded head skew", first)
	}
}
