package replay_test

import (
	"fmt"
	"strings"
	"testing"

	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/runlog"
)

func TestReplaySampleSubsetMatchesRecord(t *testing.T) {
	factory := trainFactory(10, 3)
	rec := record(t, factory)
	res, err := replay.ReplaySample(rec.Recording, factory, []int{2, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Iterations are deduplicated and sorted.
	if fmt.Sprint(res.Iterations) != "[2 5 7]" {
		t.Fatalf("iterations = %v", res.Iterations)
	}
	// One "loss" line per sampled iteration, matching the record exactly.
	if len(res.Logs) != 3 {
		t.Fatalf("logs = %v", res.Logs)
	}
	for i, epoch := range []int{2, 5, 7} {
		if res.Logs[i] != rec.Logs[epoch] {
			t.Fatalf("sampled epoch %d log %q != record %q", epoch, res.Logs[i], rec.Logs[epoch])
		}
	}
	// The sample log stream passes the partial deferred check.
	for _, epoch := range []int{0, 1, 2} {
		if got := runlog.PartialDeferredCheck(rec.Logs, res.Logs[epoch:epoch+1], nil); got != nil {
			t.Fatalf("partial check failed: %v", got)
		}
	}
}

func TestReplaySampleWithInnerProbe(t *testing.T) {
	factory := trainFactory(8, 2)
	rec := record(t, factory)
	res, err := replay.ReplaySample(rec.Recording, addInnerProbe(factory), []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Probes["train"] {
		t.Fatalf("probes = %v", res.Probes)
	}
	probeLines := 0
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "stepsum: ") {
			probeLines++
		}
	}
	// 2 sampled epochs x 2 steps of hindsight output.
	if probeLines != 4 {
		t.Fatalf("probe lines = %d, want 4", probeLines)
	}
	// The loss lines embedded in the sample must match the record.
	var lossLines []string
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "loss: ") {
			lossLines = append(lossLines, l)
		}
	}
	if len(lossLines) != 2 || lossLines[0] != rec.Logs[3] || lossLines[1] != rec.Logs[6] {
		t.Fatalf("sampled loss lines %v do not match record", lossLines)
	}
}

func TestReplaySampleFirstIteration(t *testing.T) {
	factory := trainFactory(5, 2)
	rec := record(t, factory)
	res, err := replay.ReplaySample(rec.Recording, factory, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logs) != 1 || res.Logs[0] != rec.Logs[0] {
		t.Fatalf("first-iteration sample = %v", res.Logs)
	}
}

func TestReplaySampleOutOfRange(t *testing.T) {
	factory := trainFactory(4, 2)
	rec := record(t, factory)
	if _, err := replay.ReplaySample(rec.Recording, factory, []int{4}); err == nil {
		t.Fatal("out-of-range iteration accepted")
	}
	if _, err := replay.ReplaySample(rec.Recording, factory, []int{-1}); err == nil {
		t.Fatal("negative iteration accepted")
	}
}

func TestReplaySampleBinarySearchPattern(t *testing.T) {
	// The paper's motivating use (§8): binary search for the iteration
	// where a metric converges, without scanning the whole past.
	factory := trainFactory(16, 2)
	rec := record(t, factory)
	lossAt := func(epoch int) string {
		res, err := replay.ReplaySample(rec.Recording, factory, []int{epoch})
		if err != nil {
			t.Fatal(err)
		}
		return res.Logs[0]
	}
	lo, hi := 0, 15
	for lo < hi {
		mid := (lo + hi) / 2
		if lossAt(mid) == rec.Logs[mid] {
			// Random access reproduced the recorded state at mid.
			lo = mid + 1
		} else {
			t.Fatalf("sample at %d diverged from record", mid)
		}
	}
}
