package replay_test

import (
	"testing"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
)

// TestReplayThroughSharedPool replays through a one-slot pool (workers fully
// serialized) and a shared payload cache, and checks the merged logs stay
// byte-identical to an ungated replay across all three schedulers.
func TestReplayThroughSharedPool(t *testing.T) {
	factory := trainFactory(8, 3)
	rec := record(t, factory)
	probed := addOuterProbe(factory)

	want, err := replay.Replay(rec.Recording, probed, replay.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, schedPolicy := range []replay.Scheduler{replay.SchedStatic, replay.SchedBalanced, replay.SchedStealing} {
		pool := sched.NewPool(1)
		cache := backmat.NewPayloadCache(0)
		got, err := replay.Replay(rec.Recording, probed, replay.Options{
			Workers:   4,
			Scheduler: schedPolicy,
			Init:      replay.Weak,
			Slots:     pool,
			Cache:     cache,
		})
		if err != nil {
			t.Fatalf("%v: %v", schedPolicy, err)
		}
		if len(got.Anomalies) != 0 {
			t.Fatalf("%v: anomalies: %v", schedPolicy, got.Anomalies)
		}
		if len(got.Logs) != len(want.Logs) {
			t.Fatalf("%v: %d log lines, want %d", schedPolicy, len(got.Logs), len(want.Logs))
		}
		for i := range got.Logs {
			if got.Logs[i] != want.Logs[i] {
				t.Fatalf("%v: log %d = %q, want %q", schedPolicy, i, got.Logs[i], want.Logs[i])
			}
		}
		if got.CFactor <= 0 {
			t.Fatalf("%v: CFactor = %v, want > 0", schedPolicy, got.CFactor)
		}
		st := pool.Stats()
		if st.InUse != 0 {
			t.Fatalf("%v: pool leaked slots: %+v", schedPolicy, st)
		}
		if st.Acquires < 4 {
			t.Fatalf("%v: pool acquires = %d, want >= 4 (one per worker)", schedPolicy, st.Acquires)
		}
	}
}

// TestReplaySampleSharedCacheHits runs the same sample twice against one
// shared cache and checks the second pass restores entirely from memory.
func TestReplaySampleSharedCacheHits(t *testing.T) {
	factory := trainFactory(8, 3)
	rec := record(t, factory)
	probed := addOuterProbe(factory)
	cache := backmat.NewPayloadCache(0)
	pool := sched.NewPool(2)

	opts := replay.SampleOptions{Cache: cache, Slots: pool}
	first, err := replay.ReplaySampleWith(rec.Recording, probed, []int{2, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := replay.ReplaySampleWith(rec.Recording, probed, []int{2, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Logs) == 0 || len(first.Logs) != len(second.Logs) {
		t.Fatalf("log lengths: first %d, second %d", len(first.Logs), len(second.Logs))
	}
	for i := range first.Logs {
		if first.Logs[i] != second.Logs[i] {
			t.Fatalf("log %d diverged: %q vs %q", i, first.Logs[i], second.Logs[i])
		}
	}
	if st := pool.Stats(); st.InUse != 0 || st.Acquires != 2 {
		t.Fatalf("pool stats = %+v", st)
	}
}
