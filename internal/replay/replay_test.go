package replay_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/xrand"
)

// trainFactory returns a factory for a miniature training program: weights
// perturbed by RNG draws inside a nested train loop, with per-epoch loss
// logging in the main loop and an LR float mutated inside the train loop so
// weak initialization stays anomaly-free.
func trainFactory(epochs, steps int) func() *script.Program {
	return func() *script.Program {
		train := &script.Loop{
			ID:      "train",
			IterVar: "step",
			Iters:   steps,
			Body: []script.Stmt{
				// The RNG is the receiver so rule 1 places it (and w) in the
				// changeset — mutations must flow through statically visible
				// patterns, as PyTorch mutations do in the paper.
				script.AssignMethod([]string{"w"}, "rng", "perturb", []string{"w", "lr"}, func(e *script.Env) error {
					w := e.MustGet("w").(*value.Tensor).T
					rng := e.MustGet("rng").(*value.RNG).R
					lr := e.Float("lr")
					for pass := 0; pass < 40; pass++ {
						for i := 0; i < w.Len(); i++ {
							w.Data()[i] += rng.Float64() * lr * 0.001
						}
					}
					return nil
				}),
				script.AssignMethod([]string{"lr"}, "lr", "decay", nil, func(e *script.Env) error {
					e.SetFloat("lr", e.Float("lr")*0.999)
					return nil
				}),
			},
		}
		return &script.Program{
			Name: "minitrain",
			Setup: []script.Stmt{
				script.AssignFunc([]string{"w"}, "zeros", nil, func(e *script.Env) error {
					e.Set("w", &value.Tensor{T: tensor.New(128)})
					return nil
				}),
				script.AssignFunc([]string{"rng"}, "RNG", nil, func(e *script.Env) error {
					e.Set("rng", &value.RNG{R: xrand.New(7)})
					return nil
				}),
				script.AssignExpr([]string{"lr"}, nil, func(e *script.Env) error {
					e.SetFloat("lr", 1.0)
					return nil
				}),
			},
			Main: &script.Loop{
				ID:      "main",
				IterVar: "epoch",
				Iters:   epochs,
				Body: []script.Stmt{
					script.LoopStmt(train),
					script.LogStmt("loss", func(e *script.Env) (string, error) {
						w := e.MustGet("w").(*value.Tensor).T
						return fmt.Sprintf("epoch=%d sum=%.17g", e.Int("epoch"), w.Sum()), nil
					}),
				},
			},
			Tail: []script.Stmt{
				script.LogStmt("done", func(e *script.Env) (string, error) {
					return fmt.Sprintf("final=%.17g", e.MustGet("w").(*value.Tensor).T.Sum()), nil
				}),
			},
		}
	}
}

// addOuterProbe wraps a factory, inserting a log statement into the main
// loop body (outside the train loop).
func addOuterProbe(f func() *script.Program) func() *script.Program {
	return func() *script.Program {
		p := f()
		p.Main.Body = script.AddLog(p.Main.Body, 1, script.LogStmt("wnorm", func(e *script.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*value.Tensor).T.Norm()), nil
		}))
		return p
	}
}

// addInnerProbe wraps a factory, inserting a log statement into the train
// loop body.
func addInnerProbe(f func() *script.Program) func() *script.Program {
	return func() *script.Program {
		p := f()
		train := p.Main.Body[0].Loop
		train.Body = script.AddLog(train.Body, 1, script.LogStmt("stepsum", func(e *script.Env) (string, error) {
			return fmt.Sprintf("%.17g", e.MustGet("w").(*value.Tensor).T.Sum()), nil
		}))
		return p
	}
}

func record(t *testing.T, factory func() *script.Program) *core.RecordResult {
	t.Helper()
	// Adaptivity is disabled so these miniature programs (microsecond
	// epochs against millisecond disk writes) checkpoint densely; adaptive
	// behaviour has its own coverage in internal/adapt and the benchmarks.
	res, err := core.Record(t.TempDir(), factory, core.RecordOptions{DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialReplayReproducesRecord(t *testing.T) {
	factory := trainFactory(6, 4)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, factory, replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 0 {
		t.Fatalf("probes = %v, want none", res.Probes)
	}
	if strings.Join(res.Logs, "|") != strings.Join(rec.Logs, "|") {
		t.Fatalf("replay logs differ:\nrecord: %v\nreplay: %v", rec.Logs, res.Logs)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	// Unprobed: train loop must be fully restored, never executed.
	if res.Workers[0].Executed != 0 {
		t.Fatalf("unprobed sequential replay executed %d loops", res.Workers[0].Executed)
	}
	if res.Workers[0].Restored != 6 {
		t.Fatalf("restored %d, want 6", res.Workers[0].Restored)
	}
}

func TestOuterProbeReplay(t *testing.T) {
	factory := trainFactory(6, 4)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, addOuterProbe(factory), replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Probes["main"] || res.Probes["train"] {
		t.Fatalf("probes = %v, want main only", res.Probes)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	// The probe output is present: one wnorm line per epoch.
	probeLines := 0
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "wnorm: ") {
			probeLines++
		}
	}
	if probeLines != 6 {
		t.Fatalf("probe lines = %d, want 6", probeLines)
	}
	// Partial replay: train still skipped entirely.
	if res.Workers[0].Executed != 0 {
		t.Fatalf("outer probe should not re-execute train; executed = %d", res.Workers[0].Executed)
	}
}

func TestInnerProbeReplay(t *testing.T) {
	factory := trainFactory(5, 3)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, addInnerProbe(factory), replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Probes["train"] || !res.Probes["main"] {
		t.Fatalf("probes = %v, want both", res.Probes)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", res.Anomalies)
	}
	// Full re-execution of the probed train loop.
	if res.Workers[0].Executed != 5 {
		t.Fatalf("executed = %d, want 5", res.Workers[0].Executed)
	}
	// One stepsum line per (epoch, step).
	probeLines := 0
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "stepsum: ") {
			probeLines++
		}
	}
	if probeLines != 15 {
		t.Fatalf("probe lines = %d, want 15", probeLines)
	}
}

func TestParallelReplayMatchesSequential(t *testing.T) {
	factory := trainFactory(8, 3)
	rec := record(t, factory)
	seq, err := replay.Replay(rec.Recording, addInnerProbe(factory), replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{2, 3, 4, 8} {
		par, err := replay.Replay(rec.Recording, addInnerProbe(factory), replay.Options{Workers: g})
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if strings.Join(par.Logs, "|") != strings.Join(seq.Logs, "|") {
			t.Fatalf("G=%d merged logs differ from sequential", g)
		}
		if len(par.Anomalies) != 0 {
			t.Fatalf("G=%d anomalies: %v", g, par.Anomalies)
		}
		if len(par.Workers) != min(g, 8) {
			t.Fatalf("G=%d workers = %d", g, len(par.Workers))
		}
	}
}

func TestStrongAndWeakInitEquivalent(t *testing.T) {
	factory := trainFactory(8, 3)
	rec := record(t, factory)
	strong, err := replay.Replay(rec.Recording, addInnerProbe(factory), replay.Options{Workers: 4, Init: replay.Strong})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := replay.Replay(rec.Recording, addInnerProbe(factory), replay.Options{Workers: 4, Init: replay.Weak})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(strong.Logs, "|") != strings.Join(weak.Logs, "|") {
		t.Fatal("strong and weak initialization produced different logs")
	}
	if len(weak.Anomalies) != 0 {
		t.Fatalf("weak init anomalies: %v", weak.Anomalies)
	}
	// Weak workers jump to the checkpoint just before their segment.
	for _, w := range weak.Workers {
		if w.Segment[0] > 0 && w.InitFrom != w.Segment[0]-1 {
			t.Fatalf("worker %d: weak init from %d, want %d", w.PID, w.InitFrom, w.Segment[0]-1)
		}
	}
	// Strong workers always initialize from iteration 0.
	for _, w := range strong.Workers {
		if w.InitFrom != 0 {
			t.Fatalf("worker %d: strong init from %d, want 0", w.PID, w.InitFrom)
		}
	}
}

func TestReplayRejectsCodeChanges(t *testing.T) {
	factory := trainFactory(3, 2)
	rec := record(t, factory)
	changed := func() *script.Program {
		p := factory()
		p.Main.Body = append(p.Main.Body, script.ExprFunc("new_stmt", nil, func(e *script.Env) error { return nil }))
		return p
	}
	if _, err := replay.Replay(rec.Recording, changed, replay.Options{}); err == nil {
		t.Fatal("replay accepted a non-logging code change")
	}
}

func TestReplayDetectsDivergenceAsAnomaly(t *testing.T) {
	// A "divergent" replay: same structure (so diff passes) but different
	// behaviour inside a closure — simulating a missed side-effect.
	factory := trainFactory(3, 2)
	rec := record(t, factory)
	divergent := func() *script.Program {
		p := trainFactory(3, 2)()
		// Same structural pattern, different arithmetic.
		p.Main.Body[0].Loop.Body[0].Do = func(e *script.Env) error {
			w := e.MustGet("w").(*value.Tensor).T
			w.Data()[0] += 1000 // corrupt
			return nil
		}
		return p
	}
	// Probe the train loop so the corrupted statement actually re-executes.
	divergentProbed := func() *script.Program {
		p := divergent()
		train := p.Main.Body[0].Loop
		train.Body = script.AddLog(train.Body, 1, script.LogStmt("probe", func(e *script.Env) (string, error) {
			return "x", nil
		}))
		return p
	}
	res, err := replay.Replay(rec.Recording, divergentProbed, replay.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("deferred check missed a divergent replay")
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw%200) + 1
		g := int(gRaw%20) + 1
		segs := replay.Partition(n, g)
		// Coverage and disjointness.
		next := 0
		for _, s := range segs {
			if s[0] != next || s[1] < s[0] {
				return false
			}
			next = s[1]
		}
		if next != n {
			return false
		}
		// Balance: sizes differ by at most 1.
		minSize, maxSize := n+1, 0
		for _, s := range segs {
			size := s[1] - s[0]
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
		}
		return maxSize-minSize <= 1 && len(segs) <= g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if got := replay.Partition(0, 4); got != nil {
		t.Fatalf("replay.Partition(0,4) = %v", got)
	}
	if got := replay.Partition(4, 0); got != nil {
		t.Fatalf("replay.Partition(4,0) = %v", got)
	}
	segs := replay.Partition(3, 8)
	if len(segs) != 3 {
		t.Fatalf("replay.Partition(3,8) = %v, want 3 singleton segments", segs)
	}
}

func TestMaxSpeedupMatchesPaper(t *testing.T) {
	// Paper §6.3: 200 epochs over 16 workers → ≤13 epochs each → 15.38×.
	got := replay.MaxSpeedup(200, 16)
	if got < 15.37 || got > 15.39 {
		t.Fatalf("replay.MaxSpeedup(200,16) = %g, want 15.38", got)
	}
	// RTE & CoLA: "only have 6 epoch-partitions each, so parallelism on
	// 4 GPUs leads to at best 2/6 = 33% replay time" — i.e. the best
	// replay-time fraction is 1/speedup = 2/6.
	if frac := 1 / replay.MaxSpeedup(6, 4); frac != 2.0/6.0 {
		t.Fatalf("replay fraction for (6,4) = %g, want 2/6", frac)
	}
}

func TestLoadRecordingRoundTrip(t *testing.T) {
	factory := trainFactory(4, 2)
	dir := t.TempDir()
	if _, err := core.Record(dir, factory, core.RecordOptions{DisableAdaptive: true}); err != nil {
		t.Fatal(err)
	}
	rec, err := core.LoadRecording(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.Replay(rec, factory, replay.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) != 0 {
		t.Fatalf("anomalies after reload: %v", res.Anomalies)
	}
}

func TestReplaySkipDeferredCheck(t *testing.T) {
	factory := trainFactory(3, 2)
	rec := record(t, factory)
	res, err := replay.Replay(rec.Recording, factory, replay.Options{Workers: 1, SkipDeferredCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != nil {
		t.Fatal("deferred check ran despite SkipDeferredCheck")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
