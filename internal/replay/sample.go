package replay

import (
	"fmt"
	"sort"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
)

// SampleResult is the outcome of a sampling replay.
type SampleResult struct {
	Iterations []int // the iterations replayed, sorted
	Logs       []string
	Probes     map[string]bool
	WallNs     int64
}

// ReplaySample replays only the given main-loop iterations (paper §8,
// "Partial Replay: Search and Approximation"): the worker-initialization
// mechanism gives random access to any iteration, so a replay need not scan
// the whole past. For each requested iteration the state is reconstructed
// from the nearest checkpoint (weak initialization) and the iteration is
// re-executed in replay-execution mode, producing its hindsight logs.
//
// Iterations are deduplicated and visited in ascending order; out-of-range
// iterations are an error. The deferred log check is skipped: a sample's
// log stream is a subsequence of the record log by construction, which
// callers can verify with runlog.PartialDeferredCheck.
func ReplaySample(rec *Recording, factory func() *script.Program, iterations []int) (*SampleResult, error) {
	p := factory()
	diff, err := script.DiffHindsight(rec.Shape, p)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if p.Main == nil {
		return nil, fmt.Errorf("replay: program has no main loop")
	}
	n := p.Main.Iters
	seen := map[int]bool{}
	var sample []int
	for _, it := range iterations {
		if it < 0 || it >= n {
			return nil, fmt.Errorf("replay: sampled iteration %d out of range [0,%d)", it, n)
		}
		if !seen[it] {
			seen[it] = true
			sample = append(sample, it)
		}
	}
	sort.Ints(sample)

	tracker := adapt.New(adapt.DefaultEpsilon)
	mat := backmat.New(rec.Store, backmat.Fork)
	defer mat.Close()
	rt := skipblock.NewRuntime(p, tracker, mat, rec.Store)
	rt.SetProbes(diff.Probes)

	ctx := &script.Ctx{Env: script.NewEnv(), LoopHook: rt.Hook}
	t0 := time.Now()
	if err := script.ExecStmts(ctx, p.Setup); err != nil {
		return nil, fmt.Errorf("replay: sample setup: %w", err)
	}

	lg := runlog.New()
	cursor := -1 // last initialized iteration
	for _, it := range sample {
		// Reconstruct the state at the start of iteration `it`: jump to the
		// nearest fully checkpointed iteration at or before it-1, then
		// init-replay forward.
		if it > 0 && cursor < it-1 {
			from := weakAnchor(rec.Store, p, rt, it-1)
			if from <= cursor {
				from = cursor + 1
			}
			rt.SetMode(skipblock.ModeReplayInit)
			positionBlocks(p, rt, from)
			ctx.Log = nil
			for e := from; e < it; e++ {
				ctx.Env.SetInt(p.Main.IterVar, e)
				if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
					return nil, fmt.Errorf("replay: sample init iteration %d: %w", e, err)
				}
			}
		} else if it == 0 {
			positionBlocks(p, rt, 0)
		}
		// Replay the sampled iteration with log capture.
		rt.SetMode(skipblock.ModeReplayExec)
		positionBlocks(p, rt, it)
		ctx.Log = lg.Append
		ctx.Env.SetInt(p.Main.IterVar, it)
		if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
			return nil, fmt.Errorf("replay: sample iteration %d: %w", it, err)
		}
		cursor = it
	}
	return &SampleResult{
		Iterations: sample,
		Logs:       lg.Lines(),
		Probes:     diff.Probes,
		WallNs:     time.Since(t0).Nanoseconds(),
	}, nil
}
