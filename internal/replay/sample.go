package replay

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"flor.dev/flor/internal/adapt"
	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/runlog"
	"flor.dev/flor/internal/sched"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/skipblock"
	"flor.dev/flor/internal/store"
)

// SampleOptions configures a sampling replay for shared (daemon) use; the
// zero value is the standalone library behaviour.
type SampleOptions struct {
	// Cache shares decoded payloads with other queries over the same store.
	Cache *backmat.PayloadCache
	// Slots, when non-nil, gates the sample on one slot of a shared pool; a
	// sample's modeled cost is small, so the pool's cheapest-first ordering
	// lets it overtake queued full-replay workers.
	Slots sched.SlotSource
	// Ctx bounds the slot wait; nil means context.Background().
	Ctx context.Context
	// Trace, when non-nil, collects spans — slot wait, setup, one span per
	// sampled iteration, and tier-attributed restore spans — exactly like a
	// full replay's trace. Nil disables tracing at zero cost.
	Trace *obs.Trace
}

// ErrSampleRange reports a requested sample iteration outside the recorded
// main loop — caller input, not a replay failure (the daemon maps it to a
// client error).
var ErrSampleRange = errors.New("replay: sampled iteration out of range")

// SampleResult is the outcome of a sampling replay.
type SampleResult struct {
	Iterations []int // the iterations replayed, sorted
	Logs       []string
	Probes     map[string]bool
	WallNs     int64
	// Restore accounting. Fetch attributes restored bytes to store fetch
	// tiers and is zero unless the sample was traced (SampleOptions.Trace).
	Restored      int
	RestoredBytes int64
	RestoreNs     int64
	Fetch         store.FetchSnapshot
}

// ReplaySample replays only the given main-loop iterations (paper §8,
// "Partial Replay: Search and Approximation"): the worker-initialization
// mechanism gives random access to any iteration, so a replay need not scan
// the whole past. For each requested iteration the state is reconstructed
// from the nearest checkpoint (weak initialization) and the iteration is
// re-executed in replay-execution mode, producing its hindsight logs.
//
// Iterations are deduplicated and visited in ascending order; out-of-range
// iterations are an error. The deferred log check is skipped: a sample's
// log stream is a subsequence of the record log by construction, which
// callers can verify with runlog.PartialDeferredCheck.
func ReplaySample(rec *Recording, factory func() *script.Program, iterations []int) (*SampleResult, error) {
	return ReplaySampleWith(rec, factory, iterations, SampleOptions{})
}

// ReplaySampleWith is ReplaySample with daemon plumbing: a shared payload
// cache and a shared slot source (see SampleOptions).
func ReplaySampleWith(rec *Recording, factory func() *script.Program, iterations []int, sopts SampleOptions) (*SampleResult, error) {
	return ReplaySampleStream(rec, factory, iterations, sopts, nil)
}

// ReplaySampleStream is ReplaySampleWith with incremental delivery: after
// each sampled iteration replays, emit receives the iteration index and its
// log lines — before the next iteration starts. Long multi-point queries
// (binary searches over hundreds of epochs) surface their first results
// immediately and bound the caller's buffering to one iteration; the
// serving daemon streams these chunks over HTTP instead of buffering the
// whole response. An emit error aborts the replay and is returned as-is. A
// nil emit degrades to the buffered behavior. The returned SampleResult
// still aggregates everything emitted.
func ReplaySampleStream(rec *Recording, factory func() *script.Program, iterations []int, sopts SampleOptions, emit func(iteration int, logs []string) error) (*SampleResult, error) {
	p := factory()
	diff, err := script.DiffHindsight(rec.Shape, p)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if p.Main == nil {
		return nil, fmt.Errorf("replay: program has no main loop")
	}
	n := p.Main.Iters
	seen := map[int]bool{}
	var sample []int
	for _, it := range iterations {
		if it < 0 || it >= n {
			return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrSampleRange, it, n)
		}
		if !seen[it] {
			seen[it] = true
			sample = append(sample, it)
		}
	}
	sort.Ints(sample)

	// One slot covers the whole (sequential) sample. Its cost estimate — a
	// mean recorded iteration per sampled point — is deliberately coarse:
	// it only needs to be small next to a full replay's segments so the
	// pool's cheapest-first queue lets point queries through.
	tr := sopts.Trace
	if sopts.Slots != nil {
		ctx := sopts.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		var iterMean int64
		if rec.Timings != nil && len(rec.Timings.IterNs) > 0 {
			var sum int64
			for _, ns := range rec.Timings.IterNs {
				sum += ns
			}
			iterMean = sum / int64(len(rec.Timings.IterNs))
		}
		st0 := tr.Now()
		sw0 := time.Now()
		if err := sopts.Slots.Acquire(ctx, int64(len(sample))*iterMean); err != nil {
			return nil, err
		}
		defer sopts.Slots.Release()
		tr.Add(obs.Span{Name: "slot_wait", Worker: 0, StartNs: st0,
			DurNs: time.Since(sw0).Nanoseconds()})
	}

	tracker := adapt.New(adapt.DefaultEpsilon)
	if rec.Timings != nil && rec.Timings.C > 0 {
		tracker.SeedC(rec.Timings.C)
	}
	mat := backmat.New(rec.Store, backmat.Fork)
	defer mat.Close()
	rt := skipblock.NewRuntime(p, tracker, mat, rec.Store)
	rt.SetCache(sopts.Cache)
	rt.SetTrace(tr, 0)
	rt.SetProbes(diff.Probes)

	ctx := &script.Ctx{Env: script.NewEnv(), LoopHook: rt.Hook}
	t0 := time.Now()
	setup0 := tr.Now()
	if err := script.ExecStmts(ctx, p.Setup); err != nil {
		return nil, fmt.Errorf("replay: sample setup: %w", err)
	}
	tr.Add(obs.Span{Name: "setup", Worker: 0, StartNs: setup0,
		DurNs: time.Since(t0).Nanoseconds()})

	lg := runlog.New()
	cursor := -1 // last initialized iteration
	for _, it := range sample {
		// Reconstruct the state at the start of iteration `it`: jump to the
		// nearest fully checkpointed iteration at or before it-1, then
		// init-replay forward.
		if it > 0 && cursor < it-1 {
			from := weakAnchor(rec.Store, p, rt, it-1)
			if from <= cursor {
				from = cursor + 1
			}
			rt.SetMode(skipblock.ModeReplayInit)
			positionBlocks(p, rt, from)
			ctx.Log = nil
			for e := from; e < it; e++ {
				ctx.Env.SetInt(p.Main.IterVar, e)
				if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
					return nil, fmt.Errorf("replay: sample init iteration %d: %w", e, err)
				}
			}
		} else if it == 0 {
			positionBlocks(p, rt, 0)
		}
		// Replay the sampled iteration with log capture.
		rt.SetMode(skipblock.ModeReplayExec)
		positionBlocks(p, rt, it)
		mark := lg.Len()
		ctx.Log = lg.Append
		ctx.Env.SetInt(p.Main.IterVar, it)
		it0 := tr.Now()
		iw0 := time.Now()
		if err := script.ExecStmts(ctx, p.Main.Body); err != nil {
			return nil, fmt.Errorf("replay: sample iteration %d: %w", it, err)
		}
		tr.Add(obs.Span{Name: "work", Worker: 0, StartNs: it0,
			DurNs: time.Since(iw0).Nanoseconds(),
			Attrs: map[string]int64{"start": int64(it), "end": int64(it + 1)}})
		cursor = it
		if emit != nil {
			if err := emit(it, lg.Tail(mark)); err != nil {
				return nil, err
			}
		}
	}
	res := &SampleResult{
		Iterations: sample,
		Logs:       lg.Lines(),
		Probes:     diff.Probes,
		WallNs:     time.Since(t0).Nanoseconds(),
		Fetch:      rt.FetchSnapshot(),
	}
	for _, id := range rt.Blocks() {
		b, _ := rt.Block(id)
		st := b.Stats()
		res.Restored += st.Restored
		res.RestoredBytes += st.RestoredBytes
		res.RestoreNs += st.RestoreNs
	}
	return res, nil
}
