package ckptfmt

import (
	"bytes"
	"errors"
	"testing"

	"flor.dev/flor/internal/codec"
)

// fuzzSeeds returns valid encoded frames spanning both styles and several
// payload shapes, so the fuzzer starts from the structured format rather
// than random noise.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	payloads := [][]byte{
		{},
		[]byte("x"),
		[]byte("hello hindsight logging"),
		bytes.Repeat([]byte{0}, 4096), // compressible → deflate style
		bytes.Repeat([]byte{0xA5, 0x5A, 0x13, 7}, 1024), // patterned
	}
	// A high-entropy payload that stays raw.
	noisy := make([]byte, 1024)
	state := uint32(0x9E3779B9)
	for i := range noisy {
		state = state*1664525 + 1013904223
		noisy[i] = byte(state >> 24)
	}
	payloads = append(payloads, noisy)
	for _, p := range payloads {
		f := Build(p)
		seeds = append(seeds, f.Marshal())
		// Build never picks LZ4 on its own (the default heuristic keeps
		// raw/deflate), so seed explicit LZ4 frames too — the fuzzer must
		// exercise the match-copy decoder, not just the flate one.
		if g := BuildStyle(p, StyleLZ4); g.Style == StyleLZ4 {
			seeds = append(seeds, g.Marshal())
		}
	}
	// A hand-built LZ4 frame with overlapping matches (RLE mode), which the
	// heuristic fallback path would otherwise rarely hit.
	rle := bytes.Repeat([]byte("ab"), 2048)
	if g := BuildStyle(rle, StyleLZ4); g.Style == StyleLZ4 {
		seeds = append(seeds, g.Marshal())
	}
	return seeds
}

// FuzzDecodeFrame asserts the frame decoder's contract on arbitrary input:
// it never panics, any failure surfaces codec.ErrCorrupt, and an input that
// parses and decodes cleanly round-trips bit-identically through re-encode.
// This extends the corruption battery of the checkpoint format: the CRC and
// content hash must catch every mutation that changes decoded bytes.
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, n, err := Parse(b)
		if err != nil {
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("Parse error is not ErrCorrupt: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("Parse consumed %d of %d bytes", n, len(b))
		}
		raw, err := frame.Decode()
		if err != nil {
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("Decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		if len(raw) != frame.RawLen {
			t.Fatalf("decoded %d bytes, header says %d", len(raw), frame.RawLen)
		}
		if HashChunk(raw) != frame.Hash {
			t.Fatal("decoded bytes do not match the frame's content hash")
		}
		// A clean frame round-trips: rebuilding from the decoded bytes and
		// decoding again yields the same payload.
		again := Build(raw)
		raw2, err := again.Decode()
		if err != nil || !bytes.Equal(raw, raw2) {
			t.Fatalf("round-trip mismatch: %v", err)
		}
	})
}

// TestFuzzSeedsDecode pins the seed corpus itself: every seed parses,
// decodes, and any single-byte flip in the body is rejected with
// codec.ErrCorrupt (decode never silently succeeds on a mutation).
func TestFuzzSeedsDecode(t *testing.T) {
	for _, seed := range fuzzSeeds() {
		frame, n, err := Parse(seed)
		if err != nil || n != len(seed) {
			t.Fatalf("seed does not parse cleanly: n=%d err=%v", n, err)
		}
		if _, err := frame.Decode(); err != nil {
			t.Fatalf("seed does not decode: %v", err)
		}
		for i := 0; i < len(seed); i += 7 {
			mut := append([]byte(nil), seed...)
			mut[i] ^= 0x40
			f2, _, err := Parse(mut)
			if err == nil {
				_, err = f2.Decode()
			}
			if err == nil {
				// The flip may hit padding-free varint space and still form
				// a self-consistent frame only if it reproduced the
				// original; anything else must be caught.
				raw2, _ := f2.Decode()
				raw, _ := frame.Decode()
				if !bytes.Equal(raw, raw2) {
					t.Fatalf("byte flip at %d decoded divergent payload undetected", i)
				}
				continue
			}
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("byte flip at %d: error is not ErrCorrupt: %v", i, err)
			}
		}
	}
}
