package ckptfmt

import (
	"bytes"
	"errors"
	"testing"

	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/xrand"
)

// lz4Cases covers the block shapes the codec must round-trip: empty, tiny
// (below the match limit), pure runs (RLE via overlapping matches), long
// repeats (extended match lengths), incompressible noise (literal runs with
// 255-extensions), and mixed content.
func lz4Cases() [][]byte {
	rng := xrand.New(0x124C)
	noise := make([]byte, 300<<10)
	for i := range noise {
		noise[i] = byte(rng.Uint64())
	}
	mixed := make([]byte, 64<<10)
	for i := range mixed {
		if i%7 < 4 {
			mixed[i] = 0xAB
		} else {
			mixed[i] = byte(rng.Uint64())
		}
	}
	return [][]byte{
		{},
		[]byte("a"),
		[]byte("hello world,"),
		[]byte("hello world, hello"),
		bytes.Repeat([]byte{0}, 1<<20),
		bytes.Repeat([]byte("abcd"), 10000),
		bytes.Repeat([]byte("0123456789abcdef"), 3),
		noise,
		mixed,
	}
}

func TestLZ4RoundTrip(t *testing.T) {
	for i, raw := range lz4Cases() {
		enc := lz4Compress(raw, nil)
		dst := make([]byte, len(raw))
		if err := lz4Decompress(enc, dst); err != nil {
			t.Fatalf("case %d (%d bytes): decompress: %v", i, len(raw), err)
		}
		if !bytes.Equal(dst, raw) {
			t.Fatalf("case %d (%d bytes): round-trip mismatch", i, len(raw))
		}
		if len(enc) > lz4CompressBound(len(raw)) {
			t.Fatalf("case %d: encoded %d bytes exceeds bound %d", i, len(enc), lz4CompressBound(len(raw)))
		}
	}
}

func TestLZ4Deterministic(t *testing.T) {
	for i, raw := range lz4Cases() {
		a := lz4Compress(raw, nil)
		b := lz4Compress(raw, nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("case %d: non-deterministic encoding", i)
		}
	}
}

func TestBuildStyleLZ4Frames(t *testing.T) {
	compressible := bytes.Repeat([]byte("flor hindsight "), 4096)
	f := BuildStyle(compressible, StyleLZ4)
	if f.Style != StyleLZ4 {
		t.Fatalf("compressible chunk built style %d, want StyleLZ4", f.Style)
	}
	if len(f.Enc) >= len(compressible) {
		t.Fatalf("lz4 frame did not shrink: %d >= %d", len(f.Enc), len(compressible))
	}
	// Round-trip through the full frame wire format.
	wire := f.Marshal()
	g, n, err := Parse(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	raw, err := g.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(raw, compressible) {
		t.Fatal("lz4 frame round-trip mismatch")
	}
	// Incompressible chunks must fall back to raw even under a forced
	// StyleLZ4 preference.
	rng := xrand.New(7)
	noise := make([]byte, 8192)
	for i := range noise {
		noise[i] = byte(rng.Uint64())
	}
	if f := BuildStyle(noise, StyleLZ4); f.Style != StyleRaw {
		t.Fatalf("incompressible chunk built style %d, want StyleRaw fallback", f.Style)
	}
}

// TestLZ4DecompressCorrupt pins the failure mode of every malformed block
// shape: a typed codec.ErrCorrupt, never a panic or a silent short result.
func TestLZ4DecompressCorrupt(t *testing.T) {
	raw := bytes.Repeat([]byte("abcdefgh"), 64)
	enc := lz4Compress(raw, nil)
	cases := map[string][]byte{
		"empty src":        {},
		"truncated":        enc[:len(enc)/2],
		"missing token":    enc[:0],
		"offset too large": {0x01, 'x', 0xff, 0xff, 0x00},
		"zero offset":      {0x11, 'x', 0x00, 0x00, 0x00},
		"literal overrun":  {0xf0, 0xff, 0xff},
	}
	for name, bad := range cases {
		dst := make([]byte, len(raw))
		if err := lz4Decompress(bad, dst); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("%s: err = %v, want codec.ErrCorrupt", name, err)
		}
	}
	// A block decoding short of the destination is corrupt too.
	small := lz4Compress(raw[:16], nil)
	dst := make([]byte, len(raw))
	if err := lz4Decompress(small, dst); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("short block: err = %v, want codec.ErrCorrupt", err)
	}
}

// TestDecodeIntoTrustedMatchesDecode pins that the trusted fast path (hash
// recompute skipped) yields byte-identical results to the checked one on
// every style.
func TestDecodeIntoTrustedMatchesDecode(t *testing.T) {
	payloads := lz4Cases()
	for _, style := range []byte{StyleRaw, StyleDeflate, StyleLZ4, StyleAuto} {
		for i, raw := range payloads {
			f := BuildStyle(raw, style)
			a, err := f.DecodeInto(make([]byte, len(raw)))
			if err != nil {
				t.Fatalf("style %d case %d: DecodeInto: %v", style, i, err)
			}
			b, err := f.DecodeIntoTrusted(make([]byte, len(raw)))
			if err != nil {
				t.Fatalf("style %d case %d: DecodeIntoTrusted: %v", style, i, err)
			}
			if !bytes.Equal(a, b) || !bytes.Equal(a, raw) {
				t.Fatalf("style %d case %d: trusted/checked decode mismatch", style, i)
			}
		}
	}
}

func TestArenaReuse(t *testing.T) {
	a := NewArena()
	b := a.Get(1 << 20)
	if len(b) != 1<<20 {
		t.Fatalf("Get returned %d bytes", len(b))
	}
	a.Put(b)
	c := a.Get(512)
	if len(c) != 512 {
		t.Fatalf("Get returned %d bytes", len(c))
	}
	// Same backing array when the pooled buffer is large enough (pool reuse
	// is best-effort, so only check capacity plausibility, not identity).
	if cap(c) != 512 && cap(c) != 1<<20 {
		t.Fatalf("unexpected capacity %d", cap(c))
	}
	a.Put(c)
}
