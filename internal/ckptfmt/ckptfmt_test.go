package ckptfmt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/codec"
	"flor.dev/flor/internal/xrand"
)

// randomBytes returns n bytes of incompressible (float-mantissa-like) data.
func randomBytes(n int, seed uint64) []byte {
	rng := xrand.New(seed)
	b := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

func TestFrameRoundTripRaw(t *testing.T) {
	raw := randomBytes(4096, 7)
	f := Build(raw)
	if f.Style != StyleRaw {
		t.Fatalf("high-entropy chunk got style %d, want raw", f.Style)
	}
	wire := f.Marshal()
	g, consumed, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(wire) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(wire))
	}
	got, err := g.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("raw frame round trip mismatch")
	}
}

func TestFrameRoundTripDeflate(t *testing.T) {
	raw := bytes.Repeat([]byte("frozen layer weights "), 1000)
	f := Build(raw)
	if f.Style != StyleDeflate {
		t.Fatalf("compressible chunk got style %d, want deflate", f.Style)
	}
	if len(f.Enc) >= len(raw) {
		t.Fatalf("deflate frame did not shrink: %d >= %d", len(f.Enc), len(raw))
	}
	g, _, err := Parse(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("deflate frame round trip mismatch")
	}
}

func TestTinyChunksStayRaw(t *testing.T) {
	f := Build([]byte("short"))
	if f.Style != StyleRaw {
		t.Fatalf("tiny chunk got style %d, want raw", f.Style)
	}
}

func TestZeroFilledTensorCompresses(t *testing.T) {
	// A freshly initialized tensor is all zero bytes — the best case for the
	// entropy heuristic.
	raw := make([]byte, 64<<10)
	f := Build(raw)
	if f.Style != StyleDeflate {
		t.Fatalf("zero chunk got style %d, want deflate", f.Style)
	}
	if len(f.Enc) > len(raw)/100 {
		t.Fatalf("zero chunk barely compressed: %d bytes", len(f.Enc))
	}
}

// TestEveryFlippedByteDetected is the corruption guarantee: a flip anywhere
// in a frame — header, hash, body, or CRC — must surface codec.ErrCorrupt
// from Parse or Decode, never garbage data.
func TestEveryFlippedByteDetected(t *testing.T) {
	for _, raw := range [][]byte{
		randomBytes(512, 3),                  // raw style
		bytes.Repeat([]byte("weights"), 200), // deflate style
	} {
		f := Build(raw)
		wire := f.Marshal()
		for i := range wire {
			mut := bytes.Clone(wire)
			mut[i] ^= 0xff
			g, _, err := Parse(mut)
			if err == nil {
				_, err = g.Decode()
			}
			if err == nil {
				t.Fatalf("style %d: flipped byte %d went undetected", f.Style, i)
			}
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("style %d byte %d: error %v is not codec.ErrCorrupt", f.Style, i, err)
			}
		}
	}
}

func TestTruncatedFrameDetected(t *testing.T) {
	f := Build(randomBytes(256, 9))
	wire := f.Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := Parse(wire[:cut]); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("cut at %d: error %v is not codec.ErrCorrupt", cut, err)
		}
	}
}

func TestHashIsContentAddressed(t *testing.T) {
	a := randomBytes(1024, 1)
	if HashChunk(a) != HashChunk(bytes.Clone(a)) {
		t.Fatal("identical content hashed differently")
	}
	b := bytes.Clone(a)
	b[512] ^= 1
	if HashChunk(a) == HashChunk(b) {
		t.Fatal("distinct content collided")
	}
}

func TestEncodeChunksMatchesSerialBuild(t *testing.T) {
	// Parallel encode must be bit-identical to serial encode, regardless of
	// worker count.
	chunks := make([][]byte, 37)
	for i := range chunks {
		chunks[i] = randomBytes(1000+i*13, uint64(i)+1)
	}
	parallel := EncodeChunks(chunks)
	old := Workers
	Workers = 1
	serial := EncodeChunks(chunks)
	Workers = old
	for i := range chunks {
		if !bytes.Equal(parallel[i].Marshal(), serial[i].Marshal()) {
			t.Fatalf("chunk %d: parallel and serial encodings differ", i)
		}
	}
	got, err := DecodeAll(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if !bytes.Equal(got[i], chunks[i]) {
			t.Fatalf("chunk %d: parallel decode mismatch", i)
		}
	}
}

func TestDecodeAllSurfacesCorruption(t *testing.T) {
	frames := EncodeChunks([][]byte{randomBytes(300, 2), randomBytes(300, 3)})
	frames[1].Enc = bytes.Clone(frames[1].Enc)
	frames[1].Enc[10] ^= 0xff
	if _, err := DecodeAll(frames); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("error %v is not codec.ErrCorrupt", err)
	}
}

func TestDirectoryRoundTrip(t *testing.T) {
	d := &Directory{Sections: []SectionRef{
		{Name: "net", Chunks: []ChunkRef{
			{Hash: HashChunk([]byte("a")), RawLen: 100},
			{Hash: HashChunk([]byte("b")), RawLen: 42},
		}},
		{Name: "rng", Chunks: []ChunkRef{{Hash: HashChunk([]byte("c")), RawLen: 17}}},
		{Name: "empty"},
	}}
	got, err := DecodeDirectory(EncodeDirectory(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opaque || len(got.Sections) != 3 {
		t.Fatalf("directory = %+v", got)
	}
	if got.Sections[0].Name != "net" || len(got.Sections[0].Chunks) != 2 {
		t.Fatalf("section 0 = %+v", got.Sections[0])
	}
	if got.Sections[0].Chunks[1] != d.Sections[0].Chunks[1] {
		t.Fatal("chunk ref mismatch")
	}
	if got.RawLen() != 159 {
		t.Fatalf("RawLen = %d, want 159", got.RawLen())
	}

	op := &Directory{Opaque: true, Sections: []SectionRef{{Name: "", Chunks: []ChunkRef{{Hash: HashChunk(nil), RawLen: 5}}}}}
	got2, err := DecodeDirectory(EncodeDirectory(op))
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Opaque {
		t.Fatal("opaque flag lost")
	}
}

func TestDirectoryRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("FLV1"), randomBytes(64, 11)} {
		if _, err := DecodeDirectory(b); err == nil {
			t.Fatalf("garbage directory %q decoded", b)
		}
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		fr := Build(raw)
		parsed, consumed, err := Parse(fr.Marshal())
		if err != nil || consumed != len(fr.Marshal()) {
			return false
		}
		got, err := parsed.Decode()
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelDoCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		hits := make([]int32, n)
		ParallelDo(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestSampleEntropyBounds(t *testing.T) {
	if h := codec.SampleEntropy(randomBytes(64<<10, 5)); h < 7.5 {
		t.Fatalf("random data entropy %f, want near 8", h)
	}
	if h := codec.SampleEntropy(make([]byte, 1024)); h != 0 {
		t.Fatalf("zero data entropy %f, want 0", h)
	}
	if h := codec.SampleEntropy(nil); h != 0 {
		t.Fatalf("empty entropy %f", h)
	}
	uniform := make([]byte, 256)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if h := codec.SampleEntropy(uniform); math.Abs(h-8) > 1e-9 {
		t.Fatalf("uniform entropy %f, want exactly 8", h)
	}
}

// frameStyles builds one frame per wire style from matching source data:
// incompressible for raw, repetitive for deflate and lz4.
func frameStyles() []Frame {
	return []Frame{
		BuildStyle(randomBytes(2048, 21), StyleRaw),
		BuildStyle(bytes.Repeat([]byte("layer.0.weight"), 150), StyleDeflate),
		BuildStyle(bytes.Repeat([]byte("layer.1.weight"), 150), StyleLZ4),
	}
}

func TestParseDecodeIntoAllStyles(t *testing.T) {
	for _, f := range frameStyles() {
		wire := f.Marshal()
		want, err := f.Decode()
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, f.RawLen)
		g, err := ParseDecodeInto(wire, dst)
		if err != nil {
			t.Fatalf("style %d: %v", f.Style, err)
		}
		if g.Hash != f.Hash || !bytes.Equal(dst, want) {
			t.Fatalf("style %d: ParseDecodeInto mismatch", f.Style)
		}
		for i := range wire {
			mut := bytes.Clone(wire)
			mut[i] ^= 0xff
			if _, err := ParseDecodeInto(mut, make([]byte, f.RawLen)); !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("style %d byte %d: flipped byte gave %v, not codec.ErrCorrupt", f.Style, i, err)
			}
		}
	}
}

func TestDecodeFrameAtAllStyles(t *testing.T) {
	for _, f := range frameStyles() {
		// Surround the frame with junk so a ranged read that strays off the
		// record would be caught by the CRC.
		pre := randomBytes(33, 5)
		wire := f.Marshal()
		pack := append(append(bytes.Clone(pre), wire...), randomBytes(29, 6)...)
		want, err := f.Decode()
		if err != nil {
			t.Fatal(err)
		}
		for _, expected := range []bool{false, true} {
			dst := make([]byte, f.RawLen)
			var h Hash
			if expected {
				h, err = DecodeExpectedFrameAt(bytes.NewReader(pack), int64(len(pre)), len(wire), f.Hash, dst)
			} else {
				h, err = DecodeFrameAt(bytes.NewReader(pack), int64(len(pre)), len(wire), dst)
			}
			if err != nil {
				t.Fatalf("style %d expected=%v: %v", f.Style, expected, err)
			}
			if h != f.Hash || !bytes.Equal(dst, want) {
				t.Fatalf("style %d expected=%v: decode mismatch", f.Style, expected)
			}
		}
		for i := range wire {
			mut := append(bytes.Clone(pre), bytes.Clone(wire)...)
			mut[len(pre)+i] ^= 0xff
			dst := make([]byte, f.RawLen)
			if _, err := DecodeFrameAt(bytes.NewReader(mut), int64(len(pre)), len(wire), dst); !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("style %d byte %d: DecodeFrameAt gave %v, not codec.ErrCorrupt", f.Style, i, err)
			}
			dst = make([]byte, f.RawLen)
			h, err := DecodeExpectedFrameAt(bytes.NewReader(mut), int64(len(pre)), len(wire), f.Hash, dst)
			if f.Style == StyleRaw && i < len(wire)-f.RawLen-4 {
				// Raw fast path: header bytes are reconstructed from the
				// trusted ref, never read, so on-disk header damage is
				// invisible — and harmless: the payload must still checksum
				// against the known-good header.
				if err != nil || h != f.Hash || !bytes.Equal(dst, want) {
					t.Fatalf("style %d header byte %d: fast path gave %v", f.Style, i, err)
				}
			} else if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("style %d byte %d: DecodeExpectedFrameAt gave %v, not codec.ErrCorrupt", f.Style, i, err)
			}
		}
	}
}

func TestDecodeExpectedFrameAtWrongHashFallsBack(t *testing.T) {
	f := BuildStyle(randomBytes(1024, 31), StyleRaw)
	wire := f.Marshal()
	var wrong Hash
	wrong[0] = ^f.Hash[0]
	dst := make([]byte, f.RawLen)
	// A wrong expectation must not error here — the frame itself is intact;
	// the returned (true) hash lets the caller detect the mismatch.
	h, err := DecodeExpectedFrameAt(bytes.NewReader(wire), 0, len(wire), wrong, dst)
	if err != nil {
		t.Fatal(err)
	}
	if h != f.Hash {
		t.Fatalf("returned hash %s, want the stored %s", h, f.Hash)
	}
	if raw, _ := f.Decode(); !bytes.Equal(dst, raw) {
		t.Fatal("payload mismatch after fallback")
	}
}
