package ckptfmt

import (
	"encoding/binary"
	"fmt"

	"flor.dev/flor/internal/codec"
)

// LZ4 block codec, implemented here so the frame format stays dependency-
// free. The encoding is the classic LZ4 block format: a stream of sequences,
// each a token byte (high nibble = literal length, low nibble = match length
// minus 4, value 15 meaning "extended by 255-run bytes"), the literals, a
// 2-byte little-endian match offset, and the match-length extension. The
// final sequence carries literals only. Unlike DEFLATE there is no entropy
// stage: compression is a single hash-table pass and decompression is pure
// byte copying, which is what makes the style usable on the restore hot path
// — decode runs near memcpy speed while still collapsing repeated runs
// (zero-initialized optimizer state, embedding padding, repeated headers).
//
// The encoder is deterministic: one fixed hash table, greedy matching, no
// randomized or time-dependent choices — the same raw bytes always produce
// the same frame bytes, which the content-addressed store relies on.
const (
	lz4MinMatch = 4
	lz4HashLog  = 14
	// lz4MFLimit: matches must not start within the last 12 bytes, and may
	// not extend into the last 5 (the spec's end-of-block conditions, kept so
	// any compliant decoder accepts our blocks).
	lz4MFLimit = 12
	lz4LastLit = 5
)

func lz4Hash(u uint32) uint32 {
	return (u * 2654435761) >> (32 - lz4HashLog)
}

// lz4CompressBound returns the maximum encoded size of an n-byte block
// (incompressible input expands by one token per 255-literal run).
func lz4CompressBound(n int) int {
	return n + n/255 + 16
}

// lz4AppendLen appends an LZ4 length extension: runs of 255 plus a final
// remainder byte.
func lz4AppendLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// lz4AppendSeq appends one sequence: literals lit, then (unless this is the
// trailing literal-only sequence, offset == 0) a match of matchLen bytes at
// the given backward offset.
func lz4AppendSeq(dst, lit []byte, offset, matchLen int) []byte {
	var token byte
	litLen := len(lit)
	if litLen >= 15 {
		token = 0xf0
	} else {
		token = byte(litLen) << 4
	}
	if offset == 0 {
		dst = append(dst, token)
		if litLen >= 15 {
			dst = lz4AppendLen(dst, litLen-15)
		}
		return append(dst, lit...)
	}
	ml := matchLen - lz4MinMatch
	if ml >= 15 {
		token |= 0x0f
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lz4AppendLen(dst, litLen-15)
	}
	dst = append(dst, lit...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lz4AppendLen(dst, ml-15)
	}
	return dst
}

// lz4Compress appends the LZ4 block encoding of src to dst and returns the
// extended slice.
func lz4Compress(src, dst []byte) []byte {
	n := len(src)
	if n < lz4MFLimit+1 {
		return lz4AppendSeq(dst, src, 0, 0)
	}
	var table [1 << lz4HashLog]int32 // position+1 of the last occurrence of a 4-byte word; 0 = empty
	anchor := 0
	limit := n - lz4MFLimit
	matchLimit := n - lz4LastLit
	i := 0
	for i < limit {
		w := binary.LittleEndian.Uint32(src[i:])
		h := lz4Hash(w)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > 0xffff || binary.LittleEndian.Uint32(src[cand:]) != w {
			i++
			continue
		}
		// Extend the match forward, staying clear of the last-literals zone.
		m := i + lz4MinMatch
		c := cand + lz4MinMatch
		for m < matchLimit && src[m] == src[c] {
			m++
			c++
		}
		dst = lz4AppendSeq(dst, src[anchor:i], i-cand, m-i)
		i = m
		anchor = m
	}
	return lz4AppendSeq(dst, src[anchor:], 0, 0)
}

// lz4Decompress decodes an LZ4 block into dst, which must be exactly the
// block's decoded length. Every malformed shape — truncated sequence, offset
// before the start, output over- or underrun — surfaces codec.ErrCorrupt.
func lz4Decompress(src, dst []byte) error {
	si, di := 0, 0
	corrupt := func(what string) error {
		return fmt.Errorf("%w: lz4 block: %s (src %d/%d, dst %d/%d)", codec.ErrCorrupt, what, si, len(src), di, len(dst))
	}
	readLen := func(base int) (int, error) {
		n := base
		if base == 15 {
			for {
				if si >= len(src) {
					return 0, corrupt("truncated length run")
				}
				b := src[si]
				si++
				n += int(b)
				if b != 255 {
					break
				}
			}
		}
		return n, nil
	}
	for {
		if si >= len(src) {
			return corrupt("missing token")
		}
		token := src[si]
		si++
		litLen, err := readLen(int(token >> 4))
		if err != nil {
			return err
		}
		if litLen > len(src)-si || litLen > len(dst)-di {
			return corrupt("literal overrun")
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			// Trailing literal-only sequence: the block must land exactly.
			if di != len(dst) {
				return corrupt("short block")
			}
			return nil
		}
		if len(src)-si < 2 {
			return corrupt("truncated offset")
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return corrupt("match offset out of range")
		}
		matchLen, err := readLen(int(token & 0x0f))
		if err != nil {
			return err
		}
		matchLen += lz4MinMatch
		if matchLen > len(dst)-di {
			return corrupt("match overrun")
		}
		// Byte-wise copy: overlapping matches (offset < matchLen) replicate
		// the run, which is the format's RLE mode.
		m := di - offset
		for k := 0; k < matchLen; k++ {
			dst[di+k] = dst[m+k]
		}
		di += matchLen
	}
}
