// Package ckptfmt implements checkpoint payload format v2: a frame-based,
// parallel, content-addressed encoding of checkpoint state.
//
// Format v1 encodes a whole checkpoint as one blob produced and consumed on
// a single goroutine, so both materialization and restore run at
// single-core serialization speed — the dominant cost the paper's
// background-materialization machinery exists to hide (§5.1). Format v2
// removes the single-stream bottleneck instead of merely hiding it:
//
//   - A checkpoint payload is split into frames: one section per environment
//     entry, with large tensor payloads chunked further (codec.SplitChunks).
//   - Each frame is independently encodable and decodable. It carries its
//     own style byte (StyleRaw or StyleDeflate chosen by a size/entropy
//     heuristic, or the opt-in StyleLZ4 block style whose decode runs near
//     memcpy speed), its own CRC-32C over the encoded bytes, and a 128-bit
//     content hash of the raw bytes.
//   - Because frames are independent, encode and decode fan out across a
//     worker pool (ParallelDo); results are bit-identical regardless of how
//     work is distributed over goroutines.
//   - The content hash makes chunks addressable: the store keeps one copy of
//     each distinct chunk per run, so checkpoints that repeat state across
//     executions (frozen layers, datasets, configuration) store it once and
//     reference it by hash thereafter (cross-checkpoint dedup).
//
// The package defines the frame wire format and the segment directory that
// maps named sections to chunk references; internal/store owns where frame
// bytes live on disk (the chunk pack) and the run-level dedup index.
package ckptfmt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"flor.dev/flor/internal/codec"
)

// Frame styles: how raw chunk bytes are encoded on disk.
const (
	// StyleRaw stores chunk bytes verbatim.
	StyleRaw byte = 0
	// StyleDeflate stores chunk bytes DEFLATE-compressed (BestSpeed).
	StyleDeflate byte = 1
	// StyleLZ4 stores chunk bytes as a hand-rolled LZ4 block (lz4.go):
	// match-copy decompression with no entropy stage, so decode runs near
	// memcpy speed on the restore hot path. Stores that write LZ4 frames
	// flag it in their FORMAT marker so older builds refuse cleanly.
	StyleLZ4 byte = 2

	// StyleAuto is not a wire style: passed to BuildStyle it selects the
	// raw/deflate size-and-entropy heuristic (the default Build behaviour).
	StyleAuto byte = 0xff
)

// Style-selection heuristic: chunks smaller than minDeflateSize never pay
// for a deflate stream's overhead, and chunks whose sampled byte entropy
// exceeds maxDeflateEntropy bits/byte (trained float tensors, already
// compressed data) are stored raw rather than burning CPU for ~0 gain.
const (
	minDeflateSize    = 128
	maxDeflateEntropy = 6.5
)

// Hash is a 128-bit content hash; chunks are deduplicated by it.
type Hash [16]byte

// String renders the hash in hex for logs and errors.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// Word-wise hash constants: the xxh64 primes plus the murmur3 finalizer
// multipliers, combined into a two-lane absorb/finalize construction. The
// classic byte-at-a-time FNV runs well under serialization bandwidth, which
// would put hashing — not encoding — on the materialization critical path;
// absorbing 8 bytes per multiply keeps content addressing in the noise.
const (
	hashP1 = 0x9E3779B185EBCA87
	hashP2 = 0xC2B2AE3D27D4EB4F
	hashP3 = 0x165667B19E3779F9
	fmixM1 = 0xff51afd7ed558ccd
	fmixM2 = 0xc4ceb9fe1a85ec53
)

// fmix64 is the murmur3 64-bit finalizer: full avalanche over one word.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= fmixM1
	x ^= x >> 33
	x *= fmixM2
	x ^= x >> 33
	return x
}

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// HashChunk returns the 128-bit content hash of raw chunk bytes: two lanes
// absorb the input a word at a time and are cross-mixed through fmix64, so
// the hash runs at memory bandwidth while keeping enough avalanche for
// content addressing. (FNV-style simplicity, wide like the BLAKE family's
// digests; not cryptographic — dedup trusts the training process, not an
// adversary.)
func HashChunk(b []byte) Hash {
	n := uint64(len(b))
	h1 := hashP3 ^ n
	h2 := hashP1 + n*hashP2
	i := 0
	for ; i+16 <= len(b); i += 16 {
		w1 := binary.LittleEndian.Uint64(b[i:])
		w2 := binary.LittleEndian.Uint64(b[i+8:])
		h1 = rotl64(h1^(w1*hashP2), 27) * hashP1
		h2 = rotl64(h2^(w2*hashP1), 31) * hashP2
	}
	if i+8 <= len(b) {
		w := binary.LittleEndian.Uint64(b[i:])
		h1 = rotl64(h1^(w*hashP2), 27) * hashP1
		i += 8
	}
	if i < len(b) {
		var tail [8]byte
		copy(tail[:], b[i:])
		w := binary.LittleEndian.Uint64(tail[:]) | uint64(len(b)-i)<<56
		h2 = rotl64(h2^(w*hashP1), 31) * hashP2
	}
	a := fmix64(h1 ^ rotl64(h2, 17))
	c := fmix64(h2 ^ rotl64(h1, 43) ^ n*hashP3)
	var h Hash
	binary.LittleEndian.PutUint64(h[:8], a)
	binary.LittleEndian.PutUint64(h[8:], c)
	return h
}

// HashOfHashes derives a composite identity from an ordered hash list; a
// section's identity is the hash of its chunks' hashes, letting restore
// caches recognize repeated content before any chunk bytes are read.
func HashOfHashes(hs []Hash) Hash {
	buf := make([]byte, 0, 16*len(hs))
	for _, h := range hs {
		buf = append(buf, h[:]...)
	}
	return HashChunk(buf)
}

// Frame is one independently encoded chunk of checkpoint payload.
type Frame struct {
	Style  byte
	RawLen int    // decoded length
	Hash   Hash   // content hash of the raw bytes
	Enc    []byte // encoded bytes (verbatim or deflate, per Style)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Build encodes one raw chunk into a frame, choosing the style by the
// size/entropy heuristic and keeping the raw encoding whenever deflate fails
// to actually shrink the chunk.
func Build(raw []byte) Frame { return BuildStyle(raw, StyleAuto) }

// BuildStyle encodes one raw chunk with an explicit style preference.
// StyleAuto applies the raw/deflate heuristic; an explicit StyleDeflate or
// StyleLZ4 skips the entropy gate but still falls back to StyleRaw whenever
// the compressed encoding fails to shrink the chunk, so a style preference
// can never make a frame larger than the verbatim one.
func BuildStyle(raw []byte, style byte) Frame {
	f := Frame{Style: StyleRaw, RawLen: len(raw), Hash: HashChunk(raw), Enc: raw}
	switch style {
	case StyleRaw:
		return f
	case StyleLZ4:
		if len(raw) < lz4MFLimit+1 {
			return f
		}
		enc := lz4Compress(raw, make([]byte, 0, lz4CompressBound(len(raw))))
		if len(enc) < len(raw) {
			f.Style = StyleLZ4
			f.Enc = enc
		}
		return f
	case StyleDeflate:
		return buildDeflate(f, raw)
	default: // StyleAuto
		if len(raw) < minDeflateSize || codec.SampleEntropy(raw) > maxDeflateEntropy {
			return f
		}
		return buildDeflate(f, raw)
	}
}

// buildDeflate attempts the deflate encoding, keeping raw on any failure or
// non-shrinking result.
func buildDeflate(f Frame, raw []byte) Frame {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return f
	}
	if _, err := zw.Write(raw); err != nil {
		return f
	}
	if err := zw.Close(); err != nil {
		return f
	}
	if buf.Len() < len(raw) {
		f.Style = StyleDeflate
		f.Enc = buf.Bytes()
	}
	return f
}

// EncodeChunks builds a frame per raw chunk, in parallel across the worker
// pool. Output order matches input order.
func EncodeChunks(chunks [][]byte) []Frame { return EncodeChunksStyle(chunks, StyleAuto) }

// EncodeChunksStyle is EncodeChunks with an explicit style preference.
func EncodeChunksStyle(chunks [][]byte, style byte) []Frame {
	frames := make([]Frame, len(chunks))
	ParallelDo(len(chunks), func(i int) {
		frames[i] = BuildStyle(chunks[i], style)
	})
	return frames
}

// Frame wire format:
//
//	style(1) | uvarint rawLen | uvarint encLen | hash(16) | enc | crc32c(4)
//
// The CRC covers every preceding byte of the frame, so a flip anywhere —
// header, hash, or body — is detected before decompression is attempted.

// appendHeader serializes a frame header — style, rawLen, encLen, hash — onto
// dst. The encoding is canonical (PutUvarint emits minimal varints), so a
// header is fully determined by those four values.
func appendHeader(dst []byte, style byte, rawLen, encLen int, h Hash) []byte {
	dst = append(dst, style)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(rawLen))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(encLen))
	dst = append(dst, tmp[:n]...)
	return append(dst, h[:]...)
}

// Append serializes the frame onto dst and returns the extended slice.
func (f *Frame) Append(dst []byte) []byte {
	start := len(dst)
	dst = appendHeader(dst, f.Style, f.RawLen, len(f.Enc), f.Hash)
	dst = append(dst, f.Enc...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(dst[start:], castagnoli))
	return append(dst, crc[:]...)
}

// Marshal serializes the frame into a fresh buffer.
func (f *Frame) Marshal() []byte {
	return f.Append(make([]byte, 0, len(f.Enc)+32))
}

// maxHeaderLen bounds a frame header: the style byte, two uvarints, and the
// 16-byte content hash. A prefix this long is always enough to parse the
// header of any well-formed frame.
const maxHeaderLen = 1 + 2*binary.MaxVarintLen64 + 16

// parseHeaderPrefix decodes the fixed leading fields of a frame — style,
// rawLen, encLen, content hash — from a prefix of the frame bytes. The
// prefix need not include the payload; the returned frame's Enc is nil.
// hdrLen is the header's byte length (Enc begins there).
func parseHeaderPrefix(b []byte) (f Frame, encLen, hdrLen int, err error) {
	if len(b) < 1 {
		return f, 0, 0, fmt.Errorf("%w: empty frame", codec.ErrCorrupt)
	}
	f.Style = b[0]
	off := 1
	rawLen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return f, 0, 0, fmt.Errorf("%w: bad frame rawLen", codec.ErrCorrupt)
	}
	off += n
	el, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return f, 0, 0, fmt.Errorf("%w: bad frame encLen", codec.ErrCorrupt)
	}
	off += n
	if len(b)-off < 16 {
		return f, 0, 0, fmt.Errorf("%w: truncated frame header (need %d bytes, have %d)",
			codec.ErrCorrupt, off+16, len(b))
	}
	copy(f.Hash[:], b[off:])
	off += 16
	f.RawLen = int(rawLen)
	return f, int(el), off, nil
}

// parseHeader reads a frame's header from the front of b without verifying
// the CRC: hdrEnd is the offset where Enc begins, encEnd where it ends (the
// CRC trailer follows). The returned frame's Enc aliases b.
func parseHeader(b []byte) (f Frame, hdrEnd, encEnd int, err error) {
	f, encLen, hdrEnd, err := parseHeaderPrefix(b)
	if err != nil {
		return f, 0, 0, err
	}
	if len(b)-hdrEnd < encLen+4 {
		return f, 0, 0, fmt.Errorf("%w: truncated frame (need %d bytes, have %d)",
			codec.ErrCorrupt, hdrEnd+encLen+4, len(b))
	}
	f.Enc = b[hdrEnd : hdrEnd+encLen]
	return f, hdrEnd, hdrEnd + encLen, nil
}

// Parse reads one frame from the front of b, verifying its CRC, and returns
// the number of bytes consumed. The returned frame's Enc aliases b.
func Parse(b []byte) (Frame, int, error) {
	f, _, encEnd, err := parseHeader(b)
	if err != nil {
		return f, 0, err
	}
	want := binary.LittleEndian.Uint32(b[encEnd:])
	if got := crc32.Checksum(b[:encEnd], castagnoli); got != want {
		return f, 0, fmt.Errorf("%w: frame CRC mismatch (got %08x want %08x)", codec.ErrCorrupt, got, want)
	}
	return f, encEnd + 4, nil
}

// ParseDecodeInto parses the frame at the front of b, decodes it into dst
// (which must be exactly RawLen bytes), and verifies the frame CRC. For
// raw-style frames the copy into dst runs first and the checksum then reads
// the hot copy (plus the few header bytes), so the source — typically a
// cold memory-mapped pack — is streamed exactly once instead of once for
// the CRC and again for the copy. Other styles fall back to Parse +
// DecodeIntoTrusted, whose decompression is already the second pass.
//
// Like DecodeIntoTrusted, the decoded bytes' content hash is not recomputed:
// callers must match the returned frame's Hash against an independently
// stored reference. On any error dst's contents are unspecified.
func ParseDecodeInto(b, dst []byte) (Frame, error) {
	f, hdrEnd, encEnd, err := parseHeader(b)
	if err != nil {
		return f, err
	}
	if f.Style != StyleRaw || len(f.Enc) != f.RawLen || len(dst) != f.RawLen {
		ff, _, err := Parse(b)
		if err != nil {
			return ff, err
		}
		if _, err := ff.DecodeIntoTrusted(dst); err != nil {
			return ff, err
		}
		return ff, nil
	}
	copy(dst, f.Enc)
	want := binary.LittleEndian.Uint32(b[encEnd:])
	got := crc32.Update(crc32.Update(0, castagnoli, b[:hdrEnd]), castagnoli, dst)
	if got != want {
		return f, fmt.Errorf("%w: frame CRC mismatch (got %08x want %08x)", codec.ErrCorrupt, got, want)
	}
	return f, nil
}

// DecodeFrameAt reads the frame record at [off, off+frameLen) of r, decodes
// it into dst (which must be exactly the frame's raw length), verifies the
// frame CRC, and returns the frame's stored content hash for the caller to
// match against its independent reference (the trusted-path contract of
// DecodeIntoTrusted: no content-hash recompute here).
//
// For raw-style frames the payload is read by one ranged read straight into
// dst — no staging buffer, no mapping — plus two tiny reads for the header
// and the CRC trailer; the checksum then runs over the hot copy. Other
// styles stage the record in a recycled span and take the Parse +
// DecodeIntoTrusted path. On any error dst's contents are unspecified.
func DecodeFrameAt(r io.ReaderAt, off int64, frameLen int, dst []byte) (Hash, error) {
	var hdr [maxHeaderLen]byte
	probe := frameLen
	if probe > len(hdr) {
		probe = len(hdr)
	}
	if _, err := r.ReadAt(hdr[:probe], off); err != nil {
		return Hash{}, fmt.Errorf("%w: frame header read: %v", codec.ErrCorrupt, err)
	}
	f, encLen, hdrLen, err := parseHeaderPrefix(hdr[:probe])
	if err != nil {
		return Hash{}, err
	}
	if hdrLen+encLen+4 != frameLen {
		return Hash{}, fmt.Errorf("%w: frame record is %d bytes, header implies %d",
			codec.ErrCorrupt, frameLen, hdrLen+encLen+4)
	}
	if len(dst) != f.RawLen {
		return Hash{}, fmt.Errorf("ckptfmt: DecodeFrameAt buffer is %d bytes, frame holds %d", len(dst), f.RawLen)
	}
	if f.Style == StyleRaw && encLen == f.RawLen {
		if _, err := r.ReadAt(dst, off+int64(hdrLen)); err != nil {
			return Hash{}, fmt.Errorf("%w: frame payload read: %v", codec.ErrCorrupt, err)
		}
		var tail [4]byte
		if _, err := r.ReadAt(tail[:], off+int64(hdrLen+encLen)); err != nil {
			return Hash{}, fmt.Errorf("%w: frame CRC read: %v", codec.ErrCorrupt, err)
		}
		want := binary.LittleEndian.Uint32(tail[:])
		got := crc32.Update(crc32.Update(0, castagnoli, hdr[:hdrLen]), castagnoli, dst)
		if got != want {
			return Hash{}, fmt.Errorf("%w: frame CRC mismatch (got %08x want %08x)", codec.ErrCorrupt, got, want)
		}
		return f.Hash, nil
	}
	span := Shared.Get(frameLen)
	defer Shared.Put(span)
	if _, err := r.ReadAt(span, off); err != nil {
		return Hash{}, fmt.Errorf("%w: frame read: %v", codec.ErrCorrupt, err)
	}
	ff, _, err := Parse(span)
	if err != nil {
		return Hash{}, err
	}
	if _, err := ff.DecodeIntoTrusted(dst); err != nil {
		return Hash{}, err
	}
	return ff.Hash, nil
}

// DecodeExpectedFrameAt is DecodeFrameAt for a caller that already knows,
// from an independently stored directory ref, the raw length (len(dst)) and
// content hash the frame should carry. A raw-style frame with those values
// has a fully determined header (the encoding is canonical), so when the
// synthesized header's length is consistent with frameLen the record is
// decoded with just two ranged reads — payload straight into dst and the
// 4-byte CRC trailer — and no header read or parse at all: the trailer was
// computed over header + payload at write time, so it matches the checksum of
// synthesized header + hot payload exactly when the payload carries the
// expected content. (The on-disk header bytes themselves go unread and thus
// unverified — nothing depends on them.) Any mismatch — a compressed frame of
// coincidental size, payload corruption, or different content — falls back to
// DecodeFrameAt for a precise verdict; callers must still match the returned
// hash against their reference.
func DecodeExpectedFrameAt(r io.ReaderAt, off int64, frameLen int, want Hash, dst []byte) (Hash, error) {
	var buf [maxHeaderLen]byte
	hdr := appendHeader(buf[:0], StyleRaw, len(dst), len(dst), want)
	if len(hdr)+len(dst)+4 == frameLen {
		if _, err := r.ReadAt(dst, off+int64(len(hdr))); err != nil {
			return Hash{}, fmt.Errorf("%w: frame payload read: %v", codec.ErrCorrupt, err)
		}
		var tail [4]byte
		if _, err := r.ReadAt(tail[:], off+int64(frameLen-4)); err != nil {
			return Hash{}, fmt.Errorf("%w: frame CRC read: %v", codec.ErrCorrupt, err)
		}
		got := crc32.Update(crc32.Update(0, castagnoli, hdr), castagnoli, dst)
		if got == binary.LittleEndian.Uint32(tail[:]) {
			return want, nil
		}
	}
	return DecodeFrameAt(r, off, frameLen, dst)
}

// DecodeGatheredRaw verifies a raw-style frame whose record was scatter-read
// in pieces by vectored IO: hdr holds the on-disk header bytes, dst the
// payload (already in its final buffer), tail the 4-byte CRC trailer.
// ok=false reports that the bytes are not the plain raw frame of dst's
// length the caller assumed when splitting the record — the caller must
// re-read through a general path for a verdict; an error means the shape
// matched but the checksum did not: the record is corrupt.
func DecodeGatheredRaw(hdr, dst, tail []byte) (Hash, bool, error) {
	f, encLen, hdrLen, err := parseHeaderPrefix(hdr)
	if err != nil || f.Style != StyleRaw || encLen != len(dst) || f.RawLen != len(dst) || hdrLen != len(hdr) {
		return Hash{}, false, nil
	}
	got := crc32.Update(crc32.Update(0, castagnoli, hdr), castagnoli, dst)
	if want := binary.LittleEndian.Uint32(tail); got != want {
		return Hash{}, false, fmt.Errorf("%w: frame CRC mismatch (got %08x want %08x)", codec.ErrCorrupt, got, want)
	}
	return f.Hash, true, nil
}

// Decode recovers the frame's raw chunk bytes, verifying length and content
// hash; any mismatch surfaces codec.ErrCorrupt. Raw-style frames return a
// slice aliasing Enc (zero copy).
func (f *Frame) Decode() ([]byte, error) { return f.DecodeInto(nil) }

// DecodeInto decodes into dst, which must be exactly RawLen bytes (or nil
// to let the frame choose: alias for raw style, fresh buffer for deflate and
// lz4). Assembling a multi-chunk section decodes every frame straight into
// its slice of one preallocated buffer, with no intermediate copies.
func (f *Frame) DecodeInto(dst []byte) ([]byte, error) {
	raw, err := f.decodeInto(dst)
	if err != nil {
		return nil, err
	}
	if HashChunk(raw) != f.Hash {
		return nil, fmt.Errorf("%w: frame content hash mismatch", codec.ErrCorrupt)
	}
	return raw, nil
}

// DecodeIntoTrusted is DecodeInto without the content-hash recompute over
// the decoded bytes. It is only for callers that have already (a) verified
// the frame's CRC via Parse — which covers the header, the stored hash, and
// every encoded byte — and (b) matched f.Hash against an independently
// stored reference (the segment directory's chunk ref). On that path the
// recompute adds no integrity, only a second full pass over the chunk; the
// public Decode/DecodeInto contract keeps the recompute for everyone else.
func (f *Frame) DecodeIntoTrusted(dst []byte) ([]byte, error) { return f.decodeInto(dst) }

func (f *Frame) decodeInto(dst []byte) ([]byte, error) {
	if dst != nil && len(dst) != f.RawLen {
		return nil, fmt.Errorf("ckptfmt: DecodeInto buffer is %d bytes, frame holds %d", len(dst), f.RawLen)
	}
	var raw []byte
	switch f.Style {
	case StyleRaw:
		if len(f.Enc) != f.RawLen {
			return nil, fmt.Errorf("%w: raw frame is %d bytes, header says %d", codec.ErrCorrupt, len(f.Enc), f.RawLen)
		}
		if dst == nil {
			raw = f.Enc
		} else {
			copy(dst, f.Enc)
			raw = dst
		}
	case StyleDeflate:
		zr := flate.NewReader(bytes.NewReader(f.Enc))
		if dst != nil {
			if _, err := io.ReadFull(zr, dst); err != nil {
				zr.Close()
				// io.EOF / io.ErrUnexpectedEOF here means the stream ended
				// before RawLen bytes: a truncated frame, never a short read
				// to return silently.
				return nil, fmt.Errorf("%w: frame inflate: %v", codec.ErrCorrupt, err)
			}
			// The stream must end exactly at RawLen: drain one byte and
			// require a clean EOF, so both trailing garbage and a stream
			// truncated mid-block (ErrUnexpectedEOF) surface as corruption.
			var one [1]byte
			if n, err := zr.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
				zr.Close()
				return nil, fmt.Errorf("%w: frame inflate does not end at %d bytes (n=%d err=%v)", codec.ErrCorrupt, f.RawLen, n, err)
			}
			zr.Close()
			raw = dst
		} else {
			var err error
			raw, err = io.ReadAll(zr)
			zr.Close()
			if err != nil {
				return nil, fmt.Errorf("%w: frame inflate: %v", codec.ErrCorrupt, err)
			}
			if len(raw) != f.RawLen {
				return nil, fmt.Errorf("%w: frame decoded to %d bytes, header says %d", codec.ErrCorrupt, len(raw), f.RawLen)
			}
		}
	case StyleLZ4:
		if dst == nil {
			dst = make([]byte, f.RawLen)
		}
		if err := lz4Decompress(f.Enc, dst); err != nil {
			return nil, err
		}
		raw = dst
	default:
		return nil, fmt.Errorf("%w: unknown frame style 0x%02x", codec.ErrCorrupt, f.Style)
	}
	return raw, nil
}

// DecodeAll decodes every frame in parallel across the worker pool,
// returning raw chunks in frame order, or the first error encountered.
func DecodeAll(frames []Frame) ([][]byte, error) {
	chunks := make([][]byte, len(frames))
	errs := make([]error, len(frames))
	ParallelDo(len(frames), func(i int) {
		chunks[i], errs[i] = frames[i].Decode()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return chunks, nil
}

// ---------- segment directory ----------

// DefaultChunkSize is the chunking granularity for large sections: big
// enough to amortize per-frame overhead, small enough that a multi-MB model
// fans out across the whole worker pool.
const DefaultChunkSize = 256 << 10

// ChunkRef names one chunk of a section by content hash and raw length.
type ChunkRef struct {
	Hash   Hash
	RawLen int
}

// SectionRef describes one named section (environment entry) of a
// checkpoint as an ordered list of chunk references.
type SectionRef struct {
	Name   string
	Chunks []ChunkRef
}

// RawLen returns the section's total decoded length.
func (s *SectionRef) RawLen() int {
	n := 0
	for _, c := range s.Chunks {
		n += c.RawLen
	}
	return n
}

// Directory is the content of a format-v2 segment file: it maps a
// checkpoint's named sections to the content-addressed chunks holding their
// bytes. Opaque marks payloads stored through the blob API (no section
// structure) so reads can reassemble them verbatim.
type Directory struct {
	Opaque   bool
	Sections []SectionRef
}

// RawLen returns the total decoded payload length across all sections.
func (d *Directory) RawLen() int64 {
	var n int64
	for i := range d.Sections {
		n += int64(d.Sections[i].RawLen())
	}
	return n
}

// dirMagic heads every encoded directory, versioning the segment format.
const dirMagic = "FLV2"

// EncodeDirectory serializes a directory.
func EncodeDirectory(d *Directory) []byte {
	w := codec.NewWriter()
	w.String(dirMagic)
	w.Bool(d.Opaque)
	w.Uvarint(uint64(len(d.Sections)))
	for i := range d.Sections {
		s := &d.Sections[i]
		w.String(s.Name)
		w.Uvarint(uint64(len(s.Chunks)))
		for _, c := range s.Chunks {
			w.RawBytes(c.Hash[:])
			w.Uvarint(uint64(c.RawLen))
		}
	}
	return w.Bytes()
}

// DecodeDirectory parses an encoded directory.
func DecodeDirectory(b []byte) (*Directory, error) {
	r := codec.NewReader(b)
	magic, err := r.String()
	if err != nil {
		return nil, err
	}
	if magic != dirMagic {
		return nil, fmt.Errorf("%w: segment directory magic %q", codec.ErrCorrupt, magic)
	}
	d := &Directory{}
	if d.Opaque, err = r.Bool(); err != nil {
		return nil, err
	}
	ns, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ns > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: implausible section count %d", codec.ErrCorrupt, ns)
	}
	d.Sections = make([]SectionRef, 0, ns)
	for i := uint64(0); i < ns; i++ {
		var s SectionRef
		if s.Name, err = r.String(); err != nil {
			return nil, err
		}
		nc, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nc > uint64(r.Remaining()) {
			return nil, fmt.Errorf("%w: implausible chunk count %d", codec.ErrCorrupt, nc)
		}
		s.Chunks = make([]ChunkRef, 0, nc)
		for j := uint64(0); j < nc; j++ {
			var c ChunkRef
			hb, err := r.RawBytes()
			if err != nil {
				return nil, err
			}
			if len(hb) != 16 {
				return nil, fmt.Errorf("%w: chunk hash length %d, want 16", codec.ErrCorrupt, len(hb))
			}
			copy(c.Hash[:], hb)
			rl, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			c.RawLen = int(rl)
			s.Chunks = append(s.Chunks, c)
		}
		d.Sections = append(d.Sections, s)
	}
	return d, nil
}
