package ckptfmt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the size of the package's encode/decode worker pool. It defaults
// to GOMAXPROCS and is a variable so benchmarks can pin it.
var Workers = runtime.GOMAXPROCS(0)

// ParallelDo runs f(i) for every i in [0, n), spread across at most Workers
// goroutines. Frames are independent (each carries its own style, CRC, and
// content hash), so both encode and decode distribute over this helper;
// callers must make f safe for concurrent invocation on distinct indices.
func ParallelDo(n int, f func(int)) {
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
