package ckptfmt

import "sync"

// Arena recycles byte buffers across frame decodes and restore calls. The
// restore hot path used to allocate a fresh multi-megabyte staging buffer
// per shard fetch and per decompressed frame; for non-dedupable payloads
// (every chunk distinct, nothing skippable) that allocation churn is pure
// frame tax. An Arena turns those into pool round-trips: Get hands back a
// previously released buffer when one is large enough, and Put releases a
// buffer once nothing aliases it.
//
// The backing store is a sync.Pool, so buffers are effectively per-worker
// (per-P) without any explicit worker indexing, and the pool sheds memory
// under GC pressure instead of pinning high-water marks.
//
// Contract: a buffer handed to Put must not be referenced afterwards —
// callers that return decoded data to their own callers must either copy it
// out first or skip the Put. Get returns buffers with undefined contents.
type Arena struct {
	pool sync.Pool
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Shared is the process-wide arena the restore path threads its staging
// buffers through: the store recycles span read buffers here between shard
// fetches, and the payload cache's admission path feeds section buffers it
// retires back into the same pool, so both layers draw from one warm set
// instead of growing two.
var Shared = NewArena()

// Get returns a buffer of length n (capacity possibly larger). Contents are
// undefined.
func (a *Arena) Get(n int) []byte {
	if v := a.pool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this request; drop it rather than growing a pooled
		// buffer nobody may ever need this large again.
	}
	return make([]byte, n)
}

// Put releases a buffer back to the arena. Safe for concurrent use with Get.
func (a *Arena) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	a.pool.Put(&b)
}
