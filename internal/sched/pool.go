package sched

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"flor.dev/flor/internal/obs"
)

// SlotSource grants execution slots to replay workers. A single replay
// passes one to every worker it spawns; a serving daemon shares one source
// across every concurrent query, so segments from different replays compete
// for the same global compute budget. A nil SlotSource means "unlimited"
// (the library's single-replay default).
type SlotSource interface {
	// Acquire blocks until a slot is granted or ctx is done. costNs is the
	// caller's estimated work (modeled nanoseconds); sources may use it to
	// order waiters. The caller must Release the slot when finished.
	Acquire(ctx context.Context, costNs int64) error
	// Release returns a previously acquired slot.
	Release()
}

// Pool is a shared worker pool with a global slot budget: the lease/stealing
// machinery lifted above a single replay. Each replay worker (or sampling
// query) holds one slot while it computes, so a daemon serving many
// concurrent queries runs at most Slots workers at once regardless of how
// much parallelism each individual query asked for.
//
// Waiters are granted slots cheapest-estimated-cost-first (FIFO among equal
// costs): a sample query priced at a few restores overtakes the remaining
// workers of a G=8 full replay instead of starving behind them. Queries are
// finite, so heavy waiters are delayed, never starved forever: each release
// reconsiders the queue, and a stream of cheap queries must itself hold
// slots to run.
//
// Pool is safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	slots   int
	free    int
	seq     int64
	waiters waiterHeap

	acquires int64
	waits    int64
	waitNs   int64

	mAcquires    *obs.Counter
	mWaits       *obs.Counter
	mWaitSeconds *obs.Histogram
	mInUse       *obs.Gauge
}

// waiter is one blocked Acquire.
type waiter struct {
	cost    int64
	seq     int64 // FIFO tie-break
	granted chan struct{}
	index   int // heap bookkeeping; -1 once popped or removed
}

// waiterHeap is a min-heap over (cost, seq).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// NewPool returns a pool with n slots (minimum 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{
		slots:        n,
		free:         n,
		mAcquires:    obs.C(obs.MSchedSlotAcquires),
		mWaits:       obs.C(obs.MSchedSlotWaits),
		mWaitSeconds: obs.H(obs.MSchedSlotWaitSeconds),
		mInUse:       obs.G(obs.MSchedSlotsInUse),
	}
}

// Slots returns the pool's total slot budget.
func (p *Pool) Slots() int { return p.slots }

// Acquire implements SlotSource: it blocks until a slot is free and this
// waiter is the cheapest pending one, or ctx is done.
func (p *Pool) Acquire(ctx context.Context, costNs int64) error {
	p.mu.Lock()
	p.acquires++
	p.mAcquires.Inc()
	if p.free > 0 && len(p.waiters) == 0 {
		p.free--
		p.mInUse.Set(int64(p.slots - p.free))
		p.mu.Unlock()
		return nil
	}
	p.waits++
	p.mWaits.Inc()
	p.seq++
	w := &waiter{cost: costNs, seq: p.seq, granted: make(chan struct{})}
	heap.Push(&p.waiters, w)
	p.mu.Unlock()

	t0 := time.Now()
	select {
	case <-w.granted:
		waited := time.Since(t0).Nanoseconds()
		p.mWaitSeconds.ObserveNs(waited)
		p.mu.Lock()
		p.waitNs += waited
		p.mu.Unlock()
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.index >= 0 {
			heap.Remove(&p.waiters, w.index)
			p.mu.Unlock()
			return ctx.Err()
		}
		// Lost the race: the slot was granted between ctx firing and the
		// lock; hand it straight back so it is not leaked.
		p.releaseLocked()
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Release implements SlotSource: it hands the slot to the cheapest waiter,
// or returns it to the free budget when nobody waits.
func (p *Pool) Release() {
	p.mu.Lock()
	p.releaseLocked()
	p.mu.Unlock()
}

func (p *Pool) releaseLocked() {
	if len(p.waiters) > 0 {
		w := heap.Pop(&p.waiters).(*waiter)
		close(w.granted)
		return
	}
	if p.free < p.slots {
		p.free++
		p.mInUse.Set(int64(p.slots - p.free))
	}
}

// PoolStats is a snapshot of the pool's accounting.
type PoolStats struct {
	Slots    int   `json:"slots"`
	InUse    int   `json:"in_use"`
	Waiting  int   `json:"waiting"`
	Acquires int64 `json:"acquires"`
	Waits    int64 `json:"waits"`
	WaitNs   int64 `json:"wait_ns"`
}

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Slots:    p.slots,
		InUse:    p.slots - p.free,
		Waiting:  len(p.waiters),
		Acquires: p.acquires,
		Waits:    p.waits,
		WaitNs:   p.waitNs,
	}
}
