package sched

import (
	"sync"

	"flor.dev/flor/internal/obs"
)

// Executor coordinates lease-based work stealing over main-loop iterations.
// Each worker owns one Lease (a contiguous, shrinkable span of iterations)
// at a time and claims iterations from it one by one; when a worker's lease
// is exhausted it calls Steal, which cuts the trailing part off the heaviest
// remaining lease. The claimed-iteration sets of all leases are disjoint and
// together cover exactly [0, n), whatever interleaving the scheduler
// produces, so replay logs merge deterministically in iteration order.
//
// All methods are safe for concurrent use.
type Executor struct {
	mu      sync.Mutex
	costs   *Costs
	anchors []int
	prefix  []int64 // work-cost prefix sums, len n+1
	leases  []*Lease
	initial int // leases created from the initial partition
	steals  int
	// restoreScale, when set, rescales the modeled catch-up cost of a steal's
	// weak re-initialization by the ratio of the measured restore/materialize
	// factor to the prior the cost model was priced with — the mid-replay
	// cost-model feedback loop (paper §5.3.2): early leases observe real
	// restore times, later steal decisions are priced with them.
	restoreScale func() float64
	// workScale is the measured-over-modeled work-cost ratio (EWMA), fed by
	// NoteIterDone as workers finish iterations. It rescales the stolen-work
	// side of steal profitability the same way restoreScale rescales the
	// catch-up side, so both halves of the profit equation are priced with
	// observed, not estimated, costs once real timings exist.
	workScale   float64
	workSamples int
	// onSteal, when set, is notified after a successful steal shrinks a
	// lease: the victim's new end and the stolen span. Prefetchers use it to
	// cancel speculation beyond iterations the victim no longer owns.
	onSteal func(victimEnd, stolenStart, stolenEnd int)

	mStealAttempts *obs.Counter
	mLeaseSplits   *obs.Counter
}

// Lease is one worker's contiguous span of iterations [Start, end). A steal
// shrinks end; Next hands out iterations until it reaches the (current) end.
type Lease struct {
	x     *Executor
	start int
	next  int
	end   int
}

// NewExecutor builds an executor over the initial partition segs (normally
// PartitionBalanced snapped to anchors). costs drives the heaviest-lease and
// profitability decisions; Uniform(n) is the fallback when no timings exist.
func NewExecutor(costs *Costs, segs [][2]int, anchors []int) *Executor {
	x := &Executor{
		costs: costs, anchors: anchors, prefix: costs.prefix(), initial: len(segs),
		mStealAttempts: obs.C(obs.MSchedStealAttempts),
		mLeaseSplits:   obs.C(obs.MSchedLeaseSplits),
	}
	for _, s := range segs {
		x.leases = append(x.leases, &Lease{x: x, start: s[0], next: s[0], end: s[1]})
	}
	return x
}

// InitialLease returns worker's statically assigned lease, or nil when the
// initial partition has fewer segments than workers (the worker then starts
// by stealing).
func (x *Executor) InitialLease(worker int) *Lease {
	if worker < 0 || worker >= x.initial {
		return nil
	}
	// The slice header mutates when Steal appends; a slow worker can ask
	// for its initial lease after fast workers have started stealing.
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.leases[worker]
}

// SetRestoreScale installs a callback returning the current catch-up cost
// multiplier (1.0 = trust the prior). Steal profitability multiplies the
// modeled weak re-initialization cost by it, so restore times measured by
// early leases reprice later steals. Call before workers start; the callback
// must be safe for concurrent use and is invoked with the executor lock held.
func (x *Executor) SetRestoreScale(f func() float64) {
	x.mu.Lock()
	x.restoreScale = f
	x.mu.Unlock()
}

// SetOnSteal installs a callback invoked after every successful steal with
// the victim lease's new end and the stolen span [stolenStart, stolenEnd).
// Plan-driven prefetchers hang cancellation off it: speculative fetches for
// iterations past victimEnd now belong to the thief's plan, not the
// victim's. Call before workers start; the callback runs without the
// executor lock held (it may call back into the executor) but never
// concurrently with itself for the same steal.
func (x *Executor) SetOnSteal(f func(victimEnd, stolenStart, stolenEnd int)) {
	x.mu.Lock()
	x.onSteal = f
	x.mu.Unlock()
}

// noteEwmaAlpha smooths the measured work-cost ratio; matches the tracker's
// restore-factor smoothing so both feedback loops converge at the same pace.
const noteEwmaAlpha = 0.3

// NoteIterDone reports one iteration's measured wall time. The executor
// accumulates the ratio of measured time to the cost model's per-iteration
// estimate and prices future steals with it: a model that underestimated the
// real per-iteration work (a restore-heavy replay whose frame tax the
// estimate missed) would otherwise keep approving steals whose catch-up
// outweighs the work actually left. Safe for concurrent use.
func (x *Executor) NoteIterDone(iter int, measuredNs int64) {
	if measuredNs <= 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	modeled := x.workCost(iter, iter+1)
	if modeled <= 0 {
		return
	}
	r := float64(measuredNs) / float64(modeled)
	x.workSamples++
	if x.workSamples == 1 {
		x.workScale = r
		return
	}
	x.workScale = (1-noteEwmaAlpha)*x.workScale + noteEwmaAlpha*r
}

// WorkScale returns the current measured/modeled work-cost ratio (1.0 until
// any iteration was reported).
func (x *Executor) WorkScale() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.workSamples == 0 {
		return 1.0
	}
	return x.workScale
}

// Steals returns how many leases were created by stealing.
func (x *Executor) Steals() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.steals
}

// workCost returns the modeled work cost of [s, e) via the prefix sums.
func (x *Executor) workCost(s, e int) int64 {
	if s < 0 || e > len(x.prefix)-1 || s >= e {
		return 0
	}
	return x.prefix[e] - x.prefix[s]
}

// Steal cuts the trailing part off the lease whose pending remainder is most
// profitable to share — stolen work cost minus the thief's weak re-init
// catch-up — and returns it as a fresh lease. ok is false when no lease has
// a profitable remainder; the caller should then finish (remaining owners
// complete their own leases).
func (x *Executor) Steal() (*Lease, bool) {
	x.mu.Lock()
	x.mStealAttempts.Inc()
	scale := 1.0
	if x.restoreScale != nil {
		if s := x.restoreScale(); s > 0 {
			scale = s
		}
	}
	wscale := 1.0
	if x.workSamples > 0 && x.workScale > 0 {
		wscale = x.workScale
	}
	var best *Lease
	var bestMid int
	var bestProfit int64
	for _, l := range x.leases {
		mid, ok := splitPoint(x.anchors, l.next, l.end)
		if !ok || !hasAnchorAtOrBefore(x.anchors, mid-1) {
			continue
		}
		profit := int64(wscale*float64(x.workCost(mid, l.end))) - int64(scale*float64(x.costs.InitCostNs(mid, Weak, x.anchors)))
		if best == nil || profit > bestProfit {
			best, bestMid, bestProfit = l, mid, profit
		}
	}
	if best == nil || bestProfit <= 0 {
		x.mu.Unlock()
		return nil, false
	}
	stolen := &Lease{x: x, start: bestMid, next: bestMid, end: best.end}
	stolenEnd := best.end
	best.end = bestMid
	x.leases = append(x.leases, stolen)
	x.steals++
	x.mLeaseSplits.Inc()
	onSteal := x.onSteal
	x.mu.Unlock()
	if onSteal != nil {
		onSteal(bestMid, bestMid, stolenEnd)
	}
	return stolen, true
}

// Start returns the first iteration of the lease.
func (l *Lease) Start() int { return l.start }

// Next claims the lease's next iteration. ok is false when the lease is
// exhausted — either the worker reached the end or a thief took the rest.
func (l *Lease) Next() (int, bool) {
	l.x.mu.Lock()
	defer l.x.mu.Unlock()
	if l.next >= l.end {
		return 0, false
	}
	i := l.next
	l.next++
	return i, true
}

// Bounds returns the lease's current [start, end). After Next has returned
// false the bounds are final: an empty remainder can no longer be stolen
// from, so end is stable.
func (l *Lease) Bounds() (int, int) {
	l.x.mu.Lock()
	defer l.x.mu.Unlock()
	return l.start, l.end
}

// Horizon returns up to n iterations the lease still owns beyond its claim
// front: [next, min(next+n, end)). This is the worker's committed near-term
// plan — barring a steal, these iterations restore on this worker next —
// which makes it exactly the span a prefetcher should warm. The snapshot is
// advisory: a concurrent steal can shrink end after it returns (the steal
// callback reports the shrink).
func (l *Lease) Horizon(n int) []int {
	l.x.mu.Lock()
	defer l.x.mu.Unlock()
	if n <= 0 || l.next >= l.end {
		return nil
	}
	end := l.next + n
	if end > l.end {
		end = l.end
	}
	out := make([]int, 0, end-l.next)
	for i := l.next; i < end; i++ {
		out = append(out, i)
	}
	return out
}
