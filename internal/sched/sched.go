// Package sched implements replay scheduling: cost models derived from
// recorded per-iteration timings, cost-balanced contiguous partitioning, and
// (in steal.go / sim.go) a dynamic work-stealing executor with
// checkpoint-aware lease splitting.
//
// The paper's hindsight-parallel replay (§5.4) splits the main loop's
// iterator into contiguous segments, one per worker. The seed implementation
// split uniformly — near-ideal when every iteration costs the same, but any
// skew (adaptive sparse checkpointing per §5.3, heavy probes on a few
// epochs, fine-tuning workloads with tiny epochs) concentrates cost into one
// worker's segment and wrecks the makespan. This package owns everything the
// replay engine and the cluster simulator need to schedule around skew:
//
//   - Costs: per-iteration work and catch-up (restore) costs plus setup.
//   - PartitionStatic: the seed's uniform contiguous split.
//   - PartitionBalanced: a contiguous split minimizing the maximum segment
//     work cost (prefix sums + binary search on the bottleneck).
//   - SnapToAnchors: moves segment boundaries to materialized checkpoints so
//     weak-initialized workers never pay long catch-up replays.
//   - Executor (steal.go): lease-based work stealing for real replay.
//   - SimulateStealing (sim.go): the same policy in deterministic virtual
//     time, for the cluster simulator's makespan accounting.
//
// internal/replay and internal/cluster both build on this package, so the
// virtual makespans behind Figures 10 and 13 use exactly the scheduler the
// real replay engine runs.
//
// pool.go adds the serving tier above single replays: Pool is a global
// worker-slot budget shared by every concurrent query of a serving daemon.
// Replay workers and sample queries hold one slot while they compute, and
// waiters are granted slots cheapest-estimated-cost-first, so a point query
// priced at a few restores overtakes the queued workers of a large full
// replay instead of starving behind them. The cost estimates come from the
// same Costs model the partitioners use — scheduling inside a replay and
// between replays speak one currency.
package sched

import (
	"sort"
	"sync"
)

// Policy selects the replay scheduling strategy.
type Policy int

const (
	// Static is the seed behaviour: uniform contiguous segments, one
	// statically assigned per worker.
	Static Policy = iota
	// Balanced splits contiguously by measured cost (minimizing the maximum
	// segment cost) and snaps boundaries to materialized checkpoints, but
	// assignment stays static.
	Balanced
	// Stealing starts from the Balanced partition and lets idle workers
	// steal the trailing half of the heaviest remaining segment,
	// re-initializing from the nearest checkpoint.
	Stealing
)

// String renders the policy.
func (p Policy) String() string {
	switch p {
	case Balanced:
		return "balanced"
	case Stealing:
		return "stealing"
	default:
		return "static"
	}
}

// Init selects the worker initialization strategy (paper §5.4.2). It lives
// here so the scheduler's cost accounting and the replay engine share one
// definition; internal/replay aliases it as InitMode.
type Init int

// Strong initialization replays every iteration preceding the work segment
// in init mode (the default: its correctness follows from the correctness of
// loop memoization). Weak initialization jumps to the checkpoint nearest the
// segment start.
const (
	Strong Init = iota
	Weak
)

// String renders the init mode.
func (m Init) String() string {
	if m == Weak {
		return "weak"
	}
	return "strong"
}

// Costs is the scheduler's cost model over one main loop of n iterations,
// derived from timings the record phase measured (runlog.Timings, store
// metadata) or synthesized by the cluster simulator.
type Costs struct {
	// WorkNs[e] estimates the cost of iteration e during the work phase of a
	// replay: compute time when the inner loop is probed (it re-executes),
	// restore time otherwise.
	WorkNs []int64
	// CatchupNs[e] estimates the cost of iteration e during initialization:
	// a checkpoint restore when iteration e's checkpoints were materialized,
	// a re-execution otherwise (the sparse-checkpoint fallback). Zero
	// entries fall back to the mean of the non-zero entries.
	CatchupNs []int64
	// SetupNs is the per-worker cost of program setup (imports, data
	// loading, model construction).
	SetupNs int64

	// meanOnce caches meanCatchup: catchupAt falls back to it for every
	// zero entry, and recomputing the O(n) mean inside the executor's
	// per-lease profitability scans would be quadratic.
	meanOnce    sync.Once
	meanCatchup int64
}

// Uniform returns the cost model the scheduler falls back to when no
// timings were recorded: every iteration costs one unit, catch-up is free.
// Under it, Balanced reduces to Static and Stealing splits by count.
func Uniform(n int) *Costs {
	c := &Costs{WorkNs: make([]int64, n)}
	for i := range c.WorkNs {
		c.WorkNs[i] = 1
	}
	return c
}

// N returns the number of iterations the model covers.
func (c *Costs) N() int { return len(c.WorkNs) }

// catchupMean returns the average of the non-zero catch-up costs (0 when
// none), computed once.
func (c *Costs) catchupMean() int64 {
	c.meanOnce.Do(func() {
		var sum, n int64
		for _, r := range c.CatchupNs {
			if r > 0 {
				sum += r
				n++
			}
		}
		if n > 0 {
			c.meanCatchup = sum / n
		}
	})
	return c.meanCatchup
}

// catchupAt returns the catch-up cost of iteration e with mean fallback.
func (c *Costs) catchupAt(e int) int64 {
	if e >= 0 && e < len(c.CatchupNs) && c.CatchupNs[e] > 0 {
		return c.CatchupNs[e]
	}
	return c.catchupMean()
}

// prefix returns P where P[i] = sum of WorkNs[0:i]; P has n+1 entries.
func (c *Costs) prefix() []int64 {
	p := make([]int64, len(c.WorkNs)+1)
	for i, w := range c.WorkNs {
		p[i+1] = p[i] + w
	}
	return p
}

// WorkCostNs returns the modeled work-phase cost of iterations [s, e).
func (c *Costs) WorkCostNs(s, e int) int64 {
	var sum int64
	for i := s; i < e && i < len(c.WorkNs); i++ {
		sum += c.WorkNs[i]
	}
	return sum
}

// InitCostNs returns the modeled cost of initializing a worker to iteration
// start: strong initialization catches up from 0, weak initialization from
// the nearest anchored iteration at or before start-1 (see AnchorBefore).
func (c *Costs) InitCostNs(start int, init Init, anchors []int) int64 {
	if start <= 0 {
		return 0
	}
	from := 0
	if init == Weak {
		from = AnchorBefore(anchors, start-1)
	}
	var sum int64
	for e := from; e < start; e++ {
		sum += c.catchupAt(e)
	}
	return sum
}

// Makespan returns the virtual makespan of executing segs: each worker pays
// setup, initialization catch-up to its segment start, and its segment's
// work; workers share nothing, so the makespan is the maximum (§5.4.4).
func (c *Costs) Makespan(segs [][2]int, init Init, anchors []int) int64 {
	var max int64
	for _, s := range segs {
		w := c.SetupNs + c.InitCostNs(s[0], init, anchors) + c.WorkCostNs(s[0], s[1])
		if w > max {
			max = w
		}
	}
	return max
}

// ---------- anchors ----------
//
// An "anchored" iteration is a main-loop iteration whose instrumented loops
// all have materialized checkpoints for every execution during it, so the
// whole iteration can be replayed by restoration alone. A nil anchor slice
// means every iteration is anchored (the cluster simulator's idealized
// default, matching its pre-existing weak-init model); an empty non-nil
// slice means none is. Anchor slices are sorted ascending.

// AnchorBefore returns the largest anchored iteration ≤ target, or 0 when
// none exists (the strong-initialization fallback).
func AnchorBefore(anchors []int, target int) int {
	if target <= 0 {
		return 0
	}
	if anchors == nil {
		return target
	}
	i := sort.SearchInts(anchors, target+1) - 1
	if i < 0 {
		return 0
	}
	return anchors[i]
}

// hasAnchorAtOrBefore reports whether some anchored iteration exists at or
// before target. Stealing requires one: re-initializing a mid-replay worker
// is only safe when the catch-up starts from a restored checkpoint (a fresh
// worker may fall back to iteration 0, but a worker carrying state from
// another segment may not).
func hasAnchorAtOrBefore(anchors []int, target int) bool {
	if anchors == nil {
		return true
	}
	return len(anchors) > 0 && anchors[0] <= target
}

// freeBoundary reports whether a segment starting at b pays at most one
// restore of catch-up: b is the loop start, or iteration b-1 is anchored.
func freeBoundary(anchors []int, b int) bool {
	if b <= 0 {
		return true
	}
	if anchors == nil {
		return true
	}
	i := sort.SearchInts(anchors, b-1)
	return i < len(anchors) && anchors[i] == b-1
}

// nearestFree returns the free boundary nearest to want within the open
// interval (lo, hi), preferring the smaller on ties; ok is false when the
// interval contains no free boundary.
func nearestFree(anchors []int, want, lo, hi int) (int, bool) {
	if anchors == nil {
		if want > lo && want < hi {
			return want, true
		}
		return 0, false
	}
	best, found := 0, false
	better := func(b int) {
		if b <= lo || b >= hi {
			return
		}
		if !found || abs(b-want) < abs(best-want) || (abs(b-want) == abs(best-want) && b < best) {
			best, found = b, true
		}
	}
	// Candidate free boundaries are anchors+1; probe the two anchors
	// bracketing want-1.
	i := sort.SearchInts(anchors, want)
	for _, j := range []int{i - 2, i - 1, i, i + 1} {
		if j >= 0 && j < len(anchors) {
			better(anchors[j] + 1)
		}
	}
	return best, found
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ---------- partitioners ----------

// PartitionStatic splits n iterations into at most g contiguous segments
// whose sizes differ by at most one (the seed's uniform split, §5.4.1).
// Segments are returned in order; fewer than g are returned when n < g.
func PartitionStatic(n, g int) [][2]int {
	if n <= 0 || g <= 0 {
		return nil
	}
	if g > n {
		g = n
	}
	segs := make([][2]int, 0, g)
	base := n / g
	rem := n % g
	start := 0
	for i := 0; i < g; i++ {
		size := base
		if i < rem {
			size++
		}
		segs = append(segs, [2]int{start, start + size})
		start += size
	}
	return segs
}

// PartitionBalanced splits the model's n iterations into at most g
// contiguous segments minimizing the maximum segment work cost: binary
// search on the bottleneck over prefix sums, then a greedy sweep packing
// each segment up to the optimum. Deterministic for a fixed input, and its
// makespan never exceeds PartitionStatic's on the same costs.
func PartitionBalanced(c *Costs, g int) [][2]int {
	n := c.N()
	if n <= 0 || g <= 0 {
		return nil
	}
	if g > n {
		g = n
	}
	var lo, hi int64
	for _, w := range c.WorkNs {
		if w > lo {
			lo = w
		}
		hi += w
	}
	// Smallest T such that [0,n) fits in ≤ g segments each of cost ≤ T.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if segmentsNeeded(c.WorkNs, mid) <= g {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	segs := make([][2]int, 0, g)
	start := 0
	var sum int64
	for i := 0; i < n; i++ {
		if i > start && sum+c.WorkNs[i] > lo {
			segs = append(segs, [2]int{start, i})
			start, sum = i, 0
		}
		sum += c.WorkNs[i]
	}
	return append(segs, [2]int{start, n})
}

// segmentsNeeded counts the contiguous segments required to cover work with
// no segment cost exceeding t (single iterations above t count alone).
func segmentsNeeded(work []int64, t int64) int {
	count := 1
	var sum int64
	for i, w := range work {
		if i > 0 && sum+w > t {
			count++
			sum = 0
		}
		sum += w
	}
	return count
}

// SnapToAnchors moves each interior segment boundary to the nearest free
// boundary (a materialized checkpoint's successor), so weak-initialized
// workers start with a single restore instead of a catch-up replay.
// Boundaries with no free boundary nearby stay put; snapping preserves
// contiguity and coverage, and collapsed (empty) segments are dropped.
func SnapToAnchors(segs [][2]int, anchors []int) [][2]int {
	if len(segs) <= 1 || anchors == nil {
		return segs
	}
	n := segs[len(segs)-1][1]
	bounds := make([]int, 0, len(segs)+1)
	bounds = append(bounds, segs[0][0])
	for i := 1; i < len(segs); i++ {
		bounds = append(bounds, segs[i][0])
	}
	bounds = append(bounds, n)
	for i := 1; i < len(bounds)-1; i++ {
		if freeBoundary(anchors, bounds[i]) {
			continue
		}
		// Stay strictly between the previous (already snapped) boundary and
		// the next original one so boundaries remain increasing.
		if b, ok := nearestFree(anchors, bounds[i], bounds[i-1], bounds[i+1]); ok {
			bounds[i] = b
		}
	}
	out := make([][2]int, 0, len(segs))
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] < bounds[i+1] {
			out = append(out, [2]int{bounds[i], bounds[i+1]})
		}
	}
	return out
}

// PartitionBalancedAnchored returns the balanced partition with boundaries
// snapped to checkpoint anchors — but only when the snap does not worsen the
// modeled makespan under the given init mode. With sparse anchors the
// nearest free boundary can be far from the balanced cut (or, under strong
// initialization, buy nothing at all), and an unconditional snap would trade
// away the balance this partitioner exists for.
func PartitionBalancedAnchored(c *Costs, g int, init Init, anchors []int) [][2]int {
	segs := PartitionBalanced(c, g)
	snapped := SnapToAnchors(segs, anchors)
	if c.Makespan(snapped, init, anchors) <= c.Makespan(segs, init, anchors) {
		return snapped
	}
	return segs
}

// splitPoint chooses where to cut the remaining span [next, end) of a lease
// so a thief can take the trailing part: the midpoint of the remainder,
// snapped to the nearest free boundary strictly inside (next, end). ok is
// false when the remainder is too small to share.
func splitPoint(anchors []int, next, end int) (int, bool) {
	rem := end - next
	if rem < 2 {
		return 0, false
	}
	mid := end - rem/2
	if b, ok := nearestFree(anchors, mid, next, end); ok {
		return b, true
	}
	return mid, true
}
