package sched

import "flor.dev/flor/internal/obs"

// SimResult describes one simulated work-stealing replay in virtual time.
type SimResult struct {
	// MakespanNs is the virtual time at which the last worker finishes.
	MakespanNs int64
	// WorkerNs[w] is worker w's finish time (including setup, even for
	// workers that never obtained work).
	WorkerNs []int64
	// Steals is the number of leases created by stealing.
	Steals int
}

// simLease mirrors steal.go's Lease in virtual time: the owner executes
// [start, end) sequentially from virtual time workStart, so its position at
// any time is derivable from the cost prefix sums.
type simLease struct {
	start, end int
	workStart  int64 // virtual time the owner began the work phase
	owner      int
	initNs     int64 // checkpoint catch-up charged before workStart
	stolen     bool
}

// SimulateStealing runs the work-stealing policy of Executor in
// deterministic virtual time: workers are charged the modeled costs of the
// iterations they initialize and execute, an idle worker steals the most
// profitable trailing remainder exactly as Executor.Steal does, and the
// makespan is the last finish time. The cluster simulator uses it so the
// virtual scale-out numbers (Figures 10/13) reflect the scheduler replay
// actually runs.
//
// Workers whose steal attempt finds no profitable remainder exit, matching
// the real executor: remaining owners finish their own leases.
func SimulateStealing(c *Costs, g int, init Init, anchors []int) *SimResult {
	return SimulateStealingTraced(c, g, init, anchors, nil)
}

// SimulateStealingTraced is SimulateStealing with an optional span trace: a
// virtual-time obs.Trace (obs.NewVirtualTrace) receives one "setup" span per
// worker and one "init" + "work" span pair per lease, stamped with the same
// virtual nanoseconds the makespan accounting uses. Two simulations of the
// same inputs produce byte-identical NDJSON — the trace is a diffable record
// of scheduling decisions, not a wall-clock profile. A nil tr traces nothing.
func SimulateStealingTraced(c *Costs, g int, init Init, anchors []int, tr *obs.Trace) *SimResult {
	n := c.N()
	res := &SimResult{}
	if g <= 0 {
		return res
	}
	segs := PartitionBalancedAnchored(c, g, init, anchors)
	prefix := c.prefix()
	work := func(s, e int) int64 { return prefix[e] - prefix[s] }

	// retire emits a lease's spans once its extent is final: leases shrink
	// when stolen from, so spans are recorded at retirement, not creation.
	retire := func(l *simLease) {
		if tr == nil {
			return
		}
		stolen := int64(0)
		if l.stolen {
			stolen = 1
		}
		tr.Add(obs.Span{Name: "init", Worker: l.owner, StartNs: l.workStart - l.initNs, DurNs: l.initNs,
			Attrs: map[string]int64{"start": int64(l.start), "stolen": stolen}})
		tr.Add(obs.Span{Name: "work", Worker: l.owner, StartNs: l.workStart, DurNs: work(l.start, l.end),
			Attrs: map[string]int64{"start": int64(l.start), "end": int64(l.end), "stolen": stolen}})
	}

	type worker struct {
		busyUntil int64
		lease     *simLease
		done      bool
	}
	workers := make([]worker, g)
	var active []*simLease
	for w := range workers {
		if tr != nil {
			tr.Add(obs.Span{Name: "setup", Worker: w, StartNs: 0, DurNs: c.SetupNs})
		}
		if w < len(segs) {
			l := &simLease{start: segs[w][0], end: segs[w][1], owner: w}
			l.initNs = c.InitCostNs(l.start, init, anchors)
			l.workStart = c.SetupNs + l.initNs
			workers[w] = worker{busyUntil: l.workStart + work(l.start, l.end), lease: l}
			active = append(active, l)
		} else {
			// No initial lease: the worker goes idle after setup and tries
			// to steal then.
			workers[w] = worker{busyUntil: c.SetupNs}
		}
	}

	// position returns how far l's owner has advanced by virtual time t: the
	// first unclaimed iteration (the one being executed at t counts as
	// claimed, like Executor's Lease.next).
	position := func(l *simLease, t int64) int {
		elapsed := t - l.workStart
		p := l.start
		for p < l.end && prefix[p+1]-prefix[l.start] <= elapsed {
			p++
		}
		if p < l.end {
			p++ // iteration p is mid-execution: claimed, not stealable
		}
		return p
	}

	for {
		// Next event: the busy worker finishing earliest (lowest id on ties).
		ev := -1
		for w := range workers {
			if workers[w].done {
				continue
			}
			if ev < 0 || workers[w].busyUntil < workers[ev].busyUntil {
				ev = w
			}
		}
		if ev < 0 {
			break
		}
		t := workers[ev].busyUntil
		if l := workers[ev].lease; l != nil {
			workers[ev].lease = nil
			for i, al := range active {
				if al == l {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			retire(l)
		}
		// Steal attempt, mirroring Executor.Steal's profitability rule.
		var best *simLease
		var bestMid int
		var bestProfit int64
		for _, l := range active {
			next := position(l, t)
			mid, ok := splitPoint(anchors, next, l.end)
			if !ok || !hasAnchorAtOrBefore(anchors, mid-1) {
				continue
			}
			profit := work(mid, l.end) - c.InitCostNs(mid, Weak, anchors)
			if best == nil || profit > bestProfit {
				best, bestMid, bestProfit = l, mid, profit
			}
		}
		if best == nil || bestProfit <= 0 {
			workers[ev].done = true
			continue
		}
		stolen := &simLease{start: bestMid, end: best.end, owner: ev, stolen: true}
		stolen.initNs = c.InitCostNs(bestMid, Weak, anchors)
		stolen.workStart = t + stolen.initNs
		best.end = bestMid
		workers[best.owner].busyUntil = best.workStart + work(best.start, best.end)
		workers[ev].lease = stolen
		workers[ev].busyUntil = stolen.workStart + work(stolen.start, stolen.end)
		active = append(active, stolen)
		res.Steals++
	}

	res.WorkerNs = make([]int64, g)
	for w := range workers {
		res.WorkerNs[w] = workers[w].busyUntil
		if workers[w].busyUntil > res.MakespanNs {
			res.MakespanNs = workers[w].busyUntil
		}
		if tr != nil {
			tr.Add(obs.Span{Name: "worker", Worker: w, StartNs: 0, DurNs: workers[w].busyUntil})
		}
	}
	if n == 0 {
		res.MakespanNs = c.SetupNs
	}
	return res
}
