package sched

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// runExecutor drives an Executor with `workers` goroutines over n iterations
// and returns every claimed (worker, iteration) pair grouped by lease spans.
// Each worker busy-loops claiming iterations like a replay worker would,
// optionally jittering to shuffle interleavings.
func runExecutor(t *testing.T, c *Costs, g int, anchors []int, jitter bool) ([][2]int, []int) {
	t.Helper()
	n := c.N()
	segs := SnapToAnchors(PartitionBalanced(c, g), anchors)
	x := NewExecutor(c, segs, anchors)

	var mu sync.Mutex
	var spans [][2]int
	claimed := make([]int, 0, n)

	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			lease := x.InitialLease(w)
			for {
				if lease == nil {
					var ok bool
					if lease, ok = x.Steal(); !ok {
						return
					}
				}
				var mine []int
				for {
					i, ok := lease.Next()
					if !ok {
						break
					}
					mine = append(mine, i)
					if jitter && r.Intn(4) == 0 {
						for spin := 0; spin < r.Intn(200); spin++ {
							_ = spin
						}
					}
				}
				start, end := lease.Bounds()
				mu.Lock()
				spans = append(spans, [2]int{start, end})
				claimed = append(claimed, mine...)
				mu.Unlock()
				lease = nil
			}
		}(w)
	}
	wg.Wait()
	return spans, claimed
}

// TestExecutorStress runs many workers over tiny leases and verifies the
// fundamental invariant: every iteration is claimed exactly once, and each
// finished lease's bounds exactly match the iterations its owner claimed.
func TestExecutorStress(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n, g    int
		anchors []int // nil = all anchored
	}{
		{"tiny-leases", 512, 16, nil},
		{"more-workers-than-work", 8, 16, nil},
		{"single-worker", 64, 1, nil},
		{"sparse-anchors", 300, 8, []int{0, 17, 50, 51, 52, 123, 200, 250}},
		{"no-anchors", 100, 8, []int{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := Uniform(tc.n)
			// Skew the head so stealing has something to chew on.
			for i := 0; i < tc.n/8; i++ {
				c.WorkNs[i] = 50
			}
			spans, claimed := runExecutor(t, c, tc.g, tc.anchors, true)
			if len(claimed) != tc.n {
				t.Fatalf("claimed %d iterations, want %d", len(claimed), tc.n)
			}
			seen := make([]bool, tc.n)
			for _, i := range claimed {
				if seen[i] {
					t.Fatalf("iteration %d claimed twice", i)
				}
				seen[i] = true
			}
			// Spans are disjoint and cover [0, n) exactly.
			sort.Slice(spans, func(a, b int) bool { return spans[a][0] < spans[b][0] })
			pos := 0
			for _, s := range spans {
				if s[0] != pos {
					t.Fatalf("span gap or overlap at %d: spans %v", pos, spans)
				}
				pos = s[1]
			}
			if pos != tc.n {
				t.Fatalf("spans end at %d, want %d", pos, tc.n)
			}
		})
	}
}

// TestExecutorStealCounts verifies steals happen under skew and stay at zero
// when stealing is unsafe (no anchors).
func TestExecutorStealCounts(t *testing.T) {
	c := Uniform(256)
	for i := 0; i < 16; i++ {
		c.WorkNs[i] = 1000
	}
	// Give only one worker an initial lease by partitioning for g=1, then
	// running 8 workers: the other 7 must steal everything they do.
	segs := PartitionBalanced(c, 1)
	x := NewExecutor(c, segs, nil)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lease := x.InitialLease(w)
			for {
				if lease == nil {
					var ok bool
					if lease, ok = x.Steal(); !ok {
						return
					}
				}
				for {
					if _, ok := lease.Next(); !ok {
						break
					}
					mu.Lock()
					total++
					mu.Unlock()
				}
				lease = nil
			}
		}(w)
	}
	wg.Wait()
	if total != 256 {
		t.Fatalf("executed %d iterations, want 256", total)
	}
	if x.Steals() == 0 {
		t.Fatal("idle workers with one fat lease available should have stolen")
	}
}

// TestNoteIterDoneRepricesSteals pins the work-time feedback loop: when
// measured iterations come in far cheaper than the model claimed, a steal
// whose modeled profit looked positive must stop being approved — the real
// work left no longer covers the catch-up cost.
func TestNoteIterDoneRepricesSteals(t *testing.T) {
	n := 64
	c := Uniform(n)
	for i := range c.WorkNs {
		c.WorkNs[i] = 1000 // modeled: plenty of work per iteration
	}
	// Weak catch-up costs something real but below the modeled remainder.
	c.CatchupNs = make([]int64, n)
	for i := range c.CatchupNs {
		c.CatchupNs[i] = 4000
	}

	fresh := func() *Executor {
		return NewExecutor(c, [][2]int{{0, n}}, nil) // all iterations anchored
	}

	// Baseline: with the model untouched, stealing half the lease is
	// profitable (≈32k work vs 4k catch-up).
	x := fresh()
	if _, ok := x.Steal(); !ok {
		t.Fatal("modeled costs should approve the steal")
	}

	// Feedback: measured iterations are 100x cheaper than modeled. After the
	// EWMA converges, the same steal must be rejected (real remaining work
	// ≈320ns < catch-up 4000ns).
	x = fresh()
	for i := 0; i < 50; i++ {
		x.NoteIterDone(i%n, 10)
	}
	if ws := x.WorkScale(); ws > 0.05 {
		t.Fatalf("work scale = %g, want ~0.01", ws)
	}
	if _, ok := x.Steal(); ok {
		t.Fatal("measured costs should reject the steal")
	}
}

// TestNoteIterDoneIgnoresJunk pins that unusable observations (non-positive
// times, iterations with no modeled cost) leave the scale at its neutral 1.0.
func TestNoteIterDoneIgnoresJunk(t *testing.T) {
	c := Uniform(8)
	x := NewExecutor(c, [][2]int{{0, 8}}, nil)
	x.NoteIterDone(3, 0)
	x.NoteIterDone(3, -5)
	x.NoteIterDone(-1, 100)
	x.NoteIterDone(99, 100)
	if ws := x.WorkScale(); ws != 1.0 {
		t.Fatalf("work scale = %g, want 1.0 with no valid samples", ws)
	}
}
