package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// costVector is a quick-generatable random cost model: up to 512 iterations
// of bounded non-negative work cost.
type costVector struct {
	Work []int64
	G    int
}

// Generate implements quick.Generator with bounded sizes and costs.
func (costVector) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(512)
	cv := costVector{Work: make([]int64, n), G: 1 + r.Intn(24)}
	for i := range cv.Work {
		// Heavy-tailed on occasion so skew is exercised, zeros included.
		switch r.Intn(4) {
		case 0:
			cv.Work[i] = 0
		case 1:
			cv.Work[i] = int64(r.Intn(10))
		default:
			cv.Work[i] = int64(r.Intn(1_000_000))
		}
	}
	return reflect.ValueOf(cv)
}

// checkSegments verifies segments are contiguous, disjoint, in order, and
// cover exactly [0, n).
func checkSegments(t *testing.T, segs [][2]int, n int) {
	t.Helper()
	if n <= 0 {
		if len(segs) != 0 {
			t.Fatalf("n=%d: want no segments, got %v", n, segs)
		}
		return
	}
	if len(segs) == 0 {
		t.Fatalf("n=%d: no segments", n)
	}
	if segs[0][0] != 0 || segs[len(segs)-1][1] != n {
		t.Fatalf("segments %v do not span [0,%d)", segs, n)
	}
	for i, s := range segs {
		if s[0] >= s[1] {
			t.Fatalf("segment %d = %v is empty or inverted", i, s)
		}
		if i > 0 && segs[i-1][1] != s[0] {
			t.Fatalf("segments %d and %d are not contiguous: %v", i-1, i, segs)
		}
	}
}

func TestPartitionStaticProperties(t *testing.T) {
	prop := func(cv costVector) bool {
		segs := PartitionStatic(len(cv.Work), cv.G)
		checkSegments(t, segs, len(cv.Work))
		if len(segs) > cv.G {
			t.Fatalf("static produced %d segments for g=%d", len(segs), cv.G)
		}
		// Sizes differ by at most one.
		min, max := len(cv.Work), 0
		for _, s := range segs {
			if sz := s[1] - s[0]; sz < min {
				min = sz
			} else if sz > max {
				max = sz
			}
			if sz := s[1] - s[0]; sz > max {
				max = sz
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalancedProperties(t *testing.T) {
	prop := func(cv costVector) bool {
		c := &Costs{WorkNs: cv.Work}
		segs := PartitionBalanced(c, cv.G)
		checkSegments(t, segs, len(cv.Work))
		if len(segs) > cv.G {
			t.Fatalf("balanced produced %d segments for g=%d", len(segs), cv.G)
		}
		// The balanced bottleneck never exceeds the static one on the same
		// cost vector (its defining property).
		static := PartitionStatic(len(cv.Work), cv.G)
		balancedMax := maxSegCost(c, segs)
		staticMax := maxSegCost(c, static)
		if balancedMax > staticMax {
			t.Fatalf("balanced bottleneck %d > static %d for %v g=%d",
				balancedMax, staticMax, cv.Work, cv.G)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func maxSegCost(c *Costs, segs [][2]int) int64 {
	var max int64
	for _, s := range segs {
		if w := c.WorkCostNs(s[0], s[1]); w > max {
			max = w
		}
	}
	return max
}

func TestPartitionBalancedDeterministic(t *testing.T) {
	prop := func(cv costVector) bool {
		c := &Costs{WorkNs: cv.Work}
		a := PartitionBalanced(c, cv.G)
		b := PartitionBalanced(c, cv.G)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapToAnchorsProperties(t *testing.T) {
	prop := func(cv costVector, anchorSeed int64) bool {
		n := len(cv.Work)
		r := rand.New(rand.NewSource(anchorSeed))
		anchors := make([]int, 0)
		for e := 0; e < n; e++ {
			if r.Intn(3) == 0 {
				anchors = append(anchors, e)
			}
		}
		c := &Costs{WorkNs: cv.Work}
		segs := SnapToAnchors(PartitionBalanced(c, cv.G), anchors)
		checkSegments(t, segs, n)
		if len(segs) > cv.G {
			t.Fatalf("snapped partition has %d segments for g=%d", len(segs), cv.G)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalancedUniformMatchesStatic(t *testing.T) {
	c := Uniform(256)
	balanced := PartitionBalanced(c, 8)
	static := PartitionStatic(256, 8)
	if !reflect.DeepEqual(balanced, static) {
		t.Fatalf("uniform costs: balanced %v != static %v", balanced, static)
	}
}

func TestPartitionBalancedSkew(t *testing.T) {
	// One huge iteration at the head: static packs it with 63 others;
	// balanced isolates it.
	c := &Costs{WorkNs: make([]int64, 256)}
	for i := range c.WorkNs {
		c.WorkNs[i] = 1
	}
	c.WorkNs[0] = 1000
	segs := PartitionBalanced(c, 4)
	checkSegments(t, segs, 256)
	if got := maxSegCost(c, segs); got != 1000 {
		t.Fatalf("balanced bottleneck = %d, want 1000 (the indivisible head)", got)
	}
	if segs[0] != [2]int{0, 1} {
		t.Fatalf("first segment %v should isolate the heavy iteration", segs[0])
	}
}

func TestPartitionBalancedAnchoredGatesSnap(t *testing.T) {
	// A single early anchor: unconditionally snapping boundary 32 to free
	// boundary 1 would collapse the first segments into [0,1),[1,64),...
	// and roughly double the makespan. The gated partitioner must reject
	// that snap and keep the balance.
	c := Uniform(128)
	anchors := []int{0}
	segs := PartitionBalancedAnchored(c, 4, Weak, anchors)
	checkSegments(t, segs, 128)
	plain := PartitionBalanced(c, 4)
	if got, want := c.Makespan(segs, Weak, anchors), c.Makespan(plain, Weak, anchors); got > want {
		t.Fatalf("anchored partition makespan %d exceeds unsnapped %d", got, want)
	}
	if got := maxSegCost(c, segs); got > 2*maxSegCost(c, plain) {
		t.Fatalf("snap collapsed the balance: bottleneck %d vs plain %d", got, maxSegCost(c, plain))
	}
}

func TestAnchorBefore(t *testing.T) {
	anchors := []int{2, 5, 9}
	for _, tc := range []struct{ target, want int }{
		{0, 0}, {1, 0}, {2, 2}, {4, 2}, {5, 5}, {8, 5}, {9, 9}, {100, 9},
	} {
		if got := AnchorBefore(anchors, tc.target); got != tc.want {
			t.Fatalf("AnchorBefore(%v, %d) = %d, want %d", anchors, tc.target, got, tc.want)
		}
	}
	if got := AnchorBefore(nil, 7); got != 7 {
		t.Fatalf("nil anchors mean every iteration is anchored; got %d", got)
	}
	if got := AnchorBefore([]int{}, 7); got != 0 {
		t.Fatalf("no anchors fall back to 0; got %d", got)
	}
}

func TestMakespanInitAccounting(t *testing.T) {
	c := &Costs{
		WorkNs:    []int64{10, 10, 10, 10},
		CatchupNs: []int64{1, 2, 3, 4},
		SetupNs:   100,
	}
	segs := [][2]int{{0, 2}, {2, 4}}
	// Weak with all anchored: second worker pays one catch-up (iteration 1).
	if got := c.Makespan(segs, Weak, nil); got != 100+2+20 {
		t.Fatalf("weak makespan = %d, want 122", got)
	}
	// Strong: second worker pays catch-up 0 and 1.
	if got := c.Makespan(segs, Strong, nil); got != 100+1+2+20 {
		t.Fatalf("strong makespan = %d, want 123", got)
	}
	// Weak with an anchor only at 0: catch-up covers [0, 2).
	if got := c.Makespan(segs, Weak, []int{0}); got != 100+1+2+20 {
		t.Fatalf("weak makespan with sparse anchors = %d, want 123", got)
	}
}

func TestSimulateStealingUniformMatchesBalanced(t *testing.T) {
	c := Uniform(64)
	c.SetupNs = 5
	sim := SimulateStealing(c, 8, Weak, nil)
	segs := PartitionBalanced(c, 8)
	want := c.Makespan(segs, Weak, nil)
	if sim.MakespanNs != want {
		t.Fatalf("uniform stealing makespan %d != balanced %d", sim.MakespanNs, want)
	}
	if sim.Steals != 0 {
		t.Fatalf("uniform costs should need no steals, got %d", sim.Steals)
	}
}

func TestSimulateStealingBeatsStaticOnSkew(t *testing.T) {
	// Head-heavy costs: static's first worker drowns; stealing redistributes.
	c := &Costs{WorkNs: make([]int64, 128), CatchupNs: make([]int64, 128)}
	for i := range c.WorkNs {
		c.WorkNs[i] = 1
		c.CatchupNs[i] = 1
		if i < 16 {
			c.WorkNs[i] = 100
		}
	}
	staticSpan := c.Makespan(PartitionStatic(128, 8), Weak, nil)
	sim := SimulateStealing(c, 8, Weak, nil)
	if sim.MakespanNs*2 > staticSpan {
		t.Fatalf("stealing makespan %d not at least 2x better than static %d", sim.MakespanNs, staticSpan)
	}
	if sim.Steals == 0 {
		t.Fatal("skewed costs should trigger steals")
	}
}

func TestSimulateStealingDeterministic(t *testing.T) {
	c := &Costs{WorkNs: make([]int64, 200), CatchupNs: make([]int64, 200)}
	r := rand.New(rand.NewSource(42))
	for i := range c.WorkNs {
		c.WorkNs[i] = int64(r.Intn(1000)) + 1
		c.CatchupNs[i] = int64(r.Intn(10)) + 1
	}
	a := SimulateStealing(c, 6, Weak, nil)
	b := SimulateStealing(c, 6, Weak, nil)
	if a.MakespanNs != b.MakespanNs || a.Steals != b.Steals || !reflect.DeepEqual(a.WorkerNs, b.WorkerNs) {
		t.Fatalf("simulation is not deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateStealingNoAnchorsNoSteals(t *testing.T) {
	// Without any materialized checkpoint, re-initializing a mid-replay
	// worker is unsafe, so stealing must stand down entirely.
	c := &Costs{WorkNs: make([]int64, 64), CatchupNs: make([]int64, 64)}
	for i := range c.WorkNs {
		c.WorkNs[i] = 1
		if i == 0 {
			c.WorkNs[i] = 1000
		}
		c.CatchupNs[i] = 1
	}
	sim := SimulateStealing(c, 4, Weak, []int{})
	if sim.Steals != 0 {
		t.Fatalf("no anchors: want 0 steals, got %d", sim.Steals)
	}
}
