package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolImmediateAcquire(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	if err := p.Acquire(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx, 10); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.InUse != 2 || st.Waiting != 0 || st.Acquires != 2 || st.Waits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p.Release()
	p.Release()
	if st := p.Stats(); st.InUse != 0 {
		t.Fatalf("in use after release = %d", st.InUse)
	}
}

// TestPoolCheapestFirst holds the only slot, queues an expensive waiter then
// a cheap one, and checks the cheap waiter is granted first.
func TestPoolCheapestFirst(t *testing.T) {
	p := NewPool(1)
	ctx := context.Background()
	if err := p.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := func(name string, cost int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(ctx, cost); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			p.Release()
		}()
	}
	start("expensive", 1_000_000)
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	start("cheap", 100)
	waitFor(t, func() bool { return p.Stats().Waiting == 2 })

	p.Release()
	wg.Wait()
	if len(order) != 2 || order[0] != "cheap" || order[1] != "expensive" {
		t.Fatalf("grant order = %v, want [cheap expensive]", order)
	}
	st := p.Stats()
	if st.Waits != 2 || st.InUse != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolAcquireCancel(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := p.Stats(); st.Waiting != 0 {
		t.Fatalf("waiter leaked: %+v", st)
	}
	// The held slot is still usable after the cancelled wait.
	p.Release()
	if err := p.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	p.Release()
}

// TestPoolNeverOversubscribes hammers the pool from many goroutines and
// checks the concurrent-holder count never exceeds the slot budget.
func TestPoolNeverOversubscribes(t *testing.T) {
	const slots = 3
	p := NewPool(slots)
	var cur, max int64
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(cost int64) {
			defer wg.Done()
			if err := p.Acquire(context.Background(), cost); err != nil {
				t.Error(err)
				return
			}
			c := atomic.AddInt64(&cur, 1)
			for {
				m := atomic.LoadInt64(&max)
				if c <= m || atomic.CompareAndSwapInt64(&max, m, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
			p.Release()
		}(int64(i % 7))
	}
	wg.Wait()
	if max > slots {
		t.Fatalf("max concurrent holders = %d > %d slots", max, slots)
	}
	if st := p.Stats(); st.InUse != 0 || st.Waiting != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestExecutorRestoreScale checks that the feedback multiplier flips a
// marginal steal decision: a remainder profitable under the prior becomes
// unprofitable when measured restores are much slower.
func TestExecutorRestoreScale(t *testing.T) {
	n := 8
	costs := &Costs{WorkNs: make([]int64, n), CatchupNs: make([]int64, n)}
	for i := 0; i < n; i++ {
		costs.WorkNs[i] = 100
		costs.CatchupNs[i] = 60
	}
	anchors := []int{0, 1, 2, 3, 4, 5, 6, 7}
	build := func() *Executor {
		return NewExecutor(costs, [][2]int{{0, n}}, anchors)
	}

	// Without feedback the trailing half (cost 400) beats its weak re-init
	// (one catch-up iteration from anchor 3, cost 60): the steal happens.
	x := build()
	if _, ok := x.Steal(); !ok {
		t.Fatal("expected profitable steal with scale 1")
	}

	// Measured restores 10× the prior make the re-init (600) exceed the
	// stolen work: no steal.
	x = build()
	x.SetRestoreScale(func() float64 { return 10.0 })
	if _, ok := x.Steal(); ok {
		t.Fatal("steal happened despite unprofitable rescaled catch-up")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
