package opt

import (
	"math"
	"testing"

	"flor.dev/flor/internal/autograd"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/xrand"
)

// trainStep runs one forward/backward/step on a toy problem and returns the
// loss.
func trainStep(m *nn.Linear, o Optimizer) float64 {
	tape := autograd.NewTape()
	nn.ZeroGrads(m)
	x := autograd.NewConst(tensor.FromSlice([]float64{1, 0, 0, 1, 1, 1}, 3, 2))
	loss := tape.SoftmaxCrossEntropy(m.Forward(tape, x), []int{0, 1, 1})
	tape.Backward(loss)
	o.Step()
	return loss.Value.Item()
}

func TestSGDReducesLoss(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 0.5, 0, 0)
	first := trainStep(m, o)
	var last float64
	for i := 0; i < 50; i++ {
		last = trainStep(m, o)
	}
	if last >= first {
		t.Fatalf("SGD did not reduce loss: %g -> %g", first, last)
	}
}

func TestSGDMomentumAcceleratesOnQuadratic(t *testing.T) {
	run := func(momentum float64) float64 {
		m := nn.NewLinear("fc", xrand.New(1), 2, 2)
		o := NewSGD(m, 0.1, momentum, 0)
		var last float64
		for i := 0; i < 30; i++ {
			last = trainStep(m, o)
		}
		return last
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum 0.9 did not converge faster than plain SGD on this problem")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 0.1, 0, 0.5)
	before := nn.WeightNorm(m)
	// Zero gradients by hand: only decay acts.
	for _, p := range m.Params() {
		p.Var.ZeroGrad()
	}
	tape := autograd.NewTape()
	x := autograd.NewConst(tensor.New(1, 2))
	loss := tape.MeanAll(m.Forward(tape, x))
	tape.Backward(loss)
	nn.ZeroGrads(m)
	o.Step()
	after := nn.WeightNorm(m)
	// With zeroed grads Step skips params (Grad non-nil but zero): decay
	// applies since Grad != nil.
	if after >= before {
		t.Fatalf("weight decay did not shrink weights: %g -> %g", before, after)
	}
}

func TestAdamWReducesLoss(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewAdamW(m, 0.05, 0)
	first := trainStep(m, o)
	var last float64
	for i := 0; i < 50; i++ {
		last = trainStep(m, o)
	}
	if last >= first {
		t.Fatalf("AdamW did not reduce loss: %g -> %g", first, last)
	}
}

func TestOptimizerSkipsFrozenParams(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	nn.Freeze(m, "fc.w")
	var frozen *tensor.Tensor
	for _, p := range m.Params() {
		if p.Name == "fc.w" {
			frozen = p.Var.Value.Clone()
		}
	}
	o := NewSGD(m, 0.5, 0.9, 0.1)
	for i := 0; i < 5; i++ {
		trainStep(m, o)
	}
	for _, p := range m.Params() {
		if p.Name == "fc.w" && !tensor.Equal(p.Var.Value, frozen) {
			t.Fatal("optimizer updated a frozen parameter")
		}
	}
}

func TestSGDSnapshotRestoreRoundTrip(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 0.5, 0.9, 0.01)
	for i := 0; i < 3; i++ {
		trainStep(m, o)
	}
	snap := o.Snapshot()
	weights := nn.CloneState(m)

	// Diverge, then restore both optimizer and weights.
	for i := 0; i < 5; i++ {
		trainStep(m, o)
	}
	if err := o.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := nn.LoadState(m, weights); err != nil {
		t.Fatal(err)
	}

	// A fresh run from the same point must produce identical trajectories.
	m2 := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o2 := NewSGD(m2, 0.5, 0.9, 0.01)
	for i := 0; i < 3; i++ {
		trainStep(m2, o2)
	}
	for i := 0; i < 4; i++ {
		l1 := trainStep(m, o)
		l2 := trainStep(m2, o2)
		if l1 != l2 {
			t.Fatalf("restored trajectory diverged at step %d: %g vs %g", i, l1, l2)
		}
	}
}

func TestAdamWSnapshotRestoreRoundTrip(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewAdamW(m, 0.05, 0.01)
	for i := 0; i < 3; i++ {
		trainStep(m, o)
	}
	snap := o.Snapshot()
	weights := nn.CloneState(m)
	for i := 0; i < 5; i++ {
		trainStep(m, o)
	}
	if err := o.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := nn.LoadState(m, weights); err != nil {
		t.Fatal(err)
	}
	m2 := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o2 := NewAdamW(m2, 0.05, 0.01)
	for i := 0; i < 3; i++ {
		trainStep(m2, o2)
	}
	for i := 0; i < 4; i++ {
		if l1, l2 := trainStep(m, o), trainStep(m2, o2); l1 != l2 {
			t.Fatalf("restored AdamW trajectory diverged at step %d: %g vs %g", i, l1, l2)
		}
	}
}

func TestRestoreRejectsMalformedState(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	if err := NewSGD(m, 0.1, 0, 0).Restore(NewState()); err == nil {
		t.Fatal("SGD.Restore accepted state without lr")
	}
	if err := NewAdamW(m, 0.1, 0).Restore(NewState()); err == nil {
		t.Fatal("AdamW.Restore accepted state without lr/step")
	}
	bad := NewState()
	bad.Scalars["lr"] = 0.1
	bad.Tensors["junk"] = tensor.New(1)
	if err := NewSGD(m, 0.1, 0, 0).Restore(bad); err == nil {
		t.Fatal("SGD.Restore accepted unknown tensor key")
	}
}

func TestStepLRDecaysAtBoundaries(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 1.0, 0, 0)
	s := NewStepLR(o, 2, 0.1)
	lrs := []float64{}
	for i := 0; i < 5; i++ {
		s.Step()
		lrs = append(lrs, o.LR())
	}
	want := []float64{1, 0.1, 0.1, 0.01, 0.01}
	for i := range want {
		if math.Abs(lrs[i]-want[i]) > 1e-12 {
			t.Fatalf("StepLR epoch %d lr = %g, want %g", i+1, lrs[i], want[i])
		}
	}
}

func TestCosineLRAnneals(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 1.0, 0, 0)
	s := NewCosineLR(o, 10)
	prev := o.LR()
	for i := 0; i < 10; i++ {
		s.Step()
		if o.LR() > prev+1e-12 {
			t.Fatalf("cosine LR increased at epoch %d: %g -> %g", i+1, prev, o.LR())
		}
		prev = o.LR()
	}
	if o.LR() > 1e-9 {
		t.Fatalf("cosine LR at tMax should be ~0, got %g", o.LR())
	}
	// Past tMax the LR stays pinned at 0.
	s.Step()
	if o.LR() > 1e-9 {
		t.Fatalf("cosine LR past tMax should stay 0, got %g", o.LR())
	}
}

func TestSchedulerSnapshotRestore(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewSGD(m, 1.0, 0, 0)
	s := NewCosineLR(o, 10)
	for i := 0; i < 4; i++ {
		s.Step()
	}
	snap := s.Snapshot()
	lrAt4 := o.LR()
	for i := 0; i < 4; i++ {
		s.Step()
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	o.SetLR(lrAt4)
	s.Step()
	// Compare against a clean run advanced 5 steps.
	o2 := NewSGD(nn.NewLinear("fc", xrand.New(1), 2, 2), 1.0, 0, 0)
	s2 := NewCosineLR(o2, 10)
	for i := 0; i < 5; i++ {
		s2.Step()
	}
	if math.Abs(o.LR()-o2.LR()) > 1e-12 {
		t.Fatalf("restored scheduler diverged: %g vs %g", o.LR(), o2.LR())
	}
}

func TestStateCloneAndEqual(t *testing.T) {
	s := NewState()
	s.Scalars["x"] = 1.5
	s.Tensors["w"] = tensor.FromSlice([]float64{1, 2}, 2)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Tensors["w"].Set(9, 0)
	if s.Equal(c) {
		t.Fatal("clone shares tensor storage")
	}
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestReferenceGraphExposed(t *testing.T) {
	m := nn.NewLinear("fc", xrand.New(1), 2, 2)
	o := NewAdamW(m, 0.1, 0)
	s := NewStepLR(o, 1, 0.5)
	if o.Model() != nn.Module(m) {
		t.Fatal("optimizer does not expose its model")
	}
	if s.Optimizer() != Optimizer(o) {
		t.Fatal("scheduler does not expose its optimizer")
	}
}
