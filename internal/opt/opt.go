// Package opt implements optimizers and learning-rate schedulers for the
// training substrate.
//
// Two properties matter to Flor (paper §5.2.1): the optimizer is the object
// through which the model is mutated, and the scheduler is the object through
// which the optimizer is mutated. Both expose that reference graph
// explicitly (Model(), Optimizer()) so the changeset augmentation step can
// discover side-effects the static rules miss. Optimizer state (momentum
// buffers, Adam moments, step counters) is fully serializable because a
// checkpoint that omitted it would replay divergently.
package opt

import (
	"fmt"
	"math"

	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/tensor"
)

// State is a serializable snapshot of optimizer or scheduler state: named
// tensors plus named scalars.
type State struct {
	Scalars map[string]float64
	Tensors map[string]*tensor.Tensor
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Scalars: map[string]float64{}, Tensors: map[string]*tensor.Tensor{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState()
	for k, v := range s.Scalars {
		c.Scalars[k] = v
	}
	for k, v := range s.Tensors {
		c.Tensors[k] = v.Clone()
	}
	return c
}

// Equal reports deep equality of two states.
func (s *State) Equal(o *State) bool {
	if len(s.Scalars) != len(o.Scalars) || len(s.Tensors) != len(o.Tensors) {
		return false
	}
	for k, v := range s.Scalars {
		if ov, ok := o.Scalars[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.Tensors {
		ov, ok := o.Tensors[k]
		if !ok || !tensor.Equal(v, ov) {
			return false
		}
	}
	return true
}

// SizeBytes estimates the serialized size of the state.
func (s *State) SizeBytes() int {
	n := 0
	for k := range s.Scalars {
		n += len(k) + 8
	}
	for k, v := range s.Tensors {
		n += len(k) + 8*v.Len()
	}
	return n
}

// Optimizer updates a model's trainable parameters from their gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated on
	// the model's parameters.
	Step()
	// Model returns the module this optimizer mutates (used by Flor's
	// changeset augmentation).
	Model() nn.Module
	// LR returns the current learning rate.
	LR() float64
	// SetLR overrides the learning rate (called by schedulers).
	SetLR(lr float64)
	// Snapshot captures all mutable optimizer state.
	Snapshot() *State
	// Restore applies a snapshot captured from an identically configured
	// optimizer.
	Restore(*State) error
}

// SGD is stochastic gradient descent with momentum and decoupled weight
// decay.
type SGD struct {
	model       nn.Module
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[string]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer over model's trainable parameters.
func NewSGD(model nn.Module, lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		model:       model,
		lr:          lr,
		momentum:    momentum,
		weightDecay: weightDecay,
		velocity:    map[string]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for _, p := range s.model.Params() {
		if !p.Var.RequiresGrad() || p.Var.Grad == nil {
			continue
		}
		g := p.Var.Grad
		if s.weightDecay != 0 {
			// Decoupled weight decay: w -= lr * wd * w.
			tensor.AxpyInPlace(p.Var.Value, -s.lr*s.weightDecay, p.Var.Value)
		}
		if s.momentum != 0 {
			v, ok := s.velocity[p.Name]
			if !ok {
				v = tensor.New(p.Var.Value.Shape()...)
				s.velocity[p.Name] = v
			}
			tensor.ScaleInPlace(v, s.momentum)
			tensor.AddInPlace(v, g)
			g = v
		}
		tensor.AxpyInPlace(p.Var.Value, -s.lr, g)
	}
}

// Model implements Optimizer.
func (s *SGD) Model() nn.Module { return s.model }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Snapshot implements Optimizer.
func (s *SGD) Snapshot() *State {
	st := NewState()
	st.Scalars["lr"] = s.lr
	for k, v := range s.velocity {
		st.Tensors["vel."+k] = v.Clone()
	}
	return st
}

// Restore implements Optimizer.
func (s *SGD) Restore(st *State) error {
	lr, ok := st.Scalars["lr"]
	if !ok {
		return fmt.Errorf("opt: SGD restore: missing lr")
	}
	s.lr = lr
	s.velocity = map[string]*tensor.Tensor{}
	for k, v := range st.Tensors {
		if len(k) < 5 || k[:4] != "vel." {
			return fmt.Errorf("opt: SGD restore: unexpected tensor %q", k)
		}
		s.velocity[k[4:]] = v.Clone()
	}
	return nil
}

// AdamW is the Adam optimizer with decoupled weight decay.
type AdamW struct {
	model       nn.Module
	lr          float64
	beta1       float64
	beta2       float64
	eps         float64
	weightDecay float64
	step        int
	m           map[string]*tensor.Tensor
	v           map[string]*tensor.Tensor
}

// NewAdamW constructs an AdamW optimizer with standard betas (0.9, 0.999).
func NewAdamW(model nn.Module, lr, weightDecay float64) *AdamW {
	return &AdamW{
		model:       model,
		lr:          lr,
		beta1:       0.9,
		beta2:       0.999,
		eps:         1e-8,
		weightDecay: weightDecay,
		m:           map[string]*tensor.Tensor{},
		v:           map[string]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (a *AdamW) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for _, p := range a.model.Params() {
		if !p.Var.RequiresGrad() || p.Var.Grad == nil {
			continue
		}
		g := p.Var.Grad
		m, ok := a.m[p.Name]
		if !ok {
			m = tensor.New(p.Var.Value.Shape()...)
			a.m[p.Name] = m
			a.v[p.Name] = tensor.New(p.Var.Value.Shape()...)
		}
		v := a.v[p.Name]
		md, vd, gd, wd := m.Data(), v.Data(), g.Data(), p.Var.Value.Data()
		for i := range gd {
			md[i] = a.beta1*md[i] + (1-a.beta1)*gd[i]
			vd[i] = a.beta2*vd[i] + (1-a.beta2)*gd[i]*gd[i]
			mHat := md[i] / bc1
			vHat := vd[i] / bc2
			wd[i] -= a.lr * (mHat/(math.Sqrt(vHat)+a.eps) + a.weightDecay*wd[i])
		}
	}
}

// Model implements Optimizer.
func (a *AdamW) Model() nn.Module { return a.model }

// LR implements Optimizer.
func (a *AdamW) LR() float64 { return a.lr }

// SetLR implements Optimizer.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// Snapshot implements Optimizer.
func (a *AdamW) Snapshot() *State {
	st := NewState()
	st.Scalars["lr"] = a.lr
	st.Scalars["step"] = float64(a.step)
	for k, v := range a.m {
		st.Tensors["m."+k] = v.Clone()
	}
	for k, v := range a.v {
		st.Tensors["v."+k] = v.Clone()
	}
	return st
}

// Restore implements Optimizer.
func (a *AdamW) Restore(st *State) error {
	lr, ok := st.Scalars["lr"]
	if !ok {
		return fmt.Errorf("opt: AdamW restore: missing lr")
	}
	stepF, ok := st.Scalars["step"]
	if !ok {
		return fmt.Errorf("opt: AdamW restore: missing step")
	}
	a.lr = lr
	a.step = int(stepF)
	a.m = map[string]*tensor.Tensor{}
	a.v = map[string]*tensor.Tensor{}
	for k, v := range st.Tensors {
		switch {
		case len(k) > 2 && k[:2] == "m.":
			a.m[k[2:]] = v.Clone()
		case len(k) > 2 && k[:2] == "v.":
			a.v[k[2:]] = v.Clone()
		default:
			return fmt.Errorf("opt: AdamW restore: unexpected tensor %q", k)
		}
	}
	return nil
}

// Scheduler adjusts an optimizer's learning rate once per epoch.
type Scheduler interface {
	// Step advances the schedule by one epoch.
	Step()
	// Optimizer returns the optimizer this scheduler mutates (used by Flor's
	// changeset augmentation).
	Optimizer() Optimizer
	// Snapshot captures scheduler state.
	Snapshot() *State
	// Restore applies a snapshot.
	Restore(*State) error
}

// StepLR multiplies the learning rate by gamma every stepSize epochs.
type StepLR struct {
	opt      Optimizer
	gamma    float64
	stepSize int
	epoch    int
}

// NewStepLR constructs a step decay schedule.
func NewStepLR(o Optimizer, stepSize int, gamma float64) *StepLR {
	return &StepLR{opt: o, gamma: gamma, stepSize: stepSize}
}

// Step implements Scheduler.
func (s *StepLR) Step() {
	s.epoch++
	if s.stepSize > 0 && s.epoch%s.stepSize == 0 {
		s.opt.SetLR(s.opt.LR() * s.gamma)
	}
}

// Optimizer implements Scheduler.
func (s *StepLR) Optimizer() Optimizer { return s.opt }

// Snapshot implements Scheduler.
func (s *StepLR) Snapshot() *State {
	st := NewState()
	st.Scalars["epoch"] = float64(s.epoch)
	return st
}

// Restore implements Scheduler.
func (s *StepLR) Restore(st *State) error {
	e, ok := st.Scalars["epoch"]
	if !ok {
		return fmt.Errorf("opt: StepLR restore: missing epoch")
	}
	s.epoch = int(e)
	return nil
}

// CosineLR anneals the learning rate from its base value to zero over tMax
// epochs following a half cosine.
type CosineLR struct {
	opt    Optimizer
	baseLR float64
	tMax   int
	epoch  int
}

// NewCosineLR constructs a cosine annealing schedule over tMax epochs.
func NewCosineLR(o Optimizer, tMax int) *CosineLR {
	return &CosineLR{opt: o, baseLR: o.LR(), tMax: tMax}
}

// Step implements Scheduler.
func (s *CosineLR) Step() {
	s.epoch++
	frac := float64(s.epoch) / float64(s.tMax)
	if frac > 1 {
		frac = 1
	}
	s.opt.SetLR(s.baseLR * 0.5 * (1 + math.Cos(math.Pi*frac)))
}

// Optimizer implements Scheduler.
func (s *CosineLR) Optimizer() Optimizer { return s.opt }

// Snapshot implements Scheduler.
func (s *CosineLR) Snapshot() *State {
	st := NewState()
	st.Scalars["epoch"] = float64(s.epoch)
	st.Scalars["baseLR"] = s.baseLR
	return st
}

// Restore implements Scheduler.
func (s *CosineLR) Restore(st *State) error {
	e, ok := st.Scalars["epoch"]
	if !ok {
		return fmt.Errorf("opt: CosineLR restore: missing epoch")
	}
	base, ok := st.Scalars["baseLR"]
	if !ok {
		return fmt.Errorf("opt: CosineLR restore: missing baseLR")
	}
	s.epoch = int(e)
	s.baseLR = base
	return nil
}
