// Package cluster models the paper's evaluation testbed: EC2 machines with
// multiple GPUs, wall-clock makespans for coordination-free parallel work,
// and dollar costs (paper §6, Figures 10, 13, 14; Table 4).
//
// The reproduction host has two cores, so scale-out beyond two workers
// cannot be demonstrated in wall-clock time. Instead, the simulator computes
// virtual makespans from *measured* per-iteration costs: each worker is
// charged the real, recorded durations of the iterations it initializes and
// executes, and the cluster makespan is the maximum over workers (the
// workers share nothing and never communicate, §5.4.4, so max is exact).
// Near-ideal scale-out is then a property of the partitioning algorithm and
// the measured costs — which is precisely the claim Figures 10 and 13 make.
package cluster

import (
	"fmt"

	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
)

// EC2 instance pricing (2020 us-west-2 on-demand, $/hour) and S3 storage
// pricing used throughout the paper's cost accounting.
const (
	PriceP32xlargeHour = 3.06  // P3.2xLarge: 1 V100 GPU
	PriceP38xlargeHour = 12.24 // P3.8xLarge: 4 V100 GPUs
	GPUsPerP32xlarge   = 1
	GPUsPerP38xlarge   = 4
	// S3PricePerGBMonth is the standard-tier storage price used by Table 4.
	S3PricePerGBMonth = 0.023
)

// Machine describes one instance type in the pool.
type Machine struct {
	Name      string
	GPUs      int
	PricePerH float64
}

// P32xLarge returns the paper's single-GPU instance type.
func P32xLarge() Machine {
	return Machine{Name: "P3.2xLarge", GPUs: GPUsPerP32xlarge, PricePerH: PriceP32xlargeHour}
}

// P38xLarge returns the paper's 4-GPU instance type.
func P38xLarge() Machine {
	return Machine{Name: "P3.8xLarge", GPUs: GPUsPerP38xlarge, PricePerH: PriceP38xlargeHour}
}

// CostModel converts durations and checkpoint sizes into dollars.
type CostModel struct{}

// MachineCost returns the dollar cost of running machine m for ns
// nanoseconds (partial hours are billed pro-rata, per-second billing).
func (CostModel) MachineCost(m Machine, ns int64) float64 {
	hours := float64(ns) / float64(3_600_000_000_000)
	return m.PricePerH * hours
}

// StorageCostPerMonth returns the monthly S3 cost of storing bytes (Table 4).
func (CostModel) StorageCostPerMonth(bytes int64) float64 {
	gb := float64(bytes) / (1 << 30)
	return gb * S3PricePerGBMonth
}

// IterationCosts carries the measured per-iteration timings a record run
// produces: how long each main-loop iteration's compute took, and how long
// the corresponding checkpoint restore takes.
type IterationCosts struct {
	// ComputNs[e] is the measured compute time of main-loop iteration e.
	ComputNs []int64
	// RestoreNs[e] is the measured cost of restoring iteration e's
	// side-effects from checkpoints (0 if never measured; the model falls
	// back to the mean of observed restores).
	RestoreNs []int64
	// SetupNs is the measured cost of running program setup (per worker).
	SetupNs int64
}

// meanRestore returns the average of the non-zero restore costs, or 0.
func (c *IterationCosts) meanRestore() int64 {
	var sum, n int64
	for _, r := range c.RestoreNs {
		if r > 0 {
			sum += r
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// restoreAt returns the restore cost of iteration e with fallback.
func (c *IterationCosts) restoreAt(e int) int64 {
	if e < len(c.RestoreNs) && c.RestoreNs[e] > 0 {
		return c.RestoreNs[e]
	}
	return c.meanRestore()
}

// schedCosts converts the measured iteration costs into the scheduler's
// model: work costs are compute when the inner loop is probed (it
// re-executes) and restores otherwise; catch-up costs are restores. The
// simulator keeps its idealized anchor model (every iteration restorable,
// expressed as nil anchors), matching its pre-existing weak-init accounting.
func (c *IterationCosts) schedCosts(probedInner bool) *sched.Costs {
	sc := &sched.Costs{SetupNs: c.SetupNs}
	for e := range c.ComputNs {
		r := c.restoreAt(e)
		sc.CatchupNs = append(sc.CatchupNs, r)
		if probedInner {
			sc.WorkNs = append(sc.WorkNs, c.ComputNs[e])
		} else {
			sc.WorkNs = append(sc.WorkNs, r)
		}
	}
	return sc
}

// VirtualReplay describes one simulated parallel replay.
type VirtualReplay struct {
	Workers       int
	Init          replay.InitMode
	Scheduler     sched.Policy
	ProbedInner   bool // inner probe: work iterations execute; else they restore
	WorkerNs      []int64
	MakespanNs    int64
	SequentialNs  int64 // one worker doing everything (vanilla re-execution)
	SpeedupFactor float64
	Steals        int // leases created by stealing (SchedStealing only)
}

// Simulate computes the virtual makespan of replaying n iterations over G
// workers given measured iteration costs, under the static scheduler.
// Initialization iterations cost restore time (strong) or a single restore
// (weak); work iterations cost compute time when the inner loop is probed,
// restore time otherwise.
func Simulate(costs *IterationCosts, g int, init replay.InitMode, probedInner bool) *VirtualReplay {
	return SimulateSched(costs, g, init, probedInner, sched.Static)
}

// SimulateSched computes the virtual makespan under a chosen scheduling
// policy. It runs the same partitioners and stealing policy the real replay
// engine uses (internal/sched), so the virtual scale-out behind Figures
// 10/13 — and the replay-scaleout benchmark comparing schedulers under
// skewed costs — reflects what a replay would actually do.
func SimulateSched(costs *IterationCosts, g int, init replay.InitMode, probedInner bool, policy sched.Policy) *VirtualReplay {
	return SimulateSchedTraced(costs, g, init, probedInner, policy, nil)
}

// SimulateSchedTraced is SimulateSched with an optional virtual-time span
// trace (obs.NewVirtualTrace): each simulated worker's setup, checkpoint
// catch-up, and work phases are recorded as spans stamped with the same
// virtual nanoseconds the makespan uses. The simulation is deterministic, so
// two traces of identical inputs are byte-identical NDJSON — diffable
// records of what the scheduler decided. A nil tr traces nothing.
func SimulateSchedTraced(costs *IterationCosts, g int, init replay.InitMode, probedInner bool, policy sched.Policy, tr *obs.Trace) *VirtualReplay {
	sc := costs.schedCosts(probedInner)
	vr := &VirtualReplay{Workers: g, Init: init, ProbedInner: probedInner, Scheduler: policy}

	var seq int64 = costs.SetupNs
	for _, c := range costs.ComputNs {
		seq += c
	}
	vr.SequentialNs = seq

	switch policy {
	case sched.Stealing:
		sim := sched.SimulateStealingTraced(sc, g, init, nil, tr)
		vr.WorkerNs = sim.WorkerNs
		vr.MakespanNs = sim.MakespanNs
		vr.Steals = sim.Steals
	default:
		var segs [][2]int
		if policy == sched.Balanced {
			segs = sched.PartitionBalanced(sc, g)
		} else {
			segs = sched.PartitionStatic(sc.N(), g)
		}
		for i, seg := range segs {
			initNs := sc.InitCostNs(seg[0], init, nil)
			workNs := sc.WorkCostNs(seg[0], seg[1])
			w := sc.SetupNs + initNs + workNs
			vr.WorkerNs = append(vr.WorkerNs, w)
			if w > vr.MakespanNs {
				vr.MakespanNs = w
			}
			if tr != nil {
				tr.Add(obs.Span{Name: "setup", Worker: i, StartNs: 0, DurNs: sc.SetupNs})
				tr.Add(obs.Span{Name: "init", Worker: i, StartNs: sc.SetupNs, DurNs: initNs,
					Attrs: map[string]int64{"start": int64(seg[0]), "stolen": 0}})
				tr.Add(obs.Span{Name: "work", Worker: i, StartNs: sc.SetupNs + initNs, DurNs: workNs,
					Attrs: map[string]int64{"start": int64(seg[0]), "end": int64(seg[1]), "stolen": 0}})
				tr.Add(obs.Span{Name: "worker", Worker: i, StartNs: 0, DurNs: w})
			}
		}
	}
	if vr.MakespanNs > 0 {
		vr.SpeedupFactor = float64(vr.SequentialNs) / float64(vr.MakespanNs)
	}
	return vr
}

// ReplayCost prices a virtual replay on a pool of identical machines: the
// number of machines is ⌈G / GPUs-per-machine⌉, each billed for the
// makespan.
func ReplayCost(vr *VirtualReplay, m Machine) (machines int, dollars float64) {
	machines = (vr.Workers + m.GPUs - 1) / m.GPUs
	dollars = float64(machines) * CostModel{}.MachineCost(m, vr.MakespanNs)
	return machines, dollars
}

// FormatDollars renders a dollar amount the way the paper's tables do.
func FormatDollars(d float64) string {
	if d < 0.005 && d > 0 {
		return fmt.Sprintf("$ %.3f", d)
	}
	return fmt.Sprintf("$ %.2f", d)
}
