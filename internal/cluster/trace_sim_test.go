package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"flor.dev/flor/internal/obs"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
	"flor.dev/flor/internal/xrand"
)

// seededCosts builds a skewed cost vector from a seeded RNG — "same seed"
// means two independently built vectors are identical, so two simulations
// over them must be too.
func seededCosts(n int, seed uint64) *IterationCosts {
	rng := xrand.New(seed)
	c := &IterationCosts{SetupNs: 2_000_000}
	for i := 0; i < n; i++ {
		c.ComputNs = append(c.ComputNs, 1_000_000+int64(rng.Float64()*9_000_000))
		c.RestoreNs = append(c.RestoreNs, 500_000+int64(rng.Float64()*500_000))
	}
	return c
}

// simNDJSON runs one traced virtual-time simulation and returns the
// canonical NDJSON span log.
func simNDJSON(t *testing.T, costs *IterationCosts, g int, policy sched.Policy) []byte {
	t.Helper()
	tr := obs.NewVirtualTrace()
	vr := SimulateSchedTraced(costs, g, replay.Weak, true, policy, tr)
	if vr.MakespanNs <= 0 {
		t.Fatalf("simulation produced no makespan: %+v", vr)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSimTraceDeterministic pins the tentpole's determinism guarantee: two
// same-seed virtual-time simulation runs emit byte-identical span logs, for
// both the stealing event loop and the partitioned schedulers.
func TestSimTraceDeterministic(t *testing.T) {
	for _, policy := range []sched.Policy{sched.Static, sched.Balanced, sched.Stealing} {
		a := simNDJSON(t, seededCosts(64, 7), 5, policy)
		b := simNDJSON(t, seededCosts(64, 7), 5, policy)
		if !bytes.Equal(a, b) {
			t.Errorf("%v: same-seed traces differ:\n--- first\n%s\n--- second\n%s", policy, a, b)
		}
		if len(bytes.TrimSpace(a)) == 0 {
			t.Errorf("%v: trace empty", policy)
		}
		// Different seeds must actually change the trace, or the equality
		// above proves nothing.
		if c := simNDJSON(t, seededCosts(64, 8), 5, policy); bytes.Equal(a, c) {
			t.Errorf("%v: traces identical across different seeds", policy)
		}
	}
}

// TestSimTraceAccounting cross-checks the stealing trace against the
// simulation's own numbers: per-worker span sums equal WorkerNs, work spans
// cover every iteration exactly once, and stolen work spans match Steals.
func TestSimTraceAccounting(t *testing.T) {
	costs := seededCosts(64, 7)
	tr := obs.NewVirtualTrace()
	vr := SimulateSchedTraced(costs, 5, replay.Weak, true, sched.Stealing, tr)

	covered := make([]int, 64)
	stolenWork := 0
	finish := map[int]int64{}
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "work":
			for i := sp.Attrs["start"]; i < sp.Attrs["end"]; i++ {
				covered[i]++
			}
			if sp.Attrs["stolen"] == 1 {
				stolenWork++
			}
			fallthrough
		case "setup", "init":
			if end := sp.StartNs + sp.DurNs; end > finish[sp.Worker] {
				finish[sp.Worker] = end
			}
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Errorf("iteration %d executed %d times in trace", i, n)
		}
	}
	if stolenWork != vr.Steals {
		t.Errorf("trace has %d stolen work spans, simulation reports %d steals", stolenWork, vr.Steals)
	}
	for w, ns := range vr.WorkerNs {
		if finish[w] != ns {
			t.Errorf("worker %d: trace finishes at %d, WorkerNs = %d", w, finish[w], ns)
		}
	}
}

// TestSimTraceSpansWellFormed checks every span line parses and uses virtual
// time (no wall-clock leakage: all starts within the makespan).
func TestSimTraceSpansWellFormed(t *testing.T) {
	costs := seededCosts(32, 3)
	tr := obs.NewVirtualTrace()
	vr := SimulateSchedTraced(costs, 4, replay.Weak, true, sched.Stealing, tr)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var sp obs.Span
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatalf("bad span line %s: %v", line, err)
		}
		if sp.StartNs < 0 || sp.StartNs > vr.MakespanNs {
			t.Errorf("span %s starts at %d outside virtual makespan %d", sp.Name, sp.StartNs, vr.MakespanNs)
		}
	}
}
