package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/sched"
)

// uniformCosts builds n iterations of fixed compute and restore cost.
func uniformCosts(n int, computNs, restoreNs, setupNs int64) *IterationCosts {
	c := &IterationCosts{SetupNs: setupNs}
	for i := 0; i < n; i++ {
		c.ComputNs = append(c.ComputNs, computNs)
		c.RestoreNs = append(c.RestoreNs, restoreNs)
	}
	return c
}

func TestMachineCost(t *testing.T) {
	cm := CostModel{}
	hourNs := int64(3_600_000_000_000)
	if got := cm.MachineCost(P32xLarge(), hourNs); math.Abs(got-3.06) > 1e-9 {
		t.Fatalf("1 hour of P3.2xLarge = %g, want 3.06", got)
	}
	if got := cm.MachineCost(P38xLarge(), hourNs/2); math.Abs(got-6.12) > 1e-9 {
		t.Fatalf("30 min of P3.8xLarge = %g, want 6.12", got)
	}
}

func TestStorageCost(t *testing.T) {
	cm := CostModel{}
	// Table 4: 39 GB (RsNt) costs about $0.90/month.
	got := cm.StorageCostPerMonth(39 << 30)
	if math.Abs(got-0.897) > 0.001 {
		t.Fatalf("39GB/month = %g, want ~0.897", got)
	}
	// 130 GB for a month ≈ $3, "the same cost as running a single-GPU
	// instance for an hour" (§6.2).
	monthly := cm.StorageCostPerMonth(130 << 30)
	gpuHour := cm.MachineCost(P32xLarge(), 3_600_000_000_000)
	if monthly > gpuHour*1.05 || monthly < gpuHour*0.9 {
		t.Fatalf("130GB-month = %g vs GPU-hour = %g; paper says roughly equal", monthly, gpuHour)
	}
}

func TestSimulateSequentialBaseline(t *testing.T) {
	costs := uniformCosts(10, 1000, 10, 500)
	vr := Simulate(costs, 1, replay.Strong, true)
	if vr.MakespanNs != 500+10*1000 {
		t.Fatalf("G=1 makespan = %d", vr.MakespanNs)
	}
	if vr.SpeedupFactor != 1 {
		t.Fatalf("G=1 speedup = %g", vr.SpeedupFactor)
	}
}

func TestSimulateNearIdealScaling(t *testing.T) {
	// Restores and setup are cheap relative to compute: parallel replay of a
	// probed inner loop should scale near-ideally (Fig 13).
	costs := uniformCosts(200, 1_000_000, 1000, 10_000)
	for _, g := range []int{4, 8, 16} {
		vr := Simulate(costs, g, replay.Weak, true)
		ideal := replay.MaxSpeedup(200, g)
		if vr.SpeedupFactor < ideal*0.95 {
			t.Fatalf("G=%d speedup %.2f below 95%% of ideal %.2f", g, vr.SpeedupFactor, ideal)
		}
		if vr.SpeedupFactor > ideal*1.001 {
			t.Fatalf("G=%d speedup %.2f exceeds ideal %.2f", g, vr.SpeedupFactor, ideal)
		}
	}
}

func TestSimulateStrongInitCostsMoreThanWeak(t *testing.T) {
	costs := uniformCosts(100, 1_000_000, 10_000, 0)
	strong := Simulate(costs, 4, replay.Strong, true)
	weak := Simulate(costs, 4, replay.Weak, true)
	if strong.MakespanNs <= weak.MakespanNs {
		t.Fatalf("strong makespan %d should exceed weak %d (more init restores)",
			strong.MakespanNs, weak.MakespanNs)
	}
	// But with restores ≪ compute the difference is negligible (paper:
	// "the difference between weak and strong initialization is negligible").
	if float64(strong.MakespanNs) > float64(weak.MakespanNs)*1.05 {
		t.Fatalf("strong %d vs weak %d: more than 5%% apart", strong.MakespanNs, weak.MakespanNs)
	}
}

func TestSimulateUnprobedReplayIsFast(t *testing.T) {
	// Outer-loop probe: every iteration restores instead of computing; the
	// replay should be orders of magnitude faster than sequential.
	costs := uniformCosts(100, 10_000_000, 1000, 0)
	vr := Simulate(costs, 1, replay.Strong, false)
	if vr.SpeedupFactor < 1000 {
		t.Fatalf("partial replay speedup = %.1f, want >= 1000x", vr.SpeedupFactor)
	}
}

func TestSimulateRestoreFallbackToMean(t *testing.T) {
	costs := &IterationCosts{
		ComputNs:  []int64{100, 100, 100, 100},
		RestoreNs: []int64{10, 0, 30, 0}, // gaps
	}
	vr := Simulate(costs, 1, replay.Strong, false)
	// mean restore = 20; iterations restore at 10, 20, 30, 20.
	if vr.MakespanNs != 80 {
		t.Fatalf("makespan = %d, want 80", vr.MakespanNs)
	}
}

func TestReplayCostMachineCount(t *testing.T) {
	costs := uniformCosts(16, 1_000_000, 100, 0)
	vr := Simulate(costs, 16, replay.Weak, true)
	machines, dollars := ReplayCost(vr, P38xLarge())
	if machines != 4 {
		t.Fatalf("16 workers on 4-GPU machines = %d machines, want 4", machines)
	}
	if dollars <= 0 {
		t.Fatalf("dollars = %g", dollars)
	}
	m1, _ := ReplayCost(Simulate(costs, 5, replay.Weak, true), P38xLarge())
	if m1 != 2 {
		t.Fatalf("5 workers = %d machines, want 2", m1)
	}
}

func TestParallelCostNearSerialCost(t *testing.T) {
	// Fig 14's claim: parallel replay finishes in a fraction of the time but
	// costs about the same, because parallelism is near-ideal.
	costs := uniformCosts(64, 10_000_000, 1000, 0)
	serial := Simulate(costs, 1, replay.Weak, true)
	_, serialCost := ReplayCost(serial, P32xLarge())
	par := Simulate(costs, 16, replay.Weak, true)
	_, parCost := ReplayCost(par, P38xLarge())
	// 16 workers on 4×P3.8xLarge: price/GPU-hour identical (3.06), so the
	// costs should be within ~20% of each other (init duplication only).
	if parCost > serialCost*1.2 || parCost < serialCost*0.8 {
		t.Fatalf("parallel cost %g vs serial %g: should be comparable", parCost, serialCost)
	}
	if par.MakespanNs >= serial.MakespanNs/10 {
		t.Fatalf("parallel makespan %d not much faster than serial %d", par.MakespanNs, serial.MakespanNs)
	}
}

func TestFormatDollars(t *testing.T) {
	if got := FormatDollars(0.897); got != "$ 0.90" {
		t.Fatalf("FormatDollars = %q", got)
	}
	if got := FormatDollars(0.001); got != "$ 0.001" {
		t.Fatalf("FormatDollars = %q", got)
	}
}

func TestQuickSimulateWorkerCountAndMakespan(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw%100) + 1
		g := int(gRaw%20) + 1
		costs := uniformCosts(n, 1000, 10, 5)
		vr := Simulate(costs, g, replay.Weak, true)
		if len(vr.WorkerNs) == 0 {
			return false
		}
		// Makespan is the max over workers; speedup cannot exceed ideal.
		var maxW int64
		for _, w := range vr.WorkerNs {
			if w > maxW {
				maxW = w
			}
		}
		return maxW == vr.MakespanNs && vr.SpeedupFactor <= float64(g)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// skewedCosts builds a head-heavy cost vector: the first `heavy` iterations
// cost `factor` times the rest.
func skewedCosts(n, heavy int, factor int64) *IterationCosts {
	c := &IterationCosts{}
	for i := 0; i < n; i++ {
		comput := int64(1_000_000)
		if i < heavy {
			comput *= factor
		}
		c.ComputNs = append(c.ComputNs, comput)
		c.RestoreNs = append(c.RestoreNs, 10_000)
	}
	return c
}

func TestSimulateSchedBalancedBeatsStaticOnSkew(t *testing.T) {
	costs := skewedCosts(128, 16, 50)
	for _, g := range []int{8, 16} {
		static := SimulateSched(costs, g, replay.Weak, true, sched.Static)
		balanced := SimulateSched(costs, g, replay.Weak, true, sched.Balanced)
		stealing := SimulateSched(costs, g, replay.Weak, true, sched.Stealing)
		if float64(static.MakespanNs) < 1.5*float64(balanced.MakespanNs) {
			t.Fatalf("G=%d: balanced %d not 1.5x better than static %d",
				g, balanced.MakespanNs, static.MakespanNs)
		}
		if float64(static.MakespanNs) < 1.5*float64(stealing.MakespanNs) {
			t.Fatalf("G=%d: stealing %d not 1.5x better than static %d",
				g, stealing.MakespanNs, static.MakespanNs)
		}
	}
}

func TestSimulateSchedUniformNoRegression(t *testing.T) {
	costs := uniformCosts(200, 1_000_000, 1000, 10_000)
	for _, g := range []int{4, 8, 16} {
		static := SimulateSched(costs, g, replay.Weak, true, sched.Static)
		for _, policy := range []sched.Policy{sched.Balanced, sched.Stealing} {
			vr := SimulateSched(costs, g, replay.Weak, true, policy)
			if vr.MakespanNs > static.MakespanNs {
				t.Fatalf("G=%d %v makespan %d exceeds static %d",
					g, policy, vr.MakespanNs, static.MakespanNs)
			}
		}
	}
}

func TestSimulateMatchesSchedStaticExactly(t *testing.T) {
	// Simulate is now a thin wrapper over the sched-backed path; its numbers
	// must be reproducible from the scheduler's own cost accounting.
	costs := skewedCosts(64, 8, 10)
	vr := Simulate(costs, 4, replay.Strong, true)
	var want int64
	for _, w := range vr.WorkerNs {
		if w > want {
			want = w
		}
	}
	if vr.MakespanNs != want {
		t.Fatalf("makespan %d != max worker %d", vr.MakespanNs, want)
	}
	if len(vr.WorkerNs) != 4 {
		t.Fatalf("worker count %d, want 4", len(vr.WorkerNs))
	}
}
