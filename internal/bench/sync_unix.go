//go:build unix

package bench

import "syscall"

// drainWriteback forces dirty page cache out to disk so the kernel flusher
// doesn't fire mid-measurement: every cell writes tens of megabytes right
// before its restore sweeps, and on a small box a background writeback burst
// landing inside the timed window skews the cell it happens to hit.
func drainWriteback() { syscall.Sync() }
