package bench

import (
	"fmt"
	"time"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/workloads"
	"flor.dev/flor/internal/xrand"
)

// familyRuns is the size of the fine-tuning family: sibling runs sharing
// one frozen backbone, each with its own task head — the paper's RTE/CoLA
// shape, where every run re-checkpoints a backbone it never trains.
const familyRuns = 4

// familyScenario builds the fine-tuning family's per-run environments: one
// frozen backbone (identical object across runs) plus a per-run head tensor
// the mutator rewrites every epoch.
type familyScenario struct {
	backbone backmat.NamedValue
	heads    []*value.Tensor
}

func newFamilyScenario(scale workloads.Scale) *familyScenario {
	// The head is deliberately small next to the backbone (a task head over
	// a frozen encoder — the RTE/CoLA shape): the family's redundancy is
	// the backbone, re-checkpointed by every run.
	vocab, seqLen, dim, hidden, depth := 4096, 24, 96, 192, 3
	headLen := 1 << 11
	if scale == workloads.Smoke {
		vocab, seqLen, dim, hidden, depth = 512, 12, 32, 64, 2
		headLen = 1 << 8
	}
	fs := &familyScenario{
		backbone: backmat.NamedValue{
			Name: "backbone",
			V:    &value.Model{M: nn.NewTransformer(xrand.New(0xFA417), vocab, seqLen, dim, hidden, depth, 2)},
		},
	}
	for r := 0; r < familyRuns; r++ {
		rng := xrand.New(0xBEEF + uint64(r))
		fs.heads = append(fs.heads, &value.Tensor{T: tensor.Randn(rng, 1, headLen)})
	}
	return fs
}

// vals returns run r's checkpoint environment.
func (fs *familyScenario) vals(r int) []backmat.NamedValue {
	return []backmat.NamedValue{
		fs.backbone,
		{Name: "head", V: fs.heads[r]},
	}
}

// mutate rewrites run r's head for a new epoch (the backbone stays frozen).
func (fs *familyScenario) mutate(r, epoch int) {
	d := fs.heads[r].T.Data()
	rng := xrand.New(uint64(r)<<16 | uint64(epoch))
	for i := range d {
		d[i] = rng.Float64()
	}
}

// runFamily materializes the whole family (epochs checkpoints per run) with
// either per-run private packs (pool == "") or one shared chunk pool, then
// restores every run's checkpoints through the daemon-style read-only path.
// Private runs restore with per-run payload caches; pooled runs share one
// pool-wide cache, so the backbone decodes once for the whole family. It
// returns the row plus the family's total stored pack bytes.
func (s *Session) runFamily(fs *familyScenario, pool string, epochs int) (CkptThroughputRow, int64, error) {
	label := "v2-private"
	if pool != "" {
		label = "v2-pooled"
	}
	row := CkptThroughputRow{Scenario: "finetune-family", Format: label, Checkpoints: familyRuns * epochs}

	dirs := make([]string, familyRuns)
	var logical, stored, matNs int64
	for r := 0; r < familyRuns; r++ {
		dirs[r] = s.tempDir(fmt.Sprintf("family-%s-%d", label, r))
		// Private runs shard at the pool's default fanout so the comparison
		// isolates pooling (cross-run dedup, shared payload cache) from the
		// orthogonal sharded-read parallelism both layouts share.
		st, err := store.OpenWith(dirs[r], store.Options{Pool: pool, ShardFanout: store.DefaultShardFanout})
		if err != nil {
			return row, 0, err
		}
		for e := 0; e < epochs; e++ {
			fs.mutate(r, e)
			items := snapshotAll(fs.vals(r))
			t0 := time.Now()
			secs := backmat.EncodeSections(items)
			if _, err := st.PutSections(store.Key{LoopID: "train", Exec: e}, secs, 0, 0, 0); err != nil {
				return row, 0, err
			}
			matNs += time.Since(t0).Nanoseconds()
		}
		for _, m := range st.Metas() {
			logical += m.Size
		}
		if pool == "" {
			stored += st.Dedup().StoredEncBytes
		}
	}
	if pool != "" {
		ps, ok := store.PoolStatsAt(pool)
		if !ok {
			return row, 0, fmt.Errorf("bench: pool %s not open after family record", pool)
		}
		stored = ps.StoredEncBytes
	}

	// Shared-restore throughput: replay the family's checkpoints back
	// through read-only stores. The pooled family shares one payload cache
	// (pool-wide content addressing); the private family pays one cache per
	// run, decoding the backbone four times.
	sharedCache := backmat.NewPayloadCache(0)
	drainWriteback()
	var resNs int64
	for r := 0; r < familyRuns; r++ {
		ro, err := store.OpenReadOnly(dirs[r])
		if err != nil {
			return row, 0, err
		}
		cache := sharedCache
		if pool == "" {
			cache = backmat.NewPayloadCache(0)
		}
		for e := 0; e < epochs; e++ {
			t0 := time.Now()
			secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: e}, cache.Contains)
			if err != nil || !ok {
				return row, 0, fmt.Errorf("bench: family restore %s run %d epoch %d: ok=%v err=%v", label, r, e, ok, err)
			}
			items, err := backmat.DecodeSectionsCached(cache, secs)
			if err != nil {
				return row, 0, err
			}
			resNs += time.Since(t0).Nanoseconds()
			if len(items) != 2 {
				return row, 0, fmt.Errorf("bench: family restore decoded %d items", len(items))
			}
		}
	}

	mb := float64(logical) / (1 << 20)
	row.LogicalMB = mb
	row.MatMBps = mb / (float64(matNs) / 1e9)
	row.ResMBps = mb / (float64(resNs) / 1e9)
	if stored > 0 {
		row.DedupRatio = float64(logical) / float64(stored)
	}
	return row, stored, nil
}

// FinetuneFamily measures the cross-run shared chunk pool on a fine-tuning
// family: familyRuns sibling runs checkpoint one frozen backbone plus
// per-run heads, once into per-run private packs and once into a shared
// pool. It reports the family-wide storage reduction (private stored bytes
// over pooled stored bytes; the pool stores the backbone once) and the
// shared-restore speedup from the pool-wide payload cache.
func (s *Session) FinetuneFamily(epochs int) (privateRow, pooledRow CkptThroughputRow, reduction, restoreSpeedup float64, err error) {
	fs := newFamilyScenario(s.Scale)
	privateRow, privateStored, err := s.runFamily(fs, "", epochs)
	if err != nil {
		return privateRow, pooledRow, 0, 0, err
	}
	pooledRow, pooledStored, err := s.runFamily(fs, s.tempDir("family-pool"), epochs)
	if err != nil {
		return privateRow, pooledRow, 0, 0, err
	}
	if pooledStored > 0 {
		reduction = float64(privateStored) / float64(pooledStored)
	}
	if privateRow.ResMBps > 0 {
		restoreSpeedup = pooledRow.ResMBps / privateRow.ResMBps
	}
	return privateRow, pooledRow, reduction, restoreSpeedup, nil
}
