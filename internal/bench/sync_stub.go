//go:build !unix

package bench

// drainWriteback is a no-op where sync(2) is unavailable; restore timings
// may see background writeback noise.
func drainWriteback() {}
