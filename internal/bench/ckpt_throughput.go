package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/store/cachetier"
	"flor.dev/flor/internal/store/remote"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/workloads"
	"flor.dev/flor/internal/xrand"
)

// CkptThroughputRow is one (scenario, format) measurement of the checkpoint
// storage engine: serialize+write and read+decode throughput over the
// logical payload volume, plus the chunk-dedup ratio the run achieved.
// Spool-cadence rows additionally report spool throughput: the pack volume
// an every-epoch background spool kept compressed, per second of spool
// work.
type CkptThroughputRow struct {
	Scenario    string  `json:"scenario"` // "frozen", "mutating", "spool-cadence", "finetune-family" or "remote-restore"
	Format      string  `json:"format"`   // "v1-blob", "v2-frames", "v2-pack", "v2-sharded16", "v2-private", "v2-pooled", "remote-cold", "remote-warm", "remote-cold-barrier" or "remote-cold-pipelined"
	LogicalMB   float64 `json:"logical_mb"`
	MatMBps     float64 `json:"materialize_mbps"`
	ResMBps     float64 `json:"restore_mbps"`
	DedupRatio  float64 `json:"dedup_ratio"`
	Checkpoints int     `json:"checkpoints"`
	SpoolMBps   float64 `json:"spool_mbps,omitempty"`
}

// CkptThroughputReport compares format v1 (one monolithic blob per
// checkpoint, single-goroutine codec) against format v2 (parallel frames
// with content-addressed dedup) on the same workload, and — on the
// spool-cadence scenario — the single CHUNKS pack against the hash-prefix
// sharded store at fanout 16.
type CkptThroughputReport struct {
	Rows []CkptThroughputRow `json:"rows"`
	// MatSpeedupFrozen / ResSpeedupFrozen are v2-over-v1 throughput ratios
	// on the frozen-layer scenario (the paper's RTE/CoLA shape: a large
	// frozen backbone checkpointed every epoch).
	MatSpeedupFrozen   float64 `json:"materialize_speedup_frozen"`
	ResSpeedupFrozen   float64 `json:"restore_speedup_frozen"`
	MatSpeedupMutating float64 `json:"materialize_speedup_mutating"`
	ResSpeedupMutating float64 `json:"restore_speedup_mutating"`
	DedupRatioFrozen   float64 `json:"dedup_ratio_frozen"`
	// ShardedSpoolSpeedup is the sharded-over-single-pack spool-throughput
	// ratio on the frozen-layer spool cadence (the sharded store
	// recompresses only dirty shards; acceptance bar ≥ 1.5 at fanout 16).
	// ShardedMatSpeedup and ShardedRestoreSpeedup are the corresponding
	// materialize/restore ratios and must not regress (~1.0).
	ShardedSpoolSpeedup   float64 `json:"sharded_spool_speedup"`
	ShardedMatSpeedup     float64 `json:"sharded_materialize_speedup"`
	ShardedRestoreSpeedup float64 `json:"sharded_restore_speedup"`
	// RemoteWarmRestoreSpeedup is the remote-restore scenario's warm-over-
	// cold restore-throughput ratio: the same run restored through the
	// object backend with an empty chunk-cache tier versus a populated one.
	// Warm restores skip the remote ranged GETs the cache tier absorbed, so
	// the ratio is the cache tier's whole value proposition in one number.
	RemoteWarmRestoreSpeedup float64 `json:"remote_warm_restore_speedup"`
	// RemoteColdRestoreSpeedup is the cold-restore engine's headline ratio,
	// measured over a simulated fixed-bandwidth remote link (calibrated
	// modestly fetch-bound — transferring the run takes ~1.45x its decode
	// time, the common regime for remote restores): the pipelined restore
	// with plan-driven prefetch warming the cache tier ahead of the decode
	// front, versus the barriered no-prefetch baseline on the same link.
	// Acceptance bar ≥ 1.5; CI guards regressions below 1.4.
	RemoteColdRestoreSpeedup float64 `json:"remote_cold_restore_speedup"`
	// FamilyStorageReduction is the finetune-family scenario's stored-bytes
	// ratio: per-run private packs over one shared chunk pool, across a
	// 4-run family re-checkpointing a frozen backbone (acceptance bar ≥ 3x
	// — the pool stores the backbone once instead of once per run).
	// FamilySharedRestoreSpeedup is the family restore-throughput ratio
	// from the pool-wide payload cache (the backbone decodes once for the
	// family instead of once per run).
	FamilyStorageReduction     float64 `json:"family_storage_reduction"`
	FamilySharedRestoreSpeedup float64 `json:"family_shared_restore_speedup"`
}

// ckptScenario builds the environment values for one scenario and a mutator
// applied (untimed) before each checkpoint.
type ckptScenario struct {
	name   string
	vals   []backmat.NamedValue
	mutate func(epoch int)
}

// ckptScenarios returns the two workloads: "frozen" — a multi-MB frozen
// transformer plus a small step tensor (dedup's best case, the fine-tuning
// workloads' shape) — and "mutating" — a multi-MB tensor fully rewritten
// every epoch (dedup's worst case, isolating pure parallel-codec speedup).
func ckptScenarios(scale workloads.Scale) []ckptScenario {
	vocab, seqLen, dim, hidden, depth := 4096, 24, 96, 192, 3
	mutLen := 1 << 19 // 4 MB of float64s
	if scale == workloads.Smoke {
		vocab, seqLen, dim, hidden, depth = 512, 12, 32, 64, 2
		mutLen = 1 << 15
	}
	frozenModel := nn.NewTransformer(xrand.New(0xC4A7), vocab, seqLen, dim, hidden, depth, 2)
	step := &value.Tensor{T: tensor.New(8)}
	frozen := ckptScenario{
		name: "frozen",
		vals: []backmat.NamedValue{
			{Name: "net", V: &value.Model{M: frozenModel}},
			{Name: "step", V: step},
		},
		mutate: func(epoch int) { step.T.Data()[0] = float64(epoch) },
	}

	mutRng := xrand.New(0xD1CE)
	mut := &value.Tensor{T: tensor.Randn(mutRng, 1, mutLen)}
	mutating := ckptScenario{
		name: "mutating",
		vals: []backmat.NamedValue{{Name: "w", V: mut}},
		mutate: func(epoch int) {
			d := mut.T.Data()
			for i := range d {
				d[i] = mutRng.Float64()
			}
		},
	}
	return []ckptScenario{frozen, mutating}
}

// snapshotAll snapshots every value (the training-thread cost, identical
// under both formats and excluded from the timed region).
func snapshotAll(vals []backmat.NamedValue) []backmat.NamedPayload {
	items := make([]backmat.NamedPayload, len(vals))
	for i, nv := range vals {
		items[i] = backmat.NamedPayload{Name: nv.Name, Payload: nv.V.Snapshot()}
	}
	return items
}

// runCkptFormat materializes and restores `epochs` checkpoints of sc under
// the given segment format, timing only serialize+write and read+decode.
func (s *Session) runCkptFormat(sc ckptScenario, format int, epochs int) (CkptThroughputRow, error) {
	row := CkptThroughputRow{Scenario: sc.name, Checkpoints: epochs}
	st, err := store.OpenFormat(s.tempDir(fmt.Sprintf("ckpt-tp-%s-v%d", sc.name, format)), format)
	if err != nil {
		return row, err
	}
	if format == store.FormatV2 {
		row.Format = "v2-frames"
	} else {
		row.Format = "v1-blob"
	}

	var logical int64
	var matNs int64
	for e := 0; e < epochs; e++ {
		sc.mutate(e)
		items := snapshotAll(sc.vals)
		key := store.Key{LoopID: "train", Exec: e}
		t0 := time.Now()
		if format == store.FormatV2 {
			secs := backmat.EncodeSections(items)
			if _, err := st.PutSections(key, secs, 0, 0, 0); err != nil {
				return row, err
			}
		} else {
			// The seed's write path: one monolithic blob from a single
			// goroutine.
			if _, err := st.Put(key, backmat.EncodeBundle(items), 0, 0, 0); err != nil {
				return row, err
			}
		}
		matNs += time.Since(t0).Nanoseconds()
	}
	for _, m := range st.Metas() {
		logical += m.Size
	}

	// Restore with the same machinery replay uses: a content-addressed
	// payload cache over parallel section decode. Format v1 has no content
	// identity, so it always pays the full read+decode. The sweep runs
	// five times — fresh cache each pass, so no pass rides the last one's
	// decoded payloads — and the fastest pass counts: the timed region is
	// tens of milliseconds, so one descheduling blip would otherwise
	// dominate the v2/v1 ratio. Writeback of the bytes materialize just
	// dirtied is drained first so the flusher can't fire mid-sweep.
	drainWriteback()
	var resNs int64
	for pass := 0; pass < 5; pass++ {
		cache := backmat.NewPayloadCache(0)
		var passNs int64
		for e := 0; e < epochs; e++ {
			key := store.Key{LoopID: "train", Exec: e}
			t0 := time.Now()
			var items []backmat.NamedPayload
			secs, ok, err := st.GetSections(key, cache.Contains)
			if err != nil {
				return row, err
			}
			if ok {
				items, err = backmat.DecodeSectionsCached(cache, secs)
			} else {
				raw, gerr := st.Get(key)
				if gerr != nil {
					return row, gerr
				}
				items, err = backmat.DecodeBundle(raw)
			}
			if err != nil {
				return row, err
			}
			passNs += time.Since(t0).Nanoseconds()
			if len(items) != len(sc.vals) {
				return row, fmt.Errorf("bench: ckpt-throughput: epoch %d decoded %d items, want %d", e, len(items), len(sc.vals))
			}
		}
		if pass == 0 || passNs < resNs {
			resNs = passNs
		}
	}

	mb := float64(logical) / (1 << 20)
	row.LogicalMB = mb
	row.MatMBps = mb / (float64(matNs) / 1e9)
	row.ResMBps = mb / (float64(resNs) / 1e9)
	row.DedupRatio = st.Dedup().Ratio()
	return row, nil
}

// runSpoolCadence drives the frozen-layer workload against a v2 store at
// the given shard fanout (1 = the single CHUNKS pack) under an every-epoch
// background-spool cadence (paper §6: checkpoints are "compressed by a
// background process, before being spooled to an S3 bucket"). Spooled
// objects are immutable S3-style artifacts, so after every epoch the spool
// must re-cover every pack that grew: the single pack grows every epoch and
// is recompressed wholesale, while the sharded store recompresses only the
// shards the epoch's fresh chunks dirtied. Spool throughput is the pack
// volume kept covered (current pack bytes, summed over the cadence) per
// second of spool work; materialize and restore are timed like the other
// scenarios.
func (s *Session) runSpoolCadence(sc ckptScenario, fanout, epochs int) (CkptThroughputRow, error) {
	row := CkptThroughputRow{Scenario: "spool-cadence", Checkpoints: epochs}
	if fanout > 1 {
		row.Format = fmt.Sprintf("v2-sharded%d", fanout)
	} else {
		row.Format = "v2-pack"
	}
	dir := s.tempDir(fmt.Sprintf("ckpt-spool-%s", row.Format))
	st, err := store.OpenWith(dir, store.Options{ShardFanout: fanout})
	if err != nil {
		return row, err
	}

	var matNs, spoolNs, demand int64
	for e := 0; e < epochs; e++ {
		sc.mutate(e)
		items := snapshotAll(sc.vals)
		key := store.Key{LoopID: "train", Exec: e}
		t0 := time.Now()
		secs := backmat.EncodeSections(items)
		if _, err := st.PutSections(key, secs, 0, 0, 0); err != nil {
			return row, err
		}
		matNs += time.Since(t0).Nanoseconds()
		demand += st.Dedup().StoredEncBytes // pack volume this spool pass must cover
		t0 = time.Now()
		if _, err := st.Spool(); err != nil {
			return row, err
		}
		spoolNs += time.Since(t0).Nanoseconds()
	}
	var logical int64
	for _, m := range st.Metas() {
		logical += m.Size
	}

	// Restore cold, through the shared read-only open path the daemon uses,
	// so sharded reads exercise the per-shard fetch fan-out.
	ro, err := store.OpenReadOnly(dir)
	if err != nil {
		return row, err
	}
	drainWriteback()
	var resNs int64
	for pass := 0; pass < 5; pass++ {
		cache := backmat.NewPayloadCache(0)
		var passNs int64
		for e := 0; e < epochs; e++ {
			t0 := time.Now()
			secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: e}, cache.Contains)
			if err != nil || !ok {
				return row, fmt.Errorf("bench: spool-cadence restore epoch %d: ok=%v err=%v", e, ok, err)
			}
			if _, err := backmat.DecodeSectionsCached(cache, secs); err != nil {
				return row, err
			}
			passNs += time.Since(t0).Nanoseconds()
		}
		if pass == 0 || passNs < resNs {
			resNs = passNs
		}
	}

	mb := float64(logical) / (1 << 20)
	row.LogicalMB = mb
	row.MatMBps = mb / (float64(matNs) / 1e9)
	row.ResMBps = mb / (float64(resNs) / 1e9)
	row.SpoolMBps = float64(demand) / (1 << 20) / (float64(spoolNs) / 1e9)
	row.DedupRatio = st.Dedup().Ratio()
	return row, nil
}

// uploadRemoteRun materializes sc's run in a local store, uploads it to a
// filesystem object store, and fetches the control plane a read-only remote
// open needs. tag keeps concurrent scenarios' temp directories apart.
func (s *Session) uploadRemoteRun(sc ckptScenario, epochs int, tag string) (ctl string, obj remote.ObjectStore, logical int64, err error) {
	dir := s.tempDir("ckpt-remote-run-" + tag)
	st, err := store.OpenWith(dir, store.Options{ShardFanout: store.DefaultShardFanout})
	if err != nil {
		return "", nil, 0, err
	}
	for e := 0; e < epochs; e++ {
		sc.mutate(e)
		secs := backmat.EncodeSections(snapshotAll(sc.vals))
		if _, err := st.PutSections(store.Key{LoopID: "train", Exec: e}, secs, 0, 0, 0); err != nil {
			return "", nil, 0, err
		}
	}
	for _, m := range st.Metas() {
		logical += m.Size
	}
	fs, err := remote.NewFSStore(s.tempDir("ckpt-remote-obj-" + tag))
	if err != nil {
		return "", nil, 0, err
	}
	if _, err := remote.UploadRun(fs, dir, "bench"); err != nil {
		return "", nil, 0, err
	}
	ctl = s.tempDir("ckpt-remote-ctl-" + tag)
	if _, err := remote.FetchControlPlane(fs, "bench", ctl); err != nil {
		return "", nil, 0, err
	}
	return ctl, fs, logical, nil
}

// linkStore wraps an ObjectStore with a byte counter and an optional
// fixed-bandwidth pacer (bps bytes/second, zero = unthrottled): every read
// queues its bytes on one shared link clock, so concurrent ranged GETs
// share the simulated pipe the way parallel GETs share a NIC. Writes and
// listings stay unthrottled — the scenarios it serves only measure reads.
type linkStore struct {
	inner remote.ObjectStore
	bps   float64
	bytes atomic.Int64
	mu    sync.Mutex
	free  time.Time
}

func (l *linkStore) pace(n int64) {
	l.bytes.Add(n)
	if l.bps <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / l.bps * 1e9)
	l.mu.Lock()
	now := time.Now()
	if l.free.Before(now) {
		l.free = now
	}
	l.free = l.free.Add(d)
	done := l.free
	l.mu.Unlock()
	time.Sleep(time.Until(done))
}

func (l *linkStore) Size(key string) (int64, error) { return l.inner.Size(key) }

func (l *linkStore) Get(key string) ([]byte, error) {
	data, err := l.inner.Get(key)
	l.pace(int64(len(data)))
	return data, err
}

func (l *linkStore) GetRange(key string, off, n int64) ([]byte, error) {
	data, err := l.inner.GetRange(key, off, n)
	l.pace(int64(len(data)))
	return data, err
}

func (l *linkStore) Put(key string, data []byte) error { return l.inner.Put(key, data) }
func (l *linkStore) List(prefix string) ([]string, error) {
	return l.inner.List(prefix)
}
func (l *linkStore) Delete(key string) error { return l.inner.Delete(key) }

// viewStore snapshots a finished upload into memory once and serves every
// GET as a zero-copy view of the immutable snapshot. The simulated link
// already charges wall time per transferred byte; a real object GET lands
// its bytes without also spending a restore core on a materialization
// memcpy, so a copying test double would tax the overlapped engine for CPU
// the real system never spends (the barriered baseline hides the same copy
// inside its idle fetch phase). Pack objects are immutable by construction,
// and every consumer treats GET results as read-only.
type viewStore struct {
	objects map[string][]byte
}

// snapshotStore loads every object under prefix from src into a viewStore.
func snapshotStore(src remote.ObjectStore, prefix string) (*viewStore, error) {
	keys, err := src.List(prefix)
	if err != nil {
		return nil, err
	}
	v := &viewStore{objects: make(map[string][]byte, len(keys))}
	for _, k := range keys {
		data, err := src.Get(k)
		if err != nil {
			return nil, err
		}
		v.objects[k] = data
	}
	return v, nil
}

func (v *viewStore) Size(key string) (int64, error) {
	data, ok := v.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", remote.ErrNotFound, key)
	}
	return int64(len(data)), nil
}

func (v *viewStore) Get(key string) ([]byte, error) {
	data, ok := v.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", remote.ErrNotFound, key)
	}
	return data, nil
}

func (v *viewStore) GetRange(key string, off, n int64) ([]byte, error) {
	data, ok := v.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", remote.ErrNotFound, key)
	}
	if off < 0 || n < 0 || off+n > int64(len(data)) {
		return nil, fmt.Errorf("bench: get range %s [%d,%d): beyond object length %d", key, off, off+n, len(data))
	}
	return data[off : off+n], nil
}

func (v *viewStore) Put(string, []byte) error { return fmt.Errorf("bench: viewStore is read-only") }
func (v *viewStore) Delete(string) error      { return fmt.Errorf("bench: viewStore is read-only") }
func (v *viewStore) List(prefix string) ([]string, error) {
	var keys []string
	for k := range v.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// runRemoteRestore uploads a frozen-scenario run to a local filesystem
// object store and restores it twice through the remote object backend: once
// against an empty chunk-cache tier (every pack byte a ranged GET) and once
// against the tier the cold pass populated. The two rows land in the report
// as "remote-cold" / "remote-warm", and their restore ratio is the cache
// tier's headline number. The payload cache is fresh per pass, so the
// comparison isolates the chunk-cache tier, not decoded-payload reuse.
func (s *Session) runRemoteRestore(sc ckptScenario, epochs int) (cold, warm CkptThroughputRow, err error) {
	cold = CkptThroughputRow{Scenario: "remote-restore", Format: "remote-cold", Checkpoints: epochs}
	warm = CkptThroughputRow{Scenario: "remote-restore", Format: "remote-warm", Checkpoints: epochs}
	ctl, obj, logical, err := s.uploadRemoteRun(sc, epochs, "tier")
	if err != nil {
		return cold, warm, err
	}
	tier, err := cachetier.New("", 1<<30)
	if err != nil {
		return cold, warm, err
	}
	backend := remote.NewObjectBackend(remote.Retry(obj, remote.Policy{}), remote.PacksPrefix("bench"), tier)
	ro, err := store.OpenWith(ctl, store.Options{ReadOnly: true, Backend: backend})
	if err != nil {
		return cold, warm, err
	}

	drainWriteback()
	sweep := func() (int64, error) {
		cache := backmat.NewPayloadCache(0)
		var ns int64
		for e := 0; e < epochs; e++ {
			t0 := time.Now()
			secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: e}, cache.Contains)
			if err != nil || !ok {
				return 0, fmt.Errorf("bench: remote-restore epoch %d: ok=%v err=%v", e, ok, err)
			}
			if _, err := backmat.DecodeSectionsCached(cache, secs); err != nil {
				return 0, err
			}
			ns += time.Since(t0).Nanoseconds()
		}
		return ns, nil
	}
	coldNs, err := sweep() // empty tier: every pack byte is a ranged GET
	if err != nil {
		return cold, warm, err
	}
	var warmNs int64 // tier populated by the cold pass; best of five
	for pass := 0; pass < 5; pass++ {
		ns, err := sweep()
		if err != nil {
			return cold, warm, err
		}
		if pass == 0 || ns < warmNs {
			warmNs = ns
		}
	}

	mb := float64(logical) / (1 << 20)
	cold.LogicalMB, warm.LogicalMB = mb, mb
	cold.ResMBps = mb / (float64(coldNs) / 1e9)
	warm.ResMBps = mb / (float64(warmNs) / 1e9)
	return cold, warm, nil
}

// runRemoteColdPipeline measures the cold-restore engine against its own
// pre-pipeline baseline on a simulated fixed-bandwidth link. A calibration
// pass (barriered, unthrottled) measures the run's restore wall time and
// its remote GET volume; the link bandwidth is then set so transferring
// that volume takes exactly that long — the fetch-bound-meets-decode-bound
// regime where a barrier hurts most honestly (slower links make both
// passes fetch-bound, faster links make both decode-bound). Both measured
// passes start with an empty chunk-cache tier; the engine pass hints every
// epoch to a Prefetcher before its first restore, so warming, singleflight
// and pipelined decode all work the same way replay's readahead drives
// them.
func (s *Session) runRemoteColdPipeline(sc ckptScenario, epochs int) (barrier, pipe CkptThroughputRow, err error) {
	// This comparison is a ratio of two ~(fetch+decode) wall times; at the
	// scenario's native epoch count the decode leg is a few tens of
	// milliseconds and scheduler noise swamps it. Triple the run length so
	// both legs sit comfortably above the noise floor.
	epochs *= 3
	barrier = CkptThroughputRow{Scenario: "remote-restore", Format: "remote-cold-barrier", Checkpoints: epochs}
	pipe = CkptThroughputRow{Scenario: "remote-restore", Format: "remote-cold-pipelined", Checkpoints: epochs}
	ctl, fsObj, logical, err := s.uploadRemoteRun(sc, epochs, "pipe")
	if err != nil {
		return barrier, pipe, err
	}
	// Serve the measured passes from an immutable in-memory snapshot so GETs
	// are zero-copy views: the link pacer charges the transfer, not a memcpy.
	obj, err := snapshotStore(fsObj, remote.PacksPrefix("bench"))
	if err != nil {
		return barrier, pipe, err
	}

	// pass runs one full cold restore over link: a fresh cache tier, a fresh
	// payload cache, and optionally the prefetcher warming the whole plan
	// ahead of the decode front. The hint is inside the timed region — the
	// engine's cost of issuing its speculation is part of its wall time.
	pass := func(link *linkStore, prefetch bool) (int64, error) {
		tier, err := cachetier.New("", 1<<30)
		if err != nil {
			return 0, err
		}
		backend := remote.NewObjectBackend(remote.Retry(link, remote.Policy{}), remote.PacksPrefix("bench"), tier)
		ro, err := store.OpenWith(ctl, store.Options{ReadOnly: true, Backend: backend})
		if err != nil {
			return 0, err
		}
		drainWriteback()
		cache := backmat.NewPayloadCache(0)
		t0 := time.Now()
		if prefetch {
			pf := ro.NewPrefetcher(3, nil)
			defer pf.Close()
			keys := make([]store.Key, epochs)
			for e := range keys {
				keys[e] = store.Key{LoopID: "train", Exec: e}
			}
			pf.Hint(keys...)
		}
		for e := 0; e < epochs; e++ {
			secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: e}, cache.Contains)
			if err != nil || !ok {
				return 0, fmt.Errorf("bench: remote-cold-pipeline epoch %d: ok=%v err=%v", e, ok, err)
			}
			if _, err := backmat.DecodeSectionsCached(cache, secs); err != nil {
				return 0, err
			}
		}
		return time.Since(t0).Nanoseconds(), nil
	}

	// Calibrate: one cold sweep counts the run's remote GET volume, then
	// warm sweeps over the tier it populated measure the decode-bound wall
	// time (minimum of several — the first sweeps of a process pay GC-pacer
	// and page-fault warmup that is not decode). The link bandwidth is then
	// set so transferring the GET volume takes ~1.45x the decode time: a
	// modestly fetch-bound link, the common regime for remote restores and
	// the reason readahead exists. There the engine can hide the entire
	// decode leg behind the transfer — its wall time is pinned to the link
	// and insensitive to CPU scheduling noise — while the barrier still pays
	// fetch and decode serially. (A balanced link maximizes the theoretical
	// gap but makes the measured ratio hypersensitive to the decode
	// estimate; a much slower link hides the barrier entirely.)
	prev := store.SetPipelinedRemoteFetch(false)
	calibrate := func() (float64, error) {
		tier, err := cachetier.New("", 1<<30)
		if err != nil {
			return 0, err
		}
		cal := &linkStore{inner: obj}
		backend := remote.NewObjectBackend(remote.Retry(cal, remote.Policy{}), remote.PacksPrefix("bench"), tier)
		ro, err := store.OpenWith(ctl, store.Options{ReadOnly: true, Backend: backend})
		if err != nil {
			return 0, err
		}
		drainWriteback()
		sweep := func() (int64, error) {
			cache := backmat.NewPayloadCache(0)
			t0 := time.Now()
			for e := 0; e < epochs; e++ {
				secs, ok, err := ro.GetSections(store.Key{LoopID: "train", Exec: e}, cache.Contains)
				if err != nil || !ok {
					return 0, fmt.Errorf("bench: cold-pipeline calibration epoch %d: ok=%v err=%v", e, ok, err)
				}
				if _, err := backmat.DecodeSectionsCached(cache, secs); err != nil {
					return 0, err
				}
			}
			return time.Since(t0).Nanoseconds(), nil
		}
		coldNs, err := sweep() // cold: populate the tier, count GETs
		if err != nil {
			return 0, err
		}
		// Warm: decode-bound wall time, minimum of five sweeps.
		var decodeNs int64
		for p := 0; p < 5; p++ {
			ns, err := sweep()
			if err != nil {
				return 0, err
			}
			if debugColdPipeline {
				s.printf("[cold-pipeline] warm sweep %d: %dms\n", p, ns/1e6)
			}
			if p == 0 || ns < decodeNs {
				decodeNs = ns
			}
		}
		bps := float64(cal.bytes.Load()) / (1.45 * float64(decodeNs) / 1e9)
		if debugColdPipeline {
			s.printf("[cold-pipeline] coldNs=%dms decodeNs=%dms getBytes=%dMB bps=%.0fMB/s\n", coldNs/1e6, decodeNs/1e6, cal.bytes.Load()>>20, bps/(1<<20))
		}
		return bps, nil
	}
	bps, err := calibrate()
	if err != nil {
		store.SetPipelinedRemoteFetch(prev)
		return barrier, pipe, err
	}
	// Measure both modes over the same link; best of three throttled passes
	// each, so a descheduling blip cannot fake a speedup.
	var barrierNs int64
	for p := 0; p < 3 && err == nil; p++ {
		var ns int64
		ns, err = pass(&linkStore{inner: obj, bps: bps}, false)
		if p == 0 || ns < barrierNs {
			barrierNs = ns
		}
	}
	store.SetPipelinedRemoteFetch(prev)
	if err != nil {
		return barrier, pipe, err
	}
	var pipeNs int64
	for p := 0; p < 3; p++ {
		ns, err := pass(&linkStore{inner: obj, bps: bps}, true)
		if err != nil {
			return barrier, pipe, err
		}
		if p == 0 || ns < pipeNs {
			pipeNs = ns
		}
	}

	if debugColdPipeline {
		pt := store.PrefetchTotals()
		s.printf("[cold-pipeline] barrierNs=%dms pipeNs=%dms prefetch issued=%dMB used=%dMB\n",
			barrierNs/1e6, pipeNs/1e6, pt.IssuedBytes>>20, pt.UsedBytes>>20)
	}

	mb := float64(logical) / (1 << 20)
	barrier.LogicalMB, pipe.LogicalMB = mb, mb
	barrier.ResMBps = mb / (float64(barrierNs) / 1e9)
	pipe.ResMBps = mb / (float64(pipeNs) / 1e9)
	return barrier, pipe, nil
}

// debugColdPipeline prints the cold-pipeline calibration internals; flip on
// locally when retuning the simulated link.
const debugColdPipeline = false

// CkptThroughput measures checkpoint materialize/restore throughput for both
// segment formats over both scenarios, plus the spool-cadence comparison of
// the single-pack and sharded v2 layouts, and prints the comparison plus a
// machine-readable BENCH JSON line.
func (s *Session) CkptThroughput(epochs int) (*CkptThroughputReport, error) {
	rep := &CkptThroughputReport{}
	byKey := map[string]CkptThroughputRow{}
	for _, sc := range ckptScenarios(s.Scale) {
		for _, format := range []int{store.FormatV1, store.FormatV2} {
			row, err := s.runCkptFormat(sc, format, epochs)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
			byKey[row.Scenario+"/"+row.Format] = row
		}
	}
	// Spool cadence: the frozen-layer workload against the single pack and
	// the fanout-16 sharded layout.
	frozenSc := ckptScenarios(s.Scale)[0]
	for _, fanout := range []int{1, store.DefaultShardFanout} {
		row, err := s.runSpoolCadence(frozenSc, fanout, epochs)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
		byKey[row.Scenario+"/"+row.Format] = row
	}
	// Remote restore: the frozen run served from an object store, cold vs
	// warm chunk-cache tier.
	coldRow, warmRow, err := s.runRemoteRestore(frozenSc, epochs)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, coldRow, warmRow)
	if coldRow.ResMBps > 0 {
		rep.RemoteWarmRestoreSpeedup = warmRow.ResMBps / coldRow.ResMBps
	}
	// Cold-restore engine: pipelined + prefetched vs barriered, same link.
	// The mutating workload is the honest one here: every epoch restores
	// fresh bytes, so the engine must genuinely overlap the next epoch's
	// fetch with this epoch's decode (the frozen workload dedups away the
	// tail epochs' fetches entirely, leaving nothing to prefetch).
	mutatingSc := ckptScenarios(s.Scale)[1]
	barRow, pipeRow, err := s.runRemoteColdPipeline(mutatingSc, epochs)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, barRow, pipeRow)
	if barRow.ResMBps > 0 {
		rep.RemoteColdRestoreSpeedup = pipeRow.ResMBps / barRow.ResMBps
	}
	// Fine-tuning family: per-run private packs vs one shared chunk pool.
	privRow, poolRow, reduction, restoreSpeedup, err := s.FinetuneFamily(epochs)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, privRow, poolRow)
	rep.FamilyStorageReduction = reduction
	rep.FamilySharedRestoreSpeedup = restoreSpeedup
	speedup := func(scenario string, f func(CkptThroughputRow) float64) float64 {
		v1 := f(byKey[scenario+"/v1-blob"])
		if v1 == 0 {
			return 0
		}
		return f(byKey[scenario+"/v2-frames"]) / v1
	}
	mat := func(r CkptThroughputRow) float64 { return r.MatMBps }
	res := func(r CkptThroughputRow) float64 { return r.ResMBps }
	rep.MatSpeedupFrozen = speedup("frozen", mat)
	rep.ResSpeedupFrozen = speedup("frozen", res)
	rep.MatSpeedupMutating = speedup("mutating", mat)
	rep.ResSpeedupMutating = speedup("mutating", res)
	rep.DedupRatioFrozen = byKey["frozen/v2-frames"].DedupRatio
	pack := byKey["spool-cadence/v2-pack"]
	sharded := byKey[fmt.Sprintf("spool-cadence/v2-sharded%d", store.DefaultShardFanout)]
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	rep.ShardedSpoolSpeedup = ratio(sharded.SpoolMBps, pack.SpoolMBps)
	rep.ShardedMatSpeedup = ratio(sharded.MatMBps, pack.MatMBps)
	rep.ShardedRestoreSpeedup = ratio(sharded.ResMBps, pack.ResMBps)

	s.printf("\nCheckpoint throughput: format v1 (single blob) vs v2 (parallel frames + dedup),\n")
	s.printf("plus the spool cadence: single pack vs hash-prefix shards (fanout %d).\n", store.DefaultShardFanout)
	s.printf("%d checkpoints per cell; MB/s over the logical payload volume.\n", epochs)
	s.printf("%-14s %-12s %10s %14s %12s %8s %12s\n", "scenario", "format", "logical", "materialize", "restore", "dedup", "spool")
	for _, r := range rep.Rows {
		spool := "-"
		if r.SpoolMBps > 0 {
			spool = fmt.Sprintf("%9.1fMB/s", r.SpoolMBps)
		}
		s.printf("%-14s %-12s %8.1fMB %11.1fMB/s %9.1fMB/s %7.2fx %12s\n",
			r.Scenario, r.Format, r.LogicalMB, r.MatMBps, r.ResMBps, r.DedupRatio, spool)
	}
	s.printf("v2 speedup: frozen %0.2fx materialize / %0.2fx restore; mutating %0.2fx / %0.2fx\n",
		rep.MatSpeedupFrozen, rep.ResSpeedupFrozen, rep.MatSpeedupMutating, rep.ResSpeedupMutating)
	s.printf("sharded vs single pack: %0.2fx spool / %0.2fx materialize / %0.2fx restore\n",
		rep.ShardedSpoolSpeedup, rep.ShardedMatSpeedup, rep.ShardedRestoreSpeedup)
	s.printf("finetune family (%d runs), pooled vs private packs: %0.2fx storage reduction / %0.2fx shared-restore\n",
		familyRuns, rep.FamilyStorageReduction, rep.FamilySharedRestoreSpeedup)
	s.printf("remote restore, warm vs cold chunk-cache tier: %0.2fx\n", rep.RemoteWarmRestoreSpeedup)
	s.printf("remote cold restore, pipelined+prefetched vs barriered on a calibrated link: %0.2fx\n", rep.RemoteColdRestoreSpeedup)

	js, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	s.printf("BENCH JSON %s\n", js)
	return rep, nil
}
