package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"flor.dev/flor/internal/backmat"
	"flor.dev/flor/internal/nn"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/tensor"
	"flor.dev/flor/internal/value"
	"flor.dev/flor/internal/workloads"
	"flor.dev/flor/internal/xrand"
)

// CkptThroughputRow is one (scenario, format) measurement of the checkpoint
// storage engine: serialize+write and read+decode throughput over the
// logical payload volume, plus the chunk-dedup ratio the run achieved.
type CkptThroughputRow struct {
	Scenario    string  `json:"scenario"` // "frozen" or "mutating"
	Format      string  `json:"format"`   // "v1-blob" or "v2-frames"
	LogicalMB   float64 `json:"logical_mb"`
	MatMBps     float64 `json:"materialize_mbps"`
	ResMBps     float64 `json:"restore_mbps"`
	DedupRatio  float64 `json:"dedup_ratio"`
	Checkpoints int     `json:"checkpoints"`
}

// CkptThroughputReport compares format v1 (one monolithic blob per
// checkpoint, single-goroutine codec) against format v2 (parallel frames
// with content-addressed dedup) on the same workload.
type CkptThroughputReport struct {
	Rows []CkptThroughputRow `json:"rows"`
	// MatSpeedupFrozen / ResSpeedupFrozen are v2-over-v1 throughput ratios
	// on the frozen-layer scenario (the paper's RTE/CoLA shape: a large
	// frozen backbone checkpointed every epoch).
	MatSpeedupFrozen   float64 `json:"materialize_speedup_frozen"`
	ResSpeedupFrozen   float64 `json:"restore_speedup_frozen"`
	MatSpeedupMutating float64 `json:"materialize_speedup_mutating"`
	ResSpeedupMutating float64 `json:"restore_speedup_mutating"`
	DedupRatioFrozen   float64 `json:"dedup_ratio_frozen"`
}

// ckptScenario builds the environment values for one scenario and a mutator
// applied (untimed) before each checkpoint.
type ckptScenario struct {
	name   string
	vals   []backmat.NamedValue
	mutate func(epoch int)
}

// ckptScenarios returns the two workloads: "frozen" — a multi-MB frozen
// transformer plus a small step tensor (dedup's best case, the fine-tuning
// workloads' shape) — and "mutating" — a multi-MB tensor fully rewritten
// every epoch (dedup's worst case, isolating pure parallel-codec speedup).
func ckptScenarios(scale workloads.Scale) []ckptScenario {
	vocab, seqLen, dim, hidden, depth := 4096, 24, 96, 192, 3
	mutLen := 1 << 19 // 4 MB of float64s
	if scale == workloads.Smoke {
		vocab, seqLen, dim, hidden, depth = 512, 12, 32, 64, 2
		mutLen = 1 << 15
	}
	frozenModel := nn.NewTransformer(xrand.New(0xC4A7), vocab, seqLen, dim, hidden, depth, 2)
	step := &value.Tensor{T: tensor.New(8)}
	frozen := ckptScenario{
		name: "frozen",
		vals: []backmat.NamedValue{
			{Name: "net", V: &value.Model{M: frozenModel}},
			{Name: "step", V: step},
		},
		mutate: func(epoch int) { step.T.Data()[0] = float64(epoch) },
	}

	mutRng := xrand.New(0xD1CE)
	mut := &value.Tensor{T: tensor.Randn(mutRng, 1, mutLen)}
	mutating := ckptScenario{
		name: "mutating",
		vals: []backmat.NamedValue{{Name: "w", V: mut}},
		mutate: func(epoch int) {
			d := mut.T.Data()
			for i := range d {
				d[i] = mutRng.Float64()
			}
		},
	}
	return []ckptScenario{frozen, mutating}
}

// snapshotAll snapshots every value (the training-thread cost, identical
// under both formats and excluded from the timed region).
func snapshotAll(vals []backmat.NamedValue) []backmat.NamedPayload {
	items := make([]backmat.NamedPayload, len(vals))
	for i, nv := range vals {
		items[i] = backmat.NamedPayload{Name: nv.Name, Payload: nv.V.Snapshot()}
	}
	return items
}

// runCkptFormat materializes and restores `epochs` checkpoints of sc under
// the given segment format, timing only serialize+write and read+decode.
func (s *Session) runCkptFormat(sc ckptScenario, format int, epochs int) (CkptThroughputRow, error) {
	row := CkptThroughputRow{Scenario: sc.name, Checkpoints: epochs}
	st, err := store.OpenFormat(s.tempDir(fmt.Sprintf("ckpt-tp-%s-v%d", sc.name, format)), format)
	if err != nil {
		return row, err
	}
	if format == store.FormatV2 {
		row.Format = "v2-frames"
	} else {
		row.Format = "v1-blob"
	}

	var logical int64
	var matNs int64
	for e := 0; e < epochs; e++ {
		sc.mutate(e)
		items := snapshotAll(sc.vals)
		key := store.Key{LoopID: "train", Exec: e}
		t0 := time.Now()
		if format == store.FormatV2 {
			secs := backmat.EncodeSections(items)
			if _, err := st.PutSections(key, secs, 0, 0, 0); err != nil {
				return row, err
			}
		} else {
			// The seed's write path: one monolithic blob from a single
			// goroutine.
			if _, err := st.Put(key, backmat.EncodeBundle(items), 0, 0, 0); err != nil {
				return row, err
			}
		}
		matNs += time.Since(t0).Nanoseconds()
	}
	for _, m := range st.Metas() {
		logical += m.Size
	}

	// Restore with the same machinery replay uses: a content-addressed
	// payload cache over parallel section decode. Format v1 has no content
	// identity, so it always pays the full read+decode.
	cache := backmat.NewPayloadCache(0)
	var resNs int64
	for e := 0; e < epochs; e++ {
		key := store.Key{LoopID: "train", Exec: e}
		t0 := time.Now()
		var items []backmat.NamedPayload
		secs, ok, err := st.GetSections(key, cache.Contains)
		if err != nil {
			return row, err
		}
		if ok {
			items, err = backmat.DecodeSectionsCached(cache, secs)
		} else {
			raw, gerr := st.Get(key)
			if gerr != nil {
				return row, gerr
			}
			items, err = backmat.DecodeBundle(raw)
		}
		if err != nil {
			return row, err
		}
		resNs += time.Since(t0).Nanoseconds()
		if len(items) != len(sc.vals) {
			return row, fmt.Errorf("bench: ckpt-throughput: epoch %d decoded %d items, want %d", e, len(items), len(sc.vals))
		}
	}

	mb := float64(logical) / (1 << 20)
	row.LogicalMB = mb
	row.MatMBps = mb / (float64(matNs) / 1e9)
	row.ResMBps = mb / (float64(resNs) / 1e9)
	row.DedupRatio = st.Dedup().Ratio()
	return row, nil
}

// CkptThroughput measures checkpoint materialize/restore throughput for both
// segment formats over both scenarios and prints the comparison plus a
// machine-readable BENCH JSON line.
func (s *Session) CkptThroughput(epochs int) (*CkptThroughputReport, error) {
	rep := &CkptThroughputReport{}
	byKey := map[string]CkptThroughputRow{}
	for _, sc := range ckptScenarios(s.Scale) {
		for _, format := range []int{store.FormatV1, store.FormatV2} {
			row, err := s.runCkptFormat(sc, format, epochs)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
			byKey[row.Scenario+"/"+row.Format] = row
		}
	}
	speedup := func(scenario string, f func(CkptThroughputRow) float64) float64 {
		v1 := f(byKey[scenario+"/v1-blob"])
		if v1 == 0 {
			return 0
		}
		return f(byKey[scenario+"/v2-frames"]) / v1
	}
	mat := func(r CkptThroughputRow) float64 { return r.MatMBps }
	res := func(r CkptThroughputRow) float64 { return r.ResMBps }
	rep.MatSpeedupFrozen = speedup("frozen", mat)
	rep.ResSpeedupFrozen = speedup("frozen", res)
	rep.MatSpeedupMutating = speedup("mutating", mat)
	rep.ResSpeedupMutating = speedup("mutating", res)
	rep.DedupRatioFrozen = byKey["frozen/v2-frames"].DedupRatio

	s.printf("\nCheckpoint throughput: format v1 (single blob) vs v2 (parallel frames + dedup),\n")
	s.printf("%d checkpoints per cell; MB/s over the logical payload volume.\n", epochs)
	s.printf("%-9s %-10s %10s %14s %12s %8s\n", "scenario", "format", "logical", "materialize", "restore", "dedup")
	for _, r := range rep.Rows {
		s.printf("%-9s %-10s %8.1fMB %11.1fMB/s %9.1fMB/s %7.2fx\n",
			r.Scenario, r.Format, r.LogicalMB, r.MatMBps, r.ResMBps, r.DedupRatio)
	}
	s.printf("v2 speedup: frozen %0.2fx materialize / %0.2fx restore; mutating %0.2fx / %0.2fx\n",
		rep.MatSpeedupFrozen, rep.ResSpeedupFrozen, rep.MatSpeedupMutating, rep.ResSpeedupMutating)

	js, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	s.printf("BENCH JSON %s\n", js)
	return rep, nil
}
