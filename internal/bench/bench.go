// Package bench implements the paper's evaluation harness: one experiment
// per table and figure of §6 (plus the §5 microbenchmarks), over the eight
// Table 3 workloads. cmd/florbench and the repository's benchmark suite both
// drive this package; EXPERIMENTS.md records its output against the paper's
// reported numbers.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"flor.dev/flor/internal/cluster"
	"flor.dev/flor/internal/core"
	"flor.dev/flor/internal/replay"
	"flor.dev/flor/internal/script"
	"flor.dev/flor/internal/store"
	"flor.dev/flor/internal/workloads"
)

// WorkloadRun caches everything the experiments need about one workload:
// the vanilla baseline, the record run, and derived per-iteration costs.
type WorkloadRun struct {
	Spec    *workloads.Spec
	Factory func() *script.Program
	Dir     string

	VanillaNs   int64
	VanillaLogs []string
	Record      *core.RecordResult

	// Derived measurements.
	EpochComputNs []int64 // per-epoch train-loop compute (gaps filled with mean)
	EvalNs        int64   // per-epoch non-train cost (eval + logging)
	MeanRestoreNs int64
	SetupNs       int64
}

// Epochs returns the workload's main-loop iteration count for this run.
func (wr *WorkloadRun) Epochs() int { return len(wr.EpochComputNs) }

// IterationCosts converts the measurements into the cluster simulator's
// input: per-iteration compute = train compute + eval cost. The restore cost
// of an iteration is the measured mean checkpoint restore when its Loop End
// Checkpoint was materialized, and the full compute cost otherwise (sparse
// workloads re-execute unmaterialized epochs); the eval always re-executes.
func (wr *WorkloadRun) IterationCosts() *cluster.IterationCosts {
	c := &cluster.IterationCosts{SetupNs: wr.SetupNs}
	for i, e := range wr.EpochComputNs {
		c.ComputNs = append(c.ComputNs, e+wr.EvalNs)
		if wr.Record.Recording.Store.Has(store.Key{LoopID: "train", Exec: i}) {
			c.RestoreNs = append(c.RestoreNs, wr.MeanRestoreNs+wr.EvalNs)
		} else {
			c.RestoreNs = append(c.RestoreNs, e+wr.EvalNs)
		}
	}
	return c
}

// Session runs experiments, caching workload runs so that one florbench
// invocation records each workload once.
type Session struct {
	Scale   workloads.Scale
	BaseDir string
	Out     io.Writer

	runs map[string]*WorkloadRun
}

// NewSession creates a session writing experiment tables to out; baseDir
// holds the run directories.
func NewSession(baseDir string, scale workloads.Scale, out io.Writer) *Session {
	if out == nil {
		out = os.Stdout
	}
	return &Session{Scale: scale, BaseDir: baseDir, Out: out, runs: map[string]*WorkloadRun{}}
}

func (s *Session) printf(format string, args ...any) {
	fmt.Fprintf(s.Out, format, args...)
}

// Trials is the number of measurements per timing; the median is reported.
// The host shares two cores between training and background
// materialization, so single runs carry ±10% scheduling noise — far larger
// than the overheads under measurement.
var Trials = 3

// median3 returns the median of up to Trials measurements of f's duration.
func medianTrials(f func() (int64, error)) (int64, error) {
	var times []int64
	for i := 0; i < Trials; i++ {
		ns, err := f()
		if err != nil {
			return 0, err
		}
		times = append(times, ns)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// Run measures one workload (vanilla + record, median of Trials runs each)
// or returns the cached run.
func (s *Session) Run(name string) (*WorkloadRun, error) {
	if wr, ok := s.runs[name]; ok {
		return wr, nil
	}
	spec, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", name)
	}
	factory := spec.Build(s.Scale)
	wr := &WorkloadRun{Spec: spec, Factory: factory, Dir: filepath.Join(s.BaseDir, name)}

	vanillaNs, err := medianTrials(func() (int64, error) {
		logs, ns, err := core.Vanilla(factory)
		wr.VanillaLogs = logs
		return ns, err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %s vanilla: %w", name, err)
	}
	wr.VanillaNs = vanillaNs

	trial := 0
	recordNs, err := medianTrials(func() (int64, error) {
		trial++
		dir := wr.Dir
		if trial < Trials {
			dir = fmt.Sprintf("%s-trial%d", wr.Dir, trial)
		}
		res, err := core.Record(dir, factory, core.RecordOptions{})
		if err != nil {
			return 0, err
		}
		if dir == wr.Dir {
			wr.Record = res
		} else {
			os.RemoveAll(dir)
		}
		return res.WallNs, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %s record: %w", name, err)
	}
	wr.Record.WallNs = recordNs

	if err := s.derive(wr); err != nil {
		return nil, err
	}
	s.runs[name] = wr
	return wr, nil
}

// derive computes per-epoch costs from the record store and a sequential
// unprobed replay (which measures setup and restore costs directly).
func (s *Session) derive(wr *WorkloadRun) error {
	epochs := wr.Spec.Epochs(s.Scale)
	perEpoch := make([]int64, epochs)
	var sum, n int64
	for _, m := range wr.Record.Recording.Store.Metas() {
		if m.Key.LoopID == "train" && m.Key.Exec < epochs && m.ComputNs > 0 {
			perEpoch[m.Key.Exec] = m.ComputNs
			sum += m.ComputNs
			n++
		}
	}
	var mean int64
	if n > 0 {
		mean = sum / n
	}
	total := int64(0)
	for i := range perEpoch {
		if perEpoch[i] == 0 {
			perEpoch[i] = mean
		}
		total += perEpoch[i]
	}
	wr.EpochComputNs = perEpoch
	// Eval/log cost per epoch: the vanilla wall time not explained by the
	// train loops, spread across epochs.
	if rem := wr.VanillaNs - total; rem > 0 && epochs > 0 {
		wr.EvalNs = rem / int64(epochs)
	}

	// One unprobed sequential replay measures setup and restore costs.
	res, err := replay.Replay(wr.Record.Recording, wr.Factory, replay.Options{Workers: 1, SkipDeferredCheck: true})
	if err != nil {
		return fmt.Errorf("bench: %s probe-free replay: %w", wr.Spec.Name, err)
	}
	w := res.Workers[0]
	wr.SetupNs = w.SetupNs
	if w.Restored > 0 {
		wr.MeanRestoreNs = w.RestoreNs / int64(w.Restored)
	}
	return nil
}

// RunAll measures every Table 3 workload.
func (s *Session) RunAll() ([]*WorkloadRun, error) {
	var out []*WorkloadRun
	for _, name := range workloads.Names() {
		wr, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		out = append(out, wr)
	}
	return out, nil
}

// storeGzTotal spools a run's checkpoints and returns the compressed total.
func storeGzTotal(st *store.Store) (int64, error) {
	return st.Spool()
}
